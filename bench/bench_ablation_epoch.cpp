/**
 * @file
 * Ablation: epoch length (Section IV-B, "Epoch length and algorithm
 * overhead"). The paper states 10 ms and 20 ms epochs do not affect
 * FastCap's ability to control power or performance; this bench
 * reproduces that claim.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_ablation_epoch",
                      "epoch-length study (Section IV-B)",
                      "16 cores, MID2 + MIX4, budget = 60%, epochs "
                      "of 5/10/20 ms");

    AsciiTable table({"epoch(ms) / workload", "avg power/peak",
                      "max epoch/peak", "avg norm CPI",
                      "worst norm CPI"});
    CsvWriter csv;
    csv.header({"epoch_ms", "workload", "avg_power", "max_epoch",
                "avg_cpi", "worst_cpi"});

    for (double epoch_ms : {5.0, 10.0, 20.0}) {
        for (const char *wl : {"MID2", "MIX4"}) {
            SimConfig scfg = SimConfig::defaultConfig(16);
            scfg.epochLength = epoch_ms * 1e-3;

            const ExperimentConfig cfg = benchutil::expConfig(0.6,
                                                              30e6);
            const ExperimentResult capped =
                runWorkload(wl, "FastCap", cfg, scfg);
            const ExperimentResult base =
                runWorkload(wl, "Uncapped", cfg, scfg);
            const PerfComparison cmp =
                comparePerformance(capped, base);

            table.addRowNumeric(
                AsciiTable::num(epoch_ms, 0) + " " + wl,
                {capped.averagePowerFraction(),
                 capped.maxEpochPowerFraction(), cmp.average,
                 cmp.worst});
            csv.row({AsciiTable::num(epoch_ms, 0), wl,
                     AsciiTable::num(capped.averagePowerFraction(), 4),
                     AsciiTable::num(capped.maxEpochPowerFraction(), 4),
                     AsciiTable::num(cmp.average, 4),
                     AsciiTable::num(cmp.worst, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: power control and performance "
                "essentially unchanged at 10 and 20 ms epochs "
                "(slower reaction shows up only as slightly higher "
                "max-epoch power).\n");
    return 0;
}
