/**
 * @file
 * Ablation: online power-model quality. FastCap refits Eq. 2/3
 * power-law parameters each epoch; prior work (e.g. Freq-Par [22],
 * Teodorescu [17]) assumed power linear in frequency. This bench runs
 * FastCap with (a) the default power-law fit and (b) a forced linear
 * (exponent-1) model, quantifying the paper's critique: the linear
 * model's prediction error causes budget overshoot/undershoot.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_ablation_fit",
                      "power-model design study (Section II/III-A)",
                      "16 cores, budget = 60%: power-law fit vs "
                      "forced linear model inside FastCap");

    const SimConfig scfg = SimConfig::defaultConfig(16);

    AsciiTable table({"model / workload", "avg power/peak",
                      "tracking err", "worst overshoot",
                      "epochs over budget"});
    CsvWriter csv;
    csv.header({"model", "workload", "avg_power", "tracking_error",
                "worst_overshoot", "overshoot_share"});

    for (const bool linear : {false, true}) {
        for (const char *wl : {"ILP3", "MIX1", "MID4"}) {
            ExperimentConfig cfg = benchutil::expConfig(0.6, 30e6);
            cfg.linearPowerModel = linear;
            const ExperimentResult res =
                runWorkload(wl, "FastCap", cfg, scfg);
            const PowerSummary s = summarizePower(res);
            const char *name = linear ? "linear" : "power-law";
            table.addRowNumeric(
                std::string(name) + " " + wl,
                {s.avgFraction, budgetTrackingError(res),
                 s.worstOvershoot, s.overshootShare});
            csv.row({name, wl, AsciiTable::num(s.avgFraction, 4),
                     AsciiTable::num(budgetTrackingError(res), 4),
                     AsciiTable::num(s.worstOvershoot, 4),
                     AsciiTable::num(s.overshootShare, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: the forced linear model mispredicts "
                "core power, yielding larger overshoots / looser "
                "tracking than the power-law fit.\n");
    return 0;
}
