/**
 * @file
 * Ablation (docs/DESIGN.md section 5): sampled-epoch fidelity. Our epoch
 * scheme simulates a profiling window plus an execution window and
 * extrapolates the rest (the paper profiles 300 us of each 5 ms
 * epoch). This bench sweeps the window length and reports capping
 * accuracy and normalized performance so the default (100 us) can be
 * justified against the paper's 300 us.
 */

#include <cstdio>

#include "common.hpp"
#include "harness/peak_power.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_ablation_sampling",
                      "sampling-window design study (docs/DESIGN.md #5)",
                      "16 cores, MIX3 + MEM2, budget = 60%, window "
                      "in {50, 100, 300} us");

    AsciiTable table({"window / workload", "avg power/peak",
                      "tracking err", "avg norm CPI"});
    CsvWriter csv;
    csv.header({"window_us", "workload", "avg_power_frac",
                "tracking_error", "avg_norm_cpi"});

    for (double window_us : {50.0, 100.0, 300.0}) {
        for (const char *wl : {"MIX3", "MEM2"}) {
            SimConfig scfg = SimConfig::defaultConfig(16);
            scfg.profileWindow = window_us * 1e-6;
            scfg.execWindow = window_us * 1e-6;
            clearPeakPowerCache(); // window length affects sampling

            const ExperimentConfig cfg = benchutil::expConfig(0.6,
                                                              20e6);
            const ExperimentResult capped =
                runWorkload(wl, "FastCap", cfg, scfg);
            const ExperimentResult base =
                runWorkload(wl, "Uncapped", cfg, scfg);
            const PerfComparison cmp =
                comparePerformance(capped, base);

            table.addRowNumeric(
                AsciiTable::num(window_us, 0) + " " + wl,
                {capped.averagePowerFraction(),
                 budgetTrackingError(capped), cmp.average});
            csv.row({AsciiTable::num(window_us, 0), wl,
                     AsciiTable::num(capped.averagePowerFraction(), 4),
                     AsciiTable::num(budgetTrackingError(capped), 4),
                     AsciiTable::num(cmp.average, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: capping accuracy and performance "
                "stable across window lengths — the 100 us default "
                "matches the paper's 300 us at a third of the "
                "simulation cost.\n");
    return 0;
}
