/**
 * @file
 * Ablation: Algorithm 1's binary search over memory levels vs an
 * exhaustive scan. Convexity makes D(m) unimodal, so the O(log M)
 * search should find the same optimum with ~a third of the inner
 * evaluations at M = 10 (and far fewer at larger M).
 */

#include <cstdio>

#include "bench_inputs.hpp"
#include "common.hpp"
#include "core/solver.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_ablation_search",
                      "Algorithm 1 search validation",
                      "synthetic epochs: binary vs exhaustive memory "
                      "search, 200 random inputs per (N, M)");

    AsciiTable table({"N", "M", "mismatches / trials",
                      "mean evals (binary)", "mean evals (full)",
                      "max |dD|"});
    CsvWriter csv;
    csv.header({"n", "m", "mismatches", "trials", "evals_binary",
                "evals_full", "max_d_gap"});

    for (const std::size_t n : {8u, 32u}) {
        for (const std::size_t m : {10u, 40u, 160u}) {
            int mismatches = 0;
            double evals_fast = 0.0;
            double evals_full = 0.0;
            double max_gap = 0.0;
            const int trials = 200;
            for (int t = 0; t < trials; ++t) {
                PolicyInputs in = benchutil::syntheticInputs(
                    n, m, 10, 1000 + static_cast<std::uint64_t>(t));

                FastCapSolver fast(in);
                const SolveResult rf = fast.solve();
                SolverOptions exhaustive;
                exhaustive.exhaustiveMemSearch = true;
                FastCapSolver full(in, exhaustive);
                const SolveResult rx = full.solve();

                evals_fast += rf.evaluations;
                evals_full += rx.evaluations;
                const double gap = std::abs(rf.best.d - rx.best.d);
                max_gap = std::max(max_gap, gap);
                if (gap > 1e-6 * std::max(1.0, std::abs(rx.best.d)))
                    ++mismatches;
            }
            table.addRow(
                {std::to_string(n), std::to_string(m),
                 std::to_string(mismatches) + " / " +
                     std::to_string(trials),
                 AsciiTable::num(evals_fast / trials, 1),
                 AsciiTable::num(evals_full / trials, 1),
                 AsciiTable::num(max_gap, 8)});
            csv.rowNumeric({static_cast<double>(n),
                            static_cast<double>(m),
                            static_cast<double>(mismatches),
                            static_cast<double>(trials),
                            evals_fast / trials, evals_full / trials,
                            max_gap});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: zero (or near-zero) mismatches; "
                "binary-search evaluations grow ~log M while the "
                "exhaustive scan grows linearly.\n");
    return 0;
}
