/**
 * @file
 * Figure 10: FastCap vs Eql-Freq in normalized average/worst
 * application performance for the MIX workloads on a 64-core system
 * at a 60% budget. The paper's claim: a single global frequency is
 * too conservative at large core counts — it cannot harvest the
 * budget, so both average and worst degrade more than FastCap.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig10_eqlfreq_64core",
                      "Figure 10 (Eql-Freq conservatism at 64 cores)",
                      "64 cores, MIX workloads, budget = 60%");

    const SimConfig scfg = SimConfig::defaultConfig(64);
    const double instr = 20e6;

    AsciiTable table({"workload / policy", "avg norm CPI",
                      "worst norm CPI", "avg power/peak"});
    CsvWriter csv;
    csv.header({"workload", "policy", "avg", "worst", "power_frac"});

    for (const std::string &wl : workloads::workloadsOfClass("MIX")) {
        for (const char *policy : {"FastCap", "Eql-Freq"}) {
            const ExperimentConfig cfg = benchutil::expConfig(0.6,
                                                              instr);
            const ExperimentResult capped =
                runWorkload(wl, policy, cfg, scfg);
            const ExperimentResult base =
                runWorkload(wl, "Uncapped", cfg, scfg);
            const PerfComparison c = comparePerformance(capped, base);
            table.addRowNumeric(
                wl + std::string(" ") + policy,
                {c.average, c.worst, capped.averagePowerFraction()});
            csv.row({wl, policy, AsciiTable::num(c.average, 4),
                     AsciiTable::num(c.worst, 4),
                     AsciiTable::num(capped.averagePowerFraction(),
                                     4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: Eql-Freq leaves budget unharvested "
                "(lower power fraction) and degrades more than "
                "FastCap in both average and worst terms.\n");
    return 0;
}
