/**
 * @file
 * Figure 11: FastCap vs MaxBIPS in normalized average/worst
 * application performance for the MIX workloads on a 4-core system
 * (MaxBIPS is exponential in N, so the paper — and we — only run it
 * there) at a 60% budget. The paper's claims: MaxBIPS is slightly
 * better on average (it maximizes raw throughput) but much worse in
 * worst-application performance (it starves power-inefficient
 * applications).
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig11_maxbips_4core",
                      "Figure 11 (fairness vs raw throughput)",
                      "4 cores, MIX workloads, budget = 60%");

    const SimConfig scfg = SimConfig::defaultConfig(4);
    const double instr = 50e6;

    AsciiTable table({"workload / policy", "avg norm CPI",
                      "worst norm CPI", "worst/avg"});
    CsvWriter csv;
    csv.header({"workload", "policy", "avg", "worst", "unfairness"});

    for (const std::string &wl : workloads::workloadsOfClass("MIX")) {
        for (const char *policy : {"FastCap", "MaxBIPS"}) {
            const PerfComparison c = benchutil::compareToBaseline(
                wl, policy, 0.6, instr, scfg);
            table.addRowNumeric(wl + std::string(" ") + policy,
                                {c.average, c.worst, c.unfairness});
            csv.row({wl, policy, AsciiTable::num(c.average, 4),
                     AsciiTable::num(c.worst, 4),
                     AsciiTable::num(c.unfairness, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: MaxBIPS equal or slightly better "
                "average, clearly worse worst-case (fairness) on "
                "mixed workloads.\n");
    return 0;
}
