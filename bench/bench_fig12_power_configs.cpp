/**
 * @file
 * Figure 12: FastCap average power and maximum per-epoch average
 * power, normalized to the measured peak, across configurations:
 * 16/32/64 in-order cores, out-of-order execution (16 cores), and
 * four memory controllers with a highly skewed access distribution
 * (16 cores). Budget = 60%. The paper's claim: the average stays at
 * or under the budget in every configuration; only brief epochs
 * slightly exceed it.
 *
 * Runs as one parallel sweep: 5 system configurations x 16
 * workloads.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

namespace {

std::vector<SweepConfig>
configs()
{
    std::vector<SweepConfig> out;
    out.push_back({"16 cores", SimConfig::defaultConfig(16)});
    out.push_back({"32 cores", SimConfig::defaultConfig(32)});
    out.push_back({"64 cores", SimConfig::defaultConfig(64)});

    SimConfig ooo = SimConfig::defaultConfig(16);
    ooo.execMode = ExecMode::OutOfOrder;
    out.push_back({"OoO 16", ooo});

    SimConfig skew = SimConfig::defaultConfig(16);
    skew.numControllers = 4;
    skew.banksPerController = 8;
    skew.busBurstCycles = 6.0;
    skew.interleave = InterleaveMode::Skewed;
    out.push_back({"4MC skew", skew});
    return out;
}

} // namespace

int
main()
{
    benchutil::banner("bench_fig12_power_configs",
                      "Figure 12 (capping across configurations)",
                      "FastCap, budget = 60%; per class: highest "
                      "workload-average power and highest single-"
                      "epoch power");

    SweepGrid grid;
    grid.configs = configs();
    grid.workloads = workloads::workloadNames();
    grid.policies = {"FastCap"};
    grid.budgetFractions = {0.6};
    grid.targetInstructions = 20e6;

    const SweepResult sw = SweepRunner(grid).run();
    benchutil::sweepStats(sw);

    AsciiTable table({"config / class", "max avg power/peak",
                      "max epoch power/peak"});
    CsvWriter csv;
    csv.header({"config", "class", "max_avg_frac", "max_epoch_frac"});

    for (std::size_t c = 0; c < grid.configs.size(); ++c) {
        const std::string &name = grid.configs[c].name;
        for (const std::string &cls : benchutil::classNames()) {
            double max_avg = 0.0;
            double max_epoch = 0.0;
            for (const std::string &wl :
                 workloads::workloadsOfClass(cls)) {
                const ExperimentResult &res =
                    sw.at(c, sw.grid.workloadIndex(wl), 0, 0).result;
                if (res.averagePowerFraction() > max_avg) {
                    max_avg = res.averagePowerFraction();
                    max_epoch = res.maxEpochPowerFraction();
                }
            }
            table.addRowNumeric(name + " " + cls,
                                {max_avg, max_epoch});
            csv.row({name, cls, AsciiTable::num(max_avg, 4),
                     AsciiTable::num(max_epoch, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: all avg bars at or below 0.60 "
                "(MEM classes lower at 64 cores), max-epoch bars only "
                "slightly above.\n");
    return 0;
}
