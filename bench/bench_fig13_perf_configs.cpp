/**
 * @file
 * Figure 13: FastCap average and worst normalized application
 * performance across the same configurations as Figure 12 (core
 * counts, OoO, skewed multi-controller), at a 60% budget. The paper's
 * claims: the worst application is always only slightly worse than
 * the average (fairness holds in every configuration), and OoO
 * memory-bound workloads lose more than in-order ones.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

namespace {

struct Config
{
    const char *name;
    SimConfig cfg;
};

std::vector<Config>
configs()
{
    std::vector<Config> out;
    out.push_back({"16 cores", SimConfig::defaultConfig(16)});
    out.push_back({"32 cores", SimConfig::defaultConfig(32)});
    out.push_back({"64 cores", SimConfig::defaultConfig(64)});

    SimConfig ooo = SimConfig::defaultConfig(16);
    ooo.execMode = ExecMode::OutOfOrder;
    out.push_back({"OoO 16", ooo});

    SimConfig skew = SimConfig::defaultConfig(16);
    skew.numControllers = 4;
    skew.banksPerController = 8;
    skew.busBurstCycles = 6.0;
    skew.interleave = InterleaveMode::Skewed;
    out.push_back({"4MC skew", skew});
    return out;
}

} // namespace

int
main()
{
    benchutil::banner("bench_fig13_perf_configs",
                      "Figure 13 (fairness across configurations)",
                      "FastCap vs uncapped, budget = 60%; avg & worst "
                      "normalized CPI per class");

    const double instr = 15e6;
    AsciiTable table({"config / class", "avg norm CPI",
                      "worst norm CPI", "worst/avg"});
    CsvWriter csv;
    csv.header({"config", "class", "avg", "worst", "unfairness"});

    for (const Config &c : configs()) {
        for (const std::string &cls : benchutil::classNames()) {
            const PerfComparison cmp = benchutil::classComparison(
                cls, "FastCap", 0.6, instr, c.cfg);
            table.addRowNumeric(std::string(c.name) + " " + cls,
                                {cmp.average, cmp.worst,
                                 cmp.unfairness});
            csv.row({c.name, cls, AsciiTable::num(cmp.average, 4),
                     AsciiTable::num(cmp.worst, 4),
                     AsciiTable::num(cmp.unfairness, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: worst only slightly above average "
                "in every configuration; OoO MEM loses more than "
                "in-order MEM.\n");
    return 0;
}
