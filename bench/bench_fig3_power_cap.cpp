/**
 * @file
 * Figure 3: FastCap average power consumption normalized to the peak
 * power, for all 16 workloads on the 16-core system under a 60%
 * budget. The paper's claim: every bar sits at or just below 0.6.
 *
 * Runs as one parallel sweep over the 16 workloads.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig3_power_cap",
                      "Figure 3 (power capping accuracy)",
                      "16 cores, FastCap, budget = 60% of measured "
                      "peak, all 16 workloads");

    SweepGrid grid;
    grid.configs = SweepGrid::configsForCores({16});
    grid.workloads = workloads::workloadNames();
    grid.policies = {"FastCap"};
    grid.budgetFractions = {0.6};
    grid.targetInstructions = 50e6;

    const SweepResult sw = SweepRunner(grid).run();
    benchutil::sweepStats(sw);

    AsciiTable table({"workload", "avg power / peak", "max epoch",
                      "budget", "epochs"});
    CsvWriter csv;
    csv.header({"workload", "avg_power_fraction",
                "max_epoch_fraction", "budget_fraction", "epochs"});

    for (const SweepRun &run : sw.runs) {
        const ExperimentResult &res = run.result;
        table.addRowNumeric(
            run.point.workload,
            {res.averagePowerFraction(), res.maxEpochPowerFraction(),
             res.budgetFraction,
             static_cast<double>(res.epochs.size())});
        csv.rowLabeled(run.point.workload,
                       {res.averagePowerFraction(),
                        res.maxEpochPowerFraction(),
                        res.budgetFraction,
                        static_cast<double>(res.epochs.size())});
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: every avg bar at or slightly below "
                "0.60 (MEM workloads may sit lower: they cannot always "
                "consume the budget).\n");
    return 0;
}
