/**
 * @file
 * Figure 3: FastCap average power consumption normalized to the peak
 * power, for all 16 workloads on the 16-core system under a 60%
 * budget. The paper's claim: every bar sits at or just below 0.6.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig3_power_cap",
                      "Figure 3 (power capping accuracy)",
                      "16 cores, FastCap, budget = 60% of measured "
                      "peak, all 16 workloads");

    const SimConfig scfg = SimConfig::defaultConfig(16);
    const ExperimentConfig cfg = benchutil::expConfig(0.6, 50e6);

    AsciiTable table({"workload", "avg power / peak", "max epoch",
                      "budget", "epochs"});
    CsvWriter csv;
    csv.header({"workload", "avg_power_fraction",
                "max_epoch_fraction", "budget_fraction", "epochs"});

    for (const std::string &wl : workloads::workloadNames()) {
        const ExperimentResult res =
            runWorkload(wl, "FastCap", cfg, scfg);
        table.addRowNumeric(
            wl,
            {res.averagePowerFraction(), res.maxEpochPowerFraction(),
             res.budgetFraction,
             static_cast<double>(res.epochs.size())});
        csv.rowLabeled(wl, {res.averagePowerFraction(),
                            res.maxEpochPowerFraction(),
                            res.budgetFraction,
                            static_cast<double>(res.epochs.size())});
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: every avg bar at or slightly below "
                "0.60 (MEM workloads may sit lower: they cannot always "
                "consume the budget).\n");
    return 0;
}
