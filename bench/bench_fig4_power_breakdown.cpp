/**
 * @file
 * Figure 4: breakdown of the full-system power between cores and the
 * memory subsystem over time (epoch number) for workload MIX3 under a
 * 60% budget. The paper's claim: FastCap quickly repartitions the
 * budget between cores and memory as the workload changes phase.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig4_power_breakdown",
                      "Figure 4 (core vs memory power over time)",
                      "16 cores, MIX3, FastCap, budget = 60%");

    const SimConfig scfg = SimConfig::defaultConfig(16);
    const ExperimentConfig cfg = benchutil::expConfig(0.6, 100e6);
    const ExperimentResult res =
        runWorkload("MIX3", "FastCap", cfg, scfg);

    CsvWriter csv;
    csv.header({"epoch", "core_power_frac", "mem_power_frac",
                "total_frac", "budget_frac"});
    double min_core = 1.0;
    double max_core = 0.0;
    for (const EpochRecord &e : res.epochs) {
        csv.rowNumeric({static_cast<double>(e.epoch),
                        e.corePower / res.peakPower,
                        e.memPower / res.peakPower,
                        e.totalPower / res.peakPower,
                        e.budget / res.peakPower});
        min_core = std::min(min_core, e.corePower / res.peakPower);
        max_core = std::max(max_core, e.corePower / res.peakPower);
    }

    std::printf("\nepochs=%zu  avg total=%.3f of peak (budget 0.60)\n",
                res.epochs.size(), res.averagePowerFraction());
    std::printf("core-power share moved between %.3f and %.3f of peak "
                "across epochs — the budget repartitioning of Fig. 4\n",
                min_core, max_core);
    return 0;
}
