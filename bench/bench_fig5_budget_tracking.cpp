/**
 * @file
 * Figure 5: normalized average power draw over time for MEM3 under
 * budgets of 40%, 60% and 80%. The paper's claims: violations are
 * corrected within ~2 epochs (10 ms), and at B = 80% the MEM workload
 * cannot consume the budget even at maximum frequencies.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig5_budget_tracking",
                      "Figure 5 (power vs time per budget)",
                      "16 cores, MEM3, FastCap, budgets 40/60/80%");

    const SimConfig scfg = SimConfig::defaultConfig(16);

    CsvWriter csv;
    csv.header({"budget", "epoch", "power_fraction"});

    AsciiTable table({"budget", "avg/peak", "max epoch/peak",
                      "worst overshoot", "longest violation (epochs)"});

    for (double budget : {0.4, 0.5, 0.6, 0.8}) {
        const ExperimentResult res = runWorkload(
            "MEM3", "FastCap", benchutil::expConfig(budget, 100e6),
            scfg);

        int streak = 0;
        int worst_streak = 0;
        double worst_over = 0.0;
        for (const EpochRecord &e : res.epochs) {
            csv.rowNumeric({budget, static_cast<double>(e.epoch),
                            e.totalPower / res.peakPower});
            if (e.totalPower > e.budget * 1.01) {
                ++streak;
                worst_streak = std::max(worst_streak, streak);
                worst_over = std::max(
                    worst_over, (e.totalPower - e.budget) / e.budget);
            } else {
                streak = 0;
            }
        }
        table.addRowNumeric(
            AsciiTable::num(budget, 2),
            {res.averagePowerFraction(), res.maxEpochPowerFraction(),
             worst_over, static_cast<double>(worst_streak)});
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: 50%% and 60%% tracked tightly with "
                "violations lasting at most ~2 epochs; 80%% "
                "undershoots (MEM3 cannot draw 80%% of peak even "
                "uncapped). The paper's 40%% case sits below this "
                "platform's floor power (~45%% of peak: static power "
                "plus minimum frequencies), so it saturates at the "
                "floor — see EXPERIMENTS.md.\n");
    return 0;
}
