/**
 * @file
 * Figure 6: average and worst application performance (CPI normalized
 * to the uncapped baseline) for each workload class under three power
 * budgets. The paper's claims: worst ~ average (fairness), and MEM
 * classes degrade less than ILP at the same budget.
 *
 * Runs as one parallel sweep: 16 workloads x {FastCap, Uncapped} x 3
 * budgets; the Uncapped runs are the normalization baselines.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig6_perf_budgets",
                      "Figure 6 (normalized perf per class & budget)",
                      "16 cores, FastCap vs uncapped, budgets "
                      "50/60/70%");

    SweepGrid grid;
    grid.configs = SweepGrid::configsForCores({16});
    grid.workloads = workloads::workloadNames();
    grid.policies = {"FastCap", "Uncapped"};
    grid.budgetFractions = {0.5, 0.6, 0.7};
    grid.targetInstructions = 30e6;
    // Capped runs and their Uncapped baselines must see the same
    // random trace for the normalized CPI to be a paired comparison.
    grid.pairSeedsAcrossPolicies = true;

    const SweepResult sw = SweepRunner(grid).run();
    benchutil::sweepStats(sw);

    AsciiTable table({"class", "budget", "avg norm CPI",
                      "worst norm CPI", "worst/avg"});
    CsvWriter csv;
    csv.header({"class", "budget", "avg", "worst", "unfairness"});

    for (const std::string &cls : benchutil::classNames()) {
        for (std::size_t b = 0; b < grid.budgetFractions.size();
             ++b) {
            const double budget = grid.budgetFractions[b];
            const PerfComparison c = benchutil::classComparison(
                sw, 0, cls, "FastCap", b);
            table.addRowNumeric(
                cls + " B=" + AsciiTable::num(budget, 2),
                {budget, c.average, c.worst, c.unfairness});
            csv.rowLabeled(cls, {budget, c.average, c.worst,
                                 c.unfairness});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: worst only slightly above average "
                "(fair allocation); lower budgets degrade more; MEM "
                "degrades less than ILP at equal budgets.\n");
    return 0;
}
