/**
 * @file
 * Figure 6: average and worst application performance (CPI normalized
 * to the uncapped baseline) for each workload class under three power
 * budgets. The paper's claims: worst ~ average (fairness), and MEM
 * classes degrade less than ILP at the same budget.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig6_perf_budgets",
                      "Figure 6 (normalized perf per class & budget)",
                      "16 cores, FastCap vs uncapped, budgets "
                      "50/60/70%");

    const SimConfig scfg = SimConfig::defaultConfig(16);
    const double instr = 30e6;

    AsciiTable table({"class", "budget", "avg norm CPI",
                      "worst norm CPI", "worst/avg"});
    CsvWriter csv;
    csv.header({"class", "budget", "avg", "worst", "unfairness"});

    for (const std::string &cls : benchutil::classNames()) {
        for (double budget : {0.5, 0.6, 0.7}) {
            const PerfComparison c = benchutil::classComparison(
                cls, "FastCap", budget, instr, scfg);
            table.addRowNumeric(
                cls + " B=" + AsciiTable::num(budget, 2),
                {budget, c.average, c.worst, c.unfairness});
            csv.rowLabeled(cls, {budget, c.average, c.worst,
                                 c.unfairness});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: worst only slightly above average "
                "(fair allocation); lower budgets degrade more; MEM "
                "degrades less than ILP at equal budgets.\n");
    return 0;
}
