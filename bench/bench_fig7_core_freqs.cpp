/**
 * @file
 * Figure 7: core frequencies (GHz) selected by FastCap over time for
 * the core running vortex in ILP1, swim in MEM1, and swim in MIX4,
 * under an 80% budget. The paper's claims: ILP cores run fast; swim
 * runs slower in MEM1 than in MIX4 (in MIX4 the memory slows down, so
 * swim's core speeds up to compensate).
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace fastcap;

namespace {

/** Mean selected frequency (GHz) of core 0 plus its trace. */
double
trace(const char *workload, CsvWriter &csv, const SimConfig &scfg)
{
    const ExperimentResult res = runWorkload(
        workload, "FastCap", benchutil::expConfig(0.8, 100e6), scfg);

    double acc = 0.0;
    for (const EpochRecord &e : res.epochs) {
        // Core 0 runs the first application of the mix (vortex in
        // ILP1, swim in MEM1 and MIX4 — Table III order).
        const Hertz f =
            scfg.coreLadder.at(e.coreFreqIdx[0]);
        csv.row({workload, std::to_string(e.epoch),
                 std::to_string(toGHz(f))});
        acc += toGHz(f);
    }
    return acc / static_cast<double>(res.epochs.size());
}

} // namespace

int
main()
{
    benchutil::banner("bench_fig7_core_freqs",
                      "Figure 7 (per-core frequency traces)",
                      "16 cores, FastCap, budget = 80%; core 0 of "
                      "ILP1 (vortex), MEM1 (swim), MIX4 (swim)");

    const SimConfig scfg = SimConfig::defaultConfig(16);
    CsvWriter csv;
    csv.header({"workload", "epoch", "core0_freq_ghz"});

    const double f_ilp = trace("ILP1", csv, scfg);
    const double f_mem = trace("MEM1", csv, scfg);
    const double f_mix = trace("MIX4", csv, scfg);

    std::printf("\nmean core-0 frequency: vortex/ILP1 %.2f GHz, "
                "swim/MEM1 %.2f GHz, swim/MIX4 %.2f GHz\n",
                f_ilp, f_mem, f_mix);
    std::printf("Expected shape: vortex (ILP1) near the top of the "
                "ladder; swim higher in MIX4 than in MEM1 (core "
                "compensates for the slowed memory).\n");
    return 0;
}
