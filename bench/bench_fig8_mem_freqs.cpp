/**
 * @file
 * Figure 8: memory frequencies (MHz) selected by FastCap over time
 * when running ILP1, MEM1 and MIX4 under an 80% budget. The paper's
 * claims: ILP1 drives the memory to the bottom of the ladder, MEM1
 * keeps it near the top, MIX4 sits in between.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace fastcap;

namespace {

double
trace(const char *workload, CsvWriter &csv, const SimConfig &scfg)
{
    const ExperimentResult res = runWorkload(
        workload, "FastCap", benchutil::expConfig(0.8, 100e6), scfg);
    double acc = 0.0;
    for (const EpochRecord &e : res.epochs) {
        const Hertz f = scfg.memLadder.at(e.memFreqIdx);
        csv.row({workload, std::to_string(e.epoch),
                 std::to_string(toMHz(f))});
        acc += toMHz(f);
    }
    return acc / static_cast<double>(res.epochs.size());
}

} // namespace

int
main()
{
    benchutil::banner("bench_fig8_mem_freqs",
                      "Figure 8 (memory frequency traces)",
                      "16 cores, FastCap, budget = 80%; ILP1, MEM1, "
                      "MIX4");

    const SimConfig scfg = SimConfig::defaultConfig(16);
    CsvWriter csv;
    csv.header({"workload", "epoch", "mem_freq_mhz"});

    const double m_ilp = trace("ILP1", csv, scfg);
    const double m_mem = trace("MEM1", csv, scfg);
    const double m_mix = trace("MIX4", csv, scfg);

    std::printf("\nmean memory frequency: ILP1 %.0f MHz, MEM1 %.0f "
                "MHz, MIX4 %.0f MHz\n", m_ilp, m_mem, m_mix);
    std::printf("Expected shape: ILP1 lowest, MEM1 highest, MIX4 in "
                "between.\n");
    return 0;
}
