/**
 * @file
 * Figure 9: FastCap vs CPU-only*, Freq-Par* and Eql-Pwr in normalized
 * average/worst application performance per workload class at a 60%
 * budget ("*" = fixed memory frequency). The paper's claims: FastCap
 * at least matches CPU-only everywhere; Freq-Par is substantially
 * worse and unfair; Eql-Pwr's worst-case blows up on mixed classes.
 *
 * Runs as one parallel sweep: 16 workloads x 5 policies (the four
 * under test plus the Uncapped normalization baseline).
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig9_policy_comparison",
                      "Figure 9 (policy comparison per class)",
                      "16 cores, budget = 60%, FastCap vs CPU-only* "
                      "vs Freq-Par* vs Eql-Pwr");

    const std::vector<std::string> policies{"FastCap", "CPU-only",
                                            "Freq-Par", "Eql-Pwr"};

    SweepGrid grid;
    grid.configs = SweepGrid::configsForCores({16});
    grid.workloads = workloads::workloadNames();
    grid.policies = policies;
    grid.policies.push_back("Uncapped");
    grid.budgetFractions = {0.6};
    grid.targetInstructions = 30e6;
    // Every policy (and the Uncapped baseline) runs the identical
    // random trace per workload: paired normalized-CPI comparison.
    grid.pairSeedsAcrossPolicies = true;

    const SweepResult sw = SweepRunner(grid).run();
    benchutil::sweepStats(sw);

    AsciiTable table({"class / policy", "avg norm CPI",
                      "worst norm CPI", "worst/avg"});
    CsvWriter csv;
    csv.header({"class", "policy", "avg", "worst", "unfairness"});

    for (const std::string &cls : benchutil::classNames()) {
        for (const std::string &policy : policies) {
            const PerfComparison c =
                benchutil::classComparison(sw, 0, cls, policy, 0);
            table.addRowNumeric(cls + " " + policy,
                                {c.average, c.worst, c.unfairness});
            csv.row({cls, policy, AsciiTable::num(c.average, 4),
                     AsciiTable::num(c.worst, 4),
                     AsciiTable::num(c.unfairness, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: FastCap <= CPU-only in average and "
                "worst loss; Freq-Par notably worse and with a large "
                "worst/avg gap; Eql-Pwr's worst-case inflated on MIX "
                "classes.\n");
    return 0;
}
