/**
 * @file
 * Figure 9: FastCap vs CPU-only*, Freq-Par* and Eql-Pwr in normalized
 * average/worst application performance per workload class at a 60%
 * budget ("*" = fixed memory frequency). The paper's claims: FastCap
 * at least matches CPU-only everywhere; Freq-Par is substantially
 * worse and unfair; Eql-Pwr's worst-case blows up on mixed classes.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_fig9_policy_comparison",
                      "Figure 9 (policy comparison per class)",
                      "16 cores, budget = 60%, FastCap vs CPU-only* "
                      "vs Freq-Par* vs Eql-Pwr");

    const SimConfig scfg = SimConfig::defaultConfig(16);
    const double instr = 30e6;
    const std::vector<std::string> policies{"FastCap", "CPU-only",
                                            "Freq-Par", "Eql-Pwr"};

    AsciiTable table({"class / policy", "avg norm CPI",
                      "worst norm CPI", "worst/avg"});
    CsvWriter csv;
    csv.header({"class", "policy", "avg", "worst", "unfairness"});

    for (const std::string &cls : benchutil::classNames()) {
        for (const std::string &policy : policies) {
            const PerfComparison c = benchutil::classComparison(
                cls, policy, 0.6, instr, scfg);
            table.addRowNumeric(cls + " " + policy,
                                {c.average, c.worst, c.unfairness});
            csv.row({cls, policy, AsciiTable::num(c.average, 4),
                     AsciiTable::num(c.worst, 4),
                     AsciiTable::num(c.unfairness, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: FastCap <= CPU-only in average and "
                "worst loss; Freq-Par notably worse and with a large "
                "worst/avg gap; Eql-Pwr's worst-case inflated on MIX "
                "classes.\n");
    return 0;
}
