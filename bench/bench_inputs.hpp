/**
 * @file
 * Synthetic PolicyInputs generator for the solver microbenchmarks
 * (Table I and the overhead study): N heterogeneous cores with
 * paper-like ladders, no simulator in the loop.
 */

#ifndef FASTCAP_BENCH_BENCH_INPUTS_HPP
#define FASTCAP_BENCH_BENCH_INPUTS_HPP

#include <cstddef>

#include "core/inputs.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace benchutil {

/**
 * Build heterogeneous inputs for `n` cores with `m` memory levels and
 * `f` core levels: a mix of compute-, balanced and memory-bound
 * cores, deterministic per seed.
 */
inline PolicyInputs
syntheticInputs(std::size_t n, std::size_t m = 10, std::size_t f = 10,
                std::uint64_t seed = 42)
{
    Rng rng(seed);
    PolicyInputs in;
    in.cores.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        CoreModel &c = in.cores[i];
        // Cycle through application archetypes.
        switch (i % 4) {
          case 0: c.zbar = rng.uniform(500e-9, 800e-9); break;
          case 1: c.zbar = rng.uniform(250e-9, 500e-9); break;
          case 2: c.zbar = rng.uniform(80e-9, 200e-9); break;
          default: c.zbar = rng.uniform(15e-9, 40e-9); break;
        }
        c.cache = 7.5e-9;
        c.pi = rng.uniform(1.2, 3.5);
        c.alpha = rng.uniform(2.3, 3.1);
        c.pStatic = 1.0;
        c.ipa = rng.uniform(100.0, 2500.0);
        c.measuredPower = c.pi * 0.8 + c.pStatic;
        c.measuredIps = c.ipa / (c.zbar + 60e-9);
    }

    ControllerModel ctl;
    ctl.q = 1.4;
    ctl.u = 1.8;
    ctl.sm = 33e-9;
    ctl.sbBar = 1.875e-9;
    in.memory.controllers = {ctl};
    in.memory.pm = 8.0 + 0.25 * static_cast<double>(n);
    in.memory.beta = 1.1;
    in.memory.pStatic = 12.0;
    in.memory.measuredPower = in.memory.pm * 0.8 + 12.0;

    in.accessProbs.assign(n, {1.0});
    for (std::size_t i = 0; i < f; ++i)
        in.coreRatios.push_back(
            0.55 + 0.45 * static_cast<double>(i) /
                static_cast<double>(f - 1));
    for (std::size_t i = 0; i < m; ++i)
        in.memRatios.push_back(
            0.2575 + 0.7425 * static_cast<double>(i) /
                static_cast<double>(m - 1));
    in.background = 10.0;

    // 60% of the all-max model power.
    double max_power = in.staticPower() + in.memory.pm;
    for (const CoreModel &c : in.cores)
        max_power += c.pi;
    in.budget = 0.6 * max_power;
    return in;
}

/**
 * Homogeneous inputs: `n` identical cores (one solver equivalence
 * class), the shape of the paper's fig. 10/12 single-application
 * configurations and the best case for the class-collapsed hot path.
 */
inline PolicyInputs
syntheticHomogeneousInputs(std::size_t n, std::size_t m = 10,
                           std::size_t f = 10)
{
    PolicyInputs in = syntheticInputs(n, m, f);
    const CoreModel proto = in.cores.front();
    for (CoreModel &c : in.cores)
        c = proto;

    // Budget re-derived: every core now draws the prototype's power.
    double max_power = in.staticPower() + in.memory.pm;
    for (const CoreModel &c : in.cores)
        max_power += c.pi;
    in.budget = 0.6 * max_power;
    return in;
}

} // namespace benchutil
} // namespace fastcap

#endif // FASTCAP_BENCH_BENCH_INPUTS_HPP
