/**
 * @file
 * Many-core simulation-engine throughput: the per-epoch cost of
 * capped experiments at 256 and 1024 cores on the sharded engine,
 * plus the raw window-simulation pair the perf-smoke CI job gates on
 * (BM_SimWindow vs BM_SimWindowReference — the monolithic engine on
 * the same configuration, so the speedup ratio is machine-portable
 * just like the solver's optimised-vs-reference pairs).
 *
 * Every benchmark reports items_per_second as *epochs (or windows)
 * per second*; tools/check_overhead.py tracks those throughputs
 * against bench/manycore_baseline.json:
 *
 *   bench_manycore --benchmark_out=BENCH_manycore.json \
 *                  --benchmark_out_format=json
 *   check_overhead.py BENCH_manycore.json bench/manycore_baseline.json
 *
 * Shard workers are pinned to 1 throughout: single-thread numbers are
 * comparable across hosts, while multi-worker speedups depend on the
 * runner's core count (the determinism suite, not this bench, owns
 * the thread-count story).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "harness/experiment.hpp"
#include "policies/registry.hpp"
#include "sim/engine/backend.hpp"
#include "sim/engine/sharded_system.hpp"
#include "sim/system.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

namespace {

SimConfig
benchConfig(int cores)
{
    SimConfig cfg = SimConfig::defaultConfig(cores);
    cfg.seed = 0xbe7c4a5eULL;
    return cfg;
}

/**
 * Raw DES throughput: one profiling window on a MIX workload at max
 * frequencies. The sharded engine runs serially (1 worker) so the
 * Reference pair below yields a host-portable ratio.
 */
void
BM_SimWindow(benchmark::State &state)
{
    const int cores = static_cast<int>(state.range(0));
    const SimConfig cfg = benchConfig(cores);
    ShardedSystem sys(cfg, workloads::mix("MIX1", cores),
                      (cores + 63) / 64, 1);
    sys.maxFrequencies();
    for (auto _ : state) {
        WindowStats w = sys.runWindow(cfg.profileWindow);
        benchmark::DoNotOptimize(w);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimWindow)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/** The monolithic engine on the same configuration (the baseline). */
void
BM_SimWindowReference(benchmark::State &state)
{
    const int cores = static_cast<int>(state.range(0));
    const SimConfig cfg = benchConfig(cores);
    ManyCoreSystem sys(cfg, workloads::mix("MIX1", cores));
    sys.maxFrequencies();
    for (auto _ : state) {
        WindowStats w = sys.runWindow(cfg.profileWindow);
        benchmark::DoNotOptimize(w);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimWindowReference)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/**
 * Steady-state capped-experiment epochs: profile window, policy
 * decision, execution window, extrapolation — the unit the 1024-core
 * tier's wall time is made of. items_per_second = epochs/sec.
 */
void
cappedEpochs(benchmark::State &state, const std::string &policy_name,
             int cores)
{
    const SimConfig cfg = benchConfig(cores);
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.6;
    ecfg.targetInstructions = 1e15; // never completes: pure epochs
    ecfg.maxEpochs = 1 << 30;
    ecfg.shards = 0;       // auto: one shard per 64 cores
    ecfg.shardThreads = 1; // serial, host-portable
    ecfg.measurePeak = false; // nameplate: keeps setup out of iters

    auto policy = makePolicy(policy_name);
    ExperimentRunner runner(cfg, workloads::mix("MIX2", cores),
                            *policy, ecfg);
    runner.step(); // warm the fitter and the policy's warm start
    for (auto _ : state) {
        EpochRecord rec = runner.step();
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}

#define FASTCAP_EPOCH_BENCH(policy, name)                              \
    void BM_CappedEpoch_##name(benchmark::State &state)                \
    {                                                                  \
        cappedEpochs(state, policy,                                    \
                     static_cast<int>(state.range(0)));                \
    }                                                                  \
    BENCHMARK(BM_CappedEpoch_##name)                                   \
        ->Unit(benchmark::kMillisecond)

// Every many-core-capable policy at 256 cores; the two ends of the
// cost spectrum (FastCap and the no-op Uncapped baseline) at 1024 as
// well. MaxBIPS is absent by design: it refuses systems beyond 8
// cores (the 10^N combination wall it exists to illustrate).
FASTCAP_EPOCH_BENCH("FastCap", FastCap)->Arg(256)->Arg(1024);
FASTCAP_EPOCH_BENCH("Uncapped", Uncapped)->Arg(256)->Arg(1024);
FASTCAP_EPOCH_BENCH("CPU-only", CpuOnly)->Arg(256);
FASTCAP_EPOCH_BENCH("Freq-Par", FreqPar)->Arg(256);
FASTCAP_EPOCH_BENCH("Eql-Pwr", EqlPwr)->Arg(256);
FASTCAP_EPOCH_BENCH("Eql-Freq", EqlFreq)->Arg(256);

} // namespace

BENCHMARK_MAIN();
