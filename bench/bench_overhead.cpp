/**
 * @file
 * Section IV-B, "Epoch length and algorithm overhead": the FastCap
 * algorithm's per-invocation wall time. The paper measured
 * 33.5 us / 64.9 us / 133.5 us at 16/32/64 cores (0.7% / 1.3% / 2.7%
 * of a 5 ms epoch) on their machine; absolute numbers differ on other
 * hosts, but the ~linear growth in N and the small fraction of the
 * epoch must hold.
 *
 * This binary also carries the many-core scaling study for the
 * solver hot path (64/256/1024 cores, homogeneous and heterogeneous
 * mixes) and its per-core reference baseline, so one run yields both
 * the absolute per-epoch cost and the optimised-vs-reference speedup
 * the perf-smoke CI job tracks. Emit machine-readable results with
 *
 *   bench_overhead --benchmark_out=BENCH_solver_overhead.json \
 *                  --benchmark_out_format=json
 *
 * and compare against the committed baseline with
 * tools/check_overhead.py (speedup ratios are machine-portable;
 * absolute times are informational).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/math.hpp"

#include "bench_inputs.hpp"
#include "core/fastcap_policy.hpp"
#include "core/model_fitter.hpp"
#include "core/solver.hpp"
#include "telemetry/registry.hpp"

using namespace fastcap;

namespace {

void
BM_EpochDecision(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(n);
    FastCapPolicy policy;
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
    // Compare the reported time/iteration against the 5 ms epoch to
    // obtain the paper's overhead percentage (0.7% / 1.3% / 2.7%).
}
BENCHMARK(BM_EpochDecision)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

/**
 * Cold solve (no warm-start carry-over between iterations) on the
 * optimised hot path: a fresh solver per epoch, as a governor
 * restarted every epoch would pay.
 */
void
solveScaling(benchmark::State &state, const PolicyInputs &in,
             bool reference)
{
    SolverOptions opts;
    opts.referenceImpl = reference;
    for (auto _ : state) {
        FastCapSolver solver(in, opts);
        SolveResult res = solver.solve();
        benchmark::DoNotOptimize(res);
    }
}

void
BM_SolveHomogeneous(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    solveScaling(state, benchutil::syntheticHomogeneousInputs(n),
                 false);
}
BENCHMARK(BM_SolveHomogeneous)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void
BM_SolveHomogeneousReference(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    solveScaling(state, benchutil::syntheticHomogeneousInputs(n),
                 true);
}
BENCHMARK(BM_SolveHomogeneousReference)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void
BM_SolveHeterogeneous(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    solveScaling(state, benchutil::syntheticInputs(n), false);
}
BENCHMARK(BM_SolveHeterogeneous)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void
BM_SolveHeterogeneousReference(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    solveScaling(state, benchutil::syntheticInputs(n), true);
}
BENCHMARK(BM_SolveHeterogeneousReference)->Arg(64)->Arg(256)
    ->Arg(1024)->Unit(benchmark::kMicrosecond);

/**
 * Steady-state governor: one policy object deciding epoch after
 * epoch, so the warm start (memory-level fast path) is active from
 * the second iteration on. This is the per-epoch cost an online
 * deployment actually pays.
 */
void
BM_EpochDecisionWarm(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticHomogeneousInputs(n);
    FastCapPolicy policy;
    (void)policy.decide(in); // prime the warm-start hint
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
}
BENCHMARK(BM_EpochDecisionWarm)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/**
 * Telemetry overhead on the hot path: the same steady-state epoch
 * decision with the metrics registry enabled (counters, gauges,
 * registry lookups) vs disabled (one predicted-false branch per
 * write site). The BM_EpochTelemetryReference/BM_EpochTelemetry
 * ratio is what the perf-smoke job gates at 2%: telemetry must stay
 * observationally free, in cost as well as in results.
 */
void
epochTelemetry(benchmark::State &state, bool telemetry_on)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(n);
    FastCapPolicy policy;
    (void)policy.decide(in); // prime the warm-start hint
    telemetry::setEnabled(telemetry_on);
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
    telemetry::setEnabled(false);
}

void
BM_EpochTelemetry(benchmark::State &state)
{
    epochTelemetry(state, true);
}
BENCHMARK(BM_EpochTelemetry)->Arg(64)->Unit(benchmark::kMicrosecond);

/** Registry off: the cost an un-instrumented epoch pays. */
void
BM_EpochTelemetryReference(benchmark::State &state)
{
    epochTelemetry(state, false);
}
BENCHMARK(BM_EpochTelemetryReference)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void
BM_ModelRefit(benchmark::State &state)
{
    // The per-epoch Eq. 2/3 refit cost for N cores on the
    // incremental (rank-1 moment update) tracker.
    const auto n = static_cast<std::size_t>(state.range(0));
    ModelFitter fitter(n);
    double x = 1.0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            fitter.observeCore(i, x, 3.0 * x * x * x + 0.01);
        fitter.observeMemory(x, 12.0 * x);
        benchmark::DoNotOptimize(fitter.core(n - 1));
        x = (x == 1.0) ? 0.775 : (x == 0.775 ? 0.55 : 1.0);
    }
}
BENCHMARK(BM_ModelRefit)->Arg(16)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/**
 * The pre-incremental refit as the comparison baseline: a
 * from-scratch log-log fitPowerLaw over the 3-deep history on every
 * observation — what each epoch paid per core before the tracker
 * kept running moments. The BM_ModelRefit/BM_ModelRefitReference
 * ratio is the non-solver epoch-overhead drop the perf-smoke job
 * tracks.
 */
void
BM_ModelRefitReference(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    struct BatchTracker
    {
        std::deque<std::pair<double, double>> history;
        FittedModel model;

        void
        observe(double ratio, double power)
        {
            for (auto &s : history) {
                if (std::abs(s.first - ratio) <= 1e-6) {
                    s.second = 0.5 * s.second + 0.5 * power;
                    refit();
                    return;
                }
            }
            history.emplace_back(ratio, power);
            while (history.size() > 3)
                history.pop_front();
            refit();
        }

        void
        refit()
        {
            if (history.size() < 2) {
                model.scale = history.front().second /
                    std::pow(history.front().first, 2.5);
                return;
            }
            std::vector<double> xs, ys;
            for (const auto &s : history) {
                xs.push_back(s.first);
                ys.push_back(s.second);
            }
            const PowerLawFit fit = fitPowerLaw(xs, ys);
            model.scale = fit.scale;
            model.exponent = std::clamp(fit.exponent, 0.3, 4.0);
        }
    };

    std::vector<BatchTracker> cores(n);
    BatchTracker mem;
    double x = 1.0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            cores[i].observe(x, 3.0 * x * x * x + 0.01);
        mem.observe(x, 12.0 * x);
        benchmark::DoNotOptimize(cores[n - 1].model);
        x = (x == 1.0) ? 0.775 : (x == 0.775 ? 0.55 : 1.0);
    }
}
BENCHMARK(BM_ModelRefitReference)->Arg(16)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    // Floor-power warnings fire per solve in tight synthetic cases;
    // they are expected here and would swamp the benchmark output.
    fastcap::Logger::global().level(fastcap::LogLevel::Silent);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
