/**
 * @file
 * Section IV-B, "Epoch length and algorithm overhead": the FastCap
 * algorithm's per-invocation wall time at 16/32/64 cores. The paper
 * measured 33.5 us / 64.9 us / 133.5 us (0.7% / 1.3% / 2.7% of a 5 ms
 * epoch) on their machine; absolute numbers differ on other hosts,
 * but the ~linear growth in N and the small fraction of the epoch
 * must hold.
 *
 * Also covers the full governor path (counter conversion + model
 * fitting + solve) as used once per epoch.
 */

#include <benchmark/benchmark.h>

#include "util/logging.hpp"

#include "bench_inputs.hpp"
#include "core/fastcap_policy.hpp"
#include "core/model_fitter.hpp"

using namespace fastcap;

namespace {

void
BM_EpochDecision(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(n);
    FastCapPolicy policy;
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
    // Compare the reported time/iteration against the 5 ms epoch to
    // obtain the paper's overhead percentage (0.7% / 1.3% / 2.7%).
}
BENCHMARK(BM_EpochDecision)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void
BM_ModelRefit(benchmark::State &state)
{
    // The per-epoch Eq. 2/3 refit cost for N cores.
    const auto n = static_cast<std::size_t>(state.range(0));
    ModelFitter fitter(n);
    double x = 1.0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            fitter.observeCore(i, x, 3.0 * x * x * x + 0.01);
        fitter.observeMemory(x, 12.0 * x);
        benchmark::DoNotOptimize(fitter.core(n - 1));
        x = (x == 1.0) ? 0.775 : (x == 0.775 ? 0.55 : 1.0);
    }
}
BENCHMARK(BM_ModelRefit)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    // Floor-power warnings fire per solve in tight synthetic cases;
    // they are expected here and would swamp the benchmark output.
    fastcap::Logger::global().level(fastcap::LogLevel::Silent);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
