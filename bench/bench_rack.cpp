/**
 * @file
 * Rack-scale capping throughput: the headline 64-machine x 1024-core
 * oversubscribed rack (65,536 cores under one budget) stepped through
 * whole cluster epochs — arbitration, dispatch, 64 machine epochs,
 * collection — under the two routine stress scenarios, a flash crowd
 * and a machine failure with restore.
 *
 * items_per_second is *cluster epochs per second*;
 * tools/check_overhead.py tracks it against bench/rack_baseline.json:
 *
 *   bench_rack --benchmark_out=BENCH_rack.json \
 *              --benchmark_out_format=json
 *   check_overhead.py BENCH_rack.json bench/rack_baseline.json
 *
 * Machine stepping and shard workers are pinned to 1 so the numbers
 * are single-thread host-portable; the cluster determinism tier (not
 * this bench) owns the parallel-equals-serial story. Iteration counts
 * are fixed because each epoch costs seconds and the failure schedule
 * is phrased in epoch numbers.
 */

#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"

using namespace fastcap;

namespace {

ClusterConfig
rackConfig()
{
    ClusterConfig cfg;
    cfg.machines = 64;
    cfg.machine = SimConfig::defaultConfig(1024);
    cfg.machine.seed = 0xbe7c4a5eULL;
    cfg.rackBudgetFraction = 0.6; // oversubscribed
    cfg.maxEpochs = 1 << 30;      // the bench owns the epoch count
    cfg.machineThreads = 1;
    cfg.shardThreads = 1;
    return cfg;
}

/** Flash crowd: arrival rate spikes 5x mid-run across the rack. */
void
BM_RackFlashCrowd(benchmark::State &state)
{
    ClusterConfig cfg = rackConfig();
    cfg.trace = "gen:flash,rate=4000,horizon=0.1,max-cores=128,"
                "apps=swim+applu,flash-start=0.002,"
                "flash-duration=0.02,flash-factor=5,seed=7";
    Cluster cluster(cfg); // peak measurement stays out of the loop
    for (auto _ : state) {
        ClusterEpochRecord rec = cluster.step();
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}
// Machines step on pool threads, so the bench thread's own CPU time
// is meaningless: measure whole-process CPU and report throughput
// against wall time.
BENCHMARK(BM_RackFlashCrowd)
    ->Iterations(3)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/** A machine dies at epoch 1 and is restored at epoch 3. */
void
BM_RackMachineFailure(benchmark::State &state)
{
    ClusterConfig cfg = rackConfig();
    cfg.trace = "gen:poisson,rate=2000,horizon=0.1,max-cores=128,"
                "apps=swim+applu,seed=9";
    cfg.failures = {{17, 1, 3}};
    Cluster cluster(cfg);
    for (auto _ : state) {
        ClusterEpochRecord rec = cluster.step();
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RackMachineFailure)
    ->Iterations(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
