/**
 * @file
 * The 1024-core experiment tier, figure-style: FastCap vs Eql-Freq
 * (and the Uncapped normalization baseline) on a MIX workload at
 * 50% / 70% budgets, 1024 cores on the sharded engine — the scale
 * the paper's evaluation tops out well short of (64 cores). Reports
 * budget tracking (average/max epoch power as fractions of peak) and
 * paired normalized CPI per policy and budget.
 *
 * Beyond the paper: this regenerates the shape of Figs. 3/6 at 16x
 * the paper's largest configuration, and doubles as the end-to-end
 * smoke of the sharded engine tier (ctest runs it in the bench
 * label).
 */

#include <cstdio>

#include "common.hpp"
#include "harness/metrics.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_scale_1024core",
                      "1024-core capping tier (beyond Table II)",
                      "1024 cores, sharded engine, MIX1, budgets "
                      "50%/70%, FastCap vs Eql-Freq");

    const std::vector<std::string> policies{"FastCap", "Eql-Freq"};

    SweepGrid grid;
    grid.configs = SweepGrid::configsForCores({1024});
    grid.workloads = {"MIX1"};
    grid.policies = policies;
    grid.policies.push_back("Uncapped");
    grid.budgetFractions = {0.5, 0.7};
    grid.targetInstructions = 10e6;
    grid.pairSeedsAcrossPolicies = true;
    // One run at a time, each fanned over all hardware workers: the
    // opposite split from the small-grid benches (runs are heavy and
    // few, shards are many).
    grid.shards = 0;
    grid.shardThreads = 0;

    const SweepResult sw = SweepRunner(grid, 1).run();
    benchutil::sweepStats(sw);

    AsciiTable table({"policy / budget", "avg power frac",
                      "max epoch frac", "avg norm CPI",
                      "worst norm CPI"});
    CsvWriter csv;
    csv.header({"policy", "budget", "avg_power_frac",
                "max_epoch_frac", "avg_norm_cpi", "worst_norm_cpi"});

    for (std::size_t b = 0; b < grid.budgetFractions.size(); ++b) {
        for (const std::string &policy : policies) {
            const std::size_t pol = sw.grid.policyIndex(policy);
            const std::size_t base = sw.grid.policyIndex("Uncapped");
            const ExperimentResult &res =
                sw.at(0, 0, pol, b, 0).result;
            const PerfComparison cmp = comparePerformance(
                res, sw.at(0, 0, base, b, 0).result);
            const std::string label = policy + " @ " +
                AsciiTable::num(grid.budgetFractions[b], 2);
            table.addRowNumeric(label,
                                {res.averagePowerFraction(),
                                 res.maxEpochPowerFraction(),
                                 cmp.average, cmp.worst});
            csv.row({policy, AsciiTable::num(grid.budgetFractions[b], 2),
                     AsciiTable::num(res.averagePowerFraction(), 4),
                     AsciiTable::num(res.maxEpochPowerFraction(), 4),
                     AsciiTable::num(cmp.average, 4),
                     AsciiTable::num(cmp.worst, 4)});
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: both policies track the budget "
                "within a few percent at 16x the paper's largest "
                "configuration; FastCap delivers the better average "
                "and the fairer worst-case CPI at the 70%% budget. "
                "Runs here are short, so the online fit is "
                "transient-heavy — treat the CPI columns as tracking "
                "data, not Fig. 9-grade verdicts.\n");
    return 0;
}
