/**
 * @file
 * Table I: time-complexity comparison of the capping algorithms.
 *
 *   Exhaustive (MaxBIPS, [14])    ~ O(F^N)        — only tiny N
 *   Heuristics (Eql-Freq-like)    ~ O(F N log N)  — here O(F M N)
 *   FastCap                       O(N log M)
 *
 * The benchmark times each policy's per-epoch decision on synthetic
 * inputs as N grows. The paper's claim: FastCap scales linearly with
 * the number of cores while the alternatives blow up (MaxBIPS is
 * exponential and infeasible past a handful of cores).
 */

#include <benchmark/benchmark.h>

#include "util/logging.hpp"

#include "bench_inputs.hpp"
#include "core/fastcap_policy.hpp"
#include "core/solver.hpp"
#include "policies/eql_freq.hpp"
#include "policies/eql_pwr.hpp"
#include "policies/max_bips.hpp"
#include "policies/steepest_drop.hpp"

using namespace fastcap;

namespace {

void
BM_FastCapSolve(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(n);
    FastCapPolicy policy;
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FastCapSolve)
    ->RangeMultiplier(2)
    ->Range(4, 512)
    ->Complexity(benchmark::oN);

void
BM_FastCapSolve_MemLevels(benchmark::State &state)
{
    // O(log M) in the memory-ladder size at fixed N = 16.
    const auto m = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(16, m);
    FastCapPolicy policy;
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FastCapSolve_MemLevels)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity(benchmark::oLogN);

void
BM_EqlPwr(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(n);
    EqlPwrPolicy policy;
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EqlPwr)->RangeMultiplier(2)->Range(4, 512)->Complexity();

void
BM_EqlFreq(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(n);
    EqlFreqPolicy policy;
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EqlFreq)->RangeMultiplier(2)->Range(4, 512)->Complexity();

void
BM_SteepestDrop(benchmark::State &state)
{
    // The Table I heuristic family (measured ~N^2 here; see
    // steepest_drop.hpp).
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(n);
    SteepestDropPolicy policy;
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SteepestDrop)->RangeMultiplier(2)->Range(4, 512)
    ->Complexity();

void
BM_MaxBips_Exponential(benchmark::State &state)
{
    // F^N * M model evaluations: 2 cores ~ 10^3, 4 cores ~ 10^5,
    // 6 cores ~ 10^7 — the wall Table I describes.
    const auto n = static_cast<std::size_t>(state.range(0));
    const PolicyInputs in = benchutil::syntheticInputs(n);
    MaxBipsPolicy policy(8);
    for (auto _ : state) {
        PolicyDecision dec = policy.decide(in);
        benchmark::DoNotOptimize(dec);
    }
}
BENCHMARK(BM_MaxBips_Exponential)->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // Floor-power warnings fire per solve in tight synthetic cases;
    // they are expected here and would swamp the benchmark output.
    fastcap::Logger::global().level(fastcap::LogLevel::Silent);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
