/**
 * @file
 * Trace-replay throughput: how fast the streaming trace layer moves
 * events from a generator through the deterministic replayer, bare
 * (no simulator) and inside a full trace-driven experiment. The bare
 * numbers bound the cost the trace subsystem adds to an epoch loop;
 * the experiment row shows it disappearing into simulation time.
 *
 * Events are generated lazily and replay state is bounded by the
 * machine, so the event counts here could be scaled by 1000x without
 * changing the memory footprint — the scale suite pins that; this
 * bench reports the speed.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_replay.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace fastcap;

namespace {

double
secondsSince(
    const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Replay `spec` on a bare replayer; returns events per second. */
double
bareReplayRate(const std::string &spec, int cores,
               std::size_t &events)
{
    TraceReplayer rep(makeTraceSource(spec), cores);
    const auto start = std::chrono::steady_clock::now();
    rep.advanceTo(1e9, [](int, const AppProfile &) {});
    const double elapsed = secondsSince(start);
    events = rep.stats().arrivals;
    return elapsed > 0.0 ? static_cast<double>(events) / elapsed
                         : 0.0;
}

} // namespace

int
main()
{
    benchutil::banner(
        "bench_trace_replay",
        "trace-subsystem throughput (streaming generators + replay)",
        "200k events per generator kind on 64 cores, then a "
        "trace-driven 16-core FastCap experiment");

    Logger::global().level(LogLevel::Silent);

    const std::vector<std::pair<std::string, std::string>> kinds = {
        {"poisson", "gen:poisson,rate=4e6,horizon=1,"
                    "events=200000,mean-duration=2e-5,seed=1"},
        {"mmpp", "gen:mmpp,rate=1e6,burst-factor=8,horizon=1,"
                 "events=200000,mean-duration=2e-5,seed=2"},
        {"sine", "gen:sine,rate=4e6,amplitude=0.8,period=0.01,"
                 "horizon=1,events=200000,mean-duration=2e-5,seed=3"},
        {"flash", "gen:flash,rate=1e6,flash-start=0.01,"
                  "flash-duration=0.01,flash-factor=20,horizon=1,"
                  "events=200000,mean-duration=2e-5,seed=4"},
        {"batch", "gen:batch,rate=1e6,batch-mean=4,max-cores=4,"
                  "horizon=1,events=200000,mean-duration=2e-5,"
                  "seed=5"},
    };

    AsciiTable table({"source", "events", "Mevents/s"});
    CsvWriter csv;
    csv.header({"source", "events", "mevents_per_s"});

    for (const auto &[kind, spec] : kinds) {
        std::size_t events = 0;
        const double rate = bareReplayRate(spec, 64, events);
        table.addRowNumeric(kind,
                            {static_cast<double>(events),
                             rate / 1e6});
        csv.row({kind, std::to_string(events),
                 AsciiTable::num(rate / 1e6, 3)});
    }

    // One full trace-driven experiment for the end-to-end view.
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.7;
    ecfg.targetInstructions = 1e12;
    ecfg.maxEpochs = 20;
    ecfg.scenario.name = "bench";
    ecfg.scenario.trace =
        "gen:mmpp,rate=500,burst-factor=8,horizon=0.1,max-cores=2,"
        "seed=6";
    const auto start = std::chrono::steady_clock::now();
    const ExperimentResult res = runWorkload(
        "MIX1", "FastCap", ecfg, SimConfig::defaultConfig(16));
    const double elapsed = secondsSince(start);
    table.addRowNumeric(
        "experiment(16c)",
        {static_cast<double>(res.trace.arrivals),
         elapsed > 0.0
             ? static_cast<double>(res.trace.arrivals) / elapsed /
                   1e6
             : 0.0});
    csv.row({"experiment_16c", std::to_string(res.trace.arrivals),
             AsciiTable::num(elapsed, 3)});

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: bare replay streams millions of "
                "events per second for every generator kind, so the "
                "trace layer is invisible next to the simulation "
                "itself in the experiment row.\n");
    return 0;
}
