/**
 * @file
 * Transient response to a runtime budget drop (the re-convergence
 * behaviour behind the paper's Figs. 7/8): every policy runs the same
 * MIX1 trace under a schedule that cuts the budget from 90% to 50% of
 * peak mid-run, and we measure how many epochs each needs to settle
 * under the new cap, how much energy it overshoots by while settling,
 * and how often it violates the instantaneous budget overall.
 *
 * The runs never complete their instruction targets — the experiment
 * is a fixed 30-epoch horizon around the step, which keeps the whole
 * bench inside the `smoke` ctest budget.
 */

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace fastcap;

int
main()
{
    benchutil::banner("bench_transient_response",
                      "budget-step transient (Figs. 7/8 dynamics)",
                      "8 cores, MIX1, budget 0.9 -> 0.6 at t=50ms, "
                      "30-epoch horizon, all capping policies");

    // The horizon intentionally outlives the instruction target;
    // silence the per-run maxEpochs warnings.
    Logger::global().level(LogLevel::Silent);

    const std::vector<std::string> policies{
        "FastCap", "CPU-only", "Freq-Par", "Eql-Pwr", "Eql-Freq"};

    // The post-drop level must stay feasible: MIX1 on the 8-core
    // configuration cannot run below ~0.52 of measured peak even at
    // the frequency floor.
    Scenario drop;
    drop.name = "budget-drop";
    drop.budget.addStep(0.0, 0.9);
    drop.budget.addStep(0.05, 0.6); // epoch 10 of 5 ms epochs

    SweepGrid grid;
    grid.configs = SweepGrid::configsForCores({8});
    grid.workloads = {"MIX1"};
    grid.scenarios = {drop};
    grid.policies = policies;
    grid.budgetFractions = {0.9}; // pre-step level; schedule overrides
    grid.targetInstructions = 1e12;
    grid.maxEpochs = 30;
    grid.pairSeedsAcrossPolicies = true;

    const SweepResult sw = SweepRunner(grid).run();
    benchutil::sweepStats(sw);

    AsciiTable table({"policy", "settle epochs", "overshoot (mJ)",
                      "violation rate", "avg power / peak"});
    CsvWriter csv;
    csv.header({"policy", "settling_epochs", "overshoot_mj",
                "violation_rate", "avg_power_frac"});

    for (const std::string &policy : policies) {
        const ExperimentResult &res =
            sw.at(0, 0, 0, grid.policyIndex(policy), 0, 0).result;
        const TransientSummary ts = analyzeTransients(res);
        table.addRowNumeric(
            policy,
            {static_cast<double>(ts.worstSettlingEpochs),
             ts.overshootEnergy * 1e3, ts.violationRate,
             res.averagePowerFraction()});
        csv.row({policy, std::to_string(ts.worstSettlingEpochs),
                 AsciiTable::num(ts.overshootEnergy * 1e3, 4),
                 AsciiTable::num(ts.violationRate, 4),
                 AsciiTable::num(res.averagePowerFraction(), 4)});
    }

    std::printf("\n");
    table.print();
    std::printf("\nExpected shape: FastCap re-converges within a few "
                "epochs of the drop with little overshoot energy; the "
                "baselines settle more slowly or keep violating the "
                "lowered budget.\n");
    return 0;
}
