/**
 * @file
 * Shared helpers for the figure/table reproduction benches. Each
 * bench prints (a) a banner naming the paper artifact it regenerates,
 * (b) a human-readable table, and (c) CSV rows for external plotting.
 */

#ifndef FASTCAP_BENCH_COMMON_HPP
#define FASTCAP_BENCH_COMMON_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "harness/sweep.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace benchutil {

/** Standard experiment knobs for figure benches. */
inline ExperimentConfig
expConfig(double budget, double target_instructions)
{
    ExperimentConfig cfg;
    cfg.budgetFraction = budget;
    cfg.targetInstructions = target_instructions;
    cfg.maxEpochs = 2000;
    return cfg;
}

/** Banner tying the output to the paper artifact. */
inline void
banner(const char *bench, const char *artifact, const char *setup)
{
    std::printf("==============================================================\n");
    std::printf("%s — reproduces %s\n", bench, artifact);
    std::printf("%s\n", setup);
    std::printf("==============================================================\n");
}

/** Run one workload under a policy and under the uncapped baseline,
 *  returning the normalized-performance comparison. */
inline PerfComparison
compareToBaseline(const std::string &workload,
                  const std::string &policy, double budget,
                  double instr, const SimConfig &scfg)
{
    const ExperimentConfig cfg = expConfig(budget, instr);
    const ExperimentResult capped =
        runWorkload(workload, policy, cfg, scfg);
    const ExperimentResult base =
        runWorkload(workload, "Uncapped", cfg, scfg);
    return comparePerformance(capped, base);
}

/** Merge the four workloads of a class into one comparison. */
inline PerfComparison
classComparison(const std::string &cls, const std::string &policy,
                double budget, double instr, const SimConfig &scfg)
{
    std::vector<PerfComparison> parts;
    for (const std::string &wl : workloads::workloadsOfClass(cls))
        parts.push_back(
            compareToBaseline(wl, policy, budget, instr, scfg));
    return mergeComparisons(parts);
}

/** The four class names in Table III order. */
inline std::vector<std::string>
classNames()
{
    return {"ILP", "MID", "MEM", "MIX"};
}

/**
 * Class-level normalized-CPI comparison out of a completed sweep:
 * merges the class's workloads, comparing `policy` runs against the
 * grid's "Uncapped" runs at the same coordinates. The grid must
 * contain the Uncapped policy and every workload of the class.
 */
inline PerfComparison
classComparison(const SweepResult &sw, std::size_t config_idx,
                const std::string &cls, const std::string &policy,
                std::size_t budget_idx)
{
    const std::size_t pol = sw.grid.policyIndex(policy);
    const std::size_t base = sw.grid.policyIndex("Uncapped");
    std::vector<PerfComparison> parts;
    for (const std::string &wl : workloads::workloadsOfClass(cls)) {
        const std::size_t w = sw.grid.workloadIndex(wl);
        parts.push_back(comparePerformance(
            sw.at(config_idx, w, pol, budget_idx).result,
            sw.at(config_idx, w, base, budget_idx).result));
    }
    return mergeComparisons(parts);
}

/** Report a finished sweep's size and speed on stderr. */
inline void
sweepStats(const SweepResult &sw)
{
    std::fprintf(stderr, "[%zu runs on %d threads, %.2f s]\n",
                 sw.runs.size(), sw.threads, sw.wallSeconds);
}

} // namespace benchutil
} // namespace fastcap

#endif // FASTCAP_BENCH_COMMON_HPP
