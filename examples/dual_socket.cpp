/**
 * @file
 * Per-processor budgets — the extension Section III-B sketches: "the
 * optimization can be extended to capture per-processor power budgets
 * by adding a constraint similar to constraint 6 for each processor."
 *
 * A 16-core machine is treated as two 8-core sockets. Besides the
 * global 70% cap, socket 0 sits under a thermal constraint of 18 W.
 * FastCap honours both: the socket stays under its limit while all 16
 * applications still degrade by the same fraction (fairness is
 * system-wide, not per-socket).
 */

#include <cstdio>

#include "core/fastcap_policy.hpp"
#include "harness/experiment.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

namespace {

/** Run MID2 under FastCap with the given solver options. */
ExperimentResult
run(SolverOptions opts)
{
    SimConfig machine = SimConfig::defaultConfig(16);
    FastCapPolicy policy(opts);
    ExperimentConfig knobs;
    knobs.budgetFraction = 0.7;
    knobs.targetInstructions = 30e6;
    ExperimentRunner runner(machine, workloads::mix("MID2", 16),
                            policy, knobs);
    return runner.run();
}

/** Mean selected core level over sockets [0,8) and [8,16). */
void
socketLevels(const ExperimentResult &res, double &s0, double &s1)
{
    s0 = s1 = 0.0;
    for (const EpochRecord &e : res.epochs) {
        for (int i = 0; i < 8; ++i)
            s0 += static_cast<double>(e.coreFreqIdx[i]);
        for (int i = 8; i < 16; ++i)
            s1 += static_cast<double>(e.coreFreqIdx[i]);
    }
    const double n = 8.0 * static_cast<double>(res.epochs.size());
    s0 /= n;
    s1 /= n;
}

} // namespace

int
main()
{
    std::printf("MID2 on 16 cores as 2 sockets, global budget 70%%.\n\n");

    const ExperimentResult plain = run(SolverOptions{});
    double p0 = 0.0;
    double p1 = 0.0;
    socketLevels(plain, p0, p1);
    std::printf("global cap only      : power %.1f W | mean core "
                "level socket0 %.1f, socket1 %.1f\n",
                plain.averagePower(), p0, p1);

    SolverOptions constrained;
    constrained.socketBudgets = {{0, 8, 18.0}};
    const ExperimentResult socketed = run(constrained);
    double s0 = 0.0;
    double s1 = 0.0;
    socketLevels(socketed, s0, s1);
    std::printf("+ socket0 cap 18 W   : power %.1f W | mean core "
                "level socket0 %.1f, socket1 %.1f\n",
                socketed.averagePower(), s0, s1);

    std::printf("\nWith the per-socket constraint the whole system "
                "slows to socket 0's feasible pace: fairness is "
                "preserved across sockets (both socket means drop "
                "together) instead of socket 1 racing ahead. Note the "
                "total barely changes — the solver re-spends the "
                "budget the sockets cannot use on a higher memory "
                "frequency, which still helps every application.\n");
    return 0;
}
