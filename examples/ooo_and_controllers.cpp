/**
 * @file
 * Robustness demo (Section IV-B): FastCap on out-of-order cores and
 * on a system with four memory controllers under a highly skewed
 * access distribution. Capping accuracy and fairness must survive
 * both.
 */

#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "util/table.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

namespace {

void
report(const char *label, const SimConfig &machine)
{
    ExperimentConfig knobs;
    knobs.budgetFraction = 0.6;
    knobs.targetInstructions = 20e6;

    const ExperimentResult capped =
        runWorkload("MEM2", "FastCap", knobs, machine);
    const ExperimentResult base =
        runWorkload("MEM2", "Uncapped", knobs, machine);
    const PerfComparison cmp = comparePerformance(capped, base);

    std::printf("%-28s power %.3f of peak | norm CPI avg %.3f "
                "worst %.3f (ratio %.3f)\n",
                label, capped.averagePowerFraction(), cmp.average,
                cmp.worst, cmp.unfairness);
}

} // namespace

int
main()
{
    std::printf("MEM2 workload, budget = 60%%. All rows must cap at "
                "~0.6 with worst ~ avg.\n\n");

    report("in-order, 1 controller", SimConfig::defaultConfig(16));

    SimConfig ooo = SimConfig::defaultConfig(16);
    ooo.execMode = ExecMode::OutOfOrder;
    report("out-of-order (128-entry)", ooo);

    SimConfig mc4 = SimConfig::defaultConfig(16);
    mc4.numControllers = 4;
    mc4.banksPerController = 8;
    mc4.busBurstCycles = 6.0; // one DDR3 channel per controller
    report("4 controllers, uniform", mc4);

    mc4.interleave = InterleaveMode::Skewed;
    mc4.skewHotFraction = 0.7;
    report("4 controllers, 70% skew", mc4);

    std::printf("\nThe skewed case exercises the weighted response-"
                "time model of Section IV-B: different cores see "
                "different controllers, yet degradation stays even.\n");
    return 0;
}
