/**
 * @file
 * Policy tour: run the same workload under every capping policy in
 * the registry and compare power, performance and fairness — a
 * one-binary summary of the paper's Section IV comparisons.
 */

#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "policies/registry.hpp"
#include "util/table.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

int
main()
{
    // 8 cores: big enough for heterogeneity, small enough that this
    // example finishes instantly. (MaxBIPS is exponential in cores,
    // so it runs on a 4-core variant below.)
    const SimConfig machine = SimConfig::defaultConfig(8);
    ExperimentConfig knobs;
    knobs.budgetFraction = 0.6;
    knobs.targetInstructions = 30e6;

    const ExperimentResult baseline =
        runWorkload("MIX4", "Uncapped", knobs, machine);

    AsciiTable table({"policy", "power/peak", "avg norm CPI",
                      "worst norm CPI", "worst/avg (fairness)"});

    for (const char *name :
         {"FastCap", "CPU-only", "Freq-Par", "Eql-Pwr", "Eql-Freq",
          "Steepest-Drop"}) {
        const ExperimentResult res =
            runWorkload("MIX4", name, knobs, machine);
        const PerfComparison cmp = comparePerformance(res, baseline);
        table.addRowNumeric(name,
                            {res.averagePowerFraction(), cmp.average,
                             cmp.worst, cmp.unfairness});
    }

    std::printf("MIX4 (swim+ammp+twolf+sixtrack x2) on 8 cores, "
                "budget = 60%% of peak\n\n");
    table.print();

    // MaxBIPS needs a tiny machine.
    const SimConfig tiny = SimConfig::defaultConfig(4);
    const ExperimentResult tiny_base =
        runWorkload("MIX4", "Uncapped", knobs, tiny);
    const ExperimentResult tiny_fc =
        runWorkload("MIX4", "FastCap", knobs, tiny);
    const ExperimentResult tiny_mb =
        runWorkload("MIX4", "MaxBIPS", knobs, tiny);
    const PerfComparison c_fc = comparePerformance(tiny_fc, tiny_base);
    const PerfComparison c_mb = comparePerformance(tiny_mb, tiny_base);

    std::printf("\n4-core corner (MaxBIPS is exponential in cores):\n");
    std::printf("  FastCap: avg %.3f worst %.3f\n", c_fc.average,
                c_fc.worst);
    std::printf("  MaxBIPS: avg %.3f worst %.3f  <- better average, "
                "worse outlier\n", c_mb.average, c_mb.worst);
    return 0;
}
