/**
 * @file
 * Quickstart: cap a 16-core server at 60% of its peak power with
 * FastCap and inspect what happened.
 *
 * This walks the whole public API surface in ~60 lines:
 *   1. describe the machine           (SimConfig)
 *   2. pick a workload                (workloads::mix)
 *   3. pick a policy                  (FastCapPolicy)
 *   4. run the epoch loop             (ExperimentRunner)
 *   5. read power/performance results (ExperimentResult)
 */

#include <cstdio>

#include "core/fastcap_policy.hpp"
#include "harness/experiment.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

int
main()
{
    // 1. A 16-core server per Table II of the paper: 10 core DVFS
    //    levels (2.2-4.0 GHz), 10 memory levels (206-800 MHz).
    SimConfig machine = SimConfig::defaultConfig(16);

    // 2. MIX3 from Table III: equake + ammp + sjeng + crafty,
    //    replicated to fill all 16 cores.
    std::vector<AppProfile> apps = workloads::mix("MIX3", 16);

    // 3. The FastCap governor (Algorithm 1).
    FastCapPolicy policy;

    // 4. Budget: 60% of the measured peak; each app runs 50M
    //    instructions (the paper uses 100M Simpoints).
    ExperimentConfig knobs;
    knobs.budgetFraction = 0.6;
    knobs.targetInstructions = 50e6;

    ExperimentRunner runner(machine, std::move(apps), policy, knobs);
    std::printf("peak power: %.1f W, budget: %.1f W\n",
                runner.peakPower(), runner.budget());

    ExperimentResult result = runner.run();

    // 5. What happened?
    std::printf("\nepochs simulated : %zu (%.0f ms of server time)\n",
                result.epochs.size(),
                result.epochs.size() * toMs(machine.epochLength));
    std::printf("average power    : %.1f W (%.1f%% of peak; budget "
                "was %.0f%%)\n",
                result.averagePower(),
                100.0 * result.averagePowerFraction(),
                100.0 * result.budgetFraction);
    std::printf("max epoch power  : %.1f W\n", result.maxEpochPower());

    std::printf("\nper-application completion:\n");
    for (const AppResult &app : result.apps) {
        std::printf("  core %2d %-8s finished at %6.1f ms "
                    "(%.3f ns/instruction)\n",
                    app.core, app.app.c_str(), toMs(app.completionTime),
                    toNs(app.tpi));
    }

    const EpochRecord &last = result.epochs.back();
    std::printf("\nfinal operating point: memory level %zu/%zu, core "
                "levels:", last.memFreqIdx,
                machine.memLadder.size() - 1);
    for (std::size_t idx : last.coreFreqIdx)
        std::printf(" %zu", idx);
    std::printf("\n");
    return 0;
}
