/**
 * @file
 * Rack-level power oversubscription — the paper's motivation: "even
 * when the power capping decisions are made at a coarser grain
 * (e.g., rack-wise), individual servers must respect their assigned
 * power budgets."
 *
 * This example runs a real rack, not a single machine: a Cluster of
 * eight 64-core servers provisioned for 60% of their summed peak
 * (oversubscription), fed a flash-crowd job trace. The rack arbiter
 * re-divides the budget across machines every epoch from reported
 * demand; mid-run one machine fails and its watts flow to the
 * survivors until it is restored. Each machine's own FastCap policy
 * then enforces the granted cap core-by-core.
 */

#include <cstdio>

#include "cluster/cluster.hpp"

using namespace fastcap;

int
main()
{
    ClusterConfig rack;
    rack.machines = 8;
    rack.machine = SimConfig::defaultConfig(64);
    rack.rackBudgetFraction = 0.6; // 8 machines on 4.8 machines' watts
    rack.trace = "gen:flash,rate=600,horizon=0.1,max-cores=32,"
                 "apps=swim+applu,flash-start=0.01,"
                 "flash-duration=0.03,flash-factor=6,seed=42";
    rack.maxEpochs = 16;
    rack.machineThreads = 4;
    rack.failures = {{5, 8, 12}}; // machine 5 down for epochs [8, 12)

    Cluster cluster(rack);
    std::printf("rack: %d machines x %d cores | budget %.0f%% of "
                "%.1f W installed\n\n",
                rack.machines, rack.machine.numCores,
                100.0 * rack.rackBudgetFraction,
                cluster.installedPeak());
    std::printf("%5s %10s %10s %10s %6s %6s %8s\n", "epoch",
                "usable W", "granted W", "power W", "alive", "busy",
                "pending");

    ClusterResult res;
    for (int e = 0; e < rack.maxEpochs; ++e) {
        const ClusterEpochRecord rec = cluster.step();
        std::printf("%5d %10.1f %10.1f %10.1f %6d %6d %8zu%s\n",
                    rec.epoch, rec.usableBudget, rec.assignedTotal,
                    rec.totalPower, rec.aliveMachines, rec.busyCores,
                    rec.pendingJobs,
                    rec.epoch == 8    ? "   <- machine 5 fails"
                    : rec.epoch == 12 ? "   <- machine 5 restored"
                                      : "");
        res.epochs.push_back(rec);
    }

    std::printf("\nGrants always sum to exactly the usable budget "
                "(min of rack watts and live peaks): the arbiter "
                "conserves power while the failure shrinks and "
                "restores the rack. Each machine holds its grant via "
                "its own FastCap loop.\n");
    return 0;
}
