/**
 * @file
 * Rack-level power oversubscription scenario — the paper's
 * motivation: "even when the power capping decisions are made at a
 * coarser grain (e.g., rack-wise), individual servers must respect
 * their assigned power budgets."
 *
 * A rack controller hands this server a budget that changes over
 * time: 80% in normal operation, an emergency drop to 45% when a
 * sibling server spikes, then recovery to 70%. The example shows
 * FastCap re-tracking each new budget within an epoch or two.
 */

#include <cstdio>

#include "core/fastcap_policy.hpp"
#include "harness/experiment.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

int
main()
{
    SimConfig machine = SimConfig::defaultConfig(16);
    FastCapPolicy policy;

    ExperimentConfig knobs;
    knobs.budgetFraction = 0.8;
    knobs.targetInstructions = 1e9; // long-running service

    ExperimentRunner runner(machine, workloads::mix("MID1", 16),
                            policy, knobs);

    struct Phase
    {
        const char *label;
        double budget;
        int epochs;
    };
    const Phase phases[] = {
        {"normal operation", 0.80, 8},
        {"rack emergency: sibling spike", 0.45, 8},
        {"partial recovery", 0.70, 8},
    };

    std::printf("peak %.1f W; epoch %.0f ms\n\n", runner.peakPower(),
                toMs(machine.epochLength));
    std::printf("%-32s %6s %9s %9s %s\n", "phase", "epoch",
                "budget W", "power W", "mem level");

    for (const Phase &phase : phases) {
        runner.budgetFraction(phase.budget);
        for (int e = 0; e < phase.epochs; ++e) {
            const EpochRecord rec = runner.step();
            std::printf("%-32s %6d %9.1f %9.1f %zu\n", phase.label,
                        rec.epoch, rec.budget, rec.totalPower,
                        rec.memFreqIdx);
        }
    }

    std::printf("\nNote how power converges to each new budget within "
                "~1-2 epochs (5-10 ms) — the reaction speed Figure 5 "
                "of the paper reports.\n");
    return 0;
}
