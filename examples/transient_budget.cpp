/**
 * @file
 * Time-varying scenario tour: a budget that steps down mid-run and a
 * job that departs (its core goes idle), watched epoch by epoch.
 *
 * Demonstrates the scenario layer:
 *   1. build a BudgetSchedule (step down at 50 ms, ramp back up)
 *   2. add a WorkloadSchedule event (core 0's job leaves at 80 ms)
 *   3. hand the Scenario to ExperimentConfig
 *   4. step the epoch loop and watch budget tracking re-converge
 */

#include <cstdio>

#include "core/fastcap_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

int
main()
{
    SimConfig machine = SimConfig::defaultConfig(16);
    std::vector<AppProfile> apps = workloads::mix("MIX1", 16);
    FastCapPolicy policy;

    // The scenario: start at 90% of peak, cut to 50% at t=50ms, ramp
    // back to 80% between 100 and 150 ms; core 0 goes idle at 80 ms.
    // The same schedules can be parsed from a spec string:
    //   "budget=step@0:0.9;step@0.05:0.5;ramp@0.1:0.5->0.8/0.05|
    //    workload=0.08:0:idle"
    ExperimentConfig knobs;
    knobs.budgetFraction = 0.9;
    knobs.targetInstructions = 1e12; // fixed horizon, no completion
    knobs.maxEpochs = 40;            // 200 ms of server time
    knobs.scenario.name = "step-and-recover";
    knobs.scenario.budget.addStep(0.0, 0.9);
    knobs.scenario.budget.addStep(0.05, 0.5);
    knobs.scenario.budget.addRamp(0.1, 0.5, 0.8, 0.05);
    knobs.scenario.workload.add(0.08, 0, "idle");

    // The horizon never completes the instruction targets on purpose.
    Logger::global().level(LogLevel::Silent);

    ExperimentRunner runner(machine, std::move(apps), policy, knobs);
    std::printf("peak power: %.1f W\n\n", runner.peakPower());
    std::printf("%-7s %-10s %-10s %s\n", "epoch", "budget(W)",
                "power(W)", "note");

    ExperimentResult trace;
    trace.peakPower = runner.peakPower();
    for (int epoch = 0; epoch < knobs.maxEpochs && !runner.done();
         ++epoch) {
        const EpochRecord rec = runner.step();
        trace.epochs.push_back(rec);
        const char *note = "";
        if (rec.epoch == 10)
            note = "<- budget cut to 50%";
        else if (rec.epoch == 16)
            note = "<- core 0 idles";
        else if (rec.epoch == 20)
            note = "<- ramp back up begins";
        std::printf("%-7d %-10.1f %-10.1f %s\n", rec.epoch, rec.budget,
                    rec.totalPower, note);
    }

    // How did the policy ride the step? (Figs. 7/8-style summary.)
    const TransientSummary ts = analyzeTransients(trace);
    std::printf("\nbudget drops seen       : %zu\n", ts.drops.size());
    std::printf("worst settling time     : %d epochs\n",
                ts.worstSettlingEpochs);
    std::printf("overshoot energy        : %.1f mJ\n",
                ts.overshootEnergy * 1e3);
    std::printf("budget-violation rate   : %.1f%% of epochs\n",
                100.0 * ts.violationRate);
    return 0;
}
