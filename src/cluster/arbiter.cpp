#include "cluster/arbiter.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace fastcap {

std::vector<Watts>
arbitrateRackBudget(Watts rack_budget, const std::vector<Watts> &peaks,
                    const std::vector<Watts> &demands,
                    double floor_fraction)
{
    const std::size_t m = peaks.size();
    if (demands.size() != m)
        panic("arbitrateRackBudget: %zu demands for %zu machines",
              demands.size(), m);
    if (floor_fraction < 0.0 || floor_fraction >= 1.0)
        fatal("arbitrateRackBudget: floor fraction %g not in [0, 1)",
              floor_fraction);
    if (rack_budget < 0.0)
        fatal("arbitrateRackBudget: negative rack budget %g",
              rack_budget);

    std::vector<Watts> out(m, 0.0);
    Watts total_peak = 0.0;
    for (Watts p : peaks) {
        if (p < 0.0)
            fatal("arbitrateRackBudget: negative peak %g", p);
        total_peak += p;
    }
    if (total_peak <= 0.0)
        return out;
    const Watts usable = std::min(rack_budget, total_peak);
    if (usable <= 0.0)
        return out;

    // Floors: a guaranteed share keeps a machine whose demand
    // collapsed last epoch from being starved this epoch (its load
    // may have just arrived). Scaled down uniformly when the budget
    // cannot honour them in full.
    Watts floor_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i)
        floor_sum += floor_fraction * peaks[i];
    const double floor_scale =
        floor_sum > usable ? usable / floor_sum : 1.0;
    Watts granted = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        out[i] = floor_fraction * peaks[i] * floor_scale;
        granted += out[i];
    }

    // Distribute the remainder demand-proportionally, clamping at
    // each machine's peak and redistributing the overflow. Each round
    // either saturates at least one machine or hands out everything,
    // so m rounds suffice; fixed iteration order keeps the result
    // independent of any threading above.
    Watts left = usable - granted;
    std::vector<bool> capped(m, false);
    std::vector<double> w(m, 0.0);
    for (std::size_t round = 0; round < m && left > 0.0; ++round) {
        double wsum = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            w[i] = 0.0;
            if (capped[i] || peaks[i] <= 0.0)
                continue;
            w[i] = std::max(demands[i] - out[i], 0.0);
            wsum += w[i];
        }
        if (wsum <= 0.0) {
            // No residual demand anywhere: fill headroom-
            // proportionally so the budget is still conserved.
            for (std::size_t i = 0; i < m; ++i) {
                w[i] = 0.0;
                if (capped[i] || peaks[i] <= 0.0)
                    continue;
                w[i] = std::max(peaks[i] - out[i], 0.0);
                wsum += w[i];
            }
        }
        if (wsum <= 0.0)
            break; // everyone at peak: usable == total_peak exactly
        Watts spent = 0.0;
        bool saturated = false;
        for (std::size_t i = 0; i < m; ++i) {
            if (w[i] <= 0.0)
                continue;
            Watts give = left * (w[i] / wsum);
            const Watts room = peaks[i] - out[i];
            if (give >= room) {
                give = room;
                capped[i] = true;
                saturated = true;
            }
            out[i] += give;
            spent += give;
        }
        left -= spent;
        if (!saturated)
            break; // nothing clamped: the whole remainder went out
    }
    return out;
}

} // namespace fastcap
