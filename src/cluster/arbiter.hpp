/**
 * @file
 * Rack-level budget arbitration.
 *
 * Each epoch the cluster re-divides the rack budget across its
 * machines from the demand they reported for the previous epoch —
 * the same measure-then-allocate structure FastCap applies across
 * cores, lifted one level up the power hierarchy. The arbiter is a
 * pure function of its arguments, evaluated in fixed machine order,
 * so the division is bit-identical for any machine-thread count.
 */

#ifndef FASTCAP_CLUSTER_ARBITER_HPP
#define FASTCAP_CLUSTER_ARBITER_HPP

#include <vector>

#include "util/units.hpp"

namespace fastcap {

/**
 * Divide a rack budget across machines.
 *
 * Every live machine (peak > 0) first receives a floor of
 * `floor_fraction` of its peak (scaled down proportionally if the
 * floors alone exceed the budget); the remainder is split in
 * proportion to residual demand (demand above the current grant),
 * falling back to headroom-proportional shares when no machine
 * reports residual demand. Grants are clamped at each machine's peak
 * and the overflow redistributed, so the returned grants sum to
 * min(rack_budget, sum of peaks) — the arbiter conserves the budget
 * exactly (up to rounding): it neither strands watts the rack could
 * use nor allocates watts it does not have.
 *
 * Dead machines are passed with peak 0 and receive exactly 0.
 *
 * @param rack_budget    total watts available to the rack
 * @param peaks          per-machine measured peak (0 = dead)
 * @param demands        per-machine previous-epoch demand, watts
 * @param floor_fraction guaranteed share of peak per live machine,
 *                       in [0, 1)
 * @return per-machine grants, same order as `peaks`
 */
std::vector<Watts> arbitrateRackBudget(Watts rack_budget,
                                       const std::vector<Watts> &peaks,
                                       const std::vector<Watts> &demands,
                                       double floor_fraction);

} // namespace fastcap

#endif // FASTCAP_CLUSTER_ARBITER_HPP
