#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/arbiter.hpp"
#include "cluster/queue_trace_source.hpp"
#include "harness/peak_power.hpp"
#include "policies/registry.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/tracer.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_replay.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

namespace {

std::string
fmt(double v)
{
    char buf[40];
    checkedSnprintf(buf, sizeof(buf), "%.10g", v);
    return std::string(buf);
}

} // namespace

void
ClusterConfig::validate() const
{
    if (machines < 1)
        fatal("ClusterConfig: need at least one machine (got %d)",
              machines);
    machine.validate();
    if (rackBudgetFraction <= 0.0 || rackBudgetFraction > 1.0)
        fatal("ClusterConfig: rack budget fraction %g not in (0, 1]",
              rackBudgetFraction);
    if (floorFraction < 0.0 || floorFraction >= 1.0)
        fatal("ClusterConfig: floor fraction %g not in [0, 1)",
              floorFraction);
    if (maxEpochs < 1)
        fatal("ClusterConfig: maxEpochs must be >= 1");
    if (machineThreads < 0)
        fatal("ClusterConfig: machineThreads must be >= 0 (got %d)",
              machineThreads);
    if (shards < 0 || shardThreads < 0)
        fatal("ClusterConfig: shards/shardThreads must be >= 0");
    for (const MachineFailure &f : failures) {
        if (f.machine < 0 || f.machine >= machines)
            fatal("ClusterConfig: failure targets machine %d of %d",
                  f.machine, machines);
        if (f.failEpoch < 0)
            fatal("ClusterConfig: failure epoch %d must be >= 0",
                  f.failEpoch);
        if (f.restoreEpoch != -1 && f.restoreEpoch <= f.failEpoch)
            fatal("ClusterConfig: restore epoch %d must follow "
                  "failure epoch %d", f.restoreEpoch, f.failEpoch);
    }
    // Unknown workload/policy names fail here, not mid-run.
    workloads::mix(workload, machine.numCores);
    makePolicy(policy);
}

/** One machine: the full per-machine capping stack plus its queue. */
struct Cluster::Machine
{
    std::unique_ptr<CappingPolicy> policy;
    std::unique_ptr<ExperimentRunner> runner;
    QueueTraceSource *feed = nullptr; //!< owned by `replayer`
    std::unique_ptr<TraceReplayer> replayer;
    Watts peak = 0.0;
    /** Previous-epoch demand reported to the arbiter. */
    Watts demand = 0.0;
    bool alive = true;
    /** Replayer counters at the last collection (delta bookkeeping). */
    std::size_t lastCompleted = 0;
    std::size_t lastDropped = 0;
};

Cluster::Cluster(ClusterConfig cfg) : _cfg(std::move(cfg))
{
    _cfg.validate();

    // One shared measurement: machines are identical hardware, and
    // the arbiter's conservation arithmetic is cleanest against one
    // peak. Measured on the engine the machines will run
    // (engine-tagged cache key), like any single-machine experiment.
    _machinePeak = measuredPeakPower(
        _cfg.machine, EngineConfig{_cfg.shards, _cfg.shardThreads});
    _installedPeak =
        static_cast<double>(_cfg.machines) * _machinePeak;

    ExperimentConfig ecfg;
    ecfg.budgetFraction = _cfg.rackBudgetFraction;
    // Machines run for as long as the rack does: the cluster owns
    // termination, so per-app instruction targets are unreachable.
    ecfg.targetInstructions = 1e18;
    ecfg.maxEpochs = _cfg.maxEpochs + 1;
    ecfg.peakPowerOverride = _machinePeak;
    ecfg.solver = _cfg.solver;
    ecfg.shards = _cfg.shards;
    ecfg.shardThreads = _cfg.shardThreads;

    _machines.reserve(static_cast<std::size_t>(_cfg.machines));
    for (int i = 0; i < _cfg.machines; ++i) {
        auto mc = std::make_unique<Machine>();
        SimConfig sc = _cfg.machine;
        sc.seed = splitmix64(_cfg.seed,
                             static_cast<std::uint64_t>(i));
        ecfg.tracer = _cfg.tracer;
        ecfg.machineIndex = i;
        mc->policy = makePolicy(_cfg.policy, _cfg.solver);
        mc->runner = std::make_unique<ExperimentRunner>(
            sc, workloads::mix(_cfg.workload, sc.numCores),
            *mc->policy, ecfg);
        auto feed = std::make_unique<QueueTraceSource>(
            "queue:m" + std::to_string(i));
        mc->feed = feed.get();
        mc->replayer = std::make_unique<TraceReplayer>(
            std::move(feed), sc.numCores);
        mc->peak = _machinePeak;
        // Before the first epoch every machine claims its full peak:
        // no demand has been observed, and an even split is the only
        // defensible prior.
        mc->demand = _machinePeak;
        _machines.push_back(std::move(mc));
    }

    if (!_cfg.trace.empty())
        _trace = makeTraceSource(_cfg.trace);

    _pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(_cfg.machineThreads));

    logkv(LogLevel::Inform, "cluster", "init",
          {{"machines", _cfg.machines},
           {"cores_per_machine", _cfg.machine.numCores},
           {"installed_peak_w", _installedPeak}});
}

Cluster::~Cluster() = default;

bool
Cluster::alive(int machine) const
{
    if (machine < 0 || machine >= _cfg.machines)
        panic("Cluster::alive: machine %d of %d", machine,
              _cfg.machines);
    return _machines[static_cast<std::size_t>(machine)]->alive;
}

int
Cluster::loadOf(const Machine &mc) const
{
    return mc.replayer->busyCores() + mc.replayer->backlogCores() +
        mc.feed->pendingCores();
}

void
Cluster::killMachine(Machine &mc, int index)
{
    const TraceReplayStats &st = mc.replayer->stats();
    // Flush counter deltas before the replayer is discarded, then
    // charge everything still in flight — running, pending, queued
    // and the replayer's one-event read-ahead — to the failure.
    _completed += st.completed - mc.lastCompleted;
    _dropped += st.dropped - mc.lastDropped;
    const std::size_t in_flight =
        mc.feed->pushed() - st.completed - st.dropped;
    _lost += in_flight;

    // The machine itself reboots idle; the simulated hardware state
    // (DVFS levels, fitter history) persists across the outage, which
    // only matters once it is restored.
    for (int core = 0; core < _cfg.machine.numCores; ++core)
        mc.runner->swapApp(core, workloads::idleProfile());
    auto feed = std::make_unique<QueueTraceSource>(
        "queue:m" + std::to_string(index));
    mc.feed = feed.get();
    mc.replayer = std::make_unique<TraceReplayer>(
        std::move(feed), _cfg.machine.numCores);
    mc.lastCompleted = 0;
    mc.lastDropped = 0;
    mc.alive = false;
    mc.demand = 0.0;
}

void
Cluster::dispatch(Seconds epoch_start, ClusterEpochRecord &rec)
{
    if (!_trace)
        return;
    for (;;) {
        if (!_haveNext) {
            if (!_trace->next(_next))
                return;
            _haveNext = true;
        }
        if (_next.arrival > epoch_start)
            return;
        if (_next.cores > _cfg.machine.numCores)
            fatal("Cluster: %s: job at t=%g demands %d cores but "
                  "machines have %d", _trace->name().c_str(),
                  _next.arrival, _next.cores, _cfg.machine.numCores);
        // Least-loaded placement, lowest index on ties: a pure
        // function of epoch-boundary state, so dispatch is identical
        // for every machine-thread count.
        int best = -1;
        int best_load = 0;
        for (int i = 0; i < _cfg.machines; ++i) {
            const Machine &mc =
                *_machines[static_cast<std::size_t>(i)];
            if (!mc.alive)
                continue;
            const int load = loadOf(mc);
            if (best < 0 || load < best_load) {
                best = i;
                best_load = load;
            }
        }
        if (best < 0) {
            // Whole rack down: the job has nowhere to go.
            ++rec.lost;
            ++_lost;
        } else {
            _machines[static_cast<std::size_t>(best)]->feed->push(
                _next);
            ++_dispatched;
        }
        _haveNext = false;
    }
}

ClusterEpochRecord
Cluster::step()
{
    const std::size_t m = static_cast<std::size_t>(_cfg.machines);
    const Seconds epoch_start =
        static_cast<double>(_epoch) * _cfg.machine.epochLength;

    ClusterEpochRecord rec;
    rec.epoch = _epoch;
    rec.startTime = epoch_start;

    // 1. Failure schedule (kill before restore at equal epochs).
    for (const MachineFailure &f : _cfg.failures) {
        Machine &mc = *_machines[static_cast<std::size_t>(f.machine)];
        if (f.failEpoch == _epoch && mc.alive) {
            const std::size_t lost_before = _lost;
            killMachine(mc, f.machine);
            rec.lost += _lost - lost_before;
            if (telemetry::enabled()) {
                telemetry::Registry::global()
                    .counter("/cluster/arbiter/failures")
                    .add();
                if (_cfg.tracer != nullptr)
                    _cfg.tracer->track(0, "cluster")
                        .instant("machine " +
                                     std::to_string(f.machine) +
                                     " failed",
                                 epoch_start);
            }
        }
        if (f.restoreEpoch == _epoch && !mc.alive) {
            mc.alive = true;
            // No observed demand yet: the floor carries it until its
            // first post-restore epoch reports.
            mc.demand = 0.0;
            if (telemetry::enabled()) {
                telemetry::Registry::global()
                    .counter("/cluster/arbiter/restores")
                    .add();
                if (_cfg.tracer != nullptr)
                    _cfg.tracer->track(0, "cluster")
                        .instant("machine " +
                                     std::to_string(f.machine) +
                                     " restored",
                                 epoch_start);
            }
        }
    }

    // 2. Rack budget for this epoch.
    const double frac = _cfg.rackSchedule.fractionAt(
        epoch_start, _cfg.rackBudgetFraction);
    rec.rackBudget = frac * _installedPeak;
    Watts alive_peak = 0.0;
    for (const auto &mc : _machines)
        if (mc->alive)
            alive_peak += mc->peak;
    rec.usableBudget = std::min(rec.rackBudget, alive_peak);

    // 3. Arbitration from previous-epoch demand.
    std::vector<Watts> peaks(m, 0.0);
    std::vector<Watts> demands(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        if (!_machines[i]->alive)
            continue;
        peaks[i] = _machines[i]->peak;
        demands[i] = _machines[i]->demand;
    }
    rec.machineBudget = arbitrateRackBudget(
        rec.rackBudget, peaks, demands, _cfg.floorFraction);
    for (std::size_t i = 0; i < m; ++i) {
        rec.assignedTotal += rec.machineBudget[i];
        if (_machines[i]->alive)
            _machines[i]->runner->budgetFraction(std::clamp(
                rec.machineBudget[i] / _machines[i]->peak, 1e-6,
                1.0));
    }
    // The arbiter must conserve the rack budget every epoch: grants
    // sum to exactly what the live rack can use, neither stranding
    // nor inventing watts.
    if (std::abs(rec.assignedTotal - rec.usableBudget) >
        1e-6 * std::max(rec.usableBudget, 1.0))
        panic("Cluster: arbiter leaked budget at epoch %d: assigned "
              "%.9g W of %.9g W usable", _epoch, rec.assignedTotal,
              rec.usableBudget);

    // Arbiter telemetry, on the stepping thread: one redistribution
    // round per epoch, one grant per live machine, per-machine grant
    // gauges (single writer — only this thread touches them).
    if (telemetry::enabled()) {
        telemetry::Registry &reg = telemetry::Registry::global();
        reg.counter("/cluster/arbiter/rounds").add();
        for (std::size_t i = 0; i < m; ++i) {
            reg.gauge("/cluster/arbiter/grant/" + std::to_string(i))
                .set(rec.machineBudget[i]);
            if (_machines[i]->alive)
                reg.counter("/cluster/arbiter/grants").add();
        }
    }

    // 4. Dispatch cluster-trace arrivals due at this boundary.
    dispatch(epoch_start, rec);

    // 5. Machine epochs, fanned out; each job touches only its own
    // machine and result slot, so the fan-out is embarrassingly
    // parallel and the merge below runs in fixed index order.
    std::vector<EpochRecord> recs(m);
    for (std::size_t i = 0; i < m; ++i) {
        Machine &mc = *_machines[i];
        if (!mc.alive)
            continue;
        _pool->submit([&mc, &recs, i, epoch_start] {
            mc.replayer->advanceTo(
                epoch_start,
                [&mc](int core, const AppProfile &app) {
                    mc.runner->swapApp(core, app);
                });
            recs[i] = mc.runner->step();
        });
    }
    _pool->wait();

    // 6. Collect aggregates and next-epoch demands, in index order.
    rec.machinePower.assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        Machine &mc = *_machines[i];
        if (!mc.alive)
            continue;
        ++rec.aliveMachines;
        rec.totalPower += recs[i].totalPower;
        rec.machinePower[i] = recs[i].totalPower;

        const TraceReplayStats &st = mc.replayer->stats();
        _completed += st.completed - mc.lastCompleted;
        mc.lastCompleted = st.completed;
        const std::size_t drop = st.dropped - mc.lastDropped;
        mc.lastDropped = st.dropped;
        rec.dropped += drop;
        _dropped += drop;

        const int busy = mc.replayer->busyCores();
        const int backlog =
            mc.replayer->backlogCores() + mc.feed->pendingCores();
        rec.busyCores += busy;
        rec.pendingJobs += mc.replayer->pending() + mc.feed->size();

        // Demand for the next arbitration: measured power, floored by
        // occupancy — a machine whose queue just filled deserves watts
        // before its power catches up to the admitted load.
        const double occupancy = std::min(
            1.0, static_cast<double>(busy + backlog) /
                static_cast<double>(_cfg.machine.numCores));
        mc.demand = std::min(
            mc.peak,
            std::max(recs[i].totalPower, mc.peak * occupancy));
    }

    if (telemetry::enabled()) {
        telemetry::Registry &reg = telemetry::Registry::global();
        reg.gauge("/cluster/power").set(rec.totalPower);
        reg.gauge("/cluster/pending_jobs")
            .set(static_cast<double>(rec.pendingJobs));
        if (_cfg.tracer != nullptr) {
            telemetry::TraceTrack &track =
                _cfg.tracer->track(0, "cluster");
            track.span("rack epoch", epoch_start,
                       epoch_start + _cfg.machine.epochLength);
            track.counterEvent("rack_budget_w", epoch_start,
                               rec.rackBudget);
            track.counterEvent("rack_power_w", epoch_start,
                               rec.totalPower);
        }
    }

    ++_epoch;
    return rec;
}

ClusterResult
Cluster::run()
{
    ClusterResult res;
    res.installedPeak = _installedPeak;
    res.epochs.reserve(static_cast<std::size_t>(_cfg.maxEpochs));
    for (int e = 0; e < _cfg.maxEpochs; ++e)
        res.epochs.push_back(step());
    res.dispatched = _dispatched;
    res.completed = _completed;
    res.dropped = _dropped;
    res.lost = _lost;
    return res;
}

void
ClusterResult::writeCsv(std::FILE *out) const
{
    CsvWriter csv(out);
    csv.header({"epoch", "rack_budget_w", "usable_w", "assigned_w",
                "power_w", "alive", "busy_cores", "pending_jobs",
                "dropped", "lost"});
    for (const ClusterEpochRecord &e : epochs)
        csv.row({std::to_string(e.epoch), fmt(e.rackBudget),
                 fmt(e.usableBudget), fmt(e.assignedTotal),
                 fmt(e.totalPower), std::to_string(e.aliveMachines),
                 std::to_string(e.busyCores),
                 std::to_string(e.pendingJobs),
                 std::to_string(e.dropped), std::to_string(e.lost)});
}

std::string
ClusterResult::csvString() const
{
    // std::tmpfile rather than open_memstream: POSIX-only, and this
    // is library code (mirrors SweepResult::csvString).
    std::FILE *tmp = std::tmpfile();
    if (!tmp)
        panic("ClusterResult::csvString: tmpfile failed");
    writeCsv(tmp);
    std::string out;
    out.resize(static_cast<std::size_t>(std::ftell(tmp)));
    std::rewind(tmp);
    const std::size_t got = std::fread(&out[0], 1, out.size(), tmp);
    std::fclose(tmp);
    if (got != out.size())
        panic("ClusterResult::csvString: short read");
    return out;
}

} // namespace fastcap
