/**
 * @file
 * Rack-scale hierarchical capping: a Cluster caps a datacenter rack
 * the way FastCap caps a machine.
 *
 * A Cluster instantiates M machines — each a full per-machine
 * capping stack (SimBackend engine, online model fitter, capping
 * policy, epoch loop) — and adds the rack layer on top:
 *
 *   1. a top-level budget arbiter re-divides the rack budget across
 *      machines every epoch from the demand each machine reported
 *      for the previous epoch (arbiter.hpp);
 *   2. a job dispatcher streams a cluster-wide trace onto the
 *      machines, placing each arrival on the least-loaded machine
 *      (lowest index on ties) via per-machine push-fed replay queues;
 *   3. a failure schedule kills and restores whole machines, to
 *      study re-convergence of the budget division.
 *
 * Determinism contract: machine epochs may execute in parallel over
 * a thread pool, but arbitration and dispatch read only
 * epoch-boundary aggregates, machines are advanced and collected in
 * fixed index order, and each machine owns all of its mutable state
 * — so every record and CSV byte is identical for any machineThreads,
 * shards or shardThreads setting.
 */

#ifndef FASTCAP_CLUSTER_CLUSTER_HPP
#define FASTCAP_CLUSTER_CLUSTER_HPP

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "harness/experiment.hpp"
#include "scenario/budget_schedule.hpp"
#include "sim/config.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace fastcap {

class CappingPolicy;
class QueueTraceSource;
class TraceSource;

/** Kill one machine at an epoch, optionally restoring it later. */
struct MachineFailure
{
    int machine = 0;      //!< machine index
    int failEpoch = 0;    //!< epoch at whose boundary it dies
    int restoreEpoch = -1; //!< epoch it comes back (-1 = never)
};

/** Rack-level knobs on top of the per-machine configuration. */
struct ClusterConfig
{
    int machines = 4;
    /** Per-machine system; the seed is re-derived per machine. */
    SimConfig machine;
    /** Initial per-core application mix on every machine. */
    std::string workload = "idle";
    /** Capping policy instantiated per machine. */
    std::string policy = "FastCap";
    /** Rack budget as a fraction of the installed (summed) peak. */
    double rackBudgetFraction = 0.6;
    /** Optional time-varying rack budget (overrides the fraction). */
    BudgetSchedule rackSchedule;
    /** Cluster-wide job trace (path, '-' or gen: spec); "" = none. */
    std::string trace;
    int maxEpochs = 100;
    /**
     * Threads machine epochs fan out over (0 = hardware). Output is
     * byte-identical for every value.
     */
    int machineThreads = 1;
    /** Per-machine engine shards (ExperimentConfig::shards). */
    int shards = 0;
    /** Per-machine engine threads; 1 avoids nested parallelism. */
    int shardThreads = 1;
    /** Arbiter floor: guaranteed share of peak per live machine. */
    double floorFraction = 0.05;
    SolverOptions solver;
    std::vector<MachineFailure> failures;
    std::uint64_t seed = 0x5eedf00dULL;
    /**
     * Optional epoch tracer shared by the rack. The cluster emits
     * arbitration spans and rack counter events on track 0 and hands
     * each machine its own track (machine index + 1); everything is
     * keyed to virtual time, so reruns reproduce the trace byte for
     * byte. Observe-only — results are identical with or without it.
     */
    telemetry::Tracer *tracer = nullptr;

    /** fatal() on invalid knobs. */
    void validate() const;
};

/** One rack epoch: the arbitration and the machine aggregates. */
struct ClusterEpochRecord
{
    int epoch = 0;
    Seconds startTime = 0.0;
    Watts rackBudget = 0.0;   //!< schedule-applied rack budget
    Watts usableBudget = 0.0; //!< min(rackBudget, summed live peaks)
    Watts assignedTotal = 0.0; //!< what the arbiter handed out
    Watts totalPower = 0.0;    //!< summed machine epoch-average power
    int aliveMachines = 0;
    int busyCores = 0;          //!< rack-wide cores running trace jobs
    std::size_t pendingJobs = 0; //!< queued on machines, not running
    std::size_t dropped = 0;     //!< arrivals shed this epoch
    std::size_t lost = 0;        //!< jobs killed by failures/no machine
    std::vector<Watts> machineBudget; //!< per-machine grant
    std::vector<Watts> machinePower;  //!< per-machine epoch power
};

/** Full rack run outcome. */
struct ClusterResult
{
    Watts installedPeak = 0.0; //!< summed per-machine peaks
    std::vector<ClusterEpochRecord> epochs;
    std::size_t dispatched = 0; //!< trace events placed on machines
    std::size_t completed = 0;
    std::size_t dropped = 0;
    std::size_t lost = 0;

    /**
     * Per-epoch rack time series as CSV (aggregate columns only;
     * per-machine series live in the records). Deterministic across
     * machineThreads — the CI cmp gate depends on it.
     */
    void writeCsv(std::FILE *out) const;
    /** The CSV as a string (tests compare these byte-for-byte). */
    std::string csvString() const;
};

/**
 * Drives an M-machine rack: per-machine epoch loops below, budget
 * arbitration and job dispatch above.
 */
class Cluster
{
  public:
    explicit Cluster(ClusterConfig cfg);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Advance the whole rack one epoch. */
    ClusterEpochRecord step();

    /** Run cfg.maxEpochs epochs and collect the result. */
    ClusterResult run();

    int machines() const { return _cfg.machines; }
    /** Summed per-machine measured peaks (the rack nameplate). */
    Watts installedPeak() const { return _installedPeak; }
    bool alive(int machine) const;
    int epoch() const { return _epoch; }

  private:
    struct Machine;

    void applyFailures();
    void killMachine(Machine &mc, int index);
    void dispatch(Seconds epoch_start, ClusterEpochRecord &rec);
    /** Dispatcher load metric: busy + backlogged + queued cores. */
    int loadOf(const Machine &mc) const;

    ClusterConfig _cfg;
    Watts _machinePeak = 0.0;   //!< shared measured per-machine peak
    Watts _installedPeak = 0.0; //!< machines * machinePeak
    std::vector<std::unique_ptr<Machine>> _machines;
    std::unique_ptr<TraceSource> _trace; //!< cluster-wide stream
    TraceEvent _next;                    //!< one-event read-ahead
    bool _haveNext = false;
    std::unique_ptr<ThreadPool> _pool;
    int _epoch = 0;
    // Cumulative rack counters (survive per-machine replayer resets).
    std::size_t _dispatched = 0;
    std::size_t _completed = 0;
    std::size_t _dropped = 0;
    std::size_t _lost = 0;
};

} // namespace fastcap

#endif // FASTCAP_CLUSTER_CLUSTER_HPP
