/**
 * @file
 * Push-fed trace source for the cluster dispatcher.
 *
 * A file or generator TraceSource owns its event stream; the cluster
 * dispatcher instead *assigns* events to machines at epoch
 * boundaries, so each machine's replayer reads from a queue the
 * dispatcher pushes into. next() simply answers "nothing yet" on an
 * empty queue — TraceReplayer re-polls exhausted sources on every
 * advanceTo() precisely so this source can alternate between empty
 * and non-empty.
 */

#ifndef FASTCAP_CLUSTER_QUEUE_TRACE_SOURCE_HPP
#define FASTCAP_CLUSTER_QUEUE_TRACE_SOURCE_HPP

#include <cstddef>
#include <deque>
#include <string>
#include <utility>

#include "trace/trace_reader.hpp"

namespace fastcap {

/** FIFO TraceSource fed by push() between polls. */
class QueueTraceSource : public TraceSource
{
  public:
    explicit QueueTraceSource(std::string name)
        : _name(std::move(name))
    {
    }

    /** Enqueue one event (dispatcher side, between epochs). */
    void
    push(const TraceEvent &ev)
    {
        _pendingCores += ev.cores;
        ++_pushed;
        _q.push_back(ev);
    }

    bool
    next(TraceEvent &ev) override
    {
        if (_q.empty())
            return false;
        ev = _q.front();
        _pendingCores -= ev.cores;
        _q.pop_front();
        return true;
    }

    const std::string &name() const override { return _name; }

    /** Events queued but not yet consumed by the replayer. */
    std::size_t size() const { return _q.size(); }
    /** Summed core demand of the queued events. */
    int pendingCores() const { return _pendingCores; }
    /** Events ever pushed (failure-loss accounting). */
    std::size_t pushed() const { return _pushed; }

  private:
    std::string _name;
    std::deque<TraceEvent> _q;
    int _pendingCores = 0;
    std::size_t _pushed = 0;
};

} // namespace fastcap

#endif // FASTCAP_CLUSTER_QUEUE_TRACE_SOURCE_HPP
