#include "core/fastcap_policy.hpp"

#include <cmath>
#include <unordered_map>

#include "telemetry/registry.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace fastcap {

namespace {

/** Index of the ladder ratio closest to `ratio` (ratios ascending). */
std::size_t
closestRatioIndex(const std::vector<double> &ratios, double ratio)
{
    std::size_t best = 0;
    double best_d = std::abs(ratios[0] - ratio);
    for (std::size_t i = 1; i < ratios.size(); ++i) {
        const double d = std::abs(ratios[i] - ratio);
        if (d <= best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

} // namespace

PolicyDecision
mapToLadders(const PolicyInputs &inputs, const InnerSolution &sol,
             std::size_t mem_index, int evaluations)
{
    PolicyDecision dec;
    dec.memFreqIdx = mem_index;
    dec.evaluations = evaluations;
    dec.predictedPower = sol.predictedPower;
    dec.budgetSaturated = sol.saturatedLow || !sol.budgetFeasible;
    dec.coreFreqIdx.reserve(inputs.cores.size());
    // The solver emits one ratio per equivalence class (cores of a
    // class share their x(D) bit-for-bit), so the ladder walk runs
    // once per distinct ratio bit pattern and fans out to the cores.
    // Keyed on the exact bits — the same rule the solver classes use —
    // so the mapped index per core is identical to a per-core walk.
    // The map is a pure keyed memo: values depend only on their key,
    // results are emitted in coreRatios order, and the map is never
    // iterated — hash/insertion order cannot reach the decision.
    // Proven by InsertionOrderPermutationBitIdentity in
    // tests/core/test_fastcap_policy.cpp.
    // fastcap-lint: order-insensitive(keyed memo, never iterated)
    std::unordered_map<std::uint64_t, std::size_t> mapped;
    mapped.reserve(16);
    for (double x : sol.coreRatios) {
        const auto [it, inserted] = mapped.emplace(doubleBits(x), 0);
        if (inserted)
            it->second = closestRatioIndex(inputs.coreRatios, x);
        dec.coreFreqIdx.push_back(it->second);
    }
    return dec;
}

PolicyDecision
FastCapPolicy::decide(const PolicyInputs &inputs)
{
    // The hint's bracket shrink is only sound against an unchanged
    // budget; the comparison is exact, mirroring how the scenario
    // engine re-issues bit-identical budgets between steps.
    _opts.warmStart.sameBudget =
        _opts.warmStart.valid && inputs.budget == _lastBudget;

    FastCapSolver solver(inputs, _opts);
    SolveResult res = solver.solve();

    // Observe-only hot-path instrumentation: commuting writes keep
    // the counters exact under sweep/cluster thread parallelism, and
    // the enabled() gate keeps the disabled cost to one branch.
    if (telemetry::enabled()) {
        telemetry::Registry &reg = telemetry::Registry::global();
        reg.counter("/solver/solves").add();
        reg.counter("/solver/evaluations")
            .add(static_cast<std::uint64_t>(res.evaluations));
        reg.counter("/solver/iterations")
            .add(static_cast<std::uint64_t>(res.best.rootIterations));
        if (_opts.warmStart.sameBudget)
            reg.counter("/solver/warm_hits").add();
        reg.gauge("/solver/classes")
            .setMax(static_cast<double>(solver.numClasses()));
    }

    // Remember this epoch's solution as the next epoch's warm start.
    _opts.warmStart.valid = true;
    _opts.warmStart.memIndex = res.memIndex;
    _opts.warmStart.d = res.best.d;
    _lastBudget = inputs.budget;

    if (!res.best.budgetFeasible &&
        res.best.predictedPower > inputs.budget * 1.01) {
        // Budget below the floor power of the platform: everything is
        // already pinned at minimum frequency; nothing more to shed.
        warn("FastCap: budget %.1f W below floor power %.1f W; "
             "pinning minimum frequencies",
             inputs.budget, res.best.predictedPower);
    }
    PolicyDecision dec = mapToLadders(inputs, res.best, res.memIndex,
                                      res.evaluations);
    dec.utilisationClamped = res.utilisationClamped;
    return dec;
}

PolicyDecision
CpuOnlyPolicy::decide(const PolicyInputs &inputs)
{
    FastCapSolver solver(inputs, _opts);
    const std::size_t top = inputs.memRatios.size() - 1;
    InnerSolution sol = solver.solveAtMemIndex(top);
    return mapToLadders(inputs, sol, top, solver.evaluations());
}

PolicyDecision
UncappedPolicy::decide(const PolicyInputs &inputs)
{
    PolicyDecision dec;
    dec.memFreqIdx = inputs.memRatios.size() - 1;
    dec.coreFreqIdx.assign(inputs.cores.size(),
                           inputs.coreRatios.size() - 1);
    dec.evaluations = 0;

    // Predicted power at the all-max point, for reporting symmetry.
    Watts p = inputs.staticPower() + inputs.memory.pm;
    for (const CoreModel &c : inputs.cores)
        p += c.pi;
    dec.predictedPower = p;
    return dec;
}

} // namespace fastcap
