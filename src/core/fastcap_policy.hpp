/**
 * @file
 * The FastCap policy: Algorithm 1 plus the ladder mapping of its
 * line 16 ("set each core (memory) frequency to the closest frequency
 * to z̄_i/z_i (s̄_b/s_b) after normalization").
 */

#ifndef FASTCAP_CORE_FASTCAP_POLICY_HPP
#define FASTCAP_CORE_FASTCAP_POLICY_HPP

#include <string>

#include "core/policy.hpp"
#include "core/solver.hpp"

namespace fastcap {

/**
 * OS-level FastCap governor decision logic.
 *
 * Epoch-to-epoch the governor warm-starts the solver from its
 * previous decision: the memory-level search probes last epoch's
 * level and its neighbours first (result-identical to a cold solve —
 * see WarmStart), and, when SolverOptions::warmStartShrinkBracket is
 * set and the budget is unchanged, the D bisection brackets around
 * last epoch's D. reset() drops the hint, so back-to-back
 * experiments stay independent.
 */
class FastCapPolicy : public CappingPolicy
{
  public:
    explicit FastCapPolicy(SolverOptions opts = SolverOptions{})
        : _opts(opts)
    {}

    std::string name() const override { return "FastCap"; }

    PolicyDecision decide(const PolicyInputs &inputs) override;

    void reset() override { _opts.warmStart = WarmStart{}; }

  private:
    SolverOptions _opts;
    /** Budget of the epoch that produced the warm-start hint. */
    Watts _lastBudget = 0.0;
};

/**
 * CPU-only variant (Section IV-B): runs the FastCap core solve but
 * pins the memory at its maximum frequency — isolating the value of
 * memory DVFS. This models all prior capping work that lacks memory
 * DVFS.
 */
class CpuOnlyPolicy : public CappingPolicy
{
  public:
    explicit CpuOnlyPolicy(SolverOptions opts = SolverOptions{})
        : _opts(opts)
    {}

    std::string name() const override { return "CPU-only"; }
    bool usesMemoryDvfs() const override { return false; }

    PolicyDecision decide(const PolicyInputs &inputs) override;

  private:
    SolverOptions _opts;
};

/**
 * No capping: everything at maximum frequency. The performance
 * baseline every result normalizes against.
 */
class UncappedPolicy : public CappingPolicy
{
  public:
    std::string name() const override { return "Uncapped"; }
    PolicyDecision decide(const PolicyInputs &inputs) override;
};

/** Map solver ratios onto ladder indices (Algorithm 1, line 16). */
PolicyDecision mapToLadders(const PolicyInputs &inputs,
                            const InnerSolution &sol,
                            std::size_t mem_index, int evaluations);

} // namespace fastcap

#endif // FASTCAP_CORE_FASTCAP_POLICY_HPP
