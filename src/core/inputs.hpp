/**
 * @file
 * The information a capping policy sees each epoch.
 *
 * Everything here is derived from performance counters and online
 * model fitting (Section III-C of the paper) — policies never see the
 * simulator's ground-truth parameters. All times in seconds, powers
 * in watts, frequency ratios normalized to the respective maximum.
 */

#ifndef FASTCAP_CORE_INPUTS_HPP
#define FASTCAP_CORE_INPUTS_HPP

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace fastcap {

/** Per-core model inputs (Eq. 2 parameters plus queuing inputs). */
struct CoreModel
{
    /** Minimum think time z̄_i: think time at max core frequency. */
    Seconds zbar = 0.0;
    /** Shared-cache time c_i (frequency-independent). */
    Seconds cache = 0.0;
    /** Fitted max frequency-dependent power P_i (Eq. 2). */
    Watts pi = 0.0;
    /** Fitted exponent alpha_i (Eq. 2), typically 2-3. */
    double alpha = 2.5;
    /** Static per-core power (known/measured offline). */
    Watts pStatic = 0.0;
    /** Instructions per memory access (TIC / TLM). */
    double ipa = 1000.0;
    /** Measured total core power in the profiling window. */
    Watts measuredPower = 0.0;
    /** Measured instruction rate in the profiling window (1/s). */
    double measuredIps = 0.0;
};

/** Per-controller queuing-model inputs (Eq. 1 parameters). */
struct ControllerModel
{
    /** Mean bank queue depth at arrival, Q. */
    double q = 1.0;
    /** Mean bus queue length at bank departure, U. */
    double u = 1.0;
    /** Mean bank service time, s_m. */
    Seconds sm = 0.0;
    /** Minimum bus transfer time s̄_b (at max memory frequency). */
    Seconds sbBar = 0.0;
    /**
     * Measured request arrival rate (reads + writebacks per second).
     * Used to keep the memory search inside the Eq. 1 model's
     * validity domain: below bus saturation, where Q and U sampled
     * at one operating point still predict other points.
     */
    double arrivalRate = 0.0;
};

/** Memory-subsystem model inputs (Eq. 3 parameters). */
struct MemoryModel
{
    std::vector<ControllerModel> controllers;
    /** Fitted max frequency-dependent memory power P_m (Eq. 3). */
    Watts pm = 0.0;
    /** Fitted exponent beta (Eq. 3), close to 1. */
    double beta = 1.0;
    /** Static memory power. */
    Watts pStatic = 0.0;
    /** Measured total memory power in the profiling window. */
    Watts measuredPower = 0.0;
};

/**
 * Full per-epoch inputs handed to a capping policy.
 */
struct PolicyInputs
{
    std::vector<CoreModel> cores;
    MemoryModel memory;

    /**
     * Access probabilities: accessProbs[i][k] is the fraction of core
     * i's misses served by controller k (Section IV-B, multiple
     * memory controllers). Single controller: one column of ones.
     */
    std::vector<std::vector<double>> accessProbs;

    /** Background (non-core, non-memory) power. */
    Watts background = 0.0;

    /** Power budget in watts: B * P̄. */
    Watts budget = 0.0;

    /** Core-frequency ladder as ratios f/f_max, ascending. */
    std::vector<double> coreRatios;

    /** Memory-frequency ladder as ratios f/f_max, ascending. */
    std::vector<double> memRatios;

    /** Total static + background power (the paper's P_s). */
    Watts
    staticPower() const
    {
        Watts ps = background + memory.pStatic;
        for (const CoreModel &c : cores)
            ps += c.pStatic;
        return ps;
    }

    std::size_t numCores() const { return cores.size(); }
    std::size_t numMemLevels() const { return memRatios.size(); }

    /** Lowest selectable core ratio f_min/f_max. */
    double
    minCoreRatio() const
    {
        return coreRatios.empty() ? 1.0 : coreRatios.front();
    }
};

/** A policy's chosen operating point for the next epoch. */
struct PolicyDecision
{
    /** Ladder index per core. */
    std::vector<std::size_t> coreFreqIdx;
    /** Ladder index for the memory subsystem. */
    std::size_t memFreqIdx = 0;
    /** Inner-solve evaluations performed (complexity accounting). */
    int evaluations = 0;
    /** Power the policy predicts for this operating point. */
    Watts predictedPower = 0.0;
    /**
     * The budget sits below the platform's floor power at this
     * operating point: the decision pins minimum frequencies and
     * still predicts an over-budget draw. Epochs flagged here are
     * infeasibility artifacts, not tracking errors.
     */
    bool budgetSaturated = false;
    /**
     * The bus-utilisation guard found no admissible memory level and
     * the solve ran outside the queuing model's validity domain
     * (see SolveResult::utilisationClamped).
     */
    bool utilisationClamped = false;
};

} // namespace fastcap

#endif // FASTCAP_CORE_INPUTS_HPP
