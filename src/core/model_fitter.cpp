#include "core/model_fitter.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace fastcap {

PowerLawTracker::PowerLawTracker(double default_exponent,
                                 std::size_t history,
                                 double min_exponent,
                                 double max_exponent)
    : _defaultExponent(default_exponent), _historyLimit(history),
      _minExponent(min_exponent), _maxExponent(max_exponent)
{
    if (history < 2)
        fatal("PowerLawTracker: history must be >= 2");
    _model.exponent = default_exponent;
}

void
PowerLawTracker::observe(double ratio, Watts dyn_power)
{
    if (ratio <= 0.0 || ratio > 1.0 + 1e-9) {
        warn("PowerLawTracker: ignoring out-of-range ratio %g", ratio);
        return;
    }
    if (dyn_power <= 0.0) {
        // A zero/negative dynamic-power measurement carries no
        // information for a multiplicative model; skip it.
        return;
    }

    auto same = std::find_if(_history.begin(), _history.end(),
                             [&](const Sample &s) {
                                 return approxEqual(s.ratio, ratio, 1e-6);
                             });
    if (same != _history.end()) {
        // Refresh: smooth toward the new measurement so stale samples
        // at the same frequency do not fossilise.
        same->power = 0.5 * same->power + 0.5 * dyn_power;
    } else {
        _history.push_back(Sample{ratio, dyn_power});
        while (_history.size() > _historyLimit)
            _history.pop_front();
    }
    refit();
}

void
PowerLawTracker::refit()
{
    if (_history.empty())
        return;

    if (_history.size() == 1) {
        // Bootstrap: solve Eq. 2 for the scale with the default
        // exponent.
        const Sample &s = _history.front();
        _model.scale = s.power / std::pow(s.ratio, _defaultExponent);
        _model.exponent = _defaultExponent;
        _model.fromFit = false;
        return;
    }

    std::vector<double> xs, ys;
    xs.reserve(_history.size());
    ys.reserve(_history.size());
    for (const Sample &s : _history) {
        xs.push_back(s.ratio);
        ys.push_back(s.power);
    }
    const PowerLawFit fit = fitPowerLaw(xs, ys);
    if (!fit.valid) {
        // Degenerate (all ratios equal): fall back to bootstrap on
        // the freshest sample.
        const Sample &s = _history.back();
        _model.scale = s.power / std::pow(s.ratio, _defaultExponent);
        _model.exponent = _defaultExponent;
        _model.fromFit = false;
        return;
    }

    _model.exponent =
        std::clamp(fit.exponent, _minExponent, _maxExponent);
    if (approxEqual(_model.exponent, fit.exponent)) {
        _model.scale = fit.scale;
    } else {
        // Exponent clamped: re-anchor the scale on the freshest
        // sample so predictions stay close to recent reality.
        const Sample &s = _history.back();
        _model.scale = s.power / std::pow(s.ratio, _model.exponent);
    }
    _model.fromFit = true;
}

ModelFitter::ModelFitter(std::size_t num_cores, double core_exponent,
                         double mem_exponent, double min_exponent,
                         double max_exponent)
    : _memory(mem_exponent, 3, min_exponent, max_exponent)
{
    _cores.reserve(num_cores);
    for (std::size_t i = 0; i < num_cores; ++i)
        _cores.emplace_back(core_exponent, 3, min_exponent,
                            max_exponent);
}

void
ModelFitter::observeCore(std::size_t core, double ratio, Watts dyn_power)
{
    _cores.at(core).observe(ratio, dyn_power);
}

void
ModelFitter::observeMemory(double ratio, Watts dyn_power)
{
    _memory.observe(ratio, dyn_power);
}

FittedModel
ModelFitter::core(std::size_t core) const
{
    return _cores.at(core).model();
}

} // namespace fastcap
