#include "core/model_fitter.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace fastcap {

PowerLawTracker::PowerLawTracker(double default_exponent,
                                 std::size_t history,
                                 double min_exponent,
                                 double max_exponent)
    : _defaultExponent(default_exponent), _historyLimit(history),
      _minExponent(min_exponent), _maxExponent(max_exponent)
{
    if (history < 2)
        fatal("PowerLawTracker: history must be >= 2");
    _model.exponent = default_exponent;
}

void
PowerLawTracker::accumulate(const Sample &s, double sign)
{
    _sumLx += sign * s.lx;
    _sumLy += sign * s.ly;
    _sumLxx += sign * s.lx * s.lx;
    _sumLxy += sign * s.lx * s.ly;
}

void
PowerLawTracker::observe(double ratio, Watts dyn_power)
{
    if (ratio <= 0.0 || ratio > 1.0 + 1e-9) {
        warn("PowerLawTracker: ignoring out-of-range ratio %g", ratio);
        return;
    }
    if (dyn_power <= 0.0) {
        // A zero/negative dynamic-power measurement carries no
        // information for a multiplicative model; skip it.
        return;
    }

    auto same = std::find_if(_history.begin(), _history.end(),
                             [&](const Sample &s) {
                                 return approxEqual(s.ratio, ratio, 1e-6);
                             });
    if (same != _history.end()) {
        // Refresh: smooth toward the new measurement so stale samples
        // at the same frequency do not fossilise. Rank-1 moment swap:
        // the old log-power contributions leave, the smoothed ones
        // enter; lx is unchanged.
        accumulate(*same, -1.0);
        same->power = 0.5 * same->power + 0.5 * dyn_power;
        same->ly = std::log(same->power);
        accumulate(*same, +1.0);
    } else {
        Sample s{ratio, dyn_power, std::log(ratio),
                 std::log(dyn_power)};
        accumulate(s, +1.0);
        _history.push_back(s);
        while (_history.size() > _historyLimit) {
            accumulate(_history.front(), -1.0);
            _history.pop_front();
        }
    }
    refit();
}

void
PowerLawTracker::refit()
{
    if (_history.empty())
        return;

    if (_history.size() == 1) {
        // Bootstrap: solve Eq. 2 for the scale with the default
        // exponent.
        const Sample &s = _history.front();
        _model.scale = s.power / std::pow(s.ratio, _defaultExponent);
        _model.exponent = _defaultExponent;
        _model.fromFit = false;
        return;
    }

    // O(1) log-log least squares from the running moments: the same
    // normal equations fitPowerLaw solves, with centered statistics
    // recovered from the raw sums instead of a two-pass sweep.
    const double n = static_cast<double>(_history.size());
    const double mx = _sumLx / n;
    const double my = _sumLy / n;
    const double sxx = _sumLxx - n * mx * mx;
    const double sxy = _sumLxy - n * mx * my;
    if (!(sxx > 0.0)) {
        // Degenerate x-spread (cannot happen with the distinct-ratio
        // history invariant, but rounding is not a proof): fall back
        // to bootstrap on the freshest sample, as the batch fit does
        // for all-equal ratios.
        const Sample &s = _history.back();
        _model.scale = s.power / std::pow(s.ratio, _defaultExponent);
        _model.exponent = _defaultExponent;
        _model.fromFit = false;
        return;
    }
    const double slope = sxy / sxx;
    const double intercept = my - slope * mx;

    _model.exponent = std::clamp(slope, _minExponent, _maxExponent);
    if (approxEqual(_model.exponent, slope)) {
        _model.scale = std::exp(intercept);
    } else {
        // Exponent clamped: re-anchor the scale on the freshest
        // sample so predictions stay close to recent reality.
        const Sample &s = _history.back();
        _model.scale = s.power / std::pow(s.ratio, _model.exponent);
    }
    _model.fromFit = true;
}

ModelFitter::ModelFitter(std::size_t num_cores, double core_exponent,
                         double mem_exponent, double min_exponent,
                         double max_exponent)
    : _memory(mem_exponent, 3, min_exponent, max_exponent)
{
    _cores.reserve(num_cores);
    for (std::size_t i = 0; i < num_cores; ++i)
        _cores.emplace_back(core_exponent, 3, min_exponent,
                            max_exponent);
}

void
ModelFitter::observeCore(std::size_t core, double ratio, Watts dyn_power)
{
    _cores.at(core).observe(ratio, dyn_power);
}

void
ModelFitter::observeMemory(double ratio, Watts dyn_power)
{
    _memory.observe(ratio, dyn_power);
}

FittedModel
ModelFitter::core(std::size_t core) const
{
    return _cores.at(core).model();
}

} // namespace fastcap
