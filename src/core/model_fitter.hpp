/**
 * @file
 * Online power-model fitting (Section III-C).
 *
 * FastCap "keeps data about the last three frequencies it has seen,
 * and periodically recomputes these parameters": per core, the pairs
 * (x = f/f_max, dynamic power) observed at the last few distinct
 * frequencies are fit to Eq. 2's P_i * x^alpha_i by log-log least
 * squares; the memory subsystem is fit to Eq. 3 the same way.
 *
 * Until two distinct frequencies have been observed, bootstrap
 * defaults are used (alpha = 2.5, beta = 1) with the scale solved
 * from the single available sample.
 */

#ifndef FASTCAP_CORE_MODEL_FITTER_HPP
#define FASTCAP_CORE_MODEL_FITTER_HPP

#include <cstddef>
#include <deque>
#include <vector>

#include "util/units.hpp"

namespace fastcap {

/** Fitted power-law parameters for one component. */
struct FittedModel
{
    Watts scale = 0.0;    //!< P_i (or P_m): power at ratio 1
    double exponent = 2.5; //!< alpha_i (or beta)
    bool fromFit = false;  //!< false while bootstrapping
};

/**
 * History-of-frequencies power-law fitter for one component (a core
 * or the memory subsystem).
 */
class PowerLawTracker
{
  public:
    /**
     * @param default_exponent bootstrap exponent before 2 samples
     * @param history          distinct frequencies retained (paper: 3)
     * @param min_exponent     clamp for fit robustness
     * @param max_exponent     clamp for fit robustness
     */
    explicit PowerLawTracker(double default_exponent = 2.5,
                             std::size_t history = 3,
                             double min_exponent = 0.3,
                             double max_exponent = 4.0);

    /**
     * Record a (frequency ratio, dynamic power) observation. A repeat
     * of an already-tracked ratio refreshes that entry (exponential
     * smoothing) instead of consuming a history slot.
     *
     * The log-log least-squares state is maintained *incrementally*:
     * each observation performs a rank-1 update of the running moments
     * (add the new sample's log contributions, subtract an evicted or
     * refreshed sample's old ones), so the per-observation cost is a
     * couple of std::log calls and O(1) arithmetic — no from-scratch
     * refit over the history. The recovered parameters agree with a
     * batch fitPowerLaw over the same history to rounding (enforced
     * by a tolerance test), not bit-exactly: the moment accumulation
     * order differs from the batch two-pass formula.
     */
    void observe(double ratio, Watts dyn_power);

    /** Current fitted (or bootstrapped) model. */
    FittedModel model() const { return _model; }

    std::size_t samples() const { return _history.size(); }

  private:
    void refit();

    struct Sample
    {
        double ratio = 0.0;
        Watts power = 0.0;
        double lx = 0.0; //!< log(ratio), cached for the moment updates
        double ly = 0.0; //!< log(power), cached for the moment updates
    };

    /** Add (+1) or remove (-1) a sample's log-log moment terms. */
    void accumulate(const Sample &s, double sign);

    double _defaultExponent = 0.0;
    std::size_t _historyLimit = 0;
    double _minExponent = 0.0;
    double _maxExponent = 0.0;
    std::deque<Sample> _history;
    FittedModel _model;
    // Running log-log moments over the history: sum lx, sum ly,
    // sum lx^2, sum lx*ly. History ratios are pairwise distinct (a
    // repeat refreshes in place), so with >= 2 samples the centered
    // x-variance is bounded well away from the accumulated rounding.
    double _sumLx = 0.0;
    double _sumLy = 0.0;
    double _sumLxx = 0.0;
    double _sumLxy = 0.0;
};

/**
 * Fitters for all cores plus the memory subsystem.
 */
class ModelFitter
{
  public:
    /**
     * @param num_cores     cores to track
     * @param core_exponent bootstrap alpha
     * @param mem_exponent  bootstrap beta
     * @param min_exponent  fit clamp (set both to 1 to force the
     *                      linear power model the paper criticises)
     * @param max_exponent  fit clamp
     */
    explicit ModelFitter(std::size_t num_cores,
                         double core_exponent = 2.5,
                         double mem_exponent = 1.0,
                         double min_exponent = 0.3,
                         double max_exponent = 4.0);

    /** Observe core i at ratio x with measured dynamic power. */
    void observeCore(std::size_t core, double ratio, Watts dyn_power);

    /** Observe the memory subsystem. */
    void observeMemory(double ratio, Watts dyn_power);

    FittedModel core(std::size_t core) const;
    FittedModel memory() const { return _memory.model(); }

    std::size_t numCores() const { return _cores.size(); }

  private:
    std::vector<PowerLawTracker> _cores;
    PowerLawTracker _memory;
};

} // namespace fastcap

#endif // FASTCAP_CORE_MODEL_FITTER_HPP
