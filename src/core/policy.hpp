/**
 * @file
 * Abstract interface for epoch-level power-capping policies.
 *
 * The harness calls decide() once per epoch with counter-derived
 * inputs; the policy returns ladder indices for every core and for
 * the memory subsystem. FastCap and every baseline of Section IV
 * implement this interface over the same inputs, which is exactly how
 * the paper extends the baselines with memory DVFS.
 */

#ifndef FASTCAP_CORE_POLICY_HPP
#define FASTCAP_CORE_POLICY_HPP

#include <string>

#include "core/inputs.hpp"

namespace fastcap {

/**
 * A power-capping policy: maps per-epoch inputs to DVFS settings.
 */
class CappingPolicy
{
  public:
    virtual ~CappingPolicy() = default;

    /** Short name used in reports ("FastCap", "Eql-Pwr", ...). */
    virtual std::string name() const = 0;

    /** Choose the operating point for the next epoch. */
    virtual PolicyDecision decide(const PolicyInputs &inputs) = 0;

    /** False for policies that pin the memory frequency at max. */
    virtual bool usesMemoryDvfs() const { return true; }

    /** Reset controller state between experiments (default: none). */
    virtual void reset() {}
};

} // namespace fastcap

#endif // FASTCAP_CORE_POLICY_HPP
