#include "core/queuing_model.hpp"

#include "util/logging.hpp"

namespace fastcap {

QueuingModel::QueuingModel(const PolicyInputs &inputs) : _in(inputs)
{
    if (_in.memory.controllers.empty())
        fatal("QueuingModel: no memory controllers in inputs");
    if (_in.accessProbs.size() != _in.cores.size())
        fatal("QueuingModel: accessProbs rows (%zu) != cores (%zu)",
              _in.accessProbs.size(), _in.cores.size());
}

Seconds
QueuingModel::controllerResponse(std::size_t k, double x_b) const
{
    const ControllerModel &c = _in.memory.controllers.at(k);
    if (x_b <= 0.0)
        panic("QueuingModel: non-positive memory ratio %g", x_b);
    // Eq. 1 with s_b = s̄_b / x_b.
    const Seconds sb = c.sbBar / x_b;
    return c.q * (c.sm + c.u * sb);
}

Seconds
QueuingModel::responseTime(std::size_t core, double x_b) const
{
    const auto &probs = _in.accessProbs.at(core);
    Seconds r = 0.0;
    for (std::size_t k = 0; k < probs.size(); ++k) {
        if (probs[k] > 0.0)
            r += probs[k] * controllerResponse(k, x_b);
    }
    return r;
}

Seconds
QueuingModel::minResponseTime(std::size_t core) const
{
    return responseTime(core, 1.0);
}

Seconds
QueuingModel::minTurnaround(std::size_t core) const
{
    const CoreModel &c = _in.cores.at(core);
    return c.zbar + c.cache + minResponseTime(core);
}

Seconds
QueuingModel::turnaround(std::size_t core, double x_i, double x_b) const
{
    const CoreModel &c = _in.cores.at(core);
    if (x_i <= 0.0)
        panic("QueuingModel: non-positive core ratio %g", x_i);
    return c.zbar / x_i + c.cache + responseTime(core, x_b);
}

double
QueuingModel::performance(std::size_t core, double x_i, double x_b) const
{
    return minTurnaround(core) / turnaround(core, x_i, x_b);
}

double
QueuingModel::instructionRate(std::size_t core, double x_i,
                              double x_b) const
{
    const CoreModel &c = _in.cores.at(core);
    return c.ipa / turnaround(core, x_i, x_b);
}

std::size_t
minMemIndexForUtilisation(const PolicyInputs &inputs,
                          double max_utilisation, bool *clamped)
{
    if (clamped)
        *clamped = false;
    if (inputs.memRatios.empty())
        fatal("minMemIndexForUtilisation: empty memory ladder");
    // Guard disabled: no validity-domain floor — the whole ladder is
    // searchable. (Historically this returned the *top* index, which
    // pinned memory at maximum frequency: the opposite of "guard
    // off" and contradicting the SolverOptions documentation.)
    if (max_utilisation <= 0.0)
        return 0;

    for (std::size_t m = 0; m < inputs.memRatios.size(); ++m) {
        const double x_b = inputs.memRatios[m];
        bool ok = true;
        for (const ControllerModel &c : inputs.memory.controllers) {
            // Transfer time per line at this level times the demand.
            const double util =
                c.arrivalRate * (c.sbBar / x_b);
            if (util > max_utilisation) {
                ok = false;
                break;
            }
        }
        if (ok)
            return m;
    }
    // No admissible level: even the top of the ladder saturates the
    // bus at the measured demand.
    if (clamped)
        *clamped = true;
    return inputs.memRatios.size() - 1;
}

} // namespace fastcap
