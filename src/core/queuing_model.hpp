/**
 * @file
 * The closed-network queuing model of Section III-A.
 *
 * Response time approximation (Eq. 1): R(s_b) ~= Q * (s_m + U * s_b),
 * generalized to multiple controllers by weighting each controller's
 * response with the core's access probabilities (Section IV-B).
 */

#ifndef FASTCAP_CORE_QUEUING_MODEL_HPP
#define FASTCAP_CORE_QUEUING_MODEL_HPP

#include <cstddef>

#include "core/inputs.hpp"
#include "util/units.hpp"

namespace fastcap {

/**
 * Evaluates memory response times and turn-around times from the
 * per-epoch inputs. Stateless view over PolicyInputs.
 */
class QueuingModel
{
  public:
    explicit QueuingModel(const PolicyInputs &inputs);

    /**
     * Response time of controller k at memory ratio x_b = s̄_b / s_b
     * (x_b = 1 is maximum memory frequency).
     */
    Seconds controllerResponse(std::size_t k, double x_b) const;

    /**
     * Mean response time experienced by core i at memory ratio x_b:
     * the access-probability-weighted average over controllers.
     */
    Seconds responseTime(std::size_t core, double x_b) const;

    /** R̄_i: response time at maximum memory frequency. */
    Seconds minResponseTime(std::size_t core) const;

    /**
     * Minimum turn-around time T̄_i = z̄_i + c_i + R̄_i — the best
     * possible per-access time for core i (Constraint 5's baseline).
     */
    Seconds minTurnaround(std::size_t core) const;

    /**
     * Turn-around time for core i given its think-time ratio
     * x_i = z̄_i / z_i and the memory ratio x_b.
     */
    Seconds turnaround(std::size_t core, double x_i, double x_b) const;

    /**
     * Performance factor D_i achieved by core i at (x_i, x_b):
     * D_i = T̄_i / T_i, in (0, 1].
     */
    double performance(std::size_t core, double x_i, double x_b) const;

    /** Predicted instruction rate (IPS) of core i at (x_i, x_b). */
    double instructionRate(std::size_t core, double x_i,
                           double x_b) const;

  private:
    const PolicyInputs &_in;
};

/**
 * Lowest memory-ladder index whose predicted bus utilisation (at the
 * measured arrival rate) stays at or below `max_utilisation` on every
 * controller. Eq. 1 extrapolates Q and U measured at one operating
 * point; past saturation that extrapolation collapses, so all
 * policies restrict their memory search to this validity domain.
 *
 * Returns the top index if even that saturates — a *clamp*, not an
 * admissible level: the solver then optimises outside the queuing
 * model's validity domain. When `clamped` is non-null it is set to
 * true exactly in that case (and to false otherwise) so callers can
 * surface the model-domain violation instead of silently trusting
 * the result.
 *
 * A non-positive `max_utilisation` disables the guard entirely:
 * index 0 (no floor), never clamped.
 */
std::size_t minMemIndexForUtilisation(const PolicyInputs &inputs,
                                      double max_utilisation = 0.9,
                                      bool *clamped = nullptr);

} // namespace fastcap

#endif // FASTCAP_CORE_QUEUING_MODEL_HPP
