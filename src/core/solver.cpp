#include "core/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace fastcap {

FastCapSolver::FastCapSolver(const PolicyInputs &inputs,
                             SolverOptions opts)
    : _in(inputs), _opts(opts), _queuing(inputs)
{
    if (_in.cores.empty())
        fatal("FastCapSolver: no cores in inputs");
    if (_in.memRatios.empty())
        fatal("FastCapSolver: empty memory ladder");
    if (_in.budget <= 0.0)
        fatal("FastCapSolver: non-positive budget");

    _minTurnaround.reserve(_in.cores.size());
    for (std::size_t i = 0; i < _in.cores.size(); ++i)
        _minTurnaround.push_back(_queuing.minTurnaround(i));
}

Watts
FastCapSolver::power(const std::vector<double> &core_ratios,
                     double x_b) const
{
    Watts p = _in.staticPower();
    for (std::size_t i = 0; i < _in.cores.size(); ++i) {
        const CoreModel &c = _in.cores[i];
        p += c.pi * std::pow(core_ratios[i], c.alpha);
    }
    p += _in.memory.pm * std::pow(x_b, _in.memory.beta);
    return p;
}

double
FastCapSolver::maxD(const std::vector<Seconds> &r_at_xb) const
{
    // D may rise until the fastest-constrained core hits z_i = z̄_i
    // (constraint 7): D <= T̄_i / (z̄_i + c_i + R_i(x_b)).
    double d_max = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < _in.cores.size(); ++i) {
        const CoreModel &c = _in.cores[i];
        const double bound =
            _minTurnaround[i] / (c.zbar + c.cache + r_at_xb[i]);
        d_max = std::min(d_max, bound);
    }
    return d_max;
}

double
FastCapSolver::coreRatioAtD(std::size_t i, double d,
                            const std::vector<Seconds> &r_at_xb) const
{
    const CoreModel &c = _in.cores[i];
    // Eq. 8: z_i = T̄_i / D - c_i - R_i(x_b).
    const Seconds z = _minTurnaround[i] / d - c.cache - r_at_xb[i];
    if (z <= c.zbar) {
        // At or beyond the top of the ladder (D near maxD).
        return 1.0;
    }
    // Frequency-ladder floor: cores that would need to run below
    // f_min are pinned there; their power saturates, which preserves
    // monotonicity of power in D.
    return std::max(c.zbar / z, _in.minCoreRatio());
}

Watts
FastCapSolver::powerAtD(double d, double x_b,
                        const std::vector<Seconds> &r_at_xb,
                        std::vector<double> *ratios_out) const
{
    Watts p = _in.staticPower() +
        _in.memory.pm * std::pow(x_b, _in.memory.beta);

    for (std::size_t i = 0; i < _in.cores.size(); ++i) {
        const CoreModel &c = _in.cores[i];
        const double x = coreRatioAtD(i, d, r_at_xb);
        p += c.pi * std::pow(x, c.alpha);
        if (ratios_out)
            (*ratios_out)[i] = x;
    }
    return p;
}

Watts
FastCapSolver::socketPowerAtD(const SocketBudget &socket, double d,
                              const std::vector<Seconds> &r_at_xb) const
{
    Watts p = 0.0;
    const std::size_t end = socket.firstCore + socket.numCores;
    for (std::size_t i = socket.firstCore; i < end; ++i) {
        const CoreModel &c = _in.cores[i];
        const double x = coreRatioAtD(i, d, r_at_xb);
        p += c.pi * std::pow(x, c.alpha) + c.pStatic;
    }
    return p;
}

InnerSolution
FastCapSolver::solveAtMemRatio(double x_b)
{
    ++_evaluations;

    std::vector<Seconds> r_at_xb(_in.cores.size());
    for (std::size_t i = 0; i < _in.cores.size(); ++i)
        r_at_xb[i] = _queuing.responseTime(i, x_b);

    const double d_hi = maxD(r_at_xb);
    // Below d_lo every core is pinned at f_min and power is constant;
    // the root (if any) lies above it.
    const double d_lo = d_hi * 1e-4;

    const auto residual = [&](double d) {
        return powerAtD(d, x_b, r_at_xb, nullptr) - _in.budget;
    };

    const RootResult root = solveMonotone(
        residual, d_lo, d_hi, d_hi * _opts.dTolerance,
        _in.budget * 1e-9, 200);

    // Per-processor constraints (6'): each socket's own monotone
    // solve bounds D as well; the system runs at the tightest one so
    // degradation stays equal across all applications.
    double d_final = root.x;
    for (const SocketBudget &socket : _opts.socketBudgets) {
        if (socket.numCores == 0 ||
            socket.firstCore + socket.numCores > _in.cores.size())
            fatal("FastCapSolver: socket budget range [%zu, %zu) out "
                  "of bounds", socket.firstCore,
                  socket.firstCore + socket.numCores);
        const auto socket_residual = [&](double d) {
            return socketPowerAtD(socket, d, r_at_xb) - socket.budget;
        };
        const RootResult socket_root = solveMonotone(
            socket_residual, d_lo, d_hi, d_hi * _opts.dTolerance,
            std::max(socket.budget, 1.0) * 1e-9, 200);
        d_final = std::min(d_final, socket_root.x);
    }

    InnerSolution sol;
    sol.memRatio = x_b;
    sol.d = d_final;
    sol.coreRatios.assign(_in.cores.size(), 1.0);
    sol.predictedPower =
        powerAtD(d_final, x_b, r_at_xb, &sol.coreRatios);
    // Tolerance matches the bisection's, so a solution sitting right
    // on the budget is not misreported as infeasible.
    sol.budgetFeasible =
        sol.predictedPower <= _in.budget * (1.0 + 1e-3);
    for (const SocketBudget &socket : _opts.socketBudgets) {
        if (socketPowerAtD(socket, d_final, r_at_xb) >
            socket.budget * (1.0 + 1e-3))
            sol.budgetFeasible = false;
    }
    if (!sol.budgetFeasible) {
        // Budget below this memory level's floor power. Rank such
        // points below every feasible one, ordered by how far over
        // budget the floor sits: the memory-level search then walks
        // toward cheaper levels instead of chasing the meaningless
        // saturated-D placeholder.
        sol.d = -(sol.predictedPower - _in.budget) / _in.budget;
    }
    return sol;
}

InnerSolution
FastCapSolver::solveAtMemIndex(std::size_t mem_index)
{
    return solveAtMemRatio(_in.memRatios.at(mem_index));
}

SolveResult
FastCapSolver::solve()
{
    const std::size_t m = _in.memRatios.size();
    SolveResult result;

    // Restrict the search to the queuing model's validity domain:
    // below this index the measured arrival rate would saturate the
    // bus and Eq. 1's extrapolation collapses.
    const std::size_t floor_idx =
        minMemIndexForUtilisation(_in, _opts.maxBusUtilisation);

    if (_opts.exhaustiveMemSearch || m - floor_idx <= 3) {
        // Reference path: scan every admissible memory level (used by
        // the ablation bench to validate the binary search).
        InnerSolution best;
        std::size_t best_idx = floor_idx;
        bool first = true;
        for (std::size_t idx = floor_idx; idx < m; ++idx) {
            InnerSolution s = solveAtMemIndex(idx);
            if (first || s.d > best.d) {
                first = false;
                best = std::move(s);
                best_idx = idx;
            }
        }
        result.best = std::move(best);
        result.memIndex = best_idx;
        result.evaluations = _evaluations;
        return result;
    }

    // Algorithm 1: binary search over the (unimodal, by convexity of
    // the underlying problem) D(m) curve. Memoize evaluations so
    // neighbour probes are not repeated.
    std::vector<InnerSolution> memo(m);
    std::vector<bool> have(m, false);
    const auto eval = [&](std::size_t idx) -> const InnerSolution & {
        if (!have[idx]) {
            memo[idx] = solveAtMemIndex(idx);
            have[idx] = true;
        }
        return memo[idx];
    };

    std::size_t lo = floor_idx;
    std::size_t hi = m - 1;
    std::size_t mid = (lo + hi) / 2;
    while (lo < hi) {
        mid = (lo + hi) / 2;
        const double d_mid = eval(mid).d;
        const double d_up =
            (mid + 1 <= hi) ? eval(mid + 1).d
                            : -std::numeric_limits<double>::infinity();
        const double d_down =
            (mid >= lo + 1) ? eval(mid - 1).d
                            : -std::numeric_limits<double>::infinity();

        if (d_up > d_mid) {
            lo = mid + 1;       // ascending to the right
        } else if (d_down > d_mid) {
            hi = mid - 1;       // ascending to the left
        } else {
            lo = hi = mid;      // local (= global, unimodal) optimum
        }
    }
    mid = lo;

    result.best = eval(mid);
    result.memIndex = mid;
    result.evaluations = _evaluations;
    return result;
}

} // namespace fastcap
