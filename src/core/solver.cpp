#include "core/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace fastcap {

FastCapSolver::FastCapSolver(const PolicyInputs &inputs,
                             SolverOptions opts)
    : _in(inputs), _opts(std::move(opts)), _queuing(inputs)
{
    if (_in.cores.empty())
        fatal("FastCapSolver: no cores in inputs");
    if (_in.memRatios.empty())
        fatal("FastCapSolver: empty memory ladder");
    if (_in.budget <= 0.0)
        fatal("FastCapSolver: non-positive budget");

    _minTurnaround.reserve(_in.cores.size());
    for (std::size_t i = 0; i < _in.cores.size(); ++i)
        _minTurnaround.push_back(_queuing.minTurnaround(i));

    // Same summation order as PolicyInputs::staticPower(), so the
    // hoisted constant is bit-identical to a fresh evaluation.
    _staticPower = _in.staticPower();
    _minCoreRatio = _in.minCoreRatio();

    if (!_opts.referenceImpl)
        buildClasses();
}

void
FastCapSolver::buildClasses()
{
    const std::size_t n = _in.cores.size();
    _classOf.resize(n);

    // Exact-bit class key: cores are interchangeable for the solve
    // iff every model parameter the inner loop reads is the same
    // double, including the controller-access row the queuing model
    // weights R by.
    std::map<std::vector<std::uint64_t>, std::uint32_t> ids;
    std::vector<std::uint64_t> key;
    for (std::size_t i = 0; i < n; ++i) {
        const CoreModel &c = _in.cores[i];
        key.clear();
        key.reserve(5 + _in.accessProbs[i].size());
        key.push_back(doubleBits(c.zbar));
        key.push_back(doubleBits(c.cache));
        key.push_back(doubleBits(c.pi));
        key.push_back(doubleBits(c.alpha));
        key.push_back(doubleBits(c.pStatic));
        for (double p : _in.accessProbs[i])
            key.push_back(doubleBits(p));

        const auto [it, inserted] = ids.emplace(
            key, static_cast<std::uint32_t>(_classRep.size()));
        if (inserted) {
            _classRep.push_back(i);
            _classMinT.push_back(_minTurnaround[i]);
            _classCache.push_back(c.cache);
            _classZbar.push_back(c.zbar);
            _classPi.push_back(c.pi);
            _classAlpha.push_back(c.alpha);
            _classPStatic.push_back(c.pStatic);
        }
        _classOf[i] = it->second;
    }

    const std::size_t k = _classRep.size();
    _classR.resize(k);
    _classRatio.resize(k);
    _classPowTerm.resize(k);
}

Watts
FastCapSolver::power(const std::vector<double> &core_ratios,
                     double x_b) const
{
    Watts p = _in.staticPower();
    for (std::size_t i = 0; i < _in.cores.size(); ++i) {
        const CoreModel &c = _in.cores[i];
        p += c.pi * std::pow(core_ratios[i], c.alpha);
    }
    p += _in.memory.pm * std::pow(x_b, _in.memory.beta);
    return p;
}

// --- Per-core reference implementation (pre-hot-path) --------------

double
FastCapSolver::maxD(const std::vector<Seconds> &r_at_xb) const
{
    // D may rise until the fastest-constrained core hits z_i = z̄_i
    // (constraint 7): D <= T̄_i / (z̄_i + c_i + R_i(x_b)).
    double d_max = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < _in.cores.size(); ++i) {
        const CoreModel &c = _in.cores[i];
        const double bound =
            _minTurnaround[i] / (c.zbar + c.cache + r_at_xb[i]);
        d_max = std::min(d_max, bound);
    }
    return d_max;
}

double
FastCapSolver::coreRatioAtD(std::size_t i, double d,
                            const std::vector<Seconds> &r_at_xb) const
{
    const CoreModel &c = _in.cores[i];
    // Eq. 8: z_i = T̄_i / D - c_i - R_i(x_b).
    const Seconds z = _minTurnaround[i] / d - c.cache - r_at_xb[i];
    if (z <= c.zbar) {
        // At or beyond the top of the ladder (D near maxD).
        return 1.0;
    }
    // Frequency-ladder floor: cores that would need to run below
    // f_min are pinned there; their power saturates, which preserves
    // monotonicity of power in D.
    return std::max(c.zbar / z, _in.minCoreRatio());
}

Watts
FastCapSolver::powerAtD(double d, double x_b,
                        const std::vector<Seconds> &r_at_xb,
                        std::vector<double> *ratios_out) const
{
    Watts p = _in.staticPower() +
        _in.memory.pm * std::pow(x_b, _in.memory.beta);

    for (std::size_t i = 0; i < _in.cores.size(); ++i) {
        const CoreModel &c = _in.cores[i];
        const double x = coreRatioAtD(i, d, r_at_xb);
        p += c.pi * std::pow(x, c.alpha);
        if (ratios_out)
            (*ratios_out)[i] = x;
    }
    return p;
}

Watts
FastCapSolver::socketPowerAtD(const SocketBudget &socket, double d,
                              const std::vector<Seconds> &r_at_xb) const
{
    Watts p = 0.0;
    const std::size_t end = socket.firstCore + socket.numCores;
    for (std::size_t i = socket.firstCore; i < end; ++i) {
        const CoreModel &c = _in.cores[i];
        const double x = coreRatioAtD(i, d, r_at_xb);
        p += c.pi * std::pow(x, c.alpha) + c.pStatic;
    }
    return p;
}

// --- Equivalence-class hot path ------------------------------------

void
FastCapSolver::classResponseTimes(double x_b)
{
    // One queuing evaluation per class: cores of a class share their
    // access-probability row, so R_i(x_b) is the same arithmetic.
    for (std::size_t c = 0; c < _classRep.size(); ++c)
        _classR[c] = _queuing.responseTime(_classRep[c], x_b);
}

double
FastCapSolver::classMaxD() const
{
    // min over classes == min over cores: members share the bound.
    double d_max = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < _classRep.size(); ++c) {
        const double bound = _classMinT[c] /
            (_classZbar[c] + _classCache[c] + _classR[c]);
        d_max = std::min(d_max, bound);
    }
    return d_max;
}

void
FastCapSolver::classTermAt(double d, std::uint32_t c) const
{
    const Seconds z = _classMinT[c] / d - _classCache[c] - _classR[c];
    double x = 1.0;
    if (z > _classZbar[c])
        x = std::max(_classZbar[c] / z, _minCoreRatio);
    _classRatio[c] = x;
    _classPowTerm[c] = _classPi[c] * std::pow(x, _classAlpha[c]);
}

void
FastCapSolver::classTermsAtD(double d) const
{
    // The only transcendental work per probe: one pow per class.
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(_classRep.size()); ++c)
        classTermAt(d, c);
}

void
FastCapSolver::classTermsAtDFor(
    double d, const std::vector<std::uint32_t> &subset) const
{
    // Restricted to one socket's classes; entries are bit-equal to a
    // full recompute because both paths run the same classTermAt.
    for (const std::uint32_t c : subset)
        classTermAt(d, c);
}

const std::vector<std::uint32_t> &
FastCapSolver::socketClasses(std::size_t socket_idx) const
{
    if (_socketClasses.size() != _opts.socketBudgets.size())
        _socketClasses.assign(_opts.socketBudgets.size(), {});
    std::vector<std::uint32_t> &classes = _socketClasses[socket_idx];
    if (classes.empty()) {
        // A validated socket holds >= 1 core, so an empty list means
        // "not built yet", never "no classes".
        const SocketBudget &socket = _opts.socketBudgets[socket_idx];
        std::vector<bool> present(_classRep.size(), false);
        const std::size_t end = socket.firstCore + socket.numCores;
        for (std::size_t i = socket.firstCore; i < end; ++i)
            present[_classOf[i]] = true;
        for (std::uint32_t c = 0;
             c < static_cast<std::uint32_t>(present.size()); ++c)
            if (present[c])
                classes.push_back(c);
    }
    return classes;
}

Watts
FastCapSolver::classPowerAtD(double d, double mem_term) const
{
    classTermsAtD(d);
    // Accumulate in original core order: the sum — and with it every
    // bisection iterate — is bit-identical to the per-core reference.
    Watts p = _staticPower + mem_term;
    for (const std::uint32_t c : _classOf)
        p += _classPowTerm[c];
    return p;
}

Watts
FastCapSolver::classSocketPowerAtD(std::size_t socket_idx,
                                   const SocketBudget &socket,
                                   double d) const
{
    classTermsAtDFor(d, socketClasses(socket_idx));
    // Per-core accumulation in original index order, exactly as the
    // reference socketPowerAtD sums — the partition above only limits
    // which pow terms get (re)computed, never the addition sequence.
    Watts p = 0.0;
    const std::size_t end = socket.firstCore + socket.numCores;
    for (std::size_t i = socket.firstCore; i < end; ++i) {
        const std::uint32_t c = _classOf[i];
        p += _classPowTerm[c] + _classPStatic[c];
    }
    return p;
}

// --- Inner solve ----------------------------------------------------

namespace {

/** Saturation flags of the binding root solve, by residual sign. */
void
applySaturation(InnerSolution &sol, const RootResult &binding)
{
    sol.saturatedLow = binding.saturated && binding.fx > 0.0;
    sol.saturatedHigh = binding.saturated && binding.fx < 0.0;
}

} // namespace

InnerSolution
FastCapSolver::solveAtMemRatio(double x_b)
{
    if (_opts.referenceImpl)
        return referenceSolveAtMemRatio(x_b);
    return classSolveAtMemRatio(x_b);
}

InnerSolution
FastCapSolver::referenceSolveAtMemRatio(double x_b)
{
    ++_evaluations;

    std::vector<Seconds> r_at_xb(_in.cores.size());
    for (std::size_t i = 0; i < _in.cores.size(); ++i)
        r_at_xb[i] = _queuing.responseTime(i, x_b);

    const double d_hi = maxD(r_at_xb);
    // Below d_lo every core is pinned at f_min and power is constant;
    // the root (if any) lies above it.
    const double d_lo = d_hi * 1e-4;

    const auto residual = [&](double d) {
        return powerAtD(d, x_b, r_at_xb, nullptr) - _in.budget;
    };

    const RootResult root = solveMonotone(
        residual, d_lo, d_hi, d_hi * _opts.dTolerance,
        _in.budget * 1e-9, 200);

    // Per-processor constraints (6'): each socket's own monotone
    // solve bounds D as well; the system runs at the tightest one so
    // degradation stays equal across all applications.
    InnerSolution sol;
    sol.d = root.x;
    sol.rootIterations = root.iterations;
    applySaturation(sol, root);
    for (const SocketBudget &socket : _opts.socketBudgets) {
        if (socket.numCores == 0 ||
            socket.firstCore + socket.numCores > _in.cores.size())
            fatal("FastCapSolver: socket budget range [%zu, %zu) out "
                  "of bounds", socket.firstCore,
                  socket.firstCore + socket.numCores);
        const auto socket_residual = [&](double d) {
            return socketPowerAtD(socket, d, r_at_xb) - socket.budget;
        };
        const RootResult socket_root = solveMonotone(
            socket_residual, d_lo, d_hi, d_hi * _opts.dTolerance,
            std::max(socket.budget, 1.0) * 1e-9, 200);
        sol.rootIterations += socket_root.iterations;
        if (socket_root.x < sol.d) {
            sol.d = socket_root.x;
            applySaturation(sol, socket_root);
        }
    }

    sol.memRatio = x_b;
    sol.coreRatios.assign(_in.cores.size(), 1.0);
    sol.predictedPower = powerAtD(sol.d, x_b, r_at_xb, &sol.coreRatios);
    finishSolution(sol, &r_at_xb);
    return sol;
}

InnerSolution
FastCapSolver::classSolveAtMemRatio(double x_b)
{
    ++_evaluations;

    classResponseTimes(x_b);

    const double d_hi = classMaxD();
    const double d_lo = d_hi * 1e-4;
    const double mem_term =
        _in.memory.pm * std::pow(x_b, _in.memory.beta);

    const auto residual = [&](double d) {
        return classPowerAtD(d, mem_term) - _in.budget;
    };

    // Warm-start bracket shrink (opt-in): with an unchanged budget
    // the previous epoch's D is close to this one's, so a band around
    // it usually brackets the root at a fraction of the iterations.
    // The band changes the midpoint lattice, so the root can differ
    // from a cold solve in its last ulps (still within dTolerance).
    RootResult root;
    bool solved = false;
    int band_evals = 0;
    if (_opts.warmStartShrinkBracket && _dHint > 0.0) {
        const double band_lo = std::max(d_lo, _dHint * 0.5);
        const double band_hi = std::min(d_hi, _dHint * 2.0);
        if (band_lo < band_hi) {
            const double f_blo = residual(band_lo);
            const double f_bhi = residual(band_hi);
            band_evals = 2;
            if (f_blo < 0.0 && f_bhi > 0.0) {
                root = bisectWithEndpoints(
                    residual, band_lo, f_blo, band_hi, f_bhi,
                    d_hi * _opts.dTolerance, _in.budget * 1e-9, 200);
                root.iterations += band_evals;
                solved = true;
            }
        }
    }
    if (!solved) {
        root = solveMonotone(residual, d_lo, d_hi,
                             d_hi * _opts.dTolerance,
                             _in.budget * 1e-9, 200);
        // A shrink band that failed to bracket still spent its two
        // probes; every evaluation is accounted for.
        root.iterations += band_evals;
    }

    InnerSolution sol;
    sol.d = root.x;
    sol.rootIterations = root.iterations;
    applySaturation(sol, root);
    for (std::size_t s = 0; s < _opts.socketBudgets.size(); ++s) {
        const SocketBudget &socket = _opts.socketBudgets[s];
        if (socket.numCores == 0 ||
            socket.firstCore + socket.numCores > _in.cores.size())
            fatal("FastCapSolver: socket budget range [%zu, %zu) out "
                  "of bounds", socket.firstCore,
                  socket.firstCore + socket.numCores);
        const auto socket_residual = [&](double d) {
            return classSocketPowerAtD(s, socket, d) - socket.budget;
        };
        const RootResult socket_root = solveMonotone(
            socket_residual, d_lo, d_hi, d_hi * _opts.dTolerance,
            std::max(socket.budget, 1.0) * 1e-9, 200);
        sol.rootIterations += socket_root.iterations;
        if (socket_root.x < sol.d) {
            sol.d = socket_root.x;
            applySaturation(sol, socket_root);
        }
    }

    sol.memRatio = x_b;
    sol.coreRatios.resize(_in.cores.size());
    classTermsAtD(sol.d);
    Watts p = _staticPower + mem_term;
    for (std::size_t i = 0; i < _in.cores.size(); ++i) {
        const std::uint32_t c = _classOf[i];
        p += _classPowTerm[c];
        sol.coreRatios[i] = _classRatio[c];
    }
    sol.predictedPower = p;
    finishSolution(sol, nullptr);
    return sol;
}

void
FastCapSolver::finishSolution(InnerSolution &sol,
                              const std::vector<Seconds> *r_at_xb) const
{
    // Tolerance matches the bisection's, so a solution sitting right
    // on the budget is not misreported as infeasible.
    sol.budgetFeasible =
        sol.predictedPower <= _in.budget * (1.0 + 1e-3);
    for (std::size_t s = 0; s < _opts.socketBudgets.size(); ++s) {
        const SocketBudget &socket = _opts.socketBudgets[s];
        const Watts sp = r_at_xb
            ? socketPowerAtD(socket, sol.d, *r_at_xb)
            : classSocketPowerAtD(s, socket, sol.d);
        if (sp > socket.budget * (1.0 + 1e-3))
            sol.budgetFeasible = false;
    }
    if (!sol.budgetFeasible) {
        // Budget below this memory level's floor power. Rank such
        // points below every feasible one, ordered by how far over
        // budget the floor sits: the memory-level search then walks
        // toward cheaper levels instead of chasing the meaningless
        // saturated-D placeholder.
        sol.d = -(sol.predictedPower - _in.budget) / _in.budget;
    }
}

InnerSolution
FastCapSolver::solveAtMemIndex(std::size_t mem_index)
{
    return solveAtMemRatio(_in.memRatios.at(mem_index));
}

SolveResult
FastCapSolver::solve()
{
    const std::size_t m = _in.memRatios.size();
    SolveResult result;

    // Restrict the search to the queuing model's validity domain:
    // below this index the measured arrival rate would saturate the
    // bus and Eq. 1's extrapolation collapses.
    bool clamped = false;
    const std::size_t floor_idx = minMemIndexForUtilisation(
        _in, _opts.maxBusUtilisation, &clamped);
    result.utilisationClamped = clamped;
    if (clamped)
        warn("FastCapSolver: no memory level keeps bus utilisation "
             "below %.2f at the measured demand; solving at the top "
             "of the ladder, outside the queuing model's validity "
             "domain", _opts.maxBusUtilisation);

    if (_opts.exhaustiveMemSearch || m - floor_idx <= 3) {
        // Reference path: scan every admissible memory level (used by
        // the ablation bench to validate the binary search).
        InnerSolution best;
        std::size_t best_idx = floor_idx;
        bool first = true;
        for (std::size_t idx = floor_idx; idx < m; ++idx) {
            InnerSolution s = solveAtMemIndex(idx);
            if (first || s.d > best.d) {
                first = false;
                best = std::move(s);
                best_idx = idx;
            }
        }
        result.best = std::move(best);
        result.memIndex = best_idx;
        result.evaluations = _evaluations;
        return result;
    }

    // Algorithm 1: binary search over the (unimodal, by convexity of
    // the underlying problem) D(m) curve. Memoize evaluations so
    // neighbour probes are not repeated.
    std::vector<InnerSolution> memo(m);
    std::vector<bool> have(m, false);
    const auto eval = [&](std::size_t idx) -> const InnerSolution & {
        if (!have[idx]) {
            if (_opts.warmStartShrinkBracket &&
                _opts.warmStart.valid && _opts.warmStart.sameBudget &&
                idx == _opts.warmStart.memIndex)
                _dHint = _opts.warmStart.d;
            memo[idx] = solveAtMemIndex(idx);
            _dHint = 0.0;
            have[idx] = true;
        }
        return memo[idx];
    };

    // Warm start: probe the previous epoch's level and its
    // neighbours first. Confirming a local optimum there picks the
    // same level as the cold search (the D(m) curve is unimodal and
    // the inner solve at a level does not depend on the search
    // trajectory), at 2-3 inner solves instead of ~2 log2 M.
    if (_opts.warmStart.valid) {
        const std::size_t h = std::clamp(_opts.warmStart.memIndex,
                                         floor_idx, m - 1);
        const double d_h = eval(h).d;
        const double d_up =
            (h + 1 <= m - 1) ? eval(h + 1).d
                             : -std::numeric_limits<double>::infinity();
        const double d_down =
            (h >= floor_idx + 1)
                ? eval(h - 1).d
                : -std::numeric_limits<double>::infinity();
        if (d_h >= d_up && d_h >= d_down) {
            result.best = eval(h);
            result.memIndex = h;
            result.evaluations = _evaluations;
            return result;
        }
    }

    std::size_t lo = floor_idx;
    std::size_t hi = m - 1;
    std::size_t mid = (lo + hi) / 2;
    while (lo < hi) {
        mid = (lo + hi) / 2;
        const double d_mid = eval(mid).d;
        const double d_up =
            (mid + 1 <= hi) ? eval(mid + 1).d
                            : -std::numeric_limits<double>::infinity();
        const double d_down =
            (mid >= lo + 1) ? eval(mid - 1).d
                            : -std::numeric_limits<double>::infinity();

        if (d_up > d_mid) {
            lo = mid + 1;       // ascending to the right
        } else if (d_down > d_mid) {
            hi = mid - 1;       // ascending to the left
        } else {
            lo = hi = mid;      // local (= global, unimodal) optimum
        }
    }
    mid = lo;

    result.best = eval(mid);
    result.memIndex = mid;
    result.evaluations = _evaluations;
    return result;
}

} // namespace fastcap
