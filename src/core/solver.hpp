/**
 * @file
 * The FastCap optimization solver (Section III-B).
 *
 * The optimization:
 *
 *   maximize D
 *   s.t. (z_i + c_i + R(s_b)) / (z̄_i + c_i + R(s̄_b)) <= 1/D   (5)
 *        sum_i P_i (z̄_i/z_i)^alpha_i + P_m (s̄_b/s_b)^beta + P_s
 *            <= B * P̄                                          (6)
 *        z_i >= z̄_i, s_b >= s̄_b                                (7)
 *
 * Theorem 1: both (5) and (6) are tight at the optimum. For a fixed
 * memory ratio x_b this reduces the problem to one unknown D, with
 *
 *     z_i(D) = T̄_i / D - c_i - R_i(x_b)        (Eq. 8)
 *
 * and total power strictly increasing in D, so D is found by a
 * monotone root solve in O(N) per evaluation. A binary search over
 * the M memory levels (Algorithm 1) gives O(N log M) overall.
 *
 * Frequency-ladder clamping: cores whose required ratio falls below
 * f_min/f_max are pinned at the lowest frequency; their power
 * contribution saturates, keeping the power curve monotone in D.
 *
 * Hot-path design for large N (docs/ARCHITECTURE.md, "Solver hot
 * path"): per-core constants are gathered once per construction into
 * a flat structure-of-arrays scratch, and cores sharing the same
 * model parameters (z̄, c, P_i, alpha, P_static, controller-access
 * row) are collapsed into *equivalence classes*. Every transcendental
 * (std::pow) and queuing evaluation runs once per class per probe;
 * the per-core work left in the inner loop is a table lookup and an
 * add, kept in original core order so the accumulated power — and
 * therefore every bisection iterate and the final SolveResult — is
 * bit-identical to the per-core reference path
 * (SolverOptions::referenceImpl). Homogeneous mixes collapse to one
 * class, making the solve O(#classes log M) instead of O(N log M)
 * in transcendental work.
 */

#ifndef FASTCAP_CORE_SOLVER_HPP
#define FASTCAP_CORE_SOLVER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/inputs.hpp"
#include "core/queuing_model.hpp"
#include "util/units.hpp"

namespace fastcap {

/** Outcome of the inner solve at one memory level. */
struct InnerSolution
{
    /**
     * Achieved performance factor in (0, 1] when the budget is
     * feasible at this memory level. When infeasible (floor power
     * above budget), holds a negative penalty proportional to the
     * overshoot so the memory search orders such points correctly.
     */
    double d = 0.0;
    double memRatio = 1.0;        //!< x_b evaluated
    std::vector<double> coreRatios; //!< x_i per core, in (0, 1]
    Watts predictedPower = 0.0;   //!< model power at this point
    bool budgetFeasible = false;  //!< power <= budget (within tol)
    /**
     * The binding root solve clamped at the D floor: the budget sits
     * below this memory level's floor power (every core already at
     * f_min). Propagated from RootResult::saturated so infeasibility
     * is an explicit diagnostic, not an inference from a residual.
     */
    bool saturatedLow = false;
    /**
     * The binding root solve clamped at maxD: the budget exceeds
     * what this memory level can spend even at full throttle.
     */
    bool saturatedHigh = false;
    /** Function evaluations the root solves consumed. */
    int rootIterations = 0;
};

/** Outcome of the full FastCap solve. */
struct SolveResult
{
    InnerSolution best;
    std::size_t memIndex = 0;   //!< chosen memory ladder index
    int evaluations = 0;        //!< inner solves performed
    /**
     * The bus-utilisation guard found no admissible memory level and
     * clamped the search to the top of the ladder: the solution was
     * computed outside the queuing model's validity domain (Eq. 1
     * extrapolation past saturation) and must be treated as a
     * best-effort fallback, not a model-backed optimum.
     */
    bool utilisationClamped = false;
};

/**
 * A per-processor (socket) power budget: constrains the total power
 * (dynamic + static) of a contiguous range of cores. Section III-B:
 * "it can be extended to capture per-processor power budgets by
 * adding a constraint similar to constraint 6 for each processor."
 */
struct SocketBudget
{
    std::size_t firstCore = 0;
    std::size_t numCores = 0;
    Watts budget = 0.0;
};

/**
 * Previous-epoch solution hint. With `valid`, the memory-level search
 * probes `memIndex` and its neighbours first: under the unimodality
 * Algorithm 1 already assumes, confirming a local optimum there picks
 * the same level as the cold search while skipping most level probes.
 * This fast path is result-identical by construction (the inner solve
 * at a level does not depend on the search trajectory).
 *
 * `d` and `sameBudget` additionally enable the bisection bracket
 * shrink when SolverOptions::warmStartShrinkBracket is set — see that
 * flag for the bit-stability trade-off.
 */
struct WarmStart
{
    bool valid = false;
    std::size_t memIndex = 0;
    /** D the hinted solve achieved at that level. */
    double d = 0.0;
    /** Budget is bit-identical to the hinted solve's. */
    bool sameBudget = false;
};

/** Options controlling the FastCap solve. */
struct SolverOptions
{
    /** Bisection tolerance on D (relative). */
    double dTolerance = 1e-6;
    /** Scan all M memory levels instead of binary search. */
    bool exhaustiveMemSearch = false;
    /**
     * Disable the structure-of-arrays / equivalence-class hot path
     * and run the historical per-core implementation (one pow and
     * one queuing evaluation per core per probe, fresh vectors per
     * call). The results are bit-identical either way — enforced by
     * the solver fuzz suite — so this exists as the cross-check
     * reference and as the perf baseline for bench_overhead.
     */
    bool referenceImpl = false;
    /**
     * Highest predicted bus utilisation the memory search may visit
     * (Eq. 1's validity domain; see minMemIndexForUtilisation).
     * Non-positive disables the guard.
     */
    double maxBusUtilisation = 0.9;
    /** Previous-epoch hint; see WarmStart. */
    WarmStart warmStart;
    /**
     * With a valid warm-start hint whose budget is unchanged, shrink
     * the D bisection bracket to a band around the hinted D (falling
     * back to the full bracket when the band does not bracket the
     * root). This changes the bisection iterate sequence, so the
     * returned D may differ from a cold solve in its last ulps —
     * within dTolerance, but not bit-identical. Off by default;
     * leave it off wherever byte-stable output matters (golden CSVs,
     * paired sweeps).
     */
    bool warmStartShrinkBracket = false;
    /**
     * Optional per-processor budgets (additional constraints 6').
     * The achieved D becomes the minimum of the global solve and
     * each socket's own monotone solve; all cores then run at that
     * common D, preserving system-wide fairness.
     */
    std::vector<SocketBudget> socketBudgets;
};

/**
 * Implements the inner Theorem-1 solve and Algorithm 1's binary
 * search over memory frequencies.
 */
class FastCapSolver
{
  public:
    explicit FastCapSolver(const PolicyInputs &inputs,
                           SolverOptions opts = SolverOptions{});

    /**
     * Full solve: Algorithm 1. Returns the best memory level, the
     * per-core ratios at that level, and bookkeeping for complexity
     * accounting.
     */
    SolveResult solve();

    /**
     * Inner solve at a fixed memory ladder index (the O(N) step).
     * Exposed for the baseline policies and for tests of Theorem 1.
     */
    InnerSolution solveAtMemIndex(std::size_t mem_index);

    /**
     * Inner solve at an arbitrary memory ratio x_b (not necessarily
     * on the ladder).
     */
    InnerSolution solveAtMemRatio(double x_b);

    /**
     * Model power at an explicit operating point — Eq. 6's left-hand
     * side. Used by baseline policies sharing the power model.
     */
    Watts power(const std::vector<double> &core_ratios,
                double x_b) const;

    /** Inner-solve evaluations since construction. */
    int evaluations() const { return _evaluations; }

    /** Distinct core equivalence classes (1 for homogeneous mixes). */
    std::size_t numClasses() const { return _classRep.size(); }

    const QueuingModel &queuing() const { return _queuing; }

  private:
    /** Power as a function of D at fixed x_b (monotone increasing). */
    Watts powerAtD(double d, double x_b,
                   const std::vector<Seconds> &r_at_xb,
                   std::vector<double> *ratios_out) const;

    /** Core-ratio x_i implied by D at fixed x_b (Eq. 8 + clamps). */
    double coreRatioAtD(std::size_t core, double d,
                        const std::vector<Seconds> &r_at_xb) const;

    /** Total power (dynamic + static) of one socket's cores at D. */
    Watts socketPowerAtD(const SocketBudget &socket, double d,
                         const std::vector<Seconds> &r_at_xb) const;

    /** Largest feasible D at x_b (all constraints 7 satisfied). */
    double maxD(const std::vector<Seconds> &r_at_xb) const;

    // --- Equivalence-class hot path -------------------------------
    // Per-class mirrors of the per-core quantities above. The class
    // scratch is sized once at construction; per-probe state lives in
    // mutable members so the inner loop performs no allocation.

    /** Group cores into classes; fill the SoA scratch. */
    void buildClasses();

    /** Per-class R(x_b); one queuing evaluation per class. */
    void classResponseTimes(double x_b);

    /**
     * Ratio and pi*x^alpha of one class at D, written into the
     * scratch. The single definition of the per-class arithmetic:
     * both the full and the subset recompute call it, so their
     * entries are bit-equal by construction (the arithmetic mirrors
     * coreRatioAtD()/powerAtD() exactly, one pow per call).
     */
    void classTermAt(double d, std::uint32_t c) const;

    /** Per-class ratio and pi*x^alpha at D (one pow per class). */
    void classTermsAtD(double d) const;

    /**
     * As classTermsAtD, but only for the classes listed in `subset`
     * (a socket's partition): socket residual probes evaluate one pow
     * per class *present in that socket* instead of one per class in
     * the whole system. Each listed class's term carries the same
     * bits classTermsAtD would produce, so the per-core accumulation
     * reading the scratch is unaffected.
     */
    void classTermsAtDFor(double d,
                          const std::vector<std::uint32_t> &subset) const;

    /** Lazily built socket -> classes-present partition. */
    const std::vector<std::uint32_t> &
    socketClasses(std::size_t socket_idx) const;

    Watts classPowerAtD(double d, double mem_term) const;
    Watts classSocketPowerAtD(std::size_t socket_idx,
                              const SocketBudget &socket,
                              double d) const;
    double classMaxD() const;
    InnerSolution classSolveAtMemRatio(double x_b);
    InnerSolution referenceSolveAtMemRatio(double x_b);

    /** Shared tail: feasibility + infeasibility penalty ordering. */
    void finishSolution(InnerSolution &sol,
                        const std::vector<Seconds> *r_at_xb) const;

    const PolicyInputs &_in;
    SolverOptions _opts;
    QueuingModel _queuing;
    std::vector<Seconds> _minTurnaround; //!< T̄_i cache (per core)
    int _evaluations = 0;

    // Constants hoisted out of the per-probe loops.
    Watts _staticPower = 0.0;
    double _minCoreRatio = 1.0;
    /**
     * Bracket-shrink hint for the level being probed; set by solve()
     * around the warm-started level only, 0 when inactive.
     */
    double _dHint = 0.0;

    // Class scratch (SoA), built once per construction.
    std::vector<std::uint32_t> _classOf;   //!< core -> class id
    std::vector<std::size_t> _classRep;    //!< representative core
    std::vector<double> _classMinT;        //!< T̄ per class
    std::vector<double> _classCache;       //!< c per class
    std::vector<double> _classZbar;        //!< z̄ per class
    std::vector<double> _classPi;          //!< P_i per class
    std::vector<double> _classAlpha;       //!< alpha per class
    std::vector<double> _classPStatic;     //!< P_static per class
    // Per-probe state, reused across solves (no allocation).
    std::vector<double> _classR;           //!< R(x_b) per class
    mutable std::vector<double> _classRatio;   //!< x(D) per class
    mutable std::vector<double> _classPowTerm; //!< P_i x^alpha per class
    /**
     * Socket index -> ascending class ids present in that socket's
     * core range. Built lazily at the first socket probe (after the
     * range checks in the solve loop), so socket residual evaluations
     * stop paying one pow per class *system-wide*.
     */
    mutable std::vector<std::vector<std::uint32_t>> _socketClasses;
};

} // namespace fastcap

#endif // FASTCAP_CORE_SOLVER_HPP
