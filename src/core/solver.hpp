/**
 * @file
 * The FastCap optimization solver (Section III-B).
 *
 * The optimization:
 *
 *   maximize D
 *   s.t. (z_i + c_i + R(s_b)) / (z̄_i + c_i + R(s̄_b)) <= 1/D   (5)
 *        sum_i P_i (z̄_i/z_i)^alpha_i + P_m (s̄_b/s_b)^beta + P_s
 *            <= B * P̄                                          (6)
 *        z_i >= z̄_i, s_b >= s̄_b                                (7)
 *
 * Theorem 1: both (5) and (6) are tight at the optimum. For a fixed
 * memory ratio x_b this reduces the problem to one unknown D, with
 *
 *     z_i(D) = T̄_i / D - c_i - R_i(x_b)        (Eq. 8)
 *
 * and total power strictly increasing in D, so D is found by a
 * monotone root solve in O(N) per evaluation. A binary search over
 * the M memory levels (Algorithm 1) gives O(N log M) overall.
 *
 * Frequency-ladder clamping: cores whose required ratio falls below
 * f_min/f_max are pinned at the lowest frequency; their power
 * contribution saturates, keeping the power curve monotone in D.
 */

#ifndef FASTCAP_CORE_SOLVER_HPP
#define FASTCAP_CORE_SOLVER_HPP

#include <cstddef>
#include <vector>

#include "core/inputs.hpp"
#include "core/queuing_model.hpp"
#include "util/units.hpp"

namespace fastcap {

/** Outcome of the inner solve at one memory level. */
struct InnerSolution
{
    /**
     * Achieved performance factor in (0, 1] when the budget is
     * feasible at this memory level. When infeasible (floor power
     * above budget), holds a negative penalty proportional to the
     * overshoot so the memory search orders such points correctly.
     */
    double d = 0.0;
    double memRatio = 1.0;        //!< x_b evaluated
    std::vector<double> coreRatios; //!< x_i per core, in (0, 1]
    Watts predictedPower = 0.0;   //!< model power at this point
    bool budgetFeasible = false;  //!< power <= budget (within tol)
};

/** Outcome of the full FastCap solve. */
struct SolveResult
{
    InnerSolution best;
    std::size_t memIndex = 0;   //!< chosen memory ladder index
    int evaluations = 0;        //!< inner solves performed
};

/**
 * A per-processor (socket) power budget: constrains the total power
 * (dynamic + static) of a contiguous range of cores. Section III-B:
 * "it can be extended to capture per-processor power budgets by
 * adding a constraint similar to constraint 6 for each processor."
 */
struct SocketBudget
{
    std::size_t firstCore = 0;
    std::size_t numCores = 0;
    Watts budget = 0.0;
};

/** Options controlling the FastCap solve. */
struct SolverOptions
{
    /** Bisection tolerance on D (relative). */
    double dTolerance = 1e-6;
    /** Scan all M memory levels instead of binary search. */
    bool exhaustiveMemSearch = false;
    /**
     * Highest predicted bus utilisation the memory search may visit
     * (Eq. 1's validity domain; see minMemIndexForUtilisation).
     * Non-positive disables the guard.
     */
    double maxBusUtilisation = 0.9;
    /**
     * Optional per-processor budgets (additional constraints 6').
     * The achieved D becomes the minimum of the global solve and
     * each socket's own monotone solve; all cores then run at that
     * common D, preserving system-wide fairness.
     */
    std::vector<SocketBudget> socketBudgets;
};

/**
 * Implements the inner Theorem-1 solve and Algorithm 1's binary
 * search over memory frequencies.
 */
class FastCapSolver
{
  public:
    explicit FastCapSolver(const PolicyInputs &inputs,
                           SolverOptions opts = SolverOptions{});

    /**
     * Full solve: Algorithm 1. Returns the best memory level, the
     * per-core ratios at that level, and bookkeeping for complexity
     * accounting.
     */
    SolveResult solve();

    /**
     * Inner solve at a fixed memory ladder index (the O(N) step).
     * Exposed for the baseline policies and for tests of Theorem 1.
     */
    InnerSolution solveAtMemIndex(std::size_t mem_index);

    /**
     * Inner solve at an arbitrary memory ratio x_b (not necessarily
     * on the ladder).
     */
    InnerSolution solveAtMemRatio(double x_b);

    /**
     * Model power at an explicit operating point — Eq. 6's left-hand
     * side. Used by baseline policies sharing the power model.
     */
    Watts power(const std::vector<double> &core_ratios,
                double x_b) const;

    /** Inner-solve evaluations since construction. */
    int evaluations() const { return _evaluations; }

    const QueuingModel &queuing() const { return _queuing; }

  private:
    /** Power as a function of D at fixed x_b (monotone increasing). */
    Watts powerAtD(double d, double x_b,
                   const std::vector<Seconds> &r_at_xb,
                   std::vector<double> *ratios_out) const;

    /** Core-ratio x_i implied by D at fixed x_b (Eq. 8 + clamps). */
    double coreRatioAtD(std::size_t core, double d,
                        const std::vector<Seconds> &r_at_xb) const;

    /** Total power (dynamic + static) of one socket's cores at D. */
    Watts socketPowerAtD(const SocketBudget &socket, double d,
                         const std::vector<Seconds> &r_at_xb) const;

    /** Largest feasible D at x_b (all constraints 7 satisfied). */
    double maxD(const std::vector<Seconds> &r_at_xb) const;

    const PolicyInputs &_in;
    SolverOptions _opts;
    QueuingModel _queuing;
    std::vector<Seconds> _minTurnaround; //!< T̄_i cache
    int _evaluations = 0;
};

} // namespace fastcap

#endif // FASTCAP_CORE_SOLVER_HPP
