#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "harness/peak_power.hpp"
#include "policies/registry.hpp"
#include "trace/trace_generator.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

Watts
ExperimentResult::averagePower() const
{
    if (epochs.empty())
        return 0.0;
    double energy = 0.0;
    double time = 0.0;
    for (const EpochRecord &e : epochs) {
        if (e.duration > 0.0) {
            energy += e.totalPower * e.duration;
            time += e.duration;
        }
    }
    if (time > 0.0)
        return energy / time;
    // Legacy/hand-built records carry no durations: unweighted mean.
    double acc = 0.0;
    for (const EpochRecord &e : epochs)
        acc += e.totalPower;
    return acc / static_cast<double>(epochs.size());
}

Watts
ExperimentResult::maxEpochPower() const
{
    Watts m = 0.0;
    for (const EpochRecord &e : epochs)
        m = std::max(m, e.totalPower);
    return m;
}

namespace {

/** Latest completion over a set of applications. */
Seconds
lastCompletion(const std::vector<AppResult> &apps)
{
    Seconds last = 0.0;
    for (const AppResult &a : apps)
        last = std::max(last, a.completionTime);
    return last;
}

} // namespace

Seconds
ExperimentResult::makespan() const
{
    return lastCompletion(apps);
}

double
ExperimentResult::averagePowerFraction() const
{
    return peakPower > 0.0 ? averagePower() / peakPower : 0.0;
}

double
ExperimentResult::maxEpochPowerFraction() const
{
    return peakPower > 0.0 ? maxEpochPower() / peakPower : 0.0;
}

bool
ExperimentResult::allCompleted() const
{
    for (const AppResult &a : apps)
        if (!a.completed)
            return false;
    return true;
}

int
ExperimentResult::saturatedEpochs() const
{
    int n = 0;
    for (const EpochRecord &e : epochs)
        n += e.budgetSaturated ? 1 : 0;
    return n;
}

ExperimentRunner::ExperimentRunner(SimConfig sim_cfg,
                                   std::vector<AppProfile> apps,
                                   CappingPolicy &policy,
                                   ExperimentConfig cfg)
    : _simCfg(std::move(sim_cfg)),
      _system(makeSimBackend(_simCfg, std::move(apps),
                             EngineConfig{cfg.shards,
                                          cfg.shardThreads})),
      _policy(policy), _cfg(std::move(cfg)),
      _fitter(static_cast<std::size_t>(_simCfg.numCores),
              _cfg.linearPowerModel ? 1.0 : 2.5,
              _cfg.linearPowerModel ? 1.0 : 1.0,
              _cfg.linearPowerModel ? 1.0 : 0.3,
              _cfg.linearPowerModel ? 1.0 : 4.0)
{
    if (_cfg.budgetFraction <= 0.0 || _cfg.budgetFraction > 1.0)
        fatal("ExperimentRunner: budget fraction must be in (0, 1]");
    if (_cfg.targetInstructions <= 0.0)
        fatal("ExperimentRunner: target instructions must be positive");
    _baseBudgetFraction = _cfg.budgetFraction;

    // Scenario workload events know their core index only as a
    // number; check it against this system before the run starts.
    for (const WorkloadEvent &ev : _cfg.scenario.workload.events())
        if (ev.core >= _simCfg.numCores)
            fatal("ExperimentRunner: scenario event at t=%g targets "
                  "core %d but the system has %d cores", ev.time,
                  ev.core, _simCfg.numCores);

    // A scenario job trace streams through a replayer; opening it
    // here makes a missing file or malformed generator spec fail
    // before any simulation time is spent.
    if (!_cfg.scenario.trace.empty())
        _traceReplayer = std::make_unique<TraceReplayer>(
            makeTraceSource(_cfg.scenario.trace), _simCfg.numCores);

    if (_cfg.peakPowerOverride > 0.0)
        _peakPower = _cfg.peakPowerOverride;
    else if (_cfg.measurePeak)
        // Measure on the engine this run executes on: the budget
        // denominator must come from the same contention model as
        // the epoch powers it is compared against.
        _peakPower = measuredPeakPower(
            _simCfg, EngineConfig{_cfg.shards, _cfg.shardThreads});
    else
        _peakPower = _system->nameplatePeakPower();

    _policy.reset();

    const int n = _simCfg.numCores;
    _apps.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        _apps[static_cast<std::size_t>(i)].app =
            _system->appOf(i).name();
        _apps[static_cast<std::size_t>(i)].core = i;
    }

    // Fallback queuing inputs before the first window: think time of
    // the bound application at max frequency.
    _lastZbar.resize(static_cast<std::size_t>(n));
    _lastIpa.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const Phase &ph = _system->appOf(i).phaseAt(0.0);
        _lastIpa[static_cast<std::size_t>(i)] = ph.instructionsPerMiss();
        _lastZbar[static_cast<std::size_t>(i)] =
            ph.instructionsPerMiss() * ph.cpiExec /
            _simCfg.coreLadder.max();
    }
}

void
ExperimentRunner::budgetFraction(double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("budgetFraction must be in (0, 1]");
    _cfg.budgetFraction = fraction;
}

void
ExperimentRunner::swapApp(int core, const AppProfile &app)
{
    _system->swapApp(core, app);
}

Watts
ExperimentRunner::budget() const
{
    return _cfg.budgetFraction * _peakPower;
}

bool
ExperimentRunner::done() const
{
    for (const AppResult &a : _apps)
        if (!a.completed)
            return false;
    return true;
}

PolicyInputs
ExperimentRunner::buildInputs(const WindowStats &w)
{
    PolicyInputs in;
    const std::size_t n = w.cores.size();
    const double f_max = _simCfg.coreLadder.max();

    in.coreRatios = _simCfg.coreLadder.ratios();
    in.memRatios = _simCfg.memLadder.ratios();
    in.background = _simCfg.backgroundPower;
    in.budget = budget();

    in.cores.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const CoreWindowStats &cs = w.cores[i];
        CoreModel &cm = in.cores[i];

        // Eq. 9: z̄ = (busy time per blocking event), scaled from the
        // profiling frequency to the maximum frequency.
        const std::uint64_t blocking =
            std::max<std::uint64_t>(cs.counters.stalls, 1);
        if (cs.counters.misses > 0 && cs.counters.busyTime > 0.0) {
            const Seconds z_prof = cs.counters.busyTime /
                static_cast<double>(blocking);
            cm.zbar = z_prof * (cs.frequency / f_max);
            cm.ipa = static_cast<double>(cs.counters.instructions) /
                static_cast<double>(blocking);
            _lastZbar[i] = cm.zbar;
            _lastIpa[i] = cm.ipa;
        } else {
            // Miss-free window: reuse the last good estimate.
            cm.zbar = _lastZbar[i];
            cm.ipa = _lastIpa[i];
        }
        cm.cache = _simCfg.l2Time;
        cm.pStatic = _simCfg.corePower.staticPower;
        cm.measuredPower = cs.totalPower;
        cm.measuredIps =
            static_cast<double>(cs.counters.instructions) / w.duration;

        // Online Eq. 2 fit from (frequency ratio, dynamic power).
        _fitter.observeCore(i, cs.frequency / f_max, cs.dynamicPower);
        const FittedModel fm = _fitter.core(i);
        cm.pi = fm.scale;
        cm.alpha = fm.exponent;
    }

    // Memory: MemScale counters per controller + Eq. 3 fit.
    const double mem_fmax = _simCfg.memLadder.max();
    const Seconds fallback_sm =
        _simCfg.rowHitRate * _simCfg.bankRowHitTime +
        (1.0 - _simCfg.rowHitRate) * _simCfg.bankRowMissTime;

    Watts mem_dyn = 0.0;
    Watts mem_total = 0.0;
    if (_qSmooth.size() != w.memory.size()) {
        _qSmooth.assign(w.memory.size(), Ewma(0.5));
        _uSmooth.assign(w.memory.size(), Ewma(0.5));
        _rateSmooth.assign(w.memory.size(), Ewma(0.5));
    }
    in.memory.controllers.resize(w.memory.size());
    for (std::size_t k = 0; k < w.memory.size(); ++k) {
        const MemWindowStats &ms = w.memory[k];
        ControllerModel &ctl = in.memory.controllers[k];
        // Light smoothing damps epoch-to-epoch swing in the sampled
        // queue statistics (they depend on the operating point the
        // window happened to run at).
        _qSmooth[k].add(ms.counters.meanQ());
        _uSmooth[k].add(ms.counters.meanU());
        _rateSmooth[k].add(
            static_cast<double>(ms.counters.reads +
                                ms.counters.writebacks) / w.duration);
        ctl.q = _qSmooth[k].value();
        ctl.u = _uSmooth[k].value();
        ctl.sm = ms.counters.meanServiceTime(fallback_sm);
        ctl.sbBar = _simCfg.busBurstCycles / mem_fmax;
        ctl.arrivalRate = _rateSmooth[k].value();
        mem_dyn += ms.dynamicPower;
        mem_total += ms.totalPower;
    }
    _fitter.observeMemory(
        _simCfg.memLadder.at(_system->memFreqIndex()) / mem_fmax,
        mem_dyn);
    const FittedModel mm = _fitter.memory();
    in.memory.pm = mm.scale;
    in.memory.beta = mm.exponent;
    in.memory.pStatic = _simCfg.memPower.staticPower;
    in.memory.measuredPower = mem_total;

    in.accessProbs.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        in.accessProbs[i] =
            _system->accessProbabilities(static_cast<int>(i));

    return in;
}

void
ExperimentRunner::applyDecision(const PolicyDecision &dec,
                                bool &core_changed, bool &mem_changed)
{
    if (dec.coreFreqIdx.size() !=
        static_cast<std::size_t>(_simCfg.numCores))
        panic("applyDecision: %zu core indices for %d cores",
              dec.coreFreqIdx.size(), _simCfg.numCores);

    core_changed = false;
    for (int i = 0; i < _simCfg.numCores; ++i) {
        const std::size_t idx = dec.coreFreqIdx[
            static_cast<std::size_t>(i)];
        if (idx != _system->coreFreqIndex(i)) {
            core_changed = true;
            _system->coreFreqIndex(i, idx);
        }
    }
    mem_changed = dec.memFreqIdx != _system->memFreqIndex();
    if (mem_changed)
        _system->memFreqIndex(dec.memFreqIdx);
}

void
ExperimentRunner::recordCompletions(
    Seconds epoch_start, const std::vector<double> &instr_before,
    const std::vector<double> &instr_after)
{
    for (std::size_t i = 0; i < _apps.size(); ++i) {
        AppResult &a = _apps[i];
        if (a.completed)
            continue;
        if (instr_after[i] >= _cfg.targetInstructions) {
            // Interpolate the crossing within the epoch.
            const double gained = instr_after[i] - instr_before[i];
            const double need =
                _cfg.targetInstructions - instr_before[i];
            const double frac =
                (gained > 0.0) ? std::clamp(need / gained, 0.0, 1.0)
                               : 1.0;
            a.completed = true;
            a.completionTime =
                epoch_start + frac * _simCfg.epochLength;
            a.tpi = a.completionTime / _cfg.targetInstructions;
        }
    }
}

void
ExperimentRunner::applyScenario(Seconds now)
{
    const Scenario &sc = _cfg.scenario;
    if (!sc.budget.empty())
        // Fallback is the *live* fraction: before the schedule's
        // first segment, mid-run budgetFraction() calls stay in
        // effect; from the first segment on, the schedule owns it.
        _cfg.budgetFraction =
            sc.budget.fractionAt(now, _cfg.budgetFraction);

    const std::vector<WorkloadEvent> &events = sc.workload.events();
    while (_nextWorkloadEvent < events.size() &&
           events[_nextWorkloadEvent].time <= now) {
        const WorkloadEvent &ev = events[_nextWorkloadEvent];
        // The AppResult keeps tracking the core's original
        // instruction target: scenarios study the transient power
        // response, not per-job completion.
        _system->swapApp(ev.core, WorkloadSchedule::resolve(ev.app));
        ++_nextWorkloadEvent;
    }

    // Trace replay last: explicit workload events act as operator
    // overrides, trace jobs land on whatever the replayer tracks.
    if (_traceReplayer)
        _traceReplayer->advanceTo(
            now, [this](int core, const AppProfile &app) {
                _system->swapApp(core, app);
            });
}

EpochRecord
ExperimentRunner::step()
{
    const int n = _simCfg.numCores;
    const Seconds epoch_start =
        static_cast<double>(_epoch) * _simCfg.epochLength;

    // Scenario first: the budget the policy sees this epoch and the
    // mix the profiling window measures are those of `epoch_start`.
    applyScenario(epoch_start);

    std::vector<double> instr_before(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        instr_before[static_cast<std::size_t>(i)] =
            _system->instructionsRetired(i);

    // 1. Profiling window at incumbent frequencies.
    const WindowStats w1 = _system->runWindow(_simCfg.profileWindow);

    // 2-3. Inputs, decision, actuation.
    _inputs = buildInputs(w1);
    const PolicyDecision dec = _policy.decide(_inputs);
    bool core_changed = false;
    bool mem_changed = false;
    applyDecision(dec, core_changed, mem_changed);

    // 4. Execution window at the new operating point.
    const WindowStats w2 = _system->runWindow(_simCfg.execWindow);

    // 5. Extrapolate the execution window across the remainder of
    // the epoch, net of DVFS transition stalls.
    const Seconds overhead =
        (core_changed ? _simCfg.coreTransitionTime : 0.0) +
        (mem_changed ? _simCfg.memTransitionTime : 0.0);
    const Seconds represented =
        std::max(_simCfg.epochLength - _simCfg.profileWindow - overhead,
                 _simCfg.execWindow);
    const double scale = represented / _simCfg.execWindow;

    EpochRecord rec;
    rec.epoch = _epoch;
    rec.startTime = epoch_start;
    rec.budget = budget();
    rec.memFreqIdx = _system->memFreqIndex();
    rec.evaluations = dec.evaluations;
    rec.budgetSaturated = dec.budgetSaturated;
    rec.utilisationClamped = dec.utilisationClamped;
    if (_traceReplayer) {
        const TraceReplayStats &ts = _traceReplayer->stats();
        rec.traceDropped = ts.dropped - _lastDropped;
        rec.tracePending = _traceReplayer->pending();
        _lastDropped = ts.dropped;
    }
    rec.coreFreqIdx.resize(static_cast<std::size_t>(n));
    rec.ips.resize(static_cast<std::size_t>(n));

    std::vector<double> instr_after(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const double w2_instr =
            static_cast<double>(w2.cores[ui].counters.instructions);
        const double credit = w2_instr * (scale - 1.0);
        _system->creditInstructions(i, credit);
        instr_after[ui] = _system->instructionsRetired(i);
        rec.coreFreqIdx[ui] = _system->coreFreqIndex(i);
        rec.ips[ui] = (instr_after[ui] - instr_before[ui]) /
            _simCfg.epochLength;
    }

    // Epoch-average power: window 1 covers the profiling phase,
    // window 2 represents the rest.
    const Seconds t1 = _simCfg.profileWindow;
    const Seconds t2 = _simCfg.epochLength - t1;
    const double wsum = t1 + t2;
    rec.corePower =
        (w1.corePowerTotal() * t1 + w2.corePowerTotal() * t2) / wsum;
    rec.memPower =
        (w1.memPowerTotal() * t1 + w2.memPowerTotal() * t2) / wsum;
    rec.totalPower = (w1.totalPower() * t1 + w2.totalPower() * t2) /
        wsum;

    recordCompletions(epoch_start, instr_before, instr_after);

    // The record covers the full epoch unless the run ends inside it:
    // the final epoch is truncated at the last completion so that
    // energy-weighted run averages do not count time past the end.
    rec.duration = _simCfg.epochLength;
    if (done()) {
        const Seconds last = lastCompletion(_apps);
        if (last > epoch_start)
            rec.duration = std::min(last - epoch_start,
                                    _simCfg.epochLength);
    }

    publishTelemetry(rec);

    ++_epoch;
    _epochLog.push_back(rec);
    return rec;
}

void
ExperimentRunner::publishTelemetry(const EpochRecord &rec)
{
    if (!telemetry::enabled())
        return;
    telemetry::Registry &reg = telemetry::Registry::global();
    if (_coreFreqGauges.empty()) {
        const std::string prefix =
            "/machine/" + std::to_string(_cfg.machineIndex);
        _coreFreqGauges.reserve(rec.coreFreqIdx.size());
        for (std::size_t i = 0; i < rec.coreFreqIdx.size(); ++i)
            _coreFreqGauges.push_back(&reg.gauge(
                prefix + "/core/" + std::to_string(i) + "/freq"));
        _powerGauge = &reg.gauge(prefix + "/power");
        _epochsCounter = &reg.counter(prefix + "/epochs");
        if (_traceReplayer)
            _pendingGauge = &reg.gauge(prefix + "/trace/pending");
    }
    for (std::size_t i = 0; i < rec.coreFreqIdx.size(); ++i)
        _coreFreqGauges[i]->set(
            _simCfg.coreLadder.at(rec.coreFreqIdx[i]));
    _powerGauge->set(rec.totalPower);
    _epochsCounter->add();
    if (_pendingGauge)
        _pendingGauge->set(static_cast<double>(rec.tracePending));

    if (_cfg.tracer != nullptr) {
        telemetry::TraceTrack &track = _cfg.tracer->track(
            _cfg.machineIndex + 1,
            "machine " + std::to_string(_cfg.machineIndex));
        // All timestamps are virtual seconds: a rerun of the same
        // configuration reproduces the trace byte for byte.
        const double t0 = rec.startTime;
        const double t1 = rec.startTime + rec.duration;
        const double t_solve =
            std::min(t0 + _simCfg.profileWindow, t1);
        track.span("profile", t0, t_solve);
        track.instant("solve", t_solve);
        if (t1 > t_solve)
            track.span("exec", t_solve, t1);
        track.counterEvent("power_w", t0, rec.totalPower);
        track.counterEvent("budget_w", t0, rec.budget);
    }
}

ExperimentResult
ExperimentRunner::run()
{
    while (!done() && _epoch < _cfg.maxEpochs)
        step();

    if (!done())
        warn("ExperimentRunner: maxEpochs (%d) reached before all "
             "applications completed", _cfg.maxEpochs);

    ExperimentResult res;
    res.policy = _policy.name();
    res.peakPower = _peakPower;
    // Under a budget schedule, report the configured base fraction
    // (per-epoch budgets live in the records); without one, report
    // the live value so mid-run budgetFraction() calls stay visible.
    const double frac = _cfg.scenario.budget.empty()
                            ? _cfg.budgetFraction
                            : _baseBudgetFraction;
    res.budget = frac * _peakPower;
    res.budgetFraction = frac;
    res.epochs = _epochLog;
    res.apps = _apps;
    if (_traceReplayer) {
        res.trace = _traceReplayer->stats();
        res.traceDriven = true;
    }
    return res;
}

ExperimentResult
runWorkload(const std::string &workload,
            const std::string &policy_name, const ExperimentConfig &cfg,
            const SimConfig &sim_cfg)
{
    auto policy = makePolicy(policy_name, cfg.solver);
    ExperimentRunner runner(
        sim_cfg, workloads::mix(workload, sim_cfg.numCores), *policy,
        cfg);
    ExperimentResult res = runner.run();
    res.workload = workload;
    return res;
}

} // namespace fastcap
