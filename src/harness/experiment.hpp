/**
 * @file
 * Experiment runner: composes the simulated system, the online model
 * fitter and a capping policy into the paper's epoch loop
 * (Section III-C):
 *
 *   1. profile window at the incumbent frequencies (counters, power)
 *   2. build policy inputs (Eq. 9 for z̄_i, MemScale counters for
 *      Q/U/s_m, power-law fits for Eq. 2/3 parameters)
 *   3. policy decides; frequencies are applied with transition costs
 *   4. execution window at the new frequencies
 *   5. extrapolate both windows over the epoch (docs/DESIGN.md section 5)
 *
 * The run ends when the slowest application reaches its instruction
 * target (the paper's termination rule) or at maxEpochs.
 */

#ifndef FASTCAP_HARNESS_EXPERIMENT_HPP
#define FASTCAP_HARNESS_EXPERIMENT_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/inputs.hpp"
#include "core/model_fitter.hpp"
#include "core/policy.hpp"
#include "core/solver.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine/backend.hpp"
#include "sim/system.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/tracer.hpp"
#include "trace/trace_replay.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace fastcap {

/** Experiment-level knobs (on top of SimConfig). */
struct ExperimentConfig
{
    /** Budget fraction B in Eq. 6: budget = B * peak. */
    double budgetFraction = 0.6;
    /** Instructions each application must retire (paper: 100M). */
    double targetInstructions = 100e6;
    /** Hard stop in epochs (guards runaway configurations). */
    int maxEpochs = 1000;
    /** Explicit peak power P̄ (0 = determine automatically). */
    Watts peakPowerOverride = 0.0;
    /**
     * Determine P̄ by measurement (run the power-hungriest workloads
     * at max frequency, as the paper does) rather than nameplate.
     */
    bool measurePeak = true;
    /**
     * Force a linear (exponent-1) online power model, reproducing
     * the Freq-Par-style modeling error inside FastCap. Used by the
     * `bench_ablation_fit` design study; leave false otherwise.
     */
    bool linearPowerModel = false;
    /**
     * Time-varying scenario: budget schedule sampled and workload
     * events applied at every epoch boundary. The default (constant)
     * scenario leaves the run bit-identical to a scenario-less one.
     * A non-empty budget schedule overrides `budgetFraction` (and any
     * mid-run budgetFraction() calls) from its first segment on.
     */
    Scenario scenario;
    /**
     * Options for the solver-backed policies created through
     * runWorkload() (socket budgets, reference implementation,
     * warm-start bracket shrink). Policies constructed by the caller
     * carry their own options; this field does not reach them.
     */
    SolverOptions solver;
    /**
     * Simulation-engine shard count (EngineConfig::shards). 0 = auto:
     * the monolithic engine up to 64 cores — bit-identical to
     * pre-engine releases — and the sharded engine (one shard per 64
     * cores) above. Any value >= 1 forces the sharded engine; its
     * output is byte-identical for every shard count.
     */
    int shards = 0;
    /**
     * Worker threads the sharded engine fans shards over
     * (EngineConfig::threads). 0 = hardware concurrency, 1 = serial
     * (what sweeps use, to avoid nesting parallelism). Output is
     * byte-identical for every value.
     */
    int shardThreads = 0;
    /**
     * Optional epoch tracer. When set (and telemetry is enabled),
     * step() emits profile/exec spans, a solve instant and power
     * counter events on track `machineIndex + 1` (pid 0 is reserved
     * for the cluster arbiter track), timestamped in virtual seconds.
     * Observe-only: results are byte-identical with or without it.
     */
    telemetry::Tracer *tracer = nullptr;
    /**
     * Machine index prefixing this run's metric paths
     * (/machine/<m>/...) and selecting its tracer track. Single
     * machines use 0; the cluster sets one index per member.
     */
    int machineIndex = 0;
};

/** Per-epoch record for time-series figures. */
struct EpochRecord
{
    int epoch = 0;
    Seconds startTime = 0.0;    //!< virtual time at epoch start
    /**
     * Simulated time this record covers. Normally the epoch length;
     * shorter for the final epoch, which is truncated at the instant
     * the last application reaches its instruction target. Zero in
     * hand-built records (averagePower() then falls back to an
     * unweighted mean).
     */
    Seconds duration = 0.0;
    Watts corePower = 0.0;      //!< epoch-average core power
    Watts memPower = 0.0;       //!< epoch-average memory power
    Watts totalPower = 0.0;     //!< epoch-average full-system power
    Watts budget = 0.0;
    std::vector<std::size_t> coreFreqIdx;
    std::size_t memFreqIdx = 0;
    std::vector<double> ips;    //!< per-core instruction rate
    int evaluations = 0;        //!< policy inner-solve count
    /**
     * The policy reported the epoch's budget as infeasible (below the
     * platform floor power): the operating point is pinned, not
     * tracking. See PolicyDecision::budgetSaturated.
     */
    bool budgetSaturated = false;
    /** Solve ran outside the queuing model's validity domain. */
    bool utilisationClamped = false;
    /**
     * Trace-replay load shedding, surfaced per epoch: arrivals shed
     * this epoch because the pending queue was full, and the queue
     * depth after this epoch's replay step. Zero for trace-less runs.
     * Overload used to be visible only as a cumulative counter at the
     * end of the run; a capped machine that sheds for ten epochs and
     * recovers looked identical to one that shed everything up front.
     */
    std::size_t traceDropped = 0;
    std::size_t tracePending = 0;
};

/** Per-application outcome. */
struct AppResult
{
    std::string app;
    int core = -1;
    bool completed = false;
    /** Virtual time at which the instruction target was reached. */
    Seconds completionTime = 0.0;
    /** Time per instruction over the target window (the CPI proxy). */
    Seconds tpi = 0.0;
};

/** Full experiment outcome. */
struct ExperimentResult
{
    std::string workload;
    std::string policy;
    Watts peakPower = 0.0;
    Watts budget = 0.0;
    double budgetFraction = 0.0;
    std::vector<EpochRecord> epochs;
    std::vector<AppResult> apps;
    /** Replay counters when the scenario carried a job trace. */
    TraceReplayStats trace;
    bool traceDriven = false;

    /**
     * Run-average full-system power, energy-weighted over epochs:
     * sum(P * dt) / sum(dt). Epochs have unequal durations (the final
     * epoch is truncated at completion), so an unweighted mean of
     * per-epoch powers would skew the budget-tracking numbers.
     * Records without durations fall back to the unweighted mean.
     */
    Watts averagePower() const;
    /** Highest epoch-average power of the run. */
    Watts maxEpochPower() const;
    /** Virtual time at which the slowest application completed. */
    Seconds makespan() const;
    /** averagePower normalized to the peak. */
    double averagePowerFraction() const;
    /** maxEpochPower normalized to the peak. */
    double maxEpochPowerFraction() const;
    /** True if every application completed. */
    bool allCompleted() const;
    /**
     * Epochs whose budget the policy reported as infeasible (pinned
     * at the floor). Non-zero means the over-budget epochs in this
     * run are saturation artifacts, not control error.
     */
    int saturatedEpochs() const;
};

/**
 * Drives one (system, policy, workload) experiment.
 */
class ExperimentRunner
{
  public:
    /**
     * @param sim_cfg simulated-system configuration
     * @param apps    one application per core
     * @param policy  capping policy (owned by the caller)
     * @param cfg     experiment knobs
     */
    ExperimentRunner(SimConfig sim_cfg, std::vector<AppProfile> apps,
                     CappingPolicy &policy, ExperimentConfig cfg);

    /** Run to completion and return the result. */
    ExperimentResult run();

    /** Advance a single epoch (for interactive examples). */
    EpochRecord step();

    /** True once every application reached its target. */
    bool done() const;

    /** Change the budget fraction mid-run (power-shifting demos). */
    void budgetFraction(double fraction);
    double budgetFraction() const { return _cfg.budgetFraction; }

    /**
     * Replace the application on one core (cluster dispatch, external
     * replayers). The core's AppResult keeps tracking the original
     * instruction target, as with scenario workload events.
     */
    void swapApp(int core, const AppProfile &app);

    /** The engine driving this run (monolithic or sharded). */
    const SimBackend &system() const { return *_system; }
    Watts peakPower() const { return _peakPower; }
    Watts budget() const;

    /** Inputs built from the most recent profiling window. */
    const PolicyInputs &lastInputs() const { return _inputs; }

    /** The job-trace replayer, or nullptr for trace-less runs. */
    const TraceReplayer *traceReplayer() const
    {
        return _traceReplayer.get();
    }

  private:
    PolicyInputs buildInputs(const WindowStats &w);
    void applyDecision(const PolicyDecision &dec, bool &core_changed,
                       bool &mem_changed);
    void recordCompletions(Seconds epoch_start,
                           const std::vector<double> &instr_before,
                           const std::vector<double> &instr_after);
    /** Budget schedule + due workload events at an epoch boundary. */
    void applyScenario(Seconds now);
    /**
     * Push the finished epoch into the metrics registry and the
     * tracer, if any. Gated on telemetry::enabled(); a disabled run
     * pays one branch. Each machine index writes only its own
     * /machine/<m>/... paths, so plain Gauge::set stays single-writer
     * even when a cluster steps machines on pool threads.
     */
    void publishTelemetry(const EpochRecord &rec);

    SimConfig _simCfg;
    std::unique_ptr<SimBackend> _system;
    CappingPolicy &_policy;
    ExperimentConfig _cfg;
    ModelFitter _fitter;
    PolicyInputs _inputs;
    Watts _peakPower = 0.0;
    /** Configured (pre-schedule) budget fraction, for reporting. */
    double _baseBudgetFraction = 0.0;
    /** Next unapplied WorkloadSchedule event. */
    std::size_t _nextWorkloadEvent = 0;
    /** Streams scenario.trace onto the cores (null = no trace). */
    std::unique_ptr<TraceReplayer> _traceReplayer;
    /** Cumulative shed count at the previous epoch boundary. */
    std::size_t _lastDropped = 0;
    /**
     * Lazily-resolved metric slots (stable: the registry never moves
     * a metric once created). Avoids per-epoch path building and
     * registry locking on the telemetry-enabled hot path.
     */
    std::vector<telemetry::Gauge *> _coreFreqGauges;
    telemetry::Gauge *_powerGauge = nullptr;
    telemetry::Gauge *_pendingGauge = nullptr;
    telemetry::Counter *_epochsCounter = nullptr;
    int _epoch = 0;
    std::vector<AppResult> _apps;
    std::vector<EpochRecord> _epochLog;
    /** Last good z̄/ipa per core (fallback for miss-free windows). */
    std::vector<Seconds> _lastZbar;
    std::vector<double> _lastIpa;
    /** Smoothed per-controller queue statistics (see buildInputs). */
    std::vector<Ewma> _qSmooth;
    std::vector<Ewma> _uSmooth;
    std::vector<Ewma> _rateSmooth;
};

/**
 * Convenience: run one Table III workload under a policy (by registry
 * name) on the given system configuration.
 */
ExperimentResult runWorkload(const std::string &workload,
                             const std::string &policy_name,
                             const ExperimentConfig &cfg,
                             const SimConfig &sim_cfg);

} // namespace fastcap

#endif // FASTCAP_HARNESS_EXPERIMENT_HPP
