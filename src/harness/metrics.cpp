#include "harness/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace fastcap {

PerfComparison
comparePerformance(const ExperimentResult &capped,
                   const ExperimentResult &baseline)
{
    if (capped.apps.size() != baseline.apps.size())
        fatal("comparePerformance: app count mismatch (%zu vs %zu)",
              capped.apps.size(), baseline.apps.size());

    PerfComparison cmp;
    cmp.perApp.reserve(capped.apps.size());
    for (std::size_t i = 0; i < capped.apps.size(); ++i) {
        const AppResult &c = capped.apps[i];
        const AppResult &b = baseline.apps[i];
        if (!c.completed || !b.completed) {
            warn("comparePerformance: app %s did not complete; "
                 "skipping", c.app.c_str());
            continue;
        }
        if (b.tpi <= 0.0)
            fatal("comparePerformance: degenerate baseline TPI");
        cmp.perApp.push_back(c.tpi / b.tpi);
    }
    if (cmp.perApp.empty())
        fatal("comparePerformance: no completed applications");

    double sum = 0.0;
    double worst = 0.0;
    for (double v : cmp.perApp) {
        sum += v;
        worst = std::max(worst, v);
    }
    cmp.average = sum / static_cast<double>(cmp.perApp.size());
    cmp.worst = worst;
    cmp.unfairness = (cmp.average > 0.0) ? cmp.worst / cmp.average
                                         : 1.0;
    return cmp;
}

PerfComparison
mergeComparisons(const std::vector<PerfComparison> &parts)
{
    PerfComparison all;
    for (const PerfComparison &p : parts)
        all.perApp.insert(all.perApp.end(), p.perApp.begin(),
                          p.perApp.end());
    if (all.perApp.empty())
        fatal("mergeComparisons: nothing to merge");

    double sum = 0.0;
    double worst = 0.0;
    for (double v : all.perApp) {
        sum += v;
        worst = std::max(worst, v);
    }
    all.average = sum / static_cast<double>(all.perApp.size());
    all.worst = worst;
    all.unfairness = (all.average > 0.0) ? all.worst / all.average
                                         : 1.0;
    return all;
}

PowerSummary
summarizePower(const ExperimentResult &result)
{
    PowerSummary s;
    s.avgFraction = result.averagePowerFraction();
    s.maxFraction = result.maxEpochPowerFraction();
    s.budgetFraction = result.budgetFraction;

    if (result.epochs.empty())
        return s;

    std::size_t over = 0;
    double worst = 0.0;
    for (const EpochRecord &e : result.epochs) {
        if (e.totalPower > e.budget) {
            ++over;
            worst = std::max(worst,
                             (e.totalPower - e.budget) / e.budget);
        }
    }
    s.overshootShare =
        static_cast<double>(over) /
        static_cast<double>(result.epochs.size());
    s.worstOvershoot = worst;
    return s;
}

double
budgetTrackingError(const ExperimentResult &result)
{
    if (result.epochs.empty())
        return 0.0;
    double acc = 0.0;
    for (const EpochRecord &e : result.epochs)
        acc += std::abs(e.totalPower - e.budget) / e.budget;
    return acc / static_cast<double>(result.epochs.size());
}

} // namespace fastcap
