#include "harness/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace fastcap {

PerfComparison
comparePerformance(const ExperimentResult &capped,
                   const ExperimentResult &baseline)
{
    if (capped.apps.size() != baseline.apps.size())
        fatal("comparePerformance: app count mismatch (%zu vs %zu)",
              capped.apps.size(), baseline.apps.size());

    PerfComparison cmp;
    cmp.perApp.reserve(capped.apps.size());
    for (std::size_t i = 0; i < capped.apps.size(); ++i) {
        const AppResult &c = capped.apps[i];
        const AppResult &b = baseline.apps[i];
        if (!c.completed || !b.completed) {
            warn("comparePerformance: app %s did not complete; "
                 "skipping", c.app.c_str());
            continue;
        }
        if (b.tpi <= 0.0)
            fatal("comparePerformance: degenerate baseline TPI");
        cmp.perApp.push_back(c.tpi / b.tpi);
    }
    if (cmp.perApp.empty())
        fatal("comparePerformance: no completed applications");

    double sum = 0.0;
    double worst = 0.0;
    for (double v : cmp.perApp) {
        sum += v;
        worst = std::max(worst, v);
    }
    cmp.average = sum / static_cast<double>(cmp.perApp.size());
    cmp.worst = worst;
    cmp.unfairness = (cmp.average > 0.0) ? cmp.worst / cmp.average
                                         : 1.0;
    return cmp;
}

PerfComparison
mergeComparisons(const std::vector<PerfComparison> &parts)
{
    PerfComparison all;
    for (const PerfComparison &p : parts)
        all.perApp.insert(all.perApp.end(), p.perApp.begin(),
                          p.perApp.end());
    if (all.perApp.empty())
        fatal("mergeComparisons: nothing to merge");

    double sum = 0.0;
    double worst = 0.0;
    for (double v : all.perApp) {
        sum += v;
        worst = std::max(worst, v);
    }
    all.average = sum / static_cast<double>(all.perApp.size());
    all.worst = worst;
    all.unfairness = (all.average > 0.0) ? all.worst / all.average
                                         : 1.0;
    return all;
}

PowerSummary
summarizePower(const ExperimentResult &result)
{
    PowerSummary s;
    s.avgFraction = result.averagePowerFraction();
    s.maxFraction = result.maxEpochPowerFraction();
    s.budgetFraction = result.budgetFraction;

    if (result.epochs.empty())
        return s;

    std::size_t over = 0;
    double worst = 0.0;
    for (const EpochRecord &e : result.epochs) {
        if (e.totalPower > e.budget) {
            ++over;
            worst = std::max(worst,
                             (e.totalPower - e.budget) / e.budget);
        }
    }
    s.overshootShare =
        static_cast<double>(over) /
        static_cast<double>(result.epochs.size());
    s.worstOvershoot = worst;
    return s;
}

TransientSummary
analyzeTransients(const ExperimentResult &result, double tolerance)
{
    if (tolerance < 0.0)
        fatal("analyzeTransients: negative tolerance %g", tolerance);
    TransientSummary s;
    const std::vector<EpochRecord> &ep = result.epochs;
    if (ep.empty())
        return s;

    std::size_t violations = 0;
    for (const EpochRecord &e : ep) {
        if (e.totalPower > e.budget * (1.0 + tolerance))
            ++violations;
        s.overshootEnergy +=
            std::max(0.0, e.totalPower - e.budget) * e.duration;
    }
    s.violationRate = static_cast<double>(violations) /
        static_cast<double>(ep.size());

    // A maximal run of consecutive budget decreases is one drop — a
    // ramp down, or the descending half of a sinusoid, is a single
    // transient rather than one per epoch. The observation window
    // runs from the bottom of the descent until the next budget
    // change (of either direction) or the end of the run.
    for (std::size_t k = 1; k < ep.size(); ++k) {
        if (ep[k].budget >= ep[k - 1].budget)
            continue;
        std::size_t bottom = k;
        while (bottom + 1 < ep.size() &&
               ep[bottom + 1].budget < ep[bottom].budget)
            ++bottom;
        std::size_t window_end = ep.size();
        for (std::size_t j = bottom + 1; j < ep.size(); ++j) {
            if (ep[j].budget != ep[bottom].budget) {
                window_end = j;
                break;
            }
        }

        BudgetTransient tr;
        tr.epoch = ep[k].epoch;
        tr.before = ep[k - 1].budget;
        tr.after = ep[bottom].budget;

        // Settled at the earliest post-descent epoch whose whole
        // suffix (within the window) stays inside the tolerance band.
        std::size_t settle = window_end;
        for (std::size_t j = window_end; j-- > bottom;) {
            if (ep[j].totalPower > ep[j].budget * (1.0 + tolerance))
                break;
            settle = j;
        }
        tr.settlingEpochs =
            settle == window_end ? -1
                                 : static_cast<int>(settle - bottom);
        // Overshoot accrues from the start of the descent.
        for (std::size_t j = k; j < settle; ++j)
            tr.overshootEnergy +=
                std::max(0.0, ep[j].totalPower - ep[j].budget) *
                ep[j].duration;

        if (tr.settlingEpochs < 0 || s.worstSettlingEpochs < 0)
            s.worstSettlingEpochs = -1;
        else
            s.worstSettlingEpochs = std::max(s.worstSettlingEpochs,
                                             tr.settlingEpochs);
        s.drops.push_back(tr);
        k = bottom; // resume past the descent
    }
    return s;
}

double
budgetTrackingError(const ExperimentResult &result)
{
    if (result.epochs.empty())
        return 0.0;
    double acc = 0.0;
    for (const EpochRecord &e : result.epochs)
        acc += std::abs(e.totalPower - e.budget) / e.budget;
    return acc / static_cast<double>(result.epochs.size());
}

} // namespace fastcap
