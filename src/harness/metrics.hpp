/**
 * @file
 * Performance/fairness metrics over experiment results, mirroring the
 * paper's reporting: per-application CPI normalized to the uncapped
 * (max-frequency) baseline, class-level average and worst values, and
 * power tracking statistics.
 */

#ifndef FASTCAP_HARNESS_METRICS_HPP
#define FASTCAP_HARNESS_METRICS_HPP

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace fastcap {

/**
 * Normalized per-application performance of a capped run against its
 * uncapped baseline. Values are normalized CPI (>= 1 means slower
 * than uncapped); Figure 6's y-axis.
 */
struct PerfComparison
{
    std::vector<double> perApp; //!< normalized CPI per core
    double average = 0.0;       //!< mean over applications
    double worst = 0.0;         //!< maximum over applications
    /**
     * Unfairness: worst / average. 1 means perfectly even
     * degradation; FastCap's design goal is to keep this near 1.
     */
    double unfairness = 1.0;
};

/**
 * Compare a capped run to its baseline (same workload and system).
 * Both runs must have completed all applications.
 */
PerfComparison comparePerformance(const ExperimentResult &capped,
                                  const ExperimentResult &baseline);

/** Merge comparisons (e.g., the four workloads of a class). */
PerfComparison mergeComparisons(
    const std::vector<PerfComparison> &parts);

/** Power-tracking summary of one run. */
struct PowerSummary
{
    double avgFraction = 0.0;  //!< average power / peak
    double maxFraction = 0.0;  //!< max epoch power / peak
    double budgetFraction = 0.0;
    /** Fraction of epochs whose average power exceeded the budget. */
    double overshootShare = 0.0;
    /** Largest relative overshoot among overshooting epochs. */
    double worstOvershoot = 0.0;
};

PowerSummary summarizePower(const ExperimentResult &result);

/** Mean |power - budget| / budget over epochs (tracking error). */
double budgetTrackingError(const ExperimentResult &result);

/**
 * One detected budget drop and the policy's transient response to it
 * (the paper's re-convergence experiments behind Figs. 7/8). A
 * maximal run of consecutive epoch-over-epoch decreases counts as a
 * single drop, so a downward ramp — or the descending half of a
 * sinusoid — is one transient, not one per epoch.
 */
struct BudgetTransient
{
    int epoch = 0;       //!< first epoch of the descent
    Watts before = 0.0;  //!< budget just before the descent
    Watts after = 0.0;   //!< budget at the bottom of the descent
    /**
     * Epochs from the bottom of the descent until epoch power enters
     * the tolerance band (power <= budget * (1 + tol)) and stays
     * there until the next budget change or the run's end. 0 means
     * the policy never overshot; -1 means it never settled.
     */
    int settlingEpochs = 0;
    /**
     * Energy above the instantaneous budget from the start of the
     * descent until settled (or the window's end when unsettled).
     */
    Joules overshootEnergy = 0.0;
};

/** Transient response of a whole run under a budget schedule. */
struct TransientSummary
{
    std::vector<BudgetTransient> drops;
    /** Worst settlingEpochs over drops (-1 dominates everything). */
    int worstSettlingEpochs = 0;
    /** Total energy above the instantaneous budget, whole run. */
    Joules overshootEnergy = 0.0;
    /** Fraction of epochs above budget * (1 + tolerance). */
    double violationRate = 0.0;
};

/**
 * Detect budget drops in a run's epoch records and measure settling
 * time, overshoot energy and the violation rate against the
 * *instantaneous* per-epoch budget. `tolerance` is the relative band
 * an epoch may sit above the budget and still count as settled
 * (sampling noise; default 2%). Requires per-epoch durations (any
 * ExperimentRunner result has them).
 */
TransientSummary analyzeTransients(const ExperimentResult &result,
                                   double tolerance = 0.02);

} // namespace fastcap

#endif // FASTCAP_HARNESS_METRICS_HPP
