/**
 * @file
 * Performance/fairness metrics over experiment results, mirroring the
 * paper's reporting: per-application CPI normalized to the uncapped
 * (max-frequency) baseline, class-level average and worst values, and
 * power tracking statistics.
 */

#ifndef FASTCAP_HARNESS_METRICS_HPP
#define FASTCAP_HARNESS_METRICS_HPP

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace fastcap {

/**
 * Normalized per-application performance of a capped run against its
 * uncapped baseline. Values are normalized CPI (>= 1 means slower
 * than uncapped); Figure 6's y-axis.
 */
struct PerfComparison
{
    std::vector<double> perApp; //!< normalized CPI per core
    double average = 0.0;       //!< mean over applications
    double worst = 0.0;         //!< maximum over applications
    /**
     * Unfairness: worst / average. 1 means perfectly even
     * degradation; FastCap's design goal is to keep this near 1.
     */
    double unfairness = 1.0;
};

/**
 * Compare a capped run to its baseline (same workload and system).
 * Both runs must have completed all applications.
 */
PerfComparison comparePerformance(const ExperimentResult &capped,
                                  const ExperimentResult &baseline);

/** Merge comparisons (e.g., the four workloads of a class). */
PerfComparison mergeComparisons(
    const std::vector<PerfComparison> &parts);

/** Power-tracking summary of one run. */
struct PowerSummary
{
    double avgFraction = 0.0;  //!< average power / peak
    double maxFraction = 0.0;  //!< max epoch power / peak
    double budgetFraction = 0.0;
    /** Fraction of epochs whose average power exceeded the budget. */
    double overshootShare = 0.0;
    /** Largest relative overshoot among overshooting epochs. */
    double worstOvershoot = 0.0;
};

PowerSummary summarizePower(const ExperimentResult &result);

/** Mean |power - budget| / budget over epochs (tracking error). */
double budgetTrackingError(const ExperimentResult &result);

} // namespace fastcap

#endif // FASTCAP_HARNESS_METRICS_HPP
