#include "harness/peak_power.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "sim/system.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

namespace {

/** Cache key over the configuration fields that influence power. */
std::string
cacheKey(const SimConfig &cfg)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%d mode=%d ctrl=%d banks=%d burst=%.4f "
                  "cdyn=%.3f cst=%.3f sf=%.3f ae=%.3g if=%.3f mc=%.3f "
                  "mst=%.3f bg=%.3f il=%d",
                  cfg.numCores, static_cast<int>(cfg.execMode),
                  cfg.numControllers, cfg.banksPerController,
                  cfg.busBurstCycles, cfg.corePower.dynMax,
                  cfg.corePower.staticPower, cfg.corePower.stallFactor,
                  cfg.memPower.accessEnergy, cfg.memPower.interfaceMax,
                  cfg.memPower.mcMax, cfg.memPower.staticPower,
                  cfg.backgroundPower, static_cast<int>(cfg.interleave));
    return std::string(buf);
}

std::map<std::string, Watts> &
cache()
{
    static std::map<std::string, Watts> c;
    return c;
}

} // namespace

Watts
measuredPeakPower(const SimConfig &cfg, int epochs)
{
    const std::string key = cacheKey(cfg);
    auto it = cache().find(key);
    if (it != cache().end())
        return it->second;

    Watts peak = 0.0;
    // The compute-bound mixes draw the highest power; measuring the
    // ILP class at max frequency gives the observed peak.
    for (const std::string &wl : workloads::workloadsOfClass("ILP")) {
        ManyCoreSystem system(cfg, workloads::mix(wl, cfg.numCores));
        system.maxFrequencies();
        for (int e = 0; e < epochs; ++e) {
            // Sampled window per epoch, mirroring the runner.
            const WindowStats w = system.runWindow(cfg.profileWindow);
            peak = std::max(peak, w.totalPower());
        }
    }

    if (peak <= 0.0)
        panic("measuredPeakPower: non-positive peak");
    inform("measured peak power for %d cores: %.1f W", cfg.numCores,
           peak);
    cache().emplace(key, peak);
    return peak;
}

void
clearPeakPowerCache()
{
    cache().clear();
}

} // namespace fastcap
