#include "harness/peak_power.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <map>
#include <string>

#include "sim/engine/backend.hpp"
#include "sim/system.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

namespace {

/**
 * The engine the auto rule (or a forced shard count) resolves to.
 * Only the *name* enters the cache key: shard and thread counts are
 * bit-irrelevant on the sharded engine, but the two engines model
 * memory contention differently, so their measurements must never
 * alias. This is the fix for the historical bug where >64-core peaks
 * were measured through the monolithic path while the experiment ran
 * sharded — and where a forced-shard small-system run budgeted
 * against a monolithic peak under an engine-blind key.
 */
const char *
resolvedEngineName(const SimConfig &cfg, const EngineConfig &engine)
{
    if (engine.shards == 0 &&
        cfg.numCores <= EngineConfig::kAutoMonolithicLimit)
        return "monolithic";
    return "sharded";
}

/** FNV-1a over the bit patterns of a list of doubles. */
std::uint64_t
hashDoubles(std::initializer_list<double> values)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (double v : values) {
        const std::uint64_t bits = doubleBits(v);
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

/** Hash of everything DVFS-side that shapes the measured peak. */
std::uint64_t
dvfsKey(const SimConfig &cfg)
{
    // Order-dependent combine (not XOR): repeated ladder entries and
    // identical (freq, voltage) pairs in the two ladders must not
    // cancel out.
    std::uint64_t h = cfg.coreLadder.size() * 0x9e3779b97f4a7c15ULL +
        cfg.memLadder.size();
    for (std::size_t i = 0; i < cfg.coreLadder.size(); ++i)
        h = h * 0x100000001b3ULL ^
            hashDoubles({cfg.coreLadder.at(i),
                         cfg.coreVoltage.at(cfg.coreLadder.at(i))});
    for (std::size_t i = 0; i < cfg.memLadder.size(); ++i)
        h = h * 0x100000001b3ULL ^
            hashDoubles({cfg.memLadder.at(i),
                         cfg.mcVoltage.at(cfg.memLadder.at(i))});
    return h;
}

/**
 * The memo cache plus its lock, annotated so clang's thread-safety
 * analysis checks the discipline: sweep workers measure peaks
 * concurrently, and every entry access must hold `mu`.
 */
struct PeakCache
{
    Mutex mu;
    std::map<std::string, Watts> entries FASTCAP_GUARDED_BY(mu);
};

PeakCache &
cache()
{
    static PeakCache c;
    return c;
}

} // namespace

std::string
peakPowerCacheKey(const SimConfig &cfg, const EngineConfig &engine,
                  int epochs)
{
    // Measure-then-format: a fixed buffer would silently truncate on
    // extreme-magnitude config values (e.g. %.3f of a 1e300 dynMax
    // expands past 300 characters), merging distinct configs into one
    // cache entry and corrupting paired-seed sweep determinism.
    const char *fmt_str =
        "n=%d mode=%d ctrl=%d banks=%d burst=%.4f "
        "cdyn=%.3f cst=%.3f sf=%.3f ae=%.3g if=%.3f mc=%.3f "
        "mst=%.3f bg=%.3f il=%d skew=%.3f rh=%.3f "
        "win=%.6g ep=%d dvfs=%016llx eng=%s";
    const auto format = [&](char *buf, std::size_t size) {
        return std::snprintf(
            buf, size, fmt_str, cfg.numCores,
            static_cast<int>(cfg.execMode), cfg.numControllers,
            cfg.banksPerController, cfg.busBurstCycles,
            cfg.corePower.dynMax, cfg.corePower.staticPower,
            cfg.corePower.stallFactor, cfg.memPower.accessEnergy,
            cfg.memPower.interfaceMax, cfg.memPower.mcMax,
            cfg.memPower.staticPower, cfg.backgroundPower,
            static_cast<int>(cfg.interleave), cfg.skewHotFraction,
            cfg.rowHitRate, cfg.profileWindow, epochs,
            static_cast<unsigned long long>(dvfsKey(cfg)),
            resolvedEngineName(cfg, engine));
    };
    const int needed = format(nullptr, 0);
    if (needed < 0)
        fatal("peakPowerCacheKey: snprintf failed");
    std::string key(static_cast<std::size_t>(needed), '\0');
    const int written = format(&key[0], key.size() + 1);
    if (written != needed)
        fatal("peakPowerCacheKey: inconsistent snprintf sizing "
              "(%d vs %d)", written, needed);
    return key;
}

std::string
peakPowerCacheKey(const SimConfig &cfg, int epochs)
{
    return peakPowerCacheKey(cfg, EngineConfig{}, epochs);
}

Watts
measuredPeakPower(const SimConfig &cfg, const EngineConfig &engine,
                  int epochs)
{
    // Serializing the whole measurement keeps concurrent first
    // callers from duplicating work; cache hits only pay the lock.
    PeakCache &c = cache();
    LockGuard lock(c.mu);
    const std::string key = peakPowerCacheKey(cfg, engine, epochs);
    auto it = c.entries.find(key);
    if (it != c.entries.end())
        return it->second;

    // Measure with a fixed seed: the cache key covers only the
    // power-relevant config fields, so the cached value must not
    // depend on which caller's cfg.seed populates it first (sweep
    // runs with derived per-run seeds would otherwise make results
    // depend on completion order).
    SimConfig mcfg = cfg;
    mcfg.seed = SimConfig().seed;

    // Measure serially regardless of the caller's thread knob: the
    // value is engine-dependent but thread-independent, and the
    // measurement often runs under a sweep that owns the workers.
    EngineConfig mengine = engine;
    mengine.threads = 1;

    Watts peak = 0.0;
    // The compute-bound mixes draw the highest power; measuring the
    // ILP class at max frequency gives the observed peak. The
    // measurement runs on the engine the experiment will use — a
    // 1024-core sharded run must not budget against a peak the
    // monolithic contention model produced.
    for (const std::string &wl : workloads::workloadsOfClass("ILP")) {
        auto system = makeSimBackend(
            mcfg, workloads::mix(wl, mcfg.numCores), mengine);
        system->maxFrequencies();
        for (int e = 0; e < epochs; ++e) {
            // Sampled window per epoch, mirroring the runner.
            const WindowStats w =
                system->runWindow(mcfg.profileWindow);
            peak = std::max(peak, w.totalPower());
        }
    }

    if (peak <= 0.0)
        panic("measuredPeakPower: non-positive peak");
    inform("measured peak power for %d cores (%s engine): %.1f W",
           cfg.numCores, resolvedEngineName(cfg, engine), peak);
    c.entries.emplace(key, peak);
    return peak;
}

Watts
measuredPeakPower(const SimConfig &cfg, int epochs)
{
    return measuredPeakPower(cfg, EngineConfig{}, epochs);
}

void
clearPeakPowerCache()
{
    PeakCache &c = cache();
    LockGuard lock(c.mu);
    c.entries.clear();
}

} // namespace fastcap
