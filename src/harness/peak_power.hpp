/**
 * @file
 * Measured peak power, following the paper's procedure: "We first run
 * all workloads under the maximum frequencies to observe the peak
 * power the system ever consumed" (Section IV-B). The budget fraction
 * B multiplies this observed peak, not the nameplate.
 *
 * The ILP workloads dominate the peak (busy, high-activity cores), so
 * the measurement runs those at maximum frequencies and takes the
 * highest epoch power. Results are memoized per configuration: every
 * bench sharing a configuration reuses the same P̄.
 */

#ifndef FASTCAP_HARNESS_PEAK_POWER_HPP
#define FASTCAP_HARNESS_PEAK_POWER_HPP

#include <string>

#include "sim/config.hpp"
#include "sim/engine/backend.hpp"
#include "util/units.hpp"

namespace fastcap {

/**
 * Memoization key over every configuration field that influences the
 * measurement: power parameters, topology, DVFS ladders/voltages, the
 * sampling window, and — since the engines model contention
 * differently — the *resolved* engine the measurement ran on
 * ("monolithic" or "sharded", never the shard/thread counts, whose
 * choice is bit-irrelevant). Determinism of parallel sweeps rests on
 * this key being complete and collision-free — two configs that
 * measure differently must never share an entry, so the key is built
 * at whatever length the values demand (never truncated). Exposed for
 * the regression tests; callers want measuredPeakPower().
 */
std::string peakPowerCacheKey(const SimConfig &cfg,
                              const EngineConfig &engine,
                              int epochs = 3);
/** Auto-engine key (EngineConfig{}): monolithic <= 64 cores. */
std::string peakPowerCacheKey(const SimConfig &cfg, int epochs = 3);

/**
 * Observed peak full-system power for a configuration, measured on
 * the engine `engine` resolves to for this core count — the engine
 * the experiment itself will run on, so the budget denominator and
 * the measured epoch powers come from the same contention model.
 *
 * @param cfg    system configuration (frequencies forced to max)
 * @param engine engine selection (EngineConfig{} = auto rule)
 * @param epochs measurement epochs per workload
 */
Watts measuredPeakPower(const SimConfig &cfg,
                        const EngineConfig &engine, int epochs = 3);
/** Auto-engine measurement (EngineConfig{}). */
Watts measuredPeakPower(const SimConfig &cfg, int epochs = 3);

/** Drop the memoization cache (tests only). */
void clearPeakPowerCache();

} // namespace fastcap

#endif // FASTCAP_HARNESS_PEAK_POWER_HPP
