#include "harness/sweep.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <set>

#include "harness/peak_power.hpp"
#include "policies/registry.hpp"
#include "trace/trace_generator.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/wallclock.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

namespace {

std::string
fmt(double v)
{
    char buf[32];
    checkedSnprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
}

std::string
fmtSeed(std::uint64_t seed)
{
    char buf[32];
    checkedSnprintf(buf, sizeof(buf), "0x%016" PRIx64, seed);
    return std::string(buf);
}

/** Escape a string for a JSON value: quotes, backslashes, controls. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += static_cast<char>(c);
        } else if (c < 0x20) {
            char buf[8];
            checkedSnprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

/** Mean time-per-instruction over completed applications, seconds. */
Seconds
meanTpi(const ExperimentResult &res)
{
    double acc = 0.0;
    int n = 0;
    for (const AppResult &a : res.apps) {
        if (a.completed) {
            acc += a.tpi;
            ++n;
        }
    }
    return n ? acc / n : 0.0;
}

} // namespace

std::vector<SweepConfig>
SweepGrid::configsForCores(const std::vector<int> &core_counts)
{
    std::vector<SweepConfig> out;
    out.reserve(core_counts.size());
    for (int n : core_counts)
        out.push_back({std::to_string(n) + "c",
                       SimConfig::defaultConfig(n)});
    return out;
}

void
SweepGrid::validate() const
{
    if (configs.empty())
        fatal("SweepGrid: need at least one system configuration");
    if (workloads.empty())
        fatal("SweepGrid: need at least one workload");
    if (policies.empty())
        fatal("SweepGrid: need at least one policy");
    if (budgetFractions.empty())
        fatal("SweepGrid: need at least one budget fraction");
    if (replicates < 1)
        fatal("SweepGrid: replicates must be >= 1 (got %d)",
              replicates);
    if (targetInstructions <= 0.0)
        fatal("SweepGrid: targetInstructions must be positive");
    if (maxEpochs < 1)
        fatal("SweepGrid: maxEpochs must be >= 1");
    if (shards < 0)
        fatal("SweepGrid: shards must be >= 0 (got %d)", shards);
    if (shardThreads < 0)
        fatal("SweepGrid: shardThreads must be >= 0 (got %d)",
              shardThreads);
    for (const SweepConfig &c : configs) {
        if (c.name.empty())
            fatal("SweepGrid: configs need non-empty names");
        c.sim.validate();
    }
    for (double b : budgetFractions)
        if (b <= 0.0 || b > 1.0)
            fatal("SweepGrid: budget fraction %g not in (0, 1]", b);
    // Scenario problems fail fast here rather than mid-sweep on a
    // worker thread, mirroring the workload/policy name checks.
    for (const Scenario &sc : scenarios) {
        if (sc.name.empty())
            fatal("SweepGrid: scenarios need non-empty names");
        for (const WorkloadEvent &ev : sc.workload.events())
            for (const SweepConfig &c : configs)
                if (ev.core >= c.sim.numCores)
                    fatal("SweepGrid: scenario '%s' event at t=%g "
                          "targets core %d but config '%s' has %d "
                          "cores", sc.name.c_str(), ev.time, ev.core,
                          c.name.c_str(), c.sim.numCores);
        if (!sc.trace.empty()) {
            // Every grid point opens the source independently, so a
            // single-pass stream cannot feed a sweep.
            if (sc.trace == "-")
                fatal("SweepGrid: scenario '%s' reads its trace from "
                      "stdin; sweeps replay each source once per run "
                      "and need a file or gen: spec",
                      sc.name.c_str());
            makeTraceSource(sc.trace); // unreadable/malformed -> fatal
        }
    }
    // Unknown workload/policy names fail fast here rather than
    // mid-sweep on a worker thread.
    for (const std::string &w : workloads)
        workloads::mix(w, configs.front().sim.numCores);
    for (const std::string &p : policies)
        makePolicy(p);
    // Duplicates would silently run the same nominal coordinates
    // twice (with different derived seeds) and make name lookups
    // ambiguous.
    auto rejectDuplicates = [](const std::vector<std::string> &names,
                               const char *what) {
        std::set<std::string> seen;
        for (const std::string &n : names)
            if (!seen.insert(n).second)
                fatal("SweepGrid: duplicate %s '%s'", what,
                      n.c_str());
    };
    rejectDuplicates(workloads, "workload");
    rejectDuplicates(policies, "policy");
    std::vector<std::string> config_names;
    for (const SweepConfig &c : configs)
        config_names.push_back(c.name);
    rejectDuplicates(config_names, "config name");
    std::vector<std::string> scenario_names;
    for (const Scenario &sc : scenarios)
        scenario_names.push_back(sc.name);
    rejectDuplicates(scenario_names, "scenario name");
}

const std::string &
SweepGrid::scenarioName(std::size_t idx) const
{
    static const std::string constant = "constant";
    if (scenarios.empty()) {
        if (idx != 0)
            panic("SweepGrid::scenarioName: index %zu without a "
                  "scenario axis", idx);
        return constant;
    }
    if (idx >= scenarios.size())
        panic("SweepGrid::scenarioName: index %zu out of range", idx);
    return scenarios[idx].name;
}

bool
SweepGrid::hasTraceScenario() const
{
    for (const Scenario &sc : scenarios)
        if (!sc.trace.empty())
            return true;
    return false;
}

std::size_t
SweepGrid::runCount() const
{
    return configs.size() * workloads.size() * scenarioCount() *
        policies.size() * budgetFractions.size() *
        static_cast<std::size_t>(replicates);
}

std::size_t
SweepGrid::runIndexOf(std::size_t config_idx, std::size_t workload_idx,
                      std::size_t scenario_idx, std::size_t policy_idx,
                      std::size_t budget_idx, int replicate) const
{
    if (config_idx >= configs.size() ||
        workload_idx >= workloads.size() ||
        scenario_idx >= scenarioCount() ||
        policy_idx >= policies.size() ||
        budget_idx >= budgetFractions.size() || replicate < 0 ||
        replicate >= replicates)
        panic("SweepGrid::runIndexOf: coordinates out of range");
    const auto reps = static_cast<std::size_t>(replicates);
    return ((((config_idx * workloads.size() + workload_idx) *
                  scenarioCount() +
              scenario_idx) *
                 policies.size() +
             policy_idx) *
                budgetFractions.size() +
            budget_idx) *
        reps +
        static_cast<std::size_t>(replicate);
}

std::size_t
SweepGrid::runIndexOf(std::size_t config_idx, std::size_t workload_idx,
                      std::size_t policy_idx, std::size_t budget_idx,
                      int replicate) const
{
    return runIndexOf(config_idx, workload_idx, 0, policy_idx,
                      budget_idx, replicate);
}

SweepPoint
SweepGrid::point(std::size_t run_index) const
{
    if (run_index >= runCount())
        panic("SweepGrid::point: run index %zu out of range (%zu runs)",
              run_index, runCount());
    const auto reps = static_cast<std::size_t>(replicates);
    std::size_t rest = run_index;

    SweepPoint p;
    p.runIndex = run_index;
    p.replicate = static_cast<int>(rest % reps);
    rest /= reps;
    p.budgetIdx = rest % budgetFractions.size();
    rest /= budgetFractions.size();
    p.policyIdx = rest % policies.size();
    rest /= policies.size();
    p.scenarioIdx = rest % scenarioCount();
    rest /= scenarioCount();
    p.workloadIdx = rest % workloads.size();
    rest /= workloads.size();
    p.configIdx = rest;

    p.config = configs[p.configIdx].name;
    p.workload = workloads[p.workloadIdx];
    p.scenario = scenarioName(p.scenarioIdx);
    p.policy = policies[p.policyIdx];
    p.budgetFraction = budgetFractions[p.budgetIdx];
    if (pairSeedsAcrossPolicies) {
        // Trace index: collapse the policy and budget axes so paired
        // runs draw the identical random trace. With no scenario
        // axis this reduces to the historical (config, workload,
        // replicate) index, keeping old seeds bit-identical.
        const std::size_t trace =
            ((p.configIdx * workloads.size() + p.workloadIdx) *
                 scenarioCount() +
             p.scenarioIdx) *
                reps +
            static_cast<std::size_t>(p.replicate);
        p.seed = splitmix64(baseSeed, trace);
    } else {
        p.seed = splitmix64(baseSeed, run_index);
    }
    return p;
}

std::size_t
SweepGrid::workloadIndex(const std::string &name) const
{
    const auto it =
        std::find(workloads.begin(), workloads.end(), name);
    if (it == workloads.end())
        fatal("SweepGrid: workload '%s' not in grid", name.c_str());
    return static_cast<std::size_t>(it - workloads.begin());
}

std::size_t
SweepGrid::scenarioIndex(const std::string &name) const
{
    if (scenarios.empty()) {
        if (name == "constant")
            return 0;
        fatal("SweepGrid: scenario '%s' not in grid (no scenario "
              "axis)", name.c_str());
    }
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        if (scenarios[i].name == name)
            return i;
    fatal("SweepGrid: scenario '%s' not in grid", name.c_str());
}

std::size_t
SweepGrid::policyIndex(const std::string &name) const
{
    const auto it = std::find(policies.begin(), policies.end(), name);
    if (it == policies.end())
        fatal("SweepGrid: policy '%s' not in grid", name.c_str());
    return static_cast<std::size_t>(it - policies.begin());
}

const SweepRun &
SweepResult::at(std::size_t run_index) const
{
    if (run_index >= runs.size())
        panic("SweepResult::at: run index %zu out of range", run_index);
    return runs[run_index];
}

const SweepRun &
SweepResult::at(std::size_t config_idx, std::size_t workload_idx,
                std::size_t policy_idx, std::size_t budget_idx,
                int replicate) const
{
    return at(grid.runIndexOf(config_idx, workload_idx, policy_idx,
                              budget_idx, replicate));
}

const SweepRun &
SweepResult::at(std::size_t config_idx, std::size_t workload_idx,
                std::size_t scenario_idx, std::size_t policy_idx,
                std::size_t budget_idx, int replicate) const
{
    return at(grid.runIndexOf(config_idx, workload_idx, scenario_idx,
                              policy_idx, budget_idx, replicate));
}

void
SweepResult::writeCsv(std::FILE *out) const
{
    // The scenario column appears only when the grid declares the
    // axis: constant-scenario output stays byte-identical to the
    // pre-scenario format.
    const bool with_scenario = grid.hasScenarioAxis();
    // Replay-shedding columns only when a scenario carries a trace:
    // they are meaningless (all-zero) otherwise, and constant-grid
    // goldens must stay byte-identical.
    const bool with_trace = grid.hasTraceScenario();
    CsvWriter csv(out);
    std::vector<std::string> header{
        "run", "config", "workload", "policy", "budget",
        "replicate", "seed", "epochs", "all_completed",
        "peak_w", "budget_w", "avg_power_w", "avg_power_frac",
        "max_epoch_frac", "makespan_s", "mean_tpi_ns"};
    if (with_scenario)
        header.insert(header.begin() + 3, "scenario");
    if (with_trace) {
        header.push_back("trace_dropped");
        header.push_back("trace_peak_pending");
    }
    csv.header(header);
    for (const SweepRun &r : runs) {
        const ExperimentResult &res = r.result;
        std::vector<std::string> row{
            std::to_string(r.point.runIndex), r.point.config,
            r.point.workload, r.point.policy,
            fmt(r.point.budgetFraction),
            std::to_string(r.point.replicate),
            fmtSeed(r.point.seed),
            std::to_string(res.epochs.size()),
            res.allCompleted() ? "1" : "0", fmt(res.peakPower),
            fmt(res.budget), fmt(res.averagePower()),
            fmt(res.averagePowerFraction()),
            fmt(res.maxEpochPowerFraction()),
            fmt(res.makespan()), fmt(meanTpi(res) * 1e9)};
        if (with_scenario)
            row.insert(row.begin() + 3, r.point.scenario);
        if (with_trace) {
            row.push_back(std::to_string(res.trace.dropped));
            row.push_back(std::to_string(res.trace.peakPending));
        }
        csv.row(row);
    }
}

void
SweepResult::writeJson(std::FILE *out) const
{
    const bool with_scenario = grid.hasScenarioAxis();
    const bool with_trace = grid.hasTraceScenario();
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const SweepRun &r = runs[i];
        const ExperimentResult &res = r.result;
        // Scenario/trace fields mirror the CSV: present only when the
        // grid declares the axis, keeping constant-grid JSON unchanged.
        std::string scenario_field;
        if (with_scenario)
            scenario_field = "\"scenario\": \"" +
                jsonEscape(r.point.scenario) + "\", ";
        std::string trace_fields;
        if (with_trace) {
            char buf[96];
            checkedSnprintf(buf, sizeof(buf),
                            ", \"trace_dropped\": %zu, "
                            "\"trace_peak_pending\": %zu",
                            res.trace.dropped, res.trace.peakPending);
            trace_fields = buf;
        }
        std::fprintf(
            out,
            "  {\"run\": %zu, \"config\": \"%s\", "
            "\"workload\": \"%s\", %s\"policy\": \"%s\", "
            "\"budget\": %s, \"replicate\": %d, \"seed\": \"%s\", "
            "\"epochs\": %zu, \"all_completed\": %s, "
            "\"saturated_epochs\": %d, "
            "\"peak_w\": %s, \"budget_w\": %s, \"avg_power_w\": %s, "
            "\"avg_power_frac\": %s, \"max_epoch_frac\": %s, "
            "\"makespan_s\": %s, \"mean_tpi_ns\": %s%s}%s\n",
            r.point.runIndex, jsonEscape(r.point.config).c_str(),
            jsonEscape(r.point.workload).c_str(),
            scenario_field.c_str(),
            jsonEscape(r.point.policy).c_str(),
            fmt(r.point.budgetFraction).c_str(), r.point.replicate,
            fmtSeed(r.point.seed).c_str(), res.epochs.size(),
            res.allCompleted() ? "true" : "false",
            res.saturatedEpochs(),
            fmt(res.peakPower).c_str(), fmt(res.budget).c_str(),
            fmt(res.averagePower()).c_str(),
            fmt(res.averagePowerFraction()).c_str(),
            fmt(res.maxEpochPowerFraction()).c_str(),
            fmt(res.makespan()).c_str(),
            fmt(meanTpi(res) * 1e9).c_str(), trace_fields.c_str(),
            i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
}

std::string
SweepResult::csvString() const
{
    // std::tmpfile rather than open_memstream: the latter is
    // POSIX-only and this is library (not tool) code.
    std::FILE *tmp = std::tmpfile();
    if (!tmp)
        panic("SweepResult::csvString: tmpfile failed");
    writeCsv(tmp);
    std::string out;
    out.resize(static_cast<std::size_t>(std::ftell(tmp)));
    std::rewind(tmp);
    const std::size_t got = std::fread(&out[0], 1, out.size(), tmp);
    std::fclose(tmp);
    if (got != out.size())
        panic("SweepResult::csvString: short read");
    return out;
}

SweepRunner::SweepRunner(SweepGrid grid, int threads)
    : _grid(std::move(grid)),
      _threads(threads > 0
                   ? threads
                   : static_cast<int>(ThreadPool::hardwareWorkers()))
{
}

SweepRun
SweepRunner::runOne(const SweepGrid &grid, std::size_t run_index)
{
    SweepRun run;
    run.point = grid.point(run_index);

    SimConfig sim = grid.configs[run.point.configIdx].sim;
    sim.seed = run.point.seed;

    ExperimentConfig ecfg;
    ecfg.budgetFraction = run.point.budgetFraction;
    ecfg.targetInstructions = grid.targetInstructions;
    ecfg.maxEpochs = grid.maxEpochs;
    ecfg.solver = grid.solver;
    ecfg.shards = grid.shards;
    ecfg.shardThreads = grid.shardThreads;
    if (grid.hasScenarioAxis())
        ecfg.scenario = grid.scenarios[run.point.scenarioIdx];

    run.result =
        runWorkload(run.point.workload, run.point.policy, ecfg, sim);
    return run;
}

SweepResult
SweepRunner::run()
{
    _grid.validate();

    // Pre-measure every config's peak serially, in grid order: the
    // peak cache is shared, so populating it before the fan-out makes
    // each run's budget independent of worker interleaving. The
    // engine selection matches the runs' (the cache key is
    // engine-tagged), so the fan-out hits the cache, never measures.
    for (const SweepConfig &c : _grid.configs)
        measuredPeakPower(
            c.sim, EngineConfig{_grid.shards, _grid.shardThreads});

    // fastcap-lint: wall-clock(operator-facing wallSeconds only)
    const double t0 = wallSeconds();
    const std::size_t n = _grid.runCount();

    SweepResult result;
    result.grid = _grid;
    result.threads = _threads;
    result.runs.resize(n);

    {
        ThreadPool pool(static_cast<std::size_t>(_threads));
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([this, i, &result] {
                result.runs[i] = runOne(_grid, i);
            });
        pool.wait();
    }

    // wallSeconds is console reporting only, never serialized into
    // the CSV/JSON results (the 1-vs-N-thread cmp gate depends on
    // that). fastcap-lint: wall-clock(operator-facing wallSeconds only)
    result.wallSeconds = wallSeconds() - t0;
    return result;
}

} // namespace fastcap
