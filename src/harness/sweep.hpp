/**
 * @file
 * Parallel experiment sweeps.
 *
 * The paper's evaluation (Figs. 3–13) is a grid of
 * (policy x budget fraction x workload x system configuration)
 * experiments. SweepGrid declares that cross-product; SweepRunner
 * fans it out over a fixed-size thread pool and collects results in
 * stable run-index order.
 *
 * Determinism contract: each run's simulation seed is derived with
 * SplitMix64 from (baseSeed, runIndex), runs share no mutable state,
 * and results are stored by run index — so the emitted CSV/JSON is
 * byte-identical for any worker count and any completion order.
 */

#ifndef FASTCAP_HARNESS_SWEEP_HPP
#define FASTCAP_HARNESS_SWEEP_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "scenario/scenario.hpp"
#include "sim/config.hpp"

namespace fastcap {

/** One named system configuration of a sweep (a Fig. 12 column). */
struct SweepConfig
{
    std::string name; //!< label used in CSV/JSON output
    SimConfig sim;    //!< seed is overridden per run
};

/** Coordinates of one run, decoded from its stable run index. */
struct SweepPoint
{
    std::size_t runIndex = 0;
    std::size_t configIdx = 0;
    std::size_t workloadIdx = 0;
    std::size_t scenarioIdx = 0;
    std::size_t policyIdx = 0;
    std::size_t budgetIdx = 0;
    int replicate = 0;
    std::string config;
    std::string workload;
    std::string scenario; //!< "constant" when the grid has no axis
    std::string policy;
    double budgetFraction = 0.0;
    /**
     * Simulation seed: splitmix64(grid.baseSeed, runIndex), or — with
     * grid.pairSeedsAcrossPolicies — splitmix64 of the trace index
     * (config, workload, scenario, replicate only).
     */
    std::uint64_t seed = 0;
};

/**
 * Declarative cross-product of experiment coordinates.
 *
 * Run order (and therefore run index) is row-major over
 * configs > workloads > scenarios > policies > budgetFractions >
 * replicates, with replicates innermost. An empty `scenarios` vector
 * means a single implicit constant scenario: run indices, seeds and
 * emitted CSV/JSON are then byte-identical to a grid without the
 * scenario axis.
 */
struct SweepGrid
{
    std::vector<SweepConfig> configs;
    std::vector<std::string> workloads;
    /** Time-varying scenarios; empty = one implicit constant one. */
    std::vector<Scenario> scenarios;
    std::vector<std::string> policies;
    std::vector<double> budgetFractions;
    /** Seed dimension: repeats every point with a fresh derived seed. */
    int replicates = 1;

    // Shared experiment knobs.
    double targetInstructions = 30e6;
    int maxEpochs = 2000;
    std::uint64_t baseSeed = 0x5eedf00dULL;
    /**
     * Solver options applied to every run's solver-backed policies
     * (validation sweeps set referenceImpl / exhaustiveMemSearch to
     * cross-check the optimised hot path at full-experiment scale).
     */
    SolverOptions solver;
    /**
     * Derive seeds from the trace coordinates (config, workload,
     * scenario, replicate) instead of the full run index, so runs
     * differing only in policy or budget share one seed and see the
     * same random trace. Required for paired comparisons (normalized
     * CPI against an Uncapped baseline); either mode is deterministic
     * for any worker count.
     */
    bool pairSeedsAcrossPolicies = false;
    /**
     * Simulation-engine shard count per run
     * (ExperimentConfig::shards): 0 = auto (the monolithic engine up
     * to 64 cores — a *different contention model*, not a shard
     * count), >= 1 forces the sharded engine. Output is
     * byte-identical across every value >= 1; 0 only matches them
     * where auto already selects the sharded engine (> 64 cores).
     */
    int shards = 0;
    /**
     * Sharded-engine worker threads per run. Defaults to 1: the
     * sweep already fans runs out over its own pool, so nesting
     * shard parallelism inside sweep parallelism oversubscribes.
     * Raise it for single-run grids at large core counts.
     */
    int shardThreads = 1;

    /** Configs from SimConfig::defaultConfig per core count. */
    static std::vector<SweepConfig>
    configsForCores(const std::vector<int> &core_counts);

    /** fatal() on empty dimensions or invalid knobs. */
    void validate() const;

    /** True when the grid declares explicit scenarios. */
    bool hasScenarioAxis() const { return !scenarios.empty(); }
    /** True when any declared scenario carries a job trace. */
    bool hasTraceScenario() const;
    /** Axis length including the implicit constant scenario. */
    std::size_t
    scenarioCount() const
    {
        return scenarios.empty() ? 1 : scenarios.size();
    }
    /** Name of a scenario index ("constant" when implicit). */
    const std::string &scenarioName(std::size_t idx) const;

    std::size_t runCount() const;

    /** Decode a run index into its coordinates (with derived seed). */
    SweepPoint point(std::size_t run_index) const;

    /** Inverse of point(): coordinates to run index. */
    std::size_t runIndexOf(std::size_t config_idx,
                           std::size_t workload_idx,
                           std::size_t scenario_idx,
                           std::size_t policy_idx,
                           std::size_t budget_idx, int replicate) const;
    /** Shorthand for grids without a scenario axis (scenario 0). */
    std::size_t runIndexOf(std::size_t config_idx,
                           std::size_t workload_idx,
                           std::size_t policy_idx,
                           std::size_t budget_idx, int replicate) const;

    /** Index of a workload name; fatal() if absent. */
    std::size_t workloadIndex(const std::string &name) const;
    /** Index of a scenario name; fatal() if absent. */
    std::size_t scenarioIndex(const std::string &name) const;
    /** Index of a policy name; fatal() if absent. */
    std::size_t policyIndex(const std::string &name) const;
};

/** One completed grid point. */
struct SweepRun
{
    SweepPoint point;
    ExperimentResult result;
};

/**
 * All runs of a sweep, ordered by run index regardless of the
 * execution interleaving.
 */
struct SweepResult
{
    SweepGrid grid;
    std::vector<SweepRun> runs;
    int threads = 1;          //!< worker count actually used
    double wallSeconds = 0.0; //!< not emitted (non-deterministic)

    const SweepRun &at(std::size_t run_index) const;
    const SweepRun &at(std::size_t config_idx, std::size_t workload_idx,
                       std::size_t policy_idx, std::size_t budget_idx,
                       int replicate = 0) const;
    /** Scenario-axis access (scenario between workload and policy). */
    const SweepRun &at(std::size_t config_idx, std::size_t workload_idx,
                       std::size_t scenario_idx,
                       std::size_t policy_idx, std::size_t budget_idx,
                       int replicate) const;

    /**
     * One summary row per run: coordinates, seed, and the power /
     * completion metrics the figures consume. Deterministic given the
     * grid (no timing fields). Grids with an explicit scenario axis
     * gain a `scenario` column after `workload`; grids whose scenarios
     * carry a job trace additionally gain trailing
     * `trace_dropped,trace_peak_pending` columns (replay shedding).
     * Without those axes, the format is unchanged from older builds.
     */
    void writeCsv(std::FILE *out) const;
    /** Same rows as JSON (an array of run objects). */
    void writeJson(std::FILE *out) const;

    /** The CSV as a string (tests compare these byte-for-byte). */
    std::string csvString() const;
};

/**
 * Runs a SweepGrid on a thread pool.
 *
 * Peak power per config is pre-measured serially before the fan-out
 * (the cache is shared), so worker scheduling cannot influence any
 * run's inputs.
 */
class SweepRunner
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit SweepRunner(SweepGrid grid, int threads = 0);

    /** Execute every grid point and collect the ordered results. */
    SweepResult run();

    /** Execute a single grid point (used by workers and tests). */
    static SweepRun runOne(const SweepGrid &grid,
                           std::size_t run_index);

    int threads() const { return _threads; }

  private:
    SweepGrid _grid;
    int _threads = 0;
};

} // namespace fastcap

#endif // FASTCAP_HARNESS_SWEEP_HPP
