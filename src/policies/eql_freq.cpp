#include "policies/eql_freq.hpp"

#include <cmath>
#include <limits>

#include "core/queuing_model.hpp"

namespace fastcap {

PolicyDecision
EqlFreqPolicy::decide(const PolicyInputs &inputs)
{
    const QueuingModel queuing(inputs);
    const std::size_t n = inputs.numCores();

    PolicyDecision best;
    best.coreFreqIdx.assign(n, 0);
    best.memFreqIdx = 0;
    double best_d = -std::numeric_limits<double>::infinity();
    bool any_feasible = false;
    int evaluations = 0;

    // Share FastCap's saturation guard (the policies are "extended
    // with FastCap's ability to manage memory power", Section IV-B).
    const std::size_t mi_floor = minMemIndexForUtilisation(inputs);

    for (std::size_t mi = mi_floor; mi < inputs.memRatios.size();
         ++mi) {
        const double x_b = inputs.memRatios[mi];
        const Watts mem_power = inputs.memory.pm *
            std::pow(x_b, inputs.memory.beta);
        for (std::size_t fi = 0; fi < inputs.coreRatios.size(); ++fi) {
            ++evaluations;
            const double x = inputs.coreRatios[fi];

            Watts total = inputs.staticPower() + mem_power;
            for (const CoreModel &c : inputs.cores)
                total += c.pi * std::pow(x, c.alpha);

            const bool feasible = total <= inputs.budget;
            // Track the best feasible point; if nothing fits the
            // budget, fall back to the lowest-power point.
            double d = std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < n; ++i)
                d = std::min(d, queuing.performance(i, x, x_b));

            const bool better = feasible
                ? (!any_feasible || d > best_d)
                : (!any_feasible && best.predictedPower == 0.0);
            if (feasible && better) {
                any_feasible = true;
                best_d = d;
                best.coreFreqIdx.assign(n, fi);
                best.memFreqIdx = mi;
                best.predictedPower = total;
            } else if (!any_feasible && (best.predictedPower == 0.0 ||
                                         total < best.predictedPower)) {
                best.coreFreqIdx.assign(n, fi);
                best.memFreqIdx = mi;
                best.predictedPower = total;
            }
        }
    }

    best.evaluations = evaluations;
    return best;
}

} // namespace fastcap
