/**
 * @file
 * Eql-Freq baseline (Herbert & Marculescu [42], extended with memory
 * DVFS): all cores share one frequency; the (core level, memory
 * level) pair maximizing D within the budget is chosen by exhaustive
 * search over F x M pairs.
 */

#ifndef FASTCAP_POLICIES_EQL_FREQ_HPP
#define FASTCAP_POLICIES_EQL_FREQ_HPP

#include <string>

#include "core/policy.hpp"

namespace fastcap {

/**
 * Single-global-frequency capping policy.
 *
 * Locking all cores together is conservative: raising everyone to the
 * next level may violate the budget, so mixed workloads on many cores
 * leave budget unharvested (Figure 10 of the paper).
 */
class EqlFreqPolicy : public CappingPolicy
{
  public:
    std::string name() const override { return "Eql-Freq"; }

    PolicyDecision decide(const PolicyInputs &inputs) override;
};

} // namespace fastcap

#endif // FASTCAP_POLICIES_EQL_FREQ_HPP
