#include "policies/eql_pwr.hpp"

#include <cmath>
#include <limits>

#include "core/queuing_model.hpp"
#include "util/logging.hpp"

namespace fastcap {

PolicyDecision
EqlPwrPolicy::decide(const PolicyInputs &inputs)
{
    const QueuingModel queuing(inputs);
    const std::size_t n = inputs.numCores();
    const std::size_t m = inputs.numMemLevels();

    PolicyDecision best;
    double best_d = -std::numeric_limits<double>::infinity();
    bool best_feasible = false;
    Watts best_infeasible_power =
        std::numeric_limits<double>::infinity();
    int evaluations = 0;

    // Share FastCap's saturation guard (the policies are "extended
    // with FastCap's ability to manage memory power", Section IV-B).
    const std::size_t mi_floor = minMemIndexForUtilisation(inputs);

    for (std::size_t mi = mi_floor; mi < m; ++mi) {
        const double x_b = inputs.memRatios[mi];
        ++evaluations;

        // Core budget: what remains after memory and background.
        const Watts mem_power = inputs.memory.pm *
            std::pow(x_b, inputs.memory.beta) + inputs.memory.pStatic;
        const Watts core_budget =
            inputs.budget - mem_power - inputs.background;
        const Watts share = core_budget / static_cast<double>(n);

        // Each core independently: highest frequency within its share.
        std::vector<std::size_t> idx(n, 0);
        double d = std::numeric_limits<double>::infinity();
        Watts total = mem_power + inputs.background;
        for (std::size_t i = 0; i < n; ++i) {
            const CoreModel &c = inputs.cores[i];
            std::size_t pick = 0;
            for (std::size_t f = inputs.coreRatios.size(); f-- > 0;) {
                const Watts p = c.pi *
                    std::pow(inputs.coreRatios[f], c.alpha) + c.pStatic;
                if (p <= share) {
                    pick = f;
                    break;
                }
                // Even the lowest level may exceed the share; the
                // core must still run, so pick index 0.
            }
            idx[i] = pick;
            const double x_i = inputs.coreRatios[pick];
            total += c.pi * std::pow(x_i, c.alpha) + c.pStatic;
            d = std::min(d, queuing.performance(i, x_i, x_b));
        }

        // Memory levels whose floor already violates the budget are
        // only acceptable if no level fits; then prefer least power.
        const bool feasible = total <= inputs.budget * (1.0 + 1e-9);
        if (feasible) {
            if (!best_feasible || d > best_d) {
                best_feasible = true;
                best_d = d;
                best.coreFreqIdx = std::move(idx);
                best.memFreqIdx = mi;
                best.predictedPower = total;
            }
        } else if (!best_feasible && total < best_infeasible_power) {
            best_infeasible_power = total;
            best.coreFreqIdx = std::move(idx);
            best.memFreqIdx = mi;
            best.predictedPower = total;
        }
    }

    best.evaluations = evaluations;
    return best;
}

} // namespace fastcap
