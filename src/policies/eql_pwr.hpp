/**
 * @file
 * Eql-Pwr baseline (Sharkey et al. [16], extended with memory DVFS as
 * in Section IV-B): every core receives an equal share of the core
 * power budget; each core then runs as fast as its share allows. The
 * memory level is chosen by scanning all M levels for the best D.
 */

#ifndef FASTCAP_POLICIES_EQL_PWR_HPP
#define FASTCAP_POLICIES_EQL_PWR_HPP

#include <string>

#include "core/policy.hpp"

namespace fastcap {

/**
 * Equal-power-share capping policy.
 *
 * Ignores application heterogeneity: memory-bound cores cannot use
 * their full share while power-hungry cores are starved — the outlier
 * behaviour Figure 9 of the paper demonstrates.
 */
class EqlPwrPolicy : public CappingPolicy
{
  public:
    std::string name() const override { return "Eql-Pwr"; }

    PolicyDecision decide(const PolicyInputs &inputs) override;
};

} // namespace fastcap

#endif // FASTCAP_POLICIES_EQL_PWR_HPP
