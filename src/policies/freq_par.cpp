#include "policies/freq_par.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hpp"

namespace fastcap {

void
FreqParPolicy::reset()
{
    _quota = -1.0;
    _wattsPerRatio = -1.0;
    _prevCorePower = -1.0;
    _prevQuota = -1.0;
}

PolicyDecision
FreqParPolicy::decide(const PolicyInputs &inputs)
{
    const std::size_t n = inputs.numCores();
    const double r_min = inputs.minCoreRatio();
    const double quota_min = r_min * static_cast<double>(n);
    const double quota_max = static_cast<double>(n);

    // Measured powers from the profiling window.
    double core_power = 0.0;
    double total_power = inputs.background + inputs.memory.measuredPower;
    for (const CoreModel &c : inputs.cores) {
        core_power += c.measuredPower;
        total_power += c.measuredPower;
    }

    if (_quota < 0.0) {
        // First epoch: start from the full quota.
        _quota = quota_max;
    }

    // Linear power-frequency model through the origin: P = k * r —
    // exactly the linearity assumption of [22] that the paper
    // criticises. Real core power is ~cubic in frequency, so k
    // underestimates the local slope at high frequencies and
    // overestimates it at low ones, producing the over/under-
    // correction (power oscillation) of Section IV-B.
    _wattsPerRatio = core_power / std::max(_quota, 1e-9);

    _prevQuota = _quota;
    _prevCorePower = core_power;

    // Feedback: convert the power error to a quota correction via
    // the linear model.
    const double error = inputs.budget - total_power;
    _quota += _gain * error / _wattsPerRatio;
    _quota = std::clamp(_quota, quota_min, quota_max);

    // Efficiency-proportional allocation: cores with better
    // BIPS-per-watt receive a larger frequency share.
    std::vector<double> weight(n, 1.0);
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const CoreModel &c = inputs.cores[i];
        weight[i] = (c.measuredPower > 1e-6)
            ? c.measuredIps / c.measuredPower
            : 1.0;
        weight_sum += weight[i];
    }

    // Water-fill the quota: ratios clamp to [r_min, 1]; excess from
    // saturated cores redistributes over the rest. Allocations within
    // a pass are computed from the pass-start snapshot of the
    // remaining quota, then clamped cores are removed and the pass
    // repeats over the free set.
    std::vector<double> ratio(n, r_min);
    std::vector<bool> fixed(n, false);
    double remaining = _quota;
    for (int pass = 0; pass < static_cast<int>(n) + 1; ++pass) {
        double wsum = 0.0;
        std::size_t free_cores = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!fixed[i]) {
                wsum += weight[i];
                ++free_cores;
            }
        }
        if (free_cores == 0 || wsum <= 0.0)
            break;

        bool clamped = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (fixed[i])
                continue;
            const double r = remaining * weight[i] / wsum;
            if (r >= 1.0) {
                ratio[i] = 1.0;
                fixed[i] = true;
                clamped = true;
            } else if (r <= r_min) {
                ratio[i] = r_min;
                fixed[i] = true;
                clamped = true;
            } else {
                ratio[i] = r;
            }
        }
        if (!clamped)
            break;
        // Recompute the quota left for the still-free cores.
        remaining = _quota;
        for (std::size_t i = 0; i < n; ++i)
            if (fixed[i])
                remaining -= ratio[i];
        remaining = std::max(remaining, 0.0);
    }

    PolicyDecision dec;
    dec.coreFreqIdx.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Snap to the closest ladder ratio.
        std::size_t best = 0;
        double best_d = std::abs(inputs.coreRatios[0] - ratio[i]);
        for (std::size_t fi = 1; fi < inputs.coreRatios.size(); ++fi) {
            const double d = std::abs(inputs.coreRatios[fi] - ratio[i]);
            if (d <= best_d) {
                best_d = d;
                best = fi;
            }
        }
        dec.coreFreqIdx.push_back(best);
    }
    dec.memFreqIdx = inputs.memRatios.size() - 1;
    dec.evaluations = 1;

    // Linear-model power prediction (knowingly crude).
    dec.predictedPower = total_power + _wattsPerRatio *
        (std::accumulate(ratio.begin(), ratio.end(), 0.0) - _prevQuota);
    return dec;
}

} // namespace fastcap
