/**
 * @file
 * Freq-Par baseline (Ma et al. [22]): control-theoretic capping. A
 * linear feedback loop adjusts a chip-wide frequency quota from the
 * power error each epoch; the quota is divided among cores in
 * proportion to their measured power efficiency. The memory stays at
 * maximum frequency (the original work has no memory DVFS).
 *
 * The policy deliberately retains the linear power-frequency model
 * of the original: the paper's point is that its inaccuracy (real
 * core power is ~cubic in frequency) causes over/under-correction
 * and power oscillation, and that efficiency-proportional allocation
 * is unfair to inefficient applications.
 */

#ifndef FASTCAP_POLICIES_FREQ_PAR_HPP
#define FASTCAP_POLICIES_FREQ_PAR_HPP

#include <string>
#include <vector>

#include "core/policy.hpp"

namespace fastcap {

/**
 * Frequency-partitioning feedback policy.
 */
class FreqParPolicy : public CappingPolicy
{
  public:
    /**
     * @param gain feedback gain on the power error (loop stability
     *             vs responsiveness trade-off)
     */
    explicit FreqParPolicy(double gain = 0.8) : _gain(gain) {}

    std::string name() const override { return "Freq-Par"; }
    bool usesMemoryDvfs() const override { return false; }

    PolicyDecision decide(const PolicyInputs &inputs) override;

    void reset() override;

  private:
    double _gain = 0.0;
    /** Chip-wide frequency quota in ratio units (sum of ratios). */
    double _quota = -1.0;
    /** Linear-model slope estimate: watts per unit total ratio. */
    double _wattsPerRatio = -1.0;
    /** Previous epoch's measured core power and quota. */
    double _prevCorePower = -1.0;
    double _prevQuota = -1.0;
};

} // namespace fastcap

#endif // FASTCAP_POLICIES_FREQ_PAR_HPP
