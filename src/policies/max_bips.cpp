#include "policies/max_bips.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "core/queuing_model.hpp"
#include "util/logging.hpp"

namespace fastcap {

PolicyDecision
MaxBipsPolicy::decide(const PolicyInputs &inputs)
{
    const std::size_t n = inputs.numCores();
    const std::size_t f = inputs.coreRatios.size();
    if (n > _maxCores)
        fatal("MaxBIPS: exhaustive search over %zu^%zu combinations "
              "refused (limit %zu cores); the complexity wall this "
              "policy illustrates", f, n, _maxCores);

    const QueuingModel queuing(inputs);

    // Precompute per-core power at every level (loop invariant).
    std::vector<std::vector<Watts>> core_power(
        n, std::vector<Watts>(f, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t fi = 0; fi < f; ++fi)
            core_power[i][fi] = inputs.cores[i].pi *
                std::pow(inputs.coreRatios[fi], inputs.cores[i].alpha);

    PolicyDecision best;
    best.coreFreqIdx.assign(n, 0);
    double best_bips = -std::numeric_limits<double>::infinity();
    Watts best_power_if_infeasible =
        std::numeric_limits<double>::infinity();
    bool any_feasible = false;
    int evaluations = 0;

    // Share FastCap's saturation guard (Section IV-B extension).
    const std::size_t mi_floor = minMemIndexForUtilisation(inputs);

    std::vector<std::size_t> combo(n, 0);
    for (std::size_t mi = mi_floor; mi < inputs.memRatios.size();
         ++mi) {
        const double x_b = inputs.memRatios[mi];
        const Watts mem_power = inputs.memory.pm *
            std::pow(x_b, inputs.memory.beta);

        // Per-core response times are combo-invariant at fixed x_b.
        std::vector<Seconds> resp(n);
        for (std::size_t i = 0; i < n; ++i)
            resp[i] = queuing.responseTime(i, x_b);

        std::fill(combo.begin(), combo.end(), 0);
        while (true) {
            ++evaluations;
            Watts total = inputs.staticPower() + mem_power;
            double bips = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const CoreModel &c = inputs.cores[i];
                const double x_i = inputs.coreRatios[combo[i]];
                total += core_power[i][combo[i]];
                bips += c.ipa / (c.zbar / x_i + c.cache + resp[i]);
            }

            if (total <= inputs.budget) {
                if (!any_feasible || bips > best_bips) {
                    any_feasible = true;
                    best_bips = bips;
                    best.coreFreqIdx = combo;
                    best.memFreqIdx = mi;
                    best.predictedPower = total;
                }
            } else if (!any_feasible &&
                       total < best_power_if_infeasible) {
                best_power_if_infeasible = total;
                best.coreFreqIdx = combo;
                best.memFreqIdx = mi;
                best.predictedPower = total;
            }

            // Odometer increment over the F^N combination space.
            std::size_t pos = 0;
            while (pos < n) {
                if (++combo[pos] < f)
                    break;
                combo[pos] = 0;
                ++pos;
            }
            if (pos == n)
                break;
        }
    }

    best.evaluations = evaluations;
    return best;
}

} // namespace fastcap
