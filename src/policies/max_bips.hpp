/**
 * @file
 * MaxBIPS baseline (Isci et al. [14], extended with memory DVFS):
 * exhaustive search over all F^N x M frequency combinations for the
 * one maximizing total predicted instruction throughput under the
 * budget. Exponential in N — the paper (and we) only run it at N = 4.
 */

#ifndef FASTCAP_POLICIES_MAX_BIPS_HPP
#define FASTCAP_POLICIES_MAX_BIPS_HPP

#include <string>

#include "core/policy.hpp"

namespace fastcap {

/**
 * Throughput-maximizing exhaustive-search policy.
 *
 * Maximizing aggregate BIPS favours power-efficient applications and
 * starves the rest — the unfairness Figure 11 of the paper shows.
 */
class MaxBipsPolicy : public CappingPolicy
{
  public:
    /** @param max_cores guard against accidental exponential runs. */
    explicit MaxBipsPolicy(std::size_t max_cores = 8)
        : _maxCores(max_cores)
    {}

    std::string name() const override { return "MaxBIPS"; }

    PolicyDecision decide(const PolicyInputs &inputs) override;

  private:
    std::size_t _maxCores = 0;
};

} // namespace fastcap

#endif // FASTCAP_POLICIES_MAX_BIPS_HPP
