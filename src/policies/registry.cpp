#include "policies/registry.hpp"

#include "core/fastcap_policy.hpp"
#include "policies/eql_freq.hpp"
#include "policies/eql_pwr.hpp"
#include "policies/freq_par.hpp"
#include "policies/max_bips.hpp"
#include "policies/steepest_drop.hpp"
#include "util/logging.hpp"

namespace fastcap {

std::unique_ptr<CappingPolicy>
makePolicy(const std::string &name)
{
    return makePolicy(name, SolverOptions{});
}

std::unique_ptr<CappingPolicy>
makePolicy(const std::string &name, const SolverOptions &opts)
{
    if (name == "FastCap")
        return std::make_unique<FastCapPolicy>(opts);
    if (name == "CPU-only")
        return std::make_unique<CpuOnlyPolicy>(opts);
    if (name == "Uncapped")
        return std::make_unique<UncappedPolicy>();
    if (name == "Freq-Par")
        return std::make_unique<FreqParPolicy>();
    if (name == "Eql-Pwr")
        return std::make_unique<EqlPwrPolicy>();
    if (name == "Eql-Freq")
        return std::make_unique<EqlFreqPolicy>();
    if (name == "MaxBIPS")
        return std::make_unique<MaxBipsPolicy>();
    if (name == "Steepest-Drop")
        return std::make_unique<SteepestDropPolicy>();
    fatal("makePolicy: unknown policy '%s'", name.c_str());
}

std::vector<std::string>
policyNames()
{
    return {"FastCap", "CPU-only", "Uncapped", "Freq-Par",
            "Eql-Pwr", "Eql-Freq", "MaxBIPS", "Steepest-Drop"};
}

} // namespace fastcap
