/**
 * @file
 * Factory for capping policies by name, so benches and examples can
 * be driven by strings ("FastCap", "CPU-only", "Freq-Par", "Eql-Pwr",
 * "Eql-Freq", "MaxBIPS", "Uncapped").
 */

#ifndef FASTCAP_POLICIES_REGISTRY_HPP
#define FASTCAP_POLICIES_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/solver.hpp"

namespace fastcap {

/** Instantiate a policy by its report name; fatal() if unknown. */
std::unique_ptr<CappingPolicy> makePolicy(const std::string &name);

/**
 * As above, configuring the solver-backed policies ("FastCap",
 * "CPU-only") with explicit options — socket budgets, the reference
 * per-core implementation, warm-start behaviour. Policies that do not
 * run the FastCap solver ignore the options.
 */
std::unique_ptr<CappingPolicy> makePolicy(const std::string &name,
                                          const SolverOptions &opts);

/** All policy names known to the registry. */
std::vector<std::string> policyNames();

} // namespace fastcap

#endif // FASTCAP_POLICIES_REGISTRY_HPP
