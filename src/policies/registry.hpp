/**
 * @file
 * Factory for capping policies by name, so benches and examples can
 * be driven by strings ("FastCap", "CPU-only", "Freq-Par", "Eql-Pwr",
 * "Eql-Freq", "MaxBIPS", "Uncapped").
 */

#ifndef FASTCAP_POLICIES_REGISTRY_HPP
#define FASTCAP_POLICIES_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace fastcap {

/** Instantiate a policy by its report name; fatal() if unknown. */
std::unique_ptr<CappingPolicy> makePolicy(const std::string &name);

/** All policy names known to the registry. */
std::vector<std::string> policyNames();

} // namespace fastcap

#endif // FASTCAP_POLICIES_REGISTRY_HPP
