#include "policies/steepest_drop.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "core/queuing_model.hpp"
#include "util/logging.hpp"

namespace fastcap {

namespace {

/** A candidate one-level-down move for one component. */
struct Move
{
    /** Core index, or -1 for the memory subsystem. */
    int component = -1;
    /** Power saved per unit of performance lost (bigger = better). */
    double efficiency = 0.0;
    /** Epoch stamp of the memory level when scored (staleness). */
    std::size_t scoredAtMemLevel = 0;

    bool
    operator<(const Move &other) const
    {
        return efficiency < other.efficiency; // max-heap
    }
};

} // namespace

PolicyDecision
SteepestDropPolicy::decide(const PolicyInputs &inputs)
{
    const QueuingModel queuing(inputs);
    const std::size_t n = inputs.numCores();
    const std::size_t f_top = inputs.coreRatios.size() - 1;
    const std::size_t m_floor = minMemIndexForUtilisation(inputs);

    std::vector<std::size_t> core_idx(n, f_top);
    std::size_t mem_idx = inputs.memRatios.size() - 1;
    int evaluations = 0;

    // Modeled total power at the current assignment.
    const auto total_power = [&] {
        Watts p = inputs.staticPower() + inputs.memory.pm *
            std::pow(inputs.memRatios[mem_idx], inputs.memory.beta);
        for (std::size_t i = 0; i < n; ++i)
            p += inputs.cores[i].pi *
                std::pow(inputs.coreRatios[core_idx[i]],
                         inputs.cores[i].alpha);
        return p;
    };

    // Sum of performance factors (the greedy's loss currency).
    const auto core_perf = [&](std::size_t i, std::size_t fi,
                               std::size_t mi) {
        ++evaluations;
        return queuing.performance(i, inputs.coreRatios[fi],
                                   inputs.memRatios[mi]);
    };

    const auto score_core = [&](std::size_t i) -> Move {
        Move mv;
        mv.component = static_cast<int>(i);
        mv.scoredAtMemLevel = mem_idx;
        if (core_idx[i] == 0) {
            mv.efficiency = -1.0; // no further step
            return mv;
        }
        const CoreModel &c = inputs.cores[i];
        const double dp =
            c.pi * (std::pow(inputs.coreRatios[core_idx[i]], c.alpha) -
                    std::pow(inputs.coreRatios[core_idx[i] - 1],
                             c.alpha));
        const double dperf = core_perf(i, core_idx[i], mem_idx) -
            core_perf(i, core_idx[i] - 1, mem_idx);
        mv.efficiency = dp / std::max(dperf, 1e-12);
        return mv;
    };

    const auto score_mem = [&]() -> Move {
        Move mv;
        mv.component = -1;
        mv.scoredAtMemLevel = mem_idx;
        if (mem_idx <= m_floor) {
            mv.efficiency = -1.0;
            return mv;
        }
        const double dp = inputs.memory.pm *
            (std::pow(inputs.memRatios[mem_idx], inputs.memory.beta) -
             std::pow(inputs.memRatios[mem_idx - 1],
                      inputs.memory.beta));
        double dperf = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            dperf += core_perf(i, core_idx[i], mem_idx) -
                core_perf(i, core_idx[i], mem_idx - 1);
        mv.efficiency = dp / std::max(dperf, 1e-12);
        return mv;
    };

    std::priority_queue<Move> heap;
    for (std::size_t i = 0; i < n; ++i)
        heap.push(score_core(i));
    heap.push(score_mem());

    // Greedy descent: keep taking the most power-efficient step down
    // until the budget is met or the floor is reached.
    while (total_power() > inputs.budget && !heap.empty()) {
        Move mv = heap.top();
        heap.pop();
        if (mv.efficiency < 0.0)
            continue; // component exhausted

        // Memory moved since this entry was scored: core performance
        // deltas are stale — re-score and re-insert.
        if (mv.scoredAtMemLevel != mem_idx) {
            heap.push(mv.component < 0
                          ? score_mem()
                          : score_core(static_cast<std::size_t>(
                                mv.component)));
            continue;
        }

        if (mv.component < 0) {
            --mem_idx;
            heap.push(score_mem());
        } else {
            const auto i = static_cast<std::size_t>(mv.component);
            --core_idx[i];
            heap.push(score_core(i));
        }
    }

    PolicyDecision dec;
    dec.predictedPower = total_power();
    dec.coreFreqIdx = std::move(core_idx);
    dec.memFreqIdx = mem_idx;
    dec.evaluations = evaluations;
    return dec;
}

} // namespace fastcap
