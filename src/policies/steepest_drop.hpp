/**
 * @file
 * Steepest-Drop baseline: the greedy heuristic family of Meng et al.
 * [18] / Winter et al. [19] from Table I, extended with memory DVFS.
 *
 * Starting from all components at maximum frequency, repeatedly take
 * the single one-level-down step (one core, or the memory) with the
 * best power-saved per performance-lost ratio, until the modeled
 * power fits the budget. A max-heap orders candidate moves; memory
 * moves invalidate core entries lazily (re-scored on pop). Winter et
 * al. [19] bound the refined version at O(F N log N); this
 * transparent implementation degrades to O(F N^2) when memory moves
 * force rescoring — `bench_table1_complexity` measures ~N^2, making
 * Table I's scaling gap against FastCap's O(N log M) visible
 * empirically either way.
 */

#ifndef FASTCAP_POLICIES_STEEPEST_DROP_HPP
#define FASTCAP_POLICIES_STEEPEST_DROP_HPP

#include <string>

#include "core/policy.hpp"

namespace fastcap {

/**
 * Greedy ∆power/∆performance descent.
 *
 * Unlike FastCap it carries no fairness notion: it sheds power
 * wherever it is cheapest, so memory-bound applications (whose
 * core-frequency steps cost little performance) get squeezed first.
 */
class SteepestDropPolicy : public CappingPolicy
{
  public:
    std::string name() const override { return "Steepest-Drop"; }

    PolicyDecision decide(const PolicyInputs &inputs) override;
};

} // namespace fastcap

#endif // FASTCAP_POLICIES_STEEPEST_DROP_HPP
