#include "scenario/budget_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {

namespace {

constexpr double kTwoPi = 6.28318530717958647692;

/** Strict finite-double parse; fatal() with context otherwise. */
double
parseNumber(const std::string &s, const char *what,
            const std::string &spec)
{
    double v = 0.0;
    if (!parseDouble(s, v))
        fatal("BudgetSchedule: bad %s '%s' in '%s'", what, s.c_str(),
              spec.c_str());
    return v;
}

/** Budget fractions must land in (0, 1] wherever a segment can go. */
void
checkFraction(double v, const char *what)
{
    if (!(v > 0.0) || v > 1.0)
        fatal("BudgetSchedule: %s %g out of range (0, 1]", what, v);
}

} // namespace

void
BudgetSchedule::append(BudgetSegment seg)
{
    if (!std::isfinite(seg.start) || seg.start < 0.0)
        fatal("BudgetSchedule: segment start time %g must be finite "
              "and non-negative", seg.start);
    if (!_segments.empty() && seg.start <= _segments.back().start)
        fatal("BudgetSchedule: segment at t=%g does not come after "
              "the previous segment at t=%g (starts must be strictly "
              "increasing)", seg.start, _segments.back().start);
    _segments.push_back(seg);
}

void
BudgetSchedule::addStep(Seconds start, double level)
{
    checkFraction(level, "step level");
    BudgetSegment seg;
    seg.kind = BudgetSegmentKind::Step;
    seg.start = start;
    seg.level = level;
    append(seg);
}

void
BudgetSchedule::addRamp(Seconds start, double from, double to,
                        Seconds duration)
{
    checkFraction(from, "ramp start fraction");
    checkFraction(to, "ramp end fraction");
    if (!std::isfinite(duration) || duration <= 0.0)
        fatal("BudgetSchedule: ramp duration %g must be finite and "
              "positive", duration);
    BudgetSegment seg;
    seg.kind = BudgetSegmentKind::Ramp;
    seg.start = start;
    seg.from = from;
    seg.to = to;
    seg.duration = duration;
    append(seg);
}

void
BudgetSchedule::addSine(Seconds start, double mean, double amplitude,
                        Seconds period)
{
    if (amplitude < 0.0)
        fatal("BudgetSchedule: sine amplitude %g is negative",
              amplitude);
    // The extremes are what the schedule can actually emit.
    checkFraction(mean - amplitude, "sine trough (mean - amplitude)");
    checkFraction(mean + amplitude, "sine crest (mean + amplitude)");
    if (!std::isfinite(period) || period <= 0.0)
        fatal("BudgetSchedule: sine period %g must be finite and "
              "positive", period);
    BudgetSegment seg;
    seg.kind = BudgetSegmentKind::Sine;
    seg.start = start;
    seg.mean = mean;
    seg.amplitude = amplitude;
    seg.period = period;
    append(seg);
}

void
BudgetSchedule::addTrace(const std::string &path, Seconds offset)
{
    std::ifstream in(path);
    if (!in)
        fatal("BudgetSchedule: cannot open trace '%s'", path.c_str());
    std::string line;
    int lineno = 0;
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trimmed(line);
        if (line.empty())
            continue;
        const auto comma = line.find(',');
        if (comma == std::string::npos)
            fatal("%s:%d: expected 'time,fraction'", path.c_str(),
                  lineno);
        const std::string t_str = trimmed(line.substr(0, comma));
        const std::string f_str = trimmed(line.substr(comma + 1));
        // Tolerate one header row ("time,fraction" or similar) ahead
        // of the data, wherever comments/blank lines put it. Only a
        // row with *both* cells non-numeric qualifies, so a data row
        // with one bad cell still fails loudly below.
        double ignored = 0.0;
        if (rows == 0 && !parseDouble(t_str, ignored) &&
            !parseDouble(f_str, ignored))
            continue;
        const double t = parseNumber(t_str, "trace time", path);
        const double f = parseNumber(f_str, "trace fraction", path);
        addStep(offset + t, f);
        ++rows;
    }
    if (rows == 0)
        fatal("BudgetSchedule: trace '%s' holds no rows",
              path.c_str());
}

double
BudgetSchedule::fractionAt(Seconds t, double fallback) const
{
    // Last segment with start <= t (segments are sorted).
    const auto it = std::upper_bound(
        _segments.begin(), _segments.end(), t,
        [](Seconds v, const BudgetSegment &s) { return v < s.start; });
    if (it == _segments.begin())
        return fallback;
    const BudgetSegment &seg = *(it - 1);
    switch (seg.kind) {
    case BudgetSegmentKind::Step:
        return seg.level;
    case BudgetSegmentKind::Ramp: {
        const Seconds dt = t - seg.start;
        if (dt >= seg.duration)
            return seg.to;
        return seg.from + (seg.to - seg.from) * dt / seg.duration;
    }
    case BudgetSegmentKind::Sine:
        return seg.mean +
            seg.amplitude *
            std::sin(kTwoPi * (t - seg.start) / seg.period);
    }
    panic("BudgetSchedule: unknown segment kind");
}

BudgetSchedule
BudgetSchedule::parse(const std::string &spec)
{
    BudgetSchedule sched;
    const std::string whole = trimmed(spec);
    if (whole.empty() || whole == "constant")
        return sched;

    std::stringstream ss(whole);
    std::string part;
    while (std::getline(ss, part, ';')) {
        part = trimmed(part);
        if (part.empty())
            fatal("BudgetSchedule: empty segment in '%s'",
                  spec.c_str());
        const auto at = part.find('@');
        const auto colon = part.find(':', at == std::string::npos
                                               ? 0
                                               : at + 1);
        if (at == std::string::npos || colon == std::string::npos)
            fatal("BudgetSchedule: segment '%s' is not of the form "
                  "kind@time:params", part.c_str());
        const std::string kind = trimmed(part.substr(0, at));
        const Seconds start = parseNumber(
            trimmed(part.substr(at + 1, colon - at - 1)),
            "segment start time", spec);
        const std::string params = trimmed(part.substr(colon + 1));

        if (kind == "step") {
            sched.addStep(start,
                          parseNumber(params, "step level", spec));
        } else if (kind == "ramp") {
            // FROM->TO/DUR
            const auto arrow = params.find("->");
            const auto slash = params.find('/',
                                           arrow == std::string::npos
                                               ? 0
                                               : arrow + 2);
            if (arrow == std::string::npos ||
                slash == std::string::npos)
                fatal("BudgetSchedule: ramp params '%s' are not of "
                      "the form FROM->TO/DURATION", params.c_str());
            sched.addRamp(
                start,
                parseNumber(trimmed(params.substr(0, arrow)),
                            "ramp start fraction", spec),
                parseNumber(
                    trimmed(params.substr(arrow + 2,
                                          slash - arrow - 2)),
                    "ramp end fraction", spec),
                parseNumber(trimmed(params.substr(slash + 1)),
                            "ramp duration", spec));
        } else if (kind == "sine") {
            // MEAN~AMP/PERIOD
            const auto tilde = params.find('~');
            const auto slash = params.find('/',
                                           tilde == std::string::npos
                                               ? 0
                                               : tilde + 1);
            if (tilde == std::string::npos ||
                slash == std::string::npos)
                fatal("BudgetSchedule: sine params '%s' are not of "
                      "the form MEAN~AMPLITUDE/PERIOD",
                      params.c_str());
            sched.addSine(
                start,
                parseNumber(trimmed(params.substr(0, tilde)),
                            "sine mean", spec),
                parseNumber(
                    trimmed(params.substr(tilde + 1,
                                          slash - tilde - 1)),
                    "sine amplitude", spec),
                parseNumber(trimmed(params.substr(slash + 1)),
                            "sine period", spec));
        } else if (kind == "trace") {
            if (params.empty())
                fatal("BudgetSchedule: trace segment needs a path");
            sched.addTrace(params, start);
        } else {
            fatal("BudgetSchedule: unknown segment kind '%s' "
                  "(expected step, ramp, sine or trace)",
                  kind.c_str());
        }
    }
    return sched;
}

} // namespace fastcap
