#include "scenario/budget_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "trace/trace_file.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {

namespace {

constexpr double kTwoPi = 6.28318530717958647692;

/** Strict finite-double parse; fatal() with context otherwise. */
double
parseNumber(const std::string &s, const char *what,
            const std::string &spec)
{
    double v = 0.0;
    if (!parseDouble(s, v))
        fatal("BudgetSchedule: bad %s '%s' in '%s'", what, s.c_str(),
              spec.c_str());
    return v;
}

/** Budget fractions must land in (0, 1] wherever a segment can go. */
void
checkFraction(double v, const char *what)
{
    if (!(v > 0.0) || v > 1.0)
        fatal("BudgetSchedule: %s %g out of range (0, 1]", what, v);
}

struct BudgetRow
{
    double time = 0.0;
    double fraction = 0.0;
};

/**
 * Next validated `time,fraction` row from a budget trace; false at
 * end of file. `rows_so_far` enables the one-header-row tolerance:
 * only a first data row with *both* cells non-numeric is skipped, so
 * a data row with one bad cell still fails loudly.
 */
bool
nextBudgetRow(TraceFile &file, std::vector<std::string> &cells,
              std::size_t rows_so_far, BudgetRow &out)
{
    while (file.nextRow(cells)) {
        if (cells.size() != 2)
            fatal("%s:%d: expected 'time,fraction'",
                  file.name().c_str(), file.lineno());
        double ignored = 0.0;
        if (rows_so_far == 0 && !parseDouble(cells[0], ignored) &&
            !parseDouble(cells[1], ignored))
            continue;
        out.time = parseNumber(cells[0], "trace time", file.name());
        out.fraction =
            parseNumber(cells[1], "trace fraction", file.name());
        checkFraction(out.fraction, "trace fraction");
        return true;
    }
    return false;
}

} // namespace

/**
 * Streaming read position inside one Trace segment's file: the row in
 * effect (cur) and the one after it (next). Built lazily on first
 * query, advanced forward as time moves, rebuilt by reopening the
 * file when a query goes backward.
 */
struct BudgetSchedule::TraceCursor
{
    explicit TraceCursor(const std::string &path) : file(path) {}

    bool
    read(BudgetRow &out)
    {
        if (!nextBudgetRow(file, cells, rows, out))
            return false;
        ++rows;
        return true;
    }

    TraceFile file;
    std::vector<std::string> cells;
    std::size_t rows = 0;
    BudgetRow cur;
    BudgetRow next;
    bool haveNext = false;
};

BudgetSchedule::BudgetSchedule() = default;
BudgetSchedule::~BudgetSchedule() = default;
BudgetSchedule::BudgetSchedule(BudgetSchedule &&) noexcept = default;
BudgetSchedule &
BudgetSchedule::operator=(BudgetSchedule &&) noexcept = default;

BudgetSchedule::BudgetSchedule(const BudgetSchedule &other)
    : _segments(other._segments)
{
    // Cursors are per-object read state, never shared: each copy
    // re-streams its trace segments from the top.
}

BudgetSchedule &
BudgetSchedule::operator=(const BudgetSchedule &other)
{
    if (this != &other) {
        _segments = other._segments;
        _cursors.clear();
    }
    return *this;
}

void
BudgetSchedule::append(BudgetSegment seg)
{
    if (!std::isfinite(seg.start) || seg.start < 0.0)
        fatal("BudgetSchedule: segment start time %g must be finite "
              "and non-negative", seg.start);
    if (!_segments.empty()) {
        const BudgetSegment &prev = _segments.back();
        // A trace segment occupies [start, traceEnd]; anything after
        // it must clear its last row, not just its first.
        const Seconds prev_end = prev.kind == BudgetSegmentKind::Trace
            ? prev.traceEnd
            : prev.start;
        if (seg.start <= prev_end)
            fatal("BudgetSchedule: segment at t=%g does not come "
                  "after the previous segment at t=%g (starts must "
                  "be strictly increasing)", seg.start, prev_end);
    }
    _segments.push_back(std::move(seg));
    _cursors.clear(); // indices shifted; rebuild lazily
}

void
BudgetSchedule::addStep(Seconds start, double level)
{
    checkFraction(level, "step level");
    BudgetSegment seg;
    seg.kind = BudgetSegmentKind::Step;
    seg.start = start;
    seg.level = level;
    append(seg);
}

void
BudgetSchedule::addRamp(Seconds start, double from, double to,
                        Seconds duration)
{
    checkFraction(from, "ramp start fraction");
    checkFraction(to, "ramp end fraction");
    if (!std::isfinite(duration) || duration <= 0.0)
        fatal("BudgetSchedule: ramp duration %g must be finite and "
              "positive", duration);
    BudgetSegment seg;
    seg.kind = BudgetSegmentKind::Ramp;
    seg.start = start;
    seg.from = from;
    seg.to = to;
    seg.duration = duration;
    append(seg);
}

void
BudgetSchedule::addSine(Seconds start, double mean, double amplitude,
                        Seconds period)
{
    if (amplitude < 0.0)
        fatal("BudgetSchedule: sine amplitude %g is negative",
              amplitude);
    // The extremes are what the schedule can actually emit.
    checkFraction(mean - amplitude, "sine trough (mean - amplitude)");
    checkFraction(mean + amplitude, "sine crest (mean + amplitude)");
    if (!std::isfinite(period) || period <= 0.0)
        fatal("BudgetSchedule: sine period %g must be finite and "
              "positive", period);
    BudgetSegment seg;
    seg.kind = BudgetSegmentKind::Sine;
    seg.start = start;
    seg.mean = mean;
    seg.amplitude = amplitude;
    seg.period = period;
    append(seg);
}

void
BudgetSchedule::addTrace(const std::string &path, Seconds offset)
{
    BudgetSegment seg;
    seg.kind = BudgetSegmentKind::Trace;
    seg.tracePath = path;
    seg.traceOffset = offset;

    // One validation pass, constant memory: every row must parse,
    // carry an in-range fraction and advance time. Nothing is kept
    // beyond the first/last times and the count.
    TraceFile file(path);
    std::vector<std::string> cells;
    BudgetRow row;
    Seconds last = 0.0;
    while (nextBudgetRow(file, cells, seg.traceRows, row)) {
        const Seconds t = offset + row.time;
        if (seg.traceRows == 0) {
            if (!std::isfinite(t) || t < 0.0)
                fatal("BudgetSchedule: trace '%s' starts at t=%g "
                      "(must be finite and non-negative)",
                      path.c_str(), t);
            seg.start = t;
        } else if (t <= last) {
            fatal("%s:%d: trace time %g does not come after %g "
                  "(times must be strictly increasing)", path.c_str(),
                  file.lineno(), row.time, last - offset);
        }
        last = t;
        ++seg.traceRows;
    }
    if (seg.traceRows == 0)
        fatal("BudgetSchedule: trace '%s' holds no rows",
              path.c_str());
    seg.traceEnd = last;
    append(std::move(seg));
}

double
BudgetSchedule::traceFractionAt(std::size_t index, Seconds t) const
{
    const BudgetSegment &seg = _segments[index];
    if (_cursors.size() != _segments.size())
        _cursors.resize(_segments.size());
    std::unique_ptr<TraceCursor> &cur = _cursors[index];

    // First touch, or a backward query (a fresh replay, a sweep
    // replicate): restart the stream from the top of the file.
    if (cur == nullptr || seg.traceOffset + cur->cur.time > t) {
        cur = std::make_unique<TraceCursor>(seg.tracePath);
        if (!cur->read(cur->cur))
            fatal("BudgetSchedule: trace '%s' holds no rows (file "
                  "changed since load?)", seg.tracePath.c_str());
        cur->haveNext = cur->read(cur->next);
    }
    while (cur->haveNext && seg.traceOffset + cur->next.time <= t) {
        cur->cur = cur->next;
        cur->haveNext = cur->read(cur->next);
    }
    return cur->cur.fraction;
}

double
BudgetSchedule::fractionAt(Seconds t, double fallback) const
{
    // Last segment with start <= t (segments are sorted).
    const auto it = std::upper_bound(
        _segments.begin(), _segments.end(), t,
        [](Seconds v, const BudgetSegment &s) { return v < s.start; });
    if (it == _segments.begin())
        return fallback;
    const BudgetSegment &seg = *(it - 1);
    switch (seg.kind) {
    case BudgetSegmentKind::Step:
        return seg.level;
    case BudgetSegmentKind::Ramp: {
        const Seconds dt = t - seg.start;
        if (dt >= seg.duration)
            return seg.to;
        return seg.from + (seg.to - seg.from) * dt / seg.duration;
    }
    case BudgetSegmentKind::Sine:
        return seg.mean +
            seg.amplitude *
            std::sin(kTwoPi * (t - seg.start) / seg.period);
    case BudgetSegmentKind::Trace:
        return traceFractionAt(
            static_cast<std::size_t>(it - 1 - _segments.begin()), t);
    }
    panic("BudgetSchedule: unknown segment kind");
}

BudgetSchedule
BudgetSchedule::parse(const std::string &spec)
{
    BudgetSchedule sched;
    const std::string whole = trimmed(spec);
    if (whole.empty() || whole == "constant")
        return sched;

    std::stringstream ss(whole);
    std::string part;
    while (std::getline(ss, part, ';')) {
        part = trimmed(part);
        if (part.empty())
            fatal("BudgetSchedule: empty segment in '%s'",
                  spec.c_str());
        const auto at = part.find('@');
        const auto colon = part.find(':', at == std::string::npos
                                               ? 0
                                               : at + 1);
        if (at == std::string::npos || colon == std::string::npos)
            fatal("BudgetSchedule: segment '%s' is not of the form "
                  "kind@time:params", part.c_str());
        const std::string kind = trimmed(part.substr(0, at));
        const Seconds start = parseNumber(
            trimmed(part.substr(at + 1, colon - at - 1)),
            "segment start time", spec);
        const std::string params = trimmed(part.substr(colon + 1));

        if (kind == "step") {
            sched.addStep(start,
                          parseNumber(params, "step level", spec));
        } else if (kind == "ramp") {
            // FROM->TO/DUR
            const auto arrow = params.find("->");
            const auto slash = params.find('/',
                                           arrow == std::string::npos
                                               ? 0
                                               : arrow + 2);
            if (arrow == std::string::npos ||
                slash == std::string::npos)
                fatal("BudgetSchedule: ramp params '%s' are not of "
                      "the form FROM->TO/DURATION", params.c_str());
            sched.addRamp(
                start,
                parseNumber(trimmed(params.substr(0, arrow)),
                            "ramp start fraction", spec),
                parseNumber(
                    trimmed(params.substr(arrow + 2,
                                          slash - arrow - 2)),
                    "ramp end fraction", spec),
                parseNumber(trimmed(params.substr(slash + 1)),
                            "ramp duration", spec));
        } else if (kind == "sine") {
            // MEAN~AMP/PERIOD
            const auto tilde = params.find('~');
            const auto slash = params.find('/',
                                           tilde == std::string::npos
                                               ? 0
                                               : tilde + 1);
            if (tilde == std::string::npos ||
                slash == std::string::npos)
                fatal("BudgetSchedule: sine params '%s' are not of "
                      "the form MEAN~AMPLITUDE/PERIOD",
                      params.c_str());
            sched.addSine(
                start,
                parseNumber(trimmed(params.substr(0, tilde)),
                            "sine mean", spec),
                parseNumber(
                    trimmed(params.substr(tilde + 1,
                                          slash - tilde - 1)),
                    "sine amplitude", spec),
                parseNumber(trimmed(params.substr(slash + 1)),
                            "sine period", spec));
        } else if (kind == "trace") {
            if (params.empty())
                fatal("BudgetSchedule: trace segment needs a path");
            sched.addTrace(params, start);
        } else {
            fatal("BudgetSchedule: unknown segment kind '%s' "
                  "(expected step, ramp, sine or trace)",
                  kind.c_str());
        }
    }
    return sched;
}

} // namespace fastcap
