/**
 * @file
 * Time-varying power-budget schedules.
 *
 * The paper's transient experiments (Figs. 7/8 and the re-convergence
 * discussion in Section V) change the budget at runtime and watch how
 * quickly FastCap settles onto the new cap. A BudgetSchedule describes
 * the budget fraction B(t) as a sequence of segments — steps, linear
 * ramps, sinusoids, or a CSV trace — that the experiment harness
 * samples at every epoch boundary.
 *
 * An empty schedule means "constant": the experiment keeps its static
 * budget fraction, and every code path is bit-identical to a
 * schedule-less run.
 */

#ifndef FASTCAP_SCENARIO_BUDGET_SCHEDULE_HPP
#define FASTCAP_SCENARIO_BUDGET_SCHEDULE_HPP

#include <string>
#include <vector>

#include "util/units.hpp"

namespace fastcap {

/** Segment shapes a schedule is built from. */
enum class BudgetSegmentKind : std::uint8_t {
    Step, //!< constant level from its start time on
    Ramp, //!< linear from -> to over duration, then holds `to`
    Sine, //!< mean + amplitude * sin(2*pi*(t - start)/period)
};

/**
 * One schedule segment. A segment is active from its start time until
 * the next segment's start (or the end of the run); only the fields
 * of its kind are meaningful.
 */
struct BudgetSegment
{
    BudgetSegmentKind kind = BudgetSegmentKind::Step;
    Seconds start = 0.0;
    // Step
    double level = 0.0;
    // Ramp
    double from = 0.0;
    double to = 0.0;
    Seconds duration = 0.0;
    // Sine
    double mean = 0.0;
    double amplitude = 0.0;
    Seconds period = 0.0;
};

/**
 * Piecewise budget-fraction function of virtual time.
 *
 * Segments are kept sorted by strictly increasing start time; every
 * value a segment can produce is validated into (0, 1] at insertion,
 * so fractionAt() never returns an unusable budget.
 */
class BudgetSchedule
{
  public:
    BudgetSchedule() = default;

    /**
     * Parse a schedule spec: `segment(;segment)*` with
     *
     *   step@T:LEVEL            budget steps to LEVEL at time T
     *   ramp@T:FROM->TO/DUR     linear ramp over DUR seconds
     *   sine@T:MEAN~AMP/PERIOD  sinusoid around MEAN
     *   trace@T:PATH            CSV rows "time,fraction", shifted by T
     *
     * e.g. "step@0:0.9;step@0.05:0.5". The literal "constant" (or an
     * empty string) yields an empty schedule. fatal() with a clear
     * message on malformed input.
     */
    static BudgetSchedule parse(const std::string &spec);

    /** Append a step segment; fatal() on invalid values. */
    void addStep(Seconds start, double level);
    /** Append a ramp segment; fatal() on invalid values. */
    void addRamp(Seconds start, double from, double to,
                 Seconds duration);
    /** Append a sinusoid segment; fatal() on invalid values. */
    void addSine(Seconds start, double mean, double amplitude,
                 Seconds period);
    /**
     * Append a CSV budget trace (rows `time,fraction`, `#` comments,
     * optional header) as step segments, times shifted by `offset`.
     */
    void addTrace(const std::string &path, Seconds offset = 0.0);

    /** True when the schedule imposes nothing (constant budget). */
    bool empty() const { return _segments.empty(); }
    std::size_t size() const { return _segments.size(); }
    const std::vector<BudgetSegment> &segments() const
    {
        return _segments;
    }

    /**
     * Budget fraction at virtual time t. Before the first segment (or
     * for an empty schedule) the caller's static `fallback` fraction
     * applies unchanged.
     */
    double fractionAt(Seconds t, double fallback) const;

  private:
    void append(BudgetSegment seg);

    std::vector<BudgetSegment> _segments;
};

} // namespace fastcap

#endif // FASTCAP_SCENARIO_BUDGET_SCHEDULE_HPP
