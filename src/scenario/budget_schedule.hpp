/**
 * @file
 * Time-varying power-budget schedules.
 *
 * The paper's transient experiments (Figs. 7/8 and the re-convergence
 * discussion in Section V) change the budget at runtime and watch how
 * quickly FastCap settles onto the new cap. A BudgetSchedule describes
 * the budget fraction B(t) as a sequence of segments — steps, linear
 * ramps, sinusoids, or a CSV trace — that the experiment harness
 * samples at every epoch boundary.
 *
 * An empty schedule means "constant": the experiment keeps its static
 * budget fraction, and every code path is bit-identical to a
 * schedule-less run.
 */

#ifndef FASTCAP_SCENARIO_BUDGET_SCHEDULE_HPP
#define FASTCAP_SCENARIO_BUDGET_SCHEDULE_HPP

#include <memory>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace fastcap {

/** Segment shapes a schedule is built from. */
enum class BudgetSegmentKind : std::uint8_t {
    Step,  //!< constant level from its start time on
    Ramp,  //!< linear from -> to over duration, then holds `to`
    Sine,  //!< mean + amplitude * sin(2*pi*(t - start)/period)
    Trace, //!< CSV rows "time,fraction", streamed from disk
};

/**
 * One schedule segment. A segment is active from its start time until
 * the next segment's start (or the end of the run); only the fields
 * of its kind are meaningful.
 */
struct BudgetSegment
{
    BudgetSegmentKind kind = BudgetSegmentKind::Step;
    Seconds start = 0.0;
    // Step
    double level = 0.0;
    // Ramp
    double from = 0.0;
    double to = 0.0;
    Seconds duration = 0.0;
    // Sine
    double mean = 0.0;
    double amplitude = 0.0;
    Seconds period = 0.0;
    // Trace. Rows are validated once at addTrace() and then streamed
    // on demand — a million-row budget trace is never materialized.
    std::string tracePath;
    Seconds traceOffset = 0.0;
    Seconds traceEnd = 0.0;     //!< offset + last row time
    std::size_t traceRows = 0;  //!< row count from the load-time scan
};

/**
 * Piecewise budget-fraction function of virtual time.
 *
 * Segments are kept sorted by strictly increasing start time; every
 * value a segment can produce is validated into (0, 1] at insertion,
 * so fractionAt() never returns an unusable budget. Trace segments
 * hold a file position, not the rows: fractionAt() streams forward
 * through the file as time advances (and reopens it on a backward
 * query), so schedule memory is independent of trace length.
 */
class BudgetSchedule
{
  public:
    BudgetSchedule();
    ~BudgetSchedule();
    /** Copies share the segments but never a trace file position. */
    BudgetSchedule(const BudgetSchedule &other);
    BudgetSchedule &operator=(const BudgetSchedule &other);
    BudgetSchedule(BudgetSchedule &&) noexcept;
    BudgetSchedule &operator=(BudgetSchedule &&) noexcept;

    /**
     * Parse a schedule spec: `segment(;segment)*` with
     *
     *   step@T:LEVEL            budget steps to LEVEL at time T
     *   ramp@T:FROM->TO/DUR     linear ramp over DUR seconds
     *   sine@T:MEAN~AMP/PERIOD  sinusoid around MEAN
     *   trace@T:PATH            CSV rows "time,fraction", shifted by T
     *
     * e.g. "step@0:0.9;step@0.05:0.5". The literal "constant" (or an
     * empty string) yields an empty schedule. fatal() with a clear
     * message on malformed input.
     */
    static BudgetSchedule parse(const std::string &spec);

    /** Append a step segment; fatal() on invalid values. */
    void addStep(Seconds start, double level);
    /** Append a ramp segment; fatal() on invalid values. */
    void addRamp(Seconds start, double from, double to,
                 Seconds duration);
    /** Append a sinusoid segment; fatal() on invalid values. */
    void addSine(Seconds start, double mean, double amplitude,
                 Seconds period);
    /**
     * Append a CSV budget trace (rows `time,fraction`, `#` comments,
     * optional header) as ONE streaming segment, times shifted by
     * `offset`. The file is scanned once here — shape, fractions and
     * strictly increasing times are validated row by row — but the
     * rows stay on disk; replay streams them as time advances.
     */
    void addTrace(const std::string &path, Seconds offset = 0.0);

    /** True when the schedule imposes nothing (constant budget). */
    bool empty() const { return _segments.empty(); }
    std::size_t size() const { return _segments.size(); }
    const std::vector<BudgetSegment> &segments() const
    {
        return _segments;
    }

    /**
     * Budget fraction at virtual time t. Before the first segment (or
     * for an empty schedule) the caller's static `fallback` fraction
     * applies unchanged. For trace segments this advances a file
     * cursor, so concurrent calls on the *same* object need external
     * ordering; distinct copies are fully independent.
     */
    double fractionAt(Seconds t, double fallback) const;

  private:
    struct TraceCursor;

    void append(BudgetSegment seg);
    double traceFractionAt(std::size_t index, Seconds t) const;

    std::vector<BudgetSegment> _segments;
    /** Lazy per-segment file cursors (only Trace slots are used). */
    mutable std::vector<std::unique_ptr<TraceCursor>> _cursors;
};

} // namespace fastcap

#endif // FASTCAP_SCENARIO_BUDGET_SCHEDULE_HPP
