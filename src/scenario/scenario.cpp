#include "scenario/scenario.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "trace/trace_generator.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {

Scenario
Scenario::parse(const std::string &spec)
{
    Scenario sc;
    sc.name = "scenario";

    const std::string whole = trimmed(spec);
    if (whole.empty())
        fatal("Scenario: empty spec");

    std::stringstream ss(whole);
    std::string field;
    bool first = true;
    bool have_name = false;
    bool have_budget = false;
    bool have_workload = false;
    bool have_trace = false;
    while (std::getline(ss, field, '|')) {
        field = trimmed(field);
        if (field.empty())
            fatal("Scenario: empty field in '%s'", spec.c_str());
        const auto eq = field.find('=');
        const std::string key =
            eq == std::string::npos ? std::string()
                                    : trimmed(field.substr(0, eq));
        if (key == "name") {
            if (have_name)
                fatal("Scenario: duplicate name field in '%s'",
                      spec.c_str());
            sc.name = trimmed(field.substr(eq + 1));
            have_name = true;
        } else if (key == "budget") {
            if (have_budget)
                fatal("Scenario: duplicate budget field in '%s'",
                      spec.c_str());
            sc.budget =
                BudgetSchedule::parse(trimmed(field.substr(eq + 1)));
            have_budget = true;
        } else if (key == "workload") {
            if (have_workload)
                fatal("Scenario: duplicate workload field in '%s'",
                      spec.c_str());
            sc.workload =
                WorkloadSchedule::parse(trimmed(field.substr(eq + 1)));
            have_workload = true;
        } else if (key == "trace") {
            if (have_trace)
                fatal("Scenario: duplicate trace field in '%s'",
                      spec.c_str());
            sc.trace = trimmed(field.substr(eq + 1));
            if (sc.trace.empty())
                fatal("Scenario: empty trace source in '%s'",
                      spec.c_str());
            // Generator specs are cheap to validate here; files are
            // opened by the run (they may not exist yet at parse
            // time on a driver machine).
            if (sc.trace.rfind("gen:", 0) == 0)
                TraceGenSpec::parse(sc.trace.substr(4));
            have_trace = true;
        } else if (eq == std::string::npos && first) {
            // Bare leading field is the name.
            sc.name = field;
            have_name = true;
        } else {
            fatal("Scenario: unknown field '%s' (expected name=, "
                  "budget=, workload= or trace=)", field.c_str());
        }
        first = false;
    }
    if (sc.name.empty())
        fatal("Scenario: empty name in '%s'", spec.c_str());
    return sc;
}

std::vector<Scenario>
Scenario::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("Scenario: cannot open scenario file '%s'",
              path.c_str());

    std::vector<Scenario> out;
    std::set<std::string> names;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trimmed(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("%s:%d: expected 'name = scenario spec'",
                  path.c_str(), lineno);
        const std::string name = trimmed(line.substr(0, eq));
        const std::string spec = trimmed(line.substr(eq + 1));
        if (name.empty())
            fatal("%s:%d: empty scenario name", path.c_str(), lineno);
        if (!names.insert(name).second)
            fatal("%s:%d: duplicate scenario '%s'", path.c_str(),
                  lineno, name.c_str());
        Scenario sc = parse(spec);
        sc.name = name;
        out.push_back(std::move(sc));
    }
    if (out.empty())
        fatal("Scenario: file '%s' declares no scenarios",
              path.c_str());
    return out;
}

} // namespace fastcap
