/**
 * @file
 * A scenario bundles the two time-varying axes of an experiment: the
 * power-budget schedule (BudgetSchedule) and the dynamic-workload
 * schedule (WorkloadSchedule). The default-constructed scenario is
 * "constant" — no budget changes, no job churn — and experiments run
 * bit-identically to scenario-less ones.
 *
 * Scenarios are named so a sweep can carry them as a grid axis and
 * label CSV rows; `fastcap_sweep --scenario` accepts the inline spec
 * syntax, `--scenario-file` a list of named scenarios.
 */

#ifndef FASTCAP_SCENARIO_SCENARIO_HPP
#define FASTCAP_SCENARIO_SCENARIO_HPP

#include <string>
#include <vector>

#include "scenario/budget_schedule.hpp"
#include "scenario/workload_schedule.hpp"

namespace fastcap {

struct Scenario
{
    std::string name = "constant";
    BudgetSchedule budget;
    WorkloadSchedule workload;
    /**
     * Job-trace source replayed onto the cores during the run: a
     * trace file path, "-" (stdin), or "gen:KIND,key=value,..." for
     * a synthetic generator (see src/trace/). Empty = no trace. The
     * experiment runner opens the source itself, so a Scenario stays
     * a cheap value type that sweeps can copy per run.
     */
    std::string trace;

    /** True when the scenario imposes nothing on a run. */
    bool
    isConstant() const
    {
        return budget.empty() && workload.empty() && trace.empty();
    }

    /**
     * Parse an inline scenario spec: `|`-separated fields
     *
     *   name=NAME            row label (default "scenario")
     *   budget=SPEC          BudgetSchedule::parse syntax
     *   workload=SPEC        WorkloadSchedule::parse syntax
     *   trace=SPEC           job-trace source (path, '-' or gen:...)
     *
     * e.g. "name=drop|budget=step@0:0.9;step@0.05:0.5". A bare first
     * field (no '=') is taken as the name. fatal() on unknown fields
     * or malformed schedules.
     */
    static Scenario parse(const std::string &spec);

    /**
     * Load named scenarios from a file of `name = spec` lines
     * ('#' comments, blank lines ignored). fatal() on duplicate
     * names or malformed lines.
     */
    static std::vector<Scenario> loadFile(const std::string &path);
};

} // namespace fastcap

#endif // FASTCAP_SCENARIO_SCENARIO_HPP
