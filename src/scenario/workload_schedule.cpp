#include "scenario/workload_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

const AppProfile &
WorkloadSchedule::resolve(const std::string &app)
{
    // fatal() on unknown names; "idle" maps to the built-in profile.
    return workloads::profile(app);
}

void
WorkloadSchedule::add(Seconds time, int core, const std::string &app)
{
    if (!std::isfinite(time) || time < 0.0)
        fatal("WorkloadSchedule: event time %g must be finite and "
              "non-negative", time);
    if (core < 0)
        fatal("WorkloadSchedule: core index %d is negative", core);
    if (app.empty())
        fatal("WorkloadSchedule: empty application name");
    resolve(app); // unknown names fail here, not mid-run

    WorkloadEvent ev;
    ev.time = time;
    ev.core = core;
    ev.app = app;
    // Keep sorted by time; stable so same-time events apply in
    // insertion order.
    const auto it = std::upper_bound(
        _events.begin(), _events.end(), ev,
        [](const WorkloadEvent &a, const WorkloadEvent &b) {
            return a.time < b.time;
        });
    _events.insert(it, std::move(ev));
}

WorkloadSchedule
WorkloadSchedule::parse(const std::string &spec)
{
    WorkloadSchedule sched;
    const std::string whole = trimmed(spec);
    if (whole.empty())
        return sched;

    std::stringstream ss(whole);
    std::string part;
    while (std::getline(ss, part, ';')) {
        part = trimmed(part);
        if (part.empty())
            fatal("WorkloadSchedule: empty event in '%s'",
                  spec.c_str());
        const auto c1 = part.find(':');
        const auto c2 = c1 == std::string::npos
                            ? std::string::npos
                            : part.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
            fatal("WorkloadSchedule: event '%s' is not of the form "
                  "TIME:CORE:APP", part.c_str());

        const std::string t_str = trimmed(part.substr(0, c1));
        const std::string core_str =
            trimmed(part.substr(c1 + 1, c2 - c1 - 1));
        const std::string app = trimmed(part.substr(c2 + 1));

        double t = 0.0;
        if (!parseDouble(t_str, t))
            fatal("WorkloadSchedule: bad event time '%s' in '%s'",
                  t_str.c_str(), spec.c_str());
        char *end = nullptr;
        const long core = std::strtol(core_str.c_str(), &end, 10);
        // Range check before narrowing: an overflowing index must
        // fail here, not wrap onto a valid core.
        if (core_str.empty() || end == core_str.c_str() ||
            *end != '\0' ||
            core > std::numeric_limits<int>::max() ||
            core < std::numeric_limits<int>::min())
            fatal("WorkloadSchedule: bad core index '%s' in '%s'",
                  core_str.c_str(), spec.c_str());

        sched.add(t, static_cast<int>(core), app);
    }
    return sched;
}

} // namespace fastcap
