/**
 * @file
 * Dynamic-workload schedules: job arrivals and departures.
 *
 * The paper's evaluation binds one application per core for a whole
 * run. Real deployments are not that static — jobs finish, new jobs
 * land, and cores fall idle — and the capping policy must keep the
 * budget met while the mix shifts under it. A WorkloadSchedule is a
 * time-ordered list of events, each rebinding one core to a different
 * application profile (or to the built-in near-zero "idle" profile).
 * The experiment harness applies due events at epoch boundaries.
 */

#ifndef FASTCAP_SCENARIO_WORKLOAD_SCHEDULE_HPP
#define FASTCAP_SCENARIO_WORKLOAD_SCHEDULE_HPP

#include <string>
#include <vector>

#include "sim/app_profile.hpp"
#include "util/units.hpp"

namespace fastcap {

/** One rebinding: core starts running `app` at `time`. */
struct WorkloadEvent
{
    Seconds time = 0.0;
    int core = -1;
    std::string app; //!< Table III application name, or "idle"
};

/**
 * Time-ordered application swap events.
 *
 * App names are resolved against the SPEC-like profile table at
 * insertion, so unknown names fail at schedule construction — not
 * mid-run on a sweep worker.
 */
class WorkloadSchedule
{
  public:
    WorkloadSchedule() = default;

    /**
     * Parse `TIME:CORE:APP(;TIME:CORE:APP)*`, e.g.
     * "0.05:3:idle;0.1:3:milc". The empty string yields an empty
     * schedule. fatal() with a clear message on malformed input.
     */
    static WorkloadSchedule parse(const std::string &spec);

    /** Append an event; fatal() on bad time/core/app. */
    void add(Seconds time, int core, const std::string &app);

    bool empty() const { return _events.empty(); }
    std::size_t size() const { return _events.size(); }
    /** Events sorted by time (stable for equal times). */
    const std::vector<WorkloadEvent> &events() const
    {
        return _events;
    }

    /**
     * Profile for an event's app name: the named Table III profile,
     * or the built-in idle profile for "idle". fatal() if unknown.
     */
    static const AppProfile &resolve(const std::string &app);

  private:
    std::vector<WorkloadEvent> _events;
};

} // namespace fastcap

#endif // FASTCAP_SCENARIO_WORKLOAD_SCHEDULE_HPP
