/**
 * @file
 * Application behaviour profiles driving the simulated cores.
 *
 * The paper runs SPEC 2000/2006 Simpoints; we substitute synthetic
 * profiles (see docs/DESIGN.md section 2): each application is a cyclic
 * sequence of phases, each phase characterised by its non-memory CPI,
 * L2 miss and writeback rates, and switching activity. FastCap never
 * sees these parameters — only the performance counters the simulator
 * derives from them.
 */

#ifndef FASTCAP_SIM_APP_PROFILE_HPP
#define FASTCAP_SIM_APP_PROFILE_HPP

#include <cmath>
#include <string>
#include <vector>

#include "util/logging.hpp"

namespace fastcap {

/**
 * One execution phase of an application.
 *
 * Rates are per kilo-instruction as in Table III of the paper.
 */
struct Phase
{
    /** Length of this phase in instructions. */
    double instructions = 10e6;
    /** Cycles per instruction of pure compute (no L2 misses). */
    double cpiExec = 1.0;
    /** L2 misses (memory reads) per kilo-instruction. */
    double mpki = 1.0;
    /** L2 writebacks per kilo-instruction. */
    double wpki = 0.2;
    /** Switching-activity factor in (0, 1]; scales dynamic power. */
    double activity = 0.8;

    /** Average instructions between two demand misses. */
    double
    instructionsPerMiss() const
    {
        return 1000.0 / mpki;
    }
};

/**
 * A named application: cyclic phase schedule.
 *
 * Phase selection wraps modulo the cycle length, so profiles describe
 * stationary long-run behaviour with periodic phase changes — the
 * dynamics Figs 4, 7 and 8 of the paper exercise.
 */
class AppProfile
{
  public:
    AppProfile() = default;

    AppProfile(std::string name, std::vector<Phase> phases)
        : _name(std::move(name)), _phases(std::move(phases))
    {
        if (_phases.empty())
            fatal("AppProfile %s: needs at least one phase",
                  _name.c_str());
        for (const Phase &p : _phases) {
            if (p.mpki <= 0.0 || p.cpiExec <= 0.0 ||
                p.instructions <= 0.0) {
                fatal("AppProfile %s: phase parameters must be "
                      "positive", _name.c_str());
            }
            _cycleLength += p.instructions;
        }
    }

    /** Single-phase convenience constructor. */
    AppProfile(std::string name, Phase phase)
        : AppProfile(std::move(name),
                     std::vector<Phase>{std::move(phase)})
    {}

    const std::string &name() const { return _name; }
    const std::vector<Phase> &phases() const { return _phases; }
    double cycleLength() const { return _cycleLength; }

    /** Phase in effect after `instr_executed` instructions. */
    const Phase &
    phaseAt(double instr_executed) const
    {
        if (_phases.size() == 1)
            return _phases.front();
        double pos = instr_executed -
            _cycleLength * std::floor(instr_executed / _cycleLength);
        for (const Phase &p : _phases) {
            if (pos < p.instructions)
                return p;
            pos -= p.instructions;
        }
        return _phases.back();
    }

    /** Instruction-weighted average MPKI over one cycle. */
    double averageMpki() const;
    /** Instruction-weighted average WPKI over one cycle. */
    double averageWpki() const;
    /** Instruction-weighted average compute CPI over one cycle. */
    double averageCpiExec() const;

  private:
    std::string _name;
    std::vector<Phase> _phases;
    double _cycleLength = 0.0;
};

inline double
AppProfile::averageMpki() const
{
    double acc = 0.0;
    for (const Phase &p : _phases)
        acc += p.mpki * p.instructions;
    return acc / _cycleLength;
}

inline double
AppProfile::averageWpki() const
{
    double acc = 0.0;
    for (const Phase &p : _phases)
        acc += p.wpki * p.instructions;
    return acc / _cycleLength;
}

inline double
AppProfile::averageCpiExec() const
{
    double acc = 0.0;
    for (const Phase &p : _phases)
        acc += p.cpiExec * p.instructions;
    return acc / _cycleLength;
}

} // namespace fastcap

#endif // FASTCAP_SIM_APP_PROFILE_HPP
