#include "sim/config.hpp"

#include "util/logging.hpp"

namespace fastcap {

SimConfig
SimConfig::defaultConfig(int cores)
{
    SimConfig cfg;
    cfg.numCores = cores;

    // Table II: 4 DDR3 channels for 16/32 cores, 8 channels for 64.
    // Beyond the paper's largest configuration the channel count
    // scales with the core count (8 per 64 cores), keeping per-core
    // bandwidth at the 64-core level — the machine a 256/1024-core
    // capping run models grows its memory system with its cores.
    const int channels = (cores > 64) ? 8 * ((cores + 63) / 64)
        : (cores >= 64)               ? 8
                                      : 4;
    cfg.banksPerController = 8 * channels;

    // The default single "common bus" aggregates all channels, so its
    // per-line transfer time shrinks with channel count: 6 DDR bus
    // cycles of occupancy for one 64-byte line on one channel.
    cfg.busBurstCycles = 6.0 / static_cast<double>(channels);

    // Memory power scales with channel count (reference: 4 channels).
    const double mem_scale = static_cast<double>(channels) / 4.0;
    cfg.memPower.interfaceMax *= mem_scale;
    cfg.memPower.mcMax *= mem_scale;
    cfg.memPower.staticPower *= mem_scale;

    cfg.validate();
    return cfg;
}

void
SimConfig::validate() const
{
    if (numCores < 1)
        fatal("SimConfig: numCores must be >= 1 (got %d)", numCores);
    if (numControllers < 1)
        fatal("SimConfig: numControllers must be >= 1 (got %d)",
              numControllers);
    if (banksPerController < 1)
        fatal("SimConfig: banksPerController must be >= 1 (got %d)",
              banksPerController);
    if (busBurstCycles <= 0.0)
        fatal("SimConfig: busBurstCycles must be positive");
    if (epochLength <= 0.0 || profileWindow <= 0.0 || execWindow <= 0.0)
        fatal("SimConfig: epoch/window lengths must be positive");
    if (profileWindow + execWindow > epochLength)
        fatal("SimConfig: sampling windows (%g s) exceed the epoch "
              "(%g s)", profileWindow + execWindow, epochLength);
    if (skewHotFraction <= 0.0 || skewHotFraction > 1.0)
        fatal("SimConfig: skewHotFraction must be in (0, 1]");
    if (rowHitRate < 0.0 || rowHitRate > 1.0)
        fatal("SimConfig: rowHitRate must be in [0, 1]");
    if (bankRowHitTime <= 0.0 || bankRowMissTime < bankRowHitTime)
        fatal("SimConfig: need 0 < bankRowHitTime <= bankRowMissTime");
    if (oooMaxOutstanding < 1)
        fatal("SimConfig: oooMaxOutstanding must be >= 1");
    if (corePower.dynMax <= 0.0 || corePower.staticPower < 0.0)
        fatal("SimConfig: core power parameters must be positive");
    if (corePower.stallFactor < 0.0 || corePower.stallFactor > 1.0)
        fatal("SimConfig: stallFactor must be in [0, 1]");
}

} // namespace fastcap
