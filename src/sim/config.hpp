/**
 * @file
 * Simulated-system configuration, mirroring Table II of the paper
 * plus the sampling parameters of our epoch scheme (see docs/DESIGN.md
 * section 5 for the sampling substitution).
 */

#ifndef FASTCAP_SIM_CONFIG_HPP
#define FASTCAP_SIM_CONFIG_HPP

#include <cstdint>
#include <vector>

#include "sim/dvfs.hpp"
#include "util/units.hpp"

namespace fastcap {

/** Core execution model (Section IV-B studies both). */
enum class ExecMode : std::uint8_t {
    InOrder,    //!< one outstanding miss; core blocks on every miss
    OutOfOrder, //!< idealized large-window OoO: bounded outstanding
};

/** How cores' accesses spread over multiple memory controllers. */
enum class InterleaveMode : std::uint8_t {
    Uniform, //!< each controller equally likely
    Skewed,  //!< one hot controller receives most accesses
};

/** Ground-truth power parameters for one core (simulator side). */
struct CorePowerConfig
{
    /** Max voltage/frequency-dependent power at activity 1. */
    Watts dynMax = 3.5;
    /** Static (frequency-independent) per-core power. */
    Watts staticPower = 1.0;
    /**
     * Fraction of dynamic power a stalled (memory-waiting) core
     * still burns: the clock tree keeps toggling.
     */
    double stallFactor = 0.3;
};

/** Ground-truth power parameters for the memory subsystem. */
struct MemoryPowerConfig
{
    /** Energy per memory access (activate + read/write + I/O). */
    Joules accessEnergy = 20e-9;
    /**
     * Interface power (PLLs, registers, termination) at max bus
     * frequency; scales ~linearly with bus frequency. Subsystem
     * total (split across controllers).
     */
    Watts interfaceMax = 8.0;
    /** Memory-controller logic max power; scales like V^2 * f. */
    Watts mcMax = 6.0;
    /** Static DRAM power (refresh, standby); subsystem total. */
    Watts staticPower = 12.0;
};

/**
 * Full simulated-system configuration.
 *
 * The defaults model the 16-core configuration of Table II; use
 * defaultConfig(n) for the paper's other core counts.
 */
struct SimConfig
{
    // --- topology -------------------------------------------------
    int numCores = 16;
    ExecMode execMode = ExecMode::InOrder;
    int numControllers = 1;
    int banksPerController = 32; //!< 4 DDR3 channels x 8 banks
    InterleaveMode interleave = InterleaveMode::Uniform;
    /** Probability mass on the hot controller in Skewed mode. */
    double skewHotFraction = 0.7;

    // --- DVFS -----------------------------------------------------
    FrequencyLadder coreLadder = FrequencyLadder::coreDefault();
    FrequencyLadder memLadder = FrequencyLadder::memoryDefault();
    VoltageCurve coreVoltage = VoltageCurve::coreDefault();
    VoltageCurve mcVoltage = VoltageCurve::memoryControllerDefault();
    Seconds coreTransitionTime = fromUs(20);
    Seconds memTransitionTime = fromUs(20);

    // --- timing (Table II-flavoured) --------------------------------
    /** Shared L2 hit latency; separate voltage domain, so constant. */
    Seconds l2Time = fromNs(7.5); //!< 30 cycles at 4 GHz
    /** Bank service time on a row-buffer hit (tCL + burst). */
    Seconds bankRowHitTime = fromNs(20);
    /** Bank service on a row-buffer miss (tRP + tRCD + tCL + burst). */
    Seconds bankRowMissTime = fromNs(50);
    /**
     * Bus cycles one 64 B line occupies the (channel-aggregated)
     * common bus, including command/turnaround overhead. The default
     * models Table II's 4 DDR3 channels folded into the queuing
     * model's single bus; defaultConfig() scales it by channel count.
     */
    double busBurstCycles = 1.5;

    // --- out-of-order idealization ----------------------------------
    /** Instruction-window entries (bounds outstanding misses). */
    int oooWindow = 128;
    /** Hard cap on outstanding misses per core in OoO mode. */
    int oooMaxOutstanding = 8;

    // --- epochs and sampling (docs/DESIGN.md section 5) -------------------
    Seconds epochLength = fromMs(5);
    Seconds profileWindow = fromUs(100);
    Seconds execWindow = fromUs(100);

    // --- stochastic texture -----------------------------------------
    /** Lognormal sigma applied to think times. */
    double thinkJitterSigma = 0.25;
    /** Row-buffer hit probability default (profiles may override). */
    double rowHitRate = 0.55;
    std::uint64_t seed = 0x5eedf00dULL;

    // --- power ------------------------------------------------------
    CorePowerConfig corePower;
    MemoryPowerConfig memPower;
    /** Non-CPU, non-memory components (disks, NICs, fans): fixed. */
    Watts backgroundPower = 10.0;

    /**
     * Build the paper's configuration for a given core count:
     * 4 DDR3 channels for up to 32 cores, 8 channels for 64 cores
     * (Table II), memory power scaled with channel count.
     */
    static SimConfig defaultConfig(int cores);

    /** Sanity-check invariants; fatal() on bad user config. */
    void validate() const;
};

} // namespace fastcap

#endif // FASTCAP_SIM_CONFIG_HPP
