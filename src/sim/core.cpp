#include "sim/core.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace fastcap {

Core::Core(int id, const SimConfig &cfg, EventQueue &queue, Rng rng)
    : _id(id), _cfg(cfg), _queue(queue), _rng(rng),
      _freq(cfg.coreLadder.max()),
      _freqIndex(cfg.coreLadder.maxIndex())
{
}

void
Core::runApp(const AppProfile *app)
{
    if (_started)
        panic("Core %d: cannot rebind application after start", _id);
    _app = app;
}

void
Core::frequency(Hertz f)
{
    if (f <= 0.0)
        panic("Core %d: non-positive frequency", _id);
    _freq = f;
}

void
Core::start()
{
    if (!_app)
        fatal("Core %d: no application bound", _id);
    if (!_submit)
        fatal("Core %d: no request sink installed", _id);
    if (_started)
        panic("Core %d: started twice", _id);
    _started = true;
    scheduleThink();
}

double
Core::currentActivity() const
{
    return _app ? _app->phaseAt(_instrRetired).activity : 0.0;
}

int
Core::maxOutstanding(const Phase &phase) const
{
    if (_cfg.execMode == ExecMode::InOrder)
        return 1;
    // Idealized OoO: the instruction window bounds how many misses
    // can be outstanding; dependencies are disregarded (Section IV-B).
    const double per_window = static_cast<double>(_cfg.oooWindow) /
        phase.instructionsPerMiss();
    const int mlp = static_cast<int>(per_window);
    return std::clamp(mlp, 1, _cfg.oooMaxOutstanding);
}

void
Core::scheduleThink()
{
    const Phase &phase = _app->phaseAt(_instrRetired);
    const double instr = phase.instructionsPerMiss();
    // Think time: instructions * CPI_exec cycles at the current
    // frequency, jittered to avoid lockstep artefacts.
    const Seconds z = instr * phase.cpiExec / _freq *
        _rng.jitter(_cfg.thinkJitterSigma);
    _queue.scheduleAfter(z, [this, z, instr] {
        onThinkDone(z, instr);
    });
}

void
Core::onThinkDone(Seconds think_time, double instr)
{
    const Seconds now = _queue.now();
    _instrRetired += instr;
    _counters.instructions += static_cast<std::uint64_t>(instr);
    _counters.busyTime += think_time;
    ++_counters.misses;

    const Phase &phase = _app->phaseAt(_instrRetired);
    maybeIssueWriteback(phase);

    // Demand read: traverses the shared L2 (constant-latency separate
    // voltage domain), then the memory subsystem.
    Request req;
    req.type = RequestType::Read;
    req.coreId = _id;
    req.issueTime = now;
    ++_outstanding;
    _queue.scheduleAfter(_cfg.l2Time, [this, req] { _submit(req); });

    if (_outstanding >= maxOutstanding(phase)) {
        // In-order cores always block here; OoO cores block only when
        // the instruction window is full.
        _stalled = true;
        _stallStart = now;
        ++_counters.stalls;
    } else {
        scheduleThink();
    }
}

void
Core::maybeIssueWriteback(const Phase &phase)
{
    // Writebacks occur at wpki/mpki per demand miss; values above 1
    // (write-heavy phases) emit multiple writebacks stochastically.
    double expected = phase.wpki / phase.mpki;
    while (expected > 0.0) {
        const double p = std::min(expected, 1.0);
        if (p >= 1.0 || _rng.chance(p)) {
            Request wb;
            wb.type = RequestType::Writeback;
            wb.coreId = _id;
            wb.issueTime = _queue.now();
            ++_counters.writebacks;
            _submit(wb);
        }
        expected -= 1.0;
    }
}

void
Core::onDataReturn(const Request &req, Seconds now)
{
    (void)req;
    --_outstanding;
    ++_counters.returns;
    if (_outstanding < 0)
        panic("Core %d: negative outstanding misses", _id);

    if (_stalled) {
        _stalled = false;
        _counters.stallTime += now - _stallStart;
        scheduleThink();
    }
}

void
Core::flushStall(Seconds now)
{
    if (_stalled && now > _stallStart) {
        _counters.stallTime += now - _stallStart;
        _stallStart = now;
    }
}

void
Core::creditInstructions(double instr)
{
    if (instr < 0.0)
        panic("Core %d: negative instruction credit", _id);
    _instrRetired += instr;
}

} // namespace fastcap
