/**
 * @file
 * Simulated CPU core: generates memory requests separated by think
 * times, exactly the closed-network client of the paper's queuing
 * model (Figure 2). Supports the in-order blocking mode (default) and
 * the idealized out-of-order mode of Section IV-B.
 */

#ifndef FASTCAP_SIM_CORE_HPP
#define FASTCAP_SIM_CORE_HPP

#include <cstdint>
#include <functional>

#include "sim/app_profile.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/request.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace fastcap {

/**
 * Per-window core performance counters: the inputs of Eq. 9 plus the
 * busy/stall split used for power accounting.
 */
struct CoreCounters
{
    std::uint64_t instructions = 0; //!< TIC
    std::uint64_t misses = 0;       //!< TLM (demand reads issued)
    std::uint64_t writebacks = 0;
    std::uint64_t stalls = 0;       //!< actual core-blocking events
    std::uint64_t returns = 0;      //!< reads completed
    Seconds busyTime = 0.0;         //!< executing (think) time
    Seconds stallTime = 0.0;        //!< blocked waiting on memory
};

/**
 * One core running one application.
 *
 * The core issues a demand read after every think interval of
 * `instructionsPerMiss * cpiExec / f` seconds (lognormal-jittered),
 * waits for the line (in-order) or continues until its window fills
 * (OoO), and emits writebacks as background traffic off the critical
 * path.
 */
class Core
{
  public:
    /** Sink for generated requests (routed to a controller). */
    using SubmitFn = std::function<void(Request)>;

    Core(int id, const SimConfig &cfg, EventQueue &queue, Rng rng);

    int id() const { return _id; }

    /** Bind the application this core runs. Must precede start(). */
    void runApp(const AppProfile *app);
    const AppProfile *app() const { return _app; }

    /** Install the request sink. Must precede start(). */
    void submitCallback(SubmitFn fn) { _submit = std::move(fn); }

    /** Begin execution at the current simulated time. */
    void start();

    /** Core DVFS: set operating frequency (new thinks use it). */
    void frequency(Hertz f);
    Hertz frequency() const { return _freq; }

    /** Ladder index bookkeeping for the harness. */
    void freqIndex(std::size_t idx) { _freqIndex = idx; }
    std::size_t freqIndex() const { return _freqIndex; }

    /** Completed line delivered to this core. */
    void onDataReturn(const Request &req, Seconds now);

    /** Cumulative instructions executed (including credited). */
    double instructionsRetired() const { return _instrRetired; }

    /**
     * Advance the application position without simulating, used by
     * the epoch extrapolation (docs/DESIGN.md section 5).
     */
    void creditInstructions(double instr);

    /** Window counters since the last resetCounters(). */
    const CoreCounters &counters() const { return _counters; }
    void resetCounters() { _counters = CoreCounters{}; }

    /** Activity factor of the current phase (for power accounting). */
    double currentActivity() const;

    /** Outstanding demand misses (at most 1 when in-order). */
    int outstanding() const { return _outstanding; }

    /** True while the core is blocked waiting on memory. */
    bool stalled() const { return _stalled; }

    /**
     * Account any in-progress stall up to `now` (window boundary), so
     * cores blocked across a whole window still report stall time.
     */
    void flushStall(Seconds now);

  private:
    void scheduleThink();
    void onThinkDone(Seconds think_time, double instr);
    void maybeIssueWriteback(const Phase &phase);
    int maxOutstanding(const Phase &phase) const;

    int _id = 0;
    const SimConfig &_cfg;
    EventQueue &_queue;
    Rng _rng;
    const AppProfile *_app = nullptr;
    SubmitFn _submit;

    Hertz _freq = 0.0;
    std::size_t _freqIndex = 0;

    double _instrRetired = 0.0;
    CoreCounters _counters;

    bool _started = false;
    bool _stalled = false;
    Seconds _stallStart = 0.0;
    int _outstanding = 0;
};

} // namespace fastcap

#endif // FASTCAP_SIM_CORE_HPP
