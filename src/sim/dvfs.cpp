#include "sim/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace fastcap {

FrequencyLadder::FrequencyLadder(std::vector<Hertz> freqs)
    : _freqs(std::move(freqs))
{
    if (_freqs.empty())
        fatal("FrequencyLadder: must have at least one level");
    std::sort(_freqs.begin(), _freqs.end());
    if (_freqs.front() <= 0.0)
        fatal("FrequencyLadder: frequencies must be positive");
}

FrequencyLadder
FrequencyLadder::evenlySpaced(Hertz lo, Hertz hi, std::size_t levels)
{
    if (levels < 1 || hi < lo)
        fatal("FrequencyLadder::evenlySpaced: bad range");
    std::vector<Hertz> f;
    f.reserve(levels);
    if (levels == 1) {
        f.push_back(hi);
    } else {
        const double step = (hi - lo) / static_cast<double>(levels - 1);
        for (std::size_t i = 0; i < levels; ++i)
            f.push_back(lo + step * static_cast<double>(i));
    }
    return FrequencyLadder(std::move(f));
}

FrequencyLadder
FrequencyLadder::coreDefault()
{
    return evenlySpaced(fromGHz(2.2), fromGHz(4.0), 10);
}

FrequencyLadder
FrequencyLadder::memoryDefault()
{
    // 800 MHz stepping down by 66 MHz: 800, 734, ..., 272, 206.
    std::vector<Hertz> f;
    for (int i = 0; i < 10; ++i)
        f.push_back(fromMHz(800.0 - 66.0 * i));
    return FrequencyLadder(std::move(f));
}

std::size_t
FrequencyLadder::closestIndex(Hertz f) const
{
    std::size_t best = 0;
    double best_d = std::abs(_freqs[0] - f);
    for (std::size_t i = 1; i < _freqs.size(); ++i) {
        const double d = std::abs(_freqs[i] - f);
        if (d <= best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

std::size_t
FrequencyLadder::closestToRatio(double ratio) const
{
    return closestIndex(ratio * max());
}

std::vector<double>
FrequencyLadder::ratios() const
{
    std::vector<double> out;
    out.reserve(_freqs.size());
    for (Hertz f : _freqs)
        out.push_back(f / max());
    return out;
}

VoltageCurve::VoltageCurve(Hertz f_min, Hertz f_max, Volts v_min,
                           Volts v_max)
    : _fMin(f_min), _fMax(f_max), _vMin(v_min), _vMax(v_max)
{
    if (f_max <= f_min || v_max < v_min)
        fatal("VoltageCurve: degenerate curve");
}

VoltageCurve
VoltageCurve::coreDefault()
{
    return VoltageCurve(fromGHz(2.2), fromGHz(4.0), 0.65, 1.2);
}

VoltageCurve
VoltageCurve::memoryControllerDefault()
{
    // Indexed by *bus* frequency; the MC itself runs at 2x.
    return VoltageCurve(fromMHz(206), fromMHz(800), 0.65, 1.2);
}

Volts
VoltageCurve::at(Hertz f) const
{
    if (f <= _fMin)
        return _vMin;
    if (f >= _fMax)
        return _vMax;
    const double t = (f - _fMin) / (_fMax - _fMin);
    return _vMin + t * (_vMax - _vMin);
}

double
VoltageCurve::squaredRatio(Hertz f) const
{
    const double r = at(f) / _vMax;
    return r * r;
}

} // namespace fastcap
