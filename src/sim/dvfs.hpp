/**
 * @file
 * DVFS substrate: frequency ladders and voltage curves.
 *
 * Defaults follow the paper's evaluation setup (Section IV-A):
 *   - per-core DVFS with 10 equally spaced frequencies, 2.2-4.0 GHz;
 *   - voltage 0.65-1.2 V scaling linearly with frequency (Sandy
 *     Bridge-like);
 *   - memory bus / DRAM frequency 800 MHz down to 200 MHz in 66 MHz
 *     steps (10 levels); the memory controller runs at 2x the bus
 *     frequency with core-like voltage scaling.
 */

#ifndef FASTCAP_SIM_DVFS_HPP
#define FASTCAP_SIM_DVFS_HPP

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace fastcap {

/**
 * An ascending ladder of selectable frequencies.
 */
class FrequencyLadder
{
  public:
    /** Build from explicit frequencies; sorted ascending on entry. */
    explicit FrequencyLadder(std::vector<Hertz> freqs);

    /** Evenly spaced ladder from lo to hi inclusive with n levels. */
    static FrequencyLadder evenlySpaced(Hertz lo, Hertz hi,
                                        std::size_t levels);

    /** Paper default core ladder: 2.2-4.0 GHz, 10 levels. */
    static FrequencyLadder coreDefault();

    /**
     * Paper default memory ladder: 800 MHz max, 66 MHz steps down to
     * 206 MHz (10 levels): 206, 272, ..., 734, 800.
     */
    static FrequencyLadder memoryDefault();

    std::size_t size() const { return _freqs.size(); }
    Hertz at(std::size_t i) const { return _freqs.at(i); }
    Hertz operator[](std::size_t i) const { return _freqs[i]; }
    Hertz min() const { return _freqs.front(); }
    Hertz max() const { return _freqs.back(); }

    /** Index of the highest level. */
    std::size_t maxIndex() const { return _freqs.size() - 1; }

    /** Index of the frequency closest to `f` (ties go up). */
    std::size_t closestIndex(Hertz f) const;

    /**
     * Index of the frequency closest to ratio * max() — the mapping
     * FastCap applies after solving for normalized think/transfer
     * times (Algorithm 1, line 16).
     */
    std::size_t closestToRatio(double ratio) const;

    /** Normalized ratio f_i / f_max for level i. */
    double ratio(std::size_t i) const { return _freqs[i] / max(); }

    /** All normalized ratios, ascending. */
    std::vector<double> ratios() const;

  private:
    std::vector<Hertz> _freqs;
};

/**
 * Linear voltage/frequency curve: V(f) interpolates between (fMin,
 * vMin) and (fMax, vMax), clamped outside the range.
 */
class VoltageCurve
{
  public:
    VoltageCurve(Hertz f_min, Hertz f_max, Volts v_min, Volts v_max);

    /** Paper default for cores: 0.65 V @ 2.2 GHz to 1.2 V @ 4 GHz. */
    static VoltageCurve coreDefault();

    /**
     * Memory controller curve: the MC frequency is 2x the bus
     * frequency, so this maps bus frequencies directly to MC voltage
     * across the same 0.65-1.2 V range.
     */
    static VoltageCurve memoryControllerDefault();

    Volts at(Hertz f) const;
    Volts min() const { return _vMin; }
    Volts max() const { return _vMax; }

    /** Squared-voltage ratio (V(f)/Vmax)^2 used in dynamic power. */
    double squaredRatio(Hertz f) const;

  private:
    Hertz _fMin = 0.0;
    Hertz _fMax = 0.0;
    Volts _vMin;
    Volts _vMax;
};

} // namespace fastcap

#endif // FASTCAP_SIM_DVFS_HPP
