#include "sim/engine/backend.hpp"

#include <utility>

#include "sim/engine/sharded_system.hpp"

namespace fastcap {

namespace {

/**
 * The monolithic engine: ManyCoreSystem behind the SimBackend
 * surface. Pure forwarding — constructing through this adapter is
 * bit-identical to using ManyCoreSystem directly.
 */
class MonolithicBackend : public SimBackend
{
  public:
    MonolithicBackend(SimConfig cfg, std::vector<AppProfile> apps)
        : _system(std::move(cfg), std::move(apps))
    {
    }

    const char *engineName() const override { return "monolithic"; }
    const SimConfig &config() const override
    {
        return _system.config();
    }
    int numCores() const override { return _system.numCores(); }
    int numControllers() const override
    {
        return _system.numControllers();
    }
    Seconds now() const override { return _system.now(); }

    const AppProfile &appOf(int core) const override
    {
        return _system.appOf(core);
    }
    void swapApp(int core, AppProfile app) override
    {
        _system.swapApp(core, std::move(app));
    }

    void coreFreqIndex(int core, std::size_t idx) override
    {
        _system.coreFreqIndex(core, idx);
    }
    std::size_t coreFreqIndex(int core) const override
    {
        return _system.coreFreqIndex(core);
    }
    void memFreqIndex(std::size_t idx) override
    {
        _system.memFreqIndex(idx);
    }
    std::size_t memFreqIndex() const override
    {
        return _system.memFreqIndex();
    }
    Hertz memFrequency() const override
    {
        return _system.memFrequency();
    }
    void maxFrequencies() override { _system.maxFrequencies(); }

    WindowStats runWindow(Seconds duration) override
    {
        return _system.runWindow(duration);
    }
    double instructionsRetired(int core) const override
    {
        return _system.instructionsRetired(core);
    }
    void creditInstructions(int core, double instr) override
    {
        _system.creditInstructions(core, instr);
    }

    Watts nameplatePeakPower() const override
    {
        return _system.nameplatePeakPower();
    }
    const std::vector<double> &
    accessProbabilities(int core) const override
    {
        return _system.accessProbabilities(core);
    }
    std::uint64_t memoryInFlight() const override
    {
        return _system.memoryInFlight();
    }
    std::uint64_t eventsProcessed() const override
    {
        return _system.eventsProcessed();
    }

  private:
    ManyCoreSystem _system;
};

} // namespace

std::unique_ptr<SimBackend>
makeSimBackend(SimConfig cfg, std::vector<AppProfile> apps,
               const EngineConfig &engine)
{
    if (engine.shards < 0)
        fatal("makeSimBackend: shards must be >= 0 (got %d)",
              engine.shards);
    if (engine.threads < 0)
        fatal("makeSimBackend: threads must be >= 0 (got %d)",
              engine.threads);

    if (engine.shards == 0) {
        if (cfg.numCores <= EngineConfig::kAutoMonolithicLimit)
            return std::make_unique<MonolithicBackend>(
                std::move(cfg), std::move(apps));
        // Auto beyond the monolithic tier: one shard per 64 cores.
        // The count only shapes scheduling granularity — results are
        // identical for any choice.
        const int auto_shards = (cfg.numCores + 63) / 64;
        return std::make_unique<ShardedSystem>(
            std::move(cfg), std::move(apps), auto_shards,
            engine.threads);
    }
    return std::make_unique<ShardedSystem>(std::move(cfg),
                                           std::move(apps),
                                           engine.shards,
                                           engine.threads);
}

} // namespace fastcap
