/**
 * @file
 * Simulation-engine abstraction: the operations the experiment
 * harness needs from a simulated many-core server, decoupled from how
 * the discrete-event simulation is executed.
 *
 * Two engines implement it:
 *
 *   - the *monolithic* engine (ManyCoreSystem behind an adapter): one
 *     global event queue, shared memory controllers, full cross-core
 *     queueing contention. The faithful substrate for the paper-scale
 *     configurations (<= 64 cores).
 *   - the *sharded* engine (ShardedSystem): cores partitioned into K
 *     shards that advance independent event queues between window
 *     boundaries, built for routine 256/1024-core capping runs. See
 *     sharded_system.hpp for its modeling contract.
 *
 * The harness composes either engine into epochs; which one runs is
 * an ExperimentConfig knob (`shards`), not a code path choice.
 */

#ifndef FASTCAP_SIM_ENGINE_BACKEND_HPP
#define FASTCAP_SIM_ENGINE_BACKEND_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/app_profile.hpp"
#include "sim/config.hpp"
#include "sim/system.hpp"
#include "util/units.hpp"

namespace fastcap {

/**
 * Engine selection and execution knobs, orthogonal to the simulated
 * system's SimConfig (two engines given the same SimConfig model the
 * same machine; they differ in how the DES advances it).
 */
struct EngineConfig
{
    /**
     * Shard count. 0 = auto: the monolithic engine up to
     * `kAutoMonolithicLimit` cores (bit-identical to every pre-engine
     * release), one shard per 64 cores above it. Any value >= 1
     * forces the sharded engine with min(shards, numCores) shards.
     * The sharded engine's output is byte-identical for every shard
     * count — the knob trades scheduling granularity, not results.
     */
    int shards = 0;

    /**
     * Worker threads the sharded engine fans its shards over.
     * 1 = serial (default; the right choice inside an already
     * parallel sweep), 0 = hardware concurrency. Output is
     * byte-identical for every thread count. Ignored by the
     * monolithic engine.
     */
    int threads = 1;

    /** Core count at or below which `shards = 0` stays monolithic. */
    static constexpr int kAutoMonolithicLimit = 64;
};

/**
 * A simulated many-core server as seen by the harness.
 *
 * The contract mirrors ManyCoreSystem's historical surface: windows
 * of bounded discrete-event simulation returning measured counters
 * and energy, DVFS actuation between windows, and mid-run application
 * rebinding for dynamic-workload scenarios.
 */
class SimBackend
{
  public:
    virtual ~SimBackend() = default;

    /** Engine identifier for diagnostics ("monolithic"/"sharded"). */
    virtual const char *engineName() const = 0;

    virtual const SimConfig &config() const = 0;
    virtual int numCores() const = 0;
    /** Logical memory controllers (WindowStats::memory entries). */
    virtual int numControllers() const = 0;
    virtual Seconds now() const = 0;

    /** The application bound to core i. */
    virtual const AppProfile &appOf(int core) const = 0;
    /** Rebind core i mid-run (job arrival/departure). */
    virtual void swapApp(int core, AppProfile app) = 0;

    // --- DVFS actuation ---------------------------------------------
    virtual void coreFreqIndex(int core, std::size_t idx) = 0;
    virtual std::size_t coreFreqIndex(int core) const = 0;
    virtual void memFreqIndex(std::size_t idx) = 0;
    virtual std::size_t memFreqIndex() const = 0;
    virtual Hertz memFrequency() const = 0;
    virtual void maxFrequencies() = 0;

    // --- simulation --------------------------------------------------
    /** Advance the DES by `duration` seconds and measure. */
    virtual WindowStats runWindow(Seconds duration) = 0;
    virtual double instructionsRetired(int core) const = 0;
    virtual void creditInstructions(int core, double instr) = 0;

    // --- power / topology -------------------------------------------
    virtual Watts nameplatePeakPower() const = 0;
    /** Access probabilities of core i over logical controllers. */
    virtual const std::vector<double> &
    accessProbabilities(int core) const = 0;
    virtual std::uint64_t memoryInFlight() const = 0;
    virtual std::uint64_t eventsProcessed() const = 0;
};

/**
 * Build the engine EngineConfig selects for this system. The
 * monolithic engine wraps a ManyCoreSystem; the sharded engine is a
 * ShardedSystem. See EngineConfig::shards for the auto rule.
 */
std::unique_ptr<SimBackend>
makeSimBackend(SimConfig cfg, std::vector<AppProfile> apps,
               const EngineConfig &engine = EngineConfig{});

} // namespace fastcap

#endif // FASTCAP_SIM_ENGINE_BACKEND_HPP
