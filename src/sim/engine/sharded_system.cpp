#include "sim/engine/sharded_system.hpp"

#include <algorithm>
#include <utility>

#include "sim/core.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace fastcap {

namespace {

/**
 * Deterministic per-lane RNG streams: derived from (seed, core index)
 * only, so a core's random trace is independent of the shard layout
 * and the thread count. Stream 2i drives the core, 2i+1 its lane
 * controller.
 */
Rng
laneRng(std::uint64_t seed, int core, int stream)
{
    const auto n = 2 * static_cast<std::uint64_t>(core) +
        static_cast<std::uint64_t>(stream);
    return Rng(splitmix64(seed, n));
}

} // namespace

ShardedSystem::ShardedSystem(SimConfig cfg,
                             std::vector<AppProfile> apps, int shards,
                             int threads)
    : _cfg(std::move(cfg)),
      _corePower(_cfg.corePower, _cfg.coreVoltage,
                 _cfg.coreLadder.max()),
      _memFreqIndex(_cfg.memLadder.maxIndex()), _threads(threads)
{
    _cfg.validate();
    const int n = _cfg.numCores;
    if (static_cast<int>(apps.size()) != n)
        fatal("ShardedSystem: %zu applications for %d cores",
              apps.size(), n);
    if (_cfg.interleave == InterleaveMode::Skewed)
        warn("ShardedSystem: skewed interleaving is not representable "
             "with per-core memory lanes; modeling the modulo "
             "core->controller mapping instead");

    const int k_ctrl = _cfg.numControllers;
    // Each lane carries a fair share of its *own* logical
    // controller's bus: controller c serves laneCount(c) lanes
    // (i % k_ctrl == c), so one lane's transfer takes laneCount(c)
    // times the logical per-line occupancy. Scaling by the
    // controller's own lane count — not the N/K average — bounds the
    // merged bus occupancy by the window even when n is not a
    // multiple of k_ctrl. Banks split the same way (floored at one;
    // they model latency, not the bandwidth bottleneck).
    _laneCfgs.reserve(static_cast<std::size_t>(k_ctrl));
    for (int c = 0; c < k_ctrl; ++c) {
        // A controller can be lane-less when numControllers exceeds
        // numCores (it then just idles, as on the monolithic engine);
        // floor at 1 so its config stays well-formed.
        const int lanes = std::max(
            1, n / k_ctrl + (c < n % k_ctrl ? 1 : 0));
        SimConfig lane_cfg = _cfg;
        lane_cfg.busBurstCycles =
            _cfg.busBurstCycles * static_cast<double>(lanes);
        lane_cfg.banksPerController =
            std::max(1, _cfg.banksPerController / lanes);
        _laneCfgs.push_back(std::move(lane_cfg));
    }
    // Every lane starts on the fair share of its controller's bus;
    // redivideBandwidth() retunes these scales at window barriers.
    _laneScale.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const int c = i % k_ctrl;
        _laneScale[static_cast<std::size_t>(i)] = std::max(
            1.0, static_cast<double>(n / k_ctrl +
                                     (c < n % k_ctrl ? 1 : 0)));
    }

    const int k = std::clamp(shards, 1, n);
    _shards.resize(static_cast<std::size_t>(k));
    _shardOf.resize(static_cast<std::size_t>(n));

    const int base = n / k;
    const int rem = n % k;
    int first = 0;
    for (int s = 0; s < k; ++s) {
        Shard &shard = _shards[static_cast<std::size_t>(s)];
        const int count = base + (s < rem ? 1 : 0);
        shard.firstCore = first;
        shard.lanes.resize(static_cast<std::size_t>(count));
        for (int j = 0; j < count; ++j) {
            const int core_id = first + j;
            _shardOf[static_cast<std::size_t>(core_id)] =
                static_cast<std::uint32_t>(s);
            Lane &ln = shard.lanes[static_cast<std::size_t>(j)];
            const SimConfig &lane_cfg =
                _laneCfgs[static_cast<std::size_t>(core_id % k_ctrl)];
            ln.app = std::move(apps[static_cast<std::size_t>(core_id)]);
            ln.controller = std::make_unique<MemoryController>(
                core_id, lane_cfg, shard.queue,
                laneRng(_cfg.seed, core_id, 1));
            ln.core = std::make_unique<Core>(
                core_id, lane_cfg, shard.queue,
                laneRng(_cfg.seed, core_id, 0));
            ln.core->runApp(&ln.app);
            MemoryController *ctrl = ln.controller.get();
            ln.core->submitCallback([ctrl](Request req) {
                ctrl->submit(std::move(req));
            });
            Core *core = ln.core.get();
            ln.controller->deliveryCallback(
                [core](const Request &req, Seconds at) {
                    core->onDataReturn(req, at);
                });
            ln.core->start();
        }
        first += count;
    }

    // Logical-controller power models and access rows, mirroring the
    // monolithic system's per-controller share split.
    const double share = 1.0 / static_cast<double>(k_ctrl);
    for (int c = 0; c < k_ctrl; ++c)
        _memPower.emplace_back(_cfg.memPower, share, _cfg.mcVoltage,
                               _cfg.memLadder.max());
    _accessProbs.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        std::vector<double> row(static_cast<std::size_t>(k_ctrl), 0.0);
        row[static_cast<std::size_t>(i % k_ctrl)] = 1.0;
        _accessProbs[static_cast<std::size_t>(i)] = std::move(row);
    }

    if (shardWorkers() > 1)
        _pool = std::make_unique<ThreadPool>(
            static_cast<std::size_t>(shardWorkers()));
}

ShardedSystem::~ShardedSystem() = default;

int
ShardedSystem::shardWorkers() const
{
    const int want = _threads == 0
        ? static_cast<int>(ThreadPool::hardwareWorkers())
        : _threads;
    return std::clamp(want, 1, numShards());
}

std::pair<int, int>
ShardedSystem::shardRange(int s) const
{
    const Shard &shard = _shards.at(static_cast<std::size_t>(s));
    return {shard.firstCore, static_cast<int>(shard.lanes.size())};
}

ShardedSystem::Lane &
ShardedSystem::lane(int core)
{
    Shard &shard = _shards[_shardOf.at(static_cast<std::size_t>(core))];
    return shard.lanes[static_cast<std::size_t>(core -
                                                shard.firstCore)];
}

const ShardedSystem::Lane &
ShardedSystem::lane(int core) const
{
    const Shard &shard =
        _shards[_shardOf.at(static_cast<std::size_t>(core))];
    return shard.lanes[static_cast<std::size_t>(core -
                                                shard.firstCore)];
}

const AppProfile &
ShardedSystem::appOf(int core) const
{
    return lane(core).app;
}

void
ShardedSystem::swapApp(int core, AppProfile app)
{
    // The core holds a stable pointer into its lane's app slot;
    // assigning the slot is the whole rebind (the next scheduled
    // think reads the new phases), exactly as on the monolithic
    // engine. Safe across shards because it happens between windows,
    // when no shard job is running.
    lane(core).app = std::move(app);
}

void
ShardedSystem::coreFreqIndex(int core, std::size_t idx)
{
    if (idx >= _cfg.coreLadder.size())
        panic("coreFreqIndex: index %zu out of range", idx);
    Core &c = *lane(core).core;
    c.frequency(_cfg.coreLadder.at(idx));
    c.freqIndex(idx);
}

std::size_t
ShardedSystem::coreFreqIndex(int core) const
{
    return lane(core).core->freqIndex();
}

void
ShardedSystem::memFreqIndex(std::size_t idx)
{
    if (idx >= _cfg.memLadder.size())
        panic("memFreqIndex: index %zu out of range", idx);
    _memFreqIndex = idx;
    const Hertz f = _cfg.memLadder.at(idx);
    for (Shard &shard : _shards)
        for (Lane &ln : shard.lanes)
            ln.controller->busFrequency(f);
}

Hertz
ShardedSystem::memFrequency() const
{
    return _cfg.memLadder.at(_memFreqIndex);
}

void
ShardedSystem::maxFrequencies()
{
    for (int i = 0; i < _cfg.numCores; ++i)
        coreFreqIndex(i, _cfg.coreLadder.maxIndex());
    memFreqIndex(_cfg.memLadder.maxIndex());
}

void
ShardedSystem::runShardWindow(Shard &shard, Seconds t_end)
{
    for (Lane &ln : shard.lanes) {
        ln.core->resetCounters();
        ln.controller->resetCounters();
    }
    shard.queue.runUntil(t_end);
    for (Lane &ln : shard.lanes) {
        ln.core->flushStall(t_end);
        // Fold bank/bus busy time into the counters while still
        // inside the shard job; the merge below only reads.
        ln.controller->finalizeWindow();
    }
}

WindowStats
ShardedSystem::runWindow(Seconds duration)
{
    if (duration <= 0.0)
        fatal("runWindow: non-positive duration");

    const Seconds t_end = _now + duration;

    // Fan the shards out; pool.wait() is the window barrier. Shard
    // jobs touch only their own shard's state, so any interleaving
    // yields the same per-lane counters.
    if (_pool) {
        for (Shard &shard : _shards) {
            Shard *sp = &shard;
            _pool->submit([sp, t_end] { runShardWindow(*sp, t_end); });
        }
        _pool->wait();
    } else {
        for (Shard &shard : _shards)
            runShardWindow(shard, t_end);
    }
    _now = t_end;

    // Deterministic merge, all on the calling thread: per-core stats
    // in core-index order, then logical-controller aggregation in
    // (controller, ascending core) order.
    WindowStats stats;
    stats.duration = duration;
    stats.backgroundPower = _cfg.backgroundPower;

    const int n = _cfg.numCores;
    double energy = 0.0;
    stats.cores.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const Lane &ln = lane(i);
        CoreWindowStats cs;
        cs.counters = ln.core->counters();
        cs.frequency = ln.core->frequency();
        cs.freqIndex = ln.core->freqIndex();
        cs.activity = ln.core->currentActivity();
        const Joules e = _corePower.windowEnergy(
            cs.frequency, cs.activity, cs.counters.busyTime,
            cs.counters.stallTime, duration);
        cs.totalPower = e / duration;
        cs.dynamicPower = cs.totalPower - _corePower.staticPower();
        energy += e;
        stats.cores.push_back(cs);
    }

    const int k_ctrl = _cfg.numControllers;
    const Hertz bus_freq = _cfg.memLadder.at(_memFreqIndex);
    stats.memory.reserve(static_cast<std::size_t>(k_ctrl));
    for (int c = 0; c < k_ctrl; ++c) {
        ControllerCounters agg;
        for (int i = c; i < n; i += k_ctrl) {
            const ControllerCounters &lc =
                lane(i).controller->counters();
            agg.reads += lc.reads;
            agg.writebacks += lc.writebacks;
            agg.qSum += lc.qSum;
            agg.qSamples += lc.qSamples;
            agg.uSum += lc.uSum;
            agg.uSamples += lc.uSamples;
            agg.serviceSum += lc.serviceSum;
            agg.serviceCount += lc.serviceCount;
            agg.responseSum += lc.responseSum;
            agg.responseCount += lc.responseCount;
            agg.bankBusyTime += lc.bankBusyTime;
            // Lane bus occupancy is in lane-bus seconds (the scaled
            // share); convert to logical-bus seconds so downstream
            // utilisation math matches the monolithic engine's. The
            // scale in effect *during* the window applies — the
            // re-division below only shapes the next one.
            agg.busBusyTime += lc.busBusyTime /
                _laneScale[static_cast<std::size_t>(i)];
        }

        MemWindowStats ms;
        ms.counters = agg;
        ms.busFrequency = bus_freq;
        ms.transferTime = _cfg.busBurstCycles / bus_freq;
        ms.busUtilisation = agg.busBusyTime / duration;
        const std::uint64_t accesses = agg.reads + agg.writebacks;
        const Joules e = _memPower[static_cast<std::size_t>(c)]
                             .windowEnergy(bus_freq, accesses,
                                           duration);
        ms.totalPower = e / duration;
        ms.dynamicPower = ms.totalPower -
            _memPower[static_cast<std::size_t>(c)].staticPower();
        energy += e;
        stats.memory.push_back(ms);
    }

    energy += _cfg.backgroundPower * duration;
    stats.totalEnergy = energy;

    // Observe-only: window count plus per-shard cumulative event
    // counts, published on the merge thread after the barrier so
    // each gauge has one writer per window.
    if (telemetry::enabled()) {
        telemetry::Registry &reg = telemetry::Registry::global();
        reg.counter("/engine/windows").add();
        for (std::size_t s = 0; s < _shards.size(); ++s) {
            reg.gauge("/engine/shard/" + std::to_string(s) +
                      "/events")
                .set(static_cast<double>(
                    _shards[s].queue.processed()));
        }
    }

    // Demand-driven bandwidth re-division at the barrier: the merged
    // window's per-lane access counts decide next window's shares.
    redivideBandwidth();
    return stats;
}

void
ShardedSystem::redivideBandwidth()
{
    if (telemetry::enabled())
        telemetry::Registry::global()
            .counter("/engine/lane_merges")
            .add();
    const int n = _cfg.numCores;
    const int k_ctrl = _cfg.numControllers;
    std::vector<double> demand;
    std::vector<int> cores;
    for (int c = 0; c < k_ctrl; ++c) {
        demand.clear();
        cores.clear();
        double total = 0.0;
        for (int i = c; i < n; i += k_ctrl) {
            const ControllerCounters &lc =
                lane(i).controller->counters();
            const double d =
                static_cast<double>(lc.reads + lc.writebacks);
            demand.push_back(d);
            cores.push_back(i);
            total += d;
        }
        if (cores.size() < 2)
            continue; // a single lane always owns the whole bus
        const double lanes = static_cast<double>(cores.size());
        // Idle controller: fall back to the fair share (also the
        // weight every lane starts from, so an idle first window
        // changes nothing).
        // Floor at a tenth of the fair share: a cold lane keeps
        // enough bandwidth to ramp back up, and weights stay
        // positive. Renormalize so the shares sum to 1 — the merged
        // logical-bus occupancy stays bounded by the window.
        double wsum = 0.0;
        std::vector<double> w(cores.size());
        for (std::size_t j = 0; j < cores.size(); ++j) {
            w[j] = total > 0.0
                ? std::max(demand[j] / total, 0.1 / lanes)
                : 1.0 / lanes;
            wsum += w[j];
        }
        for (std::size_t j = 0; j < cores.size(); ++j) {
            const double share = w[j] / wsum;
            lane(cores[j]).controller->busBurstCycles(
                _cfg.busBurstCycles / share);
            _laneScale[static_cast<std::size_t>(cores[j])] =
                1.0 / share;
        }
    }
}

double
ShardedSystem::instructionsRetired(int core) const
{
    return lane(core).core->instructionsRetired();
}

void
ShardedSystem::creditInstructions(int core, double instr)
{
    lane(core).core->creditInstructions(instr);
}

Watts
ShardedSystem::nameplatePeakPower() const
{
    // Same arithmetic as the monolithic engine: the nameplate is a
    // property of the modeled machine, not of the DES execution.
    double peak = _cfg.backgroundPower;
    peak += static_cast<double>(_cfg.numCores) *
        _corePower.peakPower();
    const Seconds transfer =
        _cfg.busBurstCycles / _cfg.memLadder.max();
    for (const MemoryPowerModel &pm : _memPower)
        peak += pm.peakPower(1.0 / transfer);
    return peak;
}

const std::vector<double> &
ShardedSystem::accessProbabilities(int core) const
{
    return _accessProbs.at(static_cast<std::size_t>(core));
}

std::uint64_t
ShardedSystem::memoryInFlight() const
{
    std::uint64_t in_flight = 0;
    for (const Shard &shard : _shards)
        for (const Lane &ln : shard.lanes)
            in_flight += ln.controller->inFlight();
    return in_flight;
}

std::uint64_t
ShardedSystem::eventsProcessed() const
{
    std::uint64_t processed = 0;
    for (const Shard &shard : _shards)
        processed += shard.queue.processed();
    return processed;
}

} // namespace fastcap
