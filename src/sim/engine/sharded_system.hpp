/**
 * @file
 * Sharded simulation engine for routine 256/1024-core capping runs.
 *
 * The monolithic ManyCoreSystem advances every core through one
 * serial event queue, which caps experiment grids at ~64 cores. This
 * engine partitions the cores into K contiguous shards, each with its
 * own EventQueue, and advances the shards independently between
 * window boundaries; windows are the natural barriers because cores
 * only interact through the per-epoch policy decision the harness
 * applies between windows.
 *
 * Modeling contract (the approximation that buys shard independence;
 * docs/ARCHITECTURE.md "Simulation engine"):
 *
 *   - Each core owns a private *memory lane*: a MemoryController
 *     carrying a share of its logical controller's bus (transfer
 *     time scaled so the merged occupancy never exceeds the window)
 *     and at least one bank. Cross-core memory contention is
 *     represented by that bandwidth share instead of simulated
 *     queueing, so lanes — and therefore shards — share no mutable
 *     state. The first window uses the fair 1/laneCount share; every
 *     window barrier then re-divides each logical bus across its
 *     lanes in proportion to the lanes' measured demand (reads +
 *     writebacks) of the window just merged, floored at a tenth of
 *     the fair share, so skewed workloads stop over-throttling hot
 *     lanes. Weights are computed from merged per-lane counters on
 *     the calling thread and always sum to 1 per controller —
 *     determinism and the occupancy bound both survive re-division.
 *   - Core i maps to *logical* controller (i mod numControllers).
 *     Window stats aggregate the lanes of a logical controller (in
 *     ascending core order) back into numControllers
 *     MemWindowStats, so the harness, the online fitter and the
 *     policies see the same shapes as on the monolithic engine.
 *     Skewed interleaving is not representable here (the engine warns
 *     and models the modulo mapping).
 *   - All randomness is per-lane, derived from (seed, core index)
 *     only. Event interleaving inside a shard never touches
 *     cross-lane state.
 *
 * Determinism contract (enforced by tests/engine/): CSV/JSON output
 * of any experiment on this engine is byte-identical for every shard
 * count and every thread count. Shards are merged in fixed shard
 * order and per-core stats accumulate in original core-index order;
 * the thread pool only runs shard jobs, never the merge.
 */

#ifndef FASTCAP_SIM_ENGINE_SHARDED_SYSTEM_HPP
#define FASTCAP_SIM_ENGINE_SHARDED_SYSTEM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine/backend.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_controller.hpp"
#include "sim/power.hpp"
#include "util/thread_pool.hpp"

namespace fastcap {

class Core;

/**
 * The sharded many-core engine. See the file comment for the
 * modeling and determinism contracts.
 */
class ShardedSystem : public SimBackend
{
  public:
    /**
     * @param cfg     validated configuration (the modeled machine)
     * @param apps    one application per core
     * @param shards  shard count, clamped to [1, numCores]
     * @param threads shard workers; 0 = hardware concurrency, 1 =
     *                serial. Output is identical either way.
     */
    ShardedSystem(SimConfig cfg, std::vector<AppProfile> apps,
                  int shards, int threads);
    ~ShardedSystem() override;

    ShardedSystem(const ShardedSystem &) = delete;
    ShardedSystem &operator=(const ShardedSystem &) = delete;

    const char *engineName() const override { return "sharded"; }
    const SimConfig &config() const override { return _cfg; }
    int numCores() const override { return _cfg.numCores; }
    int numControllers() const override { return _cfg.numControllers; }
    Seconds now() const override { return _now; }

    const AppProfile &appOf(int core) const override;
    void swapApp(int core, AppProfile app) override;

    void coreFreqIndex(int core, std::size_t idx) override;
    std::size_t coreFreqIndex(int core) const override;
    void memFreqIndex(std::size_t idx) override;
    std::size_t memFreqIndex() const override { return _memFreqIndex; }
    Hertz memFrequency() const override;
    void maxFrequencies() override;

    WindowStats runWindow(Seconds duration) override;
    double instructionsRetired(int core) const override;
    void creditInstructions(int core, double instr) override;

    Watts nameplatePeakPower() const override;
    const std::vector<double> &
    accessProbabilities(int core) const override;
    std::uint64_t memoryInFlight() const override;
    std::uint64_t eventsProcessed() const override;

    // --- engine introspection (tests, benches) ----------------------
    int numShards() const { return static_cast<int>(_shards.size()); }
    /** Effective worker count shard jobs fan out over. */
    int shardWorkers() const;
    /** Core range [first, first + count) of shard s. */
    std::pair<int, int> shardRange(int s) const;

  private:
    /**
     * One core's private slice of the machine: the core, its memory
     * lane, and the application slot the core's pointer refers to.
     * Lane addresses are stable (the vectors never resize after
     * construction).
     */
    struct Lane
    {
        std::unique_ptr<Core> core;
        std::unique_ptr<MemoryController> controller;
        AppProfile app;
    };

    /** A contiguous block of lanes advancing one event queue. */
    struct Shard
    {
        int firstCore = 0;
        EventQueue queue;
        std::vector<Lane> lanes;
    };

    Lane &lane(int core);
    const Lane &lane(int core) const;
    /** Advance one shard to t_end and finalize its window counters. */
    static void runShardWindow(Shard &shard, Seconds t_end);
    /**
     * Re-divide every logical bus across its lanes from the demand
     * (reads + writebacks) the merged window measured. Runs on the
     * calling thread at the window barrier; inputs are per-lane
     * counters only, so the new weights are identical for every
     * shard layout and thread count.
     */
    void redivideBandwidth();

    SimConfig _cfg;
    /**
     * Per-logical-controller lane configs handed to cores and
     * controllers (index: core % numControllers): busBurstCycles
     * scaled to that controller's per-lane bandwidth share,
     * banksPerController scaled to the per-lane bank share. Scaling
     * by the controller's own lane count — not the N/K average —
     * keeps every logical bus's aggregated occupancy <= the window
     * even when numCores is not divisible by numControllers. Lanes
     * keep references into this vector (sized once, never resized).
     */
    std::vector<SimConfig> _laneCfgs;
    /**
     * Lane-to-logical bus-occupancy scale per core: 1 / the lane's
     * current bandwidth weight. Starts at the controller's lane count
     * (the fair share) and is retuned by redivideBandwidth() at every
     * window barrier. The merge divides a lane's bus busy time by the
     * scale that was in effect during the window.
     */
    std::vector<double> _laneScale;

    std::vector<Shard> _shards;
    /** Core index -> owning shard, for O(1) lane lookup. */
    std::vector<std::uint32_t> _shardOf;
    CorePowerModel _corePower;
    std::vector<MemoryPowerModel> _memPower; //!< per logical controller
    std::vector<std::vector<double>> _accessProbs; //!< one-hot rows
    std::size_t _memFreqIndex = 0;
    Seconds _now = 0.0;
    int _threads = 1;
    /** Created only when more than one worker is requested. */
    std::unique_ptr<ThreadPool> _pool;
};

} // namespace fastcap

#endif // FASTCAP_SIM_ENGINE_SHARDED_SYSTEM_HPP
