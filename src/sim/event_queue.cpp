#include "sim/event_queue.hpp"

#include <utility>

#include "util/logging.hpp"

namespace fastcap {

void
EventQueue::schedule(Seconds when, Callback cb)
{
    if (when < _now)
        panic("EventQueue::schedule: event in the past (%g < %g)",
              when, _now);
    _heap.push(Entry{when, _seq++, std::move(cb)});
}

std::uint64_t
EventQueue::runUntil(Seconds t_end)
{
    std::uint64_t ran = 0;
    while (!_heap.empty() && _heap.top().when <= t_end) {
        // Copy out before pop so the callback may schedule freely.
        Entry e = std::move(const_cast<Entry &>(_heap.top()));
        _heap.pop();
        _now = e.when;
        e.cb();
        ++ran;
        ++_processed;
    }
    if (t_end > _now)
        _now = t_end;
    return ran;
}

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    Entry e = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    _now = e.when;
    e.cb();
    ++_processed;
    return true;
}

void
EventQueue::clear()
{
    while (!_heap.empty())
        _heap.pop();
}

} // namespace fastcap
