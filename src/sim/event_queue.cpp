#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace fastcap {

void
EventQueue::schedule(Seconds when, Callback cb)
{
    if (when < _now)
        panic("EventQueue::schedule: event in the past (%g < %g)",
              when, _now);
    _heap.push_back(Entry{when, _seq++, std::move(cb)});
    std::push_heap(_heap.begin(), _heap.end(), Later{});
}

EventQueue::Entry
EventQueue::popEntry()
{
    std::pop_heap(_heap.begin(), _heap.end(), Later{});
    Entry e = std::move(_heap.back());
    _heap.pop_back();
    return e;
}

std::uint64_t
EventQueue::runUntil(Seconds t_end)
{
    std::uint64_t ran = 0;
    while (!_heap.empty() && _heap.front().when <= t_end) {
        // Extract before running so the callback may schedule freely.
        Entry e = popEntry();
        _now = e.when;
        e.cb();
        ++ran;
        ++_processed;
    }
    if (t_end > _now)
        _now = t_end;
    return ran;
}

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    Entry e = popEntry();
    _now = e.when;
    e.cb();
    ++_processed;
    return true;
}

void
EventQueue::clear()
{
    _heap.clear();
}

} // namespace fastcap
