/**
 * @file
 * Discrete-event simulation core.
 *
 * A single time-ordered queue of callbacks with deterministic FIFO
 * tie-breaking for equal timestamps. The whole simulator is
 * single-threaded; determinism (same seed, same event order, same
 * results) is a hard requirement for reproducing EXPERIMENTS.md.
 */

#ifndef FASTCAP_SIM_EVENT_QUEUE_HPP
#define FASTCAP_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "util/units.hpp"

namespace fastcap {

/**
 * Time-ordered event queue.
 *
 * Events are closures scheduled at absolute simulated times. Events
 * scheduled for the same instant fire in scheduling order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time in seconds. */
    Seconds now() const { return _now; }

    /** Total events executed since construction. */
    std::uint64_t processed() const { return _processed; }

    /** Number of pending events. */
    std::size_t pending() const { return _heap.size(); }
    bool empty() const { return _heap.empty(); }

    /**
     * Schedule `cb` at absolute time `when`.
     *
     * Scheduling in the past is a library bug and panics; scheduling
     * exactly at now() is allowed and fires on the next run step.
     */
    void schedule(Seconds when, Callback cb);

    /** Schedule `cb` at now() + delay. */
    void scheduleAfter(Seconds delay, Callback cb)
    {
        schedule(_now + delay, std::move(cb));
    }

    /**
     * Run all events with timestamp <= t_end, then advance now() to
     * t_end even if the queue drains early (the remaining interval is
     * idle time).
     *
     * @return number of events processed by this call.
     */
    std::uint64_t runUntil(Seconds t_end);

    /**
     * Run a single event if one is pending.
     * @return true if an event was executed.
     */
    bool step();

    /** Drop all pending events (used between experiments). */
    void clear();

  private:
    struct Entry
    {
        Seconds when = 0.0;
        std::uint64_t seq = 0;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Move the earliest entry out of the heap. */
    Entry popEntry();

    /**
     * Binary min-heap over (when, seq), managed with std::push_heap /
     * std::pop_heap rather than std::priority_queue: priority_queue
     * only exposes a const top(), which forces a const_cast to move
     * the callback out. pop_heap hands us the extracted entry as the
     * mutable back element, so extraction needs no casts and the
     * callback is moved, never copied.
     */
    std::vector<Entry> _heap;
    Seconds _now = 0.0;
    std::uint64_t _seq = 0;
    std::uint64_t _processed = 0;
};

} // namespace fastcap

#endif // FASTCAP_SIM_EVENT_QUEUE_HPP
