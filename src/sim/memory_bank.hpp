/**
 * @file
 * One DRAM bank with a FIFO request queue and transfer blocking.
 *
 * Per the paper's queuing model (Figure 1): a bank serves the request
 * at its head, and once service finishes it may not start the next
 * request until the served request has acquired the shared bus and
 * completed its transfer ("transfer blocking").
 */

#ifndef FASTCAP_SIM_MEMORY_BANK_HPP
#define FASTCAP_SIM_MEMORY_BANK_HPP

#include <deque>
#include <optional>

#include "sim/request.hpp"
#include "util/units.hpp"

namespace fastcap {

/**
 * A single memory bank. Owned and driven by MemoryController; the
 * bank itself only tracks queue/service/blocking state and busy time.
 */
class MemoryBank
{
  public:
    explicit MemoryBank(int id) : _id(id) {}

    int id() const { return _id; }

    /**
     * Add a request to the tail of the bank queue.
     * @return queue depth after insertion, counting an in-service
     *         request — the paper's Q sample at arrival.
     */
    std::size_t
    enqueue(Request req)
    {
        _queue.push_back(std::move(req));
        return depth();
    }

    /** True if a new service can begin right now. */
    bool
    canStart() const
    {
        return !_serving.has_value() && !_blocked && !_queue.empty();
    }

    /**
     * Pop the head request and mark it in service.
     * Caller schedules the completion event.
     */
    Request
    startService(Seconds now)
    {
        Request req = std::move(_queue.front());
        _queue.pop_front();
        req.serveTime = now;
        _serviceStart = now;
        _serving = req;
        return req;
    }

    /**
     * Service done: the request leaves for the bus queue and the bank
     * becomes blocked until that transfer completes.
     */
    Request
    finishService(Seconds now)
    {
        Request req = std::move(*_serving);
        _serving.reset();
        _blocked = true;
        _busyTime += now - _serviceStart;
        req.readyTime = now;
        return req;
    }

    /** The bank's outstanding transfer completed; it may serve again. */
    void unblock() { _blocked = false; }

    bool serving() const { return _serving.has_value(); }
    bool blocked() const { return _blocked; }

    /** Waiting requests plus any in-service request. */
    std::size_t
    depth() const
    {
        return _queue.size() + (_serving.has_value() ? 1u : 0u);
    }

    std::size_t queued() const { return _queue.size(); }

    /** Cumulative time spent actively serving requests. */
    Seconds busyTime() const { return _busyTime; }

    /** Reset the busy-time accumulator (window boundaries). */
    void resetBusyTime() { _busyTime = 0.0; }

  private:
    int _id = 0;
    std::deque<Request> _queue;
    std::optional<Request> _serving;
    bool _blocked = false;
    Seconds _serviceStart = 0.0;
    Seconds _busyTime = 0.0;
};

} // namespace fastcap

#endif // FASTCAP_SIM_MEMORY_BANK_HPP
