/**
 * @file
 * The shared memory data bus: first-come-first-serve, one transfer at
 * a time. Transfer duration is set by the controller from the current
 * memory (bus) frequency — this is the DVFS-scaled `s_b` of the
 * paper's model.
 */

#ifndef FASTCAP_SIM_MEMORY_BUS_HPP
#define FASTCAP_SIM_MEMORY_BUS_HPP

#include <deque>
#include <optional>

#include "sim/request.hpp"
#include "util/units.hpp"

namespace fastcap {

/**
 * FCFS shared bus. Owned and driven by MemoryController.
 */
class MemoryBus
{
  public:
    /**
     * A request finished bank service and waits for the bus.
     * @return queue length after insertion, including the departing
     *         request itself — the paper's U sample.
     */
    std::size_t
    enqueue(Request req)
    {
        _queue.push_back(std::move(req));
        return _queue.size();
    }

    bool idle() const { return !_transferring.has_value(); }
    bool canStart() const { return idle() && !_queue.empty(); }
    std::size_t queued() const { return _queue.size(); }

    /** Begin the next transfer; caller schedules its completion. */
    Request
    startTransfer(Seconds now)
    {
        Request req = std::move(_queue.front());
        _queue.pop_front();
        _transferStart = now;
        _transferring = req;
        return req;
    }

    /** Complete the in-flight transfer and return the request. */
    Request
    finishTransfer(Seconds now)
    {
        Request req = std::move(*_transferring);
        _transferring.reset();
        _busyTime += now - _transferStart;
        return req;
    }

    /** Cumulative time the bus spent transferring. */
    Seconds busyTime() const { return _busyTime; }
    void resetBusyTime() { _busyTime = 0.0; }

  private:
    std::deque<Request> _queue;
    std::optional<Request> _transferring;
    Seconds _transferStart = 0.0;
    Seconds _busyTime = 0.0;
};

} // namespace fastcap

#endif // FASTCAP_SIM_MEMORY_BUS_HPP
