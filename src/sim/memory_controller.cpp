#include "sim/memory_controller.hpp"

#include <utility>

#include "util/logging.hpp"

namespace fastcap {

MemoryController::MemoryController(int id, const SimConfig &cfg,
                                   EventQueue &queue, Rng rng)
    : _id(id), _cfg(cfg), _queue(queue), _rng(rng),
      _busFreq(cfg.memLadder.max()), _busBurstCycles(cfg.busBurstCycles)
{
    _banks.reserve(static_cast<std::size_t>(cfg.banksPerController));
    for (int b = 0; b < cfg.banksPerController; ++b)
        _banks.emplace_back(b);
}

void
MemoryController::busFrequency(Hertz f)
{
    if (f <= 0.0)
        panic("MemoryController: non-positive bus frequency");
    _busFreq = f;
}

void
MemoryController::busBurstCycles(double cycles)
{
    if (cycles <= 0.0)
        panic("MemoryController: non-positive bus burst cycles");
    _busBurstCycles = cycles;
}

Seconds
MemoryController::drawServiceTime()
{
    // Row-buffer hit vs miss mix; DRAM array timing does not scale
    // with the bus frequency (MemScale scales bus/interface only).
    const bool hit = _rng.chance(_cfg.rowHitRate);
    return hit ? _cfg.bankRowHitTime : _cfg.bankRowMissTime;
}

void
MemoryController::submit(Request req)
{
    req.controllerId = _id;
    const int bank_id = static_cast<int>(
        _rng.below(static_cast<std::uint64_t>(_banks.size())));
    req.bankId = bank_id;
    req.arriveTime = _queue.now();

    ++_inFlight;
    if (req.type == RequestType::Read)
        ++_counters.reads;
    else
        ++_counters.writebacks;

    MemoryBank &bank = _banks[static_cast<std::size_t>(bank_id)];
    const std::size_t depth = bank.enqueue(std::move(req));

    // Q: bank queue length sampled at arrival, including the new
    // request (Section III-A of the paper).
    _counters.qSum += static_cast<double>(depth);
    ++_counters.qSamples;

    tryStartBank(bank_id);
}

void
MemoryController::tryStartBank(int bank_id)
{
    MemoryBank &bank = _banks[static_cast<std::size_t>(bank_id)];
    if (!bank.canStart())
        return;

    bank.startService(_queue.now());
    const Seconds svc = drawServiceTime();
    _counters.serviceSum += svc;
    ++_counters.serviceCount;

    _queue.scheduleAfter(svc, [this, bank_id] {
        onBankServiceDone(bank_id);
    });
}

void
MemoryController::onBankServiceDone(int bank_id)
{
    MemoryBank &bank = _banks[static_cast<std::size_t>(bank_id)];
    Request req = bank.finishService(_queue.now());

    // U: requests waiting for the bus, including the departing one.
    const std::size_t waiting = _bus.enqueue(std::move(req));
    _counters.uSum += static_cast<double>(waiting);
    ++_counters.uSamples;

    tryStartBus();
}

void
MemoryController::tryStartBus()
{
    if (!_bus.canStart())
        return;
    _bus.startTransfer(_queue.now());
    _queue.scheduleAfter(transferTime(), [this] { onTransferDone(); });
}

void
MemoryController::onTransferDone()
{
    const Seconds now = _queue.now();
    Request req = _bus.finishTransfer(now);

    // Transfer blocking released: the source bank may serve again.
    MemoryBank &bank = _banks[static_cast<std::size_t>(req.bankId)];
    bank.unblock();
    tryStartBank(req.bankId);

    --_inFlight;
    if (req.type == RequestType::Read) {
        _counters.responseSum += now - req.arriveTime;
        ++_counters.responseCount;
        if (_deliver)
            _deliver(req, now);
    }

    tryStartBus();
}

const ControllerCounters &
MemoryController::finalizeWindow()
{
    _counters.bankBusyTime = 0.0;
    for (const MemoryBank &b : _banks)
        _counters.bankBusyTime += b.busyTime();
    _counters.busBusyTime = _bus.busyTime();
    return _counters;
}

void
MemoryController::resetCounters()
{
    // Preserve queue state; only measurement accumulators reset.
    for (MemoryBank &b : _banks)
        b.resetBusyTime();
    _bus.resetBusyTime();
    _counters = ControllerCounters{};
}

} // namespace fastcap
