/**
 * @file
 * Memory controller: orchestrates banks and the shared bus, applies
 * memory DVFS, and measures the MemScale-style counters FastCap
 * consumes (Q, U, s_m, response times, utilisations).
 */

#ifndef FASTCAP_SIM_MEMORY_CONTROLLER_HPP
#define FASTCAP_SIM_MEMORY_CONTROLLER_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_bank.hpp"
#include "sim/memory_bus.hpp"
#include "sim/request.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace fastcap {

/**
 * Counters accumulated by a controller during one measurement window.
 * These are the performance counters of [3] (MemScale) that FastCap
 * reads each epoch.
 */
struct ControllerCounters
{
    std::uint64_t reads = 0;       //!< demand misses completed arrival
    std::uint64_t writebacks = 0;  //!< writebacks accepted
    double qSum = 0.0;             //!< sum of bank-queue-depth samples
    std::uint64_t qSamples = 0;
    double uSum = 0.0;             //!< sum of bus-queue-depth samples
    std::uint64_t uSamples = 0;
    Seconds serviceSum = 0.0;      //!< total bank service time drawn
    std::uint64_t serviceCount = 0;
    Seconds responseSum = 0.0;     //!< bank-arrival to data-delivery
    std::uint64_t responseCount = 0;
    Seconds bankBusyTime = 0.0;    //!< summed across banks
    Seconds busBusyTime = 0.0;

    /** Mean bank queue depth seen at request arrival (paper's Q). */
    double
    meanQ() const
    {
        return qSamples ? qSum / static_cast<double>(qSamples) : 1.0;
    }

    /** Mean bus queue length at bank departure (paper's U). */
    double
    meanU() const
    {
        return uSamples ? uSum / static_cast<double>(uSamples) : 1.0;
    }

    /** Mean bank service time (paper's s_m). */
    Seconds
    meanServiceTime(Seconds fallback) const
    {
        return serviceCount
            ? serviceSum / static_cast<double>(serviceCount)
            : fallback;
    }

    /** Mean measured response time of completed reads. */
    Seconds
    meanResponse() const
    {
        return responseCount
            ? responseSum / static_cast<double>(responseCount)
            : 0.0;
    }
};

/**
 * One memory controller with `banksPerController` banks and one
 * shared data bus exhibiting transfer blocking.
 */
class MemoryController
{
  public:
    /** Callback type for completed demand reads (delivered lines). */
    using DeliveryFn = std::function<void(const Request &, Seconds)>;

    MemoryController(int id, const SimConfig &cfg, EventQueue &queue,
                     Rng rng);

    int id() const { return _id; }
    int numBanks() const { return static_cast<int>(_banks.size()); }

    /** Install the read-completion callback (routes to cores). */
    void deliveryCallback(DeliveryFn fn) { _deliver = std::move(fn); }

    /** Set the bus frequency (memory DVFS); takes effect for new
     *  transfers. */
    void busFrequency(Hertz f);
    Hertz busFrequency() const { return _busFreq; }

    /**
     * Bus cycles one cache-line transfer occupies. Initialized from
     * the config; the sharded engine's per-epoch bandwidth
     * re-division retunes it at window barriers (a larger value
     * models a smaller share of the logical bus). Takes effect for
     * new transfers.
     */
    void busBurstCycles(double cycles);
    double busBurstCycles() const { return _busBurstCycles; }

    /** Transfer time of one cache line at the current frequency. */
    Seconds transferTime() const { return _busBurstCycles / _busFreq; }

    /** Transfer time at an arbitrary frequency (for peak-power calc). */
    Seconds
    transferTimeAt(Hertz f) const
    {
        return _cfg.busBurstCycles / f;
    }

    /**
     * Accept a request from a core. The bank is chosen by uniform
     * address interleaving across this controller's banks.
     */
    void submit(Request req);

    /** Counters accumulated since the last resetCounters(). */
    const ControllerCounters &counters() const { return _counters; }

    /**
     * Fold the banks' and bus' busy-time accumulators into the
     * counters and return them; call at a window boundary before
     * reading power-relevant utilisations.
     */
    const ControllerCounters &finalizeWindow();

    /** Zero the window counters (busy times included). */
    void resetCounters();

    /** Requests currently inside the controller (queues + service +
     *  bus). Used by conservation tests. */
    std::uint64_t inFlight() const { return _inFlight; }

  private:
    void tryStartBank(int bank_id);
    void onBankServiceDone(int bank_id);
    void tryStartBus();
    void onTransferDone();
    Seconds drawServiceTime();

    int _id = 0;
    const SimConfig &_cfg;
    EventQueue &_queue;
    Rng _rng;
    Hertz _busFreq = 0.0;
    double _busBurstCycles = 0.0;
    std::vector<MemoryBank> _banks;
    MemoryBus _bus;
    DeliveryFn _deliver;
    ControllerCounters _counters;
    std::uint64_t _inFlight = 0;
};

} // namespace fastcap

#endif // FASTCAP_SIM_MEMORY_CONTROLLER_HPP
