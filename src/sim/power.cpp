#include "sim/power.hpp"

#include "util/logging.hpp"

namespace fastcap {

CorePowerModel::CorePowerModel(const CorePowerConfig &cfg,
                               const VoltageCurve &curve, Hertz f_max)
    : _cfg(cfg), _curve(curve), _fMax(f_max)
{
    if (f_max <= 0.0)
        fatal("CorePowerModel: non-positive max frequency");
}

Watts
CorePowerModel::dynamicPower(Hertz f, double activity) const
{
    // C_eff * a * V^2 * f, normalized so (f_max, V_max, a=1) gives
    // dynMax.
    return _cfg.dynMax * activity * _curve.squaredRatio(f) * (f / _fMax);
}

Joules
CorePowerModel::windowEnergy(Hertz f, double activity, Seconds busy,
                             Seconds stalled, Seconds window) const
{
    const Watts dyn = dynamicPower(f, activity);
    return dyn * busy + dyn * _cfg.stallFactor * stalled +
        _cfg.staticPower * window;
}

Watts
CorePowerModel::peakPower() const
{
    return _cfg.dynMax + _cfg.staticPower;
}

MemoryPowerModel::MemoryPowerModel(const MemoryPowerConfig &cfg,
                                   double share,
                                   const VoltageCurve &curve, Hertz f_max)
    : _cfg(cfg), _share(share), _curve(curve), _fMax(f_max)
{
    if (share <= 0.0 || share > 1.0)
        fatal("MemoryPowerModel: share must be in (0, 1]");
}

Watts
MemoryPowerModel::frequencyPower(Hertz bus_freq) const
{
    const double x = bus_freq / _fMax;
    // Interface (PLLs, registers, termination) scales ~linearly with
    // bus frequency: this is the beta ~= 1 term of Eq. 3. The MC is a
    // logic block scaling like V^2 * f.
    const Watts interface = _cfg.interfaceMax * _share * x;
    const Watts mc = _cfg.mcMax * _share *
        _curve.squaredRatio(bus_freq) * x;
    return interface + mc;
}

Joules
MemoryPowerModel::windowEnergy(Hertz bus_freq, std::uint64_t accesses,
                               Seconds window) const
{
    return _cfg.accessEnergy * static_cast<double>(accesses) +
        frequencyPower(bus_freq) * window +
        staticPower() * window;
}

Watts
MemoryPowerModel::peakPower(double peak_access_rate) const
{
    return _cfg.accessEnergy * peak_access_rate +
        frequencyPower(_fMax) + staticPower();
}

} // namespace fastcap
