/**
 * @file
 * Ground-truth power accounting for the simulated system.
 *
 * This is the simulator side of the power story: given utilisations
 * measured by the DES, it computes the energy each component drew.
 * FastCap's governor never reads these models directly — it re-fits
 * Eq. 2 / Eq. 3 parameters online from (frequency, measured power)
 * samples, as in the paper.
 *
 * Core dynamic power follows C_eff * activity * V(f)^2 * f, which over
 * the 2.2-4.0 GHz / 0.65-1.2 V range yields an effective exponent
 * alpha ~= 3 (the paper reports 2-3). Memory power combines
 * frequency-proportional interface power (beta ~= 1, bus/DIMM
 * frequency-only scaling), V^2*f memory-controller power, per-access
 * energy, and static power.
 */

#ifndef FASTCAP_SIM_POWER_HPP
#define FASTCAP_SIM_POWER_HPP

#include <cstdint>

#include "sim/config.hpp"
#include "util/units.hpp"

namespace fastcap {

/**
 * Per-core power calculator (simulator ground truth).
 */
class CorePowerModel
{
  public:
    CorePowerModel(const CorePowerConfig &cfg, const VoltageCurve &curve,
                   Hertz f_max);

    /** Dynamic power while executing at frequency f and activity a. */
    Watts dynamicPower(Hertz f, double activity) const;

    /**
     * Energy over a window split into busy and stalled time. A
     * stalled core still burns stallFactor of its dynamic power.
     */
    Joules windowEnergy(Hertz f, double activity, Seconds busy,
                        Seconds stalled, Seconds window) const;

    Watts staticPower() const { return _cfg.staticPower; }

    /** Nameplate maximum (activity 1, max frequency, busy). */
    Watts peakPower() const;

  private:
    CorePowerConfig _cfg;
    VoltageCurve _curve;
    Hertz _fMax = 0.0;
};

/**
 * Memory-subsystem power calculator for one controller's share
 * (simulator ground truth). Config totals are split across
 * controllers by the system.
 */
class MemoryPowerModel
{
  public:
    /**
     * @param cfg        subsystem totals
     * @param share      fraction of the subsystem this instance models
     * @param curve      MC voltage curve (indexed by bus frequency)
     * @param f_max      maximum bus frequency
     */
    MemoryPowerModel(const MemoryPowerConfig &cfg, double share,
                     const VoltageCurve &curve, Hertz f_max);

    /**
     * Energy for a window: access energy plus frequency-scaled
     * interface and MC power plus static power.
     */
    Joules windowEnergy(Hertz bus_freq, std::uint64_t accesses,
                        Seconds window) const;

    /** Frequency-dependent (non-static, non-access) power at f. */
    Watts frequencyPower(Hertz bus_freq) const;

    Watts staticPower() const { return _cfg.staticPower * _share; }

    /**
     * Nameplate maximum given the peak access rate the bus sustains
     * (1 / min transfer time).
     */
    Watts peakPower(double peak_access_rate) const;

  private:
    MemoryPowerConfig _cfg;
    double _share = 0.0;
    VoltageCurve _curve;
    Hertz _fMax = 0.0;
};

} // namespace fastcap

#endif // FASTCAP_SIM_POWER_HPP
