/**
 * @file
 * Memory request descriptor flowing through the simulated memory
 * subsystem (Figure 1 of the paper): core -> bank queue -> bank
 * service -> bus queue -> bus transfer -> core.
 */

#ifndef FASTCAP_SIM_REQUEST_HPP
#define FASTCAP_SIM_REQUEST_HPP

#include <cstdint>

#include "util/units.hpp"

namespace fastcap {

/** Kind of memory traffic. */
enum class RequestType : std::uint8_t {
    Read,       //!< demand miss; blocks the issuing core (in-order)
    Writeback,  //!< background traffic; occupies bank+bus only
};

/**
 * A single memory transaction.
 *
 * Requests are small value types owned by the bank/bus queues as they
 * move through the subsystem.
 */
struct Request
{
    RequestType type = RequestType::Read;
    int coreId = -1;          //!< issuing core
    int controllerId = -1;    //!< controller servicing the request
    int bankId = -1;          //!< bank within the controller
    Seconds issueTime = 0.0;  //!< when the core generated it
    Seconds arriveTime = 0.0; //!< when it entered the bank queue
    Seconds serveTime = 0.0;  //!< when bank service started
    Seconds readyTime = 0.0;  //!< when it joined the bus queue
};

} // namespace fastcap

#endif // FASTCAP_SIM_REQUEST_HPP
