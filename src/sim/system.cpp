#include "sim/system.hpp"

#include <numeric>
#include <utility>

#include "util/logging.hpp"

namespace fastcap {

Watts
WindowStats::corePowerTotal() const
{
    double acc = 0.0;
    for (const auto &c : cores)
        acc += c.totalPower;
    return acc;
}

Watts
WindowStats::memPowerTotal() const
{
    double acc = 0.0;
    for (const auto &m : memory)
        acc += m.totalPower;
    return acc;
}

Watts
WindowStats::totalPower() const
{
    return corePowerTotal() + memPowerTotal() + backgroundPower;
}

ManyCoreSystem::ManyCoreSystem(SimConfig cfg, std::vector<AppProfile> apps)
    : _cfg(std::move(cfg)), _apps(std::move(apps)), _rng(_cfg.seed),
      _corePower(_cfg.corePower, _cfg.coreVoltage, _cfg.coreLadder.max()),
      _memFreqIndex(_cfg.memLadder.maxIndex())
{
    _cfg.validate();
    if (static_cast<int>(_apps.size()) != _cfg.numCores)
        fatal("ManyCoreSystem: %zu applications for %d cores",
              _apps.size(), _cfg.numCores);

    const double share = 1.0 / static_cast<double>(_cfg.numControllers);
    for (int k = 0; k < _cfg.numControllers; ++k) {
        _memPower.emplace_back(_cfg.memPower, share, _cfg.mcVoltage,
                               _cfg.memLadder.max());
        _controllers.push_back(std::make_unique<MemoryController>(
            k, _cfg, _queue, _rng.split(1000 + k)));
        _controllers.back()->deliveryCallback(
            [this](const Request &req, Seconds now) {
                _cores.at(static_cast<std::size_t>(req.coreId))
                    ->onDataReturn(req, now);
            });
    }

    buildAccessMatrix();

    for (int i = 0; i < _cfg.numCores; ++i) {
        _cores.push_back(std::make_unique<Core>(
            i, _cfg, _queue, _rng.split(static_cast<std::uint64_t>(i))));
        Core &core = *_cores.back();
        core.runApp(&_apps[static_cast<std::size_t>(i)]);
        core.submitCallback([this](Request req) { route(req); });
        core.start();
    }
}

void
ManyCoreSystem::buildAccessMatrix()
{
    const int k = _cfg.numControllers;
    _accessProbs.assign(static_cast<std::size_t>(_cfg.numCores),
                        std::vector<double>(static_cast<std::size_t>(k),
                                            1.0 / k));
    if (_cfg.interleave == InterleaveMode::Skewed && k > 1) {
        // One hot controller absorbs skewHotFraction of every core's
        // traffic; the rest spreads evenly (Section IV-B, "highly
        // skewed" interleaving).
        const double hot = _cfg.skewHotFraction;
        const double cold = (1.0 - hot) / static_cast<double>(k - 1);
        for (auto &row : _accessProbs) {
            for (std::size_t c = 0; c < row.size(); ++c)
                row[c] = (c == 0) ? hot : cold;
        }
    }
}

const AppProfile &
ManyCoreSystem::appOf(int core) const
{
    return _apps.at(static_cast<std::size_t>(core));
}

void
ManyCoreSystem::swapApp(int core, AppProfile app)
{
    // Cores hold a stable pointer into _apps (the vector is never
    // resized after construction), so assigning the slot is all a
    // rebind takes: the next scheduled think reads the new phases.
    _apps.at(static_cast<std::size_t>(core)) = std::move(app);
}

const std::vector<double> &
ManyCoreSystem::accessProbabilities(int core) const
{
    return _accessProbs.at(static_cast<std::size_t>(core));
}

void
ManyCoreSystem::route(Request req)
{
    const auto &probs = _accessProbs[static_cast<std::size_t>(req.coreId)];
    double u = _rng.uniform();
    std::size_t pick = probs.size() - 1;
    for (std::size_t k = 0; k < probs.size(); ++k) {
        if (u < probs[k]) {
            pick = k;
            break;
        }
        u -= probs[k];
    }
    _controllers[pick]->submit(std::move(req));
}

void
ManyCoreSystem::coreFreqIndex(int core, std::size_t idx)
{
    if (idx >= _cfg.coreLadder.size())
        panic("coreFreqIndex: index %zu out of range", idx);
    Core &c = *_cores.at(static_cast<std::size_t>(core));
    c.frequency(_cfg.coreLadder.at(idx));
    c.freqIndex(idx);
}

std::size_t
ManyCoreSystem::coreFreqIndex(int core) const
{
    return _cores.at(static_cast<std::size_t>(core))->freqIndex();
}

void
ManyCoreSystem::memFreqIndex(std::size_t idx)
{
    if (idx >= _cfg.memLadder.size())
        panic("memFreqIndex: index %zu out of range", idx);
    _memFreqIndex = idx;
    for (auto &ctrl : _controllers)
        ctrl->busFrequency(_cfg.memLadder.at(idx));
}

Hertz
ManyCoreSystem::memFrequency() const
{
    return _cfg.memLadder.at(_memFreqIndex);
}

void
ManyCoreSystem::maxFrequencies()
{
    for (int i = 0; i < _cfg.numCores; ++i)
        coreFreqIndex(i, _cfg.coreLadder.maxIndex());
    memFreqIndex(_cfg.memLadder.maxIndex());
}

WindowStats
ManyCoreSystem::runWindow(Seconds duration)
{
    if (duration <= 0.0)
        fatal("runWindow: non-positive duration");

    // Reset window accumulators.
    for (auto &core : _cores)
        core->resetCounters();
    for (auto &ctrl : _controllers)
        ctrl->resetCounters();

    const Seconds t_end = _queue.now() + duration;
    _queue.runUntil(t_end);

    // Close out stalls still open at the boundary so fully blocked
    // cores report their stall power.
    for (auto &core : _cores)
        core->flushStall(t_end);

    WindowStats stats;
    stats.duration = duration;
    stats.backgroundPower = _cfg.backgroundPower;

    double energy = 0.0;
    stats.cores.reserve(_cores.size());
    for (auto &core : _cores) {
        CoreWindowStats cs;
        cs.counters = core->counters();
        cs.frequency = core->frequency();
        cs.freqIndex = core->freqIndex();
        cs.activity = core->currentActivity();

        const Joules e = _corePower.windowEnergy(
            cs.frequency, cs.activity, cs.counters.busyTime,
            cs.counters.stallTime, duration);
        cs.totalPower = e / duration;
        cs.dynamicPower = cs.totalPower - _corePower.staticPower();
        energy += e;
        stats.cores.push_back(cs);
    }

    stats.memory.reserve(_controllers.size());
    for (std::size_t k = 0; k < _controllers.size(); ++k) {
        MemoryController &ctrl = *_controllers[k];
        MemWindowStats ms;
        ms.counters = ctrl.finalizeWindow();
        ms.busFrequency = ctrl.busFrequency();
        ms.transferTime = ctrl.transferTime();
        ms.busUtilisation = ms.counters.busBusyTime / duration;

        const std::uint64_t accesses =
            ms.counters.reads + ms.counters.writebacks;
        const Joules e = _memPower[k].windowEnergy(
            ms.busFrequency, accesses, duration);
        ms.totalPower = e / duration;
        ms.dynamicPower = ms.totalPower - _memPower[k].staticPower();
        energy += e;
        stats.memory.push_back(ms);
    }

    energy += _cfg.backgroundPower * duration;
    stats.totalEnergy = energy;
    return stats;
}

double
ManyCoreSystem::instructionsRetired(int core) const
{
    return _cores.at(static_cast<std::size_t>(core))
        ->instructionsRetired();
}

void
ManyCoreSystem::creditInstructions(int core, double instr)
{
    _cores.at(static_cast<std::size_t>(core))->creditInstructions(instr);
}

Watts
ManyCoreSystem::nameplatePeakPower() const
{
    double peak = _cfg.backgroundPower;
    peak += static_cast<double>(_cfg.numCores) * _corePower.peakPower();
    for (std::size_t k = 0; k < _controllers.size(); ++k) {
        const double rate =
            1.0 / _controllers[k]->transferTimeAt(_cfg.memLadder.max());
        peak += _memPower[k].peakPower(rate);
    }
    return peak;
}

std::uint64_t
ManyCoreSystem::memoryInFlight() const
{
    std::uint64_t n = 0;
    for (const auto &ctrl : _controllers)
        n += ctrl->inFlight();
    return n;
}

} // namespace fastcap
