/**
 * @file
 * The simulated many-core server: N cores, K memory controllers
 * (banks + transfer-blocking bus each), DVFS actuators, and power
 * accounting. This is the substrate the paper's evaluation runs on
 * (their "detailed simulator"); see docs/DESIGN.md for the substitution
 * notes.
 *
 * The system exposes *windows*: bounded spans of discrete-event
 * simulation that return measured counters and energy. The harness
 * composes windows into the paper's epochs (profile -> decide ->
 * run).
 */

#ifndef FASTCAP_SIM_SYSTEM_HPP
#define FASTCAP_SIM_SYSTEM_HPP

#include <memory>
#include <vector>

#include "sim/app_profile.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_controller.hpp"
#include "sim/power.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace fastcap {

/** Per-core results of one simulated window. */
struct CoreWindowStats
{
    CoreCounters counters;
    Hertz frequency = 0.0;
    std::size_t freqIndex = 0;
    double activity = 0.0;
    Watts dynamicPower = 0.0; //!< measured (energy / window)
    Watts totalPower = 0.0;   //!< dynamic + static

    /** Time per instruction over the window. */
    Seconds
    tpi(Seconds window) const
    {
        return counters.instructions
            ? window / static_cast<double>(counters.instructions)
            : 0.0;
    }
};

/** Per-controller results of one simulated window. */
struct MemWindowStats
{
    ControllerCounters counters;
    Hertz busFrequency = 0.0;
    Seconds transferTime = 0.0;    //!< s_b at the window's frequency
    double busUtilisation = 0.0;
    Watts dynamicPower = 0.0;      //!< access + frequency-scaled parts
    Watts totalPower = 0.0;
};

/** Results of one simulated window across the whole system. */
struct WindowStats
{
    Seconds duration = 0.0;
    std::vector<CoreWindowStats> cores;
    std::vector<MemWindowStats> memory;
    Watts backgroundPower = 0.0;
    Joules totalEnergy = 0.0;

    Watts corePowerTotal() const;
    Watts memPowerTotal() const;
    /** Full-system average power over the window. */
    Watts totalPower() const;
};

/**
 * The simulated many-core server.
 */
class ManyCoreSystem
{
  public:
    /**
     * @param cfg  validated configuration
     * @param apps one application per core (size must equal numCores)
     */
    ManyCoreSystem(SimConfig cfg, std::vector<AppProfile> apps);

    /** Internal components hold references into this object. */
    ManyCoreSystem(const ManyCoreSystem &) = delete;
    ManyCoreSystem &operator=(const ManyCoreSystem &) = delete;
    ManyCoreSystem(ManyCoreSystem &&) = delete;
    ManyCoreSystem &operator=(ManyCoreSystem &&) = delete;

    const SimConfig &config() const { return _cfg; }
    int numCores() const { return _cfg.numCores; }
    int numControllers() const { return _cfg.numControllers; }
    Seconds now() const { return _queue.now(); }

    /** The application bound to core i. */
    const AppProfile &appOf(int core) const;

    /**
     * Rebind core i to a different application mid-run (job
     * arrival/departure in a dynamic-workload scenario). The core
     * picks the new profile up at its next think event; its
     * retired-instruction count is unaffected.
     */
    void swapApp(int core, AppProfile app);

    // --- DVFS actuation ----------------------------------------------
    void coreFreqIndex(int core, std::size_t idx);
    std::size_t coreFreqIndex(int core) const;
    void memFreqIndex(std::size_t idx);
    std::size_t memFreqIndex() const { return _memFreqIndex; }
    Hertz memFrequency() const;

    /** Set every core and the memory to their maximum frequencies. */
    void maxFrequencies();

    // --- simulation ----------------------------------------------------
    /**
     * Run the discrete-event simulation for `duration` seconds and
     * return measured counters, utilisations and energy.
     */
    WindowStats runWindow(Seconds duration);

    /** Cumulative instructions retired by core i (incl. credit). */
    double instructionsRetired(int core) const;

    /** Extrapolation credit (see docs/DESIGN.md section 5). */
    void creditInstructions(int core, double instr);

    // --- power ---------------------------------------------------------
    /**
     * Nameplate peak power: all cores busy at activity 1 and max
     * frequency, memory at its peak sustainable access rate. This is
     * the P̄ the budget fraction B multiplies.
     */
    Watts nameplatePeakPower() const;

    /** Access probabilities of core i over controllers. */
    const std::vector<double> &accessProbabilities(int core) const;

    /** Total requests currently inside the memory subsystem. */
    std::uint64_t memoryInFlight() const;

    /** Events processed so far (determinism / perf diagnostics). */
    std::uint64_t eventsProcessed() const { return _queue.processed(); }

  private:
    void route(Request req);
    void buildAccessMatrix();

    SimConfig _cfg;
    std::vector<AppProfile> _apps;
    EventQueue _queue;
    Rng _rng;
    std::vector<std::unique_ptr<Core>> _cores;
    std::vector<std::unique_ptr<MemoryController>> _controllers;
    CorePowerModel _corePower;
    std::vector<MemoryPowerModel> _memPower;
    std::vector<std::vector<double>> _accessProbs;
    std::size_t _memFreqIndex = 0;
    bool _running = false;
};

} // namespace fastcap

#endif // FASTCAP_SIM_SYSTEM_HPP
