#include "telemetry/registry.hpp"

#include <algorithm>
#include <cstdio>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {
namespace telemetry {

namespace {

std::atomic<bool> g_enabled{false};

/** `/seg/seg` with non-empty segments; rejects "", "/", "a/b". */
bool
validPath(const std::string &path)
{
    if (path.size() < 2 || path[0] != '/')
        return false;
    bool prev_slash = false;
    for (std::size_t i = 1; i < path.size(); ++i) {
        const bool slash = path[i] == '/';
        if (slash && (prev_slash || i + 1 == path.size()))
            return false;
        prev_slash = slash;
    }
    return true;
}

std::string
renderDouble(double v)
{
    char buf[64];
    checkedSnprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

void
Gauge::setMax(double v)
{
    if (!enabled())
        return;
    mergeMax(v);
}

void
Gauge::mergeMax(double v)
{
    double cur = _value.load(std::memory_order_relaxed);
    while (v > cur &&
           !_value.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed)) {
    }
}

Histogram::Histogram(std::vector<double> edges)
    : _edges(std::move(edges))
{
    if (_edges.empty())
        panic("telemetry: histogram needs at least one bucket edge");
    if (!std::is_sorted(_edges.begin(), _edges.end()))
        panic("telemetry: histogram edges must be ascending");
    _counts.reset(new std::atomic<std::uint64_t>[_edges.size() + 1]);
    for (std::size_t i = 0; i <= _edges.size(); ++i)
        _counts[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    if (!enabled())
        return;
    const auto it =
        std::lower_bound(_edges.begin(), _edges.end(), v);
    const std::size_t idx =
        static_cast<std::size_t>(it - _edges.begin());
    _counts[idx].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i <= _edges.size(); ++i)
        total += _counts[i].load(std::memory_order_relaxed);
    return total;
}

std::vector<std::uint64_t>
Histogram::buckets() const
{
    std::vector<std::uint64_t> out(_edges.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = _counts[i].load(std::memory_order_relaxed);
    return out;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= _edges.size(); ++i)
        _counts[i].store(0, std::memory_order_relaxed);
}

void
Histogram::mergeBuckets(const std::vector<std::uint64_t> &buckets)
{
    if (buckets.size() != _edges.size() + 1)
        panic("telemetry: histogram merge with mismatched buckets");
    for (std::size_t i = 0; i < buckets.size(); ++i)
        _counts[i].fetch_add(buckets[i], std::memory_order_relaxed);
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Registry::Metric &
Registry::slot(const std::string &path)
{
    if (!validPath(path))
        panic("telemetry: malformed metric path '%s'", path.c_str());
    return _metrics[path];
}

Counter &
Registry::counter(const std::string &path)
{
    LockGuard lock(_mu);
    Metric &m = slot(path);
    if (m.gauge || m.histogram)
        panic("telemetry: '%s' already registered with another kind",
              path.c_str());
    if (!m.counter)
        m.counter.reset(new Counter());
    return *m.counter;
}

Gauge &
Registry::gauge(const std::string &path)
{
    LockGuard lock(_mu);
    Metric &m = slot(path);
    if (m.counter || m.histogram)
        panic("telemetry: '%s' already registered with another kind",
              path.c_str());
    if (!m.gauge)
        m.gauge.reset(new Gauge());
    return *m.gauge;
}

Histogram &
Registry::histogram(const std::string &path, std::vector<double> edges)
{
    LockGuard lock(_mu);
    Metric &m = slot(path);
    if (m.counter || m.gauge)
        panic("telemetry: '%s' already registered with another kind",
              path.c_str());
    if (!m.histogram) {
        m.histogram.reset(new Histogram(std::move(edges)));
    } else if (m.histogram->edges() != edges) {
        panic("telemetry: '%s' re-registered with different edges",
              path.c_str());
    }
    return *m.histogram;
}

void
Registry::mergeFrom(const Registry &other)
{
    // Render the other side to plain values first so the two lock
    // scopes never nest (self-merge and lock-order both stay safe).
    struct Entry
    {
        std::string path;
        std::uint64_t counter = 0;
        double gauge = 0.0;
        std::vector<double> edges;
        std::vector<std::uint64_t> buckets;
        int kind = 0; // 0 counter, 1 gauge, 2 histogram
    };
    std::vector<Entry> entries;
    {
        LockGuard lock(other._mu);
        for (const auto &kv : other._metrics) {
            Entry e;
            e.path = kv.first;
            if (kv.second.counter) {
                e.kind = 0;
                e.counter = kv.second.counter->value();
            } else if (kv.second.gauge) {
                e.kind = 1;
                e.gauge = kv.second.gauge->value();
            } else if (kv.second.histogram) {
                e.kind = 2;
                e.edges = kv.second.histogram->edges();
                e.buckets = kv.second.histogram->buckets();
            } else {
                continue;
            }
            entries.push_back(std::move(e));
        }
    }
    for (const Entry &e : entries) {
        switch (e.kind) {
          case 0:
            counter(e.path).mergeAdd(e.counter);
            break;
          case 1:
            gauge(e.path).mergeMax(e.gauge);
            break;
          default:
            histogram(e.path, e.edges).mergeBuckets(e.buckets);
            break;
        }
    }
}

std::vector<std::pair<std::string, std::string>>
Registry::snapshot() const
{
    std::vector<std::pair<std::string, std::string>> out;
    LockGuard lock(_mu);
    out.reserve(_metrics.size());
    for (const auto &kv : _metrics) {
        const Metric &m = kv.second;
        std::string value;
        if (m.counter) {
            char buf[32];
            checkedSnprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(
                              m.counter->value()));
            value = buf;
        } else if (m.gauge) {
            value = renderDouble(m.gauge->value());
        } else if (m.histogram) {
            const auto &edges = m.histogram->edges();
            const auto buckets = m.histogram->buckets();
            value = "count=";
            char buf[64];
            checkedSnprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(
                              m.histogram->count()));
            value += buf;
            for (std::size_t i = 0; i < buckets.size(); ++i) {
                checkedSnprintf(
                    buf, sizeof(buf), " le:%s=%llu",
                    i < edges.size() ? renderDouble(edges[i]).c_str()
                                     : "inf",
                    static_cast<unsigned long long>(buckets[i]));
                value += buf;
            }
        } else {
            continue;
        }
        out.emplace_back(kv.first, std::move(value));
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
Registry::query(const std::string &path) const
{
    std::string prefix = path;
    while (!prefix.empty() && prefix.back() == '/')
        prefix.pop_back();
    std::vector<std::pair<std::string, std::string>> out;
    for (auto &kv : snapshot()) {
        if (prefix.empty() || kv.first == prefix ||
            (kv.first.size() > prefix.size() &&
             kv.first.compare(0, prefix.size(), prefix) == 0 &&
             kv.first[prefix.size()] == '/')) {
            out.push_back(std::move(kv));
        }
    }
    return out;
}

void
Registry::resetAll()
{
    LockGuard lock(_mu);
    for (auto &kv : _metrics) {
        if (kv.second.counter)
            kv.second.counter->reset();
        else if (kv.second.gauge)
            kv.second.gauge->reset();
        else if (kv.second.histogram)
            kv.second.histogram->reset();
    }
}

} // namespace telemetry
} // namespace fastcap
