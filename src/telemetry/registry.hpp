/**
 * @file
 * Deterministic metrics registry: the observe-only telemetry core.
 *
 * Result-bearing code *writes* counters, gauges, and histograms
 * under slash-separated paths (`/solver/solves`,
 * `/machine/3/core/17/freq`); operator-facing surfaces — the CLI
 * `--introspect` dump, the future `--serve` daemon — *read* them
 * back as a sorted path tree, 9front-devproc style. The hard
 * contract is that telemetry can never flow back into results:
 *
 *  - every write method drops the update when telemetry is disabled
 *    (the default), so an un-instrumented and an instrumented run
 *    execute the same result-affecting code;
 *  - reading a metric from a result zone is a lint finding (R8,
 *    `src/telemetry` is a sink zone) — only `enabled()` and the
 *    write surface are callable from result-bearing code;
 *  - cross-thread writes to one shared path must commute: counter
 *    adds and gauge setMax() are order-free, so totals are exact
 *    and deterministic under any interleaving. Plain Gauge::set()
 *    is reserved for single-writer paths (per-machine state written
 *    by that machine's runner between pool barriers).
 *
 * Handles returned by counter()/gauge()/histogram() are stable for
 * the registry's lifetime (metrics are never erased); hot paths
 * cache them instead of re-resolving the path each epoch.
 */

#ifndef FASTCAP_TELEMETRY_REGISTRY_HPP
#define FASTCAP_TELEMETRY_REGISTRY_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"

namespace fastcap {
namespace telemetry {

/** Process-wide telemetry switch; off by default. */
bool enabled();

/** Flip the process-wide switch (CLI `--telemetry`, benches). */
void setEnabled(bool on);

/**
 * Monotonic event count. add() commutes, so concurrent writers on
 * one path still produce an exact, deterministic total.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        if (enabled())
            _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

    /** Registry-merge add: bypasses the enabled() gate. */
    void
    mergeAdd(std::uint64_t n)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * Last-known scalar. set() is a plain store for single-writer paths;
 * setMax() is a CAS high-water mark that commutes across threads.
 */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (enabled())
            _value.store(v, std::memory_order_relaxed);
    }

    void setMax(double v);

    double
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0.0, std::memory_order_relaxed); }

    /** Registry-merge max: bypasses the enabled() gate. */
    void mergeMax(double v);

  private:
    std::atomic<double> _value{0.0};
};

/**
 * Fixed-bucket distribution. Bucket edges are upper bounds in
 * ascending order; values above the last edge land in an implicit
 * overflow bucket. Only integer bucket counts are kept (no float
 * sum), so concurrent observes commute exactly.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> edges);

    void observe(double v);

    std::uint64_t count() const;
    const std::vector<double> &edges() const { return _edges; }
    /** Bucket counts; size edges().size() + 1 (last = overflow). */
    std::vector<std::uint64_t> buckets() const;

    void reset();

    /** Registry-merge bucket sum: bypasses the enabled() gate. */
    void mergeBuckets(const std::vector<std::uint64_t> &buckets);

  private:
    std::vector<double> _edges;
    std::unique_ptr<std::atomic<std::uint64_t>[]> _counts;
};

/**
 * A path-keyed tree of metrics. Registration is locked; the handles
 * it returns are lock-free to write through. Paths are
 * `/seg/seg/...` with non-empty segments. The sorted map doubles as
 * the introspection tree: snapshot()/query() render values in path
 * order, so two identical runs dump identical trees.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry the CLIs expose. */
    static Registry &global();

    /** Find-or-create; panics if the path exists with another kind. */
    Counter &counter(const std::string &path);
    Gauge &gauge(const std::string &path);
    /**
     * Find-or-create; `edges` must match any previous registration
     * of the same path (ascending, non-empty).
     */
    Histogram &histogram(const std::string &path,
                         std::vector<double> edges);

    /**
     * Fold another registry's metrics into this one, in the other's
     * path order: counters and histogram buckets sum, gauges take
     * the max. Folding any permutation of registries yields the
     * same result — the fixed-order merge contract per-shard and
     * per-machine instances rely on.
     */
    void mergeFrom(const Registry &other);

    /** All (path, rendered value) pairs in path order. */
    std::vector<std::pair<std::string, std::string>> snapshot() const;

    /**
     * The subtree at `path`: the exact path plus everything under
     * `path` + "/". "/" (or "") selects the whole tree.
     */
    std::vector<std::pair<std::string, std::string>>
    query(const std::string &path) const;

    /** Zero every registered metric (tests, benches). */
    void resetAll();

  private:
    struct Metric
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Metric &slot(const std::string &path) FASTCAP_REQUIRES(_mu);

    mutable Mutex _mu;
    std::map<std::string, Metric> _metrics FASTCAP_GUARDED_BY(_mu);
};

} // namespace telemetry
} // namespace fastcap

#endif // FASTCAP_TELEMETRY_REGISTRY_HPP
