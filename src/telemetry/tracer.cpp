#include "telemetry/tracer.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {
namespace telemetry {

namespace {

/** Microsecond timestamps with fixed sub-µs precision: the same
 *  virtual time always renders to the same bytes. */
std::string
renderUs(double us)
{
    char buf[64];
    checkedSnprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

} // namespace

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                checkedSnprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
TraceTrack::span(const std::string &name, double t0_s, double t1_s,
                 std::string args_json)
{
    if (t1_s < t0_s)
        panic("tracer: span '%s' ends before it starts",
              name.c_str());
    _events.push_back(Event{'X', name, t0_s * 1e6,
                            (t1_s - t0_s) * 1e6,
                            std::move(args_json), 0.0});
}

void
TraceTrack::instant(const std::string &name, double t_s,
                    std::string args_json)
{
    _events.push_back(
        Event{'i', name, t_s * 1e6, 0.0, std::move(args_json), 0.0});
}

void
TraceTrack::counterEvent(const std::string &name, double t_s,
                         double value)
{
    _events.push_back(
        Event{'C', name, t_s * 1e6, 0.0, std::string(), value});
}

TraceTrack &
Tracer::track(int pid, const std::string &name)
{
    LockGuard lock(_mu);
    auto &slot = _tracks[pid];
    if (!slot) {
        slot.reset(new TraceTrack(pid));
        _names[pid] = name;
    }
    return *slot;
}

std::string
Tracer::json() const
{
    // Called once the run is over: no track is being appended to,
    // so only the track map itself needs the lock.
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    LockGuard lock(_mu);
    for (const auto &kv : _tracks) {
        const int pid = kv.first;
        const TraceTrack &track = *kv.second;
        const auto name_it = _names.find(pid);
        char head[128];
        checkedSnprintf(head, sizeof(head),
                      "%s{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                      "\"name\":\"process_name\",\"args\":{\"name\":",
                      first ? "" : ",\n", pid);
        out += head;
        out += jsonString(name_it == _names.end() ? std::string()
                                                  : name_it->second);
        out += "}}";
        first = false;
        for (const auto &ev : track._events) {
            char buf[160];
            checkedSnprintf(buf, sizeof(buf),
                          ",\n{\"ph\":\"%c\",\"pid\":%d,\"tid\":0,"
                          "\"name\":",
                          ev.ph, pid);
            out += buf;
            out += jsonString(ev.name);
            out += ",\"ts\":";
            out += renderUs(ev.ts_us);
            if (ev.ph == 'X') {
                out += ",\"dur\":";
                out += renderUs(ev.dur_us);
            }
            if (ev.ph == 'i')
                out += ",\"s\":\"t\"";
            if (ev.ph == 'C') {
                char vbuf[64];
                checkedSnprintf(vbuf, sizeof(vbuf),
                              ",\"args\":{\"value\":%.9g}", ev.value);
                out += vbuf;
            } else if (!ev.args.empty()) {
                out += ",\"args\":";
                out += ev.args;
            }
            out += '}';
        }
    }
    out += "\n]}\n";
    return out;
}

void
Tracer::writeJson(const std::string &path) const
{
    const std::string doc = json();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("tracer: cannot open '%s' for writing", path.c_str());
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), f);
    const int rc = std::fclose(f);
    if (written != doc.size() || rc != 0)
        fatal("tracer: short write to '%s'", path.c_str());
}

} // namespace telemetry
} // namespace fastcap
