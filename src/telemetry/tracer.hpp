/**
 * @file
 * Epoch tracer: Chrome trace_event JSON keyed to *virtual* sim time.
 *
 * Instrumented code appends duration spans ("X"), instants ("i"),
 * and counter samples ("C") to per-track buffers; writeJson() emits
 * the standard `{"traceEvents":[...]}` object a trace viewer loads
 * directly. Timestamps are virtual seconds converted to the format's
 * microseconds — never wall clock — so the same run configuration
 * produces byte-identical trace files on every rerun, at any thread
 * count.
 *
 * Track discipline: one track (one `pid` in the viewer) per logical
 * owner — pid 0 for the cluster arbiter, pid m+1 for machine m. A
 * track is appended to by exactly one logical thread at a time (a
 * machine's epochs are serialized by the pool barrier even when
 * different workers run them), so appends need no lock; only track
 * creation is locked. Events are emitted in append order, tracks in
 * pid order.
 *
 * Like the registry, the tracer is observe-only: result code holds a
 * nullable `Tracer *` and writes spans through it; nothing reads a
 * trace back into the simulation (lint R8 enforces the direction).
 */

#ifndef FASTCAP_TELEMETRY_TRACER_HPP
#define FASTCAP_TELEMETRY_TRACER_HPP

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"

namespace fastcap {
namespace telemetry {

/** One pid's append-only event buffer; create via Tracer::track(). */
class TraceTrack
{
  public:
    /** Duration event [t0_s, t1_s] (virtual seconds). */
    void span(const std::string &name, double t0_s, double t1_s,
              std::string args_json = "");

    /** Instantaneous event at t_s. */
    void instant(const std::string &name, double t_s,
                 std::string args_json = "");

    /** Counter sample: `name` tracks `value` over time. */
    void counterEvent(const std::string &name, double t_s,
                      double value);

    std::size_t events() const { return _events.size(); }

  private:
    friend class Tracer;
    explicit TraceTrack(int pid) : _pid(pid) {}

    struct Event
    {
        char ph;
        std::string name;
        double ts_us;
        double dur_us;       // "X" only
        std::string args;    // preformatted JSON object or ""
        double value;        // "C" only
    };

    int _pid;
    std::vector<Event> _events;
};

/** A set of tracks plus the JSON writer. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Find-or-create the track for `pid`, naming its process row on
     * first creation. Stable pointer for the tracer's lifetime.
     */
    TraceTrack &track(int pid, const std::string &name);

    /** The full trace_event JSON document. */
    std::string json() const;

    /** json() to a file; throws FatalError on I/O failure. */
    void writeJson(const std::string &path) const;

  private:
    mutable Mutex _mu;
    std::map<int, std::unique_ptr<TraceTrack>> _tracks
        FASTCAP_GUARDED_BY(_mu);
    std::map<int, std::string> _names FASTCAP_GUARDED_BY(_mu);
};

/** JSON-escape + quote a string for args payloads. */
std::string jsonString(const std::string &s);

} // namespace telemetry
} // namespace fastcap

#endif // FASTCAP_TELEMETRY_TRACER_HPP
