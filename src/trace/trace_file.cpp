#include "trace/trace_file.hpp"

#include <utility>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {

TraceFile::TraceFile(std::string path)
    : _path(std::move(path)), _name(_path),
      _owned(std::make_unique<std::ifstream>(_path)), _in(_owned.get())
{
    if (!*_owned)
        fatal("TraceFile: cannot open trace '%s'", _path.c_str());
}

TraceFile::TraceFile(std::istream &in, std::string name)
    : _name(std::move(name)), _in(&in)
{
}

bool
TraceFile::nextRow(std::vector<std::string> &cells)
{
    while (std::getline(*_in, _line)) {
        ++_lineno;
        const auto hash = _line.find('#');
        if (hash != std::string::npos)
            _line.erase(hash);
        const std::string row = trimmed(_line);
        if (row.empty())
            continue;

        cells.clear();
        std::size_t pos = 0;
        for (;;) {
            const auto comma = row.find(',', pos);
            if (comma == std::string::npos) {
                cells.push_back(trimmed(row.substr(pos)));
                break;
            }
            cells.push_back(trimmed(row.substr(pos, comma - pos)));
            pos = comma + 1;
        }
        return true;
    }
    return false;
}

void
TraceFile::rewind()
{
    if (!rewindable())
        fatal("TraceFile: stream '%s' is single-pass and cannot "
              "rewind", _name.c_str());
    // Reopen rather than seekg: clears eof/fail state portably.
    _owned = std::make_unique<std::ifstream>(_path);
    if (!*_owned)
        fatal("TraceFile: cannot reopen trace '%s'", _path.c_str());
    _in = _owned.get();
    _lineno = 0;
}

} // namespace fastcap
