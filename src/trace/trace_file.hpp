/**
 * @file
 * Streaming row access to trace files.
 *
 * Every trace in the repo — job traces (arrival,app,duration,cores)
 * and budget traces (time,fraction) — shares one lexical layer: CSV
 * rows, `#` comments, blank lines ignored, cells trimmed. TraceFile
 * is that layer. It hands rows out one at a time and never buffers
 * more than the current line, so a million-row trace costs the same
 * memory as a ten-row one. Semantic validation (column counts, value
 * ranges, monotonicity) belongs to the callers, which know what the
 * columns mean.
 */

#ifndef FASTCAP_TRACE_TRACE_FILE_HPP
#define FASTCAP_TRACE_TRACE_FILE_HPP

#include <fstream>
#include <istream>
#include <memory>
#include <string>
#include <vector>

namespace fastcap {

/**
 * One trace file (or borrowed stream), read row by row.
 *
 * Path-backed instances can rewind() — they reopen the file — which
 * the budget-schedule cursor uses to answer backward time queries.
 * Borrowed streams (stdin, test stringstreams) are single-pass.
 */
class TraceFile
{
  public:
    /** Open a file; fatal() if it cannot be read. */
    explicit TraceFile(std::string path);

    /**
     * Wrap a caller-owned stream (e.g. std::cin). `name` labels
     * error messages. The stream must outlive this object.
     */
    TraceFile(std::istream &in, std::string name);

    TraceFile(TraceFile &&) = default;
    TraceFile &operator=(TraceFile &&) = default;

    /**
     * Read the next non-empty, non-comment row into `cells` (split
     * on ',', each cell trimmed). Returns false at end of input.
     * The vector is reused; no per-row allocation once warm.
     */
    bool nextRow(std::vector<std::string> &cells);

    /** Restart from the first row; fatal() for borrowed streams. */
    void rewind();

    /** True when rewind() is available (path-backed). */
    bool rewindable() const { return !_path.empty(); }

    /** 1-based line number of the row last returned. */
    int lineno() const { return _lineno; }

    /** Path or stream label, for error messages. */
    const std::string &name() const { return _name; }

  private:
    std::string _path; //!< empty for borrowed streams
    std::string _name;
    std::unique_ptr<std::ifstream> _owned;
    std::istream *_in = nullptr;
    std::string _line; //!< reused getline buffer
    int _lineno = 0;
};

} // namespace fastcap

#endif // FASTCAP_TRACE_TRACE_FILE_HPP
