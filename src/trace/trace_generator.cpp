#include "trace/trace_generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <utility>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

namespace {

constexpr double kTwoPi = 6.28318530717958647692;

double
parseGenNumber(const std::string &s, const char *what,
               const std::string &spec)
{
    double v = 0.0;
    if (!parseDouble(s, v))
        fatal("TraceGenSpec: bad %s '%s' in '%s'", what, s.c_str(),
              spec.c_str());
    return v;
}

/** Strict full-string unsigned integer parse; fatal() with context. */
std::uint64_t
parseGenUint(const std::string &s, const char *what,
             const std::string &spec)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end == s.c_str() || *end != '\0' ||
        s.front() == '-')
        fatal("TraceGenSpec: bad %s '%s' in '%s'", what, s.c_str(),
              spec.c_str());
    return v;
}

std::string
num(double v)
{
    char buf[32];
    checkedSnprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/**
 * All generator kinds in one lazy stream. Arrival processes differ;
 * app choice, duration and core demand are drawn the same way so a
 * kind only shapes *when* jobs land, not what they are.
 */
class GeneratedTrace : public TraceSource
{
  public:
    explicit GeneratedTrace(TraceGenSpec spec)
        : _spec(std::move(spec)), _rng(_spec.seed),
          _name("gen:" + _spec.toString())
    {
        if (_spec.kind == "mmpp")
            _stateEnd = _rng.exponential(_spec.meanQuiet);
    }

    bool
    next(TraceEvent &ev) override
    {
        if (_done ||
            (_spec.maxEvents != 0 && _emitted >= _spec.maxEvents)) {
            _done = true;
            return false;
        }

        Seconds arrival = 0.0;
        if (_spec.kind == "batch") {
            if (!nextBatchArrival(arrival)) {
                _done = true;
                return false;
            }
            ev.app = _batchApp;
        } else {
            if (!nextArrival(arrival)) {
                _done = true;
                return false;
            }
            ev.app = _spec.apps[_rng.below(_spec.apps.size())];
        }

        ev.arrival = arrival;
        // uniform() can return exactly 0; keep durations positive.
        ev.duration = std::max<Seconds>(
            _rng.exponential(_spec.meanDuration), 1e-12);
        ev.cores = _spec.maxCores == 1
                       ? 1
                       : 1 +
                static_cast<int>(_rng.below(
                    static_cast<std::uint64_t>(_spec.maxCores)));
        ++_emitted;
        return true;
    }

    const std::string &name() const override { return _name; }

  private:
    /** Next arrival of the kind's point process; false past horizon. */
    bool
    nextArrival(Seconds &out)
    {
        if (_spec.kind == "poisson")
            return homogeneous(_spec.rate, out);
        if (_spec.kind == "mmpp")
            return mmpp(out);
        if (_spec.kind == "sine" || _spec.kind == "flash")
            return thinned(out);
        panic("GeneratedTrace: unknown kind '%s'",
              _spec.kind.c_str());
    }

    bool
    homogeneous(double rate, Seconds &out)
    {
        _t += _rng.exponential(1.0 / rate);
        out = _t;
        return _t < _spec.horizon;
    }

    /**
     * 2-state MMPP: draw the next candidate in the current state; if
     * it lands past the state's dwell end, move to the boundary,
     * switch states and retry. Burstiness comes from the rate ratio.
     */
    bool
    mmpp(Seconds &out)
    {
        for (;;) {
            const double rate =
                _burst ? _spec.rate * _spec.burstFactor : _spec.rate;
            const Seconds cand = _t + _rng.exponential(1.0 / rate);
            if (cand >= _spec.horizon)
                return false;
            if (cand >= _stateEnd) {
                _t = _stateEnd;
                _burst = !_burst;
                _stateEnd = _t +
                    _rng.exponential(_burst ? _spec.meanBurst
                                            : _spec.meanQuiet);
                continue;
            }
            _t = cand;
            out = _t;
            return true;
        }
    }

    /** Intensity of the non-homogeneous kinds at time t. */
    double
    intensity(Seconds t) const
    {
        if (_spec.kind == "sine")
            return _spec.rate *
                (1.0 +
                 _spec.amplitude * std::sin(kTwoPi * t / _spec.period));
        // flash
        const bool in = t >= _spec.flashStart &&
            t < _spec.flashStart + _spec.flashDuration;
        return _spec.rate * (in ? _spec.flashFactor : 1.0);
    }

    /** Ogata thinning against the kind's peak intensity. */
    bool
    thinned(Seconds &out)
    {
        const double lmax = _spec.kind == "sine"
            ? _spec.rate * (1.0 + _spec.amplitude)
            : _spec.rate * std::max(_spec.flashFactor, 1.0);
        for (;;) {
            _t += _rng.exponential(1.0 / lmax);
            if (_t >= _spec.horizon)
                return false;
            if (_rng.uniform() * lmax < intensity(_t)) {
                out = _t;
                return true;
            }
        }
    }

    /**
     * Batches arrive as a homogeneous Poisson process; members share
     * the batch's instant and app (the correlation the `batch` kind
     * exists to produce) and draw core demands independently.
     */
    bool
    nextBatchArrival(Seconds &out)
    {
        if (_batchLeft == 0) {
            _batchTime += _rng.exponential(1.0 / _spec.rate);
            if (_batchTime >= _spec.horizon)
                return false;
            // Uniform size on [1, 2*mean-1] keeps the mean at
            // batchMean without a heavy tail.
            const auto span = static_cast<std::uint64_t>(
                std::max(1.0, 2.0 * std::round(_spec.batchMean) - 1.0));
            _batchLeft = 1 + static_cast<int>(_rng.below(span));
            _batchApp = _spec.apps[_rng.below(_spec.apps.size())];
        }
        --_batchLeft;
        out = _batchTime;
        return true;
    }

    TraceGenSpec _spec;
    Rng _rng;
    std::string _name;
    Seconds _t = 0.0;
    std::size_t _emitted = 0;
    bool _done = false;
    // mmpp
    bool _burst = false;
    Seconds _stateEnd = 0.0;
    // batch
    int _batchLeft = 0;
    Seconds _batchTime = 0.0;
    std::string _batchApp;
};

} // namespace

TraceGenSpec
TraceGenSpec::parse(const std::string &spec)
{
    TraceGenSpec g;
    const std::string whole = trimmed(spec);
    if (whole.empty())
        fatal("TraceGenSpec: empty generator spec");

    std::stringstream ss(whole);
    std::string part;
    bool first = true;
    while (std::getline(ss, part, ',')) {
        part = trimmed(part);
        if (part.empty())
            fatal("TraceGenSpec: empty field in '%s'", spec.c_str());
        if (first) {
            g.kind = part;
            first = false;
            continue;
        }
        const auto eq = part.find('=');
        if (eq == std::string::npos)
            fatal("TraceGenSpec: field '%s' is not of the form "
                  "key=value", part.c_str());
        const std::string key = trimmed(part.substr(0, eq));
        const std::string val = trimmed(part.substr(eq + 1));

        if (key == "horizon")
            g.horizon = parseGenNumber(val, "horizon", spec);
        else if (key == "rate")
            g.rate = parseGenNumber(val, "rate", spec);
        else if (key == "apps") {
            g.apps.clear();
            std::stringstream as(val);
            std::string app;
            while (std::getline(as, app, '+'))
                g.apps.push_back(trimmed(app));
        } else if (key == "mean-duration")
            g.meanDuration =
                parseGenNumber(val, "mean duration", spec);
        else if (key == "max-cores")
            g.maxCores = static_cast<int>(std::min<std::uint64_t>(
                parseGenUint(val, "max cores", spec),
                std::numeric_limits<int>::max()));
        else if (key == "seed")
            g.seed = parseGenUint(val, "seed", spec);
        else if (key == "events")
            g.maxEvents = parseGenUint(val, "event cap", spec);
        else if (key == "burst-factor")
            g.burstFactor = parseGenNumber(val, "burst factor", spec);
        else if (key == "mean-burst")
            g.meanBurst = parseGenNumber(val, "mean burst", spec);
        else if (key == "mean-quiet")
            g.meanQuiet = parseGenNumber(val, "mean quiet", spec);
        else if (key == "amplitude")
            g.amplitude = parseGenNumber(val, "amplitude", spec);
        else if (key == "period")
            g.period = parseGenNumber(val, "period", spec);
        else if (key == "flash-start")
            g.flashStart = parseGenNumber(val, "flash start", spec);
        else if (key == "flash-duration")
            g.flashDuration =
                parseGenNumber(val, "flash duration", spec);
        else if (key == "flash-factor")
            g.flashFactor = parseGenNumber(val, "flash factor", spec);
        else if (key == "batch-mean")
            g.batchMean = parseGenNumber(val, "batch mean", spec);
        else
            fatal("TraceGenSpec: unknown key '%s' in '%s'",
                  key.c_str(), spec.c_str());
    }
    if (g.apps.empty())
        g.apps = workloads::mixApps("MIX1");
    g.validate();
    return g;
}

std::string
TraceGenSpec::toString() const
{
    std::string s = kind;
    s += ",rate=" + num(rate);
    s += ",horizon=" + num(horizon);
    s += ",mean-duration=" + num(meanDuration);
    if (maxCores != 1)
        s += ",max-cores=" + std::to_string(maxCores);
    if (kind == "mmpp") {
        s += ",burst-factor=" + num(burstFactor);
        s += ",mean-burst=" + num(meanBurst);
        s += ",mean-quiet=" + num(meanQuiet);
    } else if (kind == "sine") {
        s += ",amplitude=" + num(amplitude);
        s += ",period=" + num(period);
    } else if (kind == "flash") {
        s += ",flash-start=" + num(flashStart);
        s += ",flash-duration=" + num(flashDuration);
        s += ",flash-factor=" + num(flashFactor);
    } else if (kind == "batch") {
        s += ",batch-mean=" + num(batchMean);
    }
    if (!apps.empty()) {
        s += ",apps=";
        for (std::size_t i = 0; i < apps.size(); ++i) {
            if (i != 0)
                s += '+';
            s += apps[i];
        }
    }
    if (maxEvents != 0)
        s += ",events=" + std::to_string(maxEvents);
    s += ",seed=" + std::to_string(seed);
    return s;
}

void
TraceGenSpec::validate() const
{
    if (kind != "poisson" && kind != "mmpp" && kind != "sine" &&
        kind != "flash" && kind != "batch")
        fatal("TraceGenSpec: unknown kind '%s' (expected poisson, "
              "mmpp, sine, flash or batch)", kind.c_str());
    if (!std::isfinite(horizon) || horizon <= 0.0)
        fatal("TraceGenSpec: horizon %g must be finite and positive",
              horizon);
    if (!std::isfinite(rate) || rate <= 0.0)
        fatal("TraceGenSpec: rate %g must be finite and positive",
              rate);
    if (!std::isfinite(meanDuration) || meanDuration <= 0.0)
        fatal("TraceGenSpec: mean duration %g must be finite and "
              "positive", meanDuration);
    if (maxCores < 1)
        fatal("TraceGenSpec: max cores %d must be >= 1", maxCores);
    if (apps.empty())
        fatal("TraceGenSpec: empty application list");
    for (const std::string &app : apps)
        if (workloads::findProfile(app) == nullptr)
            fatal("TraceGenSpec: unknown application '%s'",
                  app.c_str());
    if (kind == "mmpp") {
        if (!std::isfinite(burstFactor) || burstFactor < 1.0)
            fatal("TraceGenSpec: burst factor %g must be >= 1",
                  burstFactor);
        if (!std::isfinite(meanBurst) || meanBurst <= 0.0 ||
            !std::isfinite(meanQuiet) || meanQuiet <= 0.0)
            fatal("TraceGenSpec: mean burst/quiet dwell times must "
                  "be finite and positive");
    } else if (kind == "sine") {
        if (!std::isfinite(amplitude) || amplitude < 0.0 ||
            amplitude >= 1.0)
            fatal("TraceGenSpec: amplitude %g must be in [0, 1) "
                  "(intensity must stay positive)", amplitude);
        if (!std::isfinite(period) || period <= 0.0)
            fatal("TraceGenSpec: period %g must be finite and "
                  "positive", period);
    } else if (kind == "flash") {
        if (!std::isfinite(flashStart) || flashStart < 0.0)
            fatal("TraceGenSpec: flash start %g must be finite and "
                  "non-negative", flashStart);
        if (!std::isfinite(flashDuration) || flashDuration <= 0.0)
            fatal("TraceGenSpec: flash duration %g must be finite "
                  "and positive", flashDuration);
        if (!std::isfinite(flashFactor) || flashFactor < 1.0)
            fatal("TraceGenSpec: flash factor %g must be >= 1",
                  flashFactor);
    } else if (kind == "batch") {
        if (!std::isfinite(batchMean) || batchMean < 1.0)
            fatal("TraceGenSpec: batch mean %g must be >= 1",
                  batchMean);
    }
}

std::unique_ptr<TraceSource>
makeTraceGenerator(TraceGenSpec spec)
{
    if (spec.apps.empty())
        spec.apps = workloads::mixApps("MIX1");
    spec.validate();
    return std::make_unique<GeneratedTrace>(std::move(spec));
}

std::unique_ptr<TraceSource>
makeTraceSource(const std::string &spec)
{
    const std::string whole = trimmed(spec);
    if (whole.empty())
        fatal("makeTraceSource: empty trace spec");
    if (whole.rfind("gen:", 0) == 0)
        return makeTraceGenerator(
            TraceGenSpec::parse(whole.substr(4)));
    if (whole == "-")
        return std::make_unique<TraceReader>(std::cin, "<stdin>");
    return std::make_unique<TraceReader>(whole);
}

std::size_t
writeTrace(std::FILE *out, TraceSource &src,
           const std::string &provenance)
{
    std::fprintf(out, "# fastcap job trace v1\n");
    if (!provenance.empty())
        std::fprintf(out, "# %s\n", provenance.c_str());
    std::fprintf(out, "arrival_s,app,duration_s,cores\n");
    TraceEvent ev;
    std::size_t n = 0;
    while (src.next(ev)) {
        std::fprintf(out, "%.9f,%s,%.9f,%d\n", ev.arrival,
                     ev.app.c_str(), ev.duration, ev.cores);
        ++n;
    }
    return n;
}

} // namespace fastcap
