/**
 * @file
 * Synthetic job-trace generators.
 *
 * The paper evaluates capping on closed, hand-picked app mixes; the
 * trace layer turns that into an open-workload study. Each generator
 * is a TraceSource that produces events lazily from an arrival
 * process, so a billion-event trace costs O(1) memory whether it is
 * written to disk (fastcap_tracegen) or replayed directly
 * (`--trace gen:...`). All randomness flows from one SplitMix64-
 * seeded xoshiro stream: a trace is reproducible bit-for-bit from
 * (kind, params, seed) on a given platform, and the committed corpus
 * under tests/traces/ freezes the bytes for cross-platform goldens.
 *
 * Kinds:
 *   poisson  homogeneous Poisson arrivals at `rate` jobs/s
 *   mmpp     2-state Markov-modulated Poisson process: quiet periods
 *            at `rate` alternate with bursts at rate*burstFactor
 *            (burstiness above the Poisson baseline)
 *   sine     diurnal load: non-homogeneous Poisson with intensity
 *            rate*(1 + amplitude*sin(2*pi*t/period)), via thinning
 *   flash    flash crowd: baseline `rate` except a window
 *            [flashStart, flashStart+flashDuration) at
 *            rate*flashFactor
 *   batch    correlated multi-core arrivals: batches arrive as a
 *            Poisson process; each batch lands `batchMean`-ish jobs
 *            of the same app at the same instant, each demanding
 *            1..maxCores cores
 */

#ifndef FASTCAP_TRACE_TRACE_GENERATOR_HPP
#define FASTCAP_TRACE_TRACE_GENERATOR_HPP

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_reader.hpp"
#include "util/units.hpp"

namespace fastcap {

/** Parameters of one synthetic trace. */
struct TraceGenSpec
{
    std::string kind = "poisson";
    /** Stop emitting once arrivals pass this time. */
    Seconds horizon = 1.0;
    /** Baseline arrival rate in jobs per second. */
    double rate = 100.0;
    /** Apps drawn uniformly per job; empty = the MIX1 four. */
    std::vector<std::string> apps;
    /** Mean service demand (exponentially distributed). */
    Seconds meanDuration = 0.02;
    /** Per-job core demand drawn uniformly from [1, maxCores]. */
    int maxCores = 1;
    /** Trace seed (SplitMix64-expanded into the generator stream). */
    std::uint64_t seed = 1;
    /** Hard cap on emitted events (0 = horizon only). */
    std::size_t maxEvents = 0;

    // mmpp
    double burstFactor = 8.0; //!< burst rate = rate * burstFactor
    Seconds meanBurst = 0.02; //!< mean burst-state dwell time
    Seconds meanQuiet = 0.1;  //!< mean quiet-state dwell time

    // sine
    double amplitude = 0.8; //!< relative swing, in [0, 1)
    Seconds period = 0.25;  //!< diurnal cycle length

    // flash
    Seconds flashStart = 0.4;
    Seconds flashDuration = 0.05;
    double flashFactor = 20.0; //!< rate multiplier inside the window

    // batch
    double batchMean = 3.0; //!< mean jobs per batch (>= 1)

    /**
     * Parse `KIND(,key=value)*`, e.g.
     * "poisson,rate=500,horizon=0.2,seed=7,apps=milc+gcc". Keys match
     * the fields (kebab-case: mean-duration, max-cores, burst-factor,
     * mean-burst, mean-quiet, flash-start, flash-duration,
     * flash-factor, batch-mean, events). fatal() on unknown keys or
     * out-of-range values.
     */
    static TraceGenSpec parse(const std::string &spec);

    /** Canonical round-trippable spec string (provenance headers). */
    std::string toString() const;

    /** fatal() unless every parameter is usable. */
    void validate() const;
};

/** Lazy generator stream over a validated spec. */
std::unique_ptr<TraceSource> makeTraceGenerator(TraceGenSpec spec);

/**
 * Open any trace-source spec:
 *   "gen:KIND,key=value,..."  a synthetic generator
 *   "-"                       the standard input (single pass)
 *   anything else             a trace file path
 */
std::unique_ptr<TraceSource> makeTraceSource(const std::string &spec);

/**
 * Drain `src` to `out` in the on-disk format. `provenance`, when
 * non-empty, is embedded as a comment so the file records how to
 * regenerate itself. Returns the number of events written.
 */
std::size_t writeTrace(std::FILE *out, TraceSource &src,
                       const std::string &provenance);

} // namespace fastcap

#endif // FASTCAP_TRACE_TRACE_GENERATOR_HPP
