#include "trace/trace_reader.hpp"

#include <cstdlib>
#include <limits>
#include <utility>

#include "util/logging.hpp"
#include "util/strings.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

TraceReader::TraceReader(const std::string &path) : _file(path)
{
}

TraceReader::TraceReader(std::istream &in, std::string name)
    : _file(in, std::move(name))
{
}

bool
TraceReader::next(TraceEvent &ev)
{
    while (_file.nextRow(_cells)) {
        if (_cells.size() != 4)
            fatal("%s:%d: expected 'arrival_s,app,duration_s,cores' "
                  "(got %zu cells)", name().c_str(), _file.lineno(),
                  _cells.size());

        // Tolerate one header row ahead of the data. Only a row whose
        // numeric cells are *all* non-numeric qualifies, so a data row
        // with one bad cell still fails loudly below.
        double ignored = 0.0;
        if (_events == 0 && !parseDouble(_cells[0], ignored) &&
            !parseDouble(_cells[2], ignored))
            continue;

        if (!parseDouble(_cells[0], ev.arrival) || ev.arrival < 0.0)
            fatal("%s:%d: bad arrival time '%s' (must be a finite "
                  "non-negative number)", name().c_str(),
                  _file.lineno(), _cells[0].c_str());
        if (ev.arrival < _lastArrival)
            fatal("%s:%d: arrival time %g goes backwards (previous "
                  "row was %g; arrivals must be non-decreasing)",
                  name().c_str(), _file.lineno(), ev.arrival,
                  _lastArrival);

        if (_cells[1].empty())
            fatal("%s:%d: empty application name", name().c_str(),
                  _file.lineno());
        if (workloads::findProfile(_cells[1]) == nullptr)
            fatal("%s:%d: unknown application '%s'", name().c_str(),
                  _file.lineno(), _cells[1].c_str());

        if (!parseDouble(_cells[2], ev.duration) ||
            ev.duration <= 0.0)
            fatal("%s:%d: bad duration '%s' (must be a finite "
                  "positive number of seconds)", name().c_str(),
                  _file.lineno(), _cells[2].c_str());

        // Range check before narrowing: an overflowing core demand
        // must fail here, not wrap onto a plausible small count.
        const std::string &cores_str = _cells[3];
        char *end = nullptr;
        const long cores = std::strtol(cores_str.c_str(), &end, 10);
        if (cores_str.empty() || end == cores_str.c_str() ||
            *end != '\0' || cores < 1 ||
            cores > std::numeric_limits<int>::max())
            fatal("%s:%d: bad core demand '%s' (must be an integer "
                  ">= 1)", name().c_str(), _file.lineno(),
                  cores_str.c_str());

        ev.app = _cells[1];
        ev.cores = static_cast<int>(cores);
        _lastArrival = ev.arrival;
        ++_events;
        return true;
    }
    if (_events == 0)
        fatal("TraceReader: trace '%s' holds no events",
              name().c_str());
    return false;
}

} // namespace fastcap
