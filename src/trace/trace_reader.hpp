/**
 * @file
 * The job-trace event format and its constant-memory loader.
 *
 * A job trace describes an open workload as one event per row:
 *
 *   arrival_s,app,duration_s,cores
 *
 * `arrival_s` is the virtual-time arrival (non-decreasing; equal
 * times model batch arrivals), `app` an AppProfile name from the
 * Table III catalog (or "idle"), `duration_s` the job's service
 * demand, `cores` how many cores it occupies. `#` starts a comment;
 * one header row is tolerated ahead of the data.
 *
 * TraceSource is the pull interface everything replays through —
 * files, stdin and synthetic generators (trace_generator.hpp) all
 * implement it — so a million-event trace streams through a run
 * without ever being materialized.
 */

#ifndef FASTCAP_TRACE_TRACE_READER_HPP
#define FASTCAP_TRACE_TRACE_READER_HPP

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

#include "trace/trace_file.hpp"
#include "util/units.hpp"

namespace fastcap {

/** One job arrival. */
struct TraceEvent
{
    Seconds arrival = 0.0;  //!< virtual arrival time
    std::string app;        //!< AppProfile name (Table III or "idle")
    Seconds duration = 0.0; //!< service demand in seconds
    int cores = 1;          //!< cores the job occupies
};

/**
 * Pull-based stream of trace events in non-decreasing arrival order.
 * next() fills `ev` and returns true, or returns false when the
 * stream ends; malformed input fatal()s with file:line context.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    virtual bool next(TraceEvent &ev) = 0;
    /** Label for error messages and provenance. */
    virtual const std::string &name() const = 0;
};

/**
 * Streaming loader for the on-disk format. Holds one row of state:
 * memory use is independent of trace length. Every row is validated
 * as it is read — shape, finiteness, arrival monotonicity, app-name
 * resolution, core-demand range — so a bad trace fails on first
 * touch with a precise location, never mid-run with a wrapped index.
 */
class TraceReader : public TraceSource
{
  public:
    /** Open a trace file; fatal() if unreadable. */
    explicit TraceReader(const std::string &path);

    /** Read from a caller-owned stream (stdin, tests). */
    TraceReader(std::istream &in, std::string name);

    bool next(TraceEvent &ev) override;
    const std::string &name() const override { return _file.name(); }

    /** Events successfully returned so far. */
    std::size_t eventsRead() const { return _events; }

  private:
    TraceFile _file;
    std::vector<std::string> _cells;
    std::size_t _events = 0;
    Seconds _lastArrival = 0.0;
};

} // namespace fastcap

#endif // FASTCAP_TRACE_TRACE_READER_HPP
