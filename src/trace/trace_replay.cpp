#include "trace/trace_replay.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "telemetry/registry.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {

namespace {
constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();
} // namespace

TraceReplayer::TraceReplayer(std::unique_ptr<TraceSource> source,
                             int num_cores, std::size_t max_pending)
    : _src(std::move(source)), _numCores(num_cores),
      _maxPending(max_pending != 0
                      ? max_pending
                      : 4 * static_cast<std::size_t>(
                                std::max(num_cores, 1)))
{
    if (_src == nullptr)
        fatal("TraceReplayer: null trace source");
    if (_numCores < 1)
        fatal("TraceReplayer: core count %d must be >= 1", _numCores);
    for (int i = 0; i < _numCores; ++i)
        _freeCores.insert(i);
}

void
TraceReplayer::fetch()
{
    // Re-poll an exhausted source rather than latching EOF: a file
    // source keeps returning false (TraceReader tolerates reads past
    // the end), while a push-fed queue source may have new events
    // since the last poll.
    if (_haveNext)
        return;
    if (_src->next(_next)) {
        _haveNext = true;
        _srcDone = false;
    } else {
        _srcDone = true;
    }
}

bool
TraceReplayer::idle() const
{
    return _srcDone && !_haveNext && _running.empty() &&
        _pending.empty();
}

void
TraceReplayer::advanceTo(Seconds now, const SwapFn &swap)
{
    fetch();
    for (;;) {
        const Seconds dep = _running.empty() ? kNever
                                             : _running.top().end;
        const Seconds arr = _haveNext ? _next.arrival : kNever;
        const Seconds t = std::min(dep, arr);
        if (t > now || t == kNever)
            break;
        // Departures first at equal times: a core freed at t can be
        // taken by a job arriving at t.
        if (dep <= arr) {
            const Job job = _running.top();
            _running.pop();
            for (const int core : job.cores) {
                swap(core, workloads::idleProfile());
                _freeCores.insert(core);
            }
            ++_stats.completed;
            drainPending(dep, swap);
        } else {
            admit(arr, swap);
        }
    }
}

void
TraceReplayer::admit(Seconds t, const SwapFn &swap)
{
    if (_next.cores > _numCores)
        fatal("TraceReplayer: %s: job at t=%g demands %d cores but "
              "the machine has %d", _src->name().c_str(),
              _next.arrival, _next.cores, _numCores);
    ++_stats.arrivals;
    if (_pending.size() >= _maxPending) {
        // Load shedding keeps replay memory bounded by the machine,
        // not the trace: overload is recorded, not accumulated.
        ++_stats.dropped;
        if (telemetry::enabled())
            telemetry::Registry::global()
                .counter("/trace/shed")
                .add();
    } else {
        _backlogCores += _next.cores;
        _pending.push_back(std::move(_next));
        _stats.peakPending =
            std::max(_stats.peakPending, _pending.size());
    }
    _haveNext = false;
    fetch();
    drainPending(t, swap);
}

void
TraceReplayer::drainPending(Seconds t, const SwapFn &swap)
{
    // Strict FIFO with head-of-line blocking: a wide job at the head
    // waits for enough free cores even while narrower jobs queue
    // behind it. Deterministic and starvation-free by construction.
    while (!_pending.empty() &&
           static_cast<std::size_t>(_pending.front().cores) <=
               _freeCores.size()) {
        const TraceEvent ev = std::move(_pending.front());
        _pending.pop_front();
        _backlogCores -= ev.cores;
        const AppProfile &app = workloads::profile(ev.app);
        Job job;
        job.seq = _seq++;
        job.end = t + ev.duration;
        job.cores.reserve(static_cast<std::size_t>(ev.cores));
        for (int k = 0; k < ev.cores; ++k) {
            const int core = *_freeCores.begin();
            _freeCores.erase(_freeCores.begin());
            swap(core, app);
            job.cores.push_back(core);
        }
        _running.push(std::move(job));
        ++_stats.placed;
        if (telemetry::enabled()) {
            telemetry::Registry &reg = telemetry::Registry::global();
            reg.counter("/trace/placed").add();
            reg.gauge("/trace/pending_hwm")
                .setMax(static_cast<double>(_pending.size()));
        }
        _stats.peakRunning = std::max(
            _stats.peakRunning,
            static_cast<std::size_t>(_numCores) - _freeCores.size());
    }
}

} // namespace fastcap
