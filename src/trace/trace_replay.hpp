/**
 * @file
 * Deterministic trace replay onto a simulated machine.
 *
 * The replayer consumes a TraceSource one event at a time and turns
 * job arrivals/completions into swapApp() calls at epoch boundaries,
 * through a caller-supplied callback — it never touches the engine
 * directly, so the trace layer stays below the simulator in the
 * dependency order and the same replayer drives monolithic and
 * sharded backends identically.
 *
 * Placement is a pure function of the trace: jobs are admitted FIFO
 * (head-of-line blocking, no backfilling) onto the lowest-index free
 * cores, departures free cores in (end-time, admission-order) order,
 * and arrivals that find the pending queue full are shed and
 * counted. No randomness, no wall-clock, no iteration-order
 * dependence — replaying a trace is byte-identical across shard and
 * thread counts, which the determinism suite pins.
 */

#ifndef FASTCAP_TRACE_TRACE_REPLAY_HPP
#define FASTCAP_TRACE_TRACE_REPLAY_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "sim/app_profile.hpp"
#include "trace/trace_reader.hpp"
#include "util/units.hpp"

namespace fastcap {

/** Replay counters (cumulative over the run). */
struct TraceReplayStats
{
    std::size_t arrivals = 0;  //!< events consumed from the source
    std::size_t dropped = 0;   //!< shed: pending queue was full
    std::size_t placed = 0;    //!< jobs that reached cores
    std::size_t completed = 0; //!< jobs whose cores were freed
    std::size_t peakPending = 0;
    std::size_t peakRunning = 0; //!< peak busy-core count
};

/**
 * Streams a trace onto `numCores` cores through a swap callback.
 *
 * advanceTo(now, swap) applies, in chronological order, every
 * departure and arrival up to virtual time `now`; call it with
 * non-decreasing times (epoch boundaries). Memory is bounded by the
 * machine: at most one read-ahead event, `maxPending` queued jobs
 * and one running record per busy core — never the trace length.
 */
class TraceReplayer
{
  public:
    using SwapFn = std::function<void(int core, const AppProfile &)>;

    /**
     * @param source      event stream (owned)
     * @param num_cores   cores of the driven machine
     * @param max_pending pending-queue bound before shedding
     *                    (0 = 4 * num_cores)
     */
    TraceReplayer(std::unique_ptr<TraceSource> source, int num_cores,
                  std::size_t max_pending = 0);

    /** Apply all departures and arrivals with time <= now. */
    void advanceTo(Seconds now, const SwapFn &swap);

    /** Source drained, nothing running and nothing pending. */
    bool idle() const;

    const TraceReplayStats &stats() const { return _stats; }
    std::size_t running() const { return _running.size(); }
    std::size_t pending() const { return _pending.size(); }
    /** Cores currently occupied by placed jobs. */
    int
    busyCores() const
    {
        return _numCores - static_cast<int>(_freeCores.size());
    }
    /** Summed core demand of the pending (admitted, unplaced) jobs. */
    int backlogCores() const { return _backlogCores; }

  private:
    struct Job
    {
        Seconds end = 0.0;
        std::uint64_t seq = 0; //!< admission order (tie-break)
        std::vector<int> cores;
    };
    /** Min-heap by (end time, admission order). */
    struct JobAfter
    {
        bool
        operator()(const Job &a, const Job &b) const
        {
            if (a.end != b.end)
                return a.end > b.end;
            return a.seq > b.seq;
        }
    };

    void fetch();
    void admit(Seconds t, const SwapFn &swap);
    void drainPending(Seconds t, const SwapFn &swap);

    std::unique_ptr<TraceSource> _src;
    int _numCores = 0;
    std::size_t _maxPending = 0;
    TraceEvent _next;
    bool _haveNext = false;
    /**
     * The source had no event at the last poll. Unlike an EOF latch,
     * this is re-checked on every advanceTo(): push-fed sources (the
     * cluster dispatcher's per-machine queues) legitimately alternate
     * between empty and non-empty, and a file source just keeps
     * answering "no".
     */
    bool _srcDone = false;
    std::uint64_t _seq = 0;
    int _backlogCores = 0; //!< summed core demand of _pending
    std::set<int> _freeCores; //!< ordered: lowest index first
    std::priority_queue<Job, std::vector<Job>, JobAfter> _running;
    std::deque<TraceEvent> _pending;
    TraceReplayStats _stats;
};

} // namespace fastcap

#endif // FASTCAP_TRACE_TRACE_REPLAY_HPP
