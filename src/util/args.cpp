#include "util/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {

ArgParser::ArgParser(std::string program, std::string description)
    : _program(std::move(program)), _description(std::move(description))
{
}

void
ArgParser::addString(const std::string &name, std::string def,
                     std::string help)
{
    if (!_options.emplace(name, Option{Kind::String, std::move(help),
                                       std::move(def), false})
             .second)
        panic("ArgParser: duplicate option --%s", name.c_str());
    _order.push_back(name);
}

void
ArgParser::addDouble(const std::string &name, double def,
                     std::string help)
{
    char buf[64];
    checkedSnprintf(buf, sizeof(buf), "%g", def);
    if (!_options.emplace(name, Option{Kind::Double, std::move(help),
                                       std::string(buf), false})
             .second)
        panic("ArgParser: duplicate option --%s", name.c_str());
    _order.push_back(name);
}

void
ArgParser::addInt(const std::string &name, long def, std::string help)
{
    if (!_options.emplace(name, Option{Kind::Int, std::move(help),
                                       std::to_string(def), false})
             .second)
        panic("ArgParser: duplicate option --%s", name.c_str());
    _order.push_back(name);
}

void
ArgParser::addFlag(const std::string &name, std::string help)
{
    if (!_options.emplace(name, Option{Kind::Flag, std::move(help),
                                       "0", false})
             .second)
        panic("ArgParser: duplicate option --%s", name.c_str());
    _order.push_back(name);
}

bool
ArgParser::assign(const std::string &name, const std::string &value)
{
    auto it = _options.find(name);
    if (it == _options.end())
        return false;
    Option &opt = it->second;

    switch (opt.kind) {
      case Kind::Double: {
        char *end = nullptr;
        (void)std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            return false;
        break;
      }
      case Kind::Int: {
        char *end = nullptr;
        (void)std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            return false;
        break;
      }
      case Kind::Flag:
        if (value != "0" && value != "1")
            return false;
        break;
      case Kind::String:
        break;
    }
    opt.value = value;
    opt.provided = true;
    return true;
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(helpText().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "%s: unexpected argument '%s'\n",
                         _program.c_str(), arg.c_str());
            return false;
        }
        arg = arg.substr(2);

        std::string value;
        bool has_value = false;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }

        auto it = _options.find(arg);
        if (it == _options.end()) {
            std::fprintf(stderr, "%s: unknown option '--%s'\n",
                         _program.c_str(), arg.c_str());
            return false;
        }

        if (it->second.kind == Kind::Flag) {
            if (!has_value)
                value = "1";
        } else if (!has_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: option '--%s' needs a value\n",
                             _program.c_str(), arg.c_str());
                return false;
            }
            value = argv[++i];
        }

        if (!assign(arg, value)) {
            std::fprintf(stderr,
                         "%s: bad value '%s' for option '--%s'\n",
                         _program.c_str(), value.c_str(), arg.c_str());
            return false;
        }
    }
    return true;
}

const ArgParser::Option &
ArgParser::find(const std::string &name, Kind kind) const
{
    auto it = _options.find(name);
    if (it == _options.end())
        panic("ArgParser: undeclared option --%s", name.c_str());
    if (it->second.kind != kind)
        panic("ArgParser: option --%s accessed with wrong type",
              name.c_str());
    return it->second;
}

const std::string &
ArgParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(find(name, Kind::Double).value.c_str(),
                       nullptr);
}

long
ArgParser::getInt(const std::string &name) const
{
    return std::strtol(find(name, Kind::Int).value.c_str(), nullptr,
                       10);
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return find(name, Kind::Flag).value == "1";
}

bool
ArgParser::provided(const std::string &name) const
{
    auto it = _options.find(name);
    return it != _options.end() && it->second.provided;
}

std::string
ArgParser::helpText() const
{
    std::ostringstream os;
    os << _program << " — " << _description << "\n\noptions:\n";
    for (const std::string &name : _order) {
        const Option &opt = _options.at(name);
        os << "  --" << name;
        switch (opt.kind) {
          case Kind::String:
            os << " <string>";
            break;
          case Kind::Double:
            os << " <number>";
            break;
          case Kind::Int:
            os << " <int>";
            break;
          case Kind::Flag:
            break;
        }
        os << "\n      " << opt.help;
        if (opt.kind != Kind::Flag)
            os << " (default: " << opt.value << ")";
        os << "\n";
    }
    os << "  --help\n      show this text\n";
    return os.str();
}

} // namespace fastcap
