/**
 * @file
 * Minimal command-line flag parser for the CLI tools. Supports
 * `--flag value`, `--flag=value` and boolean `--flag` forms, typed
 * accessors with defaults, and generated `--help` text.
 */

#ifndef FASTCAP_UTIL_ARGS_HPP
#define FASTCAP_UTIL_ARGS_HPP

#include <map>
#include <string>
#include <vector>

namespace fastcap {

/**
 * Declarative flag set.
 *
 * Usage:
 *   ArgParser args("fastcap_sim", "run a capping experiment");
 *   args.addString("workload", "MIX3", "Table III workload name");
 *   args.addDouble("budget", 0.6, "budget fraction of peak");
 *   args.addFlag("trace", "print per-epoch rows");
 *   if (!args.parse(argc, argv)) return 1;   // --help or error
 *   double b = args.getDouble("budget");
 */
class ArgParser
{
  public:
    ArgParser(std::string program, std::string description);

    /** Declare a string-valued option. */
    void addString(const std::string &name, std::string def,
                   std::string help);
    /** Declare a double-valued option. */
    void addDouble(const std::string &name, double def,
                   std::string help);
    /** Declare an integer-valued option. */
    void addInt(const std::string &name, long def, std::string help);
    /** Declare a boolean switch (false unless present). */
    void addFlag(const std::string &name, std::string help);

    /**
     * Parse argv. Returns false (after printing help or an error) if
     * execution should stop: unknown flag, bad value, or --help.
     */
    bool parse(int argc, const char *const *argv);

    const std::string &getString(const std::string &name) const;
    double getDouble(const std::string &name) const;
    long getInt(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** True if the user supplied the option explicitly. */
    bool provided(const std::string &name) const;

    /** Render the help text. */
    std::string helpText() const;

  private:
    enum class Kind { String, Double, Int, Flag };

    struct Option
    {
        Kind kind;
        std::string help;
        std::string value;  //!< current (default or parsed) value
        bool provided = false;
    };

    const Option &find(const std::string &name, Kind kind) const;
    bool assign(const std::string &name, const std::string &value);

    std::string _program;
    std::string _description;
    std::map<std::string, Option> _options;
    std::vector<std::string> _order;
};

} // namespace fastcap

#endif // FASTCAP_UTIL_ARGS_HPP
