#include "util/csv.hpp"

#include <cstring>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;

    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeCells(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            std::fputc(',', _out);
        const std::string esc = escape(cells[i]);
        std::fwrite(esc.data(), 1, esc.size(), _out);
    }
    std::fputc('\n', _out);
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    if (_wroteHeader)
        panic("CsvWriter::header called twice");
    _wroteHeader = true;
    writeCells(columns);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    writeCells(cells);
    ++_rows;
}

void
CsvWriter::rowNumeric(const std::vector<double> &cells)
{
    std::vector<std::string> out;
    out.reserve(cells.size());
    for (double v : cells) {
        char buf[64];
        checkedSnprintf(buf, sizeof(buf), "%.6g", v);
        out.emplace_back(buf);
    }
    row(out);
}

void
CsvWriter::rowLabeled(const std::string &label,
                      const std::vector<double> &cells)
{
    std::vector<std::string> out;
    out.reserve(cells.size() + 1);
    out.push_back(label);
    for (double v : cells) {
        char buf[64];
        checkedSnprintf(buf, sizeof(buf), "%.6g", v);
        out.emplace_back(buf);
    }
    row(out);
}

} // namespace fastcap
