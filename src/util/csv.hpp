/**
 * @file
 * Minimal CSV emission for benchmark time series. Every figure bench
 * prints its series both as a human-readable table and as CSV rows so
 * plots can be regenerated with any external tool.
 */

#ifndef FASTCAP_UTIL_CSV_HPP
#define FASTCAP_UTIL_CSV_HPP

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace fastcap {

/**
 * Streams rows of a CSV document to a FILE*.
 *
 * Values containing commas, quotes or newlines are quoted per RFC
 * 4180. The writer does not own the stream.
 */
class CsvWriter
{
  public:
    /** @param out destination stream (not owned); default stdout. */
    explicit CsvWriter(std::FILE *out = stdout) : _out(out) {}

    /** Emit the header row. Must be called at most once, first. */
    void header(const std::vector<std::string> &columns);

    /** Emit one row of preformatted cells. */
    void row(const std::vector<std::string> &cells);

    /** Emit one row of doubles with %.6g formatting. */
    void rowNumeric(const std::vector<double> &cells);

    /** Emit a row starting with a label followed by numbers. */
    void rowLabeled(const std::string &label,
                    const std::vector<double> &cells);

    std::size_t rowsWritten() const { return _rows; }

    /** Escape a single cell per RFC 4180. */
    static std::string escape(const std::string &cell);

  private:
    void writeCells(const std::vector<std::string> &cells);

    std::FILE *_out;
    std::size_t _rows = 0;
    bool _wroteHeader = false;
};

} // namespace fastcap

#endif // FASTCAP_UTIL_CSV_HPP
