#include "util/logging.hpp"

#include <cstdlib>
#include <vector>

namespace fastcap {

Logger &
Logger::global()
{
    static Logger instance;
    return instance;
}

void
Logger::emit(LogLevel lvl, const char *tag, const std::string &msg)
{
    if (static_cast<int>(lvl) > static_cast<int>(_level))
        return;
    std::fprintf(_out, "%s: %s\n", tag, msg.c_str());
    std::fflush(_out);
}

namespace detail {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);

    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    const int written = std::vsnprintf(buf.data(), buf.size(), fmt,
                                       args);
    // Cannot panic() from the formatter panic() itself uses; fall
    // back to the raw format string on the (unreachable) mismatch.
    if (written != needed)
        return std::string(fmt);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Inform, "info", msg);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Warn, "warn", msg);
}

void
debugLog(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Debug, "debug", msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Warn, "fatal", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Warn, "panic", msg);
    throw PanicError(msg);
}

} // namespace fastcap
