#include "util/logging.hpp"

#include <cstdlib>
#include <vector>

#include "util/wallclock.hpp"

namespace fastcap {

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "silent")
        return LogLevel::Silent;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "debug")
        return LogLevel::Debug;
    throw FatalError("unknown log level '" + name +
                     "' (want silent|warn|inform|debug)");
}

LogField::LogField(const char *k, double v) : key(k)
{
    value = detail::format("%.6g", v);
}

LogField::LogField(const char *k, long long v) : key(k)
{
    value = detail::format("%lld", v);
}

LogField::LogField(const char *k, unsigned long long v) : key(k)
{
    value = detail::format("%llu", v);
}

Logger &
Logger::global()
{
    static Logger instance;
    return instance;
}

LogLevel
Logger::levelFor(const char *module) const
{
    if (module) {
        LockGuard lock(_mu);
        const auto it = _moduleLevels.find(module);
        if (it != _moduleLevels.end())
            return it->second;
    }
    return _level;
}

void
Logger::moduleLevel(const std::string &module, LogLevel lvl)
{
    LockGuard lock(_mu);
    _moduleLevels[module] = lvl;
}

void
Logger::configure(const std::string &spec)
{
    std::size_t pos = 0;
    bool first = true;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty()) {
            if (first && spec.empty())
                break;
            throw FatalError("empty item in log-level spec '" +
                             spec + "'");
        }
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (!first)
                throw FatalError(
                    "global level must come first in log-level "
                    "spec '" + spec + "'");
            level(parseLogLevel(item));
        } else {
            const std::string module = item.substr(0, eq);
            if (module.empty())
                throw FatalError("empty module in log-level spec '" +
                                 spec + "'");
            moduleLevel(module, parseLogLevel(item.substr(eq + 1)));
        }
        first = false;
        if (comma == spec.size())
            break;
    }
}

void
Logger::write(LogLevel lvl, const std::string &line)
{
    (void)lvl;
    std::string prefix;
    if (_timestamps) {
        // Operator-facing elapsed time only; log lines never feed
        // back into serialized results.
        prefix = detail::format(
            "t=%.3f ",
            wallSeconds()); // fastcap-lint: wall-clock(log-line timestamp, stderr only, never serialized into results)
    }
    LockGuard lock(_mu);
    std::fprintf(_out, "%s%s\n", prefix.c_str(), line.c_str());
    std::fflush(_out);
}

void
Logger::emit(LogLevel lvl, const char *tag, const std::string &msg)
{
    if (static_cast<int>(lvl) > static_cast<int>(_level))
        return;
    write(lvl, std::string(tag) + ": " + msg);
}

namespace {

const char *
levelTag(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "info";
      case LogLevel::Debug:
        return "debug";
      default:
        return "log";
    }
}

/** Quote a value when spaces/'='/quotes would break k=v parsing. */
std::string
kvValue(const std::string &v)
{
    if (v.empty() ||
        v.find_first_of(" =\"\t\n") != std::string::npos) {
        std::string out = "\"";
        for (const char c : v) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        out += '"';
        return out;
    }
    return v;
}

} // namespace

void
Logger::logkv(LogLevel lvl, const char *module, const char *event,
              std::initializer_list<LogField> fields)
{
    if (static_cast<int>(lvl) > static_cast<int>(levelFor(module)))
        return;
    std::string line = levelTag(lvl);
    line += ": module=";
    line += module;
    line += " event=";
    line += event;
    for (const LogField &f : fields) {
        line += ' ';
        line += f.key;
        line += '=';
        line += kvValue(f.value);
    }
    write(lvl, line);
}

namespace detail {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);

    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    const int written = std::vsnprintf(buf.data(), buf.size(), fmt,
                                       args);
    // Cannot panic() from the formatter panic() itself uses; fall
    // back to the raw format string on the (unreachable) mismatch.
    if (written != needed)
        return std::string(fmt);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Inform, "info", msg);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Warn, "warn", msg);
}

void
debugLog(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Debug, "debug", msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Warn, "fatal", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Warn, "panic", msg);
    throw PanicError(msg);
}

} // namespace fastcap
