/**
 * @file
 * Status and error reporting for the FastCap library.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for user errors (bad
 * configuration, impossible budgets), warn()/inform() are advisory.
 */

#ifndef FASTCAP_UTIL_LOGGING_HPP
#define FASTCAP_UTIL_LOGGING_HPP

#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fastcap {

/** Verbosity levels for the global logger. */
enum class LogLevel : int {
    Silent = 0,   //!< no advisory output at all
    Warn = 1,     //!< warnings only
    Inform = 2,   //!< warnings and informational messages
    Debug = 3,    //!< everything, including per-epoch traces
};

/**
 * Process-wide logging configuration.
 *
 * The simulator is single-threaded by design (a discrete-event core),
 * so no locking is required here.
 */
class Logger
{
  public:
    /** Access the process-wide logger. */
    static Logger &global();

    LogLevel level() const { return _level; }
    void level(LogLevel lvl) { _level = lvl; }

    /** Redirect output (default stderr). Not owned. */
    void stream(std::FILE *out) { _out = out; }
    std::FILE *stream() const { return _out; }

    /** Emit a message at the given level with a tag prefix. */
    void emit(LogLevel lvl, const char *tag, const std::string &msg);

  private:
    Logger() = default;

    LogLevel _level = LogLevel::Warn;
    std::FILE *_out = stderr;
};

/** Thrown by fatal(): unrecoverable *user* error (bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Thrown by panic(): unrecoverable *internal* error (library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what) {}
};

namespace detail {

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list args);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Informational message; shown at LogLevel::Inform and above. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning; shown at LogLevel::Warn and above. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug trace; shown only at LogLevel::Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable user error: logs and throws FatalError.
 *
 * Use for bad configuration or impossible requests (e.g., a power
 * budget below the floor power of the machine).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation: logs and throws PanicError.
 *
 * Use for conditions that indicate a bug in this library regardless of
 * user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define FASTCAP_ASSERT(cond)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::fastcap::panic("assertion failed: %s (%s:%d) ",             \
                             #cond, __FILE__, __LINE__);                  \
        }                                                                 \
    } while (0)

} // namespace fastcap

#endif // FASTCAP_UTIL_LOGGING_HPP
