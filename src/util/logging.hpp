/**
 * @file
 * Status and error reporting for the FastCap library.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for user errors (bad
 * configuration, impossible budgets), warn()/inform() are advisory.
 *
 * Two emission surfaces share one Logger:
 *
 *  - the printf-style helpers (inform/warn/debugLog) for free-form
 *    one-liners, filtered by the global level;
 *  - logkv() for structured `key=value` lines tagged with a module
 *    name, filtered per module (`Logger::configure("warn,
 *    engine=debug")` or the CLIs' `--log-level`).
 *
 * Emission is serialized with a mutex — sweep workers, shard
 * workers, and cluster machine threads all log concurrently — but
 * level checks are lock-free. Log output goes to stderr (or the
 * redirected stream) only; nothing here may touch result files.
 */

#ifndef FASTCAP_UTIL_LOGGING_HPP
#define FASTCAP_UTIL_LOGGING_HPP

#include <cstdarg>
#include <cstdio>
#include <initializer_list>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/mutex.hpp"

namespace fastcap {

/** Verbosity levels for the global logger. */
enum class LogLevel : int {
    Silent = 0,   //!< no advisory output at all
    Warn = 1,     //!< warnings only
    Inform = 2,   //!< warnings and informational messages
    Debug = 3,    //!< everything, including per-epoch traces
};

/**
 * Parse "silent" / "warn" / "inform" (or "info") / "debug".
 * Throws FatalError on anything else.
 */
LogLevel parseLogLevel(const std::string &name);

/** One key=value field of a structured log line. */
struct LogField
{
    LogField(const char *k, const std::string &v)
        : key(k), value(v) {}
    LogField(const char *k, const char *v) : key(k), value(v) {}
    LogField(const char *k, double v);
    LogField(const char *k, long long v);
    LogField(const char *k, unsigned long long v);
    LogField(const char *k, int v)
        : LogField(k, static_cast<long long>(v)) {}
    LogField(const char *k, long v)
        : LogField(k, static_cast<long long>(v)) {}
    LogField(const char *k, unsigned v)
        : LogField(k, static_cast<unsigned long long>(v)) {}
    LogField(const char *k, unsigned long v)
        : LogField(k, static_cast<unsigned long long>(v)) {}

    const char *key;
    std::string value;
};

/** Process-wide logging configuration. */
class Logger
{
  public:
    /** Access the process-wide logger. */
    static Logger &global();

    LogLevel level() const { return _level; }
    void level(LogLevel lvl) { _level = lvl; }

    /** Effective level for a module: override or the global level. */
    LogLevel levelFor(const char *module) const;

    /** Override one module's level (nullptr resets the global). */
    void moduleLevel(const std::string &module, LogLevel lvl);

    /**
     * Apply a CLI spec: `LEVEL[,module=LEVEL]...`, e.g.
     * "warn,engine=debug,cluster=silent". Throws FatalError on a
     * malformed spec or unknown level name.
     */
    void configure(const std::string &spec);

    /**
     * Prefix each line with `t=<elapsed wall seconds>`. Off by
     * default so log output stays byte-stable; flip it on only for
     * interactive debugging.
     */
    void timestamps(bool on) { _timestamps = on; }

    /** Redirect output (default stderr). Not owned. */
    void stream(std::FILE *out) { _out = out; }
    std::FILE *stream() const { return _out; }

    /** Emit a message at the given level with a tag prefix. */
    void emit(LogLevel lvl, const char *tag, const std::string &msg);

    /**
     * Emit a structured line if `lvl` passes the module's level:
     * `<tag>: module=<module> event=<event> k=v ...`. Values
     * containing spaces or '=' are quoted.
     */
    void logkv(LogLevel lvl, const char *module, const char *event,
               std::initializer_list<LogField> fields);

  private:
    Logger() = default;

    void write(LogLevel lvl, const std::string &line);

    LogLevel _level = LogLevel::Warn;
    bool _timestamps = false;
    std::FILE *_out = stderr;
    mutable Mutex _mu;
    std::map<std::string, LogLevel> _moduleLevels
        FASTCAP_GUARDED_BY(_mu);
};

/** Thrown by fatal(): unrecoverable *user* error (bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Thrown by panic(): unrecoverable *internal* error (library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what) {}
};

namespace detail {

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list args);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Informational message; shown at LogLevel::Inform and above. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning; shown at LogLevel::Warn and above. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug trace; shown only at LogLevel::Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Structured module-tagged line through Logger::global(). */
inline void
logkv(LogLevel lvl, const char *module, const char *event,
      std::initializer_list<LogField> fields)
{
    Logger::global().logkv(lvl, module, event, fields);
}

/**
 * Unrecoverable user error: logs and throws FatalError.
 *
 * Use for bad configuration or impossible requests (e.g., a power
 * budget below the floor power of the machine).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation: logs and throws PanicError.
 *
 * Use for conditions that indicate a bug in this library regardless of
 * user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define FASTCAP_ASSERT(cond)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::fastcap::panic("assertion failed: %s (%s:%d) ",             \
                             #cond, __FILE__, __LINE__);                  \
        }                                                                 \
    } while (0)

} // namespace fastcap

#endif // FASTCAP_UTIL_LOGGING_HPP
