#include "util/math.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace fastcap {

RootResult
bisect(const std::function<double(double)> &f, double lo, double hi,
       double tol_x, double tol_f, int max_iter)
{
    RootResult res;
    if (lo > hi)
        std::swap(lo, hi);

    double flo = f(lo);
    double fhi = f(hi);

    if (std::abs(flo) <= tol_f) {
        res.x = lo;
        res.fx = flo;
        res.converged = true;
        return res;
    }
    if (std::abs(fhi) <= tol_f) {
        res.x = hi;
        res.fx = fhi;
        res.converged = true;
        return res;
    }
    if (flo * fhi > 0.0) {
        // No sign change: report the endpoint with the smaller
        // residual, not converged.
        if (std::abs(flo) < std::abs(fhi)) {
            res.x = lo;
            res.fx = flo;
        } else {
            res.x = hi;
            res.fx = fhi;
        }
        return res;
    }

    double mid = 0.5 * (lo + hi);
    for (int it = 0; it < max_iter; ++it) {
        mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        res.iterations = it + 1;
        if (std::abs(fmid) <= tol_f || (hi - lo) * 0.5 <= tol_x) {
            res.x = mid;
            res.fx = fmid;
            res.converged = true;
            return res;
        }
        if (flo * fmid < 0.0) {
            hi = mid;
            fhi = fmid;
        } else {
            lo = mid;
            flo = fmid;
        }
    }
    res.x = mid;
    res.fx = f(mid);
    res.converged = false;
    return res;
}

RootResult
solveMonotone(const std::function<double(double)> &f, double lo, double hi,
              double tol_x, double tol_f, int max_iter)
{
    RootResult res;
    if (lo > hi)
        std::swap(lo, hi);

    const double flo = f(lo);
    if (flo >= 0.0) {
        // Even the lowest x overshoots: saturate low.
        res.x = lo;
        res.fx = flo;
        res.converged = true;
        return res;
    }
    const double fhi = f(hi);
    if (fhi <= 0.0) {
        // Even the highest x undershoots: saturate high.
        res.x = hi;
        res.fx = fhi;
        res.converged = true;
        return res;
    }
    return bisect(f, lo, hi, tol_x, tol_f, max_iter);
}

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    LinearFit fit;
    const size_t n = std::min(xs.size(), ys.size());
    if (n < 2)
        return fit;

    double sx = 0.0, sy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / static_cast<double>(n);
    const double my = sy / static_cast<double>(n);

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (sxx <= 0.0)
        return fit;

    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
    fit.valid = true;
    return fit;
}

PowerLawFit
fitPowerLaw(const std::vector<double> &xs, const std::vector<double> &ys)
{
    PowerLawFit fit;
    const size_t n = std::min(xs.size(), ys.size());

    std::vector<double> lx, ly;
    lx.reserve(n);
    ly.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (xs[i] > 0.0 && ys[i] > 0.0) {
            lx.push_back(std::log(xs[i]));
            ly.push_back(std::log(ys[i]));
        }
    }
    const LinearFit lin = fitLinear(lx, ly);
    if (!lin.valid)
        return fit;

    fit.scale = std::exp(lin.intercept);
    fit.exponent = lin.slope;
    fit.r2 = lin.r2;
    fit.valid = true;
    return fit;
}

double
clampSafe(double v, double lo, double hi)
{
    if (lo > hi)
        std::swap(lo, hi);
    return std::clamp(v, lo, hi);
}

bool
approxEqual(double a, double b, double tol)
{
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= tol * scale;
}

} // namespace fastcap
