#include "util/math.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace fastcap {

namespace {

/**
 * Bisection core operating on already-evaluated endpoint residuals.
 * `res.iterations` must arrive pre-seeded with the evaluations the
 * caller spent producing flo/fhi; the core adds one per midpoint.
 * Identical iterate sequence to the historical bisect(): callers that
 * pre-evaluate endpoints get bit-identical roots, just fewer calls.
 */
RootResult
bisectCore(const std::function<double(double)> &f, double lo, double flo,
           double hi, double fhi, double tol_x, double tol_f,
           int max_iter, RootResult res)
{
    if (std::abs(flo) <= tol_f) {
        res.x = lo;
        res.fx = flo;
        res.converged = true;
        return res;
    }
    if (std::abs(fhi) <= tol_f) {
        res.x = hi;
        res.fx = fhi;
        res.converged = true;
        return res;
    }
    if (flo * fhi > 0.0) {
        // No sign change: report the endpoint with the smaller
        // residual, not converged.
        if (std::abs(flo) < std::abs(fhi)) {
            res.x = lo;
            res.fx = flo;
        } else {
            res.x = hi;
            res.fx = fhi;
        }
        return res;
    }

    double mid = 0.5 * (lo + hi);
    double fmid = flo;
    for (int it = 0; it < max_iter; ++it) {
        mid = 0.5 * (lo + hi);
        fmid = f(mid);
        ++res.iterations;
        if (std::abs(fmid) <= tol_f || (hi - lo) * 0.5 <= tol_x) {
            res.x = mid;
            res.fx = fmid;
            res.converged = true;
            return res;
        }
        if (flo * fmid < 0.0) {
            hi = mid;
            fhi = fmid;
        } else {
            lo = mid;
            flo = fmid;
        }
    }
    // Iteration budget exhausted: report the last midpoint actually
    // evaluated (not a fresh one the loop never examined). A
    // non-positive max_iter never evaluates a midpoint; report the
    // bracketing endpoint with the smaller residual instead.
    if (max_iter <= 0) {
        res.x = std::abs(flo) < std::abs(fhi) ? lo : hi;
        res.fx = std::abs(flo) < std::abs(fhi) ? flo : fhi;
    } else {
        res.x = mid;
        res.fx = fmid;
    }
    res.converged = false;
    return res;
}

} // namespace

RootResult
bisect(const std::function<double(double)> &f, double lo, double hi,
       double tol_x, double tol_f, int max_iter)
{
    RootResult res;
    if (lo > hi)
        std::swap(lo, hi);

    const double flo = f(lo);
    res.iterations = 1;
    if (std::abs(flo) <= tol_f) {
        res.x = lo;
        res.fx = flo;
        res.converged = true;
        return res;
    }
    const double fhi = f(hi);
    res.iterations = 2;
    return bisectCore(f, lo, flo, hi, fhi, tol_x, tol_f, max_iter,
                      res);
}

RootResult
bisectWithEndpoints(const std::function<double(double)> &f,
                    double lo, double flo, double hi, double fhi,
                    double tol_x, double tol_f, int max_iter)
{
    if (lo > hi)
        fatal("bisectWithEndpoints: lo (%g) > hi (%g)", lo, hi);
    return bisectCore(f, lo, flo, hi, fhi, tol_x, tol_f, max_iter,
                      RootResult{});
}

RootResult
solveMonotone(const std::function<double(double)> &f, double lo, double hi,
              double tol_x, double tol_f, int max_iter)
{
    RootResult res;
    if (lo > hi)
        std::swap(lo, hi);

    const double flo = f(lo);
    res.iterations = 1;
    if (flo >= 0.0) {
        // Even the lowest x overshoots: saturate low. Only flag the
        // clamp when the residual is genuinely large — an endpoint
        // sitting on the root within tol_f is a root, not saturation.
        res.x = lo;
        res.fx = flo;
        res.converged = true;
        res.saturated = std::abs(flo) > tol_f;
        return res;
    }
    const double fhi = f(hi);
    res.iterations = 2;
    if (fhi <= 0.0) {
        // Even the highest x undershoots: saturate high.
        res.x = hi;
        res.fx = fhi;
        res.converged = true;
        res.saturated = std::abs(fhi) > tol_f;
        return res;
    }
    // Reuse the endpoint residuals computed above: the bisection sees
    // the exact values a fresh evaluation would produce (f is
    // deterministic), so the root is bit-identical to the historical
    // re-evaluating path while costing two calls less per solve.
    return bisectCore(f, lo, flo, hi, fhi, tol_x, tol_f, max_iter,
                      res);
}

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    LinearFit fit;
    const size_t n = std::min(xs.size(), ys.size());
    if (n < 2)
        return fit;

    double sx = 0.0, sy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / static_cast<double>(n);
    const double my = sy / static_cast<double>(n);

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (sxx <= 0.0)
        return fit;

    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
    fit.valid = true;
    return fit;
}

PowerLawFit
fitPowerLaw(const std::vector<double> &xs, const std::vector<double> &ys)
{
    PowerLawFit fit;
    const size_t n = std::min(xs.size(), ys.size());

    std::vector<double> lx, ly;
    lx.reserve(n);
    ly.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (xs[i] > 0.0 && ys[i] > 0.0) {
            lx.push_back(std::log(xs[i]));
            ly.push_back(std::log(ys[i]));
        }
    }
    const LinearFit lin = fitLinear(lx, ly);
    if (!lin.valid)
        return fit;

    fit.scale = std::exp(lin.intercept);
    fit.exponent = lin.slope;
    fit.r2 = lin.r2;
    fit.valid = true;
    return fit;
}

double
clampSafe(double v, double lo, double hi)
{
    if (lo > hi)
        std::swap(lo, hi);
    return std::clamp(v, lo, hi);
}

bool
approxEqual(double a, double b, double tol)
{
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= tol * scale;
}

} // namespace fastcap
