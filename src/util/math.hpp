/**
 * @file
 * Numerical routines used by the FastCap solver and power-model
 * fitting: bracketed root finding and least-squares fits.
 */

#ifndef FASTCAP_UTIL_MATH_HPP
#define FASTCAP_UTIL_MATH_HPP

#include <cstdint>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

namespace fastcap {

/**
 * Bit pattern of a double: the *exact* equality key (-0.0 != 0.0,
 * NaNs by payload) used wherever "same value" must mean "same bits" —
 * solver equivalence classes, ladder-mapping memoisation, cache keys.
 */
inline std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Result of a 1-D root solve. */
struct RootResult
{
    double x = 0.0;        //!< located root (or best bracket midpoint)
    double fx = 0.0;       //!< residual f(x)
    /**
     * Function evaluations consumed, counted in every return path
     * (endpoint pre-checks included) so callers can meter cost even
     * when the solve exits before the main loop.
     */
    int iterations = 0;
    bool converged = false;
    /**
     * The solve clamped to a bracket endpoint whose residual exceeds
     * tol_f: no root lies inside [lo, hi]. Distinguishes a genuine
     * root at an endpoint (converged, !saturated) from a solve pinned
     * against the bracket (converged, saturated, |fx| large) — e.g. a
     * power budget below the platform's floor power.
     */
    bool saturated = false;
};

/**
 * Find x in [lo, hi] with f(x) = 0 by bisection.
 *
 * Requires f(lo) and f(hi) to have opposite signs (or either to be
 * within tol of zero). f must be continuous; monotonicity is not
 * required but makes the root unique.
 *
 * @param f        function to solve
 * @param lo       lower bracket
 * @param hi       upper bracket
 * @param tol_x    absolute tolerance on x
 * @param tol_f    absolute tolerance on f(x)
 * @param max_iter iteration cap
 */
RootResult bisect(const std::function<double(double)> &f,
                  double lo, double hi,
                  double tol_x = 1e-12, double tol_f = 1e-9,
                  int max_iter = 200);

/**
 * bisect() for callers that have already evaluated the bracket
 * endpoints (flo = f(lo), fhi = f(hi)): identical iterate sequence —
 * and therefore a bit-identical root — without re-evaluating them.
 * Requires lo <= hi. The returned `iterations` counts only the
 * midpoint evaluations made here; add your own endpoint cost.
 */
RootResult bisectWithEndpoints(const std::function<double(double)> &f,
                               double lo, double flo,
                               double hi, double fhi,
                               double tol_x = 1e-12,
                               double tol_f = 1e-9,
                               int max_iter = 200);

/**
 * Solve f(x) = 0 for a *monotonically increasing* f on [lo, hi],
 * clamping to the endpoints when the root lies outside the bracket:
 * returns lo if f(lo) > 0, hi if f(hi) < 0. A clamped solve whose
 * endpoint residual exceeds tol_f reports saturated = true (still
 * converged: the clamp IS the answer for a monotone f, but it is not
 * a root and callers must not treat the residual as small).
 *
 * This is the shape of FastCap's inner solve: total power is
 * increasing in the performance factor D, and budgets above/below the
 * achievable range saturate at the frequency-ladder ends.
 */
RootResult solveMonotone(const std::function<double(double)> &f,
                         double lo, double hi,
                         double tol_x = 1e-12, double tol_f = 1e-9,
                         int max_iter = 200);

/** Slope/intercept pair from a linear least-squares fit. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination; 1 means a perfect fit. */
    double r2 = 0.0;
    bool valid = false;
};

/**
 * Ordinary least squares y = slope * x + intercept.
 *
 * Needs at least two points with distinct x. With exactly two points
 * the fit is exact and r2 = 1.
 */
LinearFit fitLinear(const std::vector<double> &xs, const std::vector<double> &ys);

/** Parameters of a power-law fit y = scale * x^exponent. */
struct PowerLawFit
{
    double scale = 0.0;
    double exponent = 0.0;
    double r2 = 0.0;
    bool valid = false;
};

/**
 * Fit y = scale * x^exponent by linear least squares in log-log space.
 *
 * Points with non-positive x or y are ignored (they have no
 * logarithm); the fit is invalid if fewer than two usable points with
 * distinct x remain. This is exactly the fit FastCap's governor runs
 * each epoch to recover (P_i, alpha_i) from (frequency-ratio, dynamic
 * power) samples.
 */
PowerLawFit fitPowerLaw(const std::vector<double> &xs,
                        const std::vector<double> &ys);

/** Clamp helper mirroring std::clamp but tolerant of lo > hi. */
double clampSafe(double v, double lo, double hi);

/** True if |a - b| <= tol * max(1, |a|, |b|). */
bool approxEqual(double a, double b, double tol = 1e-9);

} // namespace fastcap

#endif // FASTCAP_UTIL_MATH_HPP
