/**
 * @file
 * std::mutex wrapped as an annotated capability, so clang's
 * -Wthread-safety analysis can check lock discipline on the shared
 * state it guards (libstdc++'s std::mutex carries no capability
 * attribute, which silences the analysis entirely).
 *
 * Use `Mutex` + `FASTCAP_GUARDED_BY(_mu)` on the data, `LockGuard`
 * for plain critical sections, and `UniqueLock` where a
 * condition_variable_any needs to release/reacquire around a wait.
 */

#ifndef FASTCAP_UTIL_MUTEX_HPP
#define FASTCAP_UTIL_MUTEX_HPP

#include <mutex>

#include "util/thread_annotations.hpp"

namespace fastcap {

/** An annotated std::mutex (a clang "capability"). */
class FASTCAP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() FASTCAP_ACQUIRE_SELF { _m.lock(); }
    void unlock() FASTCAP_RELEASE_SELF { _m.unlock(); }
    bool try_lock() FASTCAP_TRY_ACQUIRE(true) { return _m.try_lock(); }

  private:
    std::mutex _m;
};

/** RAII critical section over an annotated Mutex. */
class FASTCAP_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) FASTCAP_ACQUIRE(m) : _m(m)
    {
        _m.lock();
    }
    ~LockGuard() FASTCAP_RELEASE_SELF { _m.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &_m;
};

/**
 * RAII lock that satisfies BasicLockable, for
 * std::condition_variable_any waits over an annotated Mutex. Always
 * constructed locked; the condition variable's wait() releases and
 * reacquires through lock()/unlock(), which keeps the capability
 * bookkeeping consistent from the caller's point of view (held
 * before wait, held after).
 */
class FASTCAP_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &m) FASTCAP_ACQUIRE(m) : _m(m)
    {
        _m.lock();
    }
    ~UniqueLock() FASTCAP_RELEASE_SELF { _m.unlock(); }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    // BasicLockable surface used by condition_variable_any::wait.
    // Deliberately unannotated: from the analysis's perspective the
    // lock is held across the whole wait.
    void lock() FASTCAP_NO_THREAD_SAFETY_ANALYSIS { _m.lock(); }
    void unlock() FASTCAP_NO_THREAD_SAFETY_ANALYSIS { _m.unlock(); }

  private:
    Mutex &_m;
};

} // namespace fastcap

#endif // FASTCAP_UTIL_MUTEX_HPP
