/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * We use xoshiro256** (public domain, Blackman & Vigna) rather than
 * std::mt19937 for speed and reproducibility across standard library
 * implementations: simulation results in EXPERIMENTS.md must be
 * regenerable bit-for-bit from a seed.
 */

#ifndef FASTCAP_UTIL_RNG_HPP
#define FASTCAP_UTIL_RNG_HPP

#include <array>
#include <cmath>
#include <cstdint>

namespace fastcap {

/** SplitMix64 output mixing function (Steele, Lea & Flood). */
inline std::uint64_t
splitmix64Mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * n-th output of the SplitMix64 stream seeded with `base`, in O(1):
 * the stream's state is just base + (n+1) * golden-ratio increment,
 * so any output can be computed directly. Used to derive independent
 * per-run seeds from (baseSeed, runIndex) — bit-identical no matter
 * which thread runs which grid point in which order.
 */
inline std::uint64_t
splitmix64(std::uint64_t base, std::uint64_t n)
{
    return splitmix64Mix(base + (n + 1) * 0x9e3779b97f4a7c15ULL);
}

/**
 * xoshiro256** generator with SplitMix64 seeding.
 *
 * Satisfies the essentials of UniformRandomBitGenerator, plus
 * convenience draws used by the simulator (uniform doubles,
 * exponential and lognormal variates, bounded integers).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the four lanes from a single 64-bit seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        for (std::size_t i = 0; i < _state.size(); ++i)
            _state[i] = splitmix64(seed, i);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit draw. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;

        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 high bits give a uniformly spaced double in [0,1).
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for the n used here (bank counts, app counts).
        __extension__ typedef unsigned __int128 uint128_t;
        const uint128_t m = static_cast<uint128_t>(operator()()) * n;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Exponential variate with the given mean. */
    double
    exponential(double mean)
    {
        // log1p(-u) is safe: u < 1 by construction of uniform().
        const double u = uniform();
        return -mean * std::log1p(-u);
    }

    /** Standard normal via Box-Muller (one value per call). */
    double
    normal()
    {
        if (_haveSpare) {
            _haveSpare = false;
            return _spare;
        }
        double u1 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        _spare = r * std::sin(theta);
        _haveSpare = true;
        return r * std::cos(theta);
    }

    /** Normal variate with given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /**
     * Positive noise factor with unit mean: lognormal with sigma
     * controlling relative spread. Used to jitter service and think
     * times without changing their means much (mean exp adjusting).
     */
    double
    jitter(double sigma)
    {
        const double n = normal();
        return std::exp(sigma * n - 0.5 * sigma * sigma);
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

    /** Fork a stream deterministically (for per-core streams). */
    Rng
    split(std::uint64_t stream_id)
    {
        return Rng(operator()() ^
                   (stream_id * 0x9e3779b97f4a7c15ULL + 0x3c6ef372fe94f82bULL));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> _state;
    double _spare = 0.0;
    bool _haveSpare = false;
};

} // namespace fastcap

#endif // FASTCAP_UTIL_RNG_HPP
