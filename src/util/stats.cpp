#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hpp"

namespace fastcap {

void
RunningStat::reset()
{
    *this = RunningStat();
}

void
RunningStat::add(double x)
{
    ++_n;
    _sum += x;
    const double delta = x - _mean;
    _mean += delta / static_cast<double>(_n);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

double
RunningStat::variance() const
{
    return (_n > 1) ? _m2 / static_cast<double>(_n - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return _n ? _min : 0.0;
}

double
RunningStat::max() const
{
    return _n ? _max : 0.0;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other._n == 0)
        return;
    if (_n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(_n);
    const double nb = static_cast<double>(other._n);
    const double delta = other._mean - _mean;
    const double n = na + nb;
    _mean += delta * nb / n;
    _m2 += other._m2 + delta * delta * na * nb / n;
    _n += other._n;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

void
TimeWeightedStat::reset(double start_time, double initial_value)
{
    _startTime = start_time;
    _lastTime = start_time;
    _value = initial_value;
    _area = 0.0;
}

void
TimeWeightedStat::record(double value, double now)
{
    if (now < _lastTime)
        panic("TimeWeightedStat::record: time went backwards "
              "(%g < %g)", now, _lastTime);
    _area += _value * (now - _lastTime);
    _lastTime = now;
    _value = value;
}

double
TimeWeightedStat::mean(double now) const
{
    const double span = now - _startTime;
    if (span <= 0.0)
        return _value;
    const double area = _area + _value * (now - _lastTime);
    return area / span;
}

Ewma::Ewma(double alpha) : _alpha(alpha)
{
    if (!(alpha > 0.0) || alpha > 1.0)
        fatal("Ewma: alpha must be in (0, 1] (got %g)", alpha);
}

void
Ewma::add(double x)
{
    if (!_seeded) {
        _value = x;
        _seeded = true;
    } else {
        _value = _alpha * x + (1.0 - _alpha) * _value;
    }
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : _lo(lo), _hi(hi), _width((hi - lo) / static_cast<double>(bins)),
      _counts(bins, 0)
{
    if (bins == 0 || hi <= lo)
        fatal("Histogram: need hi > lo and bins > 0 (lo=%g hi=%g "
              "bins=%zu)", lo, hi, bins);
}

void
Histogram::add(double x)
{
    ++_total;
    if (x < _lo) {
        ++_underflow;
        return;
    }
    if (x >= _hi) {
        ++_overflow;
        return;
    }
    auto idx = static_cast<std::size_t>((x - _lo) / _width);
    idx = std::min(idx, _counts.size() - 1);
    ++_counts[idx];
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _underflow = _overflow = _total = 0;
}

double
Histogram::binLo(std::size_t i) const
{
    return _lo + _width * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i) + _width;
}

double
Histogram::quantile(double q) const
{
    if (_total == 0)
        return _lo;
    q = std::clamp(q, 0.0, 1.0);

    // q = 1 with nothing past the top: the maximum observed value
    // lies in the highest occupied bin, so report that bin's upper
    // edge rather than the histogram bound _hi. Handled explicitly
    // because the general path depends on `target <= cum` holding
    // exactly at the top bin, which breaks once counts exceed 2^53
    // and q * total rounds up — then it would fall through to _hi.
    if (q >= 1.0 && _overflow == 0) {
        for (std::size_t i = _counts.size(); i-- > 0;)
            if (_counts[i] > 0)
                return binHi(i);
        return _lo; // only underflow samples
    }

    const double target = q * static_cast<double>(_total);

    double cum = static_cast<double>(_underflow);
    if (target <= cum)
        return _lo;
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        const double next = cum + static_cast<double>(_counts[i]);
        if (target <= next && _counts[i] > 0) {
            const double frac = (target - cum) /
                static_cast<double>(_counts[i]);
            return binLo(i) + frac * _width;
        }
        cum = next;
    }
    return _hi;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "n=" << _total
       << " p50=" << quantile(0.5)
       << " p90=" << quantile(0.9)
       << " p99=" << quantile(0.99)
       << " under=" << _underflow
       << " over=" << _overflow;
    return os.str();
}

} // namespace fastcap
