/**
 * @file
 * Lightweight statistics containers: running moments, time-weighted
 * averages (for queue lengths), exponentially weighted moving
 * averages, and fixed-bin histograms.
 */

#ifndef FASTCAP_UTIL_STATS_HPP
#define FASTCAP_UTIL_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fastcap {

/**
 * Streaming mean / variance / min / max over samples (Welford).
 */
class RunningStat
{
  public:
    void reset();
    void add(double x);

    std::uint64_t count() const { return _n; }
    bool empty() const { return _n == 0; }
    double mean() const { return _n ? _mean : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return _sum; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    std::uint64_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Time-weighted average of a piecewise-constant signal, used for
 * average queue lengths: record(value, now) extends the previous value
 * up to `now`, then switches to `value`.
 */
class TimeWeightedStat
{
  public:
    /** Start (or restart) accumulation at the given time/value. */
    void reset(double start_time, double initial_value);

    /** The signal changes to `value` at time `now` (now >= last). */
    void record(double value, double now);

    /** Close the window at `now` and return the time-weighted mean. */
    double mean(double now) const;

    double current() const { return _value; }
    double elapsed(double now) const { return now - _startTime; }

  private:
    double _startTime = 0.0;
    double _lastTime = 0.0;
    double _value = 0.0;
    double _area = 0.0;
};

/** Exponentially weighted moving average. */
class Ewma
{
  public:
    /**
     * @param alpha weight of the newest sample, in (0, 1]. Values
     *              outside that range are a user error and fatal():
     *              alpha <= 0 freezes the average at its seed (or
     *              diverges for negative alpha), alpha > 1
     *              oscillates.
     */
    explicit Ewma(double alpha = 0.25);

    void reset() { _seeded = false; _value = 0.0; }
    void add(double x);
    double value() const { return _value; }
    double alpha() const { return _alpha; }
    bool seeded() const { return _seeded; }

  private:
    double _alpha = 0.0;
    double _value = 0.0;
    bool _seeded = false;
};

/**
 * Fixed-width-bin histogram over [lo, hi) with under/overflow bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void reset();

    std::size_t bins() const { return _counts.size(); }
    std::uint64_t binCount(std::size_t i) const { return _counts.at(i); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t total() const { return _total; }

    /** Lower edge of bin i. */
    double binLo(std::size_t i) const;
    /** Upper edge of bin i. */
    double binHi(std::size_t i) const;

    /** Approximate quantile (q in [0,1]) by linear bin interpolation. */
    double quantile(double q) const;

    /** Render a compact one-line summary for logs. */
    std::string summary() const;

  private:
    double _lo = 0.0;
    double _hi = 0.0;
    double _width = 0.0;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

} // namespace fastcap

#endif // FASTCAP_UTIL_STATS_HPP
