/**
 * @file
 * Small string helpers shared by the spec/schedule parsers.
 */

#ifndef FASTCAP_UTIL_STRINGS_HPP
#define FASTCAP_UTIL_STRINGS_HPP

#include <cmath>
#include <cstdlib>
#include <string>

namespace fastcap {

/** Copy of `s` without leading/trailing spaces, tabs or CRs. */
inline std::string
trimmed(const std::string &s)
{
    const auto a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return std::string();
    const auto b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

/**
 * Strict full-string double parse into `out`. False on empty input,
 * trailing junk, or non-finite values — schedule times and budget
 * fractions must never be nan/inf (nan would defeat ordering checks
 * and make binary searches over segments unspecified).
 */
inline bool
parseDouble(const std::string &s, double &out)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end == s.c_str() || *end != '\0' ||
        !std::isfinite(v))
        return false;
    out = v;
    return true;
}

} // namespace fastcap

#endif // FASTCAP_UTIL_STRINGS_HPP
