/**
 * @file
 * Small string helpers shared by the spec/schedule parsers, plus the
 * checked formatting primitive the R3 lint rule points at.
 */

#ifndef FASTCAP_UTIL_STRINGS_HPP
#define FASTCAP_UTIL_STRINGS_HPP

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/logging.hpp"

namespace fastcap {

/**
 * snprintf that enforces the format contract (lint rule R3): panics
 * on encoding errors and on truncation. For fixed-size buffers whose
 * formats are bounded by construction — silent truncation here is the
 * bug class that once merged distinct peak-power cache keys and
 * corrupted paired-seed sweeps, so it is a panic, never a best-effort
 * result.
 *
 * @return number of characters written (excluding the terminator).
 */
__attribute__((format(printf, 3, 4))) inline int
checkedSnprintf(char *buf, std::size_t size, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, size, fmt, args);
    va_end(args);
    if (n < 0)
        panic("checkedSnprintf: encoding error for format '%s'", fmt);
    if (static_cast<std::size_t>(n) >= size)
        panic("checkedSnprintf: '%s' needs %d bytes, buffer has %zu",
              fmt, n + 1, size);
    return n;
}

/** Copy of `s` without leading/trailing spaces, tabs or CRs. */
inline std::string
trimmed(const std::string &s)
{
    const auto a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return std::string();
    const auto b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

/**
 * Strict full-string double parse into `out`. False on empty input,
 * trailing junk, or non-finite values — schedule times and budget
 * fractions must never be nan/inf (nan would defeat ordering checks
 * and make binary searches over segments unspecified).
 */
inline bool
parseDouble(const std::string &s, double &out)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end == s.c_str() || *end != '\0' ||
        !std::isfinite(v))
        return false;
    out = v;
    return true;
}

} // namespace fastcap

#endif // FASTCAP_UTIL_STRINGS_HPP
