#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace fastcap {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : _header(std::move(header))
{
    if (_header.empty())
        fatal("AsciiTable: header must not be empty");
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _header.size())
        panic("AsciiTable: row has %zu cells, header has %zu",
              cells.size(), _header.size());
    _rows.push_back(std::move(cells));
}

std::string
AsciiTable::num(double v, int precision)
{
    char buf[64];
    const int needed = std::snprintf(buf, sizeof(buf), "%.*f",
                                     precision, v);
    if (needed < 0)
        panic("AsciiTable::num: snprintf encoding error");
    if (static_cast<std::size_t>(needed) < sizeof(buf))
        return std::string(buf);
    // Extreme magnitudes overflow the fast path: %.6f of 1e300 needs
    // over 300 characters. Retry at the measured length rather than
    // rendering a silently truncated (i.e. wrong) number.
    std::string out(static_cast<std::size_t>(needed), '\0');
    const int written = std::snprintf(&out[0], out.size() + 1, "%.*f",
                                      precision, v);
    if (written != needed)
        panic("AsciiTable::num: inconsistent snprintf sizing "
              "(%d vs %d)", written, needed);
    return out;
}

void
AsciiTable::addRowNumeric(const std::string &label,
                          const std::vector<double> &cells, int precision)
{
    std::vector<std::string> row;
    row.reserve(cells.size() + 1);
    row.push_back(label);
    for (double v : cells)
        row.push_back(num(v, precision));
    addRow(std::move(row));
}

std::string
AsciiTable::render() const
{
    std::vector<std::size_t> widths(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, _header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : _rows)
        emit_row(os, row);
    return os.str();
}

void
AsciiTable::print(std::FILE *out) const
{
    const std::string s = render();
    std::fwrite(s.data(), 1, s.size(), out);
    std::fflush(out);
}

} // namespace fastcap
