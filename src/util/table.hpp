/**
 * @file
 * ASCII table rendering for benchmark output. Benches print the same
 * rows the paper's tables/figures report; this formatter keeps the
 * output aligned and diff-friendly.
 */

#ifndef FASTCAP_UTIL_TABLE_HPP
#define FASTCAP_UTIL_TABLE_HPP

#include <cstdio>
#include <string>
#include <vector>

namespace fastcap {

/**
 * Column-aligned ASCII table with a header row and separator.
 *
 * Usage:
 *   AsciiTable t({"workload", "power", "perf"});
 *   t.addRow({"MIX3", "0.599", "1.18"});
 *   t.print(stdout);
 */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> header);

    /** Append a body row; must match the header's column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a row of doubles, formatted with the given precision. */
    void addRowNumeric(const std::string &label,
                       const std::vector<double> &cells,
                       int precision = 3);

    std::size_t rows() const { return _rows.size(); }
    std::size_t columns() const { return _header.size(); }

    /** Render the table to a string. */
    std::string render() const;

    /** Render the table to a stream. */
    void print(std::FILE *out = stdout) const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 3);

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace fastcap

#endif // FASTCAP_UTIL_TABLE_HPP
