/**
 * @file
 * Clang thread-safety analysis annotations (-Wthread-safety).
 *
 * The determinism contract is enforced statically on two fronts: the
 * fastcap_lint pass (tools/lint/) covers ordering/entropy/format
 * invariants, and these annotations let clang prove lock discipline
 * on the few pieces of genuinely shared mutable state — the
 * thread-pool queue and wait-barrier, and the peak-power memo cache.
 * Under GCC (which has no analysis) they expand to nothing.
 *
 * Macro set follows the standard capability vocabulary; see
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and
 * docs/STATIC_ANALYSIS.md ("Thread-safety annotations").
 */

#ifndef FASTCAP_UTIL_THREAD_ANNOTATIONS_HPP
#define FASTCAP_UTIL_THREAD_ANNOTATIONS_HPP

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FASTCAP_THREAD_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef FASTCAP_THREAD_ATTR
#define FASTCAP_THREAD_ATTR(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define FASTCAP_CAPABILITY(x) FASTCAP_THREAD_ATTR(capability(x))

/** Marks an RAII type that holds a capability for its lifetime. */
#define FASTCAP_SCOPED_CAPABILITY FASTCAP_THREAD_ATTR(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define FASTCAP_GUARDED_BY(x) FASTCAP_THREAD_ATTR(guarded_by(x))

/** Pointer member whose *pointee* is guarded by `x`. */
#define FASTCAP_PT_GUARDED_BY(x) FASTCAP_THREAD_ATTR(pt_guarded_by(x))

/** Function callable only while holding the given capabilities. */
#define FASTCAP_REQUIRES(...) \
    FASTCAP_THREAD_ATTR(requires_capability(__VA_ARGS__))

/** Function that acquires the capability and holds it on return. */
#define FASTCAP_ACQUIRE(...) \
    FASTCAP_THREAD_ATTR(acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define FASTCAP_RELEASE(...) \
    FASTCAP_THREAD_ATTR(release_capability(__VA_ARGS__))

/*
 * Zero-argument forms for a capability type's own methods (the
 * capability is `this`). Separate spellings because invoking a
 * variadic macro with no arguments is ill-formed pre-C++20 and the
 * tree builds with -Wpedantic.
 */
#define FASTCAP_ACQUIRE_SELF FASTCAP_THREAD_ATTR(acquire_capability())
#define FASTCAP_RELEASE_SELF FASTCAP_THREAD_ATTR(release_capability())

/**
 * Function that tries to acquire; the first argument is the success
 * return value, any further arguments name the capabilities.
 */
#define FASTCAP_TRY_ACQUIRE(...) \
    FASTCAP_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called while holding the capability. */
#define FASTCAP_EXCLUDES(...) \
    FASTCAP_THREAD_ATTR(locks_excluded(__VA_ARGS__))

/** Assert (to the analysis) that the capability is already held. */
#define FASTCAP_ASSERT_CAPABILITY(x) \
    FASTCAP_THREAD_ATTR(assert_capability(x))

/** Return value of a function that exposes the underlying mutex. */
#define FASTCAP_RETURN_CAPABILITY(x) \
    FASTCAP_THREAD_ATTR(lock_returned(x))

/** Escape hatch: disable the analysis for one function. */
#define FASTCAP_NO_THREAD_SAFETY_ANALYSIS \
    FASTCAP_THREAD_ATTR(no_thread_safety_analysis)

#endif // FASTCAP_UTIL_THREAD_ANNOTATIONS_HPP
