#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace fastcap {

std::size_t
ThreadPool::hardwareWorkers()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = hardwareWorkers();
    _workers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lock(_mu);
        _stopping = true;
    }
    _wake.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
ThreadPool::submit(Job job)
{
    if (!job)
        panic("ThreadPool::submit: empty job");
    {
        LockGuard lock(_mu);
        if (_stopping)
            panic("ThreadPool::submit: pool is shutting down");
        _jobs.push_back(std::move(job));
    }
    _wake.notify_one();
}

// The two condition-variable loops below hand the lock back and
// forth through cv waits and manual unlock/relock, which clang's
// function-at-a-time analysis cannot follow (the wait predicates are
// separate lambdas to it); they opt out explicitly. Every other
// access to the guarded members is checked.
void
ThreadPool::wait() FASTCAP_NO_THREAD_SAFETY_ANALYSIS
{
    UniqueLock lock(_mu);
    _idle.wait(lock, [this] { return _jobs.empty() && _active == 0; });
    if (_firstError) {
        std::exception_ptr err = std::exchange(_firstError, nullptr);
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop() FASTCAP_NO_THREAD_SAFETY_ANALYSIS
{
    UniqueLock lock(_mu);
    for (;;) {
        _wake.wait(lock,
                   [this] { return _stopping || !_jobs.empty(); });
        if (_jobs.empty()) // stopping and drained
            return;
        Job job = std::move(_jobs.front());
        _jobs.pop_front();
        ++_active;
        lock.unlock();
        try {
            job();
        } catch (...) {
            lock.lock();
            if (!_firstError)
                _firstError = std::current_exception();
            --_active;
            if (_jobs.empty() && _active == 0)
                _idle.notify_all();
            continue;
        }
        lock.lock();
        --_active;
        if (_jobs.empty() && _active == 0)
            _idle.notify_all();
    }
}

} // namespace fastcap
