#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/registry.hpp"
#include "util/logging.hpp"
#include "util/wallclock.hpp"

namespace fastcap {

namespace {

/** Shared log-spaced µs edges for the pool latency histograms. */
const std::vector<double> &
latencyEdgesUs()
{
    static const std::vector<double> edges{1.0,   10.0,  100.0, 1e3,
                                           1e4,   1e5,   1e6};
    return edges;
}

} // namespace

std::size_t
ThreadPool::hardwareWorkers()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = hardwareWorkers();
    _workers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lock(_mu);
        _stopping = true;
    }
    _wake.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
ThreadPool::submit(Job job)
{
    if (!job)
        panic("ThreadPool::submit: empty job");
    double now_s = 0.0;
    if (telemetry::enabled()) {
        // fastcap-lint: wall-clock(pool wait-time telemetry stamp, operator-facing metrics only, never serialized into results)
        now_s = wallSeconds();
    }
    std::size_t depth = 0;
    {
        LockGuard lock(_mu);
        if (_stopping)
            panic("ThreadPool::submit: pool is shutting down");
        _jobs.push_back(Task{std::move(job), now_s});
        depth = _jobs.size();
    }
    if (telemetry::enabled())
        telemetry::Registry::global()
            .gauge("/pool/queue_depth_hwm")
            .setMax(static_cast<double>(depth));
    _wake.notify_one();
}

// The two condition-variable loops below hand the lock back and
// forth through cv waits and manual unlock/relock, which clang's
// function-at-a-time analysis cannot follow (the wait predicates are
// separate lambdas to it); they opt out explicitly. Every other
// access to the guarded members is checked.
void
ThreadPool::wait() FASTCAP_NO_THREAD_SAFETY_ANALYSIS
{
    UniqueLock lock(_mu);
    _idle.wait(lock, [this] { return _jobs.empty() && _active == 0; });
    if (_firstError) {
        std::exception_ptr err = std::exchange(_firstError, nullptr);
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop() FASTCAP_NO_THREAD_SAFETY_ANALYSIS
{
    UniqueLock lock(_mu);
    for (;;) {
        _wake.wait(lock,
                   [this] { return _stopping || !_jobs.empty(); });
        if (_jobs.empty()) // stopping and drained
            return;
        Task task = std::move(_jobs.front());
        _jobs.pop_front();
        ++_active;
        lock.unlock();
        double run_t0 = 0.0;
        if (telemetry::enabled()) {
            // fastcap-lint: wall-clock(pool latency telemetry, operator-facing metrics only, never serialized into results)
            run_t0 = wallSeconds();
            if (task.enqueued_s > 0.0)
                telemetry::Registry::global()
                    .histogram("/pool/wait_us", latencyEdgesUs())
                    .observe((run_t0 - task.enqueued_s) * 1e6);
        }
        try {
            task.job();
        } catch (...) {
            lock.lock();
            if (!_firstError)
                _firstError = std::current_exception();
            --_active;
            if (_jobs.empty() && _active == 0)
                _idle.notify_all();
            continue;
        }
        if (telemetry::enabled() && run_t0 > 0.0) {
            // fastcap-lint: wall-clock(pool run-time telemetry, operator-facing metrics only, never serialized into results)
            const double run_t1 = wallSeconds();
            telemetry::Registry &reg = telemetry::Registry::global();
            reg.histogram("/pool/run_us", latencyEdgesUs())
                .observe((run_t1 - run_t0) * 1e6);
            reg.counter("/pool/tasks").add();
        }
        lock.lock();
        --_active;
        if (_jobs.empty() && _active == 0)
            _idle.notify_all();
    }
}

} // namespace fastcap
