/**
 * @file
 * Fixed-size worker pool for fanning independent jobs out over
 * threads. Built for the sweep runner: submit every grid point, then
 * wait() for the batch. Determinism is the caller's responsibility —
 * jobs must not share mutable state, and each job's output must
 * depend only on its own inputs (the sweep derives a per-run seed
 * for exactly this reason).
 */

#ifndef FASTCAP_UTIL_THREAD_POOL_HPP
#define FASTCAP_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace fastcap {

/**
 * A fixed set of worker threads draining a FIFO job queue.
 *
 * Usage:
 *   ThreadPool pool(8);
 *   for (std::size_t i = 0; i < n; ++i)
 *       pool.submit([i, &out] { out[i] = compute(i); });
 *   pool.wait();   // rethrows the first job exception, if any
 *
 * The pool is reusable: submit/wait cycles may repeat. Destruction
 * joins the workers after the queue drains.
 */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /** @param workers worker count; 0 means hardwareWorkers(). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Drains remaining jobs, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t workerCount() const { return _workers.size(); }

    /** Enqueue a job. Jobs may themselves submit more jobs. */
    void submit(Job job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first exception (by submission-drain order) and
     * discards the rest.
     */
    void wait();

    /** std::thread::hardware_concurrency with a floor of 1. */
    static std::size_t hardwareWorkers();

  private:
    /**
     * Queue entry. `enqueued_s` is a wall-clock stamp taken only when
     * telemetry is enabled (0 otherwise); it feeds the /pool/wait_us
     * histogram and never influences scheduling.
     */
    struct Task
    {
        Job job;
        double enqueued_s = 0.0;
    };

    void workerLoop();

    std::vector<std::thread> _workers;
    // _mu guards the queue and the wait() barrier state below; this
    // is also the barrier the sharded engine's window determinism
    // rests on (ShardedSystem::runWindow merges only after wait()
    // returns, i.e. strictly after every shard job's effects are
    // published by the release/acquire pair on _mu).
    mutable Mutex _mu;
    std::deque<Task> _jobs FASTCAP_GUARDED_BY(_mu);
    // condition_variable_any: waits directly on the annotated Mutex.
    std::condition_variable_any _wake; //!< signals workers: job or stop
    std::condition_variable_any _idle; //!< signals wait(): batch done
    std::size_t _active FASTCAP_GUARDED_BY(_mu) = 0;
    bool _stopping FASTCAP_GUARDED_BY(_mu) = false;
    std::exception_ptr _firstError FASTCAP_GUARDED_BY(_mu);
};

} // namespace fastcap

#endif // FASTCAP_UTIL_THREAD_POOL_HPP
