/**
 * @file
 * Fixed-size worker pool for fanning independent jobs out over
 * threads. Built for the sweep runner: submit every grid point, then
 * wait() for the batch. Determinism is the caller's responsibility —
 * jobs must not share mutable state, and each job's output must
 * depend only on its own inputs (the sweep derives a per-run seed
 * for exactly this reason).
 */

#ifndef FASTCAP_UTIL_THREAD_POOL_HPP
#define FASTCAP_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fastcap {

/**
 * A fixed set of worker threads draining a FIFO job queue.
 *
 * Usage:
 *   ThreadPool pool(8);
 *   for (std::size_t i = 0; i < n; ++i)
 *       pool.submit([i, &out] { out[i] = compute(i); });
 *   pool.wait();   // rethrows the first job exception, if any
 *
 * The pool is reusable: submit/wait cycles may repeat. Destruction
 * joins the workers after the queue drains.
 */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /** @param workers worker count; 0 means hardwareWorkers(). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Drains remaining jobs, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t workerCount() const { return _workers.size(); }

    /** Enqueue a job. Jobs may themselves submit more jobs. */
    void submit(Job job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first exception (by submission-drain order) and
     * discards the rest.
     */
    void wait();

    /** std::thread::hardware_concurrency with a floor of 1. */
    static std::size_t hardwareWorkers();

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<Job> _jobs;
    mutable std::mutex _mu;
    std::condition_variable _wake; //!< signals workers: job or stop
    std::condition_variable _idle; //!< signals wait(): batch done
    std::size_t _active = 0;       //!< jobs currently executing
    bool _stopping = false;
    std::exception_ptr _firstError;
};

} // namespace fastcap

#endif // FASTCAP_UTIL_THREAD_POOL_HPP
