/**
 * @file
 * Unit conventions and small helpers used throughout the library.
 *
 * All quantities are stored in SI base units as doubles:
 *   - time in seconds,
 *   - frequency in hertz,
 *   - power in watts,
 *   - energy in joules,
 *   - voltage in volts.
 *
 * The aliases below exist purely to make signatures self-documenting;
 * they are not strong types. Helper constants make literals readable
 * (e.g., `5 * MILLI` seconds, `3.2 * GIGA` hertz).
 */

#ifndef FASTCAP_UTIL_UNITS_HPP
#define FASTCAP_UTIL_UNITS_HPP

#include <cstdint>

namespace fastcap {

using Seconds = double;
using Hertz = double;
using Watts = double;
using Joules = double;
using Volts = double;

inline constexpr double GIGA = 1e9;
inline constexpr double MEGA = 1e6;
inline constexpr double KILO = 1e3;
inline constexpr double MILLI = 1e-3;
inline constexpr double MICRO = 1e-6;
inline constexpr double NANO = 1e-9;

/** Convert a duration in nanoseconds to seconds. */
constexpr Seconds fromNs(double ns) { return ns * NANO; }
/** Convert a duration in microseconds to seconds. */
constexpr Seconds fromUs(double us) { return us * MICRO; }
/** Convert a duration in milliseconds to seconds. */
constexpr Seconds fromMs(double ms) { return ms * MILLI; }
/** Convert a frequency in GHz to Hz. */
constexpr Hertz fromGHz(double ghz) { return ghz * GIGA; }
/** Convert a frequency in MHz to Hz. */
constexpr Hertz fromMHz(double mhz) { return mhz * MEGA; }

/** Convert seconds to nanoseconds (for display). */
constexpr double toNs(Seconds s) { return s / NANO; }
/** Convert seconds to microseconds (for display). */
constexpr double toUs(Seconds s) { return s / MICRO; }
/** Convert seconds to milliseconds (for display). */
constexpr double toMs(Seconds s) { return s / MILLI; }
/** Convert Hz to GHz (for display). */
constexpr double toGHz(Hertz f) { return f / GIGA; }
/** Convert Hz to MHz (for display). */
constexpr double toMHz(Hertz f) { return f / MEGA; }

} // namespace fastcap

#endif // FASTCAP_UTIL_UNITS_HPP
