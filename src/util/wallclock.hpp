/**
 * @file
 * The one sanctioned wall-clock read in the tree.
 *
 * Result-affecting code must never depend on real time — the
 * 1-vs-N-thread cmp gate requires byte-identical outputs. But the
 * harness still reports elapsed wall time to the operator. Routing
 * every such read through wallSeconds() keeps the call chains
 * visible to the determinism taint pass (lint rule R6): each caller
 * outside src/util carries an explicit `wall-clock(...)` lint
 * waiver stating why the value cannot reach serialized results.
 */

#ifndef FASTCAP_UTIL_WALLCLOCK_HPP
#define FASTCAP_UTIL_WALLCLOCK_HPP

#include <chrono>

namespace fastcap {

/**
 * Monotonic wall time in seconds, for operator-facing elapsed-time
 * reporting only. The epoch is unspecified; only differences are
 * meaningful. Never serialize the value into results.
 */
inline double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace fastcap

#endif // FASTCAP_UTIL_WALLCLOCK_HPP
