#include "workload/spec_table.hpp"

#include <map>
#include <utility>

#include "util/logging.hpp"

namespace fastcap {
namespace workloads {

namespace {

/**
 * Build a three-phase cyclic profile around base parameters.
 *
 * Phase fractions 0.5/0.3/0.2 of the cycle; the MPKI multipliers are
 * chosen so the instruction-weighted average MPKI equals the base:
 * 0.5(1-0.6v) + 0.3(1+0.4v) + 0.2(1+0.9v) = 1.
 *
 * @param v      phase variability in [0, 1): 0 = stationary
 * @param period cycle length in instructions
 */
AppProfile
makeProfile(const std::string &name, double cpi, double mpki,
            double wpki, double activity, double v, double period)
{
    const double m1 = 1.0 - 0.6 * v;
    const double m2 = 1.0 + 0.4 * v;
    const double m3 = 1.0 + 0.9 * v;

    auto phase = [&](double frac, double mult, double act_mult) {
        Phase p;
        p.instructions = period * frac;
        p.cpiExec = cpi;
        p.mpki = mpki * mult;
        p.wpki = wpki * mult;
        p.activity = std::min(1.0, activity * act_mult);
        return p;
    };

    // Low-MPKI phases are compute-denser: slightly higher activity.
    std::vector<Phase> phases{
        phase(0.5, m1, 1.05),
        phase(0.3, m2, 1.0),
        phase(0.2, m3, 0.92),
    };
    return AppProfile(name, std::move(phases));
}

/** The application table, keyed by SPEC-style name. */
const std::map<std::string, AppProfile> &
table()
{
    static const std::map<std::string, AppProfile> tbl = [] {
        std::map<std::string, AppProfile> t;
        auto add = [&t](const std::string &name, double cpi,
                        double mpki, double wpki, double act, double v,
                        double period_mi) {
            t.emplace(name, makeProfile(name, cpi, mpki, wpki, act, v,
                                        period_mi * 1e6));
        };

        // --- compute-intensive (ILP class) --------------------------
        //   name      cpi   mpki  wpki  act   var  period(Mi)
        add("vortex",  1.05, 0.35, 0.06, 0.95, 0.20, 17);
        add("gcc",     1.10, 0.25, 0.05, 0.90, 0.35, 23);
        add("sixtrack",0.95, 0.45, 0.08, 0.98, 0.15, 13);
        add("mesa",    1.00, 0.40, 0.07, 0.92, 0.25, 19);
        add("perlbmk", 1.05, 0.13, 0.03, 0.93, 0.30, 29);
        add("crafty",  0.95, 0.10, 0.02, 0.97, 0.20, 11);
        add("gzip",    1.10, 0.22, 0.04, 0.88, 0.30, 21);
        add("eon",     1.00, 0.16, 0.03, 0.94, 0.15, 15);
        add("hmmer",   0.90, 0.50, 0.10, 0.96, 0.25, 14);
        add("gobmk",   1.15, 0.60, 0.12, 0.90, 0.35, 26);
        add("sjeng",   1.05, 0.45, 0.08, 0.92, 0.25, 18);

        // --- balanced (MID class) -----------------------------------
        add("ammp",    1.20, 1.50, 0.65, 0.80, 0.50, 22);
        add("gap",     1.10, 1.10, 0.45, 0.82, 0.40, 16);
        add("wupwise", 1.15, 2.45, 1.05, 0.78, 0.45, 27);
        add("vpr",     1.25, 2.00, 0.85, 0.75, 0.50, 12);
        add("astar",   1.20, 2.30, 0.95, 0.76, 0.55, 24);
        add("parser",  1.15, 1.80, 0.75, 0.79, 0.45, 18);
        add("twolf",   1.25, 3.00, 1.05, 0.72, 0.50, 14);
        add("facerec", 1.10, 3.35, 1.15, 0.74, 0.55, 20);
        add("apsi",    1.15, 0.80, 0.45, 0.83, 0.40, 25);
        add("bzip2",   1.10, 0.60, 0.30, 0.85, 0.45, 15);

        // --- memory-intensive (MEM class) ---------------------------
        add("swim",    1.30, 18.0, 7.8,  0.58, 0.70, 25);
        add("applu",   1.25, 15.0, 6.3,  0.60, 0.55, 19);
        add("galgel",  1.20, 8.0,  2.6,  0.65, 0.50, 16);
        add("equake",  1.30, 9.5,  3.1,  0.62, 0.60, 22);
        add("art",     1.15, 11.0, 3.5,  0.60, 0.55, 13);
        add("milc",    1.25, 8.3,  2.7,  0.63, 0.50, 28);
        add("mgrid",   1.20, 5.5,  1.8,  0.68, 0.45, 17);
        add("fma3d",   1.25, 6.2,  2.0,  0.66, 0.55, 21);
        add("sphinx3", 1.15, 4.4,  1.4,  0.70, 0.50, 15);
        add("lucas",   1.20, 3.0,  1.0,  0.72, 0.45, 23);

        return t;
    }();
    return tbl;
}

/** Table III: workload name -> its four applications. */
const std::map<std::string, std::vector<std::string>> &
mixTable()
{
    static const std::map<std::string, std::vector<std::string>> tbl{
        {"ILP1", {"vortex", "gcc", "sixtrack", "mesa"}},
        {"ILP2", {"perlbmk", "crafty", "gzip", "eon"}},
        {"ILP3", {"sixtrack", "mesa", "perlbmk", "crafty"}},
        {"ILP4", {"vortex", "gcc", "gzip", "eon"}},
        {"MID1", {"ammp", "gap", "wupwise", "vpr"}},
        {"MID2", {"astar", "parser", "twolf", "facerec"}},
        {"MID3", {"apsi", "bzip2", "ammp", "gap"}},
        {"MID4", {"wupwise", "vpr", "astar", "parser"}},
        {"MEM1", {"swim", "applu", "galgel", "equake"}},
        {"MEM2", {"art", "milc", "mgrid", "fma3d"}},
        {"MEM3", {"fma3d", "mgrid", "galgel", "equake"}},
        {"MEM4", {"swim", "applu", "sphinx3", "lucas"}},
        {"MIX1", {"applu", "hmmer", "gap", "gzip"}},
        {"MIX2", {"milc", "gobmk", "facerec", "perlbmk"}},
        {"MIX3", {"equake", "ammp", "sjeng", "crafty"}},
        {"MIX4", {"swim", "ammp", "twolf", "sixtrack"}},
    };
    return tbl;
}

} // namespace

const AppProfile &
spec(const std::string &name)
{
    const auto &t = table();
    auto it = t.find(name);
    if (it == t.end())
        fatal("workloads::spec: unknown application '%s'",
              name.c_str());
    return it->second;
}

const AppProfile &
idleProfile()
{
    static const AppProfile idle = [] {
        Phase p;
        p.instructions = 10e6;
        p.cpiExec = 1.0;
        p.mpki = 0.005; // one miss per 200k instructions
        p.wpki = 0.0;
        p.activity = 0.05;
        return AppProfile("idle", p);
    }();
    return idle;
}

const AppProfile *
findProfile(const std::string &name)
{
    if (name == "idle")
        return &idleProfile();
    const auto &t = table();
    const auto it = t.find(name);
    return it == t.end() ? nullptr : &it->second;
}

const AppProfile &
profile(const std::string &name)
{
    const AppProfile *p = findProfile(name);
    if (p == nullptr)
        fatal("workloads::profile: unknown application '%s'",
              name.c_str());
    return *p;
}

std::vector<std::string>
specNames()
{
    std::vector<std::string> names;
    names.reserve(table().size());
    for (const auto &kv : table())
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    names.reserve(mixTable().size());
    // Table III order: ILP, MID, MEM, MIX.
    for (const char *cls : {"ILP", "MID", "MEM", "MIX"})
        for (int i = 1; i <= 4; ++i)
            names.push_back(std::string(cls) + std::to_string(i));
    return names;
}

std::vector<std::string>
mixApps(const std::string &workload)
{
    const auto &t = mixTable();
    auto it = t.find(workload);
    if (it == t.end())
        fatal("workloads::mixApps: unknown workload '%s'",
              workload.c_str());
    return it->second;
}

std::string
classOf(const std::string &workload)
{
    if (workload.size() < 4)
        fatal("workloads::classOf: bad workload name '%s'",
              workload.c_str());
    return workload.substr(0, 3);
}

std::vector<std::string>
workloadsOfClass(const std::string &cls)
{
    std::vector<std::string> names;
    for (const std::string &w : workloadNames())
        if (classOf(w) == cls)
            names.push_back(w);
    if (names.empty())
        fatal("workloads::workloadsOfClass: unknown class '%s'",
              cls.c_str());
    return names;
}

std::vector<AppProfile>
mix(const std::string &workload, int cores)
{
    if (workload == "idle") {
        if (cores < 1)
            fatal("workloads::mix: core count must be positive "
                  "(got %d)", cores);
        return std::vector<AppProfile>(
            static_cast<std::size_t>(cores), idleProfile());
    }
    if (cores < 4 || cores % 4 != 0)
        fatal("workloads::mix: core count must be a positive multiple "
              "of 4 (got %d)", cores);

    const std::vector<std::string> apps = mixApps(workload);
    std::vector<AppProfile> out;
    out.reserve(static_cast<std::size_t>(cores));
    // Interleave: a b c d a b c d ... (N/4 copies of each).
    for (int i = 0; i < cores; ++i)
        out.push_back(spec(apps[static_cast<std::size_t>(i % 4)]));
    return out;
}

AppProfile
powerVirus()
{
    Phase p;
    p.instructions = 10e6;
    p.cpiExec = 0.9;
    p.mpki = 0.05;  // nearly no stalls: keeps the core busy
    p.wpki = 0.01;
    p.activity = 1.0;
    return AppProfile("powervirus", p);
}

} // namespace workloads
} // namespace fastcap
