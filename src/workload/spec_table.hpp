/**
 * @file
 * Synthetic SPEC 2000/2006-like application profiles and the 16
 * workload mixes of Table III.
 *
 * Each profile is calibrated so its class-level behaviour (MPKI,
 * WPKI, compute CPI, activity) matches the paper's workload classes:
 * ILP (compute-intensive), MID (balanced), MEM (memory-intensive) and
 * MIX. Per-application phase variability produces the time dynamics
 * Figures 4, 7 and 8 exercise. The numbers are synthetic stand-ins —
 * see docs/DESIGN.md section 2 for why this substitution preserves the
 * paper's behaviour.
 */

#ifndef FASTCAP_WORKLOAD_SPEC_TABLE_HPP
#define FASTCAP_WORKLOAD_SPEC_TABLE_HPP

#include <string>
#include <vector>

#include "sim/app_profile.hpp"

namespace fastcap {
namespace workloads {

/** Profile of a named SPEC-like application; fatal() if unknown. */
const AppProfile &spec(const std::string &name);

/** All application names in the table. */
std::vector<std::string> specNames();

/** The 16 workload names of Table III (ILP1..MIX4). */
std::vector<std::string> workloadNames();

/** The four applications composing a workload (Table III row). */
std::vector<std::string> mixApps(const std::string &workload);

/** Workload class of a mix: "ILP", "MID", "MEM" or "MIX". */
std::string classOf(const std::string &workload);

/** The four workload names of a class (e.g. "MEM1".."MEM4"). */
std::vector<std::string> workloadsOfClass(const std::string &cls);

/**
 * Build the per-core application list for a workload: N/4 copies of
 * each of its four applications, interleaved (the paper's "xN/4
 * each"). N must be a positive multiple of 4.
 */
std::vector<AppProfile> mix(const std::string &workload, int cores);

/**
 * A deliberately power-hungry profile (max activity, compute-bound)
 * used to measure peak power draw.
 */
AppProfile powerVirus();

} // namespace workloads
} // namespace fastcap

#endif // FASTCAP_WORKLOAD_SPEC_TABLE_HPP
