/**
 * @file
 * Synthetic SPEC 2000/2006-like application profiles and the 16
 * workload mixes of Table III.
 *
 * Each profile is calibrated so its class-level behaviour (MPKI,
 * WPKI, compute CPI, activity) matches the paper's workload classes:
 * ILP (compute-intensive), MID (balanced), MEM (memory-intensive) and
 * MIX. Per-application phase variability produces the time dynamics
 * Figures 4, 7 and 8 exercise. The numbers are synthetic stand-ins —
 * see docs/DESIGN.md section 2 for why this substitution preserves the
 * paper's behaviour.
 */

#ifndef FASTCAP_WORKLOAD_SPEC_TABLE_HPP
#define FASTCAP_WORKLOAD_SPEC_TABLE_HPP

#include <string>
#include <vector>

#include "sim/app_profile.hpp"

namespace fastcap {
namespace workloads {

/** Profile of a named SPEC-like application; fatal() if unknown. */
const AppProfile &spec(const std::string &name);

/**
 * A core with no job: near-zero activity, essentially no memory
 * traffic, and a long compute phase so the "idle loop" retires
 * instructions slowly without touching the memory subsystem.
 */
const AppProfile &idleProfile();

/**
 * Profile for any resolvable name: a Table III application or the
 * built-in "idle" profile. fatal() if unknown — schedules and traces
 * resolve through this so bad names fail at load, not mid-run.
 */
const AppProfile &profile(const std::string &name);

/** Like profile(), but nullptr instead of fatal() when unknown. */
const AppProfile *findProfile(const std::string &name);

/** All application names in the table. */
std::vector<std::string> specNames();

/** The 16 workload names of Table III (ILP1..MIX4). */
std::vector<std::string> workloadNames();

/** The four applications composing a workload (Table III row). */
std::vector<std::string> mixApps(const std::string &workload);

/** Workload class of a mix: "ILP", "MID", "MEM" or "MIX". */
std::string classOf(const std::string &workload);

/** The four workload names of a class (e.g. "MEM1".."MEM4"). */
std::vector<std::string> workloadsOfClass(const std::string &cls);

/**
 * Build the per-core application list for a workload: N/4 copies of
 * each of its four applications, interleaved (the paper's "xN/4
 * each"). N must be a positive multiple of 4. The pseudo-workload
 * "idle" fills every core with the idle profile (any N >= 1) — the
 * natural substrate for trace-driven runs, where jobs arrive from
 * the trace instead of being pinned at t=0.
 */
std::vector<AppProfile> mix(const std::string &workload, int cores);

/**
 * A deliberately power-hungry profile (max activity, compute-bound)
 * used to measure peak power draw.
 */
AppProfile powerVirus();

} // namespace workloads
} // namespace fastcap

#endif // FASTCAP_WORKLOAD_SPEC_TABLE_HPP
