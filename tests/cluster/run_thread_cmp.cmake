# Runs the fastcap_cluster CLI twice — serial machine stepping and
# 8-way machine-parallel stepping — over the same flash-crowd +
# machine-failure rack, and demands byte-identical CSV output.
# This is the end-to-end (process-level) counterpart of the
# Cluster.BitIdenticalAcrossMachineThreadsAndShards unit test.
#
# Expected -D variables:
#   CLUSTER  path to the fastcap_cluster executable
#   OUTDIR   scratch directory for the two CSVs

set(common
  --machines 4 --cores 16 --budget 0.5 --max-epochs 8
  --floor 0.05 --fail "2@3:6"
  --trace "gen:flash,rate=300,horizon=0.2,max-cores=8,apps=swim+applu,flash-start=0.005,flash-duration=0.02,flash-factor=6,seed=11")

foreach(threads 1 8)
  execute_process(
    COMMAND ${CLUSTER} ${common} --machine-threads ${threads}
      --csv ${OUTDIR}/cluster_t${threads}.csv
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "fastcap_cluster --machine-threads ${threads} failed (${rc}):\n"
      "${out}\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${OUTDIR}/cluster_t1.csv ${OUTDIR}/cluster_t8.csv
  RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR
    "cluster CSV differs between --machine-threads 1 and 8: "
    "the rack run is not deterministic across machine parallelism")
endif()
