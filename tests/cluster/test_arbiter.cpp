/**
 * @file
 * Unit tests for the rack budget arbiter: conservation (grants sum
 * to exactly what the rack can use), floors, peak clamping with
 * redistribution, dead machines, and the zero-demand fallback.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "cluster/arbiter.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

double
sum(const std::vector<Watts> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Arbiter, ConservesBudgetAcrossDemandPatterns)
{
    const std::vector<Watts> peaks{100.0, 100.0, 100.0, 100.0};
    for (const std::vector<Watts> &demands :
         std::vector<std::vector<Watts>>{
             {90.0, 10.0, 50.0, 30.0},
             {0.0, 0.0, 0.0, 0.0},
             {100.0, 100.0, 100.0, 100.0},
             {400.0, 1.0, 1.0, 1.0},
             {13.7, 92.4, 55.1, 68.9}}) {
        for (Watts rack : {40.0, 250.0, 399.0, 400.0, 1000.0}) {
            const std::vector<Watts> out =
                arbitrateRackBudget(rack, peaks, demands, 0.05);
            const Watts usable = std::min(rack, sum(peaks));
            EXPECT_NEAR(sum(out), usable, 1e-9 * usable)
                << "rack=" << rack;
            for (std::size_t i = 0; i < out.size(); ++i)
                EXPECT_LE(out[i], peaks[i] + 1e-9) << "i=" << i;
        }
    }
}

TEST(Arbiter, FloorsGuaranteeAMinimumShare)
{
    // Machine 0 reported no demand; the floor still carries it.
    const std::vector<Watts> peaks{100.0, 100.0};
    const std::vector<Watts> demands{0.0, 100.0};
    const std::vector<Watts> out =
        arbitrateRackBudget(120.0, peaks, demands, 0.1);
    EXPECT_GE(out[0], 10.0 - 1e-9);
    EXPECT_GT(out[1], out[0]);
    EXPECT_NEAR(sum(out), 120.0, 1e-9);
}

TEST(Arbiter, FloorsScaleDownWhenBudgetCannotHonourThem)
{
    const std::vector<Watts> peaks{100.0, 100.0};
    const std::vector<Watts> demands{50.0, 50.0};
    // Floors would be 2 x 20 W; only 20 W exists in total.
    const std::vector<Watts> out =
        arbitrateRackBudget(20.0, peaks, demands, 0.2);
    EXPECT_NEAR(out[0], 10.0, 1e-9);
    EXPECT_NEAR(out[1], 10.0, 1e-9);
}

TEST(Arbiter, ClampsAtPeakAndRedistributes)
{
    // Machine 0 demands four times its peak: it must be clamped at
    // peak and the overflow must reach the others.
    const std::vector<Watts> peaks{50.0, 100.0, 100.0};
    const std::vector<Watts> demands{200.0, 60.0, 20.0};
    const std::vector<Watts> out =
        arbitrateRackBudget(200.0, peaks, demands, 0.0);
    EXPECT_NEAR(out[0], 50.0, 1e-9);
    EXPECT_NEAR(sum(out), 200.0, 1e-9);
    EXPECT_GT(out[1], out[2]); // residual demand ordering respected
}

TEST(Arbiter, DeadMachinesReceiveNothing)
{
    const std::vector<Watts> peaks{100.0, 0.0, 100.0};
    const std::vector<Watts> demands{80.0, 0.0, 80.0};
    const std::vector<Watts> out =
        arbitrateRackBudget(300.0, peaks, demands, 0.05);
    EXPECT_EQ(out[1], 0.0);
    // Usable budget shrinks to the live peaks, not the rack's watts.
    EXPECT_NEAR(sum(out), 200.0, 1e-9);
    EXPECT_NEAR(out[0], 100.0, 1e-9);
    EXPECT_NEAR(out[2], 100.0, 1e-9);
}

TEST(Arbiter, ZeroDemandFallsBackToHeadroomShares)
{
    // Nobody reports demand: the budget must still be handed out
    // (headroom-proportionally), not stranded.
    const std::vector<Watts> peaks{100.0, 50.0};
    const std::vector<Watts> demands{0.0, 0.0};
    const std::vector<Watts> out =
        arbitrateRackBudget(90.0, peaks, demands, 0.0);
    EXPECT_NEAR(sum(out), 90.0, 1e-9);
    EXPECT_NEAR(out[0] / out[1], 2.0, 1e-6);
}

TEST(Arbiter, AllDeadYieldsAllZero)
{
    const std::vector<Watts> out = arbitrateRackBudget(
        500.0, {0.0, 0.0}, {0.0, 0.0}, 0.05);
    EXPECT_EQ(out[0], 0.0);
    EXPECT_EQ(out[1], 0.0);
}

TEST(Arbiter, PureFunctionIsBitStable)
{
    const std::vector<Watts> peaks{71.3, 71.3, 71.3};
    const std::vector<Watts> demands{33.3, 71.3, 5.1};
    const std::vector<Watts> a =
        arbitrateRackBudget(150.0, peaks, demands, 0.05);
    const std::vector<Watts> b =
        arbitrateRackBudget(150.0, peaks, demands, 0.05);
    EXPECT_EQ(a, b);
}

TEST(Arbiter, RejectsMalformedInputs)
{
    EXPECT_THROW(
        arbitrateRackBudget(100.0, {1.0}, {1.0, 2.0}, 0.05),
        PanicError);
    EXPECT_THROW(
        arbitrateRackBudget(100.0, {1.0}, {1.0}, 1.0), FatalError);
    EXPECT_THROW(
        arbitrateRackBudget(-1.0, {1.0}, {1.0}, 0.05), FatalError);
    EXPECT_THROW(
        arbitrateRackBudget(100.0, {-1.0}, {1.0}, 0.05), FatalError);
}

} // namespace
} // namespace fastcap
