/**
 * @file
 * Tests for the rack-scale Cluster: bit-identical output across
 * machine-thread counts and engine layouts, per-epoch rack budget
 * conservation, machine failure and re-convergence, and dispatch
 * determinism of the cluster-wide trace.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/cluster.hpp"
#include "harness/peak_power.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace fastcap {
namespace {

ClusterConfig
smallRack()
{
    ClusterConfig cfg;
    cfg.machines = 4;
    cfg.machine = SimConfig::defaultConfig(16);
    cfg.workload = "idle";
    cfg.rackBudgetFraction = 0.5;
    cfg.trace = "gen:flash,rate=300,horizon=0.2,max-cores=8,"
                "apps=swim+applu,flash-start=0.005,"
                "flash-duration=0.02,flash-factor=6,seed=11";
    cfg.maxEpochs = 8;
    cfg.machineThreads = 1;
    return cfg;
}

/** Every numeric field of a rack run, bit-exact. */
std::string
serialize(const ClusterResult &res)
{
    std::string s;
    const auto bits = [&s](double v) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%016" PRIx64 " ",
                      doubleBits(v));
        s += buf;
    };
    bits(res.installedPeak);
    s += std::to_string(res.dispatched) + " " +
        std::to_string(res.completed) + " " +
        std::to_string(res.dropped) + " " +
        std::to_string(res.lost) + "\n";
    for (const ClusterEpochRecord &e : res.epochs) {
        s += std::to_string(e.epoch) + " ";
        bits(e.startTime);
        bits(e.rackBudget);
        bits(e.usableBudget);
        bits(e.assignedTotal);
        bits(e.totalPower);
        s += std::to_string(e.aliveMachines) + " " +
            std::to_string(e.busyCores) + " " +
            std::to_string(e.pendingJobs) + " " +
            std::to_string(e.dropped) + " " +
            std::to_string(e.lost) + " ";
        for (Watts w : e.machineBudget)
            bits(w);
        for (Watts w : e.machinePower)
            bits(w);
        s += '\n';
    }
    return s;
}

TEST(Cluster, BitIdenticalAcrossMachineThreadsAndShards)
{
    clearPeakPowerCache();
    ClusterConfig base = smallRack();
    const ClusterResult ref = Cluster(base).run();
    const std::string ref_bits = serialize(ref);
    EXPECT_GT(ref.dispatched, 0u);

    for (const auto &[threads, shards, shard_threads] :
         std::vector<std::tuple<int, int, int>>{
             {8, 0, 1}, {0, 0, 1}, {1, 4, 2}, {8, 4, 2}}) {
        ClusterConfig cfg = smallRack();
        cfg.machineThreads = threads;
        cfg.shards = shards;
        cfg.shardThreads = shard_threads;
        // A forced shard count selects the sharded engine — a
        // different contention model with its own measured peak — so
        // only compare layouts against a baseline on the same engine.
        if (shards != 0) {
            ClusterConfig serial = smallRack();
            serial.shards = shards;
            serial.shardThreads = 1;
            serial.machineThreads = 1;
            EXPECT_EQ(serialize(Cluster(serial).run()),
                      serialize(Cluster(cfg).run()))
                << "threads=" << threads << " shards=" << shards;
        } else {
            EXPECT_EQ(ref_bits, serialize(Cluster(cfg).run()))
                << "threads=" << threads;
        }
    }
}

TEST(Cluster, ArbiterConservesRackBudgetEveryEpoch)
{
    clearPeakPowerCache();
    ClusterConfig cfg = smallRack();
    cfg.failures = {{2, 3, 6}};
    const ClusterResult res = Cluster(cfg).run();
    ASSERT_EQ(res.epochs.size(), 8u);
    for (const ClusterEpochRecord &e : res.epochs) {
        // Conservation: grants sum to exactly the usable budget...
        EXPECT_NEAR(e.assignedTotal, e.usableBudget,
                    1e-6 * std::max(e.usableBudget, 1.0))
            << "epoch " << e.epoch;
        // ...and no machine exceeds its peak share of the rack.
        const Watts peak =
            res.installedPeak / static_cast<double>(cfg.machines);
        for (std::size_t m = 0; m < e.machineBudget.size(); ++m)
            EXPECT_LE(e.machineBudget[m], peak + 1e-9)
                << "epoch " << e.epoch << " machine " << m;
    }
}

TEST(Cluster, FailureKillsAndRestoreReconverges)
{
    clearPeakPowerCache();
    ClusterConfig cfg = smallRack();
    cfg.failures = {{1, 2, 5}};
    Cluster cluster(cfg);
    const ClusterResult res = cluster.run();

    const Watts peak =
        res.installedPeak / static_cast<double>(cfg.machines);
    for (const ClusterEpochRecord &e : res.epochs) {
        const bool down = e.epoch >= 2 && e.epoch < 5;
        EXPECT_EQ(e.aliveMachines, down ? 3 : 4)
            << "epoch " << e.epoch;
        if (down) {
            // The dead machine gets no watts and burns none; its
            // share flows to the survivors.
            EXPECT_EQ(e.machineBudget[1], 0.0) << "epoch " << e.epoch;
            EXPECT_EQ(e.machinePower[1], 0.0) << "epoch " << e.epoch;
            EXPECT_NEAR(e.usableBudget,
                        std::min(e.rackBudget, 3.0 * peak),
                        1e-9 * res.installedPeak);
        } else {
            EXPECT_NEAR(e.usableBudget,
                        std::min(e.rackBudget, 4.0 * peak),
                        1e-9 * res.installedPeak);
        }
    }
    // Once restored, the machine is arbitrated for again.
    EXPECT_GT(res.epochs.back().machineBudget[1], 0.0);
    EXPECT_GT(res.epochs.back().machinePower[1], 0.0);
}

TEST(Cluster, FailureLossAccountingIsConsistent)
{
    clearPeakPowerCache();
    ClusterConfig cfg = smallRack();
    cfg.failures = {{0, 4, -1}}; // permanent
    const ClusterResult res = Cluster(cfg).run();
    // Every dispatched job is completed, shed, lost to the failure,
    // or still in flight on a live machine at the end of the run.
    EXPECT_GE(res.dispatched,
              res.completed + res.dropped + res.lost);
    std::size_t lost_in_epochs = 0;
    for (const ClusterEpochRecord &e : res.epochs)
        lost_in_epochs += e.lost;
    EXPECT_EQ(lost_in_epochs, res.lost);
}

TEST(Cluster, WholeRackDownLosesArrivals)
{
    clearPeakPowerCache();
    ClusterConfig cfg = smallRack();
    cfg.machines = 2;
    cfg.failures = {{0, 1, -1}, {1, 1, -1}};
    const ClusterResult res = Cluster(cfg).run();
    EXPECT_EQ(res.epochs.back().aliveMachines, 0);
    // Arrivals after the outage have nowhere to go.
    EXPECT_GT(res.lost, 0u);
    // With nobody alive, nothing is assigned and nothing is usable.
    EXPECT_EQ(res.epochs.back().usableBudget, 0.0);
    EXPECT_EQ(res.epochs.back().assignedTotal, 0.0);
}

TEST(Cluster, RackScheduleMovesTheBudget)
{
    clearPeakPowerCache();
    ClusterConfig cfg = smallRack();
    cfg.trace.clear();
    cfg.maxEpochs = 4;
    // Default epoch length is 5 ms: drop the rack budget from epoch 2
    // on (t >= 10 ms).
    cfg.rackSchedule = BudgetSchedule::parse("step@0:0.8;step@0.01:0.3");
    const ClusterResult res = Cluster(cfg).run();
    EXPECT_NEAR(res.epochs[0].rackBudget, 0.8 * res.installedPeak,
                1e-9 * res.installedPeak);
    EXPECT_NEAR(res.epochs[3].rackBudget, 0.3 * res.installedPeak,
                1e-9 * res.installedPeak);
    EXPECT_LT(res.epochs[3].assignedTotal,
              res.epochs[0].assignedTotal);
}

TEST(Cluster, CsvIsDeterministicAcrossMachineThreads)
{
    clearPeakPowerCache();
    ClusterConfig cfg = smallRack();
    cfg.failures = {{3, 2, 6}};
    const std::string serial = Cluster(cfg).run().csvString();
    cfg.machineThreads = 8;
    const std::string parallel = Cluster(cfg).run().csvString();
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("epoch,rack_budget_w"), std::string::npos);
}

TEST(Cluster, ValidatesConfiguration)
{
    ClusterConfig cfg = smallRack();
    cfg.machines = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = smallRack();
    cfg.floorFraction = 1.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = smallRack();
    cfg.failures = {{9, 0, -1}};
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = smallRack();
    cfg.failures = {{0, 5, 5}};
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = smallRack();
    cfg.policy = "NotAPolicy";
    EXPECT_THROW(cfg.validate(), FatalError);
}

} // namespace
} // namespace fastcap
