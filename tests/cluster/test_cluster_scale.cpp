/**
 * @file
 * Rack-scale determinism at size: a 64-machine x 256-core
 * oversubscribed rack under a flash crowd must produce bit-identical
 * epoch records whether the machines step serially or 8-way in
 * parallel, and the arbiter must conserve the rack budget at every
 * epoch even at this scale.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "cluster/cluster.hpp"
#include "harness/peak_power.hpp"
#include "util/math.hpp"

namespace fastcap {
namespace {

ClusterConfig
bigRack()
{
    ClusterConfig cfg;
    cfg.machines = 64;
    cfg.machine = SimConfig::defaultConfig(256);
    cfg.workload = "idle";
    cfg.rackBudgetFraction = 0.6; // oversubscribed: rack < sum(peaks)
    cfg.trace = "gen:flash,rate=2000,horizon=0.05,max-cores=64,"
                "apps=swim+applu,flash-start=0.002,"
                "flash-duration=0.01,flash-factor=5,seed=7";
    cfg.maxEpochs = 3;
    cfg.machineThreads = 1;
    return cfg;
}

/** Bit-exact digest of a rack run's numeric state. */
std::string
serialize(const ClusterResult &res)
{
    std::string s;
    const auto bits = [&s](double v) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%016" PRIx64 " ",
                      doubleBits(v));
        s += buf;
    };
    bits(res.installedPeak);
    s += std::to_string(res.dispatched) + " " +
        std::to_string(res.completed) + " " +
        std::to_string(res.dropped) + " " +
        std::to_string(res.lost) + "\n";
    for (const ClusterEpochRecord &e : res.epochs) {
        bits(e.rackBudget);
        bits(e.assignedTotal);
        bits(e.totalPower);
        s += std::to_string(e.busyCores) + " " +
            std::to_string(e.pendingJobs) + " ";
        for (Watts w : e.machineBudget)
            bits(w);
        for (Watts w : e.machinePower)
            bits(w);
        s += '\n';
    }
    return s;
}

TEST(ClusterScale, RackOf64By256IsBitIdenticalAcrossThreads)
{
    clearPeakPowerCache();
    ClusterConfig cfg = bigRack();
    const ClusterResult serial = Cluster(cfg).run();
    EXPECT_GT(serial.dispatched, 0u);

    cfg.machineThreads = 8;
    const ClusterResult parallel = Cluster(cfg).run();
    EXPECT_EQ(serialize(serial), serialize(parallel));

    // Oversubscription holds the whole run: assigned watts track the
    // usable budget exactly, and the rack never grants above it.
    for (const ClusterEpochRecord &e : serial.epochs) {
        EXPECT_LT(e.usableBudget, serial.installedPeak);
        EXPECT_NEAR(e.assignedTotal, e.usableBudget,
                    1e-6 * std::max(e.usableBudget, 1.0))
            << "epoch " << e.epoch;
    }
}

TEST(ClusterScale, FlashCrowdSpreadsAcrossTheRack)
{
    clearPeakPowerCache();
    ClusterConfig cfg = bigRack();
    const ClusterResult res = Cluster(cfg).run();
    // The dispatcher is least-loaded-first: a flash crowd of this
    // size must land work on many machines, not pile onto one.
    int touched = 0;
    for (Watts w : res.epochs.back().machinePower)
        touched += w > 0.0 ? 1 : 0;
    EXPECT_EQ(touched, 64);
    EXPECT_GT(res.epochs.back().busyCores, 64);
}

} // namespace
} // namespace fastcap
