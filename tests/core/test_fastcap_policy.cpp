/**
 * @file
 * Tests for the FastCap policy wrapper: ladder mapping (Algorithm 1,
 * line 16), CPU-only behaviour and the uncapped baseline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/fastcap_policy.hpp"
#include "core/solver.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace {

PolicyInputs
inputs(double budget)
{
    PolicyInputs in;
    in.cores.resize(4);
    const double zbars[] = {600e-9, 300e-9, 120e-9, 25e-9};
    for (int i = 0; i < 4; ++i) {
        in.cores[i].zbar = zbars[i];
        in.cores[i].cache = 7.5e-9;
        in.cores[i].pi = 2.5 + 0.2 * i;
        in.cores[i].alpha = 2.8;
        in.cores[i].pStatic = 1.0;
        in.cores[i].ipa = 800.0;
    }
    ControllerModel ctl;
    ctl.q = 1.4;
    ctl.u = 1.8;
    ctl.sm = 33e-9;
    ctl.sbBar = 1.875e-9;
    in.memory.controllers = {ctl};
    in.memory.pm = 12.0;
    in.memory.beta = 1.1;
    in.memory.pStatic = 12.0;
    in.accessProbs.assign(4, {1.0});
    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;
    in.budget = budget;
    return in;
}

TEST(FastCapPolicy, DecisionShapesMatchInputs)
{
    FastCapPolicy policy;
    const PolicyInputs in = inputs(40.0);
    const PolicyDecision dec = policy.decide(in);
    ASSERT_EQ(dec.coreFreqIdx.size(), 4u);
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_LT(idx, in.coreRatios.size());
    EXPECT_LT(dec.memFreqIdx, in.memRatios.size());
    EXPECT_GT(dec.evaluations, 0);
}

TEST(FastCapPolicy, AbundantBudgetSelectsMaxima)
{
    FastCapPolicy policy;
    const PolicyDecision dec = policy.decide(inputs(1000.0));
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_EQ(idx, 9u);
    EXPECT_EQ(dec.memFreqIdx, 9u);
}

TEST(FastCapPolicy, TightBudgetSelectsMinima)
{
    FastCapPolicy policy;
    const PolicyDecision dec = policy.decide(inputs(5.0));
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_EQ(idx, 0u);
    EXPECT_EQ(dec.memFreqIdx, 0u);
}

TEST(FastCapPolicy, MemoryBoundCoreGetsLowerFrequencyAtFixedMemory)
{
    // With the memory pinned at its maximum (CPU-only variant), the
    // memory-bound core 3 (z̄ = 25 ns) needs less core frequency than
    // the compute-bound core 0 for the same fractional degradation:
    // most of its turn-around is response time it cannot influence.
    // (When FastCap also slows the memory, the opposite can hold: a
    // memory-bound core may speed *up* to compensate — the swim-in-
    // MIX4 effect of Fig. 7.)
    CpuOnlyPolicy policy;
    const PolicyDecision dec = policy.decide(inputs(45.0));
    EXPECT_LE(dec.coreFreqIdx[3], dec.coreFreqIdx[0]);
}

TEST(CpuOnlyPolicy, PinsMemoryAtMax)
{
    CpuOnlyPolicy policy;
    const PolicyInputs in = inputs(45.0);
    const PolicyDecision dec = policy.decide(in);
    EXPECT_EQ(dec.memFreqIdx, in.memRatios.size() - 1);
    EXPECT_FALSE(policy.usesMemoryDvfs());
}

TEST(CpuOnlyPolicy, CoresCompensateForFixedMemory)
{
    // With memory pinned at max power, the cores must absorb the
    // entire cut: CPU-only core levels <= FastCap core levels is not
    // guaranteed per-core, but the average must be.
    FastCapPolicy fastcap;
    CpuOnlyPolicy cpu_only;
    const PolicyInputs in = inputs(45.0);
    const PolicyDecision d_fc = fastcap.decide(in);
    const PolicyDecision d_co = cpu_only.decide(in);

    double sum_fc = 0.0;
    double sum_co = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        sum_fc += static_cast<double>(d_fc.coreFreqIdx[i]);
        sum_co += static_cast<double>(d_co.coreFreqIdx[i]);
    }
    EXPECT_LE(sum_co, sum_fc)
        << "fixed-max memory leaves less budget for cores";
}

TEST(UncappedPolicy, AlwaysMaxEverything)
{
    UncappedPolicy policy;
    const PolicyDecision dec = policy.decide(inputs(1.0));
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_EQ(idx, 9u);
    EXPECT_EQ(dec.memFreqIdx, 9u);
    EXPECT_EQ(dec.evaluations, 0);
}

TEST(MapToLadders, SnapsToClosestRatios)
{
    const PolicyInputs in = inputs(40.0);
    InnerSolution sol;
    sol.coreRatios = {1.0, 0.55, 0.56, 0.774};
    sol.memRatio = in.memRatios[4];
    sol.predictedPower = 42.0;
    const PolicyDecision dec = mapToLadders(in, sol, 4, 7);
    EXPECT_EQ(dec.coreFreqIdx[0], 9u);
    EXPECT_EQ(dec.coreFreqIdx[1], 0u);
    EXPECT_EQ(dec.coreFreqIdx[2], 0u);  // 0.56 closest to 0.55
    // 0.774 lies between 0.75 (idx 4) and 0.80 (idx 5); closest 0.775
    // -> allow either adjacent snap depending on ties.
    EXPECT_GE(dec.coreFreqIdx[3], 4u);
    EXPECT_LE(dec.coreFreqIdx[3], 5u);
    EXPECT_EQ(dec.memFreqIdx, 4u);
    EXPECT_EQ(dec.evaluations, 7);
    EXPECT_DOUBLE_EQ(dec.predictedPower, 42.0);
}

/** The historical per-core ladder walk, as the regression oracle. */
std::size_t
referenceClosestIndex(const std::vector<double> &ratios, double ratio)
{
    std::size_t best = 0;
    double best_d = std::abs(ratios[0] - ratio);
    for (std::size_t i = 1; i < ratios.size(); ++i) {
        const double d = std::abs(ratios[i] - ratio);
        if (d <= best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

TEST(MapToLadders, ClassMemoisedMappingBitIdenticalToPerCoreWalk)
{
    const PolicyInputs in = inputs(40.0);
    // Ratio mix a class-collapsed solve emits: heavy duplication, plus
    // the adversarial values a memoised walk could mishandle — exact
    // ladder entries, midpoints between levels (ties), the f_min
    // clamp, both zero signs, and the 1.0 saturation value.
    const std::vector<double> pool = {
        1.0,          in.coreRatios.front(), in.coreRatios[3],
        0.625,        // midpoint of idx 1 (0.60) and idx 2 (0.65): tie
        0.55000000001, 0.9137, 0.0, -0.0, 0.3121};
    Rng rng(0xfadedcafeULL);
    InnerSolution sol;
    sol.coreRatios.resize(257);
    for (double &x : sol.coreRatios)
        x = pool[rng.below(pool.size())];

    const PolicyDecision dec = mapToLadders(in, sol, 2, 11);
    ASSERT_EQ(dec.coreFreqIdx.size(), sol.coreRatios.size());
    for (std::size_t i = 0; i < sol.coreRatios.size(); ++i)
        EXPECT_EQ(dec.coreFreqIdx[i],
                  referenceClosestIndex(in.coreRatios,
                                        sol.coreRatios[i]))
            << "core " << i << " ratio " << sol.coreRatios[i];
}

// The bit-identity obligation behind the unordered_map waiver in
// mapToLadders (fastcap-lint: order-insensitive): the memo is keyed
// on exact ratio bits and never iterated, so permuting the order the
// ratios arrive in — which permutes the map's insertion order and,
// with it, its bucket layout — must map every ratio value to the
// same ladder index. If iteration order ever leaked into the result
// (or a value came to depend on which duplicate inserted first),
// some permutation would disagree.
TEST(MapToLadders, InsertionOrderPermutationBitIdentity)
{
    const PolicyInputs in = inputs(40.0);
    const std::vector<double> pool = {
        1.0,   in.coreRatios.front(), in.coreRatios[3],
        0.625, 0.55000000001, 0.9137, 0.0, -0.0, 0.3121};
    Rng rng(0x5eedf00dULL);
    std::vector<double> base(129);
    for (double &x : base)
        x = pool[rng.below(pool.size())];

    // Reference mapping per exact bit pattern, from the identity
    // permutation.
    InnerSolution sol;
    sol.coreRatios = base;
    const PolicyDecision ref = mapToLadders(in, sol, 2, 1);
    ASSERT_EQ(ref.coreFreqIdx.size(), base.size());

    std::vector<std::size_t> order(base.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (int trial = 0; trial < 16; ++trial) {
        // Fisher-Yates with the deterministic test Rng: a fresh
        // insertion order (and so bucket history) each trial.
        for (std::size_t i = order.size() - 1; i > 0; --i)
            std::swap(order[i], order[rng.below(i + 1)]);
        InnerSolution perm;
        perm.coreRatios.reserve(base.size());
        for (std::size_t src : order)
            perm.coreRatios.push_back(base[src]);
        const PolicyDecision dec = mapToLadders(in, perm, 2, 1);
        ASSERT_EQ(dec.coreFreqIdx.size(), order.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(dec.coreFreqIdx[i], ref.coreFreqIdx[order[i]])
                << "trial " << trial << " core " << i << " ratio "
                << perm.coreRatios[i];
    }
}

} // namespace
} // namespace fastcap
