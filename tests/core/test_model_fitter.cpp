/**
 * @file
 * Tests for the online Eq. 2 / Eq. 3 power-model fitter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "core/model_fitter.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace {

TEST(PowerLawTracker, BootstrapUsesDefaultExponent)
{
    PowerLawTracker t(2.5);
    t.observe(1.0, 4.0);
    const FittedModel m = t.model();
    EXPECT_FALSE(m.fromFit);
    EXPECT_DOUBLE_EQ(m.exponent, 2.5);
    EXPECT_DOUBLE_EQ(m.scale, 4.0); // 4.0 / 1.0^2.5
}

TEST(PowerLawTracker, BootstrapScalesFromSample)
{
    PowerLawTracker t(2.0);
    t.observe(0.5, 1.0);
    const FittedModel m = t.model();
    // scale = 1.0 / 0.5^2 = 4.
    EXPECT_NEAR(m.scale, 4.0, 1e-12);
}

TEST(PowerLawTracker, TwoSamplesGiveExactFit)
{
    PowerLawTracker t(2.5);
    // Ground truth: P = 3.2 x^2.8.
    t.observe(1.0, 3.2);
    t.observe(0.55, 3.2 * std::pow(0.55, 2.8));
    const FittedModel m = t.model();
    EXPECT_TRUE(m.fromFit);
    EXPECT_NEAR(m.exponent, 2.8, 1e-9);
    EXPECT_NEAR(m.scale, 3.2, 1e-9);
}

TEST(PowerLawTracker, HistoryKeepsLastThreeFrequencies)
{
    PowerLawTracker t(2.5, 3);
    const double alpha = 3.0;
    // Observe at four distinct ratios; the first must be evicted.
    for (double x : {1.0, 0.9, 0.8, 0.7})
        t.observe(x, 2.0 * std::pow(x, alpha));
    EXPECT_EQ(t.samples(), 3u);
    EXPECT_NEAR(t.model().exponent, alpha, 1e-9);
}

TEST(PowerLawTracker, RepeatRatioRefreshesInsteadOfEvicting)
{
    PowerLawTracker t(2.5, 3);
    t.observe(1.0, 4.0);
    t.observe(0.8, 2.0);
    EXPECT_EQ(t.samples(), 2u);
    // Same ratio again: history size unchanged, power smoothed.
    t.observe(1.0, 6.0);
    EXPECT_EQ(t.samples(), 2u);
}

TEST(PowerLawTracker, IgnoresNonPositivePower)
{
    PowerLawTracker t(2.5);
    t.observe(1.0, 0.0);
    t.observe(1.0, -3.0);
    EXPECT_EQ(t.samples(), 0u);
}

TEST(PowerLawTracker, IgnoresOutOfRangeRatio)
{
    PowerLawTracker t(2.5);
    t.observe(1.5, 2.0);
    t.observe(-0.2, 2.0);
    EXPECT_EQ(t.samples(), 0u);
}

TEST(PowerLawTracker, ExponentClampedForRobustness)
{
    PowerLawTracker t(2.5, 3, 0.3, 4.0);
    // Pathological samples implying alpha ~ 9.
    t.observe(1.0, 8.0);
    t.observe(0.5, 8.0 * std::pow(0.5, 9.0));
    const FittedModel m = t.model();
    EXPECT_LE(m.exponent, 4.0);
    // Scale re-anchored so prediction near the freshest sample.
    const double pred = m.scale * std::pow(0.5, m.exponent);
    EXPECT_NEAR(pred, 8.0 * std::pow(0.5, 9.0), 1e-9);
}

TEST(PowerLawTracker, NoisyFitTracksTruth)
{
    PowerLawTracker t(2.5, 3);
    const double alpha = 2.9;
    const double scale = 4.1;
    double sign = 1.0;
    for (double x : {1.0, 0.77, 0.55}) {
        sign = -sign;
        t.observe(x, scale * std::pow(x, alpha) * (1.0 + sign * 0.02));
    }
    const FittedModel m = t.model();
    EXPECT_NEAR(m.exponent, alpha, 0.35);
    EXPECT_NEAR(m.scale, scale, 0.4);
}

TEST(PowerLawTracker, HistoryBelowTwoIsFatal)
{
    EXPECT_THROW(PowerLawTracker(2.5, 1), FatalError);
}

TEST(ModelFitter, TracksAllCoresIndependently)
{
    ModelFitter f(3);
    f.observeCore(0, 1.0, 4.0);
    f.observeCore(0, 0.55, 4.0 * std::pow(0.55, 3.0));
    f.observeCore(1, 1.0, 2.0);
    // Core 0: fitted alpha=3; core 1: bootstrap; core 2: untouched.
    EXPECT_NEAR(f.core(0).exponent, 3.0, 1e-9);
    EXPECT_TRUE(f.core(0).fromFit);
    EXPECT_FALSE(f.core(1).fromFit);
    EXPECT_DOUBLE_EQ(f.core(2).scale, 0.0);
    EXPECT_THROW(f.observeCore(9, 1.0, 1.0), std::out_of_range);
}

TEST(ModelFitter, MemoryUsesBetaDefault)
{
    ModelFitter f(1, 2.5, 1.0);
    f.observeMemory(1.0, 14.0);
    EXPECT_DOUBLE_EQ(f.memory().exponent, 1.0);
    EXPECT_DOUBLE_EQ(f.memory().scale, 14.0);

    // With a second sample the fitted beta emerges.
    f.observeMemory(0.5, 7.5);
    const double beta = f.memory().exponent;
    EXPECT_NEAR(beta, std::log(7.5 / 14.0) / std::log(0.5), 1e-9);
}

/**
 * The tracker's incremental (rank-1 moment update) fit must agree
 * with a from-scratch batch fitPowerLaw over the same history, within
 * tolerance, through thousands of observations — new frequencies,
 * in-place refreshes and evictions all update the running sums, so
 * this is where accumulated drift would show.
 */
TEST(PowerLawTracker, IncrementalFitTracksBatchFitWithinTolerance)
{
    const double min_exp = 0.3;
    const double max_exp = 4.0;
    PowerLawTracker t(2.5, 3, min_exp, max_exp);

    // Shadow history replicating the tracker's rules: distinct-ratio
    // slots (refreshes smooth in place), capacity 3, FIFO eviction.
    struct Obs
    {
        double ratio;
        double power;
    };
    std::deque<Obs> shadow;

    Rng rng(0x1234abcdULL);
    for (int step = 0; step < 4000; ++step) {
        // Ladder-like ratios so refreshes are frequent, with a noisy
        // power law (alpha ~2.7) plus occasional outliers that push
        // the fitted exponent into the clamp.
        const double ratio =
            (2.2 + 0.2 * static_cast<double>(rng.below(10))) / 4.0;
        double power = 3.0 * std::pow(ratio, 2.7) *
            rng.uniform(0.8, 1.25);
        if (step % 97 == 0)
            power *= 8.0; // exponent-clamp excursion
        t.observe(ratio, power);

        auto same = std::find_if(shadow.begin(), shadow.end(),
                                 [&](const Obs &o) {
                                     return approxEqual(o.ratio,
                                                        ratio, 1e-6);
                                 });
        if (same != shadow.end()) {
            same->power = 0.5 * same->power + 0.5 * power;
        } else {
            shadow.push_back({ratio, power});
            while (shadow.size() > 3)
                shadow.pop_front();
        }

        if (shadow.size() < 2)
            continue;
        std::vector<double> xs, ys;
        for (const Obs &o : shadow) {
            xs.push_back(o.ratio);
            ys.push_back(o.power);
        }
        const PowerLawFit fit = fitPowerLaw(xs, ys);
        ASSERT_TRUE(fit.valid) << "step " << step;
        const double exp_batch =
            std::clamp(fit.exponent, min_exp, max_exp);
        double scale_batch;
        if (approxEqual(exp_batch, fit.exponent))
            scale_batch = fit.scale;
        else
            scale_batch = shadow.back().power /
                std::pow(shadow.back().ratio, exp_batch);

        const FittedModel m = t.model();
        EXPECT_TRUE(m.fromFit) << "step " << step;
        EXPECT_TRUE(approxEqual(m.exponent, exp_batch, 1e-9))
            << "step " << step << ": " << m.exponent << " vs "
            << exp_batch;
        EXPECT_TRUE(approxEqual(m.scale, scale_batch, 1e-9))
            << "step " << step << ": " << m.scale << " vs "
            << scale_batch;
    }
}

} // namespace
} // namespace fastcap
