/**
 * @file
 * Tests for the online Eq. 2 / Eq. 3 power-model fitter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/model_fitter.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

TEST(PowerLawTracker, BootstrapUsesDefaultExponent)
{
    PowerLawTracker t(2.5);
    t.observe(1.0, 4.0);
    const FittedModel m = t.model();
    EXPECT_FALSE(m.fromFit);
    EXPECT_DOUBLE_EQ(m.exponent, 2.5);
    EXPECT_DOUBLE_EQ(m.scale, 4.0); // 4.0 / 1.0^2.5
}

TEST(PowerLawTracker, BootstrapScalesFromSample)
{
    PowerLawTracker t(2.0);
    t.observe(0.5, 1.0);
    const FittedModel m = t.model();
    // scale = 1.0 / 0.5^2 = 4.
    EXPECT_NEAR(m.scale, 4.0, 1e-12);
}

TEST(PowerLawTracker, TwoSamplesGiveExactFit)
{
    PowerLawTracker t(2.5);
    // Ground truth: P = 3.2 x^2.8.
    t.observe(1.0, 3.2);
    t.observe(0.55, 3.2 * std::pow(0.55, 2.8));
    const FittedModel m = t.model();
    EXPECT_TRUE(m.fromFit);
    EXPECT_NEAR(m.exponent, 2.8, 1e-9);
    EXPECT_NEAR(m.scale, 3.2, 1e-9);
}

TEST(PowerLawTracker, HistoryKeepsLastThreeFrequencies)
{
    PowerLawTracker t(2.5, 3);
    const double alpha = 3.0;
    // Observe at four distinct ratios; the first must be evicted.
    for (double x : {1.0, 0.9, 0.8, 0.7})
        t.observe(x, 2.0 * std::pow(x, alpha));
    EXPECT_EQ(t.samples(), 3u);
    EXPECT_NEAR(t.model().exponent, alpha, 1e-9);
}

TEST(PowerLawTracker, RepeatRatioRefreshesInsteadOfEvicting)
{
    PowerLawTracker t(2.5, 3);
    t.observe(1.0, 4.0);
    t.observe(0.8, 2.0);
    EXPECT_EQ(t.samples(), 2u);
    // Same ratio again: history size unchanged, power smoothed.
    t.observe(1.0, 6.0);
    EXPECT_EQ(t.samples(), 2u);
}

TEST(PowerLawTracker, IgnoresNonPositivePower)
{
    PowerLawTracker t(2.5);
    t.observe(1.0, 0.0);
    t.observe(1.0, -3.0);
    EXPECT_EQ(t.samples(), 0u);
}

TEST(PowerLawTracker, IgnoresOutOfRangeRatio)
{
    PowerLawTracker t(2.5);
    t.observe(1.5, 2.0);
    t.observe(-0.2, 2.0);
    EXPECT_EQ(t.samples(), 0u);
}

TEST(PowerLawTracker, ExponentClampedForRobustness)
{
    PowerLawTracker t(2.5, 3, 0.3, 4.0);
    // Pathological samples implying alpha ~ 9.
    t.observe(1.0, 8.0);
    t.observe(0.5, 8.0 * std::pow(0.5, 9.0));
    const FittedModel m = t.model();
    EXPECT_LE(m.exponent, 4.0);
    // Scale re-anchored so prediction near the freshest sample.
    const double pred = m.scale * std::pow(0.5, m.exponent);
    EXPECT_NEAR(pred, 8.0 * std::pow(0.5, 9.0), 1e-9);
}

TEST(PowerLawTracker, NoisyFitTracksTruth)
{
    PowerLawTracker t(2.5, 3);
    const double alpha = 2.9;
    const double scale = 4.1;
    double sign = 1.0;
    for (double x : {1.0, 0.77, 0.55}) {
        sign = -sign;
        t.observe(x, scale * std::pow(x, alpha) * (1.0 + sign * 0.02));
    }
    const FittedModel m = t.model();
    EXPECT_NEAR(m.exponent, alpha, 0.35);
    EXPECT_NEAR(m.scale, scale, 0.4);
}

TEST(PowerLawTracker, HistoryBelowTwoIsFatal)
{
    EXPECT_THROW(PowerLawTracker(2.5, 1), FatalError);
}

TEST(ModelFitter, TracksAllCoresIndependently)
{
    ModelFitter f(3);
    f.observeCore(0, 1.0, 4.0);
    f.observeCore(0, 0.55, 4.0 * std::pow(0.55, 3.0));
    f.observeCore(1, 1.0, 2.0);
    // Core 0: fitted alpha=3; core 1: bootstrap; core 2: untouched.
    EXPECT_NEAR(f.core(0).exponent, 3.0, 1e-9);
    EXPECT_TRUE(f.core(0).fromFit);
    EXPECT_FALSE(f.core(1).fromFit);
    EXPECT_DOUBLE_EQ(f.core(2).scale, 0.0);
    EXPECT_THROW(f.observeCore(9, 1.0, 1.0), std::out_of_range);
}

TEST(ModelFitter, MemoryUsesBetaDefault)
{
    ModelFitter f(1, 2.5, 1.0);
    f.observeMemory(1.0, 14.0);
    EXPECT_DOUBLE_EQ(f.memory().exponent, 1.0);
    EXPECT_DOUBLE_EQ(f.memory().scale, 14.0);

    // With a second sample the fitted beta emerges.
    f.observeMemory(0.5, 7.5);
    const double beta = f.memory().exponent;
    EXPECT_NEAR(beta, std::log(7.5 / 14.0) / std::log(0.5), 1e-9);
}

} // namespace
} // namespace fastcap
