/**
 * @file
 * Tests for the Eq. 1 queuing model and turn-around computations,
 * including the multi-controller weighted generalization.
 */

#include <gtest/gtest.h>

#include "core/queuing_model.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

PolicyInputs
twoCoreInputs()
{
    PolicyInputs in;
    in.cores.resize(2);
    in.cores[0].zbar = 100e-9;
    in.cores[0].cache = 7.5e-9;
    in.cores[1].zbar = 20e-9;
    in.cores[1].cache = 7.5e-9;

    ControllerModel ctl;
    ctl.q = 1.5;
    ctl.u = 2.0;
    ctl.sm = 30e-9;
    ctl.sbBar = 2e-9;
    in.memory.controllers = {ctl};

    in.accessProbs = {{1.0}, {1.0}};
    in.coreRatios = {0.55, 0.775, 1.0};
    in.memRatios = {0.25, 0.5, 1.0};
    in.budget = 50.0;
    return in;
}

TEST(QueuingModel, Eq1AtMaxFrequency)
{
    const PolicyInputs in = twoCoreInputs();
    const QueuingModel qm(in);
    // R = Q (s_m + U s_b) = 1.5 (30 + 2*2) ns = 51 ns.
    EXPECT_NEAR(qm.controllerResponse(0, 1.0), 51e-9, 1e-15);
    EXPECT_NEAR(qm.minResponseTime(0), 51e-9, 1e-15);
}

TEST(QueuingModel, ResponseScalesWithTransferTime)
{
    const PolicyInputs in = twoCoreInputs();
    const QueuingModel qm(in);
    // x_b = 0.5 -> s_b doubles: R = 1.5 (30 + 2*4) = 57 ns.
    EXPECT_NEAR(qm.responseTime(0, 0.5), 57e-9, 1e-15);
    // Monotone: lower memory ratio, higher response.
    EXPECT_GT(qm.responseTime(0, 0.25), qm.responseTime(0, 0.5));
    EXPECT_GT(qm.responseTime(0, 0.5), qm.responseTime(0, 1.0));
}

TEST(QueuingModel, MinTurnaroundComposition)
{
    const PolicyInputs in = twoCoreInputs();
    const QueuingModel qm(in);
    EXPECT_NEAR(qm.minTurnaround(0), 100e-9 + 7.5e-9 + 51e-9, 1e-15);
    EXPECT_NEAR(qm.minTurnaround(1), 20e-9 + 7.5e-9 + 51e-9, 1e-15);
}

TEST(QueuingModel, TurnaroundScalesThinkTime)
{
    const PolicyInputs in = twoCoreInputs();
    const QueuingModel qm(in);
    // x_i = 0.5 doubles think time.
    EXPECT_NEAR(qm.turnaround(0, 0.5, 1.0),
                200e-9 + 7.5e-9 + 51e-9, 1e-15);
}

TEST(QueuingModel, PerformanceAtMaxIsOne)
{
    const PolicyInputs in = twoCoreInputs();
    const QueuingModel qm(in);
    EXPECT_NEAR(qm.performance(0, 1.0, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(qm.performance(1, 1.0, 1.0), 1.0, 1e-12);
}

TEST(QueuingModel, PerformanceDropsWithEitherRatio)
{
    const PolicyInputs in = twoCoreInputs();
    const QueuingModel qm(in);
    EXPECT_LT(qm.performance(0, 0.6, 1.0), 1.0);
    EXPECT_LT(qm.performance(0, 1.0, 0.5), 1.0);
    EXPECT_LT(qm.performance(0, 0.6, 0.5),
              qm.performance(0, 0.6, 1.0));
}

TEST(QueuingModel, MemoryRatioHurtsMemBoundCoreMore)
{
    // Core 1 has small z̄ (memory-bound): memory slowdown costs it a
    // larger fraction of its performance than the compute-bound
    // core 0. This asymmetry is what FastCap's fairness balances.
    const PolicyInputs in = twoCoreInputs();
    const QueuingModel qm(in);
    const double cpu_drop = qm.performance(0, 1.0, 0.25);
    const double mem_drop = qm.performance(1, 1.0, 0.25);
    EXPECT_LT(mem_drop, cpu_drop);
}

TEST(QueuingModel, InstructionRateUsesIpa)
{
    PolicyInputs in = twoCoreInputs();
    in.cores[0].ipa = 500.0;
    const QueuingModel qm(in);
    const double rate = qm.instructionRate(0, 1.0, 1.0);
    EXPECT_NEAR(rate, 500.0 / (158.5e-9), 1e-3 / 158.5e-9);
}

TEST(QueuingModel, MultiControllerWeightedResponse)
{
    PolicyInputs in = twoCoreInputs();
    ControllerModel slow_ctl;
    slow_ctl.q = 3.0;
    slow_ctl.u = 4.0;
    slow_ctl.sm = 60e-9;
    slow_ctl.sbBar = 2e-9;
    in.memory.controllers.push_back(slow_ctl);
    in.accessProbs = {{0.75, 0.25}, {0.5, 0.5}};

    const QueuingModel qm(in);
    const Seconds r_fast = qm.controllerResponse(0, 1.0);
    const Seconds r_slow = qm.controllerResponse(1, 1.0);
    EXPECT_NEAR(qm.responseTime(0, 1.0),
                0.75 * r_fast + 0.25 * r_slow, 1e-15);
    EXPECT_NEAR(qm.responseTime(1, 1.0),
                0.5 * (r_fast + r_slow), 1e-15);
    // The more skewed-to-slow core sees the higher response.
    EXPECT_GT(qm.responseTime(1, 1.0), qm.responseTime(0, 1.0));
}

TEST(QueuingModel, RejectsBadConstruction)
{
    PolicyInputs in = twoCoreInputs();
    in.memory.controllers.clear();
    EXPECT_THROW(QueuingModel qm(in), FatalError);

    PolicyInputs in2 = twoCoreInputs();
    in2.accessProbs.pop_back();
    EXPECT_THROW(QueuingModel qm2(in2), FatalError);
}

TEST(QueuingModel, NonPositiveRatiosPanic)
{
    const PolicyInputs in = twoCoreInputs();
    const QueuingModel qm(in);
    EXPECT_THROW(qm.responseTime(0, 0.0), PanicError);
    EXPECT_THROW(qm.turnaround(0, 0.0, 1.0), PanicError);
}

} // namespace
} // namespace fastcap
