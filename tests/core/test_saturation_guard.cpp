/**
 * @file
 * Tests for the memory-search saturation guard
 * (minMemIndexForUtilisation): the Eq. 1 validity-domain restriction
 * all policies share (docs/DESIGN.md section 5, item 7).
 */

#include <gtest/gtest.h>

#include "core/queuing_model.hpp"
#include "core/solver.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

PolicyInputs
baseInputs()
{
    PolicyInputs in;
    in.cores.resize(2);
    for (CoreModel &c : in.cores) {
        c.zbar = 100e-9;
        c.cache = 7.5e-9;
        c.pi = 3.0;
        c.alpha = 2.8;
        c.pStatic = 1.0;
        c.ipa = 500.0;
    }
    ControllerModel ctl;
    ctl.q = 1.4;
    ctl.u = 1.8;
    ctl.sm = 33e-9;
    ctl.sbBar = 2e-9;
    ctl.arrivalRate = 0.0;
    in.memory.controllers = {ctl};
    in.memory.pm = 12.0;
    in.memory.beta = 1.1;
    in.memory.pStatic = 12.0;
    in.accessProbs.assign(2, {1.0});
    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;
    in.budget = 30.0;
    return in;
}

TEST(SaturationGuard, IdleMemoryAllowsFullLadder)
{
    const PolicyInputs in = baseInputs();
    EXPECT_EQ(minMemIndexForUtilisation(in, 0.9), 0u);
}

TEST(SaturationGuard, HeavyTrafficRaisesFloor)
{
    PolicyInputs in = baseInputs();
    // sbBar = 2 ns: at x_b = 1 a rate of 450M/s gives util 0.9; at
    // lower ratios the same rate saturates.
    in.memory.controllers[0].arrivalRate = 300e6;
    const std::size_t floor_idx = minMemIndexForUtilisation(in, 0.9);
    EXPECT_GT(floor_idx, 0u);
    // The returned level really is the first admissible one.
    const double sb_bar = in.memory.controllers[0].sbBar;
    EXPECT_LE(300e6 * sb_bar / in.memRatios[floor_idx], 0.9 + 1e-12);
    if (floor_idx > 0) {
        EXPECT_GT(300e6 * sb_bar / in.memRatios[floor_idx - 1], 0.9);
    }
}

TEST(SaturationGuard, FullSaturationReturnsTopIndex)
{
    PolicyInputs in = baseInputs();
    in.memory.controllers[0].arrivalRate = 10e9; // absurd demand
    EXPECT_EQ(minMemIndexForUtilisation(in, 0.9),
              in.memRatios.size() - 1);
}

// Regression (ISSUE 4): when no level satisfies the utilisation cap
// the function returns the top index as a *clamp* — previously
// indistinguishable from the top index being genuinely admissible,
// so the solver quietly optimised outside the model's validity
// domain. The out-parameter makes the clamp observable.
TEST(SaturationGuard, ClampIsReported)
{
    PolicyInputs in = baseInputs();
    in.memory.controllers[0].arrivalRate = 10e9;
    bool clamped = false;
    EXPECT_EQ(minMemIndexForUtilisation(in, 0.9, &clamped),
              in.memRatios.size() - 1);
    EXPECT_TRUE(clamped);
}

TEST(SaturationGuard, AdmissibleLevelsAreNotReportedAsClamped)
{
    PolicyInputs in = baseInputs();
    bool clamped = true;
    EXPECT_EQ(minMemIndexForUtilisation(in, 0.9, &clamped), 0u);
    EXPECT_FALSE(clamped);

    // Heavy-but-servable traffic raises the floor without clamping.
    in.memory.controllers[0].arrivalRate = 300e6;
    clamped = true;
    EXPECT_GT(minMemIndexForUtilisation(in, 0.9, &clamped), 0u);
    EXPECT_FALSE(clamped);

    // Guard disabled: no floor at all, and never a clamp.
    in.memory.controllers[0].arrivalRate = 10e9;
    clamped = true;
    EXPECT_EQ(minMemIndexForUtilisation(in, 0.0, &clamped), 0u);
    EXPECT_FALSE(clamped);
}

TEST(SaturationGuard, SolveResultRecordsTheClamp)
{
    PolicyInputs in = baseInputs();
    in.memory.controllers[0].arrivalRate = 10e9;
    Logger::global().level(LogLevel::Silent);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    Logger::global().level(LogLevel::Warn);
    EXPECT_TRUE(res.utilisationClamped);
    EXPECT_EQ(res.memIndex, in.memRatios.size() - 1);

    PolicyInputs ok = baseInputs();
    FastCapSolver clean(ok);
    EXPECT_FALSE(clean.solve().utilisationClamped);
}

TEST(SaturationGuard, AnyControllerCanRaiseTheFloor)
{
    PolicyInputs in = baseInputs();
    ControllerModel hot = in.memory.controllers[0];
    hot.arrivalRate = 400e6;
    in.memory.controllers.push_back(hot);
    in.accessProbs.assign(2, {0.5, 0.5});
    const std::size_t floor_idx = minMemIndexForUtilisation(in, 0.9);
    EXPECT_GT(floor_idx, 0u);
}

TEST(SaturationGuard, DisabledByNonPositiveCap)
{
    // Regression (ISSUE 4 review): cap <= 0 used to return the TOP
    // index — pinning memory at max frequency, the opposite of
    // "guard disabled" and of the SolverOptions documentation. Off
    // means off: no floor, whole ladder searchable.
    PolicyInputs in = baseInputs();
    in.memory.controllers[0].arrivalRate = 10e9;
    EXPECT_EQ(minMemIndexForUtilisation(in, 0.0), 0u)
        << "cap <= 0 disables the validity-domain floor";
}

TEST(SaturationGuard, SolverRespectsFloor)
{
    PolicyInputs in = baseInputs();
    in.memory.controllers[0].arrivalRate = 300e6;
    in.budget = 1000.0; // abundant: memory choice driven by D only
    const std::size_t floor_idx = minMemIndexForUtilisation(in, 0.9);

    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    EXPECT_GE(res.memIndex, floor_idx);
}

TEST(SaturationGuard, TighterCapNeverLowersFloor)
{
    PolicyInputs in = baseInputs();
    in.memory.controllers[0].arrivalRate = 250e6;
    const std::size_t loose = minMemIndexForUtilisation(in, 0.95);
    const std::size_t tight = minMemIndexForUtilisation(in, 0.7);
    EXPECT_GE(tight, loose);
}

} // namespace
} // namespace fastcap
