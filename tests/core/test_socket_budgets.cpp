/**
 * @file
 * Tests for the per-processor budget extension (Section III-B: "the
 * optimization can be extended to capture per-processor power budgets
 * by adding a constraint similar to constraint 6 for each
 * processor").
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

/** Two-socket scenario: cores 0-1 on socket A, 2-3 on socket B. */
PolicyInputs
twoSocketInputs(double budget)
{
    PolicyInputs in;
    in.cores.resize(4);
    const double zbars[] = {600e-9, 500e-9, 550e-9, 450e-9};
    for (int i = 0; i < 4; ++i) {
        in.cores[i].zbar = zbars[i];
        in.cores[i].cache = 7.5e-9;
        in.cores[i].pi = 3.0;
        in.cores[i].alpha = 2.8;
        in.cores[i].pStatic = 1.0;
        in.cores[i].ipa = 2000.0;
    }
    ControllerModel ctl;
    ctl.q = 1.4;
    ctl.u = 1.8;
    ctl.sm = 33e-9;
    ctl.sbBar = 1.875e-9;
    in.memory.controllers = {ctl};
    in.memory.pm = 12.0;
    in.memory.beta = 1.1;
    in.memory.pStatic = 12.0;
    in.accessProbs.assign(4, {1.0});
    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;
    in.budget = budget;
    return in;
}

double
socketPower(const PolicyInputs &in, const InnerSolution &sol,
            std::size_t first, std::size_t count)
{
    double p = 0.0;
    for (std::size_t i = first; i < first + count; ++i)
        p += in.cores[i].pi *
            std::pow(sol.coreRatios[i], in.cores[i].alpha) +
            in.cores[i].pStatic;
    return p;
}

TEST(SocketBudgets, LooseSocketBudgetsChangeNothing)
{
    const PolicyInputs in = twoSocketInputs(40.0);

    FastCapSolver plain(in);
    const SolveResult base = plain.solve();

    SolverOptions opts;
    opts.socketBudgets = {{0, 2, 100.0}, {2, 2, 100.0}};
    FastCapSolver socketed(in, opts);
    const SolveResult res = socketed.solve();

    EXPECT_NEAR(res.best.d, base.best.d, 1e-9);
    EXPECT_EQ(res.memIndex, base.memIndex);
}

TEST(SocketBudgets, TightSocketBudgetLowersD)
{
    const PolicyInputs in = twoSocketInputs(60.0);

    FastCapSolver plain(in);
    const SolveResult base = plain.solve();

    SolverOptions opts;
    // Socket A max power: 2 * (3.0 + 1.0) = 8 W; constrain to 5 W.
    opts.socketBudgets = {{0, 2, 5.0}};
    FastCapSolver socketed(in, opts);
    const SolveResult res = socketed.solve();

    EXPECT_LT(res.best.d, base.best.d);
    // The constrained socket sits at (or under) its own budget.
    EXPECT_LE(socketPower(in, res.best, 0, 2), 5.0 * 1.001 + 1e-9);
}

TEST(SocketBudgets, FairnessSharedAcrossSockets)
{
    // Even though only socket A is constrained, all cores run at the
    // common D — socket B's applications degrade equally rather than
    // racing ahead (system-wide fairness).
    const PolicyInputs in = twoSocketInputs(60.0);
    SolverOptions opts;
    opts.socketBudgets = {{0, 2, 5.0}};
    FastCapSolver solver(in, opts);
    const SolveResult res = solver.solve();
    const QueuingModel &qm = solver.queuing();

    const double x_min = in.minCoreRatio();
    double lo = 1.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        const double x = res.best.coreRatios[i];
        if (x <= x_min + 1e-9 || x >= 1.0 - 1e-9)
            continue;
        const double d = qm.performance(i, x, res.best.memRatio);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    EXPECT_LT(hi - lo, 1e-3);
}

TEST(SocketBudgets, FeasibilityFlagCoversSockets)
{
    const PolicyInputs in = twoSocketInputs(60.0);
    SolverOptions opts;
    // Below socket A's floor power (2 * (3.0 * 0.55^2.8 + 1.0) ~ 3.1).
    opts.socketBudgets = {{0, 2, 2.0}};
    FastCapSolver solver(in, opts);
    const SolveResult res = solver.solve();
    EXPECT_FALSE(res.best.budgetFeasible);
    // Constrained cores pinned at the ladder floor.
    EXPECT_NEAR(res.best.coreRatios[0], in.minCoreRatio(), 1e-9);
    EXPECT_NEAR(res.best.coreRatios[1], in.minCoreRatio(), 1e-9);
}

TEST(SocketBudgets, OutOfRangeSocketIsFatal)
{
    const PolicyInputs in = twoSocketInputs(40.0);
    SolverOptions opts;
    opts.socketBudgets = {{3, 4, 10.0}};
    FastCapSolver solver(in, opts);
    EXPECT_THROW(solver.solve(), FatalError);

    SolverOptions empty_range;
    empty_range.socketBudgets = {{0, 0, 10.0}};
    FastCapSolver solver2(in, empty_range);
    EXPECT_THROW(solver2.solve(), FatalError);
}

TEST(SocketBudgets, BothSocketsTightMeansMinRules)
{
    const PolicyInputs in = twoSocketInputs(60.0);

    SolverOptions only_a;
    only_a.socketBudgets = {{0, 2, 5.0}};
    FastCapSolver sa(in, only_a);
    const double d_a = sa.solve().best.d;

    SolverOptions only_b;
    only_b.socketBudgets = {{2, 2, 4.5}};
    FastCapSolver sb(in, only_b);
    const double d_b = sb.solve().best.d;

    SolverOptions both;
    both.socketBudgets = {{0, 2, 5.0}, {2, 2, 4.5}};
    FastCapSolver sboth(in, both);
    const double d_both = sboth.solve().best.d;

    EXPECT_NEAR(d_both, std::min(d_a, d_b), 1e-6);
}

} // namespace
} // namespace fastcap
