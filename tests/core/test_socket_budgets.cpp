/**
 * @file
 * Tests for the per-processor budget extension (Section III-B: "the
 * optimization can be extended to capture per-processor power budgets
 * by adding a constraint similar to constraint 6 for each
 * processor").
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace {

/** Two-socket scenario: cores 0-1 on socket A, 2-3 on socket B. */
PolicyInputs
twoSocketInputs(double budget)
{
    PolicyInputs in;
    in.cores.resize(4);
    const double zbars[] = {600e-9, 500e-9, 550e-9, 450e-9};
    for (int i = 0; i < 4; ++i) {
        in.cores[i].zbar = zbars[i];
        in.cores[i].cache = 7.5e-9;
        in.cores[i].pi = 3.0;
        in.cores[i].alpha = 2.8;
        in.cores[i].pStatic = 1.0;
        in.cores[i].ipa = 2000.0;
    }
    ControllerModel ctl;
    ctl.q = 1.4;
    ctl.u = 1.8;
    ctl.sm = 33e-9;
    ctl.sbBar = 1.875e-9;
    in.memory.controllers = {ctl};
    in.memory.pm = 12.0;
    in.memory.beta = 1.1;
    in.memory.pStatic = 12.0;
    in.accessProbs.assign(4, {1.0});
    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;
    in.budget = budget;
    return in;
}

double
socketPower(const PolicyInputs &in, const InnerSolution &sol,
            std::size_t first, std::size_t count)
{
    double p = 0.0;
    for (std::size_t i = first; i < first + count; ++i)
        p += in.cores[i].pi *
            std::pow(sol.coreRatios[i], in.cores[i].alpha) +
            in.cores[i].pStatic;
    return p;
}

TEST(SocketBudgets, LooseSocketBudgetsChangeNothing)
{
    const PolicyInputs in = twoSocketInputs(40.0);

    FastCapSolver plain(in);
    const SolveResult base = plain.solve();

    SolverOptions opts;
    opts.socketBudgets = {{0, 2, 100.0}, {2, 2, 100.0}};
    FastCapSolver socketed(in, opts);
    const SolveResult res = socketed.solve();

    EXPECT_NEAR(res.best.d, base.best.d, 1e-9);
    EXPECT_EQ(res.memIndex, base.memIndex);
}

TEST(SocketBudgets, TightSocketBudgetLowersD)
{
    const PolicyInputs in = twoSocketInputs(60.0);

    FastCapSolver plain(in);
    const SolveResult base = plain.solve();

    SolverOptions opts;
    // Socket A max power: 2 * (3.0 + 1.0) = 8 W; constrain to 5 W.
    opts.socketBudgets = {{0, 2, 5.0}};
    FastCapSolver socketed(in, opts);
    const SolveResult res = socketed.solve();

    EXPECT_LT(res.best.d, base.best.d);
    // The constrained socket sits at (or under) its own budget.
    EXPECT_LE(socketPower(in, res.best, 0, 2), 5.0 * 1.001 + 1e-9);
}

TEST(SocketBudgets, FairnessSharedAcrossSockets)
{
    // Even though only socket A is constrained, all cores run at the
    // common D — socket B's applications degrade equally rather than
    // racing ahead (system-wide fairness).
    const PolicyInputs in = twoSocketInputs(60.0);
    SolverOptions opts;
    opts.socketBudgets = {{0, 2, 5.0}};
    FastCapSolver solver(in, opts);
    const SolveResult res = solver.solve();
    const QueuingModel &qm = solver.queuing();

    const double x_min = in.minCoreRatio();
    double lo = 1.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        const double x = res.best.coreRatios[i];
        if (x <= x_min + 1e-9 || x >= 1.0 - 1e-9)
            continue;
        const double d = qm.performance(i, x, res.best.memRatio);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    EXPECT_LT(hi - lo, 1e-3);
}

TEST(SocketBudgets, FeasibilityFlagCoversSockets)
{
    const PolicyInputs in = twoSocketInputs(60.0);
    SolverOptions opts;
    // Below socket A's floor power (2 * (3.0 * 0.55^2.8 + 1.0) ~ 3.1).
    opts.socketBudgets = {{0, 2, 2.0}};
    FastCapSolver solver(in, opts);
    const SolveResult res = solver.solve();
    EXPECT_FALSE(res.best.budgetFeasible);
    // Constrained cores pinned at the ladder floor.
    EXPECT_NEAR(res.best.coreRatios[0], in.minCoreRatio(), 1e-9);
    EXPECT_NEAR(res.best.coreRatios[1], in.minCoreRatio(), 1e-9);
}

TEST(SocketBudgets, OutOfRangeSocketIsFatal)
{
    const PolicyInputs in = twoSocketInputs(40.0);
    SolverOptions opts;
    opts.socketBudgets = {{3, 4, 10.0}};
    FastCapSolver solver(in, opts);
    EXPECT_THROW(solver.solve(), FatalError);

    SolverOptions empty_range;
    empty_range.socketBudgets = {{0, 0, 10.0}};
    FastCapSolver solver2(in, empty_range);
    EXPECT_THROW(solver2.solve(), FatalError);
}

TEST(SocketBudgets, BothSocketsTightMeansMinRules)
{
    const PolicyInputs in = twoSocketInputs(60.0);

    SolverOptions only_a;
    only_a.socketBudgets = {{0, 2, 5.0}};
    FastCapSolver sa(in, only_a);
    const double d_a = sa.solve().best.d;

    SolverOptions only_b;
    only_b.socketBudgets = {{2, 2, 4.5}};
    FastCapSolver sb(in, only_b);
    const double d_b = sb.solve().best.d;

    SolverOptions both;
    both.socketBudgets = {{0, 2, 5.0}, {2, 2, 4.5}};
    FastCapSolver sboth(in, both);
    const double d_both = sboth.solve().best.d;

    EXPECT_NEAR(d_both, std::min(d_a, d_b), 1e-6);
}

/**
 * Random many-core inputs drawn from a handful of parameter
 * templates, so equivalence classes are real (cores repeat) and
 * random socket boundaries straddle them.
 */
PolicyInputs
randomTemplatedInputs(Rng &rng)
{
    PolicyInputs in;
    const std::size_t n = 8 + rng.below(120);
    const std::size_t templates = 1 + rng.below(5);
    std::vector<CoreModel> tpl(templates);
    for (CoreModel &c : tpl) {
        c.zbar = rng.uniform(15e-9, 900e-9);
        c.cache = 7.5e-9;
        c.pi = rng.uniform(0.8, 4.0);
        c.alpha = rng.uniform(2.0, 3.2);
        c.pStatic = rng.uniform(0.6, 1.4);
        c.ipa = rng.uniform(50.0, 3000.0);
    }
    in.cores.resize(n);
    for (CoreModel &c : in.cores)
        c = tpl[rng.below(templates)];

    ControllerModel ctl;
    ctl.q = rng.uniform(1.0, 4.0);
    ctl.u = rng.uniform(1.0, 4.0);
    ctl.sm = rng.uniform(20e-9, 60e-9);
    ctl.sbBar = rng.uniform(1e-9, 4e-9);
    in.memory.controllers = {ctl};
    in.memory.pm = rng.uniform(6.0, 20.0);
    in.memory.beta = rng.uniform(0.8, 1.4);
    in.memory.pStatic = rng.uniform(8.0, 16.0);
    in.accessProbs.assign(n, {1.0});
    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;

    double max_power = in.staticPower() + in.memory.pm;
    for (const CoreModel &c : in.cores)
        max_power += c.pi;
    in.budget = rng.uniform(0.35, 1.05) * max_power;
    return in;
}

/**
 * The per-socket class partition must not change a single bit of the
 * solve: fuzz random contiguous socket layouts (1-6 sockets, random
 * boundaries, tight and loose budgets) against the per-core
 * reference implementation.
 */
TEST(SocketBudgets, PartitionedSocketProbesBitIdenticalToReference)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        Rng rng(seed * 0x9e3779b97f4a7c15ULL);
        const PolicyInputs in = randomTemplatedInputs(rng);

        // Random contiguous partition of [0, n) into 1-6 sockets.
        const std::size_t n = in.cores.size();
        const std::size_t sockets =
            1 + rng.below(std::min<std::size_t>(6, n));
        std::vector<std::size_t> cuts = {0, n};
        while (cuts.size() < sockets + 1) {
            const std::size_t c = 1 + rng.below(n - 1);
            if (std::find(cuts.begin(), cuts.end(), c) == cuts.end())
                cuts.push_back(c);
        }
        std::sort(cuts.begin(), cuts.end());

        SolverOptions opt_opts;
        for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
            const std::size_t count = cuts[s + 1] - cuts[s];
            const double frac = rng.uniform(0.2, 1.2);
            opt_opts.socketBudgets.push_back(
                {cuts[s], count,
                 in.budget * frac * static_cast<double>(count) /
                     static_cast<double>(n)});
        }
        SolverOptions ref_opts = opt_opts;
        ref_opts.referenceImpl = true;
        ref_opts.exhaustiveMemSearch = true;

        FastCapSolver optimised(in, opt_opts);
        FastCapSolver reference(in, ref_opts);
        const SolveResult a = optimised.solve();
        const SolveResult b = reference.solve();

        const std::string ctx = "seed " + std::to_string(seed);
        ASSERT_EQ(a.memIndex, b.memIndex) << ctx;
        ASSERT_EQ(a.best.d, b.best.d) << ctx;
        ASSERT_EQ(a.best.predictedPower, b.best.predictedPower)
            << ctx;
        ASSERT_EQ(a.best.budgetFeasible, b.best.budgetFeasible)
            << ctx;
        ASSERT_EQ(a.best.saturatedLow, b.best.saturatedLow) << ctx;
        ASSERT_EQ(a.best.saturatedHigh, b.best.saturatedHigh) << ctx;
        for (std::size_t i = 0; i < a.best.coreRatios.size(); ++i)
            ASSERT_EQ(a.best.coreRatios[i], b.best.coreRatios[i])
                << ctx << " core " << i;
    }
}

} // namespace
} // namespace fastcap
