/**
 * @file
 * Tests for the FastCap solver: Theorem 1 (tight constraints at the
 * optimum), Eq. 8 consistency, fairness of the inner solution, ladder
 * clamping, Algorithm 1 vs exhaustive search, and budget monotonicity
 * properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

/**
 * A heterogeneous 4-core scenario: two compute-bound cores, one
 * balanced, one memory-bound, single controller.
 */
PolicyInputs
scenario(double budget_watts)
{
    PolicyInputs in;
    in.cores.resize(4);
    const double zbars[] = {600e-9, 500e-9, 120e-9, 25e-9};
    const double pis[] = {3.2, 3.0, 2.4, 1.2};
    const double alphas[] = {2.9, 3.0, 2.7, 2.5};
    for (int i = 0; i < 4; ++i) {
        in.cores[i].zbar = zbars[i];
        in.cores[i].cache = 7.5e-9;
        in.cores[i].pi = pis[i];
        in.cores[i].alpha = alphas[i];
        in.cores[i].pStatic = 1.0;
        in.cores[i].ipa = 1000.0;
    }

    ControllerModel ctl;
    ctl.q = 1.4;
    ctl.u = 1.8;
    ctl.sm = 33e-9;
    ctl.sbBar = 1.875e-9;
    in.memory.controllers = {ctl};
    in.memory.pm = 12.0;
    in.memory.beta = 1.1;
    in.memory.pStatic = 12.0;

    in.accessProbs.assign(4, {1.0});
    // 10-level ladders like the paper.
    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;
    in.budget = budget_watts;
    return in;
}

/** Max power of the scenario: all ratios 1. */
double
scenarioMaxPower(const PolicyInputs &in)
{
    double p = in.staticPower() + in.memory.pm;
    for (const CoreModel &c : in.cores)
        p += c.pi;
    return p;
}

TEST(Solver, AbundantBudgetGivesMaxEverything)
{
    PolicyInputs in = scenario(1000.0);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    EXPECT_EQ(res.memIndex, in.memRatios.size() - 1);
    EXPECT_NEAR(res.best.d, 1.0, 1e-6);
    for (double x : res.best.coreRatios)
        EXPECT_NEAR(x, 1.0, 1e-6);
    EXPECT_TRUE(res.best.budgetFeasible);
}

TEST(Solver, Theorem1PowerConstraintTightWhenBinding)
{
    PolicyInputs in = scenario(0.0);
    in.budget = 0.75 * scenarioMaxPower(in);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();

    // Theorem 1: the optimal solution consumes the entire budget.
    // The discrete memory ladder can strand at most one memory-level
    // power step of the budget, hence the asymmetric tolerance.
    EXPECT_LE(res.best.predictedPower, in.budget * 1.001);
    EXPECT_GT(res.best.predictedPower, 0.93 * in.budget);
    EXPECT_LT(res.best.d, 1.0);
    EXPECT_TRUE(res.best.budgetFeasible);
}

TEST(Solver, Theorem1PerformanceConstraintTight)
{
    // Constraint 5 is an equality for every core at the optimum:
    // each unclamped core's turn-around equals T̄_i / D exactly.
    PolicyInputs in = scenario(0.0);
    in.budget = 0.7 * scenarioMaxPower(in);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    const QueuingModel &qm = solver.queuing();

    const double x_min = in.minCoreRatio();
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        const double x = res.best.coreRatios[i];
        if (x <= x_min + 1e-9 || x >= 1.0 - 1e-9)
            continue; // ladder-clamped cores may deviate
        const double d_i = qm.performance(i, x, res.best.memRatio);
        EXPECT_NEAR(d_i, res.best.d, 1e-4)
            << "core " << i << " deviates from the common D";
    }
}

TEST(Solver, FairnessAllCoresShareDegradation)
{
    PolicyInputs in = scenario(0.0);
    in.budget = 0.65 * scenarioMaxPower(in);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    const QueuingModel &qm = solver.queuing();

    // Performance factors of unclamped cores agree; clamped cores can
    // only do better (they are pinned at a frequency *above* what
    // equal degradation would require... or at the floor, doing
    // worse is impossible given the budget holds).
    double min_d = 1.0;
    double max_d = 0.0;
    const double x_min = in.minCoreRatio();
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        const double x = res.best.coreRatios[i];
        if (x <= x_min + 1e-9)
            continue;
        const double d_i = qm.performance(i, x, res.best.memRatio);
        min_d = std::min(min_d, d_i);
        max_d = std::max(max_d, d_i);
    }
    EXPECT_LT(max_d - min_d, 1e-3);
}

TEST(Solver, Eq8Consistency)
{
    // z_i reconstructed from the returned ratios matches Eq. 8.
    PolicyInputs in = scenario(0.0);
    in.budget = 0.7 * scenarioMaxPower(in);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    const QueuingModel &qm = solver.queuing();

    const double x_min = in.minCoreRatio();
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        const double x = res.best.coreRatios[i];
        if (x <= x_min + 1e-9 || x >= 1.0 - 1e-9)
            continue;
        const Seconds z = in.cores[i].zbar / x;
        const Seconds z_eq8 = qm.minTurnaround(i) / res.best.d -
            in.cores[i].cache -
            qm.responseTime(i, res.best.memRatio);
        EXPECT_NEAR(z, z_eq8, 1e-6 * z);
    }
}

TEST(Solver, TinyBudgetPinsEverythingAtFloor)
{
    PolicyInputs in = scenario(1.0); // absurd 1 W budget
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    EXPECT_FALSE(res.best.budgetFeasible);
    for (double x : res.best.coreRatios)
        EXPECT_NEAR(x, in.minCoreRatio(), 1e-9);
    EXPECT_EQ(res.memIndex, 0u);
}

TEST(Solver, DMonotoneInBudget)
{
    // More budget can never hurt the achieved D (the infeasible
    // region's penalty values are also monotone in the budget).
    double prev_d = -std::numeric_limits<double>::infinity();
    const double max_power = scenarioMaxPower(scenario(1.0));
    for (double frac : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
        PolicyInputs in = scenario(frac * max_power);
        FastCapSolver solver(in);
        const SolveResult res = solver.solve();
        EXPECT_GE(res.best.d, prev_d - 1e-9)
            << "budget fraction " << frac;
        prev_d = res.best.d;
    }
}

TEST(Solver, PowerNeverExceedsBudgetWhenFeasible)
{
    // Fractions above the platform's floor power (~64% of max here:
    // statics dominate this small scenario).
    for (double frac : {0.68, 0.75, 0.9}) {
        PolicyInputs in = scenario(0.0);
        in.budget = frac * scenarioMaxPower(in);
        FastCapSolver solver(in);
        const SolveResult res = solver.solve();
        ASSERT_TRUE(res.best.budgetFeasible);
        EXPECT_LE(res.best.predictedPower,
                  in.budget * (1.0 + 1e-3));
    }
}

TEST(Solver, BinarySearchMatchesExhaustive)
{
    // Algorithm 1's binary search must land on (a point as good as)
    // the exhaustive optimum.
    for (double frac : {0.5, 0.6, 0.7, 0.85}) {
        PolicyInputs in = scenario(0.0);
        in.budget = frac * scenarioMaxPower(in);

        SolverOptions tight;
        tight.dTolerance = 1e-8;
        FastCapSolver fast(in, tight);
        const SolveResult res_fast = fast.solve();

        SolverOptions tight_full = tight;
        tight_full.exhaustiveMemSearch = true;
        FastCapSolver full(in, tight_full);
        const SolveResult res_full = full.solve();

        EXPECT_NEAR(res_fast.best.d, res_full.best.d,
                    1e-5 * std::abs(res_full.best.d) + 1e-12)
            << "budget fraction " << frac;
    }
}

TEST(Solver, BinarySearchUsesFewerEvaluations)
{
    PolicyInputs in = scenario(0.0);
    in.budget = 0.6 * scenarioMaxPower(in);

    FastCapSolver fast(in);
    (void)fast.solve();
    SolverOptions exhaustive;
    exhaustive.exhaustiveMemSearch = true;
    FastCapSolver full(in, exhaustive);
    (void)full.solve();

    // O(log M) vs O(M): with M=10, the search needs at most ~8
    // distinct evaluations (memoized).
    EXPECT_LE(fast.evaluations(), 8);
    EXPECT_EQ(full.evaluations(), 10);
}

TEST(Solver, MemoryBoundWorkloadKeepsMemoryFast)
{
    // All cores memory-bound: small z̄, low core power. Slowing the
    // memory is expensive in performance; the solver should keep the
    // memory level high and shed core power instead.
    PolicyInputs in = scenario(0.0);
    for (CoreModel &c : in.cores) {
        c.zbar = 20e-9;
        c.pi = 3.0; // enough core power to shed without touching memory
    }
    in.budget = 0.85 * scenarioMaxPower(in);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    EXPECT_GE(res.memIndex, in.memRatios.size() / 2);
}

TEST(Solver, ComputeBoundWorkloadSlowsMemory)
{
    // All cores compute-bound: memory frequency barely affects
    // turn-around, so the solver harvests memory power.
    PolicyInputs in = scenario(0.0);
    for (CoreModel &c : in.cores)
        c.zbar = 900e-9;
    in.budget = 0.7 * scenarioMaxPower(in);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    EXPECT_LE(res.memIndex, 2u);
}

TEST(Solver, EvaluationsLinearInCores)
{
    // The number of inner evaluations is independent of N (each is
    // O(N)); this is the O(N log M) claim's structure.
    for (std::size_t n : {4u, 16u, 64u}) {
        PolicyInputs in = scenario(0.0);
        const CoreModel proto = in.cores[0];
        in.cores.assign(n, proto);
        in.accessProbs.assign(n, {1.0});
        in.budget = 0.6 * scenarioMaxPower(in);
        FastCapSolver solver(in);
        (void)solver.solve();
        EXPECT_LE(solver.evaluations(), 8)
            << "evaluations must not grow with N (" << n << ")";
    }
}

TEST(Solver, RejectsDegenerateInputs)
{
    PolicyInputs empty;
    empty.budget = 10.0;
    empty.memRatios = {1.0};
    EXPECT_THROW(FastCapSolver s(empty), FatalError);

    PolicyInputs in = scenario(50.0);
    in.memRatios.clear();
    EXPECT_THROW(FastCapSolver s2(in), FatalError);

    PolicyInputs in3 = scenario(50.0);
    in3.budget = -1.0;
    EXPECT_THROW(FastCapSolver s3(in3), FatalError);
}

/** Budget sweep property: Theorem 1 holds across the binding range. */
class SolverBudgetProperty : public ::testing::TestWithParam<double>
{};

TEST_P(SolverBudgetProperty, TightWheneverBinding)
{
    PolicyInputs in = scenario(0.0);
    const double max_power = scenarioMaxPower(in);
    in.budget = GetParam() * max_power;
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();

    const double floor = [&] {
        PolicyInputs tiny = scenario(1.0);
        FastCapSolver s(tiny);
        return s.solveAtMemIndex(0).predictedPower;
    }();

    if (in.budget >= max_power) {
        EXPECT_NEAR(res.best.d, 1.0, 1e-6);
    } else if (in.budget > floor * 1.02) {
        // Binding region: full budget consumed (Theorem 1). The
        // discrete memory ladder leaves at most the gap between
        // adjacent memory power levels unharvested.
        EXPECT_GT(res.best.predictedPower, 0.90 * in.budget);
        EXPECT_LE(res.best.predictedPower, in.budget * 1.001);
    }
}

INSTANTIATE_TEST_SUITE_P(BudgetSweep, SolverBudgetProperty,
                         ::testing::Values(0.45, 0.5, 0.55, 0.6, 0.65,
                                           0.7, 0.75, 0.8, 0.85, 0.9,
                                           0.95, 1.0));

} // namespace
} // namespace fastcap
