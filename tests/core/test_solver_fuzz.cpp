/**
 * @file
 * Randomized property tests for the FastCap solver: across many
 * deterministic random scenarios, the core invariants must hold —
 * budget respected whenever feasible, Theorem-1 tightness, fairness
 * of unclamped cores, binary search agreeing with exhaustive scan.
 * A second suite steps the budget mid-sequence (the runtime budget
 * changes the scenario engine produces) and checks the solver tracks
 * each instantaneous budget, and that full experiments re-converge
 * after randomized budget drops within a bounded number of epochs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/solver.hpp"
#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace {

/** Random heterogeneous scenario, deterministic per seed. */
PolicyInputs
randomInputs(std::uint64_t seed)
{
    Rng rng(seed);
    PolicyInputs in;
    const std::size_t n = 2 + rng.below(30); // 2..31 cores
    in.cores.resize(n);
    for (CoreModel &c : in.cores) {
        c.zbar = rng.uniform(15e-9, 900e-9);
        c.cache = 7.5e-9;
        c.pi = rng.uniform(0.8, 4.0);
        c.alpha = rng.uniform(2.0, 3.2);
        c.pStatic = rng.uniform(0.6, 1.4);
        c.ipa = rng.uniform(50.0, 3000.0);
    }

    const std::size_t controllers = 1 + rng.below(3);
    for (std::size_t k = 0; k < controllers; ++k) {
        ControllerModel ctl;
        ctl.q = rng.uniform(1.0, 4.0);
        ctl.u = rng.uniform(1.0, 4.0);
        ctl.sm = rng.uniform(20e-9, 60e-9);
        ctl.sbBar = rng.uniform(1e-9, 4e-9);
        ctl.arrivalRate = rng.uniform(0.0, 200e6);
        in.memory.controllers.push_back(ctl);
    }
    in.memory.pm = rng.uniform(6.0, 20.0);
    in.memory.beta = rng.uniform(0.8, 1.4);
    in.memory.pStatic = rng.uniform(8.0, 16.0);

    in.accessProbs.resize(n);
    for (auto &row : in.accessProbs) {
        row.resize(controllers);
        double sum = 0.0;
        for (double &p : row) {
            p = rng.uniform(0.05, 1.0);
            sum += p;
        }
        for (double &p : row)
            p /= sum;
    }

    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;

    double max_power = in.staticPower() + in.memory.pm;
    for (const CoreModel &c : in.cores)
        max_power += c.pi;
    in.budget = rng.uniform(0.35, 1.05) * max_power;
    return in;
}

class SolverFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SolverFuzz, InvariantsHold)
{
    const PolicyInputs in = randomInputs(GetParam());
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    const QueuingModel &qm = solver.queuing();

    // Decision shape.
    ASSERT_EQ(res.best.coreRatios.size(), in.cores.size());
    ASSERT_LT(res.memIndex, in.memRatios.size());

    // Ratios within the ladder range.
    const double x_min = in.minCoreRatio();
    for (double x : res.best.coreRatios) {
        EXPECT_GE(x, x_min - 1e-12);
        EXPECT_LE(x, 1.0 + 1e-12);
    }

    // Power consistency: reported prediction matches Eq. 6's LHS.
    const Watts recomputed =
        solver.power(res.best.coreRatios, res.best.memRatio);
    EXPECT_NEAR(recomputed, res.best.predictedPower,
                1e-6 * std::max(1.0, recomputed));

    if (res.best.budgetFeasible) {
        // Budget respected...
        EXPECT_LE(res.best.predictedPower, in.budget * (1.0 + 2e-3));
        EXPECT_GT(res.best.d, 0.0);

        // ...and fairness: every unclamped core at the common D.
        for (std::size_t i = 0; i < in.cores.size(); ++i) {
            const double x = res.best.coreRatios[i];
            if (x <= x_min + 1e-9 || x >= 1.0 - 1e-9)
                continue;
            const double d_i =
                qm.performance(i, x, res.best.memRatio);
            EXPECT_NEAR(d_i, res.best.d,
                        1e-3 * std::max(res.best.d, 1e-6))
                << "core " << i << " seed " << GetParam();
        }
    } else {
        // Infeasible: everything pinned at the floor.
        for (double x : res.best.coreRatios)
            EXPECT_NEAR(x, x_min, 1e-9);
    }

    // Binary search (already used above) agrees with the exhaustive
    // reference.
    SolverOptions exhaustive;
    exhaustive.exhaustiveMemSearch = true;
    FastCapSolver full(in, exhaustive);
    const SolveResult ref = full.solve();
    EXPECT_NEAR(res.best.d, ref.best.d,
                1e-4 * std::max(std::abs(ref.best.d), 1e-9))
        << "seed " << GetParam();
}

/**
 * Force `distinct` equivalence classes onto randomized inputs:
 * `distinct == 0` leaves the all-random (typically all-distinct)
 * scenario untouched; otherwise cores cycle through the first
 * `distinct` prototypes, covering the degenerate single-class and
 * few-class shapes the hot path collapses hardest.
 */
PolicyInputs
randomClassedInputs(std::uint64_t seed, std::size_t distinct)
{
    PolicyInputs in = randomInputs(seed);
    if (distinct == 0)
        return in;
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        in.cores[i] = in.cores[i % distinct];
        in.accessProbs[i] = in.accessProbs[i % distinct];
    }
    return in;
}

/**
 * ISSUE 4 hard constraint: the optimised hot path (equivalence-class
 * SoA inner solve + binary memory search + warm start) must produce
 * a SolveResult bit-identical to the per-core exhaustive reference —
 * on heterogeneous inputs, degenerate single-class and all-distinct
 * inputs, and under socket budgets. EXPECT_EQ on doubles below is
 * deliberate: bit equality, not tolerance.
 */
TEST_P(SolverFuzz, OptimisedPathBitIdenticalToExhaustiveReference)
{
    const std::uint64_t seed = GetParam();
    for (const std::size_t distinct :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
        const PolicyInputs in = randomClassedInputs(seed, distinct);

        SolverOptions opt_opts; // optimised: classes + binary search
        SolverOptions ref_opts; // reference: per-core + full scan
        ref_opts.referenceImpl = true;
        ref_opts.exhaustiveMemSearch = true;
        if (seed % 3 == 0) {
            // Exercise the socket constraint path on a third of the
            // corpus (both paths must agree there too).
            const std::size_t half = in.cores.size() / 2;
            if (half > 0 && in.cores.size() > half) {
                opt_opts.socketBudgets = {
                    {0, half, in.budget * 0.6},
                    {half, in.cores.size() - half, in.budget * 0.6}};
                ref_opts.socketBudgets = opt_opts.socketBudgets;
            }
        }
        if (seed % 2 == 0) {
            // Warm hints must never change the answer, only the cost.
            opt_opts.warmStart.valid = true;
            opt_opts.warmStart.memIndex = seed % 10;
        }

        FastCapSolver optimised(in, opt_opts);
        FastCapSolver reference(in, ref_opts);
        const SolveResult a = optimised.solve();
        const SolveResult b = reference.solve();

        const std::string ctx = "seed " + std::to_string(seed) +
            " distinct " + std::to_string(distinct);
        ASSERT_EQ(a.memIndex, b.memIndex) << ctx;
        ASSERT_EQ(a.best.d, b.best.d) << ctx;
        ASSERT_EQ(a.best.memRatio, b.best.memRatio) << ctx;
        ASSERT_EQ(a.best.predictedPower, b.best.predictedPower)
            << ctx;
        ASSERT_EQ(a.best.budgetFeasible, b.best.budgetFeasible)
            << ctx;
        ASSERT_EQ(a.best.saturatedLow, b.best.saturatedLow) << ctx;
        ASSERT_EQ(a.best.saturatedHigh, b.best.saturatedHigh) << ctx;
        ASSERT_EQ(a.best.coreRatios.size(), b.best.coreRatios.size())
            << ctx;
        for (std::size_t i = 0; i < a.best.coreRatios.size(); ++i)
            ASSERT_EQ(a.best.coreRatios[i], b.best.coreRatios[i])
                << ctx << " core " << i;
        ASSERT_EQ(a.utilisationClamped, b.utilisationClamped) << ctx;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

class BudgetStepFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BudgetStepFuzz, SolverTracksEveryInstantaneousBudget)
{
    // A mid-run budget step reaches the solver as nothing more than a
    // different `budget` on the next epoch's inputs. Walk a random
    // sequence of steps over one scenario: whenever the instantaneous
    // budget is feasible, the allocation must sit at or below it —
    // the solver must never "remember" an older, higher budget.
    Rng rng(GetParam() * 0x9e37u + 17);
    PolicyInputs in = randomInputs(GetParam());

    double max_power = in.staticPower() + in.memory.pm;
    for (const CoreModel &c : in.cores)
        max_power += c.pi;

    for (int step = 0; step < 8; ++step) {
        in.budget = rng.uniform(0.3, 1.05) * max_power;
        FastCapSolver solver(in);
        const SolveResult res = solver.solve();
        if (!res.best.budgetFeasible)
            continue;
        EXPECT_LE(res.best.predictedPower,
                  in.budget * (1.0 + 2e-3))
            << "seed " << GetParam() << " step " << step;
        // Stateless determinism: a fresh solver at the same instant
        // reproduces the allocation exactly.
        FastCapSolver again(in);
        EXPECT_EQ(again.solve().best.d, res.best.d)
            << "seed " << GetParam() << " step " << step;
    }
}

TEST_P(BudgetStepFuzz, ExperimentReconvergesAfterRandomDrops)
{
    // End-to-end: a random budget drop mid-run must (a) never let
    // the policy allocate above the instantaneous budget by more
    // than the sampling tolerance for long, and (b) re-converge
    // within a bounded number of epochs.
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    const double high = rng.uniform(0.8, 0.95);
    // Post-drop levels stay above MIX1's ~0.58-of-peak floor on the
    // 4-core configuration: the invariant under test is tracking a
    // feasible budget, not pinning at the frequency floor.
    const double low = rng.uniform(0.63, 0.73);
    const int drop_epoch = 3 + static_cast<int>(rng.below(4));

    ExperimentConfig cfg;
    cfg.budgetFraction = high;
    cfg.targetInstructions = 1e12; // fixed horizon
    cfg.maxEpochs = drop_epoch + 10;
    cfg.scenario.budget.addStep(0.0, high);
    cfg.scenario.budget.addStep(drop_epoch * 0.005, low);

    SimConfig sim = SimConfig::defaultConfig(4);
    sim.seed = splitmix64(0xfa57ca9ULL, seed);

    Logger::global().level(LogLevel::Silent);
    const ExperimentResult res =
        runWorkload("MIX1", "FastCap", cfg, sim);
    Logger::global().level(LogLevel::Warn);

    ASSERT_EQ(res.epochs.size(),
              static_cast<std::size_t>(cfg.maxEpochs));
    // The recorded budget follows the schedule exactly.
    for (const EpochRecord &e : res.epochs) {
        const double frac = e.epoch < drop_epoch ? high : low;
        ASSERT_NEAR(e.budget, frac * res.peakPower, 1e-9);
    }

    const TransientSummary ts = analyzeTransients(res, 0.05);
    ASSERT_EQ(ts.drops.size(), 1u) << "seed " << seed;
    // Bounded re-convergence after the drop.
    EXPECT_GE(ts.drops[0].settlingEpochs, 0) << "seed " << seed;
    EXPECT_LE(ts.drops[0].settlingEpochs, 6) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetStepFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace
} // namespace fastcap
