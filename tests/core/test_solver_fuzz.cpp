/**
 * @file
 * Randomized property tests for the FastCap solver: across many
 * deterministic random scenarios, the core invariants must hold —
 * budget respected whenever feasible, Theorem-1 tightness, fairness
 * of unclamped cores, binary search agreeing with exhaustive scan.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace {

/** Random heterogeneous scenario, deterministic per seed. */
PolicyInputs
randomInputs(std::uint64_t seed)
{
    Rng rng(seed);
    PolicyInputs in;
    const std::size_t n = 2 + rng.below(30); // 2..31 cores
    in.cores.resize(n);
    for (CoreModel &c : in.cores) {
        c.zbar = rng.uniform(15e-9, 900e-9);
        c.cache = 7.5e-9;
        c.pi = rng.uniform(0.8, 4.0);
        c.alpha = rng.uniform(2.0, 3.2);
        c.pStatic = rng.uniform(0.6, 1.4);
        c.ipa = rng.uniform(50.0, 3000.0);
    }

    const std::size_t controllers = 1 + rng.below(3);
    for (std::size_t k = 0; k < controllers; ++k) {
        ControllerModel ctl;
        ctl.q = rng.uniform(1.0, 4.0);
        ctl.u = rng.uniform(1.0, 4.0);
        ctl.sm = rng.uniform(20e-9, 60e-9);
        ctl.sbBar = rng.uniform(1e-9, 4e-9);
        ctl.arrivalRate = rng.uniform(0.0, 200e6);
        in.memory.controllers.push_back(ctl);
    }
    in.memory.pm = rng.uniform(6.0, 20.0);
    in.memory.beta = rng.uniform(0.8, 1.4);
    in.memory.pStatic = rng.uniform(8.0, 16.0);

    in.accessProbs.resize(n);
    for (auto &row : in.accessProbs) {
        row.resize(controllers);
        double sum = 0.0;
        for (double &p : row) {
            p = rng.uniform(0.05, 1.0);
            sum += p;
        }
        for (double &p : row)
            p /= sum;
    }

    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;

    double max_power = in.staticPower() + in.memory.pm;
    for (const CoreModel &c : in.cores)
        max_power += c.pi;
    in.budget = rng.uniform(0.35, 1.05) * max_power;
    return in;
}

class SolverFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SolverFuzz, InvariantsHold)
{
    const PolicyInputs in = randomInputs(GetParam());
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    const QueuingModel &qm = solver.queuing();

    // Decision shape.
    ASSERT_EQ(res.best.coreRatios.size(), in.cores.size());
    ASSERT_LT(res.memIndex, in.memRatios.size());

    // Ratios within the ladder range.
    const double x_min = in.minCoreRatio();
    for (double x : res.best.coreRatios) {
        EXPECT_GE(x, x_min - 1e-12);
        EXPECT_LE(x, 1.0 + 1e-12);
    }

    // Power consistency: reported prediction matches Eq. 6's LHS.
    const Watts recomputed =
        solver.power(res.best.coreRatios, res.best.memRatio);
    EXPECT_NEAR(recomputed, res.best.predictedPower,
                1e-6 * std::max(1.0, recomputed));

    if (res.best.budgetFeasible) {
        // Budget respected...
        EXPECT_LE(res.best.predictedPower, in.budget * (1.0 + 2e-3));
        EXPECT_GT(res.best.d, 0.0);

        // ...and fairness: every unclamped core at the common D.
        for (std::size_t i = 0; i < in.cores.size(); ++i) {
            const double x = res.best.coreRatios[i];
            if (x <= x_min + 1e-9 || x >= 1.0 - 1e-9)
                continue;
            const double d_i =
                qm.performance(i, x, res.best.memRatio);
            EXPECT_NEAR(d_i, res.best.d,
                        1e-3 * std::max(res.best.d, 1e-6))
                << "core " << i << " seed " << GetParam();
        }
    } else {
        // Infeasible: everything pinned at the floor.
        for (double x : res.best.coreRatios)
            EXPECT_NEAR(x, x_min, 1e-9);
    }

    // Binary search (already used above) agrees with the exhaustive
    // reference.
    SolverOptions exhaustive;
    exhaustive.exhaustiveMemSearch = true;
    FastCapSolver full(in, exhaustive);
    const SolveResult ref = full.solve();
    EXPECT_NEAR(res.best.d, ref.best.d,
                1e-4 * std::max(std::abs(ref.best.d), 1e-9))
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

} // namespace
} // namespace fastcap
