/**
 * @file
 * Tests for the solver hot path introduced for many-core scaling
 * (ISSUE 4): the structure-of-arrays / equivalence-class inner solve
 * must be *bit-identical* to the per-core reference implementation,
 * the warm-started memory search must pick the same level as a cold
 * search, and warm-started experiments must reproduce cold-start
 * epoch records exactly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/fastcap_policy.hpp"
#include "core/solver.hpp"
#include "harness/experiment.hpp"
#include "policies/registry.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

/** Heterogeneous inputs with a controllable number of classes. */
PolicyInputs
classedInputs(std::size_t n, std::size_t distinct, std::uint64_t seed)
{
    Rng rng(seed);
    PolicyInputs in;

    std::vector<CoreModel> protos(distinct);
    for (CoreModel &c : protos) {
        c.zbar = rng.uniform(20e-9, 800e-9);
        c.cache = 7.5e-9;
        c.pi = rng.uniform(1.0, 3.5);
        c.alpha = rng.uniform(2.2, 3.1);
        c.pStatic = rng.uniform(0.8, 1.2);
        c.ipa = rng.uniform(100.0, 2000.0);
    }
    in.cores.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        in.cores[i] = protos[i % distinct];

    ControllerModel ctl;
    ctl.q = 1.4;
    ctl.u = 1.8;
    ctl.sm = 33e-9;
    ctl.sbBar = 1.875e-9;
    in.memory.controllers = {ctl};
    in.memory.pm = 8.0 + 0.25 * static_cast<double>(n);
    in.memory.beta = 1.1;
    in.memory.pStatic = 12.0;
    in.accessProbs.assign(n, {1.0});

    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;

    double max_power = in.staticPower() + in.memory.pm;
    for (const CoreModel &c : in.cores)
        max_power += c.pi;
    in.budget = rng.uniform(0.45, 0.9) * max_power;
    return in;
}

/** EXPECT bit-equality of two inner solutions. */
void
expectBitIdentical(const InnerSolution &a, const InnerSolution &b,
                   const std::string &what)
{
    EXPECT_EQ(a.d, b.d) << what;
    EXPECT_EQ(a.memRatio, b.memRatio) << what;
    EXPECT_EQ(a.predictedPower, b.predictedPower) << what;
    EXPECT_EQ(a.budgetFeasible, b.budgetFeasible) << what;
    EXPECT_EQ(a.saturatedLow, b.saturatedLow) << what;
    EXPECT_EQ(a.saturatedHigh, b.saturatedHigh) << what;
    ASSERT_EQ(a.coreRatios.size(), b.coreRatios.size()) << what;
    for (std::size_t i = 0; i < a.coreRatios.size(); ++i)
        ASSERT_EQ(a.coreRatios[i], b.coreRatios[i])
            << what << " core " << i;
}

TEST(SolverHotPath, HomogeneousMixCollapsesToOneClass)
{
    const PolicyInputs in = classedInputs(64, 1, 7);
    FastCapSolver solver(in);
    EXPECT_EQ(solver.numClasses(), 1u);
}

TEST(SolverHotPath, ClassCountMatchesDistinctCores)
{
    const PolicyInputs in = classedInputs(64, 5, 11);
    FastCapSolver solver(in);
    EXPECT_EQ(solver.numClasses(), 5u);
}

TEST(SolverHotPath, DistinctAccessRowsSplitClasses)
{
    // Same core parameters, different controller-access rows: the
    // queuing response differs, so they must not share a class.
    PolicyInputs in = classedInputs(4, 1, 13);
    ControllerModel second = in.memory.controllers[0];
    second.sm = 55e-9;
    in.memory.controllers.push_back(second);
    in.accessProbs.assign(4, {0.5, 0.5});
    in.accessProbs[2] = {0.9, 0.1};
    FastCapSolver solver(in);
    EXPECT_EQ(solver.numClasses(), 2u);
}

TEST(SolverHotPath, InnerSolveBitIdenticalToReference)
{
    for (const std::size_t distinct : {std::size_t{1}, std::size_t{4},
                                       std::size_t{32}}) {
        const PolicyInputs in = classedInputs(32, distinct, 21);
        FastCapSolver fast(in);
        SolverOptions ref_opts;
        ref_opts.referenceImpl = true;
        FastCapSolver ref(in, ref_opts);
        for (std::size_t m = 0; m < in.memRatios.size(); ++m) {
            expectBitIdentical(
                fast.solveAtMemIndex(m), ref.solveAtMemIndex(m),
                "level " + std::to_string(m) + " distinct " +
                    std::to_string(distinct));
        }
    }
}

TEST(SolverHotPath, FullSolveBitIdenticalToReference)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const PolicyInputs in = classedInputs(48, 6, seed);
        FastCapSolver fast(in);
        SolverOptions ref_opts;
        ref_opts.referenceImpl = true;
        FastCapSolver ref(in, ref_opts);
        const SolveResult a = fast.solve();
        const SolveResult b = ref.solve();
        EXPECT_EQ(a.memIndex, b.memIndex) << "seed " << seed;
        expectBitIdentical(a.best, b.best,
                           "seed " + std::to_string(seed));
    }
}

TEST(SolverHotPath, SocketBudgetsBitIdenticalToReference)
{
    const PolicyInputs in = classedInputs(16, 4, 33);
    SolverOptions opts;
    opts.socketBudgets = {{0, 8, in.budget * 0.45},
                          {8, 8, in.budget * 0.55}};
    SolverOptions ref_opts = opts;
    ref_opts.referenceImpl = true;

    FastCapSolver fast(in, opts);
    FastCapSolver ref(in, ref_opts);
    const SolveResult a = fast.solve();
    const SolveResult b = ref.solve();
    EXPECT_EQ(a.memIndex, b.memIndex);
    expectBitIdentical(a.best, b.best, "socket solve");
}

TEST(SolverHotPath, WarmStartPicksTheColdLevel)
{
    // Any hint — right, wrong, or out of range — must leave the
    // chosen level and solution identical to a cold search.
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const PolicyInputs in = classedInputs(24, 3, seed * 101);
        FastCapSolver cold(in);
        const SolveResult want = cold.solve();

        for (std::size_t hint = 0; hint < in.memRatios.size();
             hint += 3) {
            SolverOptions opts;
            opts.warmStart.valid = true;
            opts.warmStart.memIndex = hint;
            FastCapSolver warm(in, opts);
            const SolveResult got = warm.solve();
            EXPECT_EQ(got.memIndex, want.memIndex)
                << "seed " << seed << " hint " << hint;
            expectBitIdentical(got.best, want.best,
                               "seed " + std::to_string(seed) +
                                   " hint " + std::to_string(hint));
        }
    }
}

TEST(SolverHotPath, AccurateWarmStartSkipsLevelProbes)
{
    const PolicyInputs in = classedInputs(24, 3, 5);
    FastCapSolver cold(in);
    const SolveResult want = cold.solve();

    SolverOptions opts;
    opts.warmStart.valid = true;
    opts.warmStart.memIndex = want.memIndex;
    FastCapSolver warm(in, opts);
    const SolveResult got = warm.solve();
    EXPECT_EQ(got.memIndex, want.memIndex);
    EXPECT_LE(got.evaluations, 3)
        << "confirming a correct hint needs the hint and its "
           "neighbours only";
    EXPECT_LE(got.evaluations, want.evaluations);
}

TEST(SolverHotPath, BracketShrinkStaysWithinTolerance)
{
    // The opt-in bisection bracket shrink changes the midpoint
    // lattice: the root may differ in its last ulps but must stay
    // within the configured tolerance of the cold solve.
    const PolicyInputs in = classedInputs(24, 3, 17);
    FastCapSolver cold(in);
    const SolveResult want = cold.solve();
    ASSERT_TRUE(want.best.budgetFeasible);

    SolverOptions opts;
    opts.warmStart.valid = true;
    opts.warmStart.memIndex = want.memIndex;
    opts.warmStart.d = want.best.d;
    opts.warmStart.sameBudget = true;
    opts.warmStartShrinkBracket = true;
    FastCapSolver warm(in, opts);
    const SolveResult got = warm.solve();
    EXPECT_EQ(got.memIndex, want.memIndex);
    EXPECT_NEAR(got.best.d, want.best.d,
                2e-6 * std::max(want.best.d, 1e-12));
}

TEST(SolverHotPath, SaturatedLowSurfacesInfeasibleBudget)
{
    PolicyInputs in = classedInputs(16, 2, 3);
    in.budget = in.staticPower() * 1.001; // below any dynamic floor
    Logger::global().level(LogLevel::Silent);
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    Logger::global().level(LogLevel::Warn);
    EXPECT_FALSE(res.best.budgetFeasible);
    EXPECT_TRUE(res.best.saturatedLow)
        << "infeasibility must be an explicit diagnostic";
    EXPECT_FALSE(res.best.saturatedHigh);
    EXPECT_LT(res.best.d, 0.0) << "penalty ordering preserved";
}

TEST(SolverHotPath, SaturatedHighSurfacesAmpleBudget)
{
    PolicyInputs in = classedInputs(16, 2, 3);
    in.budget = in.budget * 100.0; // more than all-max draw
    FastCapSolver solver(in);
    const SolveResult res = solver.solve();
    EXPECT_TRUE(res.best.budgetFeasible);
    EXPECT_TRUE(res.best.saturatedHigh)
        << "budget above the level's ceiling clamps D at maxD";
    EXPECT_FALSE(res.best.saturatedLow);
}

TEST(SolverHotPath, RegistryPassesSolverOptionsThrough)
{
    const PolicyInputs in = classedInputs(8, 2, 9);
    SolverOptions ref_opts;
    ref_opts.referenceImpl = true;
    ref_opts.exhaustiveMemSearch = true;

    auto fast = makePolicy("FastCap");
    auto ref = makePolicy("FastCap", ref_opts);
    const PolicyDecision a = fast->decide(in);
    const PolicyDecision b = ref->decide(in);
    ASSERT_EQ(a.coreFreqIdx.size(), b.coreFreqIdx.size());
    for (std::size_t i = 0; i < a.coreFreqIdx.size(); ++i)
        EXPECT_EQ(a.coreFreqIdx[i], b.coreFreqIdx[i]);
    EXPECT_EQ(a.memFreqIdx, b.memFreqIdx);
    EXPECT_EQ(a.predictedPower, b.predictedPower);
    EXPECT_GT(b.evaluations, a.evaluations)
        << "exhaustive reference scans every level";
}

TEST(SolverHotPath, WarmExperimentMatchesColdStartBitForBit)
{
    // End to end: FastCapPolicy warm-starts from the second epoch on.
    // Every physical quantity of every epoch — frequencies, powers,
    // instruction rates, completions — must match a policy whose
    // warm state is wiped before each decision. Only the evaluation
    // count (the complexity metric the warm start exists to reduce)
    // may differ.
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.6;
    cfg.targetInstructions = 5e6;
    cfg.maxEpochs = 40;

    SimConfig sim = SimConfig::defaultConfig(8);
    sim.seed = 0xc01dca5eULL;

    /** FastCap with the warm-start hint dropped before every epoch. */
    class ColdFastCap : public FastCapPolicy
    {
      public:
        PolicyDecision
        decide(const PolicyInputs &inputs) override
        {
            reset(); // forget the previous epoch
            return FastCapPolicy::decide(inputs);
        }
    };

    FastCapPolicy warm_policy;
    ColdFastCap cold_policy;
    const std::vector<AppProfile> apps =
        workloads::mix("MIX1", sim.numCores);

    ExperimentRunner warm_run(sim, apps, warm_policy, cfg);
    const ExperimentResult warm = warm_run.run();
    ExperimentRunner cold_run(sim, apps, cold_policy, cfg);
    const ExperimentResult cold = cold_run.run();

    ASSERT_EQ(warm.epochs.size(), cold.epochs.size());
    int warm_evals = 0;
    int cold_evals = 0;
    for (std::size_t e = 0; e < warm.epochs.size(); ++e) {
        const EpochRecord &w = warm.epochs[e];
        const EpochRecord &c = cold.epochs[e];
        ASSERT_EQ(w.coreFreqIdx, c.coreFreqIdx) << "epoch " << e;
        ASSERT_EQ(w.memFreqIdx, c.memFreqIdx) << "epoch " << e;
        ASSERT_EQ(w.totalPower, c.totalPower) << "epoch " << e;
        ASSERT_EQ(w.corePower, c.corePower) << "epoch " << e;
        ASSERT_EQ(w.memPower, c.memPower) << "epoch " << e;
        ASSERT_EQ(w.ips, c.ips) << "epoch " << e;
        ASSERT_EQ(w.budget, c.budget) << "epoch " << e;
        ASSERT_EQ(w.duration, c.duration) << "epoch " << e;
        warm_evals += w.evaluations;
        cold_evals += c.evaluations;
    }
    ASSERT_EQ(warm.apps.size(), cold.apps.size());
    for (std::size_t i = 0; i < warm.apps.size(); ++i) {
        EXPECT_EQ(warm.apps[i].completionTime,
                  cold.apps[i].completionTime);
        EXPECT_EQ(warm.apps[i].completed, cold.apps[i].completed);
    }
    EXPECT_LT(warm_evals, cold_evals)
        << "the warm start must actually skip level probes";
}

} // namespace
} // namespace fastcap
