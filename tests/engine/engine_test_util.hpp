/**
 * @file
 * Shared helpers for the simulation-engine test suites: exact
 * (bit-level) serialization of window stats and epoch records, so
 * the determinism contract — byte-identical output for every shard
 * and thread count — is checked on raw double bits, not on rounded
 * text.
 */

#ifndef FASTCAP_TESTS_ENGINE_TEST_UTIL_HPP
#define FASTCAP_TESTS_ENGINE_TEST_UTIL_HPP

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "sim/system.hpp"
#include "util/math.hpp"

namespace fastcap {
namespace enginetest {

inline void
appendBits(std::string &out, double v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 " ", doubleBits(v));
    out += buf;
}

inline void
appendUint(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
    out += ' ';
}

/** Every numeric field of a WindowStats, bit-exact. */
inline std::string
serialize(const WindowStats &w)
{
    std::string s;
    appendBits(s, w.duration);
    appendBits(s, w.backgroundPower);
    appendBits(s, w.totalEnergy);
    for (const CoreWindowStats &c : w.cores) {
        appendUint(s, c.counters.instructions);
        appendUint(s, c.counters.misses);
        appendUint(s, c.counters.writebacks);
        appendUint(s, c.counters.stalls);
        appendUint(s, c.counters.returns);
        appendBits(s, c.counters.busyTime);
        appendBits(s, c.counters.stallTime);
        appendBits(s, c.frequency);
        appendUint(s, c.freqIndex);
        appendBits(s, c.activity);
        appendBits(s, c.dynamicPower);
        appendBits(s, c.totalPower);
        s += '\n';
    }
    for (const MemWindowStats &m : w.memory) {
        appendUint(s, m.counters.reads);
        appendUint(s, m.counters.writebacks);
        appendBits(s, m.counters.qSum);
        appendUint(s, m.counters.qSamples);
        appendBits(s, m.counters.uSum);
        appendUint(s, m.counters.uSamples);
        appendBits(s, m.counters.serviceSum);
        appendUint(s, m.counters.serviceCount);
        appendBits(s, m.counters.responseSum);
        appendUint(s, m.counters.responseCount);
        appendBits(s, m.counters.bankBusyTime);
        appendBits(s, m.counters.busBusyTime);
        appendBits(s, m.busFrequency);
        appendBits(s, m.transferTime);
        appendBits(s, m.busUtilisation);
        appendBits(s, m.dynamicPower);
        appendBits(s, m.totalPower);
        s += '\n';
    }
    return s;
}

/** Every numeric field of an experiment's epoch log, bit-exact. */
inline std::string
serialize(const ExperimentResult &res)
{
    std::string s;
    appendBits(s, res.peakPower);
    appendBits(s, res.budget);
    appendBits(s, res.budgetFraction);
    for (const EpochRecord &e : res.epochs) {
        appendUint(s, static_cast<std::uint64_t>(e.epoch));
        appendBits(s, e.startTime);
        appendBits(s, e.duration);
        appendBits(s, e.corePower);
        appendBits(s, e.memPower);
        appendBits(s, e.totalPower);
        appendBits(s, e.budget);
        appendUint(s, e.memFreqIdx);
        appendUint(s, static_cast<std::uint64_t>(e.evaluations));
        appendUint(s, e.budgetSaturated ? 1 : 0);
        appendUint(s, e.utilisationClamped ? 1 : 0);
        for (std::size_t idx : e.coreFreqIdx)
            appendUint(s, idx);
        for (double ips : e.ips)
            appendBits(s, ips);
        s += '\n';
    }
    for (const AppResult &a : res.apps) {
        s += a.app;
        s += ' ';
        appendUint(s, static_cast<std::uint64_t>(a.core));
        appendUint(s, a.completed ? 1 : 0);
        appendBits(s, a.completionTime);
        appendBits(s, a.tpi);
        s += '\n';
    }
    return s;
}

} // namespace enginetest
} // namespace fastcap

#endif // FASTCAP_TESTS_ENGINE_TEST_UTIL_HPP
