/**
 * @file
 * Tests for the sharded engine's cross-shard bandwidth re-division:
 * the per-window demand-driven re-split of each logical controller's
 * bus across its lanes. The re-division happens at the window
 * barrier from merged (shard-order-independent) counters, so the
 * bit-identity contract must keep holding across every shard and
 * thread count — and a lane with the controller's whole demand must
 * actually receive (nearly) the whole bus.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine_test_util.hpp"
#include "sim/engine/sharded_system.hpp"
#include "sim/system.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

SimConfig
config(int cores)
{
    SimConfig cfg = SimConfig::defaultConfig(cores);
    cfg.seed = 0xfeedbee5ULL;
    return cfg;
}

TEST(BandwidthRedivision,
     WindowStatsBitIdenticalAcrossShardsAndThreads)
{
    // A memory-heavy mix drives real lane-demand imbalance, so the
    // re-division runs with non-trivial weights every window. Four
    // windows: the first at the fair split, the rest at re-divided
    // shares computed from merged counters.
    const SimConfig cfg = config(32);
    const int windows = 4;

    std::vector<std::string> baseline;
    {
        ShardedSystem sys(cfg, workloads::mix("MEM1", 32), 1, 1);
        for (int w = 0; w < windows; ++w)
            baseline.push_back(
                enginetest::serialize(sys.runWindow(1e-4)));
    }
    for (const auto &[shards, threads] :
         std::vector<std::pair<int, int>>{
             {2, 2}, {4, 1}, {8, 4}, {32, 3}}) {
        ShardedSystem sys(cfg, workloads::mix("MEM1", 32), shards,
                          threads);
        for (int w = 0; w < windows; ++w)
            EXPECT_EQ(baseline[static_cast<std::size_t>(w)],
                      enginetest::serialize(sys.runWindow(1e-4)))
                << "shards=" << shards << " threads=" << threads
                << " window=" << w;
    }
}

TEST(BandwidthRedivision, UtilisationStaysBoundedAfterRedivision)
{
    // Renormalized shares must keep the merged logical-bus occupancy
    // within the window even once the split is no longer fair — and
    // also when the lane count does not divide the controller count.
    SimConfig cfg = config(8);
    cfg.numControllers = 3;
    cfg.busBurstCycles = 40.0;
    ShardedSystem sys(cfg, workloads::mix("MEM2", 8), 4, 1);
    for (int w = 0; w < 6; ++w) {
        const WindowStats stats = sys.runWindow(1e-4);
        for (const MemWindowStats &m : stats.memory)
            EXPECT_LE(m.busUtilisation, 1.0 + 1e-9)
                << "window " << w;
    }
}

TEST(BandwidthRedivision, ShiftsBandwidthTowardDemandingLanes)
{
    // One memory hog sharing a controller with an idle lane: the
    // fair split gives the hog half the bus; after the first window
    // the re-division hands it (nearly) everything. With the bus as
    // the bottleneck, its post-redivision request throughput must
    // clearly beat its fair-share throughput.
    SimConfig cfg = config(4);
    cfg.busBurstCycles = 40.0; // make the bus the bottleneck
    std::vector<AppProfile> apps{
        workloads::profile("swim"), workloads::idleProfile(),
        workloads::idleProfile(), workloads::idleProfile()};
    ShardedSystem sys(cfg, std::move(apps), 1, 1);

    const WindowStats fair = sys.runWindow(1e-4);
    sys.runWindow(1e-4); // shares settle
    const WindowStats redivided = sys.runWindow(1e-4);

    const auto accesses = [](const WindowStats &w) {
        std::uint64_t n = 0;
        for (const MemWindowStats &m : w.memory)
            n += m.counters.reads + m.counters.writebacks;
        return n;
    };
    EXPECT_GT(accesses(fair), 0u);
    // 4 lanes: fair share is a quarter of the bus, the re-divided
    // share ~85% (three idle lanes keep their tenth-of-fair floor).
    // Demand a conservative 1.5x gain to stay robust to service-time
    // components the bus does not dominate.
    EXPECT_GE(static_cast<double>(accesses(redivided)),
              1.5 * static_cast<double>(accesses(fair)));
}

} // namespace
} // namespace fastcap
