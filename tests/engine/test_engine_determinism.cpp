/**
 * @file
 * The sharded engine's determinism contract at full-experiment and
 * full-sweep scale, mirroring the PR 2 sweep contract: emitted
 * CSV/JSON and every epoch record are byte-identical at shards
 * 1/4/16 x threads 1/8. Scenarios (budget schedule + mid-run job
 * churn) run during the compared experiments, so the contract covers
 * swapApp and budget sampling across shard boundaries too.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "engine_test_util.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "policies/registry.hpp"
#include "scenario/scenario.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

const std::vector<std::pair<int, int>> kShardThreadMatrix = {
    {1, 1}, {1, 8}, {4, 1}, {4, 8}, {16, 1}, {16, 8}};

TEST(EngineDeterminism, ScenarioExperimentBitIdenticalAcrossMatrix)
{
    SimConfig cfg = SimConfig::defaultConfig(16);
    cfg.seed = 0x5eedc0deULL;

    const auto run = [&](int shards, int threads) {
        ExperimentConfig ecfg;
        ecfg.budgetFraction = 0.9;
        ecfg.targetInstructions = 1e12; // scenario-bounded run
        ecfg.maxEpochs = 10;
        ecfg.shards = shards;
        ecfg.shardThreads = threads;
        ecfg.scenario = Scenario::parse(
            "name=churn|budget=step@0:0.9;step@0.02:0.6"
            "|workload=0.015:3:idle;0.03:7:swim");
        ExperimentResult res =
            runWorkload("MIX1", "FastCap", ecfg, cfg);
        return enginetest::serialize(res);
    };

    const std::string reference = run(1, 1);
    ASSERT_FALSE(reference.empty());
    for (const auto &[shards, threads] : kShardThreadMatrix)
        EXPECT_EQ(reference, run(shards, threads))
            << "shards=" << shards << " threads=" << threads;
}

TEST(EngineDeterminism, SweepCsvAndJsonByteIdenticalAcrossMatrix)
{
    const auto sweep = [&](int shards, int shard_threads,
                           int pool_threads) {
        SweepGrid grid;
        grid.configs = SweepGrid::configsForCores({16});
        grid.workloads = {"ILP1", "MEM1"};
        grid.policies = {"FastCap", "Uncapped"};
        grid.budgetFractions = {0.6};
        grid.targetInstructions = 1e6;
        grid.shards = shards;
        grid.shardThreads = shard_threads;
        SweepRunner runner(grid, pool_threads);
        return runner.run().csvString();
    };

    const std::string reference = sweep(1, 1, 1);
    ASSERT_FALSE(reference.empty());
    for (const auto &[shards, threads] : kShardThreadMatrix)
        EXPECT_EQ(reference, sweep(shards, threads, 2))
            << "shards=" << shards << " threads=" << threads;
}

/**
 * The auto rule must leave small systems on the monolithic engine:
 * a shards=0 run is bit-identical to a pre-engine run (the golden
 * CSV tier enforces the same property at the tool level).
 */
TEST(EngineDeterminism, AutoKeepsSmallSystemsOnMonolithicEngine)
{
    SimConfig cfg = SimConfig::defaultConfig(8);
    cfg.seed = 0x00c0ffeeULL;

    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.7;
    ecfg.targetInstructions = 1e6;

    auto policy = makePolicy("FastCap");
    ExperimentRunner runner(cfg, workloads::mix("MIX1", 8), *policy,
                            ecfg);
    EXPECT_STREQ(runner.system().engineName(), "monolithic");

    ExperimentConfig forced = ecfg;
    forced.shards = 2;
    auto policy2 = makePolicy("FastCap");
    ExperimentRunner sharded(cfg, workloads::mix("MIX1", 8), *policy2,
                             forced);
    EXPECT_STREQ(sharded.system().engineName(), "sharded");
}

} // namespace
} // namespace fastcap
