/**
 * @file
 * Shard-boundary edge cases: scenario events and budget-schedule
 * samples landing exactly on an epoch boundary, a shard whose every
 * core swaps to the idle profile mid-run, and the shards-equals-cores
 * degenerate partition.
 */

#include <gtest/gtest.h>

#include <string>

#include "engine_test_util.hpp"
#include "harness/experiment.hpp"
#include "policies/registry.hpp"
#include "scenario/scenario.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

SimConfig
config(int cores)
{
    SimConfig cfg = SimConfig::defaultConfig(cores);
    cfg.seed = 0xed9ecafeULL;
    return cfg;
}

/**
 * A workload event whose timestamp is exactly an epoch boundary must
 * apply at the start of that epoch (<= now semantics), on every
 * shard layout.
 */
TEST(EngineEdges, WorkloadEventExactlyOnEpochBoundary)
{
    SimConfig cfg = config(8);
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.8;
    ecfg.targetInstructions = 1e12;
    ecfg.maxEpochs = 3;
    ecfg.shards = 4;
    ecfg.shardThreads = 2;
    // Epoch length is 5 ms; the event lands exactly on epoch 1's
    // boundary.
    ecfg.scenario =
        Scenario::parse("name=edge|workload=0.005:2:idle");

    auto policy = makePolicy("FastCap");
    ExperimentRunner runner(cfg, workloads::mix("MIX1", 8), *policy,
                            ecfg);
    runner.step(); // epoch 0: event not yet due
    EXPECT_NE(runner.system().appOf(2).name(), "idle");
    runner.step(); // epoch 1 starts at t = 0.005 exactly
    EXPECT_EQ(runner.system().appOf(2).name(), "idle");
}

/** A budget step exactly on the boundary owns that epoch's budget. */
TEST(EngineEdges, BudgetSampleExactlyOnEpochBoundary)
{
    SimConfig cfg = config(8);
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.9;
    ecfg.targetInstructions = 1e12;
    ecfg.maxEpochs = 3;
    ecfg.shards = 2;
    ecfg.scenario = Scenario::parse(
        "name=edge|budget=step@0:0.9;step@0.005:0.6");

    auto policy = makePolicy("FastCap");
    ExperimentRunner runner(cfg, workloads::mix("MIX1", 8), *policy,
                            ecfg);
    const EpochRecord e0 = runner.step();
    const EpochRecord e1 = runner.step();
    EXPECT_DOUBLE_EQ(e0.budget, 0.9 * runner.peakPower());
    // Exactly at t = 0.005 the second segment is in force.
    EXPECT_DOUBLE_EQ(e1.budget, 0.6 * runner.peakPower());
}

/**
 * swapApp to idle for every core of one shard: the emptied shard
 * keeps advancing (idle still schedules sparse thinks) and the run
 * keeps its contract — identical bits for any layout that isolates
 * or splits the idled cores.
 */
TEST(EngineEdges, ShardLeftAllIdleAfterSwapKeepsRunning)
{
    SimConfig cfg = config(8);
    const auto run = [&](int shards, int threads) {
        ExperimentConfig ecfg;
        ecfg.budgetFraction = 0.8;
        ecfg.targetInstructions = 1e12;
        ecfg.maxEpochs = 6;
        ecfg.shards = shards;
        ecfg.shardThreads = threads;
        // With 4 shards on 8 cores, shard 0 is exactly cores {0, 1}:
        // after 10 ms it runs nothing but idle.
        ecfg.scenario = Scenario::parse(
            "name=drain|workload=0.01:0:idle;0.01:1:idle");
        auto policy = makePolicy("FastCap");
        ExperimentRunner runner(cfg, workloads::mix("MIX1", 8),
                                *policy, ecfg);
        ExperimentResult res = runner.run();
        EXPECT_EQ(res.epochs.size(), 6u);
        EXPECT_EQ(runner.system().appOf(0).name(), "idle");
        EXPECT_EQ(runner.system().appOf(1).name(), "idle");
        // The drained shard keeps simulating: power accounting stays
        // sane and the idle pair still reports an instruction rate
        // (idle is a near-zero-*power* profile, not a halted core).
        const EpochRecord &last = res.epochs.back();
        EXPECT_GT(last.totalPower, 0.0);
        EXPECT_GT(last.ips[0], 0.0);
        return enginetest::serialize(res);
    };

    const std::string isolated = run(4, 1);   // idled pair = shard 0
    EXPECT_EQ(isolated, run(1, 1));           // same cores, one queue
    EXPECT_EQ(isolated, run(8, 8));           // one core per shard
}

/** shards = numCores (one-core shards) honours the full contract. */
TEST(EngineEdges, OneCorePerShardMatchesSingleShard)
{
    SimConfig cfg = config(12);
    const auto run = [&](int shards) {
        ExperimentConfig ecfg;
        ecfg.budgetFraction = 0.6;
        ecfg.targetInstructions = 1e6;
        ecfg.shards = shards;
        ExperimentResult res =
            runWorkload("MEM2", "FastCap", ecfg, cfg);
        EXPECT_TRUE(res.allCompleted());
        return enginetest::serialize(res);
    };
    EXPECT_EQ(run(1), run(12));
    // Over-asking clamps to one core per shard, same result.
    EXPECT_EQ(run(1), run(64));
}

} // namespace
} // namespace fastcap
