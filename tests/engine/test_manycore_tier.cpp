/**
 * @file
 * The 1024-core experiment tier (acceptance): a full FastCap capped
 * run on a MIX workload under a step-budget scenario completes within
 * ctest limits on the sharded engine, tracks the stepped budget, and
 * a 256-core spot check stays byte-identical across shard layouts.
 *
 * Deliberately excluded from the TSan ctest filter (suite name not in
 * the CI -R expression): instrumented 1024-core runs take minutes and
 * the determinism/edge suites already cover the concurrency surface.
 */

#include <gtest/gtest.h>

#include <string>

#include "engine_test_util.hpp"
#include "harness/experiment.hpp"
#include "scenario/scenario.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

TEST(ManyCoreTier, Full1024CoreCappedRunWithStepBudgetCompletes)
{
    SimConfig cfg = SimConfig::defaultConfig(1024);
    cfg.seed = 0x1024c0deULL;

    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.9;
    ecfg.targetInstructions = 10e6;
    ecfg.maxEpochs = 40;
    ecfg.shards = 0;       // auto: 16 shards at 1024 cores
    ecfg.shardThreads = 0; // auto: hardware workers

    ecfg.scenario = Scenario::parse(
        "name=step|budget=step@0:0.9;step@0.01:0.6");

    const ExperimentResult res =
        runWorkload("MIX1", "FastCap", ecfg, cfg);

    EXPECT_TRUE(res.allCompleted());
    ASSERT_GE(res.epochs.size(), 3u);
    EXPECT_EQ(res.apps.size(), 1024u);

    // The run tracks the stepped budget: epoch 0 carries the 0.9
    // budget, epochs past t = 10 ms the 0.6 one, and the post-step
    // epochs keep average power within a loose band of it.
    EXPECT_DOUBLE_EQ(res.epochs.front().budget,
                     0.9 * res.peakPower);
    double post_step_power = 0.0;
    int post_step = 0;
    for (const EpochRecord &e : res.epochs) {
        if (e.startTime >= 0.01) {
            EXPECT_DOUBLE_EQ(e.budget, 0.6 * res.peakPower);
            post_step_power += e.totalPower;
            ++post_step;
        }
    }
    ASSERT_GT(post_step, 0);
    // Settling epochs overshoot; the tail must be near budget.
    EXPECT_LT(res.epochs.back().totalPower,
              0.72 * res.peakPower);
    EXPECT_GT(post_step_power / post_step, 0.3 * res.peakPower);
}

TEST(ManyCoreTier, Capped256CoreRunBitIdenticalAcrossLayouts)
{
    SimConfig cfg = SimConfig::defaultConfig(256);
    cfg.seed = 0x256c0deULL;

    const auto run = [&](int shards, int threads) {
        ExperimentConfig ecfg;
        ecfg.budgetFraction = 0.6;
        ecfg.targetInstructions = 2e6;
        ecfg.maxEpochs = 20;
        ecfg.shards = shards;
        ecfg.shardThreads = threads;
        const ExperimentResult res =
            runWorkload("MIX3", "FastCap", ecfg, cfg);
        EXPECT_TRUE(res.allCompleted());
        return enginetest::serialize(res);
    };

    const std::string reference = run(1, 1);
    EXPECT_EQ(reference, run(4, 8));
    EXPECT_EQ(reference, run(16, 2));
}

} // namespace
} // namespace fastcap
