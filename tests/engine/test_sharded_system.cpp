/**
 * @file
 * Tests for the sharded simulation engine: shard partitioning, the
 * SimBackend factory's auto rule, window-stats shape and power
 * conservation against the monolithic engine, and the heart of the
 * contract — bit-identical window stats for every shard count and
 * thread count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine_test_util.hpp"
#include "sim/engine/backend.hpp"
#include "sim/engine/sharded_system.hpp"
#include "sim/system.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

SimConfig
config(int cores)
{
    SimConfig cfg = SimConfig::defaultConfig(cores);
    cfg.seed = 0xfeedbee5ULL;
    return cfg;
}

TEST(ShardedSystem, PartitionCoversAllCoresContiguously)
{
    const SimConfig cfg = config(16);
    for (int shards : {1, 3, 5, 16, 99}) {
        ShardedSystem sys(cfg, workloads::mix("MIX1", 16), shards, 1);
        EXPECT_LE(sys.numShards(), 16);
        EXPECT_GE(sys.numShards(), 1);
        int next = 0;
        for (int s = 0; s < sys.numShards(); ++s) {
            const auto [first, count] = sys.shardRange(s);
            EXPECT_EQ(first, next) << "shards=" << shards;
            EXPECT_GE(count, 1) << "shards=" << shards;
            next = first + count;
        }
        EXPECT_EQ(next, 16) << "shards=" << shards;
    }
    // Requesting one shard per core yields exactly that.
    ShardedSystem one_each(cfg, workloads::mix("MIX1", 16), 16, 1);
    EXPECT_EQ(one_each.numShards(), 16);
    for (int s = 0; s < 16; ++s)
        EXPECT_EQ(one_each.shardRange(s).second, 1);
}

TEST(ShardedSystem, FactoryAutoRuleSelectsEngineByScale)
{
    auto mono = makeSimBackend(config(16), workloads::mix("MIX1", 16));
    EXPECT_STREQ(mono->engineName(), "monolithic");

    auto mono64 =
        makeSimBackend(config(64), workloads::mix("MIX1", 64));
    EXPECT_STREQ(mono64->engineName(), "monolithic");

    auto sharded =
        makeSimBackend(config(128), workloads::mix("MIX1", 128));
    EXPECT_STREQ(sharded->engineName(), "sharded");
    EXPECT_EQ(static_cast<ShardedSystem *>(sharded.get())
                  ->numShards(), 2);

    EngineConfig force;
    force.shards = 4;
    auto forced =
        makeSimBackend(config(16), workloads::mix("MIX1", 16), force);
    EXPECT_STREQ(forced->engineName(), "sharded");
    EXPECT_EQ(static_cast<ShardedSystem *>(forced.get())
                  ->numShards(), 4);

    EngineConfig bad;
    bad.shards = -1;
    EXPECT_THROW(makeSimBackend(config(16),
                                workloads::mix("MIX1", 16), bad),
                 FatalError);
}

TEST(ShardedSystem, WindowStatsShapeMatchesLogicalTopology)
{
    SimConfig cfg = config(16);
    cfg.numControllers = 4;
    cfg.banksPerController = 8;
    ShardedSystem sys(cfg, workloads::mix("MEM1", 16), 4, 1);
    sys.maxFrequencies();

    const WindowStats w = sys.runWindow(cfg.profileWindow);
    ASSERT_EQ(w.cores.size(), 16u);
    ASSERT_EQ(w.memory.size(), 4u); // logical, not per-lane
    EXPECT_GT(w.totalEnergy, 0.0);
    EXPECT_GT(w.totalPower(), 0.0);
    for (const MemWindowStats &m : w.memory) {
        EXPECT_GT(m.counters.reads, 0u);
        EXPECT_GE(m.busUtilisation, 0.0);
        EXPECT_LE(m.busUtilisation, 1.0 + 1e-9);
        EXPECT_GT(m.totalPower, 0.0);
    }
    for (const CoreWindowStats &c : w.cores)
        EXPECT_GT(c.counters.instructions, 0u);
    EXPECT_GT(sys.eventsProcessed(), 0u);
}

/**
 * Regression: with numCores not divisible by numControllers, lanes
 * must be scaled by their *own* controller's lane count — a uniform
 * N/K share oversubscribes the controllers that serve the extra lane
 * and reported busUtilisation could exceed 1, which the monolithic
 * engine (one serialized bus) can never produce.
 */
TEST(ShardedSystem, NonDivisibleControllerCountKeepsUtilisationSane)
{
    SimConfig cfg = config(8);
    cfg.numControllers = 3;
    cfg.banksPerController = 4;
    // Bus-dominated memory so the lanes run their buses near flat out.
    cfg.busBurstCycles = 40.0;
    ShardedSystem sys(cfg, workloads::mix("MEM1", 8), 2, 1);
    sys.maxFrequencies();
    for (int w = 0; w < 4; ++w) {
        const WindowStats stats = sys.runWindow(cfg.profileWindow);
        ASSERT_EQ(stats.memory.size(), 3u);
        for (const MemWindowStats &m : stats.memory) {
            EXPECT_GE(m.busUtilisation, 0.0);
            EXPECT_LE(m.busUtilisation, 1.0 + 1e-9)
                << "window " << w;
        }
    }
}

TEST(ShardedSystem, NameplatePeakMatchesMonolithicEngine)
{
    const SimConfig cfg = config(32);
    ShardedSystem sharded(cfg, workloads::mix("ILP1", 32), 4, 1);
    ManyCoreSystem mono(cfg, workloads::mix("ILP1", 32));
    EXPECT_DOUBLE_EQ(sharded.nameplatePeakPower(),
                     mono.nameplatePeakPower());
}

/**
 * The determinism contract at the window level: every counter and
 * every power double is bit-identical across shard counts and thread
 * counts, through several windows with DVFS changes in between.
 */
TEST(ShardedSystem, WindowStatsBitIdenticalAcrossShardsAndThreads)
{
    const SimConfig cfg = config(32);
    const auto run = [&](int shards, int threads) {
        ShardedSystem sys(cfg, workloads::mix("MIX2", 32), shards,
                          threads);
        sys.maxFrequencies();
        std::string log;
        for (int w = 0; w < 4; ++w) {
            log += enginetest::serialize(
                sys.runWindow(cfg.profileWindow));
            // Actuate a different operating point every window.
            for (int i = 0; i < 32; ++i)
                sys.coreFreqIndex(
                    i, static_cast<std::size_t>((i + w) % 10));
            sys.memFreqIndex(static_cast<std::size_t>(9 - 2 * (w % 4)));
        }
        log += std::to_string(sys.eventsProcessed() > 0);
        for (int i = 0; i < 32; ++i)
            enginetest::appendBits(log, sys.instructionsRetired(i));
        return log;
    };

    const std::string reference = run(1, 1);
    for (const auto &[shards, threads] :
         std::vector<std::pair<int, int>>{
             {1, 8}, {4, 1}, {4, 8}, {16, 1}, {16, 8}, {32, 3}}) {
        EXPECT_EQ(reference, run(shards, threads))
            << "shards=" << shards << " threads=" << threads;
    }
}

TEST(ShardedSystem, SwapAppRebindsAcrossShardBoundaries)
{
    const SimConfig cfg = config(8);
    ShardedSystem sys(cfg, workloads::mix("MIX1", 8), 4, 2);
    sys.maxFrequencies();
    sys.runWindow(cfg.profileWindow);

    const std::string before = sys.appOf(5).name();
    sys.swapApp(5, workloads::spec("swim"));
    EXPECT_EQ(sys.appOf(5).name(), "swim");
    EXPECT_NE(before, "swim");

    // The rebound core keeps simulating with the new profile.
    const double instr_before = sys.instructionsRetired(5);
    sys.runWindow(cfg.profileWindow);
    EXPECT_GT(sys.instructionsRetired(5), instr_before);
}

TEST(ShardedSystem, SkewedInterleaveFallsBackToModuloMapping)
{
    SimConfig cfg = config(8);
    cfg.numControllers = 2;
    cfg.interleave = InterleaveMode::Skewed;
    ShardedSystem sys(cfg, workloads::mix("MIX1", 8), 2, 1);
    // One-hot modulo rows regardless of the skew request.
    for (int i = 0; i < 8; ++i) {
        const std::vector<double> &row = sys.accessProbabilities(i);
        ASSERT_EQ(row.size(), 2u);
        EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(i % 2)], 1.0);
        EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>((i + 1) % 2)],
                         0.0);
    }
}

} // namespace
} // namespace fastcap
