# Golden-file regression runner: execute fastcap_sweep on a committed
# grid spec and byte-compare the CSV against the committed reference.
#
#   cmake -DSWEEP=<fastcap_sweep> -DSPEC=<grid.spec>
#         -DGOLDEN=<reference.csv> -DOUT=<scratch.csv> -DTHREADS=<n>
#         -P run_golden.cmake
#
# A mismatch means a change altered simulation results. If that is
# intentional (a bugfix or a model change), regenerate the reference:
#   fastcap_sweep --spec <grid.spec> --threads 1 --csv <reference.csv>
# (plus --scenario "<spec>" when the test passes -DSCENARIO) and call
# the change out in the PR description.
#
# Optional -DSCENARIO=<scenario spec> adds a scenario axis on the
# command line; used by the trace goldens, whose corpus paths are
# only known at configure time.

foreach(var SWEEP SPEC GOLDEN OUT THREADS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: missing -D${var}=...")
  endif()
endforeach()

set(scenario_args)
if(DEFINED SCENARIO)
  set(scenario_args --scenario ${SCENARIO})
endif()

execute_process(
  COMMAND ${SWEEP} --spec ${SPEC} --threads ${THREADS} --csv ${OUT}
          ${scenario_args}
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fastcap_sweep failed (${rc}): ${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "golden CSV mismatch: ${OUT} differs from ${GOLDEN}. If the "
    "result change is intentional, regenerate the reference (see "
    "tests/golden/run_golden.cmake) and justify it in the PR.")
endif()
