/**
 * @file
 * Unit tests for the metrics module (normalized performance,
 * fairness, power summaries) on synthetic results.
 */

#include <gtest/gtest.h>

#include "harness/metrics.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

ExperimentResult
syntheticResult(const std::vector<double> &tpis, double peak = 100.0)
{
    ExperimentResult res;
    res.peakPower = peak;
    res.budget = 60.0;
    res.budgetFraction = 0.6;
    for (std::size_t i = 0; i < tpis.size(); ++i) {
        AppResult app;
        app.app = "app" + std::to_string(i);
        app.core = static_cast<int>(i);
        app.completed = true;
        app.tpi = tpis[i];
        app.completionTime = tpis[i] * 1e8;
        res.apps.push_back(app);
    }
    return res;
}

EpochRecord
epoch(int n, double power, double budget = 60.0)
{
    EpochRecord e;
    e.epoch = n;
    e.totalPower = power;
    e.budget = budget;
    return e;
}

TEST(Metrics, NormalizedCpiPerApp)
{
    const ExperimentResult base = syntheticResult({1.0e-9, 2.0e-9});
    const ExperimentResult capped = syntheticResult({1.5e-9, 2.2e-9});
    const PerfComparison cmp = comparePerformance(capped, base);
    ASSERT_EQ(cmp.perApp.size(), 2u);
    EXPECT_NEAR(cmp.perApp[0], 1.5, 1e-12);
    EXPECT_NEAR(cmp.perApp[1], 1.1, 1e-12);
    EXPECT_NEAR(cmp.average, 1.3, 1e-12);
    EXPECT_NEAR(cmp.worst, 1.5, 1e-12);
    EXPECT_NEAR(cmp.unfairness, 1.5 / 1.3, 1e-12);
}

TEST(Metrics, MismatchedAppsAreFatal)
{
    const ExperimentResult base = syntheticResult({1e-9});
    const ExperimentResult capped = syntheticResult({1e-9, 2e-9});
    EXPECT_THROW(comparePerformance(capped, base), FatalError);
}

TEST(Metrics, IncompleteAppsSkippedWithWarning)
{
    ExperimentResult base = syntheticResult({1e-9, 2e-9});
    ExperimentResult capped = syntheticResult({2e-9, 3e-9});
    capped.apps[1].completed = false;
    const PerfComparison cmp = comparePerformance(capped, base);
    EXPECT_EQ(cmp.perApp.size(), 1u);
    EXPECT_NEAR(cmp.average, 2.0, 1e-12);
}

TEST(Metrics, AllIncompleteIsFatal)
{
    ExperimentResult base = syntheticResult({1e-9});
    ExperimentResult capped = syntheticResult({2e-9});
    capped.apps[0].completed = false;
    EXPECT_THROW(comparePerformance(capped, base), FatalError);
}

TEST(Metrics, MergePoolsApps)
{
    PerfComparison a;
    a.perApp = {1.2, 1.4};
    PerfComparison b;
    b.perApp = {1.1, 1.9};
    const PerfComparison m = mergeComparisons({a, b});
    EXPECT_EQ(m.perApp.size(), 4u);
    EXPECT_NEAR(m.average, (1.2 + 1.4 + 1.1 + 1.9) / 4.0, 1e-12);
    EXPECT_NEAR(m.worst, 1.9, 1e-12);
}

TEST(Metrics, MergeEmptyIsFatal)
{
    EXPECT_THROW(mergeComparisons({}), FatalError);
}

TEST(Metrics, PowerSummaryCountsOvershoots)
{
    ExperimentResult res = syntheticResult({1e-9});
    res.epochs = {epoch(0, 58.0), epoch(1, 66.0), epoch(2, 59.0),
                  epoch(3, 63.0)};
    const PowerSummary s = summarizePower(res);
    EXPECT_NEAR(s.avgFraction, (58 + 66 + 59 + 63) / 4.0 / 100.0,
                1e-12);
    EXPECT_NEAR(s.maxFraction, 0.66, 1e-12);
    EXPECT_NEAR(s.overshootShare, 0.5, 1e-12);
    EXPECT_NEAR(s.worstOvershoot, 6.0 / 60.0, 1e-12);
}

TEST(Metrics, TrackingErrorIsMeanRelativeDeviation)
{
    ExperimentResult res = syntheticResult({1e-9});
    res.epochs = {epoch(0, 54.0), epoch(1, 66.0)};
    // |54-60|/60 = 0.1; |66-60|/60 = 0.1 -> mean 0.1.
    EXPECT_NEAR(budgetTrackingError(res), 0.1, 1e-12);
}

TEST(Metrics, AveragePowerIsEnergyWeighted)
{
    // Epochs of unequal duration: 1 s at 100 W plus 3 s at 50 W is
    // 250 J over 4 s = 62.5 W, not the unweighted 75 W.
    ExperimentResult res = syntheticResult({1e-9});
    EpochRecord a = epoch(0, 100.0);
    a.duration = 1.0;
    EpochRecord b = epoch(1, 50.0);
    b.duration = 3.0;
    res.epochs = {a, b};
    EXPECT_NEAR(res.averagePower(), 62.5, 1e-12);
    res.peakPower = 100.0;
    EXPECT_NEAR(res.averagePowerFraction(), 0.625, 1e-12);
}

TEST(Metrics, TruncatedFinalEpochCarriesLessWeight)
{
    // A short final epoch (run completed just after it started) must
    // barely move the run average.
    ExperimentResult res = syntheticResult({1e-9});
    EpochRecord full = epoch(0, 60.0);
    full.duration = 5e-3;
    EpochRecord stub = epoch(1, 10.0);
    stub.duration = 5e-6; // 0.1% of an epoch
    res.epochs = {full, stub};
    EXPECT_GT(res.averagePower(), 59.9);
    EXPECT_LT(res.averagePower(), 60.0);
}

TEST(Metrics, AveragePowerFallsBackWhenDurationsAbsent)
{
    // Hand-built records without durations keep the historical
    // unweighted-mean behaviour.
    ExperimentResult res = syntheticResult({1e-9});
    res.epochs = {epoch(0, 100.0), epoch(1, 50.0)};
    EXPECT_NEAR(res.averagePower(), 75.0, 1e-12);
}

TEST(Metrics, EmptyEpochLogsAreSafe)
{
    const ExperimentResult res = syntheticResult({1e-9});
    EXPECT_DOUBLE_EQ(budgetTrackingError(res), 0.0);
    const PowerSummary s = summarizePower(res);
    EXPECT_DOUBLE_EQ(s.overshootShare, 0.0);
    EXPECT_DOUBLE_EQ(res.averagePower(), 0.0);
    EXPECT_DOUBLE_EQ(res.maxEpochPower(), 0.0);
}

} // namespace
} // namespace fastcap
