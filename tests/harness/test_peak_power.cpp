/**
 * @file
 * Tests for the measured-peak-power procedure (Section IV-B: "run all
 * workloads under the maximum frequencies to observe the peak power").
 */

#include <gtest/gtest.h>

#include "harness/peak_power.hpp"
#include "sim/system.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

TEST(PeakPower, BelowNameplateAboveTypical)
{
    const SimConfig cfg = SimConfig::defaultConfig(16);
    const Watts measured = measuredPeakPower(cfg);

    ManyCoreSystem sys(cfg, workloads::mix("ILP1", 16));
    const Watts nameplate = sys.nameplatePeakPower();
    EXPECT_LT(measured, nameplate)
        << "real workloads never reach activity-1 nameplate";
    EXPECT_GT(measured, 0.7 * nameplate);
}

TEST(PeakPower, DominatesWorkloadDraws)
{
    // Every class's uncapped draw must be at or below the measured
    // peak (the ILP class defines it).
    const SimConfig cfg = SimConfig::defaultConfig(16);
    const Watts peak = measuredPeakPower(cfg);
    for (const char *wl : {"ILP2", "MID1", "MEM1", "MIX2"}) {
        ManyCoreSystem sys(cfg, workloads::mix(wl, 16));
        sys.maxFrequencies();
        sys.runWindow(fromUs(100)); // warm-up
        const WindowStats w = sys.runWindow(fromUs(200));
        EXPECT_LE(w.totalPower(), peak * 1.05) << wl;
    }
}

TEST(PeakPower, ScalesWithCoreCount)
{
    const Watts p4 = measuredPeakPower(SimConfig::defaultConfig(4));
    const Watts p16 = measuredPeakPower(SimConfig::defaultConfig(16));
    const Watts p32 = measuredPeakPower(SimConfig::defaultConfig(32));
    EXPECT_LT(p4, p16);
    EXPECT_LT(p16, p32);
    // Roughly linear in the core-dominated regime.
    EXPECT_NEAR(p32 / p16, 2.0, 0.45);
}

TEST(PeakPower, CacheInvalidation)
{
    SimConfig cfg = SimConfig::defaultConfig(4);
    const Watts a = measuredPeakPower(cfg);
    clearPeakPowerCache();
    const Watts b = measuredPeakPower(cfg);
    EXPECT_DOUBLE_EQ(a, b) << "deterministic measurement";

    // A different power configuration must not hit the same entry.
    cfg.corePower.dynMax *= 2.0;
    const Watts c = measuredPeakPower(cfg);
    EXPECT_GT(c, b);
}

TEST(PeakPower, SeedDoesNotInfluenceCachedValue)
{
    // The cache key covers only measurement-relevant fields, so the
    // measurement itself must not depend on cfg.seed: otherwise the
    // first caller's seed would leak into every later lookup.
    SimConfig cfg = SimConfig::defaultConfig(4);
    cfg.seed = 0x1111111111111111ULL;
    const Watts a = measuredPeakPower(cfg);
    clearPeakPowerCache();
    cfg.seed = 0x2222222222222222ULL;
    const Watts b = measuredPeakPower(cfg);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(PeakPower, SamplingWindowIsPartOfTheCacheKey)
{
    // The measurement runs cfg.profileWindow-long windows, so two
    // configs differing only there must not share a cache entry.
    SimConfig cfg = SimConfig::defaultConfig(4);
    const Watts a = measuredPeakPower(cfg);
    cfg.profileWindow = cfg.profileWindow * 4.0;
    const Watts b = measuredPeakPower(cfg);
    EXPECT_NE(a, b) << "longer windows observe different peaks";
}

// Regression (ISSUE 4): the key used to be formatted into a fixed
// char[320] with snprintf's return value ignored. Extreme-magnitude
// values (%.3f of a 1e300 dynMax expands past 300 characters) pushed
// later fields off the end, so configs differing only in a truncated
// field silently merged into one cache entry — corrupting paired-seed
// sweep determinism. The key is now built at whatever length the
// values demand.
TEST(PeakPower, CacheKeyNeverTruncates)
{
    SimConfig a = SimConfig::defaultConfig(4);
    a.corePower.dynMax = 1e300; // ~305 characters as %.3f
    SimConfig b = a;
    b.profileWindow = a.profileWindow * 2.0; // formatted after dynMax

    const std::string ka = peakPowerCacheKey(a);
    const std::string kb = peakPowerCacheKey(b);
    EXPECT_GT(ka.size(), 320u)
        << "the old fixed buffer would have cut this key short";
    EXPECT_NE(ka, kb)
        << "fields past the old 320-char horizon must still "
           "distinguish configs";
    // The full field list survives to the end of the key.
    EXPECT_NE(ka.find("dvfs="), std::string::npos);
    EXPECT_NE(kb.find("dvfs="), std::string::npos);
}

TEST(PeakPower, CacheKeyDistinguishesOrdinaryConfigs)
{
    const SimConfig base = SimConfig::defaultConfig(8);
    SimConfig other = base;
    other.rowHitRate = base.rowHitRate * 0.5;
    EXPECT_NE(peakPowerCacheKey(base), peakPowerCacheKey(other));
    EXPECT_NE(peakPowerCacheKey(base, 3), peakPowerCacheKey(base, 5))
        << "measurement epochs are part of the key";
    EXPECT_EQ(peakPowerCacheKey(base), peakPowerCacheKey(base));
}

// Regression (ISSUE 8): the measurement used to run on a monolithic
// ManyCoreSystem regardless of what engine the experiment itself
// selected, and the cache key ignored the engine entirely. Above the
// 64-core auto-sharding limit the budget denominator therefore came
// from a different contention model than the epochs being capped —
// and a forced-shard small run could poison the cache for a later
// monolithic run of the same config.
TEST(PeakPower, EngineIsPartOfTheCacheKey)
{
    const SimConfig cfg = SimConfig::defaultConfig(16);
    const std::string auto_key = peakPowerCacheKey(cfg);
    const std::string forced_key =
        peakPowerCacheKey(cfg, EngineConfig{4, 1});
    EXPECT_NE(auto_key.find("eng=monolithic"), std::string::npos);
    EXPECT_NE(forced_key.find("eng=sharded"), std::string::npos);
    EXPECT_NE(auto_key, forced_key)
        << "engines model contention differently; their measured "
           "peaks must never share a cache entry";

    // Shard/thread *counts* are bit-irrelevant by the determinism
    // contract, so they must NOT split the cache.
    EXPECT_EQ(peakPowerCacheKey(cfg, EngineConfig{4, 1}),
              peakPowerCacheKey(cfg, EngineConfig{8, 3}));
}

TEST(PeakPower, LargeConfigsMeasureOnTheShardedEngine)
{
    // 4096 cores auto-selects the sharded engine: the measurement
    // must follow it there (and still produce a sane positive peak).
    const SimConfig cfg = SimConfig::defaultConfig(4096);
    EXPECT_NE(peakPowerCacheKey(cfg).find("eng=sharded"),
              std::string::npos);

    const Watts sharded = measuredPeakPower(
        SimConfig::defaultConfig(128), EngineConfig{});
    EXPECT_GT(sharded, 0.0);
    // Engines agree on uncontended per-core power, so the sharded
    // 128-core peak sits near 8x the monolithic 16-core peak.
    const Watts mono16 = measuredPeakPower(SimConfig::defaultConfig(16));
    EXPECT_NEAR(sharded / mono16, 8.0, 2.0);
}

TEST(PeakPower, ForcedEngineMatchesAutoAboveTheLimit)
{
    // Above kAutoMonolithicLimit the auto rule resolves to sharded,
    // so an explicitly forced shard count must reuse the same entry.
    const SimConfig cfg = SimConfig::defaultConfig(96);
    EXPECT_EQ(peakPowerCacheKey(cfg),
              peakPowerCacheKey(cfg, EngineConfig{2, 2}));
    EXPECT_DOUBLE_EQ(measuredPeakPower(cfg),
                     measuredPeakPower(cfg, EngineConfig{2, 2}));
}

TEST(PeakPower, PaperBandAt16Cores)
{
    // Paper: 120 W at 16 cores. Our calibration lands in the same
    // band (±25%), which EXPERIMENTS.md records.
    const Watts p = measuredPeakPower(SimConfig::defaultConfig(16));
    EXPECT_GT(p, 90.0);
    EXPECT_LT(p, 150.0);
}

} // namespace
} // namespace fastcap
