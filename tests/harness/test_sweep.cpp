/**
 * @file
 * Tests for the parallel sweep subsystem: SplitMix64 seed derivation,
 * cross-product enumeration, grid validation, and the determinism
 * contract (byte-identical CSV for any worker count).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "harness/sweep.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

TEST(SplitMix64, MatchesReferenceVectors)
{
    // Reference outputs of Vigna's splitmix64.c for seed 0 and for
    // the simulator's default seed.
    EXPECT_EQ(splitmix64(0, 0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64(0, 1), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(splitmix64(0, 2), 0x06c45d188009454fULL);
    EXPECT_EQ(splitmix64(0x5eedf00dULL, 0), 0x48f04efcd891b5edULL);
    EXPECT_EQ(splitmix64(0x5eedf00dULL, 1), 0x94552dd5153eff37ULL);
    EXPECT_EQ(splitmix64(0x5eedf00dULL, 2), 0x1c8c93945c88d10eULL);
}

TEST(SplitMix64, DerivedRunSeedsAreDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 4096; ++i)
        seen.insert(splitmix64(0x5eedf00dULL, i));
    EXPECT_EQ(seen.size(), 4096u);
}

SweepGrid
smallGrid()
{
    SweepGrid grid;
    grid.configs = SweepGrid::configsForCores({4});
    grid.workloads = {"ILP1", "MEM1"};
    grid.policies = {"FastCap", "Uncapped"};
    grid.budgetFractions = {0.6};
    grid.targetInstructions = 3e5;
    grid.maxEpochs = 50;
    return grid;
}

TEST(SweepGrid, EnumeratesTheFullCrossProduct)
{
    SweepGrid grid;
    grid.configs = SweepGrid::configsForCores({4, 8});
    grid.workloads = {"ILP1", "MEM1", "MIX2"};
    grid.policies = {"FastCap", "Eql-Pwr"};
    grid.budgetFractions = {0.5, 0.7};
    grid.replicates = 2;
    ASSERT_EQ(grid.runCount(), 2u * 3u * 2u * 2u * 2u);

    // Every index decodes to in-range coordinates; runIndexOf is the
    // exact inverse; the full coordinate set is covered exactly once.
    std::set<std::string> seen;
    for (std::size_t i = 0; i < grid.runCount(); ++i) {
        const SweepPoint p = grid.point(i);
        EXPECT_EQ(p.runIndex, i);
        EXPECT_EQ(grid.runIndexOf(p.configIdx, p.workloadIdx,
                                  p.policyIdx, p.budgetIdx,
                                  p.replicate),
                  i);
        EXPECT_EQ(p.config, grid.configs[p.configIdx].name);
        EXPECT_EQ(p.workload, grid.workloads[p.workloadIdx]);
        EXPECT_EQ(p.policy, grid.policies[p.policyIdx]);
        EXPECT_DOUBLE_EQ(p.budgetFraction,
                         grid.budgetFractions[p.budgetIdx]);
        EXPECT_EQ(p.seed, splitmix64(grid.baseSeed, i));
        seen.insert(p.config + "|" + p.workload + "|" + p.policy +
                    "|" + std::to_string(p.budgetIdx) + "|" +
                    std::to_string(p.replicate));
    }
    EXPECT_EQ(seen.size(), grid.runCount());
}

TEST(SweepGrid, PairedSeedsCollapsePolicyAndBudgetAxes)
{
    SweepGrid grid = smallGrid();
    grid.budgetFractions = {0.5, 0.7};
    grid.replicates = 2;
    grid.pairSeedsAcrossPolicies = true;

    for (std::size_t i = 0; i < grid.runCount(); ++i) {
        const SweepPoint p = grid.point(i);
        // Same (config, workload, replicate), first policy/budget:
        // must carry the identical seed.
        const SweepPoint paired = grid.point(grid.runIndexOf(
            p.configIdx, p.workloadIdx, 0, 0, p.replicate));
        EXPECT_EQ(p.seed, paired.seed) << "run " << i;
    }
    // Different workloads or replicates still differ.
    EXPECT_NE(grid.point(0).seed,
              grid.point(grid.runIndexOf(0, 1, 0, 0, 0)).seed);
    EXPECT_NE(grid.point(0).seed,
              grid.point(grid.runIndexOf(0, 0, 0, 0, 1)).seed);
}

TEST(SweepRunner, PairedSeedsGiveBaselineTheSameTrace)
{
    SweepGrid grid = smallGrid();
    grid.pairSeedsAcrossPolicies = true;
    const SweepResult sw = SweepRunner(grid, 4).run();
    // Uncapped and FastCap runs of the same workload used one seed.
    const std::size_t w = grid.workloadIndex("ILP1");
    EXPECT_EQ(sw.at(0, w, grid.policyIndex("FastCap"), 0).point.seed,
              sw.at(0, w, grid.policyIndex("Uncapped"), 0).point.seed);
}

TEST(SweepGrid, ReplicatesAreInnermost)
{
    SweepGrid grid = smallGrid();
    grid.replicates = 3;
    const SweepPoint a = grid.point(0);
    const SweepPoint b = grid.point(1);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.replicate, 0);
    EXPECT_EQ(b.replicate, 1);
    EXPECT_NE(a.seed, b.seed);
}

std::string jsonString(const SweepResult &sw); // defined below

/** Two-scenario axis: a budget drop and a sinusoid. */
std::vector<Scenario>
twoScenarios()
{
    Scenario drop;
    drop.name = "drop";
    drop.budget.addStep(0.0, 0.9);
    drop.budget.addStep(0.01, 0.5);
    Scenario wave;
    wave.name = "wave";
    wave.budget.addSine(0.0, 0.7, 0.1, 0.02);
    return {drop, wave};
}

TEST(SweepGrid, ScenarioAxisEntersTheCrossProduct)
{
    SweepGrid grid = smallGrid();
    ASSERT_EQ(grid.scenarioCount(), 1u);
    EXPECT_FALSE(grid.hasScenarioAxis());
    EXPECT_EQ(grid.scenarioName(0), "constant");

    grid.scenarios = twoScenarios();
    grid.replicates = 2;
    ASSERT_EQ(grid.scenarioCount(), 2u);
    ASSERT_EQ(grid.runCount(), 1u * 2u * 2u * 2u * 1u * 2u);

    std::set<std::string> seen;
    for (std::size_t i = 0; i < grid.runCount(); ++i) {
        const SweepPoint p = grid.point(i);
        EXPECT_EQ(p.runIndex, i);
        EXPECT_EQ(grid.runIndexOf(p.configIdx, p.workloadIdx,
                                  p.scenarioIdx, p.policyIdx,
                                  p.budgetIdx, p.replicate),
                  i);
        EXPECT_EQ(p.scenario,
                  grid.scenarios[p.scenarioIdx].name);
        seen.insert(p.workload + "|" + p.scenario + "|" + p.policy +
                    "|" + std::to_string(p.replicate));
    }
    EXPECT_EQ(seen.size(), grid.runCount());
    // The scenario axis sits between workloads and policies.
    EXPECT_EQ(grid.point(0).scenario, "drop");
    const SweepPoint q =
        grid.point(grid.runIndexOf(0, 0, 1, 0, 0, 0));
    EXPECT_EQ(q.scenario, "wave");
    EXPECT_EQ(q.workload, grid.point(0).workload);

    EXPECT_EQ(grid.scenarioIndex("wave"), 1u);
    EXPECT_THROW(grid.scenarioIndex("nope"), FatalError);
    // Without an axis only "constant" resolves.
    const SweepGrid plain = smallGrid();
    EXPECT_EQ(plain.scenarioIndex("constant"), 0u);
    EXPECT_THROW(plain.scenarioIndex("drop"), FatalError);
}

TEST(SweepGrid, WithoutScenarioAxisIndicesAndSeedsAreUnchanged)
{
    // The backward-compatibility contract: a grid that does not use
    // the scenario axis enumerates and seeds exactly as before the
    // axis existed.
    SweepGrid grid = smallGrid();
    grid.budgetFractions = {0.5, 0.7};
    grid.replicates = 2;
    const auto reps = static_cast<std::size_t>(grid.replicates);
    for (std::size_t i = 0; i < grid.runCount(); ++i) {
        const SweepPoint p = grid.point(i);
        EXPECT_EQ((((p.configIdx * grid.workloads.size() +
                     p.workloadIdx) *
                        grid.policies.size() +
                    p.policyIdx) *
                       grid.budgetFractions.size() +
                   p.budgetIdx) *
                          reps +
                      static_cast<std::size_t>(p.replicate),
                  i);
        EXPECT_EQ(p.seed, splitmix64(grid.baseSeed, i));
        EXPECT_EQ(p.scenarioIdx, 0u);
        EXPECT_EQ(p.scenario, "constant");
    }

    grid.pairSeedsAcrossPolicies = true;
    for (std::size_t i = 0; i < grid.runCount(); ++i) {
        const SweepPoint p = grid.point(i);
        const std::size_t trace =
            (p.configIdx * grid.workloads.size() + p.workloadIdx) *
                reps +
            static_cast<std::size_t>(p.replicate);
        EXPECT_EQ(p.seed, splitmix64(grid.baseSeed, trace));
    }
}

TEST(SweepGrid, PairedSeedsDistinguishScenarios)
{
    SweepGrid grid = smallGrid();
    grid.scenarios = twoScenarios();
    grid.pairSeedsAcrossPolicies = true;
    // Same trace coordinates, different policy: same seed.
    EXPECT_EQ(grid.point(grid.runIndexOf(0, 0, 0, 0, 0, 0)).seed,
              grid.point(grid.runIndexOf(0, 0, 0, 1, 0, 0)).seed);
    // Different scenario: different seed.
    EXPECT_NE(grid.point(grid.runIndexOf(0, 0, 0, 0, 0, 0)).seed,
              grid.point(grid.runIndexOf(0, 0, 1, 0, 0, 0)).seed);
}

TEST(SweepRunner, ScenarioGridsAreDeterministicAcrossWorkerCounts)
{
    SweepGrid grid = smallGrid();
    grid.targetInstructions = 1e12; // horizon runs, never complete
    grid.maxEpochs = 6;
    grid.scenarios = twoScenarios();
    const std::string csv1 = SweepRunner(grid, 1).run().csvString();
    const std::string csv4 = SweepRunner(grid, 4).run().csvString();
    EXPECT_FALSE(csv1.empty());
    EXPECT_EQ(csv1, csv4);
    // Scenario labels reach the CSV.
    EXPECT_NE(csv1.find(",drop,"), std::string::npos);
    EXPECT_NE(csv1.find(",wave,"), std::string::npos);
}

TEST(SweepResult, ScenarioColumnAppearsOnlyWithTheAxis)
{
    SweepGrid grid = smallGrid();
    grid.workloads = {"ILP1"};
    grid.policies = {"FastCap"};
    const std::string plain = SweepRunner(grid, 1).run().csvString();
    EXPECT_EQ(plain.find("scenario"), std::string::npos)
        << "constant grids must keep the historical CSV header";

    grid.scenarios = twoScenarios();
    grid.targetInstructions = 1e12;
    grid.maxEpochs = 4;
    const SweepResult sw = SweepRunner(grid, 2).run();
    const std::string csv = sw.csvString();
    EXPECT_NE(csv.find("run,config,workload,scenario,policy"),
              std::string::npos);
    const std::string json = jsonString(sw);
    EXPECT_NE(json.find("\"scenario\": \"drop\""),
              std::string::npos);
    // Scenario-axis coordinate access resolves to the right runs.
    EXPECT_EQ(sw.at(0, 0, 1, 0, 0, 0).point.scenario, "wave");
}

TEST(SweepGrid, ValidationCatchesBadGrids)
{
    SweepGrid grid = smallGrid();
    grid.workloads.clear();
    EXPECT_THROW(grid.validate(), FatalError);

    grid = smallGrid();
    grid.policies = {"NoSuchPolicy"};
    EXPECT_THROW(grid.validate(), FatalError);

    grid = smallGrid();
    grid.workloads = {"NoSuchWorkload"};
    EXPECT_THROW(grid.validate(), FatalError);

    grid = smallGrid();
    grid.budgetFractions = {1.7};
    EXPECT_THROW(grid.validate(), FatalError);

    grid = smallGrid();
    grid.replicates = 0;
    EXPECT_THROW(grid.validate(), FatalError);

    // Duplicates would run the same nominal coordinates twice and
    // make name lookups ambiguous.
    grid = smallGrid();
    grid.workloads = {"ILP1", "MEM1", "ILP1"};
    EXPECT_THROW(grid.validate(), FatalError);

    grid = smallGrid();
    grid.policies = {"FastCap", "FastCap"};
    EXPECT_THROW(grid.validate(), FatalError);

    grid = smallGrid();
    grid.configs.push_back(grid.configs.front());
    EXPECT_THROW(grid.validate(), FatalError);

    // Scenario names must be present and unique.
    grid = smallGrid();
    grid.scenarios = twoScenarios();
    grid.scenarios[1].name = "drop";
    EXPECT_THROW(grid.validate(), FatalError);

    grid = smallGrid();
    grid.scenarios = twoScenarios();
    grid.scenarios[0].name.clear();
    EXPECT_THROW(grid.validate(), FatalError);

    // Workload events beyond any config's core count fail before the
    // fan-out, not on a worker thread.
    grid = smallGrid(); // 4-core config
    grid.scenarios = twoScenarios();
    grid.scenarios[0].workload.add(0.01, 9, "idle");
    EXPECT_THROW(grid.validate(), FatalError);

    EXPECT_NO_THROW(smallGrid().validate());

    grid = smallGrid();
    grid.scenarios = twoScenarios();
    EXPECT_NO_THROW(grid.validate());
}

TEST(SweepGrid, LookupByName)
{
    const SweepGrid grid = smallGrid();
    EXPECT_EQ(grid.workloadIndex("MEM1"), 1u);
    EXPECT_EQ(grid.policyIndex("Uncapped"), 1u);
    EXPECT_THROW(grid.workloadIndex("MIX1"), FatalError);
    EXPECT_THROW(grid.policyIndex("Eql-Pwr"), FatalError);
}

TEST(SweepRunner, CsvIsByteIdenticalAcrossWorkerCounts)
{
    // The tentpole determinism contract: same grid, same base seed,
    // byte-identical CSV with 1, 4 and 8 workers.
    const SweepGrid grid = smallGrid();
    const std::string csv1 = SweepRunner(grid, 1).run().csvString();
    const std::string csv4 = SweepRunner(grid, 4).run().csvString();
    const std::string csv8 = SweepRunner(grid, 8).run().csvString();
    EXPECT_FALSE(csv1.empty());
    EXPECT_EQ(csv1, csv4);
    EXPECT_EQ(csv1, csv8);

    // Paired-seed mode upholds the same contract.
    SweepGrid paired = smallGrid();
    paired.pairSeedsAcrossPolicies = true;
    EXPECT_EQ(SweepRunner(paired, 1).run().csvString(),
              SweepRunner(paired, 8).run().csvString());
}

TEST(SweepRunner, ResultsKeepRunIndexOrderAndCoordinates)
{
    const SweepGrid grid = smallGrid();
    const SweepResult sw = SweepRunner(grid, 4).run();
    ASSERT_EQ(sw.runs.size(), grid.runCount());
    for (std::size_t i = 0; i < sw.runs.size(); ++i) {
        const SweepRun &r = sw.runs[i];
        EXPECT_EQ(r.point.runIndex, i);
        EXPECT_EQ(r.result.workload, r.point.workload);
        EXPECT_EQ(r.result.policy, r.point.policy);
        EXPECT_DOUBLE_EQ(r.result.budgetFraction,
                         r.point.budgetFraction);
        EXPECT_TRUE(r.result.allCompleted()) << "run " << i;
    }
    // Coordinate access resolves to the same records.
    const SweepRun &rec = sw.at(0, grid.workloadIndex("MEM1"),
                                grid.policyIndex("FastCap"), 0);
    EXPECT_EQ(rec.point.workload, "MEM1");
    EXPECT_EQ(rec.point.policy, "FastCap");
}

TEST(SweepRunner, MatchesSerialSingleRuns)
{
    // A parallel sweep must reproduce exactly what running each grid
    // point alone produces.
    const SweepGrid grid = smallGrid();
    const SweepResult sw = SweepRunner(grid, 8).run();
    for (std::size_t i = 0; i < grid.runCount(); ++i) {
        const SweepRun solo = SweepRunner::runOne(grid, i);
        const SweepRun &par = sw.at(i);
        ASSERT_EQ(solo.result.epochs.size(),
                  par.result.epochs.size());
        EXPECT_DOUBLE_EQ(solo.result.averagePower(),
                         par.result.averagePower());
        for (std::size_t a = 0; a < solo.result.apps.size(); ++a)
            EXPECT_DOUBLE_EQ(solo.result.apps[a].completionTime,
                             par.result.apps[a].completionTime);
    }
}

std::string
jsonString(const SweepResult &sw)
{
    std::FILE *tmp = std::tmpfile();
    EXPECT_NE(tmp, nullptr);
    sw.writeJson(tmp);
    std::string out;
    out.resize(static_cast<std::size_t>(std::ftell(tmp)));
    std::rewind(tmp);
    EXPECT_EQ(std::fread(&out[0], 1, out.size(), tmp), out.size());
    std::fclose(tmp);
    return out;
}

TEST(SweepResult, JsonContainsEveryRun)
{
    SweepGrid grid = smallGrid();
    grid.workloads = {"ILP1"};
    const SweepResult sw = SweepRunner(grid, 2).run();
    const std::string json = jsonString(sw);

    EXPECT_NE(json.find("\"workload\": \"ILP1\""), std::string::npos);
    EXPECT_NE(json.find("\"policy\": \"Uncapped\""),
              std::string::npos);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), '\n');
}

TEST(SweepResult, JsonEscapesConfigNames)
{
    SweepGrid grid = smallGrid();
    grid.workloads = {"ILP1"};
    grid.policies = {"FastCap"};
    grid.configs[0].name = "8c \"turbo\"\\v1";
    const SweepResult sw = SweepRunner(grid, 1).run();
    const std::string json = jsonString(sw);
    EXPECT_NE(json.find("\"8c \\\"turbo\\\"\\\\v1\""),
              std::string::npos);
}

TEST(SweepResult, WallSecondsNeverReachesSerializedOutput)
{
    // Backs the wall-clock lint waivers in SweepRunner::run(): the
    // elapsed time measured via util wallSeconds() is operator
    // console output only. Two identical runs take different wall
    // time, so any leak into the CSV or JSON breaks byte-identity
    // here (and would break the 1-vs-N-thread cmp gate).
    SweepGrid grid = smallGrid();
    grid.workloads = {"ILP1"};
    const SweepResult first = SweepRunner(grid, 2).run();
    const SweepResult second = SweepRunner(grid, 2).run();
    EXPECT_GT(first.wallSeconds, 0.0);
    EXPECT_EQ(first.csvString(), second.csvString());
    EXPECT_EQ(jsonString(first), jsonString(second));
    EXPECT_EQ(first.csvString().find("wallSeconds"),
              std::string::npos);
    EXPECT_EQ(jsonString(first).find("wallSeconds"),
              std::string::npos);
}

} // namespace
} // namespace fastcap
