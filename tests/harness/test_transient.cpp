/**
 * @file
 * Transient-response layer: analyzeTransients() on hand-built epoch
 * logs (settling detection, overshoot energy, violation rate) and the
 * scenario hook in ExperimentRunner — budget schedules drive the
 * epoch loop, workload events swap applications mid-run, and the
 * default constant scenario is bit-identical to no scenario at all.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "policies/registry.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

/** Epoch record with the fields the transient analysis consumes. */
EpochRecord
epoch(int n, Watts budget, Watts power, Seconds duration = 0.005)
{
    EpochRecord e;
    e.epoch = n;
    e.startTime = n * duration;
    e.duration = duration;
    e.budget = budget;
    e.totalPower = power;
    return e;
}

TEST(AnalyzeTransients, QuietRunHasNoDropsAndNoViolations)
{
    ExperimentResult res;
    for (int i = 0; i < 5; ++i)
        res.epochs.push_back(epoch(i, 60.0, 58.0));
    const TransientSummary ts = analyzeTransients(res);
    EXPECT_TRUE(ts.drops.empty());
    EXPECT_EQ(ts.worstSettlingEpochs, 0);
    EXPECT_DOUBLE_EQ(ts.violationRate, 0.0);
    EXPECT_DOUBLE_EQ(ts.overshootEnergy, 0.0);
}

TEST(AnalyzeTransients, MeasuresSettlingAndOvershootAfterADrop)
{
    ExperimentResult res;
    res.epochs.push_back(epoch(0, 60.0, 59.0));
    res.epochs.push_back(epoch(1, 40.0, 55.0)); // drop; +15 W over
    res.epochs.push_back(epoch(2, 40.0, 45.0)); // +5 W over
    res.epochs.push_back(epoch(3, 40.0, 39.5)); // settled
    res.epochs.push_back(epoch(4, 40.0, 39.0));
    const TransientSummary ts = analyzeTransients(res);
    ASSERT_EQ(ts.drops.size(), 1u);
    const BudgetTransient &tr = ts.drops[0];
    EXPECT_EQ(tr.epoch, 1);
    EXPECT_DOUBLE_EQ(tr.before, 60.0);
    EXPECT_DOUBLE_EQ(tr.after, 40.0);
    EXPECT_EQ(tr.settlingEpochs, 2);
    EXPECT_NEAR(tr.overshootEnergy, (15.0 + 5.0) * 0.005, 1e-12);
    EXPECT_EQ(ts.worstSettlingEpochs, 2);
    EXPECT_NEAR(ts.violationRate, 2.0 / 5.0, 1e-12);
    EXPECT_NEAR(ts.overshootEnergy, 20.0 * 0.005, 1e-12);
}

TEST(AnalyzeTransients, ImmediateComplianceSettlesInZeroEpochs)
{
    ExperimentResult res;
    res.epochs.push_back(epoch(0, 60.0, 59.0));
    res.epochs.push_back(epoch(1, 40.0, 39.0));
    res.epochs.push_back(epoch(2, 40.0, 39.5));
    const TransientSummary ts = analyzeTransients(res);
    ASSERT_EQ(ts.drops.size(), 1u);
    EXPECT_EQ(ts.drops[0].settlingEpochs, 0);
    EXPECT_DOUBLE_EQ(ts.drops[0].overshootEnergy, 0.0);
}

TEST(AnalyzeTransients, NeverSettlingReportsMinusOne)
{
    ExperimentResult res;
    res.epochs.push_back(epoch(0, 60.0, 59.0));
    for (int i = 1; i < 5; ++i)
        res.epochs.push_back(epoch(i, 40.0, 50.0));
    const TransientSummary ts = analyzeTransients(res);
    ASSERT_EQ(ts.drops.size(), 1u);
    EXPECT_EQ(ts.drops[0].settlingEpochs, -1);
    EXPECT_EQ(ts.worstSettlingEpochs, -1);
    // Overshoot accrues across the whole unsettled window.
    EXPECT_NEAR(ts.drops[0].overshootEnergy, 4 * 10.0 * 0.005,
                1e-12);
}

TEST(AnalyzeTransients, ConsecutiveDecreasesMergeIntoOneDrop)
{
    // A downward ramp sampled at epochs is one transient, not one
    // per epoch; settling counts from the bottom of the descent.
    ExperimentResult res;
    res.epochs.push_back(epoch(0, 60.0, 59.0));
    res.epochs.push_back(epoch(1, 55.0, 58.0)); // descending...
    res.epochs.push_back(epoch(2, 50.0, 54.0));
    res.epochs.push_back(epoch(3, 45.0, 50.0)); // bottom, +5 over
    res.epochs.push_back(epoch(4, 45.0, 44.0)); // settled
    res.epochs.push_back(epoch(5, 45.0, 44.5));
    const TransientSummary ts = analyzeTransients(res);
    ASSERT_EQ(ts.drops.size(), 1u);
    const BudgetTransient &tr = ts.drops[0];
    EXPECT_EQ(tr.epoch, 1);
    EXPECT_DOUBLE_EQ(tr.before, 60.0);
    EXPECT_DOUBLE_EQ(tr.after, 45.0);
    EXPECT_EQ(tr.settlingEpochs, 1); // bottom at 3, settled at 4
    // Overshoot from the descent's start: 3+4+5 W-epochs.
    EXPECT_NEAR(tr.overshootEnergy, (3.0 + 4.0 + 5.0) * 0.005,
                1e-12);
}

TEST(AnalyzeTransients, SineHalvesAreOneDropEach)
{
    // Two periods of a budget oscillation: each descending half is
    // one transient.
    ExperimentResult res;
    const double b[] = {60, 50, 40, 50, 60, 50, 40, 50, 60};
    for (int i = 0; i < 9; ++i)
        res.epochs.push_back(epoch(i, b[i], b[i] - 1.0));
    const TransientSummary ts = analyzeTransients(res);
    ASSERT_EQ(ts.drops.size(), 2u);
    EXPECT_EQ(ts.drops[0].epoch, 1);
    EXPECT_DOUBLE_EQ(ts.drops[0].after, 40.0);
    EXPECT_EQ(ts.drops[1].epoch, 5);
    EXPECT_EQ(ts.worstSettlingEpochs, 0);
}

TEST(AnalyzeTransients, BudgetRisesAreNotDrops)
{
    ExperimentResult res;
    res.epochs.push_back(epoch(0, 40.0, 39.0));
    res.epochs.push_back(epoch(1, 60.0, 50.0));
    const TransientSummary ts = analyzeTransients(res);
    EXPECT_TRUE(ts.drops.empty());
}

TEST(AnalyzeTransients, ObservationWindowEndsAtTheNextChange)
{
    ExperimentResult res;
    res.epochs.push_back(epoch(0, 60.0, 59.0));
    res.epochs.push_back(epoch(1, 40.0, 50.0)); // never settles...
    res.epochs.push_back(epoch(2, 40.0, 50.0));
    res.epochs.push_back(epoch(3, 70.0, 50.0)); // ...window closed
    res.epochs.push_back(epoch(4, 70.0, 50.0));
    const TransientSummary ts = analyzeTransients(res);
    ASSERT_EQ(ts.drops.size(), 1u);
    EXPECT_EQ(ts.drops[0].settlingEpochs, -1);
    EXPECT_NEAR(ts.drops[0].overshootEnergy, 2 * 10.0 * 0.005,
                1e-12);
}

TEST(AnalyzeTransients, ToleranceWidensTheSettledBand)
{
    ExperimentResult res;
    res.epochs.push_back(epoch(0, 60.0, 59.0));
    res.epochs.push_back(epoch(1, 40.0, 40.5));
    const TransientSummary tight = analyzeTransients(res, 0.0);
    ASSERT_EQ(tight.drops.size(), 1u);
    EXPECT_EQ(tight.drops[0].settlingEpochs, -1);
    const TransientSummary loose = analyzeTransients(res, 0.05);
    EXPECT_EQ(loose.drops[0].settlingEpochs, 0);
    EXPECT_THROW(analyzeTransients(res, -0.1), FatalError);
}

// ---------------------------------------------------------------
// Scenario hook in the experiment loop.
// ---------------------------------------------------------------

ExperimentConfig
horizonConfig(int epochs)
{
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.9;
    cfg.targetInstructions = 1e12; // fixed horizon, never completes
    cfg.maxEpochs = epochs;
    return cfg;
}

TEST(ExperimentScenario, BudgetScheduleDrivesTheEpochLoop)
{
    Logger::global().level(LogLevel::Silent);
    ExperimentConfig cfg = horizonConfig(12);
    cfg.scenario.budget.addStep(0.0, 0.9);
    cfg.scenario.budget.addStep(0.02, 0.5); // epoch 4 of 5 ms epochs
    const ExperimentResult res = runWorkload(
        "MIX1", "FastCap", cfg, SimConfig::defaultConfig(4));
    Logger::global().level(LogLevel::Warn);

    ASSERT_EQ(res.epochs.size(), 12u);
    for (const EpochRecord &e : res.epochs) {
        const double frac = e.epoch < 4 ? 0.9 : 0.5;
        EXPECT_NEAR(e.budget, frac * res.peakPower, 1e-9)
            << "epoch " << e.epoch;
    }
    // The run-level report keeps the configured base fraction.
    EXPECT_DOUBLE_EQ(res.budgetFraction, 0.9);
    // And the transient analysis sees exactly one drop at epoch 4.
    const TransientSummary ts = analyzeTransients(res);
    ASSERT_EQ(ts.drops.size(), 1u);
    EXPECT_EQ(ts.drops[0].epoch, 4);
}

TEST(ExperimentScenario, SetterHoldsUntilTheFirstSegment)
{
    // Before a schedule's first segment the mid-run budgetFraction()
    // setter stays in effect; from the segment on, the schedule owns
    // the budget.
    Logger::global().level(LogLevel::Silent);
    ExperimentConfig cfg = horizonConfig(8);
    cfg.scenario.budget.addStep(0.02, 0.65); // epoch 4 onward

    auto policy = makePolicy("FastCap");
    SimConfig sim = SimConfig::defaultConfig(4);
    ExperimentRunner runner(sim, workloads::mix("MIX1", 4), *policy,
                            cfg);
    runner.budgetFraction(0.7);
    std::vector<EpochRecord> recs;
    for (int i = 0; i < 8; ++i)
        recs.push_back(runner.step());
    Logger::global().level(LogLevel::Warn);

    for (const EpochRecord &e : recs) {
        const double frac = e.epoch < 4 ? 0.7 : 0.65;
        EXPECT_NEAR(e.budget, frac * runner.peakPower(), 1e-9)
            << "epoch " << e.epoch;
    }
}

TEST(ExperimentScenario, FastCapReconvergesAfterABudgetDrop)
{
    Logger::global().level(LogLevel::Silent);
    ExperimentConfig cfg = horizonConfig(16);
    // 0.65 stays feasible: MIX1 on 4 cores floors at ~0.58 of peak.
    cfg.scenario.budget.addStep(0.0, 0.9);
    cfg.scenario.budget.addStep(0.025, 0.65);
    const ExperimentResult res = runWorkload(
        "MIX1", "FastCap", cfg, SimConfig::defaultConfig(4));
    Logger::global().level(LogLevel::Warn);

    const TransientSummary ts = analyzeTransients(res);
    ASSERT_EQ(ts.drops.size(), 1u);
    // Re-convergence: settled within a handful of epochs, not -1.
    EXPECT_GE(ts.drops[0].settlingEpochs, 0);
    EXPECT_LE(ts.drops[0].settlingEpochs, 4);
}

TEST(ExperimentScenario, WorkloadEventsSwapAppsMidRun)
{
    Logger::global().level(LogLevel::Silent);
    ExperimentConfig cfg = horizonConfig(10);
    cfg.scenario.workload.add(0.02, 0, "idle");

    auto policy = makePolicy("Uncapped");
    SimConfig sim = SimConfig::defaultConfig(4);
    ExperimentRunner runner(sim, workloads::mix("MIX1", 4), *policy,
                            cfg);
    std::vector<EpochRecord> recs;
    for (int i = 0; i < 10; ++i)
        recs.push_back(runner.step());
    Logger::global().level(LogLevel::Warn);

    // The system now reports the idle profile on core 0; core 1 is
    // untouched.
    EXPECT_EQ(runner.system().appOf(0).name(), "idle");
    EXPECT_EQ(runner.system().appOf(1).name(),
              workloads::mixApps("MIX1")[1]);
    // The swap is visible in the simulation: the idle loop never
    // blocks on memory, so core 0's instruction rate jumps from
    // applu's stall-bound pace to (nearly) one per cycle...
    EXPECT_GT(recs.back().ips[0], 2.0 * recs.front().ips[0]);
    // ...while the core-power total drops (activity 0.58 -> 0.05).
    double pre = 0.0;
    double post = 0.0;
    for (int i = 1; i <= 3; ++i)
        pre += recs[static_cast<std::size_t>(i)].corePower;
    for (int i = 7; i <= 9; ++i)
        post += recs[static_cast<std::size_t>(i)].corePower;
    EXPECT_LT(post, pre);
}

TEST(ExperimentScenario, EventCoreOutOfRangeFailsFast)
{
    ExperimentConfig cfg = horizonConfig(4);
    cfg.scenario.workload.add(0.01, 7, "idle"); // only 4 cores
    auto policy = makePolicy("FastCap");
    SimConfig sim = SimConfig::defaultConfig(4);
    EXPECT_THROW(ExperimentRunner(sim, workloads::mix("MIX1", 4),
                                  *policy, cfg),
                 FatalError);
}

TEST(ExperimentScenario, ConstantScenarioIsBitIdenticalToNone)
{
    // The determinism contract of the whole PR: a schedule that only
    // restates the static budget must not perturb a single bit.
    ExperimentConfig plain;
    plain.budgetFraction = 0.6;
    plain.targetInstructions = 1e6;
    const SimConfig sim = SimConfig::defaultConfig(4);
    const ExperimentResult a =
        runWorkload("ILP1", "FastCap", plain, sim);

    ExperimentConfig scheduled = plain;
    scheduled.scenario.budget.addStep(0.0, 0.6);
    const ExperimentResult b =
        runWorkload("ILP1", "FastCap", scheduled, sim);

    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].totalPower, b.epochs[i].totalPower);
        EXPECT_EQ(a.epochs[i].coreFreqIdx, b.epochs[i].coreFreqIdx);
        EXPECT_EQ(a.epochs[i].memFreqIdx, b.epochs[i].memFreqIdx);
    }
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i)
        EXPECT_EQ(a.apps[i].completionTime, b.apps[i].completionTime);
    EXPECT_EQ(a.budgetFraction, b.budgetFraction);
}

} // namespace
} // namespace fastcap
