/**
 * @file
 * End-to-end power-capping accuracy: FastCap must hold the measured
 * full-system power at or below the budget (small transient
 * overshoots allowed, as the paper discusses) across workload classes
 * and budget fractions.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"

namespace fastcap {
namespace {

using CapCase = std::tuple<std::string, double>;

class CappingSweep : public ::testing::TestWithParam<CapCase>
{};

TEST_P(CappingSweep, AveragePowerAtOrUnderBudget)
{
    const auto [workload, budget] = GetParam();
    ExperimentConfig cfg;
    cfg.budgetFraction = budget;
    cfg.targetInstructions = 10e6;
    cfg.maxEpochs = 300;

    const ExperimentResult res = runWorkload(
        workload, "FastCap", cfg, SimConfig::defaultConfig(16));
    ASSERT_TRUE(res.allCompleted());

    const PowerSummary s = summarizePower(res);
    // Run-average power must respect the cap (2% tolerance for
    // snapping/extrapolation noise).
    EXPECT_LE(s.avgFraction, budget + 0.02)
        << workload << " @ " << budget;
    // Transient epochs may exceed the budget, but not wildly.
    EXPECT_LE(s.worstOvershoot, 0.15) << workload << " @ " << budget;
}

std::string
capCaseName(const ::testing::TestParamInfo<CapCase> &info)
{
    const std::string wl = std::get<0>(info.param);
    const int pct = static_cast<int>(std::get<1>(info.param) * 100);
    return wl + "_B" + std::to_string(pct);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndBudgets, CappingSweep,
    ::testing::Values(CapCase{"ILP1", 0.5}, CapCase{"ILP3", 0.7},
                      CapCase{"MID1", 0.5}, CapCase{"MID2", 0.6},
                      CapCase{"MEM1", 0.6}, CapCase{"MEM3", 0.8},
                      CapCase{"MIX3", 0.6}, CapCase{"MIX4", 0.7}),
    capCaseName);

TEST(Capping, PowerNearBudgetWhenWorkloadCanConsumeIt)
{
    // Theorem 1 end-to-end: for compute-heavy mixes the full budget
    // is consumed (within snapping slack).
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.6;
    cfg.targetInstructions = 10e6;
    const ExperimentResult res = runWorkload(
        "ILP1", "FastCap", cfg, SimConfig::defaultConfig(16));
    EXPECT_GT(res.averagePowerFraction(), 0.50);
    EXPECT_LE(res.averagePowerFraction(), 0.62);
}

TEST(Capping, MemWorkloadsUnderuseHighBudgets)
{
    // Paper Fig. 5: at B = 80% the MEM workloads cannot consume the
    // budget even at maximum frequencies.
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.8;
    cfg.targetInstructions = 10e6;
    const ExperimentResult res = runWorkload(
        "MEM3", "FastCap", cfg, SimConfig::defaultConfig(16));
    EXPECT_LT(res.averagePowerFraction(), 0.79);
}

TEST(Capping, TrackingErrorSmallUnderTightBudget)
{
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.6;
    cfg.targetInstructions = 10e6;
    const ExperimentResult res = runWorkload(
        "MIX2", "FastCap", cfg, SimConfig::defaultConfig(16));
    // |power - budget| / budget averaged over epochs: within ~10%.
    EXPECT_LT(budgetTrackingError(res), 0.10);
}

TEST(Capping, ViolationsCorrectedQuickly)
{
    // Paper Fig. 5: "FastCap corrects budget violations very quickly
    // (within 10 ms)" — i.e., within ~2 epochs.
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.6;
    cfg.targetInstructions = 20e6;
    const ExperimentResult res = runWorkload(
        "MIX4", "FastCap", cfg, SimConfig::defaultConfig(16));

    int consecutive = 0;
    int worst_streak = 0;
    for (const EpochRecord &e : res.epochs) {
        if (e.totalPower > e.budget * 1.02) {
            ++consecutive;
            worst_streak = std::max(worst_streak, consecutive);
        } else {
            consecutive = 0;
        }
    }
    EXPECT_LE(worst_streak, 2)
        << "violations must not persist beyond ~2 epochs (10 ms)";
}

TEST(Capping, AllPoliciesControlPower)
{
    // "All policies are capable of controlling the power consumption
    // around the budget" (Section IV-B). Memory-DVFS policies are
    // checked at 4 cores (where MaxBIPS is tractable); CPU-only at
    // 16 cores — on the 4-core system the memory subsystem alone
    // exceeds a 60% budget, which is exactly the paper's case for
    // coordinated memory DVFS.
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.6;
    cfg.targetInstructions = 10e6;
    const SimConfig scfg4 = SimConfig::defaultConfig(4);
    for (const char *policy :
         {"FastCap", "Eql-Pwr", "Eql-Freq", "MaxBIPS"}) {
        const ExperimentResult res =
            runWorkload("MIX1", policy, cfg, scfg4);
        EXPECT_LE(res.averagePowerFraction(), 0.66) << policy;
    }

    const SimConfig scfg16 = SimConfig::defaultConfig(16);
    const ExperimentResult res =
        runWorkload("MIX1", "CPU-only", cfg, scfg16);
    EXPECT_LE(res.averagePowerFraction(), 0.66) << "CPU-only";
}

TEST(Capping, CpuOnlyCannotCapSmallSystems)
{
    // The motivating failure mode: without memory DVFS, the memory
    // subsystem's max-frequency power plus background exceeds a 60%
    // budget on the 4-core system, so CPU-only is pinned above it.
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.6;
    cfg.targetInstructions = 10e6;
    const ExperimentResult res = runWorkload(
        "MIX1", "CPU-only", cfg, SimConfig::defaultConfig(4));
    EXPECT_GT(res.averagePowerFraction(), 0.66);

    const ExperimentResult fc = runWorkload(
        "MIX1", "FastCap", cfg, SimConfig::defaultConfig(4));
    EXPECT_LE(fc.averagePowerFraction(), 0.62)
        << "FastCap solves the same case via memory DVFS";
}

TEST(Capping, FreqParOscillatesMoreThanFastCap)
{
    // The linear model's over/under-correction shows up as epoch-to-
    // epoch power swing (paper: 53%..65% oscillation for MIX3).
    ExperimentConfig cfg;
    cfg.budgetFraction = 0.6;
    cfg.targetInstructions = 20e6;
    const SimConfig scfg = SimConfig::defaultConfig(16);

    const auto swing = [](const ExperimentResult &res) {
        double acc = 0.0;
        int n = 0;
        for (std::size_t i = 1; i < res.epochs.size(); ++i) {
            acc += std::abs(res.epochs[i].totalPower -
                            res.epochs[i - 1].totalPower);
            ++n;
        }
        return n ? acc / n : 0.0;
    };

    const ExperimentResult fc =
        runWorkload("MIX3", "FastCap", cfg, scfg);
    const ExperimentResult fp =
        runWorkload("MIX3", "Freq-Par", cfg, scfg);
    EXPECT_GT(swing(fp), swing(fc) * 0.8)
        << "feedback control should not be dramatically smoother";
}

} // namespace
} // namespace fastcap
