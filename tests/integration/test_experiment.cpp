/**
 * @file
 * Integration tests for the experiment runner: epoch mechanics,
 * completion semantics, determinism, peak-power measurement and
 * mid-run budget changes.
 */

#include <gtest/gtest.h>

#include "core/fastcap_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/peak_power.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

ExperimentConfig
quickConfig(double budget = 0.6, double instr = 10e6)
{
    ExperimentConfig cfg;
    cfg.budgetFraction = budget;
    cfg.targetInstructions = instr;
    cfg.maxEpochs = 300;
    return cfg;
}

TEST(Experiment, RunsToCompletionAndRecordsEpochs)
{
    const ExperimentResult res = runWorkload(
        "MID1", "FastCap", quickConfig(), SimConfig::defaultConfig(16));
    EXPECT_TRUE(res.allCompleted());
    EXPECT_FALSE(res.epochs.empty());
    EXPECT_EQ(res.apps.size(), 16u);
    EXPECT_EQ(res.policy, "FastCap");
    EXPECT_EQ(res.workload, "MID1");
    EXPECT_GT(res.budget, 0.0);
    EXPECT_GT(res.peakPower, res.budget);

    for (const AppResult &a : res.apps) {
        EXPECT_TRUE(a.completed) << a.app;
        EXPECT_GT(a.completionTime, 0.0);
        EXPECT_GT(a.tpi, 0.0);
    }
    // Epoch records have sane shapes.
    for (const EpochRecord &e : res.epochs) {
        EXPECT_EQ(e.coreFreqIdx.size(), 16u);
        EXPECT_GT(e.totalPower, 0.0);
        EXPECT_NEAR(e.totalPower,
                    e.corePower + e.memPower + 10.0, 1e-6);
    }
}

TEST(Experiment, DeterministicAcrossRuns)
{
    const SimConfig scfg = SimConfig::defaultConfig(8);
    const ExperimentResult a =
        runWorkload("MIX1", "FastCap", quickConfig(), scfg);
    const ExperimentResult b =
        runWorkload("MIX1", "FastCap", quickConfig(), scfg);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.epochs[i].totalPower,
                         b.epochs[i].totalPower);
        EXPECT_EQ(a.epochs[i].memFreqIdx, b.epochs[i].memFreqIdx);
    }
    for (std::size_t i = 0; i < a.apps.size(); ++i)
        EXPECT_DOUBLE_EQ(a.apps[i].completionTime,
                         b.apps[i].completionTime);
}

TEST(Experiment, EpochDurationsCoverRunAndTruncateAtCompletion)
{
    const SimConfig scfg = SimConfig::defaultConfig(8);
    const ExperimentResult res =
        runWorkload("MIX1", "FastCap", quickConfig(), scfg);
    ASSERT_TRUE(res.allCompleted());
    ASSERT_FALSE(res.epochs.empty());

    // Every epoch but the last covers the full epoch length; the
    // last is truncated at the final completion.
    for (std::size_t i = 0; i + 1 < res.epochs.size(); ++i)
        EXPECT_DOUBLE_EQ(res.epochs[i].duration, scfg.epochLength)
            << "epoch " << i;
    const EpochRecord &last = res.epochs.back();
    EXPECT_GT(last.duration, 0.0);
    EXPECT_LE(last.duration, scfg.epochLength);

    Seconds finish = 0.0;
    for (const AppResult &a : res.apps)
        finish = std::max(finish, a.completionTime);
    EXPECT_NEAR(last.startTime + last.duration, finish, 1e-12);

    // The energy-weighted run average equals sum(P dt) / sum(dt).
    double energy = 0.0;
    double time = 0.0;
    for (const EpochRecord &e : res.epochs) {
        energy += e.totalPower * e.duration;
        time += e.duration;
    }
    EXPECT_NEAR(res.averagePower(), energy / time, 1e-9);
}

TEST(Experiment, UncappedFinishesFasterThanCapped)
{
    const SimConfig scfg = SimConfig::defaultConfig(16);
    const ExperimentResult capped =
        runWorkload("ILP2", "FastCap", quickConfig(0.5), scfg);
    const ExperimentResult base =
        runWorkload("ILP2", "Uncapped", quickConfig(0.5), scfg);
    ASSERT_TRUE(capped.allCompleted());
    ASSERT_TRUE(base.allCompleted());
    for (std::size_t i = 0; i < capped.apps.size(); ++i)
        EXPECT_GE(capped.apps[i].tpi, base.apps[i].tpi * 0.98);
}

TEST(Experiment, PeakPowerMatchesPaperScale)
{
    // Paper: ~120 W at 16 cores, ~60 W at 4, ~210 at 32, ~375 at 64.
    // Our measured peaks must land in the same bands (within ~25%).
    const Watts p16 = measuredPeakPower(SimConfig::defaultConfig(16));
    EXPECT_GT(p16, 85.0);
    EXPECT_LT(p16, 150.0);

    const Watts p4 = measuredPeakPower(SimConfig::defaultConfig(4));
    EXPECT_GT(p4, 35.0);
    EXPECT_LT(p4, 80.0);

    const Watts p64 = measuredPeakPower(SimConfig::defaultConfig(64));
    EXPECT_GT(p64, 280.0);
    EXPECT_LT(p64, 470.0);

    // Monotone in core count.
    const Watts p32 = measuredPeakPower(SimConfig::defaultConfig(32));
    EXPECT_GT(p32, p16);
    EXPECT_GT(p64, p32);
}

TEST(Experiment, PeakPowerMemoized)
{
    const SimConfig cfg = SimConfig::defaultConfig(16);
    const Watts a = measuredPeakPower(cfg);
    const Watts b = measuredPeakPower(cfg);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Experiment, BudgetChangeMidRunShiftsPower)
{
    SimConfig scfg = SimConfig::defaultConfig(16);
    auto policy = FastCapPolicy();
    ExperimentConfig ecfg = quickConfig(0.8, 100e6);
    ExperimentRunner runner(scfg, workloads::mix("ILP2", 16), policy,
                            ecfg);

    // Warm epochs at 80%, then drop to 45%.
    std::vector<double> high_powers;
    for (int e = 0; e < 6; ++e)
        high_powers.push_back(runner.step().totalPower);
    runner.budgetFraction(0.45);
    for (int e = 0; e < 2; ++e)
        runner.step(); // settle
    std::vector<double> low_powers;
    for (int e = 0; e < 4; ++e)
        low_powers.push_back(runner.step().totalPower);

    double high_avg = 0.0;
    for (double p : high_powers)
        high_avg += p;
    high_avg /= high_powers.size();
    double low_avg = 0.0;
    for (double p : low_powers)
        low_avg += p;
    low_avg /= low_powers.size();

    EXPECT_LT(low_avg, high_avg * 0.85)
        << "power must track the reduced budget";
    EXPECT_LT(low_avg, 0.52 * runner.peakPower());
}

TEST(Experiment, InvalidConfigsAreFatal)
{
    SimConfig scfg = SimConfig::defaultConfig(4);
    auto policy = FastCapPolicy();
    ExperimentConfig bad = quickConfig();
    bad.budgetFraction = 1.5;
    EXPECT_THROW(ExperimentRunner(scfg, workloads::mix("ILP1", 4),
                                  policy, bad),
                 FatalError);
    bad = quickConfig();
    bad.targetInstructions = 0.0;
    EXPECT_THROW(ExperimentRunner(scfg, workloads::mix("ILP1", 4),
                                  policy, bad),
                 FatalError);
}

TEST(Experiment, MaxEpochsBoundsRun)
{
    ExperimentConfig cfg = quickConfig(0.6, 1e12); // unreachable
    cfg.maxEpochs = 5;
    const ExperimentResult res = runWorkload(
        "ILP1", "FastCap", cfg, SimConfig::defaultConfig(4));
    EXPECT_FALSE(res.allCompleted());
    EXPECT_EQ(res.epochs.size(), 5u);
}

TEST(Experiment, LastInputsExposeCounters)
{
    SimConfig scfg = SimConfig::defaultConfig(4);
    auto policy = FastCapPolicy();
    ExperimentRunner runner(scfg, workloads::mix("MEM2", 4), policy,
                            quickConfig());
    runner.step();
    const PolicyInputs &in = runner.lastInputs();
    ASSERT_EQ(in.cores.size(), 4u);
    for (const CoreModel &c : in.cores) {
        EXPECT_GT(c.zbar, 0.0);
        EXPECT_GT(c.ipa, 0.0);
        EXPECT_GT(c.pi, 0.0);
        EXPECT_GE(c.alpha, 0.3);
        EXPECT_LE(c.alpha, 4.0);
    }
    ASSERT_EQ(in.memory.controllers.size(), 1u);
    EXPECT_GE(in.memory.controllers[0].q, 1.0);
    EXPECT_GT(in.memory.controllers[0].sm, 0.0);
    EXPECT_GT(in.budget, 0.0);
}

} // namespace
} // namespace fastcap
