/**
 * @file
 * End-to-end fairness: FastCap's worst application performance must
 * sit close to the average (no outliers), and must be fairer than the
 * throughput/efficiency-driven baselines on heterogeneous mixes —
 * Figures 6, 9 and 11 of the paper.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"

namespace fastcap {
namespace {

ExperimentConfig
cfgWith(double budget, double instr = 10e6)
{
    ExperimentConfig cfg;
    cfg.budgetFraction = budget;
    cfg.targetInstructions = instr;
    cfg.maxEpochs = 400;
    return cfg;
}

PerfComparison
compare(const std::string &wl, const std::string &policy,
        double budget, const SimConfig &scfg)
{
    const ExperimentResult capped =
        runWorkload(wl, policy, cfgWith(budget), scfg);
    const ExperimentResult base =
        runWorkload(wl, "Uncapped", cfgWith(budget), scfg);
    return comparePerformance(capped, base);
}

TEST(Fairness, FastCapWorstCloseToAverage)
{
    // The paper's headline fairness result (Fig. 6): worst ~ average.
    const SimConfig scfg = SimConfig::defaultConfig(16);
    for (const char *wl : {"ILP1", "MID2", "MEM2", "MIX4"}) {
        const PerfComparison c = compare(wl, "FastCap", 0.6, scfg);
        EXPECT_LT(c.unfairness, 1.22)
            << wl << ": worst " << c.worst << " avg " << c.average;
    }
}

TEST(Fairness, CappedRunsAreSlowedButBounded)
{
    const SimConfig scfg = SimConfig::defaultConfig(16);
    const PerfComparison c = compare("MID1", "FastCap", 0.6, scfg);
    // Normalized CPI >= ~1 (slower than uncapped), but not absurd.
    EXPECT_GT(c.average, 0.98);
    EXPECT_LT(c.worst, 3.0);
}

TEST(Fairness, MemDegradesLessThanIlpUnderSameBudget)
{
    // Paper Fig. 6: MEM workloads lose less performance than ILP at
    // the same budget because they draw less power to begin with.
    const SimConfig scfg = SimConfig::defaultConfig(16);
    const PerfComparison ilp = compare("ILP1", "FastCap", 0.6, scfg);
    const PerfComparison mem = compare("MEM1", "FastCap", 0.6, scfg);
    EXPECT_LT(mem.average, ilp.average);
}

TEST(Fairness, HigherBudgetsDegradeLess)
{
    const SimConfig scfg = SimConfig::defaultConfig(16);
    const PerfComparison b50 = compare("MID4", "FastCap", 0.5, scfg);
    const PerfComparison b70 = compare("MID4", "FastCap", 0.7, scfg);
    EXPECT_LE(b70.average, b50.average * 1.02);
    EXPECT_LE(b70.worst, b50.worst * 1.05);
}

TEST(Fairness, FastCapFairerThanMaxBipsOnMix)
{
    // Fig. 11 (4 cores): MaxBIPS may win on average but loses badly
    // on worst-application performance.
    const SimConfig scfg = SimConfig::defaultConfig(4);
    const PerfComparison fc = compare("MIX1", "FastCap", 0.6, scfg);
    const PerfComparison mb = compare("MIX1", "MaxBIPS", 0.6, scfg);
    EXPECT_LE(fc.unfairness, mb.unfairness * 1.05)
        << "FastCap worst/avg " << fc.worst << "/" << fc.average
        << " vs MaxBIPS " << mb.worst << "/" << mb.average;
}

TEST(Fairness, FastCapNoWorseThanCpuOnlyOnAverage)
{
    // Fig. 9: FastCap performs at least as well as CPU-only; memory
    // DVFS only adds freedom.
    const SimConfig scfg = SimConfig::defaultConfig(16);
    for (const char *wl : {"ILP2", "MIX2"}) {
        const PerfComparison fc = compare(wl, "FastCap", 0.6, scfg);
        const PerfComparison co = compare(wl, "CPU-only", 0.6, scfg);
        EXPECT_LE(fc.average, co.average * 1.06) << wl;
    }
}

TEST(Fairness, EqlPwrProducesWorseOutliers)
{
    // Fig. 9: Eql-Pwr's worst application loss exceeds FastCap's on
    // mixes of CPU- and memory-bound applications.
    const SimConfig scfg = SimConfig::defaultConfig(16);
    const PerfComparison fc = compare("MIX4", "FastCap", 0.6, scfg);
    const PerfComparison ep = compare("MIX4", "Eql-Pwr", 0.6, scfg);
    EXPECT_LE(fc.worst, ep.worst * 1.08)
        << "FastCap worst " << fc.worst << " vs Eql-Pwr " << ep.worst;
}

TEST(Fairness, MergeComparisonsAggregatesClasses)
{
    const SimConfig scfg = SimConfig::defaultConfig(8);
    const PerfComparison a = compare("ILP1", "FastCap", 0.6, scfg);
    const PerfComparison b = compare("ILP2", "FastCap", 0.6, scfg);
    const PerfComparison merged = mergeComparisons({a, b});
    EXPECT_EQ(merged.perApp.size(), a.perApp.size() + b.perApp.size());
    EXPECT_GE(merged.worst, std::max(a.worst, b.worst) - 1e-12);
    EXPECT_LE(merged.average,
              std::max(a.average, b.average) + 1e-12);
}

} // namespace
} // namespace fastcap
