/**
 * @file
 * Faithfulness of the counter-derived policy inputs (Section III-C):
 * the z̄ recovered through Eq. 9 must track the workload's true think
 * time, the fitted power-law parameters must land near the
 * simulator's ground truth, and the instructions-per-access input
 * must match the profile's miss rate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/fastcap_policy.hpp"
#include "harness/experiment.hpp"
#include "sim/app_profile.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

/** Single-phase app so ground truth is a constant. */
AppProfile
flatApp(double mpki, double cpi, double activity = 0.8)
{
    Phase p;
    p.instructions = 1e9;
    p.mpki = mpki;
    p.cpiExec = cpi;
    p.wpki = mpki * 0.3;
    p.activity = activity;
    return AppProfile("flat", p);
}

TEST(InputsFidelity, Eq9RecoversTrueThinkTime)
{
    SimConfig scfg = SimConfig::defaultConfig(4);
    scfg.thinkJitterSigma = 0.0; // exact think times

    const double mpki = 5.0;
    const double cpi = 1.2;
    std::vector<AppProfile> apps(4, flatApp(mpki, cpi));

    FastCapPolicy policy;
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.95; // effectively uncapped
    ecfg.targetInstructions = 1e9;
    ExperimentRunner runner(scfg, std::move(apps), policy, ecfg);
    runner.step();
    runner.step();

    // True z̄ = instructions-per-miss * CPI / f_max.
    const double zbar_true =
        (1000.0 / mpki) * cpi / scfg.coreLadder.max();
    const PolicyInputs &in = runner.lastInputs();
    for (const CoreModel &c : in.cores) {
        EXPECT_NEAR(c.zbar, zbar_true, 0.05 * zbar_true);
        EXPECT_NEAR(c.ipa, 1000.0 / mpki, 0.05 * 1000.0 / mpki);
    }
}

TEST(InputsFidelity, FittedAlphaNearGroundTruth)
{
    // After visiting a few distinct frequencies under a binding cap,
    // the fitted alpha must land in the V^2f-implied band (~2-3.3)
    // and the fitted P_i must predict measured power decently.
    SimConfig scfg = SimConfig::defaultConfig(16);
    FastCapPolicy policy;
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.55;
    ecfg.targetInstructions = 1e9;
    ExperimentRunner runner(scfg, workloads::mix("ILP1", 16), policy,
                            ecfg);
    for (int e = 0; e < 8; ++e)
        runner.step();

    const PolicyInputs &in = runner.lastInputs();
    int fitted = 0;
    for (const CoreModel &c : in.cores) {
        if (c.alpha != 2.5) // bootstrap default means not yet fit
            ++fitted;
        EXPECT_GE(c.alpha, 1.0);
        EXPECT_LE(c.alpha, 4.0);
        EXPECT_GT(c.pi, 0.0);
        EXPECT_LT(c.pi, 2.0 * scfg.corePower.dynMax);
    }
    EXPECT_GT(fitted, 8) << "most cores should have real fits by now";
}

TEST(InputsFidelity, MemoryBetaNearOne)
{
    // Eq. 3: beta close to 1 (frequency-only scaling of bus/DIMMs).
    SimConfig scfg = SimConfig::defaultConfig(16);
    FastCapPolicy policy;
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.6;
    ecfg.targetInstructions = 1e9;
    ExperimentRunner runner(scfg, workloads::mix("MID1", 16), policy,
                            ecfg);
    for (int e = 0; e < 8; ++e)
        runner.step();

    const PolicyInputs &in = runner.lastInputs();
    EXPECT_GE(in.memory.beta, 0.3);
    EXPECT_LE(in.memory.beta, 2.0);
    EXPECT_GT(in.memory.pm, 0.0);
}

TEST(InputsFidelity, PowerModelPredictionErrorSmall)
{
    // Section III-A: "the modeling error is less than 10%". Check the
    // fitted model's prediction of the *next* window's core power
    // (same frequency) against the measurement.
    SimConfig scfg = SimConfig::defaultConfig(16);
    FastCapPolicy policy;
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.6;
    ecfg.targetInstructions = 1e9;
    ExperimentRunner runner(scfg, workloads::mix("MID3", 16), policy,
                            ecfg);
    for (int e = 0; e < 6; ++e)
        runner.step();

    const PolicyInputs &before = runner.lastInputs();
    std::vector<double> predicted(before.cores.size());
    for (std::size_t i = 0; i < before.cores.size(); ++i) {
        // Predict dynamic power at the currently selected ratio.
        const double x = before.coreRatios[
            runner.system().coreFreqIndex(static_cast<int>(i))];
        predicted[i] = before.cores[i].pi *
            std::pow(x, before.cores[i].alpha) +
            before.cores[i].pStatic;
    }
    runner.step();
    const PolicyInputs &after = runner.lastInputs();

    double err = 0.0;
    for (std::size_t i = 0; i < after.cores.size(); ++i)
        err += std::abs(predicted[i] - after.cores[i].measuredPower) /
            after.cores[i].measuredPower;
    err /= static_cast<double>(after.cores.size());
    EXPECT_LT(err, 0.20)
        << "mean per-core prediction error (paper reports <10% on "
           "full-length epochs; sampled windows add noise)";
}

} // namespace
} // namespace fastcap
