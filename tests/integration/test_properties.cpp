/**
 * @file
 * Cross-cutting end-to-end properties: out-of-order mode, multiple
 * memory controllers, epoch-length robustness, and conservation
 * invariants — the Section IV-B robustness studies as tests.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

ExperimentConfig
quick(double budget = 0.6, double instr = 8e6)
{
    ExperimentConfig cfg;
    cfg.budgetFraction = budget;
    cfg.targetInstructions = instr;
    cfg.maxEpochs = 400;
    return cfg;
}

TEST(Properties, OutOfOrderModeCapsPower)
{
    SimConfig scfg = SimConfig::defaultConfig(16);
    scfg.execMode = ExecMode::OutOfOrder;
    const ExperimentResult res =
        runWorkload("MEM2", "FastCap", quick(), scfg);
    ASSERT_TRUE(res.allCompleted());
    EXPECT_LE(res.averagePowerFraction(), 0.62);
}

TEST(Properties, OutOfOrderFasterThanInOrderUncapped)
{
    // Idealized OoO overlaps misses: memory-bound apps finish sooner
    // as long as the memory itself is not saturated — use 4 cores so
    // the bus has headroom for the extra parallelism.
    SimConfig ino = SimConfig::defaultConfig(4);
    SimConfig ooo = SimConfig::defaultConfig(4);
    ooo.execMode = ExecMode::OutOfOrder;

    // Long enough to leave the sparse-miss opening phase, where the
    // 128-entry window holds no more than one miss anyway.
    const ExperimentResult r_ino =
        runWorkload("MEM1", "Uncapped", quick(0.6, 25e6), ino);
    const ExperimentResult r_ooo =
        runWorkload("MEM1", "Uncapped", quick(0.6, 25e6), ooo);
    ASSERT_TRUE(r_ino.allCompleted());
    ASSERT_TRUE(r_ooo.allCompleted());

    double t_ino = 0.0;
    double t_ooo = 0.0;
    for (std::size_t i = 0; i < r_ino.apps.size(); ++i) {
        t_ino += r_ino.apps[i].tpi;
        t_ooo += r_ooo.apps[i].tpi;
    }
    EXPECT_LT(t_ooo, t_ino);
}

TEST(Properties, OutOfOrderStillFair)
{
    // Paper: "FastCap is still able to provide fairness in OoO".
    SimConfig scfg = SimConfig::defaultConfig(16);
    scfg.execMode = ExecMode::OutOfOrder;
    const ExperimentResult capped =
        runWorkload("MIX2", "FastCap", quick(), scfg);
    const ExperimentResult base =
        runWorkload("MIX2", "Uncapped", quick(), scfg);
    const PerfComparison c = comparePerformance(capped, base);
    EXPECT_LT(c.unfairness, 1.25);
}

SimConfig
fourControllerConfig(bool skewed)
{
    SimConfig cfg = SimConfig::defaultConfig(16);
    cfg.numControllers = 4;
    cfg.banksPerController = 8;
    cfg.busBurstCycles = 6.0; // one channel per controller
    if (skewed) {
        cfg.interleave = InterleaveMode::Skewed;
        cfg.skewHotFraction = 0.7;
    }
    return cfg;
}

TEST(Properties, MultiControllerUniformCapsAndCompletes)
{
    const ExperimentResult res = runWorkload(
        "MEM2", "FastCap", quick(), fourControllerConfig(false));
    ASSERT_TRUE(res.allCompleted());
    EXPECT_LE(res.averagePowerFraction(), 0.63);
}

TEST(Properties, MultiControllerSkewedStaysFair)
{
    // Paper Fig. 13: fairness holds even under highly skewed access
    // distributions across controllers.
    const SimConfig scfg = fourControllerConfig(true);
    const ExperimentResult capped =
        runWorkload("MEM2", "FastCap", quick(), scfg);
    const ExperimentResult base =
        runWorkload("MEM2", "Uncapped", quick(), scfg);
    ASSERT_TRUE(capped.allCompleted());
    const PerfComparison c = comparePerformance(capped, base);
    EXPECT_LT(c.unfairness, 1.3);
}

TEST(Properties, EpochLengthInsensitive)
{
    // Paper: 10 ms and 20 ms epochs do not change FastCap's ability
    // to control power.
    for (double epoch_ms : {5.0, 10.0, 20.0}) {
        SimConfig scfg = SimConfig::defaultConfig(16);
        scfg.epochLength = epoch_ms * 1e-3;
        const ExperimentResult res =
            runWorkload("MID3", "FastCap", quick(), scfg);
        ASSERT_TRUE(res.allCompleted()) << epoch_ms;
        EXPECT_LE(res.averagePowerFraction(), 0.63) << epoch_ms;
    }
}

TEST(Properties, CoreCountScaling)
{
    // Fig. 12: capping holds at 16/32/64 cores.
    for (int cores : {16, 32, 64}) {
        const ExperimentResult res = runWorkload(
            "MIX1", "FastCap", quick(0.6, 4e6),
            SimConfig::defaultConfig(cores));
        ASSERT_TRUE(res.allCompleted()) << cores;
        EXPECT_LE(res.averagePowerFraction(), 0.63) << cores;
    }
}

TEST(Properties, SolverOverheadScalesLinearlyInCores)
{
    // Table I / Section IV-B: the per-epoch decision work is linear
    // in N — evaluations stay O(log M) regardless of N.
    for (int cores : {16, 64}) {
        const ExperimentResult res = runWorkload(
            "MID1", "FastCap", quick(0.6, 3e6),
            SimConfig::defaultConfig(cores));
        for (const EpochRecord &e : res.epochs)
            EXPECT_LE(e.evaluations, 10) << cores;
    }
}

TEST(Properties, InstructionProgressMonotone)
{
    SimConfig scfg = SimConfig::defaultConfig(8);
    const ExperimentResult res =
        runWorkload("MIX3", "FastCap", quick(), scfg);
    // ips is a rate: always nonnegative; completion times ordered
    // sensibly (all within the run).
    for (const EpochRecord &e : res.epochs)
        for (double ips : e.ips)
            EXPECT_GE(ips, 0.0);
    const Seconds total = static_cast<double>(res.epochs.size()) *
        scfg.epochLength;
    for (const AppResult &a : res.apps) {
        EXPECT_GT(a.completionTime, 0.0);
        EXPECT_LE(a.completionTime, total + scfg.epochLength);
    }
}

} // namespace
} // namespace fastcap
