// fastcap-lint corpus: R1 — unordered containers in result code.
// Not compiled; consumed by `fastcap_lint --self-test`. Each marked
// line must produce exactly the findings its EXPECT lists.
// fastcap-lint-zone: src/core/example.cpp

#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace fastcap {

std::unordered_map<int, double> weights; // EXPECT: R1

using Index = std::unordered_map<int, int>; // EXPECT: R1

double
sumAll()
{
    double total = 0.0;
    for (const auto &kv : weights) // EXPECT: R1
        total += kv.second;
    return total;
}

double
sumParam(const std::unordered_set<long> &seen) // EXPECT: R1
{
    double total = 0.0;
    // A multi-line range-for: the finding lands on the `for` line.
    for (const auto &v : // EXPECT: R1
         seen)
        total += static_cast<double>(v);
    return total;
}

double
viaAccumulate()
{
    std::unordered_map<int, double> local; // EXPECT: R1
    return std::accumulate(local.begin(), // EXPECT: R1
                           local.end(), // EXPECT: R1
                           0.0,
                           [](double a, const auto &kv) {
                               return a + kv.second;
                           });
}

} // namespace fastcap
