// fastcap-lint corpus: R2 — ambient entropy and wall clocks in sim
// code. Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/sim/example.cpp

#include <chrono>
#include <ctime>
#include <random> // EXPECT: R2

namespace fastcap {

int
ambientSeed()
{
    std::random_device rd; // EXPECT: R2
    return static_cast<int>(rd());
}

int
libcRand()
{
    srand(7); // EXPECT: R2
    return rand(); // EXPECT: R2
}

unsigned
twister()
{
    std::mt19937 gen(42); // EXPECT: R2
    return static_cast<unsigned>(gen());
}

double
wallNow()
{
    const auto t = std::chrono::steady_clock::now(); // EXPECT: R2
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long
epochSeconds()
{
    return static_cast<long>(time(nullptr)); // EXPECT: R2
}

long
qualifiedEpochSeconds()
{
    return static_cast<long>(std::time(nullptr)); // EXPECT: R2
}

unsigned
bareTwister()
{
    using namespace std;
    mt19937 g(1); // EXPECT: R2
    return static_cast<unsigned>(g());
}

// A syntactically valid waiver with the wrong tag does not silence
// R2 — and, suppressing nothing, it is itself stale (W1).
long
wrongTag()
{
    // fastcap-lint: order-insensitive(tag does not match rule R2) EXPECT: W1
    return static_cast<long>(time(nullptr)); // EXPECT: R2
}

} // namespace fastcap
