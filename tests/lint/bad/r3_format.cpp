// fastcap-lint corpus: R3 — unchecked fixed-buffer formatting.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/harness/example.cpp

#include <cstdio>

namespace fastcap {

void
unchecked(double v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.3f", v); // EXPECT: R3
    snprintf(buf, sizeof(buf), "%.3f", v); // EXPECT: R3
}

void
discardedIsStillUnchecked(double v)
{
    char buf[16];
    // An explicit (void) cast documents the discard but does not make
    // truncation detectable: still a finding.
    (void)std::snprintf(buf, sizeof(buf), "%.3f", v); // EXPECT: R3
}

void
sprintfIsAlwaysBanned(double v)
{
    char buf[64];
    sprintf(buf, "%f", v); // EXPECT: R3
}

void
multiLineCall(double v)
{
    char buf[16];
    std::snprintf( // EXPECT: R3
        buf,
        sizeof(buf),
        "%.3f",
        v);
}

void
vararg(const char *fmt, va_list args)
{
    char buf[16];
    std::vsnprintf(buf, sizeof(buf), fmt, args); // EXPECT: R3
}

} // namespace fastcap
