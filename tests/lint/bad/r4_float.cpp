// fastcap-lint corpus: R4 — single-precision float in result code.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/core/example.cpp

namespace fastcap {

float // EXPECT: R4
scale(double x)
{
    const auto k = 0.5f; // EXPECT: R4
    return static_cast<float>(x * k); // EXPECT: R4
}

struct Narrow {
    float value = 0.0F; // EXPECT: R4 R4
};

double
literals()
{
    // Scientific-notation float literal.
    const double a = 1.5e-3f; // EXPECT: R4
    return a;
}

} // namespace fastcap
