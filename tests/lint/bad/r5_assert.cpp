// fastcap-lint corpus: R5 — raw assert in src/.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/trace/example.cpp

#include <assert.h> // EXPECT: R5
#include <cassert> // EXPECT: R5

namespace fastcap {

void
check(int n)
{
    assert(n > 0); // EXPECT: R5
    // The project macro panics instead of compiling out: allowed.
    FASTCAP_ASSERT(n > 0);
    // Compile-time asserts cannot differ between builds: allowed.
    static_assert(sizeof(int) >= 4, "need 32-bit int");
}

} // namespace fastcap
