// fastcap-lint corpus (bad unit r6_taint): a one-hop launder in a
// non-result src zone. Calling the clock here is not itself a
// finding (R6 only fires on result-zone callers), but the taint
// flows through: launderedClock() is as non-deterministic as the
// clock it wraps.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/io/launder.hpp

namespace fastcap {

inline double
launderedClock()
{
    return wallSecondsLike();
}

} // namespace fastcap
