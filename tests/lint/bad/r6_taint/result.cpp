// fastcap-lint corpus (bad unit r6_taint): result-zone callers of
// the tainted helpers in util_src.hpp / launder.hpp. The uses are
// invisible per-line (no banned token on these lines) — only the
// cross-file taint pass can flag them.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/sim/use.cpp

namespace fastcap {

// Direct call into a util wall-clock source.
double
directClock()
{
    return wallSecondsLike(); // EXPECT: R6
}

// One-hop launder through src/io does not wash the taint out.
double
launderedUse()
{
    return launderedClock(); // EXPECT: R6
}

// Entropy taint.
unsigned
seeded()
{
    return ambientSeed(); // EXPECT: R6
}

// Unordered-iteration taint.
long
ordered()
{
    return orderSum(); // EXPECT: R6
}

// Calling a clean helper stays clean.
double
fine()
{
    return cleanAdd(1.0, 2.0);
}

} // namespace fastcap
