// fastcap-lint corpus (bad unit r6_taint): determinism-taint
// sources defined in src/util. Per-line rules exempt util, so this
// file is clean on its own — but every function here is a taint
// source, and the result-zone callers in result.cpp must be flagged.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/util/clockish.hpp

#include <unordered_set>

namespace fastcap {

// wall-clock source: legal to define here, tainted for callers.
inline double
wallSecondsLike()
{
    return static_cast<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch()
                   .count()) *
           1e-9;
}

// entropy source.
inline unsigned
ambientSeed()
{
    return static_cast<unsigned>(rand());
}

// unordered-iteration source.
inline long
orderSum()
{
    static std::unordered_set<long> seen{1, 2, 3};
    long total = 0;
    for (long v : seen)
        total += v;
    return total;
}

// A clean helper: calling this from result code is fine.
inline double
cleanAdd(double a, double b)
{
    return a + b;
}

} // namespace fastcap
