// fastcap-lint corpus: R7 — lock-order cycles. ab() takes a then b,
// ba() takes b then a: a classic AB/BA deadlock. The cycle is
// reported once, anchored at the smallest involved acquisition
// site (the gb acquisition inside ab()). A double-acquire of the
// same non-recursive mutex is a self-deadlock, reported per site.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/sim/locky.cpp

namespace fastcap {

struct Pair {
    Mutex a;
    Mutex b;
    void ab();
    void ba();
    void twice();
};

void
Pair::ab()
{
    LockGuard ga(a);
    LockGuard gb(b); // EXPECT: R7
}

void
Pair::ba()
{
    LockGuard gb(b);
    LockGuard ga(a);
}

void
Pair::twice()
{
    LockGuard g1(a);
    LockGuard g2(a); // EXPECT: R7
}

} // namespace fastcap
