// fastcap-lint corpus (bad unit r8_telemetry_read): result-zone
// code reading telemetry back. Writes through the registry are the
// sanctioned direction; a metric value entering a result-zone
// expression means instrumentation can change simulation results,
// which the telemetry-on-vs-off byte-identity gate forbids.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/core/decide.cpp

namespace fastcap {

// Writing a counter is fine: observe-only in the write direction.
void
countSolve()
{
    telemetry::Counter &solves =
        telemetry::Registry::global().counter("/solver/solves");
    solves.add(1);
}

// Reading the counter back into a result-affecting decision is the
// violation R8 exists for.
double
budgetFudge()
{
    telemetry::Counter &solves =
        telemetry::Registry::global().counter("/solver/solves");
    return 1.0 + 0.001 * solves.value(); // EXPECT: R8
}

// Gauge reads are no better.
double
lastFreq()
{
    telemetry::Gauge &freq =
        telemetry::Registry::global().gauge("/machine/0/core/0/freq");
    freq.set(2.0e9);
    return freq.value(); // EXPECT: R8
}

} // namespace fastcap
