// fastcap-lint corpus (bad unit r8_telemetry_read): a miniature
// telemetry zone. Defining read accessors here is legal — the sink
// rule constrains *callers*: result-zone code may write metrics but
// never read them back (R8 fires in result.cpp).
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/telemetry/registry.hpp

namespace fastcap {
namespace telemetry {

inline bool
enabled()
{
    return true;
}

class Counter
{
  public:
    void add(unsigned long n) { _value += n; }
    unsigned long value() const { return _value; }

  private:
    unsigned long _value = 0;
};

class Gauge
{
  public:
    void set(double v) { _value = v; }
    double value() const { return _value; }

  private:
    double _value = 0.0;
};

class Registry
{
  public:
    static Registry &global();
    Counter &counter(const char *path);
    Gauge &gauge(const char *path);
};

} // namespace telemetry
} // namespace fastcap
