// fastcap-lint corpus: W0 — malformed waivers are findings, so a
// typo can never silently disable a rule.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/core/example.cpp

namespace fastcap {

/* EXPECT: W0 */ // fastcap-lint: raw-assert()

/* EXPECT: W0 */ // fastcap-lint: no-such-tag(a reason)

/* EXPECT: W0 */ // fastcap-lint: words without parentheses

/* EXPECT: W0 */ // fastcap-lint:

// A valid entry next to a malformed one parses (W0 for the bad
// part) but then suppresses nothing here, so it is also stale (W1).
/* EXPECT: W0 W1 */ // fastcap-lint: order-insensitive(valid), entropy()

int placeholder = 0;

} // namespace fastcap
