// fastcap-lint corpus: W1 — a waiver that suppresses nothing is
// itself a finding, in both placements (own-line and end-of-line).
// The used waiver in counted() shows the rule only bites stale
// entries.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/core/stale.cpp

#include <unordered_map>

namespace fastcap {

// fastcap-lint: order-insensitive(the container this covered is long gone) EXPECT: W1
double
plain()
{
    return 1.0;
}

double
alsoPlain()
{
    return 2.0; // fastcap-lint: wall-clock(no clock on this line) EXPECT: W1
}

long
counted()
{
    // fastcap-lint: order-insensitive(keyed count, never iterated)
    std::unordered_map<int, int> m;
    return static_cast<long>(m.size());
}

} // namespace fastcap
