// fastcap-lint corpus (good): idiomatic result-zone code with every
// classic false-positive trap — banned spellings inside strings, raw
// strings, comments and longer identifiers must never fire.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/core/example.cpp

#include <cstdio>
#include <map>
#include <numeric>
#include <string>
#include <vector>

namespace fastcap {

// Mentions of rand(), time(0), assert(x) and float in a comment are
// commentary, not code.

const char *
stringTraps()
{
    static const char kDoc[] =
        "assert(rand()); float f = 0.5f; for (auto &kv : m) time(0);";
    return kDoc;
}

const char *
rawStringTraps()
{
    return R"(std::unordered_map<int, int> m; srand(1); sprintf(0,"");)";
}

const char *
prefixedLiterals()
{
    const char *u = u8"time(nullptr)";
    char q = '\'';
    return q == 'x' ? u : u8"rand()";
}

long
numericTraps()
{
    // Digit separators are not char literals; 0x1F is not a float
    // literal despite ending in F.
    const long million = 1'000'000;
    const int mask = 0x1F;
    return million + mask;
}

// Identifiers that merely contain banned names are unrelated.
double randomness_budget = 0.0;
double floating_share = 0.0;

long
timer(long ticks)
{
    return ticks + 1;
}

double
memberAndOtherNamespaceCalls(SimClock &clk, SimClock *ptr)
{
    // Member calls and foreign-namespace calls named `time` are not
    // the libc wall clock.
    return clk.time() + ptr->time() + simclock::time(clk);
}

double
checkedFormatting(double v)
{
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "%.6g", v);
    if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf))
        return 0.0;
    if (std::snprintf(buf, sizeof(buf), "%d", 7) != 1)
        return 0.0;
    return parseBack(buf);
}

int
returnedFormatting(char *buf, std::size_t size)
{
    // A returned result is the caller's to check.
    return std::snprintf(buf, size, "%d", 42);
}

double
orderedContainersAreFine(const std::vector<double> &v,
                         const std::map<int, double> &m)
{
    double total = std::accumulate(v.begin(), v.end(), 0.0);
    for (const auto &kv : m)
        total += kv.second;
    return total;
}

void
projectAssertIsFine(int n)
{
    FASTCAP_ASSERT(n >= 0);
    static_assert(sizeof(long) >= 8, "need 64-bit long");
}

} // namespace fastcap
