// fastcap-lint corpus (good unit r6_waived): a result-zone caller
// may take the clock edge when it waives the call statement — the
// waiver asserts the value never reaches emitted results. The
// waiver also stops propagation, so timed() does not re-taint its
// own callers.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/harness/use.cpp

namespace fastcap {

double
timed()
{
    // fastcap-lint: wall-clock(operator-facing timing only; byte-compare gate proves results identical)
    return wallSecondsLike();
}

// Calling through the waived function stays clean: the waived edge
// does not propagate taint.
double
timedTwice()
{
    return timed() + timed();
}

double
clean()
{
    return pureAdd(2.0, 3.0);
}

} // namespace fastcap
