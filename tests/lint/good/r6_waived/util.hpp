// fastcap-lint corpus (good unit r6_waived): util-zone taint
// sources. Defining them here is legal, and util-internal callers
// (twice) are exempt from R6 — only result-zone callers must waive.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/util/clockish.hpp

namespace fastcap {

inline double
wallSecondsLike()
{
    return static_cast<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch()
                   .count()) *
           1e-9;
}

// util-internal use of a tainted helper: no waiver needed.
inline double
twice()
{
    return wallSecondsLike() * 2.0;
}

inline double
pureAdd(double a, double b)
{
    return a + b;
}

} // namespace fastcap
