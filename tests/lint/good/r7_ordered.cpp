// fastcap-lint corpus (good): self-consistent lock ordering is not
// a finding. Every path that holds both mutexes takes a before b;
// scoped release and the UniqueLock unlock/relock pattern (as in
// util/thread_pool's condition-variable wait) create no reversed
// edge; a call made under a lock propagates one level into the
// callee's acquisitions, which here agree with the global order.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/sim/ordered.cpp

namespace fastcap {

struct Ordered {
    Mutex a;
    Mutex b;
    void both();
    void bothAgain();
    void scoped();
    void waitish();
    void helper();
    void caller();
    void work();
};

void
Ordered::both()
{
    LockGuard ga(a);
    LockGuard gb(b);
}

void
Ordered::bothAgain()
{
    LockGuard ga(a);
    LockGuard gb(b);
}

// The a-guard dies at its scope's end, so gb is acquired with
// nothing held: no a->b edge, and crucially no b->a edge either.
void
Ordered::scoped()
{
    {
        LockGuard ga(a);
        work();
    }
    LockGuard gb(b);
}

// Condition-variable wait shape: the guard releases the mutex
// before blocking and reacquires after; nothing else is held at
// the reacquisition, so no edge forms.
void
Ordered::waitish()
{
    UniqueLock lk(a);
    lk.unlock();
    work();
    lk.lock();
}

void
Ordered::helper()
{
    LockGuard gb(b);
}

// One-level propagation: holding a while calling helper() yields
// a -> b, consistent with both()'s direct ordering.
void
Ordered::caller()
{
    LockGuard ga(a);
    helper();
}

void
Ordered::work()
{
}

} // namespace fastcap
