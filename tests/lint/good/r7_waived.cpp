// fastcap-lint corpus (good): a lock-order waiver on the reversed
// acquisition removes that edge from the global graph, breaking the
// would-be AB/BA cycle. The waiver is *used* (it killed an edge),
// so no W1 fires either.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/sim/waived.cpp

namespace fastcap {

struct Init {
    Mutex a;
    Mutex b;
    void ab();
    void ba();
};

void
Init::ab()
{
    LockGuard ga(a);
    LockGuard gb(b);
}

void
Init::ba()
{
    LockGuard gb(b);
    // fastcap-lint: lock-order(runs single-threaded at startup, before any worker exists)
    LockGuard ga(a);
}

} // namespace fastcap
