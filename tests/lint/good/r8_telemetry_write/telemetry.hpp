// fastcap-lint corpus (good unit r8_telemetry_write): the same
// miniature telemetry zone as the bad unit; see result-zone callers
// in use.cpp for the sanctioned write-only patterns.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/telemetry/registry.hpp

namespace fastcap {
namespace telemetry {

inline bool
enabled()
{
    return true;
}

class Counter
{
  public:
    void add(unsigned long n) { _value += n; }
    unsigned long value() const { return _value; }

  private:
    unsigned long _value = 0;
};

class Registry
{
  public:
    static Registry &global();
    Counter &counter(const char *path);
};

} // namespace telemetry
} // namespace fastcap
