// fastcap-lint corpus (good unit r8_telemetry_write): result-zone
// instrumentation in the sanctioned direction — gate on enabled(),
// write counters, never read them back. A read that provably cannot
// reach results (here: operator-facing only) may carry a
// telemetry-sink waiver on the call statement.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/core/decide.cpp

namespace fastcap {

// The enabled() gate plus a commuting write: clean.
void
countSolve()
{
    if (!telemetry::enabled())
        return;
    telemetry::Counter &solves =
        telemetry::Registry::global().counter("/solver/solves");
    solves.add(1);
}

// A waived read: the waiver asserts the value feeds an operator
// surface (a debug log line), not results.
unsigned long
debugSolveCount()
{
    telemetry::Counter &solves =
        telemetry::Registry::global().counter("/solver/solves");
    // fastcap-lint: telemetry-sink(debug log line only; value never reaches serialized results)
    return solves.value();
}

} // namespace fastcap
