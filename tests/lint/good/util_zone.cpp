// fastcap-lint corpus (good): src/util is exempt from R1/R2/R4 —
// wall-clock helpers, entropy shims and float math live there by
// design. R3 and R5 still apply (none triggered here).
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/util/example.cpp

#include <chrono>
#include <cstdlib>
#include <unordered_map>

namespace fastcap {

double
wallSeconds()
{
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int
ambientSeed()
{
    return rand();
}

float
singlePrecisionHelper(float x)
{
    return x * 0.5f;
}

int
countEntries(const std::unordered_map<int, int> &m)
{
    int n = 0;
    for (const auto &kv : m)
        n += kv.second;
    return n;
}

} // namespace fastcap
