// fastcap-lint corpus (good): correctly waived uses must be clean.
// Not compiled; consumed by `fastcap_lint --self-test`.
// fastcap-lint-zone: src/core/example.cpp

#include <cstdio>
#include <iterator>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace fastcap {

// A waiver on a comment-only line applies to the next code line.
// fastcap-lint: order-insensitive(keyed memo, never iterated)
std::unordered_map<int, double> weights;

// fastcap-lint: order-insensitive(alias used only for keyed lookups)
using Memo = std::unordered_map<unsigned long, unsigned long>;

double
sumWaived()
{
    double total = 0.0;
    // fastcap-lint: order-insensitive(reduced via sorted key snapshot)
    for (const auto &kv : weights)
        total += kv.second;
    return total;
}

double
multiLineStatementWaiver()
{
    double total = 0.0;
    // The waiver may sit on any line of the offending statement.
    for (const auto &kv :
         weights) { // fastcap-lint: order-insensitive(count only)
        total += kv.second;
    }
    return total;
}

long
waivedHandoff()
{
    // fastcap-lint: order-insensitive(distance is order-free)
    return std::distance(weights.begin(), weights.end());
}

double
commaSeparatedWaivers()
{
    // Both comma-separated entries must suppress something, or the
    // stale one would be a W1 finding.
    // fastcap-lint: order-insensitive(scratch, drained sorted), wall-clock(operator log only)
    std::unordered_set<long> scratch{time(nullptr)};
    return static_cast<double>(scratch.size());
}

} // namespace fastcap
