/**
 * @file
 * Shared fixture inputs for baseline-policy tests: a heterogeneous
 * 4-core scenario with paper-like ladders.
 */

#ifndef FASTCAP_TESTS_POLICIES_TEST_COMMON_HPP
#define FASTCAP_TESTS_POLICIES_TEST_COMMON_HPP

#include <cmath>

#include "core/inputs.hpp"

namespace fastcap {
namespace testing_support {

/** Heterogeneous inputs: cores 0..1 compute-bound, 3 memory-bound. */
inline PolicyInputs
heterogeneousInputs(double budget)
{
    PolicyInputs in;
    in.cores.resize(4);
    const double zbars[] = {600e-9, 500e-9, 120e-9, 25e-9};
    const double pis[] = {3.2, 3.0, 2.4, 1.2};
    const double ipas[] = {2700.0, 2400.0, 500.0, 55.0};
    for (int i = 0; i < 4; ++i) {
        in.cores[i].zbar = zbars[i];
        in.cores[i].cache = 7.5e-9;
        in.cores[i].pi = pis[i];
        in.cores[i].alpha = 2.8;
        in.cores[i].pStatic = 1.0;
        in.cores[i].ipa = ipas[i];
        in.cores[i].measuredPower = pis[i] * 0.9 + 1.0;
        in.cores[i].measuredIps = ipas[i] / (zbars[i] + 60e-9);
    }
    ControllerModel ctl;
    ctl.q = 1.4;
    ctl.u = 1.8;
    ctl.sm = 33e-9;
    ctl.sbBar = 1.875e-9;
    in.memory.controllers = {ctl};
    in.memory.pm = 12.0;
    in.memory.beta = 1.1;
    in.memory.pStatic = 12.0;
    in.memory.measuredPower = 24.0;
    in.accessProbs.assign(4, {1.0});
    for (int i = 0; i < 10; ++i) {
        in.coreRatios.push_back((2.2 + 0.2 * i) / 4.0);
        in.memRatios.push_back((206.0 + 66.0 * i) / 800.0);
    }
    in.background = 10.0;
    in.budget = budget;
    return in;
}

/** Eq. 6 left-hand side at an explicit decision. */
inline double
decisionPower(const PolicyInputs &in, const PolicyDecision &dec)
{
    double p = in.staticPower();
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        const double x = in.coreRatios.at(dec.coreFreqIdx.at(i));
        p += in.cores[i].pi * std::pow(x, in.cores[i].alpha);
    }
    p += in.memory.pm *
        std::pow(in.memRatios.at(dec.memFreqIdx), in.memory.beta);
    return p;
}

} // namespace testing_support
} // namespace fastcap

#endif // FASTCAP_TESTS_POLICIES_TEST_COMMON_HPP
