/**
 * @file
 * Tests for the Eql-Freq baseline: single global frequency, budget
 * adherence, and the conservatism the paper demonstrates.
 */

#include <gtest/gtest.h>

#include "policies/eql_freq.hpp"
#include "test_common.hpp"

namespace fastcap {
namespace {

using testing_support::decisionPower;
using testing_support::heterogeneousInputs;

TEST(EqlFreq, AllCoresShareOneFrequency)
{
    EqlFreqPolicy policy;
    const PolicyDecision dec = policy.decide(heterogeneousInputs(45.0));
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_EQ(idx, dec.coreFreqIdx[0]);
}

TEST(EqlFreq, RespectsBudgetModelPower)
{
    EqlFreqPolicy policy;
    for (double budget : {35.0, 45.0, 55.0, 70.0}) {
        const PolicyInputs in = heterogeneousInputs(budget);
        const PolicyDecision dec = policy.decide(in);
        EXPECT_LE(decisionPower(in, dec), budget * 1.001);
    }
}

TEST(EqlFreq, AbundantBudgetMaxesOut)
{
    EqlFreqPolicy policy;
    const PolicyDecision dec = policy.decide(heterogeneousInputs(500.0));
    EXPECT_EQ(dec.coreFreqIdx[0], 9u);
    EXPECT_EQ(dec.memFreqIdx, 9u);
}

TEST(EqlFreq, LeavesBudgetUnharvestedVsPerCore)
{
    // The lockstep constraint wastes headroom: whatever Eql-Freq
    // consumes is at most what a per-core policy could; strictly less
    // whenever the next global step would overshoot.
    EqlFreqPolicy policy;
    const PolicyInputs in = heterogeneousInputs(47.0);
    const PolicyDecision dec = policy.decide(in);
    const double used = decisionPower(in, dec);
    EXPECT_LE(used, in.budget);

    // Raising all cores one level must overshoot (otherwise the
    // search would have taken it).
    if (dec.coreFreqIdx[0] < 9) {
        PolicyDecision up = dec;
        for (auto &idx : up.coreFreqIdx)
            ++idx;
        EXPECT_GT(decisionPower(in, up), in.budget);
    }
}

TEST(EqlFreq, InfeasibleBudgetFallsToFloor)
{
    EqlFreqPolicy policy;
    const PolicyDecision dec = policy.decide(heterogeneousInputs(10.0));
    EXPECT_EQ(dec.coreFreqIdx[0], 0u);
    EXPECT_EQ(dec.memFreqIdx, 0u);
}

} // namespace
} // namespace fastcap
