/**
 * @file
 * Tests for the Eql-Pwr baseline: equal per-core power shares, budget
 * adherence, and the heterogeneity blindness the paper criticises.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "policies/eql_pwr.hpp"
#include "test_common.hpp"

namespace fastcap {
namespace {

using testing_support::decisionPower;
using testing_support::heterogeneousInputs;

TEST(EqlPwr, RespectsBudgetModelPower)
{
    EqlPwrPolicy policy;
    for (double budget : {35.0, 45.0, 55.0}) {
        const PolicyInputs in = heterogeneousInputs(budget);
        const PolicyDecision dec = policy.decide(in);
        EXPECT_LE(decisionPower(in, dec), budget * 1.001)
            << "budget " << budget;
    }
}

TEST(EqlPwr, AbundantBudgetMaxesOut)
{
    EqlPwrPolicy policy;
    const PolicyDecision dec = policy.decide(heterogeneousInputs(500.0));
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_EQ(idx, 9u);
    EXPECT_EQ(dec.memFreqIdx, 9u);
}

TEST(EqlPwr, EqualSharesIgnoreHeterogeneity)
{
    // A low-power core (3) cannot spend its share while a power-
    // hungry core (0) is starved: under an equal share, the hungry
    // core ends up at a lower ladder level even though the light core
    // has slack. FastCap would shift that slack.
    EqlPwrPolicy policy;
    const PolicyInputs in = heterogeneousInputs(38.0);
    const PolicyDecision dec = policy.decide(in);

    const double mem_power = in.memory.pm *
        std::pow(in.memRatios[dec.memFreqIdx], in.memory.beta) +
        in.memory.pStatic;
    const double share =
        (in.budget - mem_power - in.background) / 4.0;
    const double p3_max = in.cores[3].pi + in.cores[3].pStatic;
    const double p0_max = in.cores[0].pi + in.cores[0].pStatic;

    // The scenario is built so the share covers the light core fully
    // but not the hungry one at whatever memory level was picked.
    ASSERT_GT(share, p3_max);
    ASSERT_LT(share, p0_max);
    // Core 3's share has slack...
    EXPECT_EQ(dec.coreFreqIdx[3], 9u);
    // ...while the hungry core 0 cannot reach the top level.
    EXPECT_LT(dec.coreFreqIdx[0], 9u);
}

TEST(EqlPwr, DecisionCoversAllCores)
{
    EqlPwrPolicy policy;
    const PolicyInputs in = heterogeneousInputs(40.0);
    const PolicyDecision dec = policy.decide(in);
    ASSERT_EQ(dec.coreFreqIdx.size(), in.cores.size());
    EXPECT_GT(dec.evaluations, 0);
    EXPECT_EQ(policy.name(), "Eql-Pwr");
}

TEST(EqlPwr, TinyBudgetFloorsEverything)
{
    EqlPwrPolicy policy;
    const PolicyDecision dec = policy.decide(heterogeneousInputs(20.0));
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_EQ(idx, 0u);
}

} // namespace
} // namespace fastcap
