/**
 * @file
 * Tests for the Freq-Par control-theoretic baseline: feedback
 * direction, efficiency-proportional allocation, quota clamping and
 * the fixed-max memory.
 */

#include <gtest/gtest.h>

#include "policies/freq_par.hpp"
#include "test_common.hpp"

namespace fastcap {
namespace {

using testing_support::heterogeneousInputs;

TEST(FreqPar, MemoryAlwaysMax)
{
    FreqParPolicy policy;
    const PolicyInputs in = heterogeneousInputs(45.0);
    const PolicyDecision dec = policy.decide(in);
    EXPECT_EQ(dec.memFreqIdx, in.memRatios.size() - 1);
    EXPECT_FALSE(policy.usesMemoryDvfs());
}

TEST(FreqPar, OverBudgetPushesFrequenciesDown)
{
    FreqParPolicy policy;
    // Measured power (sum measuredPower + mem + background) is ~46 W;
    // a 30 W budget is a large negative error.
    PolicyInputs in = heterogeneousInputs(30.0);
    const PolicyDecision first = policy.decide(in);

    double sum = 0.0;
    for (std::size_t idx : first.coreFreqIdx)
        sum += static_cast<double>(idx);
    EXPECT_LT(sum, 4.0 * 9.0) << "must back off from full quota";
}

TEST(FreqPar, UnderBudgetRaisesQuota)
{
    FreqParPolicy policy;
    PolicyInputs in = heterogeneousInputs(60.0);
    // Drain the quota with a couple of over-budget epochs first.
    in.budget = 25.0;
    (void)policy.decide(in);
    (void)policy.decide(in);
    const PolicyDecision low = policy.decide(in);

    in.budget = 60.0;
    const PolicyDecision high = policy.decide(in);
    double sum_low = 0.0;
    double sum_high = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        sum_low += static_cast<double>(low.coreFreqIdx[i]);
        sum_high += static_cast<double>(high.coreFreqIdx[i]);
    }
    EXPECT_GT(sum_high, sum_low);
}

TEST(FreqPar, EfficiencyProportionalAllocationIsUnfair)
{
    // Core 0 (compute-bound) has far higher measured IPS per watt
    // than the memory-bound core 3, so under pressure it receives a
    // higher frequency — the unfairness the paper reports.
    FreqParPolicy policy;
    PolicyInputs in = heterogeneousInputs(35.0);
    (void)policy.decide(in); // settle quota
    const PolicyDecision dec = policy.decide(in);
    EXPECT_GE(dec.coreFreqIdx[0], dec.coreFreqIdx[3]);
}

TEST(FreqPar, ResetClearsControllerState)
{
    FreqParPolicy policy;
    PolicyInputs in = heterogeneousInputs(25.0);
    (void)policy.decide(in);
    (void)policy.decide(in);
    policy.reset();

    // After reset the quota restarts from full: the efficient cores
    // return to the top of the ladder. (The least efficient core may
    // still be shortchanged — that is Freq-Par's documented
    // unfairness, not residual state.)
    const PolicyDecision dec = policy.decide(heterogeneousInputs(500.0));
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(dec.coreFreqIdx[static_cast<std::size_t>(i)], 8u)
            << "core " << i;
}

TEST(FreqPar, QuotaClampsToLadderRange)
{
    FreqParPolicy policy(5.0); // aggressive gain
    PolicyInputs in = heterogeneousInputs(1.0);
    for (int e = 0; e < 10; ++e) {
        const PolicyDecision dec = policy.decide(in);
        for (std::size_t idx : dec.coreFreqIdx)
            EXPECT_LT(idx, in.coreRatios.size());
    }
}

} // namespace
} // namespace fastcap
