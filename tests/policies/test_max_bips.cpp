/**
 * @file
 * Tests for the MaxBIPS baseline: throughput optimality over the
 * model, budget adherence, the unfairness the paper demonstrates, and
 * the exponential-core-count guard.
 */

#include <gtest/gtest.h>

#include "core/fastcap_policy.hpp"
#include "core/queuing_model.hpp"
#include "policies/max_bips.hpp"
#include "test_common.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

using testing_support::decisionPower;
using testing_support::heterogeneousInputs;

double
decisionBips(const PolicyInputs &in, const PolicyDecision &dec)
{
    const QueuingModel qm(in);
    double bips = 0.0;
    for (std::size_t i = 0; i < in.cores.size(); ++i)
        bips += qm.instructionRate(
            i, in.coreRatios.at(dec.coreFreqIdx[i]),
            in.memRatios.at(dec.memFreqIdx));
    return bips;
}

TEST(MaxBips, RespectsBudgetModelPower)
{
    MaxBipsPolicy policy;
    for (double budget : {35.0, 45.0, 55.0}) {
        const PolicyInputs in = heterogeneousInputs(budget);
        const PolicyDecision dec = policy.decide(in);
        EXPECT_LE(decisionPower(in, dec), budget * 1.001);
    }
}

TEST(MaxBips, ThroughputAtLeastFastCapOnModel)
{
    // MaxBIPS optimizes exactly the model throughput; FastCap trades
    // some of it for fairness. On the shared model, MaxBIPS >= FastCap.
    const PolicyInputs in = heterogeneousInputs(45.0);
    MaxBipsPolicy maxbips;
    FastCapPolicy fastcap;
    const double bips_max = decisionBips(in, maxbips.decide(in));
    const double bips_fc = decisionBips(in, fastcap.decide(in));
    EXPECT_GE(bips_max, bips_fc * 0.999);
}

TEST(MaxBips, FavorsEfficientCores)
{
    // The compute-bound, power-hungry cores deliver the most BIPS per
    // watt here (huge ipa); the memory-bound core 3 contributes
    // almost nothing, so MaxBIPS starves it first under pressure.
    MaxBipsPolicy policy;
    const PolicyInputs in = heterogeneousInputs(42.0);
    const PolicyDecision dec = policy.decide(in);
    EXPECT_LE(dec.coreFreqIdx[3], dec.coreFreqIdx[0]);
}

TEST(MaxBips, UnfairnessExceedsFastCap)
{
    // Fairness comparison on the model: spread of per-core
    // performance factors.
    const PolicyInputs in = heterogeneousInputs(42.0);
    const QueuingModel qm(in);

    const auto spread = [&](const PolicyDecision &dec) {
        double lo = 1e9;
        double hi = 0.0;
        for (std::size_t i = 0; i < in.cores.size(); ++i) {
            const double d = qm.performance(
                i, in.coreRatios.at(dec.coreFreqIdx[i]),
                in.memRatios.at(dec.memFreqIdx));
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        return hi - lo;
    };

    MaxBipsPolicy maxbips;
    FastCapPolicy fastcap;
    const double spread_max = spread(maxbips.decide(in));
    const double spread_fc = spread(fastcap.decide(in));
    EXPECT_GE(spread_max, spread_fc)
        << "throughput maximization must not be fairer than FastCap";
}

TEST(MaxBips, GuardsAgainstLargeCoreCounts)
{
    MaxBipsPolicy policy(8);
    PolicyInputs in = heterogeneousInputs(45.0);
    // Inflate to 16 cores: exhaustive search would be 10^16 points.
    const CoreModel proto = in.cores[0];
    in.cores.assign(16, proto);
    in.accessProbs.assign(16, {1.0});
    EXPECT_THROW(policy.decide(in), FatalError);
}

TEST(MaxBips, EvaluationCountIsExponential)
{
    MaxBipsPolicy policy;
    const PolicyInputs in = heterogeneousInputs(45.0);
    const PolicyDecision dec = policy.decide(in);
    // F^N * M = 10^4 * 10.
    EXPECT_EQ(dec.evaluations, 100000);
}

} // namespace
} // namespace fastcap
