/**
 * @file
 * Tests for the policy factory.
 */

#include <gtest/gtest.h>

#include "policies/registry.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

TEST(Registry, InstantiatesEveryListedPolicy)
{
    for (const std::string &name : policyNames()) {
        auto policy = makePolicy(name);
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_EQ(policy->name(), name);
    }
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_THROW(makePolicy("NotAPolicy"), FatalError);
    EXPECT_THROW(makePolicy(""), FatalError);
}

TEST(Registry, MemoryDvfsFlagsMatchPaper)
{
    // Policies with "*" in Figure 9 pin the memory frequency.
    EXPECT_TRUE(makePolicy("FastCap")->usesMemoryDvfs());
    EXPECT_FALSE(makePolicy("CPU-only")->usesMemoryDvfs());
    EXPECT_FALSE(makePolicy("Freq-Par")->usesMemoryDvfs());
    EXPECT_TRUE(makePolicy("Eql-Pwr")->usesMemoryDvfs());
    EXPECT_TRUE(makePolicy("Eql-Freq")->usesMemoryDvfs());
    EXPECT_TRUE(makePolicy("MaxBIPS")->usesMemoryDvfs());
    EXPECT_TRUE(makePolicy("Steepest-Drop")->usesMemoryDvfs());
}

TEST(Registry, ContainsAllPolicies)
{
    const auto names = policyNames();
    EXPECT_EQ(names.size(), 8u);
}

} // namespace
} // namespace fastcap
