/**
 * @file
 * Tests for the Steepest-Drop greedy heuristic (Table I's
 * O(F N log N) family, extended with memory DVFS).
 */

#include <gtest/gtest.h>

#include "core/fastcap_policy.hpp"
#include "core/queuing_model.hpp"
#include "policies/steepest_drop.hpp"
#include "test_common.hpp"

namespace fastcap {
namespace {

using testing_support::decisionPower;
using testing_support::heterogeneousInputs;

TEST(SteepestDrop, RespectsBudgetModelPower)
{
    SteepestDropPolicy policy;
    for (double budget : {35.0, 45.0, 55.0}) {
        const PolicyInputs in = heterogeneousInputs(budget);
        const PolicyDecision dec = policy.decide(in);
        EXPECT_LE(decisionPower(in, dec), budget * 1.001)
            << "budget " << budget;
    }
}

TEST(SteepestDrop, AbundantBudgetTakesNoSteps)
{
    SteepestDropPolicy policy;
    const PolicyDecision dec =
        policy.decide(heterogeneousInputs(500.0));
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_EQ(idx, 9u);
    EXPECT_EQ(dec.memFreqIdx, 9u);
}

TEST(SteepestDrop, ImpossibleBudgetStopsAtFloor)
{
    SteepestDropPolicy policy;
    const PolicyDecision dec = policy.decide(heterogeneousInputs(1.0));
    for (std::size_t idx : dec.coreFreqIdx)
        EXPECT_EQ(idx, 0u);
    // Memory bounded below by the saturation guard (here index 0).
    EXPECT_EQ(dec.memFreqIdx, 0u);
}

TEST(SteepestDrop, SqueezesMemoryBoundCoresFirst)
{
    // The greedy sheds power where performance cost is lowest. With
    // a budget tight enough that memory steps alone cannot cover the
    // cut, the memory-bound core 3 loses core frequency no later than
    // the compute-bound core 0 (its steps cost almost no
    // performance).
    SteepestDropPolicy policy;
    const PolicyInputs in = heterogeneousInputs(35.0);
    const PolicyDecision dec = policy.decide(in);
    bool any_core_moved = false;
    for (std::size_t idx : dec.coreFreqIdx)
        any_core_moved = any_core_moved || idx < 9;
    ASSERT_TRUE(any_core_moved) << "budget should force core steps";
    EXPECT_LE(dec.coreFreqIdx[3], dec.coreFreqIdx[0]);
}

TEST(SteepestDrop, LessFairThanFastCap)
{
    const PolicyInputs in = heterogeneousInputs(40.0);
    const QueuingModel qm(in);

    const auto spread = [&](const PolicyDecision &dec) {
        double lo = 1e9;
        double hi = 0.0;
        for (std::size_t i = 0; i < in.cores.size(); ++i) {
            const double d = qm.performance(
                i, in.coreRatios.at(dec.coreFreqIdx[i]),
                in.memRatios.at(dec.memFreqIdx));
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        return hi - lo;
    };

    SteepestDropPolicy greedy;
    FastCapPolicy fastcap;
    EXPECT_GE(spread(greedy.decide(in)),
              spread(fastcap.decide(in)) - 1e-9);
}

TEST(SteepestDrop, GreedyUsesMoreEvaluationsThanFastCap)
{
    // The heuristic re-scores moves as it descends; FastCap's closed
    // form needs only O(log M) inner solves. (The units differ —
    // per-core scorings vs full inner solves — so compare only the
    // trend: the greedy's work grows with how far it must descend.)
    SteepestDropPolicy policy;
    const PolicyDecision gentle =
        policy.decide(heterogeneousInputs(55.0));
    const PolicyDecision harsh =
        policy.decide(heterogeneousInputs(35.0));
    EXPECT_GT(harsh.evaluations, gentle.evaluations);
}

} // namespace
} // namespace fastcap
