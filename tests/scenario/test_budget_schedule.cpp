/**
 * @file
 * BudgetSchedule: segment evaluation semantics, the spec-string
 * parser, the CSV trace loader, and the validation contract — every
 * malformed spec, negative time or out-of-range fraction must fail
 * with a FatalError at construction, never mid-run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "scenario/budget_schedule.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

TEST(BudgetSchedule, EmptyScheduleIsConstant)
{
    const BudgetSchedule s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.fractionAt(0.0, 0.6), 0.6);
    EXPECT_DOUBLE_EQ(s.fractionAt(123.0, 0.42), 0.42);
}

TEST(BudgetSchedule, FallbackAppliesBeforeTheFirstSegment)
{
    BudgetSchedule s;
    s.addStep(0.05, 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.0, 0.8), 0.8);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.0499, 0.8), 0.8);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.05, 0.8), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAt(9.0, 0.8), 0.5);
}

TEST(BudgetSchedule, StepsFormAPiecewiseConstantFunction)
{
    BudgetSchedule s;
    s.addStep(0.0, 0.9);
    s.addStep(0.05, 0.5);
    s.addStep(0.1, 0.7);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.0, 0.6), 0.9);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.049, 0.6), 0.9);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.05, 0.6), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.099, 0.6), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.2, 0.6), 0.7);
}

TEST(BudgetSchedule, RampInterpolatesLinearlyThenHolds)
{
    BudgetSchedule s;
    s.addRamp(0.1, 0.9, 0.5, 0.2);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.1, 0.6), 0.9);
    EXPECT_NEAR(s.fractionAt(0.2, 0.6), 0.7, 1e-12);
    EXPECT_NEAR(s.fractionAt(0.3, 0.6), 0.5, 1e-12);
    // After the ramp completes the end level holds.
    EXPECT_DOUBLE_EQ(s.fractionAt(5.0, 0.6), 0.5);
}

TEST(BudgetSchedule, SineOscillatesAroundItsMean)
{
    BudgetSchedule s;
    s.addSine(0.0, 0.7, 0.2, 0.1);
    EXPECT_NEAR(s.fractionAt(0.0, 0.6), 0.7, 1e-12);
    EXPECT_NEAR(s.fractionAt(0.025, 0.6), 0.9, 1e-12); // crest
    EXPECT_NEAR(s.fractionAt(0.075, 0.6), 0.5, 1e-12); // trough
    EXPECT_NEAR(s.fractionAt(0.1, 0.6), 0.7, 1e-9);    // full period
}

TEST(BudgetSchedule, LaterSegmentsShadowEarlierOnes)
{
    BudgetSchedule s;
    s.addSine(0.0, 0.7, 0.2, 0.1);
    s.addStep(0.2, 0.5);
    EXPECT_NEAR(s.fractionAt(0.05, 0.6), 0.7, 1e-9);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.25, 0.6), 0.5);
}

TEST(BudgetScheduleParse, AcceptsTheDocumentedGrammar)
{
    const BudgetSchedule s = BudgetSchedule::parse(
        "step@0:0.9; step@0.05:0.5; ramp@0.1:0.5->0.8/0.05; "
        "sine@0.2:0.7~0.1/0.04");
    ASSERT_EQ(s.size(), 4u);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.0, 0.6), 0.9);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.06, 0.6), 0.5);
    EXPECT_NEAR(s.fractionAt(0.125, 0.6), 0.65, 1e-12);
    EXPECT_NEAR(s.fractionAt(0.21, 0.6), 0.8, 1e-9);
}

TEST(BudgetScheduleParse, ConstantAndEmptyYieldEmptySchedules)
{
    EXPECT_TRUE(BudgetSchedule::parse("").empty());
    EXPECT_TRUE(BudgetSchedule::parse("constant").empty());
    EXPECT_TRUE(BudgetSchedule::parse("  constant  ").empty());
}

TEST(BudgetScheduleParse, RejectsMalformedSpecs)
{
    // Wrong overall shape.
    EXPECT_THROW(BudgetSchedule::parse("step"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step:0.5"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@0.5"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@0:0.9;;step@1:0.5"),
                 FatalError);
    // Unknown kinds and junk numbers.
    EXPECT_THROW(BudgetSchedule::parse("leap@0:0.5"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@zero:0.5"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@0:half"), FatalError);
    // Ramp/sine params missing their separators.
    EXPECT_THROW(BudgetSchedule::parse("ramp@0:0.9-0.5/0.1"),
                 FatalError);
    EXPECT_THROW(BudgetSchedule::parse("ramp@0:0.9->0.5"),
                 FatalError);
    EXPECT_THROW(BudgetSchedule::parse("sine@0:0.7~0.1"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("sine@0:0.7/0.1"), FatalError);
}

TEST(BudgetScheduleParse, RejectsNegativeTimes)
{
    EXPECT_THROW(BudgetSchedule::parse("step@-0.1:0.5"), FatalError);
    BudgetSchedule s;
    EXPECT_THROW(s.addStep(-1.0, 0.5), FatalError);
    EXPECT_THROW(s.addRamp(-0.5, 0.9, 0.5, 0.1), FatalError);
    EXPECT_THROW(s.addSine(-2.0, 0.7, 0.1, 0.1), FatalError);
}

TEST(BudgetScheduleParse, RejectsNonFiniteValues)
{
    // NaN would defeat the ordering checks and leave fractionAt()'s
    // binary search running on a non-partitioned segment list.
    EXPECT_THROW(BudgetSchedule::parse("step@nan:0.5"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@inf:0.5"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@0:nan"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("ramp@0:0.9->0.5/inf"),
                 FatalError);
    const double nan = std::nan("");
    BudgetSchedule s;
    EXPECT_THROW(s.addStep(nan, 0.5), FatalError);
    EXPECT_THROW(s.addRamp(0.0, 0.9, 0.5,
                           std::numeric_limits<double>::infinity()),
                 FatalError);
    EXPECT_THROW(s.addSine(0.0, 0.7, 0.1, nan), FatalError);
}

TEST(BudgetScheduleParse, RejectsOutOfRangeFractions)
{
    EXPECT_THROW(BudgetSchedule::parse("step@0:0"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@0:-0.4"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@0:1.2"), FatalError);
    EXPECT_THROW(BudgetSchedule::parse("ramp@0:1.4->0.5/0.1"),
                 FatalError);
    EXPECT_THROW(BudgetSchedule::parse("ramp@0:0.9->0/0.1"),
                 FatalError);
    // Sine extremes must stay inside (0, 1] too.
    EXPECT_THROW(BudgetSchedule::parse("sine@0:0.9~0.2/0.1"),
                 FatalError);
    EXPECT_THROW(BudgetSchedule::parse("sine@0:0.1~0.2/0.1"),
                 FatalError);
}

TEST(BudgetScheduleParse, RejectsDegenerateShapes)
{
    // Non-positive ramp duration / sine period.
    EXPECT_THROW(BudgetSchedule::parse("ramp@0:0.9->0.5/0"),
                 FatalError);
    EXPECT_THROW(BudgetSchedule::parse("ramp@0:0.9->0.5/-1"),
                 FatalError);
    EXPECT_THROW(BudgetSchedule::parse("sine@0:0.7~0.1/0"),
                 FatalError);
    BudgetSchedule s;
    EXPECT_THROW(s.addSine(0.0, 0.7, -0.1, 0.1), FatalError);
}

TEST(BudgetScheduleParse, RequiresStrictlyIncreasingStarts)
{
    EXPECT_THROW(BudgetSchedule::parse("step@0.1:0.5;step@0.1:0.6"),
                 FatalError);
    EXPECT_THROW(BudgetSchedule::parse("step@0.2:0.5;step@0.1:0.6"),
                 FatalError);
}

class BudgetTraceFile : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        if (!_path.empty())
            std::remove(_path.c_str());
    }

    const std::string &
    write(const std::string &content)
    {
        _path = ::testing::TempDir() + "budget_trace_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name() +
            ".csv";
        std::ofstream out(_path);
        out << content;
        return _path;
    }

  private:
    std::string _path;
};

TEST_F(BudgetTraceFile, StreamsRowsAsOneSegment)
{
    const std::string &path =
        write("time,fraction\n0,0.9\n0.05,0.5\n# comment\n0.1,0.7\n");
    const BudgetSchedule s = BudgetSchedule::parse("trace@0:" + path);
    // The rows stay on disk: one Trace segment, not one step per row.
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.segments()[0].kind, BudgetSegmentKind::Trace);
    EXPECT_EQ(s.segments()[0].traceRows, 3u);
    EXPECT_DOUBLE_EQ(s.segments()[0].traceEnd, 0.1);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.01, 0.6), 0.9);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.06, 0.6), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.2, 0.6), 0.7);
    // Backward queries rewind the stream transparently.
    EXPECT_DOUBLE_EQ(s.fractionAt(0.01, 0.6), 0.9);
}

TEST_F(BudgetTraceFile, HeaderMayFollowCommentsAndBlankLines)
{
    const std::string &path = write(
        "# rack cap trace\n\ntime,fraction\n0,0.9\n0.05,0.5\n");
    const BudgetSchedule s = BudgetSchedule::parse("trace@0:" + path);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.segments()[0].traceRows, 2u);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.01, 0.6), 0.9);
}

TEST_F(BudgetTraceFile, CopiesStreamIndependently)
{
    const std::string &path = write("0,0.9\n0.05,0.5\n0.1,0.7\n");
    const BudgetSchedule s = BudgetSchedule::parse("trace@0:" + path);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.2, 0.6), 0.7); // cursor at end
    // A copy must not inherit the original's file position…
    const BudgetSchedule copy = s;
    EXPECT_DOUBLE_EQ(copy.fractionAt(0.01, 0.6), 0.9);
    // …and the original keeps answering from where it was.
    EXPECT_DOUBLE_EQ(s.fractionAt(0.25, 0.6), 0.7);
}

TEST_F(BudgetTraceFile, SegmentsMayFollowATraceAfterItsLastRow)
{
    const std::string &path = write("0,0.9\n0.05,0.5\n");
    BudgetSchedule s = BudgetSchedule::parse("trace@0:" + path);
    // The trace occupies [0, 0.05]; a step inside that span overlaps.
    EXPECT_THROW(s.addStep(0.03, 0.7), FatalError);
    s.addStep(0.08, 0.7);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.06, 0.6), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.09, 0.6), 0.7);
}

TEST_F(BudgetTraceFile, OffsetsRowTimesByTheSegmentStart)
{
    const std::string &path = write("0,0.9\n0.05,0.5\n");
    const BudgetSchedule s =
        BudgetSchedule::parse("trace@0.1:" + path);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.05, 0.6), 0.6); // before trace
    EXPECT_DOUBLE_EQ(s.fractionAt(0.1, 0.6), 0.9);
    EXPECT_DOUBLE_EQ(s.fractionAt(0.16, 0.6), 0.5);
}

TEST_F(BudgetTraceFile, RejectsBadTraces)
{
    EXPECT_THROW(
        BudgetSchedule::parse("trace@0:/nonexistent/trace.csv"),
        FatalError);
    EXPECT_THROW(BudgetSchedule::parse("trace@0:" + write("")),
                 FatalError);
    EXPECT_THROW(
        BudgetSchedule::parse("trace@0:" + write("0 0.9\n")),
        FatalError);
    EXPECT_THROW(
        BudgetSchedule::parse("trace@0:" + write("0,0.9\n0.05,1.4\n")),
        FatalError);
    EXPECT_THROW(
        BudgetSchedule::parse("trace@0:" + write("0,0.9\n0,0.5\n")),
        FatalError);
}

} // namespace
} // namespace fastcap
