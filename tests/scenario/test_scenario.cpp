/**
 * @file
 * WorkloadSchedule and Scenario: event parsing and ordering, app-name
 * resolution (including the built-in "idle" profile), the inline
 * scenario grammar, the `name = spec` scenario-file loader, and the
 * validation contract (unknown apps, negative times, malformed specs
 * all FatalError at construction).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "scenario/scenario.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

TEST(WorkloadSchedule, ParsesAndSortsEvents)
{
    const WorkloadSchedule s =
        WorkloadSchedule::parse("0.1:3:milc; 0.05:0:idle; 0.1:1:gcc");
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.events()[0].time, 0.05);
    EXPECT_EQ(s.events()[0].core, 0);
    EXPECT_EQ(s.events()[0].app, "idle");
    // Equal-time events keep insertion order (stable sort).
    EXPECT_EQ(s.events()[1].core, 3);
    EXPECT_EQ(s.events()[1].app, "milc");
    EXPECT_EQ(s.events()[2].core, 1);
    EXPECT_EQ(s.events()[2].app, "gcc");
}

TEST(WorkloadSchedule, EmptySpecYieldsEmptySchedule)
{
    EXPECT_TRUE(WorkloadSchedule::parse("").empty());
    EXPECT_TRUE(WorkloadSchedule::parse("  ").empty());
}

TEST(WorkloadSchedule, ResolvesIdleAndTableApps)
{
    EXPECT_EQ(WorkloadSchedule::resolve("idle").name(), "idle");
    // Idle must barely touch memory or burn power.
    const AppProfile &idle = WorkloadSchedule::resolve("idle");
    EXPECT_LT(idle.averageMpki(), 0.1);
    EXPECT_LT(idle.phases().front().activity, 0.2);
    EXPECT_EQ(WorkloadSchedule::resolve("milc").name(), "milc");
    EXPECT_THROW(WorkloadSchedule::resolve("notanapp"), FatalError);
}

TEST(WorkloadSchedule, RejectsBadEvents)
{
    // Unknown app names fail at construction, not mid-run.
    EXPECT_THROW(WorkloadSchedule::parse("0.1:0:notanapp"),
                 FatalError);
    // Negative time / core.
    EXPECT_THROW(WorkloadSchedule::parse("-0.1:0:milc"), FatalError);
    EXPECT_THROW(WorkloadSchedule::parse("0.1:-2:milc"), FatalError);
    // Non-finite times never fire ('nan <= now' is always false);
    // reject them up front.
    EXPECT_THROW(WorkloadSchedule::parse("nan:0:milc"), FatalError);
    EXPECT_THROW(WorkloadSchedule::parse("inf:0:milc"), FatalError);
    // Malformed shapes.
    EXPECT_THROW(WorkloadSchedule::parse("0.1:0"), FatalError);
    EXPECT_THROW(WorkloadSchedule::parse("0.1"), FatalError);
    EXPECT_THROW(WorkloadSchedule::parse("x:0:milc"), FatalError);
    EXPECT_THROW(WorkloadSchedule::parse("0.1:x:milc"), FatalError);
    // Overflowing core indices must not wrap onto a valid core.
    EXPECT_THROW(WorkloadSchedule::parse("0.1:4294967297:milc"),
                 FatalError);
    EXPECT_THROW(WorkloadSchedule::parse("0.1:0:"), FatalError);
    EXPECT_THROW(WorkloadSchedule::parse("0.1:0:milc;;"), FatalError);

    WorkloadSchedule s;
    EXPECT_THROW(s.add(0.1, 0, ""), FatalError);
    EXPECT_THROW(s.add(-1.0, 0, "milc"), FatalError);
}

TEST(Scenario, DefaultIsConstant)
{
    const Scenario sc;
    EXPECT_TRUE(sc.isConstant());
    EXPECT_EQ(sc.name, "constant");
}

TEST(Scenario, ParsesInlineSpecs)
{
    const Scenario sc = Scenario::parse(
        "name=drop|budget=step@0:0.9;step@0.05:0.5|"
        "workload=0.08:0:idle");
    EXPECT_EQ(sc.name, "drop");
    EXPECT_FALSE(sc.isConstant());
    EXPECT_EQ(sc.budget.size(), 2u);
    ASSERT_EQ(sc.workload.size(), 1u);
    EXPECT_EQ(sc.workload.events()[0].app, "idle");
}

TEST(Scenario, BareLeadingFieldIsTheName)
{
    const Scenario sc =
        Scenario::parse("spike|budget=sine@0:0.7~0.1/0.05");
    EXPECT_EQ(sc.name, "spike");
    EXPECT_EQ(sc.budget.size(), 1u);
    EXPECT_TRUE(sc.workload.empty());
}

TEST(Scenario, NameDefaultsWhenOmitted)
{
    const Scenario sc = Scenario::parse("budget=step@0:0.5");
    EXPECT_EQ(sc.name, "scenario");
}

TEST(Scenario, RejectsMalformedSpecs)
{
    EXPECT_THROW(Scenario::parse(""), FatalError);
    EXPECT_THROW(Scenario::parse("budget=step@0:0.5|bogus=1"),
                 FatalError);
    EXPECT_THROW(Scenario::parse("budget=step@0:0.5|extra"),
                 FatalError);
    EXPECT_THROW(
        Scenario::parse("budget=step@0:0.5|budget=step@0:0.6"),
        FatalError);
    EXPECT_THROW(
        Scenario::parse("workload=0.1:0:idle|workload=0.2:0:idle"),
        FatalError);
    EXPECT_THROW(
        Scenario::parse("name=drop|name=wave|budget=step@0:0.9"),
        FatalError);
    EXPECT_THROW(
        Scenario::parse("drop|name=wave|budget=step@0:0.9"),
        FatalError);
    EXPECT_THROW(Scenario::parse("name=|budget=step@0:0.5"),
                 FatalError);
    // Schedule errors propagate with their own messages.
    EXPECT_THROW(Scenario::parse("budget=step@0:2.0"), FatalError);
    EXPECT_THROW(Scenario::parse("workload=0.1:0:notanapp"),
                 FatalError);
}

class ScenarioFile : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        if (!_path.empty())
            std::remove(_path.c_str());
    }

    const std::string &
    write(const std::string &content)
    {
        _path = ::testing::TempDir() + "scenarios_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name() +
            ".txt";
        std::ofstream out(_path);
        out << content;
        return _path;
    }

  private:
    std::string _path;
};

TEST_F(ScenarioFile, LoadsNamedScenarios)
{
    const std::string &path = write(
        "# transient scenarios\n"
        "drop   = budget=step@0:0.9;step@0.05:0.5\n"
        "churn  = workload=0.05:0:idle;0.1:0:milc\n"
        "wave   = budget=sine@0:0.7~0.1/0.05|workload=0.2:1:idle\n");
    const std::vector<Scenario> list = Scenario::loadFile(path);
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0].name, "drop");
    EXPECT_EQ(list[0].budget.size(), 2u);
    EXPECT_EQ(list[1].name, "churn");
    EXPECT_EQ(list[1].workload.size(), 2u);
    EXPECT_EQ(list[2].name, "wave");
    EXPECT_FALSE(list[2].workload.empty());
}

TEST_F(ScenarioFile, RejectsBadFiles)
{
    EXPECT_THROW(Scenario::loadFile("/nonexistent/scenarios.txt"),
                 FatalError);
    EXPECT_THROW(Scenario::loadFile(write("")), FatalError);
    EXPECT_THROW(Scenario::loadFile(write("no equals sign\n")),
                 FatalError);
    EXPECT_THROW(Scenario::loadFile(write("= budget=step@0:0.5\n")),
                 FatalError);
    EXPECT_THROW(
        Scenario::loadFile(write("a = budget=step@0:0.5\n"
                                 "a = budget=step@0:0.6\n")),
        FatalError);
}

} // namespace
} // namespace fastcap
