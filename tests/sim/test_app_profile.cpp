/**
 * @file
 * Tests for application profiles and phase cycling.
 */

#include <gtest/gtest.h>

#include "sim/app_profile.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

Phase
makePhase(double instr, double mpki, double cpi = 1.0)
{
    Phase p;
    p.instructions = instr;
    p.mpki = mpki;
    p.cpiExec = cpi;
    p.wpki = mpki * 0.3;
    p.activity = 0.8;
    return p;
}

TEST(AppProfile, SinglePhaseAlwaysReturned)
{
    const AppProfile app("mono", makePhase(1e6, 2.0));
    EXPECT_DOUBLE_EQ(app.phaseAt(0).mpki, 2.0);
    EXPECT_DOUBLE_EQ(app.phaseAt(1e12).mpki, 2.0);
}

TEST(AppProfile, PhaseSelectionByPosition)
{
    const AppProfile app("duo", std::vector<Phase>{
        makePhase(10e6, 1.0), makePhase(5e6, 8.0)});
    EXPECT_DOUBLE_EQ(app.phaseAt(0).mpki, 1.0);
    EXPECT_DOUBLE_EQ(app.phaseAt(9.99e6).mpki, 1.0);
    EXPECT_DOUBLE_EQ(app.phaseAt(10.01e6).mpki, 8.0);
    EXPECT_DOUBLE_EQ(app.phaseAt(14.9e6).mpki, 8.0);
}

TEST(AppProfile, PhasesWrapCyclically)
{
    const AppProfile app("duo", std::vector<Phase>{
        makePhase(10e6, 1.0), makePhase(5e6, 8.0)});
    // Cycle length 15M: position 16M is 1M into the next cycle.
    EXPECT_DOUBLE_EQ(app.phaseAt(16e6).mpki, 1.0);
    EXPECT_DOUBLE_EQ(app.phaseAt(15e6 * 100 + 12e6).mpki, 8.0);
}

TEST(AppProfile, InstructionsPerMiss)
{
    const Phase p = makePhase(1e6, 4.0);
    EXPECT_DOUBLE_EQ(p.instructionsPerMiss(), 250.0);
}

TEST(AppProfile, WeightedAverages)
{
    const AppProfile app("duo", std::vector<Phase>{
        makePhase(10e6, 1.0, 1.2), makePhase(10e6, 3.0, 0.8)});
    EXPECT_DOUBLE_EQ(app.averageMpki(), 2.0);
    EXPECT_DOUBLE_EQ(app.averageCpiExec(), 1.0);
    EXPECT_NEAR(app.averageWpki(), 2.0 * 0.3, 1e-12);
}

TEST(AppProfile, CycleLengthSumsPhases)
{
    const AppProfile app("trio", std::vector<Phase>{
        makePhase(1e6, 1.0), makePhase(2e6, 1.0), makePhase(3e6, 1.0)});
    EXPECT_DOUBLE_EQ(app.cycleLength(), 6e6);
}

TEST(AppProfile, RejectsEmptyAndInvalidPhases)
{
    EXPECT_THROW(AppProfile("bad", std::vector<Phase>{}), FatalError);
    Phase zero_mpki = makePhase(1e6, 0.0);
    EXPECT_THROW(AppProfile("bad", zero_mpki), FatalError);
    Phase neg_instr = makePhase(-1.0, 1.0);
    EXPECT_THROW(AppProfile("bad", neg_instr), FatalError);
}

} // namespace
} // namespace fastcap
