/**
 * @file
 * Tests for the core model: think-time generation, in-order blocking,
 * OoO window behaviour, counters and DVFS scaling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/app_profile.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/event_queue.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace {

AppProfile
steadyApp(double mpki, double cpi = 1.0, double wpki = 0.0)
{
    Phase p;
    p.instructions = 100e6;
    p.mpki = mpki;
    p.cpiExec = cpi;
    p.wpki = wpki;
    p.activity = 0.9;
    return AppProfile("steady", p);
}

struct Fixture
{
    explicit Fixture(double mpki, double cpi = 1.0, double wpki = 0.0,
                     ExecMode mode = ExecMode::InOrder)
        : cfg(SimConfig::defaultConfig(16)),
          app(steadyApp(mpki, cpi, wpki))
    {
        cfg.execMode = mode;
        cfg.thinkJitterSigma = 0.0; // deterministic think times
        core = std::make_unique<Core>(0, cfg, queue, Rng(7));
        core->runApp(&app);
        core->submitCallback([this](Request r) {
            submitted.push_back(r);
        });
    }

    /** Immediately satisfy every read after `latency`. */
    void
    autoRespond(Seconds latency)
    {
        core->submitCallback([this, latency](Request r) {
            submitted.push_back(r);
            if (r.type == RequestType::Read) {
                queue.scheduleAfter(latency, [this, r] {
                    core->onDataReturn(r, queue.now());
                });
            }
        });
    }

    SimConfig cfg;
    AppProfile app;
    EventQueue queue;
    std::unique_ptr<Core> core;
    std::vector<Request> submitted;
};

TEST(Core, RequiresAppAndSinkBeforeStart)
{
    SimConfig cfg = SimConfig::defaultConfig(16);
    EventQueue q;
    Core lone(0, cfg, q, Rng(1));
    EXPECT_THROW(lone.start(), FatalError);
    AppProfile app = steadyApp(1.0);
    lone.runApp(&app);
    EXPECT_THROW(lone.start(), FatalError);
}

TEST(Core, InOrderBlocksOnMiss)
{
    Fixture f(10.0); // 100 instructions between misses
    f.core->start();
    f.queue.runUntil(10e-6);

    // Exactly one read issued; the core is stalled awaiting it.
    ASSERT_EQ(f.submitted.size(), 1u);
    EXPECT_TRUE(f.core->stalled());
    EXPECT_EQ(f.core->outstanding(), 1);
    EXPECT_EQ(f.core->counters().misses, 1u);

    // Think time: 100 instr * 1 cpi / 4 GHz = 25 ns (plus L2 delay
    // before the submit event).
    EXPECT_NEAR(f.core->counters().busyTime, 25e-9, 1e-12);
}

TEST(Core, ResumesAfterDataReturn)
{
    Fixture f(10.0);
    f.autoRespond(fromNs(50));
    f.core->start();
    f.queue.runUntil(100e-6);

    EXPECT_GT(f.submitted.size(), 100u);
    const CoreCounters &c = f.core->counters();
    EXPECT_EQ(c.misses, c.stalls) << "in-order: every miss stalls";
    EXPECT_GT(c.instructions, 10000u);
    // Turn-around: 25 ns think + 7.5 ns L2 + 50 ns latency ~ 82.5 ns
    // per 100 instructions.
    const double tpi = 100e-6 / static_cast<double>(c.instructions);
    EXPECT_NEAR(tpi, 82.5e-9 / 100.0, 0.15e-9);
}

TEST(Core, FrequencyScalesThinkTime)
{
    Fixture fast(10.0);
    fast.autoRespond(0.0);
    fast.core->start();
    fast.queue.runUntil(50e-6);
    const auto fast_instr = fast.core->counters().instructions;

    Fixture slow(10.0);
    slow.core->frequency(slow.cfg.coreLadder.min()); // 2.2 GHz
    slow.autoRespond(0.0);
    slow.core->start();
    slow.queue.runUntil(50e-6);
    const auto slow_instr = slow.core->counters().instructions;

    // With near-zero memory latency, rate ~ f / (cpi + L2 share).
    EXPECT_GT(fast_instr, slow_instr);
    const double ratio = static_cast<double>(fast_instr) /
        static_cast<double>(slow_instr);
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 4.0 / 2.2 + 0.2);
}

TEST(Core, WritebacksFollowWpkiRatio)
{
    Fixture f(10.0, 1.0, 5.0); // wpki/mpki = 0.5
    f.autoRespond(fromNs(10));
    f.core->start();
    f.queue.runUntil(200e-6);

    const CoreCounters &c = f.core->counters();
    ASSERT_GT(c.misses, 500u);
    const double ratio = static_cast<double>(c.writebacks) /
        static_cast<double>(c.misses);
    EXPECT_NEAR(ratio, 0.5, 0.08);
}

TEST(Core, WpkiAboveMpkiEmitsMultipleWritebacks)
{
    Fixture f(2.0, 1.0, 3.0); // 1.5 writebacks per miss
    f.autoRespond(fromNs(10));
    f.core->start();
    f.queue.runUntil(400e-6);
    const CoreCounters &c = f.core->counters();
    ASSERT_GT(c.misses, 100u);
    const double ratio = static_cast<double>(c.writebacks) /
        static_cast<double>(c.misses);
    EXPECT_NEAR(ratio, 1.5, 0.2);
}

TEST(Core, OutOfOrderOverlapsMisses)
{
    // MPKI 20 -> 50 instructions per miss; window 128 -> MLP 2.
    Fixture ooo(20.0, 1.0, 0.0, ExecMode::OutOfOrder);
    ooo.autoRespond(fromNs(200));
    ooo.core->start();
    ooo.queue.runUntil(200e-6);

    Fixture ino(20.0);
    ino.autoRespond(fromNs(200));
    ino.core->start();
    ino.queue.runUntil(200e-6);

    EXPECT_GT(ooo.core->counters().instructions,
              static_cast<std::uint64_t>(
                  1.3 * static_cast<double>(
                      ino.core->counters().instructions)))
        << "OoO must overlap memory latency with execution";
    EXPECT_LT(ooo.core->counters().stalls,
              ooo.core->counters().misses);
}

TEST(Core, OutOfOrderRespectsWindowBound)
{
    // MPKI 100 -> 10 instr/miss -> window-derived MLP = min(12.8, 8).
    Fixture f(100.0, 1.0, 0.0, ExecMode::OutOfOrder);
    int max_outstanding = 0;
    f.core->submitCallback([&](Request r) {
        if (r.type == RequestType::Read)
            max_outstanding =
                std::max(max_outstanding, f.core->outstanding());
        // Never respond: outstanding only grows until the bound.
    });
    f.core->start();
    f.queue.runUntil(100e-6);
    EXPECT_LE(max_outstanding, f.cfg.oooMaxOutstanding);
    EXPECT_GE(max_outstanding, 2);
    EXPECT_TRUE(f.core->stalled());
}

TEST(Core, CreditAdvancesPhasePosition)
{
    Fixture f(10.0);
    f.core->creditInstructions(5e6);
    EXPECT_DOUBLE_EQ(f.core->instructionsRetired(), 5e6);
    EXPECT_THROW(f.core->creditInstructions(-1.0), PanicError);
}

TEST(Core, FlushStallAccountsOpenStall)
{
    Fixture f(10.0);
    f.core->start();
    f.queue.runUntil(10e-6); // stalled, no response ever
    ASSERT_TRUE(f.core->stalled());
    const Seconds before = f.core->counters().stallTime;
    f.core->flushStall(10e-6);
    EXPECT_GT(f.core->counters().stallTime, before);
    EXPECT_NEAR(f.core->counters().stallTime + f.core->counters().busyTime,
                10e-6, 0.2e-6);
}

TEST(Core, CountersResetIsClean)
{
    Fixture f(10.0);
    f.autoRespond(fromNs(10));
    f.core->start();
    f.queue.runUntil(20e-6);
    f.core->resetCounters();
    const CoreCounters &c = f.core->counters();
    EXPECT_EQ(c.instructions, 0u);
    EXPECT_EQ(c.misses, 0u);
    EXPECT_DOUBLE_EQ(c.busyTime, 0.0);
    // Cumulative retirement is preserved.
    EXPECT_GT(f.core->instructionsRetired(), 0.0);
}

TEST(Core, PhaseChangeAltersMissRate)
{
    // Two phases: sparse then dense misses.
    std::vector<Phase> phases;
    Phase a;
    a.instructions = 50e3;
    a.mpki = 1.0;
    a.cpiExec = 1.0;
    a.wpki = 0.0;
    Phase b = a;
    b.instructions = 50e3;
    b.mpki = 50.0;
    phases.push_back(a);
    phases.push_back(b);
    AppProfile app("phasey", phases);

    SimConfig cfg = SimConfig::defaultConfig(16);
    cfg.thinkJitterSigma = 0.0;
    EventQueue q;
    Core core(0, cfg, q, Rng(3));
    core.runApp(&app);
    std::uint64_t reads = 0;
    core.submitCallback([&](Request r) {
        if (r.type == RequestType::Read) {
            ++reads;
            q.scheduleAfter(1e-9, [&core, r, &q] {
                core.onDataReturn(r, q.now());
            });
        }
    });
    core.start();

    // Run until well into phase b and compare instantaneous rates.
    q.runUntil(30e-6); // ~phase a territory (50k instr ~ 12.5us+stall)
    const std::uint64_t reads_a = reads;
    const double instr_a = core.instructionsRetired();
    q.runUntil(60e-6);
    const std::uint64_t reads_b = reads - reads_a;
    const double instr_b = core.instructionsRetired() - instr_a;
    ASSERT_GT(instr_b, 0.0);
    const double mpki_a = 1000.0 * static_cast<double>(reads_a) /
        instr_a;
    const double mpki_b = 1000.0 * static_cast<double>(reads_b) /
        instr_b;
    EXPECT_GT(mpki_b, mpki_a) << "later window covers the dense phase";
}

} // namespace
} // namespace fastcap
