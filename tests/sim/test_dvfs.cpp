/**
 * @file
 * Tests for frequency ladders and voltage curves against the paper's
 * Section IV-A parameters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/dvfs.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace fastcap {
namespace {

TEST(FrequencyLadder, CoreDefaultMatchesPaper)
{
    const FrequencyLadder l = FrequencyLadder::coreDefault();
    EXPECT_EQ(l.size(), 10u);
    EXPECT_DOUBLE_EQ(l.min(), fromGHz(2.2));
    EXPECT_DOUBLE_EQ(l.max(), fromGHz(4.0));
    // Equally spaced: step 0.2 GHz.
    for (std::size_t i = 1; i < l.size(); ++i)
        EXPECT_NEAR(l.at(i) - l.at(i - 1), fromGHz(0.2), 1.0);
}

TEST(FrequencyLadder, MemoryDefaultMatchesPaper)
{
    const FrequencyLadder l = FrequencyLadder::memoryDefault();
    EXPECT_EQ(l.size(), 10u);
    EXPECT_DOUBLE_EQ(l.max(), fromMHz(800));
    EXPECT_DOUBLE_EQ(l.min(), fromMHz(206));
    // 66 MHz steps.
    for (std::size_t i = 1; i < l.size(); ++i)
        EXPECT_NEAR(l.at(i) - l.at(i - 1), fromMHz(66), 1.0);
}

TEST(FrequencyLadder, SortsUnorderedInput)
{
    const FrequencyLadder l(std::vector<Hertz>{3e9, 1e9, 2e9});
    EXPECT_DOUBLE_EQ(l.at(0), 1e9);
    EXPECT_DOUBLE_EQ(l.at(2), 3e9);
}

TEST(FrequencyLadder, ClosestIndexSnapsCorrectly)
{
    const FrequencyLadder l = FrequencyLadder::coreDefault();
    EXPECT_EQ(l.closestIndex(fromGHz(4.0)), 9u);
    EXPECT_EQ(l.closestIndex(fromGHz(2.2)), 0u);
    EXPECT_EQ(l.closestIndex(fromGHz(2.29)), 0u);
    EXPECT_EQ(l.closestIndex(fromGHz(2.31)), 1u);
    EXPECT_EQ(l.closestIndex(fromGHz(5.0)), 9u);
    EXPECT_EQ(l.closestIndex(fromGHz(1.0)), 0u);
}

TEST(FrequencyLadder, ClosestToRatioIsLine16Mapping)
{
    const FrequencyLadder l = FrequencyLadder::coreDefault();
    // ratio 1 -> max level; ratio 0.55 -> 2.2/4.0 -> level 0.
    EXPECT_EQ(l.closestToRatio(1.0), 9u);
    EXPECT_EQ(l.closestToRatio(0.55), 0u);
    // Mid ratio lands mid-ladder.
    const std::size_t mid = l.closestToRatio(0.775);
    EXPECT_GE(mid, 3u);
    EXPECT_LE(mid, 6u);
}

TEST(FrequencyLadder, RatiosAscendAndEndAtOne)
{
    const FrequencyLadder l = FrequencyLadder::memoryDefault();
    const std::vector<double> r = l.ratios();
    ASSERT_EQ(r.size(), l.size());
    EXPECT_DOUBLE_EQ(r.back(), 1.0);
    for (std::size_t i = 1; i < r.size(); ++i)
        EXPECT_GT(r[i], r[i - 1]);
    EXPECT_NEAR(r.front(), 206.0 / 800.0, 1e-12);
}

TEST(FrequencyLadder, RejectsBadInput)
{
    EXPECT_THROW(FrequencyLadder(std::vector<Hertz>{}), FatalError);
    EXPECT_THROW(FrequencyLadder(std::vector<Hertz>{-1.0, 2.0}),
                 FatalError);
    EXPECT_THROW(FrequencyLadder::evenlySpaced(2e9, 1e9, 5),
                 FatalError);
}

TEST(FrequencyLadder, SingleLevelLadder)
{
    const FrequencyLadder l = FrequencyLadder::evenlySpaced(1e9, 2e9, 1);
    EXPECT_EQ(l.size(), 1u);
    EXPECT_DOUBLE_EQ(l.max(), 2e9);
    EXPECT_EQ(l.maxIndex(), 0u);
}

TEST(VoltageCurve, CoreDefaultEndpoints)
{
    const VoltageCurve v = VoltageCurve::coreDefault();
    EXPECT_DOUBLE_EQ(v.at(fromGHz(2.2)), 0.65);
    EXPECT_DOUBLE_EQ(v.at(fromGHz(4.0)), 1.2);
    // Clamped outside the range.
    EXPECT_DOUBLE_EQ(v.at(fromGHz(1.0)), 0.65);
    EXPECT_DOUBLE_EQ(v.at(fromGHz(5.0)), 1.2);
}

TEST(VoltageCurve, LinearInterpolation)
{
    const VoltageCurve v = VoltageCurve::coreDefault();
    const Volts mid = v.at(fromGHz(3.1));
    EXPECT_NEAR(mid, 0.65 + 0.5 * (1.2 - 0.65), 1e-12);
}

TEST(VoltageCurve, SquaredRatioAtExtremes)
{
    const VoltageCurve v = VoltageCurve::coreDefault();
    EXPECT_DOUBLE_EQ(v.squaredRatio(fromGHz(4.0)), 1.0);
    const double lo = v.squaredRatio(fromGHz(2.2));
    EXPECT_NEAR(lo, (0.65 / 1.2) * (0.65 / 1.2), 1e-12);
}

TEST(VoltageCurve, EffectiveAlphaWithinPaperRange)
{
    // V^2 * f over the default curve yields an effective power-law
    // exponent between 2 and ~3.2 — the paper's "alpha typically
    // between 2 and 3".
    const VoltageCurve v = VoltageCurve::coreDefault();
    const double x = 2.2 / 4.0;
    const double p_ratio = v.squaredRatio(fromGHz(2.2)) * x;
    const double alpha = std::log(p_ratio) / std::log(x);
    EXPECT_GT(alpha, 2.0);
    EXPECT_LT(alpha, 3.3);
}

TEST(VoltageCurve, RejectsDegenerateRange)
{
    EXPECT_THROW(VoltageCurve(2e9, 1e9, 0.65, 1.2), FatalError);
    EXPECT_THROW(VoltageCurve(1e9, 2e9, 1.2, 0.65), FatalError);
}

} // namespace
} // namespace fastcap
