/**
 * @file
 * Tests for the discrete-event engine: ordering, tie-breaking, time
 * advancement and error handling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3e-9, [&] { order.push_back(3); });
    q.schedule(1e-9, [&] { order.push_back(1); });
    q.schedule(2e-9, [&] { order.push_back(2); });
    q.runUntil(1e-6);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1e-9, [&order, i] { order.push_back(i); });
    q.runUntil(1e-6);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilAdvancesToBoundary)
{
    EventQueue q;
    q.schedule(5e-9, [] {});
    q.runUntil(100e-9);
    EXPECT_DOUBLE_EQ(q.now(), 100e-9);
}

TEST(EventQueue, EventsBeyondBoundaryStayPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(50e-9, [&] { ++fired; });
    q.schedule(150e-9, [&] { ++fired; });
    q.runUntil(100e-9);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(200e-9);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents)
{
    EventQueue q;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 10)
            q.scheduleAfter(1e-9, step);
    };
    q.schedule(0.0, step);
    q.runUntil(1e-6);
    EXPECT_EQ(chain, 10);
    EXPECT_EQ(q.processed(), 10u);
}

TEST(EventQueue, SelfSchedulingRespectsBoundary)
{
    // An event chain must not run past the runUntil() horizon: the
    // window sampling of the epoch loop depends on this.
    EventQueue q;
    int count = 0;
    std::function<void()> step = [&] {
        ++count;
        q.scheduleAfter(10e-9, step);
    };
    q.schedule(0.0, step);
    q.runUntil(95e-9);
    EXPECT_EQ(count, 10); // t = 0, 10, ..., 90
    EXPECT_DOUBLE_EQ(q.now(), 95e-9);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(10e-9, [] {});
    q.runUntil(20e-9);
    EXPECT_THROW(q.schedule(5e-9, [] {}), PanicError);
}

TEST(EventQueue, ScheduleAtNowIsAllowed)
{
    EventQueue q;
    q.runUntil(10e-9);
    int fired = 0;
    q.schedule(10e-9, [&] { ++fired; });
    q.runUntil(10e-9);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepRunsSingleEvent)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1e-9, [&] { ++fired; });
    q.schedule(2e-9, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, FifoTieBreakSurvivesHeapChurn)
{
    // Regression: extraction must preserve scheduling order for
    // same-timestamp events even after the heap has been grown,
    // drained and re-grown (entries sifted through many positions).
    EventQueue q;
    std::vector<int> order;

    // Churn phase: a spread of timestamps, partially drained.
    for (int i = 0; i < 32; ++i)
        q.schedule((32 - i) * 1e-9, [] {});
    q.runUntil(16e-9);

    // Interleave equal-time events with earlier and later ones.
    for (int i = 0; i < 8; ++i) {
        q.schedule(100e-9, [&order, i] { order.push_back(i); });
        q.schedule(90e-9 + i * 1e-9, [] {});
        q.schedule(110e-9, [&order, i] { order.push_back(100 + i); });
    }
    q.runUntil(1e-6);

    EXPECT_EQ(order,
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 100, 101,
                                102, 103, 104, 105, 106, 107}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CallbackStateSurvivesExtraction)
{
    // The extraction pattern must move the callback out of the heap
    // before popping: a callback that schedules into the same queue
    // while the heap reallocates must still run with its captures
    // intact.
    EventQueue q;
    std::vector<int> seen;
    auto big = std::vector<int>(64, 7); // force non-trivial capture
    q.schedule(1e-9, [&q, &seen, big] {
        seen.push_back(big[0]);
        for (int i = 0; i < 16; ++i)
            q.scheduleAfter((i + 1) * 1e-9, [&seen, i] {
                seen.push_back(i);
            });
    });
    q.runUntil(1e-6);
    ASSERT_EQ(seen.size(), 17u);
    EXPECT_EQ(seen[0], 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i) + 1], i);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1e-9, [&] { ++fired; });
    q.clear();
    q.runUntil(1e-6);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ProcessedCountsAcrossRuns)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(i * 1e-9, [] {});
    q.runUntil(3e-9);
    q.runUntil(10e-9);
    EXPECT_EQ(q.processed(), 7u);
}

} // namespace
} // namespace fastcap
