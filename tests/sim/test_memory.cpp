/**
 * @file
 * Tests for the memory subsystem: bank queues, the FCFS bus, transfer
 * blocking (the paper's Figure 1 property), counters (Q, U, s_m) and
 * memory DVFS.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_bank.hpp"
#include "sim/memory_bus.hpp"
#include "sim/memory_controller.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace {

Request
makeRead(int core)
{
    Request r;
    r.type = RequestType::Read;
    r.coreId = core;
    return r;
}

TEST(MemoryBank, EnqueueReportsDepthIncludingService)
{
    MemoryBank bank(0);
    EXPECT_EQ(bank.enqueue(makeRead(0)), 1u);
    EXPECT_EQ(bank.enqueue(makeRead(1)), 2u);
    ASSERT_TRUE(bank.canStart());
    bank.startService(0.0);
    // One serving + one waiting.
    EXPECT_EQ(bank.depth(), 2u);
    EXPECT_EQ(bank.enqueue(makeRead(2)), 3u);
}

TEST(MemoryBank, TransferBlockingLifecycle)
{
    MemoryBank bank(3);
    bank.enqueue(makeRead(0));
    bank.enqueue(makeRead(1));

    ASSERT_TRUE(bank.canStart());
    bank.startService(0.0);
    EXPECT_FALSE(bank.canStart()) << "busy bank cannot start another";

    const Request done = bank.finishService(10e-9);
    EXPECT_EQ(done.coreId, 0);
    // Transfer blocking: service finished, but the bank may NOT start
    // the next request until its transfer completes.
    EXPECT_TRUE(bank.blocked());
    EXPECT_FALSE(bank.canStart());

    bank.unblock();
    EXPECT_TRUE(bank.canStart());
    bank.startService(20e-9);
    const Request second = bank.finishService(30e-9);
    EXPECT_EQ(second.coreId, 1);
}

TEST(MemoryBank, BusyTimeAccumulates)
{
    MemoryBank bank(0);
    bank.enqueue(makeRead(0));
    bank.startService(5e-9);
    bank.finishService(25e-9);
    EXPECT_NEAR(bank.busyTime(), 20e-9, 1e-15);
    bank.resetBusyTime();
    EXPECT_DOUBLE_EQ(bank.busyTime(), 0.0);
}

TEST(MemoryBus, FcfsOrderAndUSample)
{
    MemoryBus bus;
    EXPECT_TRUE(bus.idle());
    // U sample: queue length after insertion including the arrival.
    EXPECT_EQ(bus.enqueue(makeRead(0)), 1u);
    EXPECT_EQ(bus.enqueue(makeRead(1)), 2u);

    ASSERT_TRUE(bus.canStart());
    Request first = bus.startTransfer(0.0);
    EXPECT_EQ(first.coreId, 0);
    EXPECT_FALSE(bus.canStart()) << "single transfer at a time";
    bus.finishTransfer(5e-9);
    Request second = bus.startTransfer(5e-9);
    EXPECT_EQ(second.coreId, 1);
    bus.finishTransfer(10e-9);
    EXPECT_NEAR(bus.busyTime(), 10e-9, 1e-15);
}

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
    {
        cfg = SimConfig::defaultConfig(16);
        cfg.banksPerController = 4;
        ctrl = std::make_unique<MemoryController>(0, cfg, queue,
                                                  Rng(42));
        ctrl->deliveryCallback(
            [this](const Request &req, Seconds now) {
                delivered.push_back({req.coreId, now});
            });
    }

    SimConfig cfg;
    EventQueue queue;
    std::unique_ptr<MemoryController> ctrl;
    std::vector<std::pair<int, Seconds>> delivered;
};

TEST_F(ControllerTest, SingleRequestRoundTrip)
{
    ctrl->submit(makeRead(7));
    queue.runUntil(1e-6);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].first, 7);
    // Response = bank service + bus transfer; bounded sensibly.
    EXPECT_GE(delivered[0].second, cfg.bankRowHitTime);
    EXPECT_LE(delivered[0].second,
              cfg.bankRowMissTime + 10 * ctrl->transferTime());
    EXPECT_EQ(ctrl->inFlight(), 0u);
}

TEST_F(ControllerTest, AllRequestsEventuallyComplete)
{
    for (int i = 0; i < 200; ++i)
        ctrl->submit(makeRead(i % 16));
    queue.runUntil(1e-3);
    EXPECT_EQ(delivered.size(), 200u);
    EXPECT_EQ(ctrl->inFlight(), 0u);
    EXPECT_EQ(ctrl->counters().reads, 200u);
}

TEST_F(ControllerTest, WritebacksOccupyButDoNotDeliver)
{
    Request wb;
    wb.type = RequestType::Writeback;
    wb.coreId = 3;
    ctrl->submit(wb);
    ctrl->submit(makeRead(4));
    queue.runUntil(1e-3);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].first, 4);
    EXPECT_EQ(ctrl->counters().writebacks, 1u);
    EXPECT_EQ(ctrl->counters().reads, 1u);
    EXPECT_EQ(ctrl->inFlight(), 0u);
}

TEST_F(ControllerTest, QSamplesGrowWithBacklog)
{
    // Dump many requests at once: later arrivals see deeper queues.
    for (int i = 0; i < 64; ++i)
        ctrl->submit(makeRead(0));
    const double q = ctrl->counters().meanQ();
    EXPECT_GT(q, 2.0) << "burst arrivals must observe queueing";
    queue.runUntil(1e-3);
}

TEST_F(ControllerTest, ResponseTimeGrowsUnderLoad)
{
    // Single isolated request.
    ctrl->submit(makeRead(0));
    queue.runUntil(1e-3);
    const Seconds lone = delivered[0].second;

    // Fresh burst: last delivery far later than the isolated one.
    delivered.clear();
    ctrl->resetCounters();
    for (int i = 0; i < 64; ++i)
        ctrl->submit(makeRead(1));
    const Seconds start = queue.now();
    queue.runUntil(start + 1e-3);
    ASSERT_EQ(delivered.size(), 64u);
    EXPECT_GT(delivered.back().second - start, 3.0 * lone);
    EXPECT_GT(ctrl->counters().meanResponse(), lone);
}

TEST_F(ControllerTest, TransferTimeScalesWithFrequency)
{
    const Seconds fast = ctrl->transferTime();
    ctrl->busFrequency(cfg.memLadder.min());
    const Seconds slow = ctrl->transferTime();
    EXPECT_NEAR(slow / fast, cfg.memLadder.max() / cfg.memLadder.min(),
                1e-9);
}

TEST_F(ControllerTest, LowerFrequencyReducesThroughputUnderSaturation)
{
    // Use a single-channel bus (6 cycles per line) so the bus — not
    // the banks — is the bottleneck, then saturate and compare
    // completions in a fixed window at max vs min frequency.
    SimConfig narrow = cfg;
    narrow.busBurstCycles = 6.0;
    EventQueue q2;
    MemoryController bus_bound(1, narrow, q2, Rng(7));
    std::size_t done = 0;
    bus_bound.deliveryCallback(
        [&done](const Request &, Seconds) { ++done; });

    for (int i = 0; i < 2000; ++i)
        bus_bound.submit(makeRead(0));
    q2.runUntil(q2.now() + 20e-6);
    const std::size_t fast_done = done;

    EventQueue q3;
    MemoryController slow_ctl(2, narrow, q3, Rng(7));
    done = 0;
    slow_ctl.deliveryCallback(
        [&done](const Request &, Seconds) { ++done; });
    slow_ctl.busFrequency(narrow.memLadder.min());
    for (int i = 0; i < 2000; ++i)
        slow_ctl.submit(makeRead(0));
    q3.runUntil(q3.now() + 20e-6);
    const std::size_t slow_done = done;

    EXPECT_LT(slow_done, fast_done);
    EXPECT_GT(slow_done, 0u);
}

TEST_F(ControllerTest, CountersResetPreservesInFlight)
{
    for (int i = 0; i < 10; ++i)
        ctrl->submit(makeRead(0));
    const std::uint64_t inflight = ctrl->inFlight();
    ctrl->resetCounters();
    EXPECT_EQ(ctrl->inFlight(), inflight)
        << "reset clears measurements, not queue state";
    EXPECT_EQ(ctrl->counters().reads, 0u);
    queue.runUntil(1e-3);
    EXPECT_EQ(ctrl->inFlight(), 0u);
}

TEST_F(ControllerTest, ServiceTimesWithinConfiguredBounds)
{
    for (int i = 0; i < 100; ++i)
        ctrl->submit(makeRead(0));
    queue.runUntil(1e-3);
    const auto &c = ctrl->finalizeWindow();
    const Seconds sm = c.meanServiceTime(0.0);
    EXPECT_GE(sm, cfg.bankRowHitTime);
    EXPECT_LE(sm, cfg.bankRowMissTime);
    EXPECT_GT(c.bankBusyTime, 0.0);
    EXPECT_GT(c.busBusyTime, 0.0);
}

} // namespace
} // namespace fastcap
