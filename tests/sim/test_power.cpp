/**
 * @file
 * Tests for the ground-truth power models: V^2*f scaling, effective
 * exponents within the paper's ranges, and energy accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/config.hpp"
#include "sim/dvfs.hpp"
#include "sim/power.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace fastcap {
namespace {

class CorePowerTest : public ::testing::Test
{
  protected:
    CorePowerTest()
        : curve(VoltageCurve::coreDefault()),
          model(CorePowerConfig{}, curve, fromGHz(4.0))
    {}

    VoltageCurve curve;
    CorePowerModel model;
};

TEST_F(CorePowerTest, MaxFrequencyFullActivityIsDynMax)
{
    EXPECT_NEAR(model.dynamicPower(fromGHz(4.0), 1.0),
                CorePowerConfig{}.dynMax, 1e-9);
}

TEST_F(CorePowerTest, ActivityScalesLinearly)
{
    const Watts full = model.dynamicPower(fromGHz(3.0), 1.0);
    const Watts half = model.dynamicPower(fromGHz(3.0), 0.5);
    EXPECT_NEAR(half, 0.5 * full, 1e-12);
}

TEST_F(CorePowerTest, MonotoneInFrequency)
{
    const FrequencyLadder l = FrequencyLadder::coreDefault();
    Watts prev = 0.0;
    for (std::size_t i = 0; i < l.size(); ++i) {
        const Watts p = model.dynamicPower(l.at(i), 1.0);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST_F(CorePowerTest, EffectiveAlphaInPaperRange)
{
    // Fit P(x) ~ x^alpha between the ladder extremes.
    const double x = 2.2 / 4.0;
    const double ratio = model.dynamicPower(fromGHz(2.2), 1.0) /
        model.dynamicPower(fromGHz(4.0), 1.0);
    const double alpha = std::log(ratio) / std::log(x);
    EXPECT_GE(alpha, 2.0);
    EXPECT_LE(alpha, 3.3);
}

TEST_F(CorePowerTest, WindowEnergyDecomposition)
{
    // 60% busy, 40% stalled over 100 us.
    const Seconds w = 100e-6;
    const Joules e =
        model.windowEnergy(fromGHz(4.0), 1.0, 0.6 * w, 0.4 * w, w);
    const CorePowerConfig cfg;
    const Joules expect = cfg.dynMax * 0.6 * w +
        cfg.dynMax * cfg.stallFactor * 0.4 * w + cfg.staticPower * w;
    EXPECT_NEAR(e, expect, 1e-15);
}

TEST_F(CorePowerTest, IdleWindowBurnsStaticOnly)
{
    const Seconds w = 1e-3;
    const Joules e = model.windowEnergy(fromGHz(2.2), 0.8, 0.0, 0.0, w);
    EXPECT_NEAR(e, CorePowerConfig{}.staticPower * w, 1e-15);
}

TEST_F(CorePowerTest, PeakIsDynPlusStatic)
{
    const CorePowerConfig cfg;
    EXPECT_NEAR(model.peakPower(), cfg.dynMax + cfg.staticPower, 1e-12);
}

class MemPowerTest : public ::testing::Test
{
  protected:
    MemPowerTest()
        : curve(VoltageCurve::memoryControllerDefault()),
          model(MemoryPowerConfig{}, 1.0, curve, fromMHz(800))
    {}

    VoltageCurve curve;
    MemoryPowerModel model;
};

TEST_F(MemPowerTest, FrequencyPowerNearlyLinear)
{
    // Eq. 3's beta ~ 1: the frequency-scaled power at half frequency
    // should be a bit under half of max (MC's V^2 term bends it).
    const Watts full = model.frequencyPower(fromMHz(800));
    const Watts half = model.frequencyPower(fromMHz(400));
    EXPECT_LT(half, 0.55 * full);
    EXPECT_GT(half, 0.3 * full);

    const double beta = std::log(half / full) / std::log(0.5);
    EXPECT_GE(beta, 0.9);
    EXPECT_LE(beta, 1.8);
}

TEST_F(MemPowerTest, AccessEnergyIndependentOfFrequency)
{
    const Seconds w = 100e-6;
    const Joules fast = model.windowEnergy(fromMHz(800), 1000, w);
    const Joules slow = model.windowEnergy(fromMHz(206), 1000, w);
    const MemoryPowerConfig cfg;
    // Same access count: the difference is only frequency power.
    const Joules diff_expect =
        (model.frequencyPower(fromMHz(800)) -
         model.frequencyPower(fromMHz(206))) * w;
    EXPECT_NEAR(fast - slow, diff_expect, 1e-15);
    EXPECT_GT(fast, cfg.accessEnergy * 1000);
}

TEST_F(MemPowerTest, ShareSplitsStaticAndInterface)
{
    MemoryPowerModel quarter(MemoryPowerConfig{}, 0.25, curve,
                             fromMHz(800));
    EXPECT_NEAR(quarter.staticPower(), model.staticPower() * 0.25,
                1e-12);
    EXPECT_NEAR(quarter.frequencyPower(fromMHz(800)),
                model.frequencyPower(fromMHz(800)) * 0.25, 1e-12);
}

TEST_F(MemPowerTest, InvalidShareIsFatal)
{
    EXPECT_THROW(MemoryPowerModel(MemoryPowerConfig{}, 0.0, curve,
                                  fromMHz(800)),
                 FatalError);
    EXPECT_THROW(MemoryPowerModel(MemoryPowerConfig{}, 1.5, curve,
                                  fromMHz(800)),
                 FatalError);
}

TEST_F(MemPowerTest, PeakUsesAccessRate)
{
    const MemoryPowerConfig cfg;
    const double rate = 500e6;
    EXPECT_NEAR(model.peakPower(rate),
                cfg.accessEnergy * rate +
                    model.frequencyPower(fromMHz(800)) +
                    cfg.staticPower,
                1e-9);
}

TEST(SystemPowerSplit, RoughlyMatchesPaperShares)
{
    // Paper: at max frequencies CPU ~60%, memory ~30%, other ~10%.
    // Check the nameplate decomposition for the 16-core default.
    const SimConfig cfg = SimConfig::defaultConfig(16);
    const double core_peak = 16.0 *
        (cfg.corePower.dynMax + cfg.corePower.staticPower);
    // Peak sustainable access rate: one line per transfer time.
    const double mem_peak = cfg.memPower.accessEnergy *
        (cfg.memLadder.max() / cfg.busBurstCycles) +
        cfg.memPower.interfaceMax + cfg.memPower.mcMax +
        cfg.memPower.staticPower;
    const double total = core_peak + mem_peak + cfg.backgroundPower;
    EXPECT_NEAR(core_peak / total, 0.60, 0.08);
    EXPECT_NEAR(mem_peak / total, 0.30, 0.08);
    EXPECT_NEAR(cfg.backgroundPower / total, 0.10, 0.04);
}

} // namespace
} // namespace fastcap
