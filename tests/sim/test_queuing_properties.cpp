/**
 * @file
 * Queuing-theoretic property tests on the simulated memory subsystem:
 * Little's law, response-time monotonicity in load and frequency, and
 * the consistency of the Q/U/s_m counters FastCap consumes with the
 * directly measured response time (validating Eq. 1 in the regime the
 * paper uses it).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_controller.hpp"
#include "util/rng.hpp"

namespace fastcap {
namespace {

/** Open-loop driver: Poisson-ish arrivals at a fixed rate. */
struct OpenLoop
{
    OpenLoop(double rate, SimConfig config, std::uint64_t seed = 9)
        : cfg(std::move(config)), ctrl(0, cfg, queue, Rng(seed)),
          rng(seed ^ 0xabcdef), arrivalGap(1.0 / rate)
    {
        ctrl.deliveryCallback([this](const Request &req, Seconds now) {
            responses.push_back(now - req.issueTime);
        });
    }

    void
    run(Seconds duration, int core_id = 0)
    {
        const Seconds t_end = queue.now() + duration;
        Seconds t = queue.now();
        while (t < t_end) {
            t += rng.exponential(arrivalGap);
            const Seconds when = t;
            queue.schedule(when, [this, core_id, when] {
                Request r;
                r.type = RequestType::Read;
                r.coreId = core_id;
                r.issueTime = when;
                ctrl.submit(std::move(r));
            });
        }
        queue.runUntil(t_end);
    }

    double
    meanResponse() const
    {
        double acc = 0.0;
        for (Seconds r : responses)
            acc += r;
        return responses.empty()
            ? 0.0
            : acc / static_cast<double>(responses.size());
    }

    SimConfig cfg;
    EventQueue queue;
    MemoryController ctrl;
    Rng rng;
    Seconds arrivalGap;
    std::vector<Seconds> responses;
};

SimConfig
memConfig()
{
    SimConfig cfg = SimConfig::defaultConfig(16);
    cfg.banksPerController = 8;
    return cfg;
}

TEST(QueuingProperties, ResponseMonotoneInLoad)
{
    // Heavier offered load can only increase the mean response time.
    double prev = 0.0;
    for (double rate : {20e6, 80e6, 200e6, 350e6}) {
        OpenLoop sys(rate, memConfig());
        sys.run(400e-6);
        ASSERT_GT(sys.responses.size(), 100u) << rate;
        const double r = sys.meanResponse();
        EXPECT_GE(r, prev * 0.95) << "rate " << rate;
        prev = std::max(prev, r);
    }
}

TEST(QueuingProperties, ResponseMonotoneInMemoryFrequency)
{
    // At fixed load, lower memory frequency -> higher response time
    // (monotone, and dramatic once the slow bus saturates).
    double prev = 0.0;
    for (std::size_t level : {9u, 5u, 0u}) {
        OpenLoop sys(150e6, memConfig());
        sys.ctrl.busFrequency(sys.cfg.memLadder.at(level));
        sys.run(400e-6);
        const double r = sys.meanResponse();
        EXPECT_GE(r, prev * 0.95) << "level " << level;
        prev = std::max(prev, r);
    }
    // Saturated minimum-frequency response far exceeds max-frequency.
    OpenLoop fast(150e6, memConfig());
    fast.run(400e-6);
    OpenLoop slow(150e6, memConfig());
    slow.ctrl.busFrequency(slow.cfg.memLadder.min());
    slow.run(400e-6);
    EXPECT_GT(slow.meanResponse(), 3.0 * fast.meanResponse());
}

TEST(QueuingProperties, LittlesLawAtTheBanks)
{
    // L = lambda * W: the time-averaged bank population equals the
    // arrival rate times the mean bank residency. We check it loosely
    // via the counters: mean response x throughput ~ mean in-flight.
    OpenLoop sys(120e6, memConfig());
    sys.run(600e-6);
    const auto &c = sys.ctrl.finalizeWindow();
    ASSERT_GT(c.responseCount, 1000u);

    const double throughput =
        static_cast<double>(c.responseCount) / 600e-6;
    const double mean_resp = c.responseSum /
        static_cast<double>(c.responseCount);
    const double l_implied = throughput * mean_resp;
    // Mean population sampled at arrivals (Q across banks) is a
    // biased but close estimator at moderate load.
    const double q_total = c.meanQ() *
        1.0; // arrivals see one bank; population spreads over banks
    EXPECT_GT(l_implied, 0.3 * q_total);
    EXPECT_LT(l_implied, 40.0);
}

TEST(QueuingProperties, Eq1TracksMeasuredResponseBelowSaturation)
{
    // The paper's Eq. 1, R ~ Q (s_m + U s_b), evaluated from the
    // measured counters must land within ~2x of the directly
    // measured mean response in the moderate-load regime.
    for (double rate : {60e6, 150e6, 300e6}) {
        OpenLoop sys(rate, memConfig());
        sys.run(500e-6);
        const auto &c = sys.ctrl.finalizeWindow();
        const double sb = sys.ctrl.transferTime();
        const double eq1 =
            c.meanQ() * (c.meanServiceTime(35e-9) + c.meanU() * sb);
        const double measured = c.meanResponse();
        ASSERT_GT(measured, 0.0);
        EXPECT_GT(eq1, 0.4 * measured) << "rate " << rate;
        EXPECT_LT(eq1, 2.5 * measured) << "rate " << rate;
    }
}

TEST(QueuingProperties, BusUtilisationMatchesOfferedLoad)
{
    // Below saturation, bus busy time ~= completed transfers x s_b.
    OpenLoop sys(200e6, memConfig());
    sys.run(500e-6);
    const auto &c = sys.ctrl.finalizeWindow();
    const double expected =
        static_cast<double>(c.responseCount) * sys.ctrl.transferTime();
    EXPECT_NEAR(c.busBusyTime, expected, 0.1 * expected);
}

TEST(QueuingProperties, ThroughputCapsAtBusBandwidth)
{
    // Offered load far above capacity: completions bounded by
    // 1 / s_b within a small tolerance.
    SimConfig cfg = memConfig();
    cfg.banksPerController = 64; // banks are not the constraint
    OpenLoop sys(3e9, cfg);
    sys.run(300e-6);
    const auto &c = sys.ctrl.finalizeWindow();
    const double cap = 300e-6 / sys.ctrl.transferTime();
    EXPECT_LE(static_cast<double>(c.responseCount), cap * 1.02);
    EXPECT_GE(static_cast<double>(c.responseCount), cap * 0.80);
}

} // namespace
} // namespace fastcap
