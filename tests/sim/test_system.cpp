/**
 * @file
 * Tests for the assembled many-core system: window simulation,
 * counters, power accounting, DVFS actuation, multi-controller
 * routing and conservation invariants.
 */

#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

SimConfig
smallConfig(int cores = 4)
{
    SimConfig cfg = SimConfig::defaultConfig(cores);
    cfg.seed = 1234;
    return cfg;
}

TEST(System, RejectsMismatchedAppCount)
{
    SimConfig cfg = smallConfig(4);
    std::vector<AppProfile> apps(3, workloads::spec("gcc"));
    EXPECT_THROW(ManyCoreSystem(cfg, apps), FatalError);
}

TEST(System, WindowProducesActivityOnAllCores)
{
    SimConfig cfg = smallConfig(4);
    ManyCoreSystem sys(cfg, workloads::mix("MID1", 4));
    const WindowStats w = sys.runWindow(fromUs(100));

    EXPECT_DOUBLE_EQ(w.duration, fromUs(100));
    ASSERT_EQ(w.cores.size(), 4u);
    for (const CoreWindowStats &cs : w.cores) {
        EXPECT_GT(cs.counters.instructions, 0u);
        EXPECT_GT(cs.counters.misses, 0u);
        EXPECT_GT(cs.counters.busyTime, 0.0);
        EXPECT_GT(cs.totalPower, 0.0);
    }
    ASSERT_EQ(w.memory.size(), 1u);
    EXPECT_GT(w.memory[0].counters.reads, 0u);
    EXPECT_GT(w.totalPower(), 0.0);
}

TEST(System, BusyPlusStallApproximatesWindow)
{
    SimConfig cfg = smallConfig(4);
    ManyCoreSystem sys(cfg, workloads::mix("MEM1", 4));
    // Warm up, then measure a steady window.
    sys.runWindow(fromUs(50));
    const WindowStats w = sys.runWindow(fromUs(200));
    for (const CoreWindowStats &cs : w.cores) {
        const Seconds covered =
            cs.counters.busyTime + cs.counters.stallTime;
        EXPECT_NEAR(covered / w.duration, 1.0, 0.15)
            << "cores are always thinking or waiting";
    }
}

TEST(System, EnergyMatchesPowerTimesDuration)
{
    SimConfig cfg = smallConfig(4);
    ManyCoreSystem sys(cfg, workloads::mix("MIX1", 4));
    const WindowStats w = sys.runWindow(fromUs(100));
    EXPECT_NEAR(w.totalEnergy, w.totalPower() * w.duration,
                1e-9 * w.totalEnergy);
}

TEST(System, FrequencyActuationIsVisible)
{
    SimConfig cfg = smallConfig(4);
    ManyCoreSystem sys(cfg, workloads::mix("ILP1", 4));
    sys.coreFreqIndex(2, 0);
    EXPECT_EQ(sys.coreFreqIndex(2), 0u);
    sys.memFreqIndex(3);
    EXPECT_EQ(sys.memFreqIndex(), 3u);
    EXPECT_DOUBLE_EQ(sys.memFrequency(), cfg.memLadder.at(3));

    EXPECT_THROW(sys.coreFreqIndex(2, 99), PanicError);
    EXPECT_THROW(sys.memFreqIndex(99), PanicError);
}

TEST(System, LowerCoreFrequencyLowersCorePower)
{
    SimConfig cfg = smallConfig(4);
    ManyCoreSystem sys_hi(cfg, workloads::mix("ILP1", 4));
    const WindowStats hi = sys_hi.runWindow(fromUs(200));

    SimConfig cfg2 = smallConfig(4);
    ManyCoreSystem sys_lo(cfg2, workloads::mix("ILP1", 4));
    for (int i = 0; i < 4; ++i)
        sys_lo.coreFreqIndex(i, 0);
    const WindowStats lo = sys_lo.runWindow(fromUs(200));

    EXPECT_LT(lo.corePowerTotal(), 0.55 * hi.corePowerTotal())
        << "V^2 f scaling must bite for busy cores";
}

TEST(System, LowerMemFrequencyLowersMemPower)
{
    SimConfig cfg = smallConfig(16);
    ManyCoreSystem hi(cfg, workloads::mix("ILP1", 16));
    const WindowStats whi = hi.runWindow(fromUs(200));

    SimConfig cfg2 = smallConfig(16);
    ManyCoreSystem lo(cfg2, workloads::mix("ILP1", 16));
    lo.memFreqIndex(0);
    const WindowStats wlo = lo.runWindow(fromUs(200));

    EXPECT_LT(wlo.memPowerTotal(), whi.memPowerTotal());
}

TEST(System, MemSlowdownHurtsMemBoundThroughput)
{
    SimConfig cfg = smallConfig(16);
    ManyCoreSystem fast(cfg, workloads::mix("MEM1", 16));
    fast.runWindow(fromUs(100)); // warm-up
    const WindowStats wf = fast.runWindow(fromUs(300));

    SimConfig cfg2 = smallConfig(16);
    ManyCoreSystem slow(cfg2, workloads::mix("MEM1", 16));
    slow.memFreqIndex(0);
    slow.runWindow(fromUs(100));
    const WindowStats ws = slow.runWindow(fromUs(300));

    std::uint64_t instr_fast = 0;
    std::uint64_t instr_slow = 0;
    for (int i = 0; i < 16; ++i) {
        instr_fast += wf.cores[i].counters.instructions;
        instr_slow += ws.cores[i].counters.instructions;
    }
    EXPECT_LT(instr_slow, instr_fast)
        << "memory-bound workload must slow with the memory";
}

TEST(System, CoreSlowdownBarelyHurtsMemBound)
{
    // The complementary property: for MEM workloads, core frequency
    // matters much less than memory frequency.
    SimConfig cfg = smallConfig(16);
    ManyCoreSystem fast(cfg, workloads::mix("MEM1", 16));
    fast.runWindow(fromUs(100));
    const WindowStats wf = fast.runWindow(fromUs(300));

    SimConfig cfg2 = smallConfig(16);
    ManyCoreSystem slow(cfg2, workloads::mix("MEM1", 16));
    for (int i = 0; i < 16; ++i)
        slow.coreFreqIndex(i, 0);
    slow.runWindow(fromUs(100));
    const WindowStats ws = slow.runWindow(fromUs(300));

    std::uint64_t instr_fast = 0;
    std::uint64_t instr_slow = 0;
    for (int i = 0; i < 16; ++i) {
        instr_fast += wf.cores[i].counters.instructions;
        instr_slow += ws.cores[i].counters.instructions;
    }
    // Cores at 2.2 GHz (45% slower) should cost well under 45% of
    // throughput on a memory-bound mix.
    EXPECT_GT(static_cast<double>(instr_slow),
              0.6 * static_cast<double>(instr_fast));
}

TEST(System, DeterministicAcrossIdenticalRuns)
{
    SimConfig cfg = smallConfig(8);
    ManyCoreSystem a(cfg, workloads::mix("MIX2", 8));
    ManyCoreSystem b(cfg, workloads::mix("MIX2", 8));
    const WindowStats wa = a.runWindow(fromUs(150));
    const WindowStats wb = b.runWindow(fromUs(150));
    ASSERT_EQ(wa.cores.size(), wb.cores.size());
    for (std::size_t i = 0; i < wa.cores.size(); ++i) {
        EXPECT_EQ(wa.cores[i].counters.instructions,
                  wb.cores[i].counters.instructions);
        EXPECT_EQ(wa.cores[i].counters.misses,
                  wb.cores[i].counters.misses);
    }
    EXPECT_EQ(a.eventsProcessed(), b.eventsProcessed());
    EXPECT_DOUBLE_EQ(wa.totalEnergy, wb.totalEnergy);
}

TEST(System, MultiControllerUniformSpreadsLoad)
{
    SimConfig cfg = smallConfig(16);
    cfg.numControllers = 4;
    cfg.banksPerController = 8;
    cfg.busBurstCycles = 6.0; // one channel per controller
    ManyCoreSystem sys(cfg, workloads::mix("MEM2", 16));
    const WindowStats w = sys.runWindow(fromUs(300));
    ASSERT_EQ(w.memory.size(), 4u);
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (const MemWindowStats &m : w.memory) {
        lo = std::min(lo, m.counters.reads);
        hi = std::max(hi, m.counters.reads);
    }
    EXPECT_GT(lo, 0u);
    EXPECT_LT(static_cast<double>(hi),
              2.0 * static_cast<double>(lo))
        << "uniform interleaving must not skew heavily";
}

TEST(System, MultiControllerSkewConcentratesLoad)
{
    SimConfig cfg = smallConfig(16);
    cfg.numControllers = 4;
    cfg.banksPerController = 8;
    cfg.busBurstCycles = 6.0;
    cfg.interleave = InterleaveMode::Skewed;
    cfg.skewHotFraction = 0.7;
    ManyCoreSystem sys(cfg, workloads::mix("MEM2", 16));
    const WindowStats w = sys.runWindow(fromUs(300));
    ASSERT_EQ(w.memory.size(), 4u);
    const double hot = static_cast<double>(w.memory[0].counters.reads);
    double cold = 0.0;
    for (std::size_t k = 1; k < 4; ++k)
        cold += static_cast<double>(w.memory[k].counters.reads);
    EXPECT_GT(hot, 1.2 * cold / 3.0 * 3.0)
        << "hot controller must dominate";

    // Access-probability matrix reflects the skew.
    const auto &probs = sys.accessProbabilities(0);
    EXPECT_NEAR(probs[0], 0.7, 1e-12);
    EXPECT_NEAR(probs[1], 0.1, 1e-12);
}

TEST(System, NameplatePeakAboveObservedWindowPower)
{
    SimConfig cfg = smallConfig(16);
    ManyCoreSystem sys(cfg, workloads::mix("ILP1", 16));
    const WindowStats w = sys.runWindow(fromUs(200));
    EXPECT_GT(sys.nameplatePeakPower(), w.totalPower());
}

TEST(System, InFlightRequestsSettleWhenDrained)
{
    SimConfig cfg = smallConfig(4);
    ManyCoreSystem sys(cfg, workloads::mix("MEM1", 4));
    sys.runWindow(fromUs(100));
    // In-flight is bounded by outstanding core misses + writebacks in
    // queues; never negative or runaway.
    EXPECT_LT(sys.memoryInFlight(), 10000u);
}

} // namespace
} // namespace fastcap
