# Telemetry observe-only gate, process level: the sim and cluster
# CLIs must print byte-identical result output with and without
# --telemetry. Catches any instrumentation that leaks back into the
# simulation — including reads the R8 lint heuristic cannot resolve
# (chained temporaries).
#
# Expected -D variables:
#   SIM      path to the fastcap_sim executable
#   CLUSTER  path to the fastcap_cluster executable
#   OUTDIR   scratch directory

set(sim_common
  --workload MIX1 --policy FastCap --cores 8 --budget 0.6
  --instructions 2e6 --epoch-csv)

foreach(mode off on)
  if(mode STREQUAL "on")
    set(extra --telemetry)
  else()
    set(extra)
  endif()
  execute_process(
    COMMAND ${SIM} ${sim_common} ${extra}
    RESULT_VARIABLE rc
    OUTPUT_FILE ${OUTDIR}/telemetry_sim_${mode}.txt
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "fastcap_sim (telemetry ${mode}) failed (${rc}):\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${OUTDIR}/telemetry_sim_off.txt ${OUTDIR}/telemetry_sim_on.txt
  RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR
    "fastcap_sim output differs with --telemetry: the metrics layer "
    "is perturbing results")
endif()

# Cluster: the telemetry-on side also steps machines in parallel, so
# one comparison covers both the observe-only and the thread
# determinism contract.
set(cluster_common
  --machines 3 --cores 8 --budget 0.5 --max-epochs 6
  --fail "1@2:4"
  --trace "gen:poisson,rate=150,horizon=0.1,seed=5")

execute_process(
  COMMAND ${CLUSTER} ${cluster_common} --machine-threads 1
    --csv ${OUTDIR}/telemetry_cluster_off.csv
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "fastcap_cluster (telemetry off) failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND ${CLUSTER} ${cluster_common} --machine-threads 4 --telemetry
    --csv ${OUTDIR}/telemetry_cluster_on.csv
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "fastcap_cluster (telemetry on) failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${OUTDIR}/telemetry_cluster_off.csv
    ${OUTDIR}/telemetry_cluster_on.csv
  RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR
    "fastcap_cluster CSV differs with --telemetry: the metrics layer "
    "is perturbing rack results")
endif()
