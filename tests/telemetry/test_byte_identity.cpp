/**
 * @file
 * The observe-only contract, enforced end to end in-process: sweep
 * and cluster result CSVs are byte-identical with telemetry enabled
 * and disabled, at every shard / thread / machine-thread count. This
 * is the library-level counterpart of the telemetry_cli_cmp gate.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "harness/sweep.hpp"
#include "telemetry/registry.hpp"

using namespace fastcap;

namespace {

std::string
sweepCsv(bool telemetry_on, int shards, int shard_threads)
{
    telemetry::setEnabled(telemetry_on);
    SweepGrid grid;
    grid.configs = SweepGrid::configsForCores({16});
    grid.workloads = {"MIX1"};
    grid.policies = {"FastCap"};
    grid.budgetFractions = {0.6};
    grid.targetInstructions = 1e6;
    grid.shards = shards;
    grid.shardThreads = shard_threads;
    SweepRunner runner(grid, 2);
    const SweepResult res = runner.run();
    telemetry::setEnabled(false);
    return res.csvString();
}

std::string
clusterCsv(bool telemetry_on, int machine_threads)
{
    telemetry::setEnabled(telemetry_on);
    ClusterConfig cfg;
    cfg.machines = 3;
    cfg.machine = SimConfig::defaultConfig(8);
    cfg.trace = "gen:poisson,rate=200,horizon=0.1,seed=9";
    cfg.maxEpochs = 5;
    cfg.machineThreads = machine_threads;
    cfg.failures = {{1, 2, 4}};
    Cluster cluster(cfg);
    const ClusterResult res = cluster.run();
    telemetry::setEnabled(false);
    return res.csvString();
}

} // namespace

TEST(TelemetryByteIdentity, SweepAcrossShardsAndThreads)
{
    // Every (telemetry, shards, threads) combination must emit the
    // same bytes: telemetry is observe-only AND the engine is
    // partition-independent, so one reference covers the whole grid.
    const std::string reference = sweepCsv(false, 1, 1);
    ASSERT_FALSE(reference.empty());
    for (const int shards : {1, 16}) {
        for (const int threads : {1, 8}) {
            EXPECT_EQ(sweepCsv(false, shards, threads), reference)
                << "telemetry off, shards " << shards << ", threads "
                << threads;
            EXPECT_EQ(sweepCsv(true, shards, threads), reference)
                << "telemetry ON, shards " << shards << ", threads "
                << threads;
        }
    }
}

TEST(TelemetryByteIdentity, ClusterAcrossMachineThreads)
{
    const std::string reference = clusterCsv(false, 1);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(clusterCsv(true, 1), reference);
    EXPECT_EQ(clusterCsv(true, 4), reference);
    EXPECT_EQ(clusterCsv(false, 4), reference);
}
