/**
 * @file
 * /proc-style introspection: after an instrumented run, the global
 * registry answers the paths the ISSUE's acceptance criteria name —
 * per-core frequency, arbiter grants, solver class counts.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "harness/experiment.hpp"
#include "telemetry/registry.hpp"

using namespace fastcap;
using telemetry::Registry;

namespace {

/** Run a small single-machine experiment against the global registry. */
void
runInstrumentedSim()
{
    telemetry::setEnabled(true);
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.6;
    ecfg.targetInstructions = 5e6;
    // Force the sharded engine so /engine/* instrumentation fires
    // (8 cores would otherwise auto-select the monolithic engine).
    ecfg.shards = 2;
    ecfg.shardThreads = 2;
    const SimConfig scfg = SimConfig::defaultConfig(8);
    runWorkload("MIX1", "FastCap", ecfg, scfg);
    telemetry::setEnabled(false);
}

void
runInstrumentedCluster()
{
    telemetry::setEnabled(true);
    ClusterConfig cfg;
    cfg.machines = 2;
    cfg.machine = SimConfig::defaultConfig(8);
    cfg.maxEpochs = 3;
    Cluster cluster(cfg);
    cluster.run();
    telemetry::setEnabled(false);
}

} // namespace

TEST(Introspect, SolverAndMachinePaths)
{
    Registry::global().resetAll();
    runInstrumentedSim();
    Registry &reg = Registry::global();

    // Solver subtree: non-empty, with a positive solve count.
    const auto solver = reg.query("/solver");
    EXPECT_FALSE(solver.empty());
    const auto solves = reg.query("/solver/solves");
    ASSERT_EQ(solves.size(), 1u);
    EXPECT_GT(std::strtoull(solves[0].second.c_str(), nullptr, 10),
              0u);
    ASSERT_EQ(reg.query("/solver/classes").size(), 1u);

    // Per-core frequency gauges exist and carry a plausible value.
    const auto freq = reg.query("/machine/0/core/0/freq");
    ASSERT_EQ(freq.size(), 1u);
    EXPECT_GT(std::strtod(freq[0].second.c_str(), nullptr), 0.0);
    const auto cores = reg.query("/machine/0/core");
    EXPECT_EQ(cores.size(), 8u);

    // Engine and pool instrumentation fired.
    EXPECT_FALSE(reg.query("/engine/windows").empty());
}

TEST(Introspect, ClusterArbiterPaths)
{
    Registry::global().resetAll();
    runInstrumentedCluster();
    Registry &reg = Registry::global();

    const auto grants = reg.query("/cluster/arbiter/grants");
    ASSERT_EQ(grants.size(), 1u);
    // 2 machines x 3 epochs = 6 grants.
    EXPECT_EQ(grants[0].second, "6");
    const auto rounds = reg.query("/cluster/arbiter/rounds");
    ASSERT_EQ(rounds.size(), 1u);
    EXPECT_EQ(rounds[0].second, "3");
    EXPECT_EQ(reg.query("/cluster/arbiter/grant").size(), 2u);

    // Both machines instrumented their own subtree.
    EXPECT_FALSE(reg.query("/machine/0").empty());
    EXPECT_FALSE(reg.query("/machine/1").empty());
}
