/**
 * @file
 * Metrics-registry semantics: the enabled() gate, commuting writes,
 * kind/path validation, order-invariant merging, and the query tree.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/registry.hpp"
#include "util/logging.hpp"

using namespace fastcap;
using telemetry::Registry;

namespace {

/** Flip telemetry on for one test body, restore on exit. */
struct TelemetryOn
{
    TelemetryOn() { telemetry::setEnabled(true); }
    ~TelemetryOn() { telemetry::setEnabled(false); }
};

} // namespace

TEST(Registry, DisabledWritesAreDropped)
{
    ASSERT_FALSE(telemetry::enabled());
    Registry reg;
    reg.counter("/t/c").add(5);
    reg.gauge("/t/g").set(3.0);
    reg.gauge("/t/g").setMax(7.0);
    reg.histogram("/t/h", {1.0, 10.0}).observe(4.0);
    EXPECT_EQ(reg.counter("/t/c").value(), 0u);
    EXPECT_EQ(reg.gauge("/t/g").value(), 0.0);
    EXPECT_EQ(reg.histogram("/t/h", {1.0, 10.0}).count(), 0u);
}

TEST(Registry, CounterGaugeHistogramSemantics)
{
    TelemetryOn on;
    Registry reg;

    reg.counter("/t/c").add();
    reg.counter("/t/c").add(4);
    EXPECT_EQ(reg.counter("/t/c").value(), 5u);

    reg.gauge("/t/g").set(2.5);
    EXPECT_EQ(reg.gauge("/t/g").value(), 2.5);
    reg.gauge("/t/g").setMax(1.0); // below: no effect
    EXPECT_EQ(reg.gauge("/t/g").value(), 2.5);
    reg.gauge("/t/g").setMax(9.0);
    EXPECT_EQ(reg.gauge("/t/g").value(), 9.0);

    telemetry::Histogram &h = reg.histogram("/t/h", {1.0, 10.0});
    h.observe(0.5);  // <= 1     -> bucket 0
    h.observe(5.0);  // <= 10    -> bucket 1
    h.observe(50.0); // overflow -> bucket 2
    EXPECT_EQ(h.count(), 3u);
    const std::vector<std::uint64_t> b = h.buckets();
    ASSERT_EQ(b.size(), 3u);
    EXPECT_EQ(b[0], 1u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 1u);
}

TEST(Registry, KindAndPathValidation)
{
    Registry reg;
    reg.counter("/t/c");
    EXPECT_THROW(reg.gauge("/t/c"), PanicError);
    EXPECT_THROW(reg.histogram("/t/c", {1.0}), PanicError);

    reg.histogram("/t/h", {1.0, 2.0});
    EXPECT_THROW(reg.histogram("/t/h", {1.0, 3.0}), PanicError);
    EXPECT_THROW(reg.histogram("/t/h2", {}), PanicError);
    EXPECT_THROW(reg.histogram("/t/h3", {2.0, 1.0}), PanicError);

    EXPECT_THROW(reg.counter(""), PanicError);
    EXPECT_THROW(reg.counter("/"), PanicError);
    EXPECT_THROW(reg.counter("no/slash"), PanicError);
    EXPECT_THROW(reg.counter("/trailing/"), PanicError);
    EXPECT_THROW(reg.counter("/a//b"), PanicError);
}

TEST(Registry, ThreadedCommutingWritesAreExact)
{
    TelemetryOn on;
    Registry reg;
    telemetry::Counter &c = reg.counter("/t/c");
    telemetry::Gauge &g = reg.gauge("/t/hwm");

    constexpr int kThreads = 8;
    constexpr int kAdds = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c, &g, t] {
            for (int i = 0; i < kAdds; ++i) {
                c.add();
                g.setMax(static_cast<double>(t * kAdds + i));
            }
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
    EXPECT_EQ(g.value(), static_cast<double>(kThreads * kAdds - 1));
}

TEST(Registry, MergeIsOrderInvariant)
{
    TelemetryOn on;
    // Three "shard" registries with overlapping paths.
    Registry a;
    Registry b;
    Registry c;
    a.counter("/s/events").add(3);
    b.counter("/s/events").add(5);
    c.counter("/s/events").add(7);
    a.gauge("/s/hwm").set(2.0);
    b.gauge("/s/hwm").set(9.0);
    c.gauge("/s/hwm").set(4.0);
    a.histogram("/s/lat", {1.0, 10.0}).observe(0.5);
    b.histogram("/s/lat", {1.0, 10.0}).observe(5.0);
    c.histogram("/s/lat", {1.0, 10.0}).observe(500.0);
    b.counter("/s/only_b").add(1);

    Registry fwd;
    fwd.mergeFrom(a);
    fwd.mergeFrom(b);
    fwd.mergeFrom(c);
    Registry rev;
    rev.mergeFrom(c);
    rev.mergeFrom(b);
    rev.mergeFrom(a);

    EXPECT_EQ(fwd.snapshot(), rev.snapshot());
    EXPECT_EQ(fwd.counter("/s/events").value(), 15u);
    EXPECT_EQ(fwd.gauge("/s/hwm").value(), 9.0);
    EXPECT_EQ(fwd.histogram("/s/lat", {1.0, 10.0}).count(), 3u);
    EXPECT_EQ(fwd.counter("/s/only_b").value(), 1u);
}

TEST(Registry, QuerySelectsExactPathAndSubtree)
{
    TelemetryOn on;
    Registry reg;
    reg.counter("/a/b").add(1);
    reg.counter("/a/b/c").add(2);
    reg.counter("/a/bc").add(3); // sibling, NOT under /a/b

    const auto sub = reg.query("/a/b");
    ASSERT_EQ(sub.size(), 2u);
    EXPECT_EQ(sub[0].first, "/a/b");
    EXPECT_EQ(sub[1].first, "/a/b/c");

    // Trailing slashes and "/" normalize.
    EXPECT_EQ(reg.query("/a/b/").size(), 2u);
    EXPECT_EQ(reg.query("/").size(), 3u);
    EXPECT_EQ(reg.query("").size(), 3u);
    EXPECT_TRUE(reg.query("/nothing/here").empty());
}

TEST(Registry, SnapshotRendersDeterministically)
{
    TelemetryOn on;
    Registry reg;
    reg.counter("/t/c").add(42);
    reg.gauge("/t/g").set(0.1 + 0.2); // exercises %.9g rendering
    reg.histogram("/t/h", {1.0, 10.0}).observe(5.0);

    const auto s1 = reg.snapshot();
    const auto s2 = reg.snapshot();
    EXPECT_EQ(s1, s2);
    ASSERT_EQ(s1.size(), 3u);
    EXPECT_EQ(s1[0].first, "/t/c");
    EXPECT_EQ(s1[0].second, "42");
    EXPECT_EQ(s1[1].second, "0.3");
    EXPECT_EQ(s1[2].second, "count=1 le:1=0 le:10=1 le:inf=0");
}
