/**
 * @file
 * Epoch tracer: byte-reproducible Chrome trace_event JSON, structural
 * well-formedness, and monotonic non-overlapping span nesting for
 * traces produced by real experiment runs.
 */

#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "telemetry/tracer.hpp"
#include "util/logging.hpp"

using namespace fastcap;
using telemetry::Tracer;

namespace {

/**
 * Minimal recursive-descent JSON validator: enough of RFC 8259 to
 * prove the tracer's output parses (objects, arrays, strings with
 * escapes, numbers, literals). Returns false instead of throwing so
 * failures print the offending offset.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &doc) : _doc(doc) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return _pos == _doc.size();
    }

    std::size_t pos() const { return _pos; }

  private:
    bool
    value()
    {
        if (_pos >= _doc.size())
            return false;
        switch (_doc[_pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++_pos; // '{'
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++_pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            if (peek() == '}') {
                ++_pos;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++_pos; // '['
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            if (peek() == ']') {
                ++_pos;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++_pos;
        while (_pos < _doc.size()) {
            const char c = _doc[_pos];
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // control chars must be escaped
            if (c == '\\') {
                ++_pos;
                if (_pos >= _doc.size())
                    return false;
                const char e = _doc[_pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++_pos;
                        if (_pos >= _doc.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                _doc[_pos])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++_pos;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++_pos;
        if (peek() == '.') {
            ++_pos;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_pos;
            if (peek() == '+' || peek() == '-')
                ++_pos;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        return _pos > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (_doc.compare(_pos, len, word) != 0)
            return false;
        _pos += len;
        return true;
    }

    char
    peek() const
    {
        return _pos < _doc.size() ? _doc[_pos] : '\0';
    }

    void
    skipWs()
    {
        while (_pos < _doc.size() &&
               (_doc[_pos] == ' ' || _doc[_pos] == '\n' ||
                _doc[_pos] == '\t' || _doc[_pos] == '\r'))
            ++_pos;
    }

    const std::string &_doc;
    std::size_t _pos = 0;
};

/** One "X" event pulled back out of the emitted JSON. */
struct SpanEvent
{
    int pid = 0;
    double ts = 0.0;
    double dur = 0.0;
};

/** Extract a numeric field ("ts":123.456) from one JSON line. */
double
numField(const std::string &line, const std::string &key)
{
    const std::string tag = "\"" + key + "\":";
    const std::size_t at = line.find(tag);
    EXPECT_NE(at, std::string::npos) << key << " in " << line;
    return std::strtod(line.c_str() + at + tag.size(), nullptr);
}

/**
 * The tracer emits one event per line; pull every "X" span back out,
 * keyed by pid, in emission (= append) order.
 */
std::map<int, std::vector<SpanEvent>>
extractSpans(const std::string &doc)
{
    std::map<int, std::vector<SpanEvent>> out;
    std::size_t pos = 0;
    while (pos < doc.size()) {
        std::size_t end = doc.find('\n', pos);
        if (end == std::string::npos)
            end = doc.size();
        const std::string line = doc.substr(pos, end - pos);
        pos = end + 1;
        if (line.find("\"ph\":\"X\"") == std::string::npos)
            continue;
        SpanEvent ev;
        ev.pid = static_cast<int>(numField(line, "pid"));
        ev.ts = numField(line, "ts");
        ev.dur = numField(line, "dur");
        out[ev.pid].push_back(ev);
    }
    return out;
}

/** A small deterministic run with the tracer attached. */
std::string
tracedRunJson()
{
    telemetry::setEnabled(true);
    Tracer tracer;
    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.6;
    ecfg.targetInstructions = 5e6;
    ecfg.tracer = &tracer;
    const SimConfig scfg = SimConfig::defaultConfig(8);
    runWorkload("MIX1", "FastCap", ecfg, scfg);
    telemetry::setEnabled(false);
    return tracer.json();
}

} // namespace

TEST(Tracer, JsonIsByteReproducible)
{
    auto build = [] {
        Tracer t;
        telemetry::TraceTrack &m = t.track(1, "machine 0");
        m.span("profile", 0.0, 0.001);
        m.instant("solve", 0.001);
        m.span("exec", 0.001, 0.005);
        m.counterEvent("power_w", 0.0, 41.25);
        t.track(0, "cluster").span("rack epoch", 0.0, 0.005);
        return t.json();
    };
    EXPECT_EQ(build(), build());
}

TEST(Tracer, JsonIsWellFormed)
{
    Tracer t;
    telemetry::TraceTrack &m = t.track(1, "ma\"chine\n\t0");
    m.span("sp\\an \"quoted\"", 0.0, 0.001,
           "{\"k\":" + telemetry::jsonString("v\n") + "}");
    m.instant("tick\x01", 0.0015);
    m.counterEvent("w", 0.002, -1.5);
    const std::string doc = t.json();
    JsonChecker checker(doc);
    EXPECT_TRUE(checker.valid())
        << "JSON invalid near offset " << checker.pos() << ":\n"
        << doc;
}

TEST(Tracer, RunTraceIsWellFormedAndReproducible)
{
    const std::string doc1 = tracedRunJson();
    const std::string doc2 = tracedRunJson();
    EXPECT_EQ(doc1, doc2);
    JsonChecker checker(doc1);
    EXPECT_TRUE(checker.valid())
        << "JSON invalid near offset " << checker.pos();
}

TEST(Tracer, RunSpansNestMonotonically)
{
    const auto spans = extractSpans(tracedRunJson());
    ASSERT_FALSE(spans.empty());
    for (const auto &kv : spans) {
        const std::vector<SpanEvent> &evs = kv.second;
        ASSERT_FALSE(evs.empty());
        for (std::size_t i = 0; i < evs.size(); ++i) {
            EXPECT_GE(evs[i].dur, 0.0) << "pid " << kv.first;
            if (i == 0)
                continue;
            // Append order is virtual-time order, and sibling spans
            // on one track never overlap (profile|exec|profile|...).
            EXPECT_GE(evs[i].ts, evs[i - 1].ts) << "pid " << kv.first;
            EXPECT_GE(evs[i].ts + 1e-9,
                      evs[i - 1].ts + evs[i - 1].dur)
                << "pid " << kv.first << " span " << i
                << " overlaps its predecessor";
        }
    }
}

TEST(Tracer, SpanEndBeforeStartPanics)
{
    Tracer t;
    EXPECT_THROW(t.track(1, "m").span("bad", 2.0, 1.0), PanicError);
}
