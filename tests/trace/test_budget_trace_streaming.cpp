/**
 * @file
 * Regression for the budget-trace memory bug: `trace@T:PATH` segments
 * used to materialize every row as its own step segment, so schedule
 * memory grew with the trace. A ~1M-row synthetic trace must now load
 * into exactly ONE segment whose rows stay on disk, answer queries by
 * streaming forward, survive backward queries by re-reading, and stay
 * independent across copies.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "scenario/budget_schedule.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

constexpr std::size_t kRows = 1000000;
constexpr double kStep = 0.001; //!< row spacing in seconds

/** Fraction written for row i: a cheap, spot-checkable pattern. */
double
rowFraction(std::size_t i)
{
    return 0.1 + 0.8 * static_cast<double>(i % 1000) / 1000.0;
}

/** Write the ~1M-row trace once for the whole suite. */
class BudgetTraceStreaming : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Per-process name: ctest runs every TEST_F of this suite as
        // its own process (gtest_discover_tests), so a shared fixed
        // path races under `ctest -j` — one process's teardown
        // remove() can delete the file another is still re-reading.
        path = ::testing::TempDir() + "fastcap_budget_1m." +
               std::to_string(::getpid()) + ".csv";
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fprintf(f, "time_s,fraction\n");
        for (std::size_t i = 0; i < kRows; ++i)
            std::fprintf(f, "%.6f,%.6f\n",
                         static_cast<double>(i) * kStep,
                         rowFraction(i));
        std::fclose(f);
    }

    static void
    TearDownTestSuite()
    {
        std::remove(path.c_str());
    }

    static std::string path;
};

std::string BudgetTraceStreaming::path;

TEST_F(BudgetTraceStreaming, MillionRowsLoadAsOneSegment)
{
    BudgetSchedule s;
    s.addTrace(path);
    // The memory regression: one streaming segment, not one segment
    // (or one stored row) per line of the file.
    ASSERT_EQ(s.size(), 1u);
    const BudgetSegment &seg = s.segments()[0];
    EXPECT_EQ(seg.kind, BudgetSegmentKind::Trace);
    EXPECT_EQ(seg.traceRows, kRows);
    EXPECT_DOUBLE_EQ(seg.start, 0.0);
    EXPECT_NEAR(seg.traceEnd,
                static_cast<double>(kRows - 1) * kStep, 1e-9);
}

TEST_F(BudgetTraceStreaming, StreamsForwardAtEpochGranularity)
{
    BudgetSchedule s;
    s.addTrace(path);
    // Sample like the harness does: monotone times, spot-checked
    // against the written pattern (row i is active on [i, i+1)*step).
    for (std::size_t i = 0; i < kRows; i += 9973) {
        const Seconds t =
            static_cast<double>(i) * kStep + 0.5 * kStep;
        EXPECT_NEAR(s.fractionAt(t, 0.5), rowFraction(i), 1e-6)
            << "row " << i;
    }
    // Past the last row the final fraction holds.
    EXPECT_NEAR(s.fractionAt(1e6, 0.5), rowFraction(kRows - 1),
                1e-6);
}

TEST_F(BudgetTraceStreaming, AnswersBackwardQueriesByRereading)
{
    BudgetSchedule s;
    s.addTrace(path);
    EXPECT_NEAR(s.fractionAt(999.0005, 0.5), rowFraction(999000),
                1e-6);
    // A query before the cursor forces a rewind; the answer must
    // match a fresh schedule's.
    EXPECT_NEAR(s.fractionAt(0.0105, 0.5), rowFraction(10), 1e-6);
    EXPECT_NEAR(s.fractionAt(500.0015, 0.5), rowFraction(500001),
                1e-6);
}

TEST_F(BudgetTraceStreaming, CopiesDoNotShareCursors)
{
    BudgetSchedule a;
    a.addTrace(path);
    // Drive a's cursor deep into the file, then copy: the copy must
    // answer early queries without disturbing a.
    EXPECT_NEAR(a.fractionAt(800.0005, 0.5), rowFraction(800000),
                1e-6);
    BudgetSchedule b = a;
    EXPECT_NEAR(b.fractionAt(0.0005, 0.5), rowFraction(0), 1e-6);
    EXPECT_NEAR(a.fractionAt(800.0015, 0.5), rowFraction(800001),
                1e-6);
}

TEST_F(BudgetTraceStreaming, OffsetShiftsTheWholeTrace)
{
    BudgetSchedule s;
    s.addTrace(path, 2.0);
    EXPECT_DOUBLE_EQ(s.segments()[0].start, 2.0);
    // Before the shifted start the fallback applies.
    EXPECT_DOUBLE_EQ(s.fractionAt(1.0, 0.5), 0.5);
    EXPECT_NEAR(s.fractionAt(2.0005, 0.5), rowFraction(0), 1e-6);
    EXPECT_NEAR(s.fractionAt(3.0005, 0.5), rowFraction(1000), 1e-6);
}

} // namespace
} // namespace fastcap
