/**
 * @file
 * The committed trace corpus under tests/traces/ is a contract: at
 * least eight traces, every one carrying the format magic and a
 * regeneration recipe, loading cleanly through the validating
 * reader, and replaying to completion — twice, with identical swap
 * logs — on a 16-core machine. A corpus file that rots breaks here,
 * not in a downstream golden.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_generator.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_replay.hpp"

namespace fastcap {
namespace {

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> out;
    for (const auto &entry :
         std::filesystem::directory_iterator(FASTCAP_TRACES_DIR))
        if (entry.path().extension() == ".trace")
            out.push_back(entry.path().string());
    std::sort(out.begin(), out.end());
    return out;
}

using SwapLog = std::vector<std::pair<int, std::string>>;

SwapLog
replay(const std::string &path, TraceReplayStats &stats)
{
    TraceReplayer rep(std::make_unique<TraceReader>(path), 16);
    SwapLog log;
    rep.advanceTo(1e9, [&log](int core, const AppProfile &app) {
        log.emplace_back(core, app.name());
    });
    EXPECT_TRUE(rep.idle()) << path;
    stats = rep.stats();
    return log;
}

TEST(TraceCorpus, HoldsAtLeastEightTraces)
{
    EXPECT_GE(corpusFiles().size(), 8u);
}

TEST(TraceCorpus, EveryFileCarriesMagicAndProvenance)
{
    for (const std::string &path : corpusFiles()) {
        std::ifstream in(path);
        std::string first;
        ASSERT_TRUE(std::getline(in, first)) << path;
        EXPECT_EQ(first, "# fastcap job trace v1") << path;
    }
}

TEST(TraceCorpus, EveryFileLoadsThroughTheValidatingReader)
{
    for (const std::string &path : corpusFiles()) {
        TraceReader reader(path);
        TraceEvent ev;
        std::size_t n = 0;
        Seconds last = 0.0;
        while (reader.next(ev)) {
            EXPECT_GE(ev.arrival, last) << path;
            last = ev.arrival;
            ++n;
        }
        EXPECT_GT(n, 0u) << path;
    }
}

TEST(TraceCorpus, EveryFileReplaysToCompletionDeterministically)
{
    for (const std::string &path : corpusFiles()) {
        TraceReplayStats a, b;
        const SwapLog first = replay(path, a);
        const SwapLog second = replay(path, b);
        EXPECT_FALSE(first.empty()) << path;
        EXPECT_EQ(first, second) << path;
        EXPECT_EQ(a.arrivals, b.arrivals) << path;
        EXPECT_EQ(a.arrivals, a.placed + a.dropped) << path;
        EXPECT_EQ(a.placed, a.completed) << path;
        EXPECT_LE(a.peakRunning, 16u) << path;
    }
}

/** Regeneration recipes embedded in generated corpus members work. */
TEST(TraceCorpus, GeneratedMembersMatchTheirEmbeddedSpec)
{
    std::size_t checked = 0;
    for (const std::string &path : corpusFiles()) {
        // "# fastcap_tracegen --gen "SPEC"" on line 2 of generated
        // members (the hand-written one has a prose comment instead).
        std::ifstream in(path);
        std::string line;
        std::getline(in, line);
        std::getline(in, line);
        const std::string tag = "# fastcap_tracegen --gen \"";
        if (line.rfind(tag, 0) != 0)
            continue;
        const std::string spec =
            line.substr(tag.size(),
                        line.size() - tag.size() - 1); // strip quote
        auto gen = makeTraceSource("gen:" + spec);
        TraceReader file(path);
        TraceEvent fromGen, fromFile;
        while (file.next(fromFile)) {
            ASSERT_TRUE(gen->next(fromGen)) << path;
            // The file went through %.9f formatting; the generator
            // stream must match to that precision.
            EXPECT_NEAR(fromGen.arrival, fromFile.arrival, 1e-9)
                << path;
            EXPECT_EQ(fromGen.app, fromFile.app) << path;
            EXPECT_NEAR(fromGen.duration, fromFile.duration, 1e-9)
                << path;
            EXPECT_EQ(fromGen.cores, fromFile.cores) << path;
        }
        EXPECT_FALSE(gen->next(fromGen)) << path;
        ++checked;
    }
    EXPECT_GE(checked, 8u); // all generated members verified
}

} // namespace
} // namespace fastcap
