/**
 * @file
 * Trace replay inherits the engine determinism contract: replaying
 * the same trace — a committed corpus file or a gen: spec — yields a
 * bit-identical experiment across shards 1/4/16 x shardThreads 1/8,
 * and a trace-driven sweep's CSV is byte-identical for any worker
 * count. Placement is a pure function of the trace, so not a single
 * double may drift when only the execution engine's partitioning
 * changes.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "../engine/engine_test_util.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "scenario/scenario.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

const std::vector<std::pair<int, int>> kShardThreadMatrix = {
    {1, 1}, {1, 8}, {4, 1}, {4, 8}, {16, 1}, {16, 8}};

/** Epoch log + replay counters, bit-exact. */
std::string
serializeWithTrace(const ExperimentResult &res)
{
    std::string s = enginetest::serialize(res);
    s += std::to_string(res.trace.arrivals) + ' ';
    s += std::to_string(res.trace.dropped) + ' ';
    s += std::to_string(res.trace.placed) + ' ';
    s += std::to_string(res.trace.completed) + ' ';
    s += std::to_string(res.trace.peakPending) + ' ';
    s += std::to_string(res.trace.peakRunning) + '\n';
    return s;
}

std::string
runTraced(const std::string &trace, int shards, int threads)
{
    SimConfig cfg = SimConfig::defaultConfig(16);
    cfg.seed = 0x7ace5eedULL;

    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.8;
    ecfg.targetInstructions = 1e12; // trace/epoch-bounded run
    ecfg.maxEpochs = 10;
    ecfg.shards = shards;
    ecfg.shardThreads = threads;
    ecfg.scenario.name = "traced";
    ecfg.scenario.trace = trace;
    const ExperimentResult res =
        runWorkload("MIX1", "FastCap", ecfg, cfg);
    EXPECT_TRUE(res.traceDriven);
    EXPECT_GT(res.trace.arrivals, 0u);
    return serializeWithTrace(res);
}

TEST(TraceDeterminism, GeneratedTraceBitIdenticalAcrossMatrix)
{
    const std::string trace =
        "gen:mmpp,rate=400,burst-factor=10,horizon=0.1,max-cores=2,"
        "seed=21";
    const std::string reference = runTraced(trace, 1, 1);
    ASSERT_FALSE(reference.empty());
    for (const auto &[shards, threads] : kShardThreadMatrix)
        EXPECT_EQ(reference, runTraced(trace, shards, threads))
            << "shards=" << shards << " threads=" << threads;
}

TEST(TraceDeterminism, CorpusFileBitIdenticalAcrossMatrix)
{
    const std::string trace =
        std::string(FASTCAP_TRACES_DIR) + "/mmpp_bursty.trace";
    const std::string reference = runTraced(trace, 1, 1);
    ASSERT_FALSE(reference.empty());
    for (const auto &[shards, threads] : kShardThreadMatrix)
        EXPECT_EQ(reference, runTraced(trace, shards, threads))
            << "shards=" << shards << " threads=" << threads;
}

TEST(TraceDeterminism, TraceDrivenSweepCsvByteIdenticalAcrossThreads)
{
    const auto sweep = [&](int shards, int shard_threads,
                           int pool_threads) {
        SweepGrid grid;
        grid.configs = SweepGrid::configsForCores({16});
        grid.workloads = {"MIX1"};
        grid.policies = {"FastCap", "Uncapped"};
        grid.budgetFractions = {0.7};
        grid.targetInstructions = 1e12;
        grid.maxEpochs = 8;
        grid.shards = shards;
        grid.shardThreads = shard_threads;
        Scenario sc;
        sc.name = "ptrace";
        sc.trace = std::string(FASTCAP_TRACES_DIR) +
            "/poisson_light.trace";
        Scenario gen;
        gen.name = "gtrace";
        gen.trace = "gen:poisson,rate=200,horizon=0.05,seed=4";
        grid.scenarios = {sc, gen};
        SweepRunner runner(grid, pool_threads);
        return runner.run().csvString();
    };

    const std::string reference = sweep(1, 1, 1);
    ASSERT_FALSE(reference.empty());
    EXPECT_NE(reference.find("ptrace"), std::string::npos);
    EXPECT_NE(reference.find("gtrace"), std::string::npos);
    EXPECT_EQ(reference, sweep(1, 1, 2));
    EXPECT_EQ(reference, sweep(4, 8, 2));
    EXPECT_EQ(reference, sweep(16, 1, 4));
}

} // namespace
} // namespace fastcap
