/**
 * @file
 * The job-trace format's validation contract: every malformed row —
 * wrong shape, non-monotone arrivals, unknown apps, non-finite or
 * non-positive durations, int-wrapping core demands — must be
 * rejected at load with a FatalError carrying file:line context,
 * never silently skipped or wrapped onto a plausible value. Plus the
 * tolerances the format promises: comments, blank lines, one header
 * row, equal arrival times, and the "idle" app.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/trace_generator.hpp"
#include "trace/trace_reader.hpp"
#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

/** Drain a trace given as literal text; throws what next() throws. */
std::vector<TraceEvent>
load(const std::string &text)
{
    std::istringstream in(text);
    TraceReader reader(in, "<test>");
    std::vector<TraceEvent> out;
    TraceEvent ev;
    while (reader.next(ev))
        out.push_back(ev);
    return out;
}

TEST(TraceFormat, ParsesTheDocumentedShape)
{
    const std::vector<TraceEvent> evs = load(
        "# a comment\n"
        "arrival_s,app,duration_s,cores\n"
        "\n"
        "0.0,milc,0.02,1\n"
        "0.01, gcc , 0.5 , 2\n" // cells are trimmed
        "0.01,idle,0.001,1\n"   // equal arrivals: a batch
        "0.5,swim,0.03,8   # trailing comment\n");
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_DOUBLE_EQ(evs[0].arrival, 0.0);
    EXPECT_EQ(evs[0].app, "milc");
    EXPECT_DOUBLE_EQ(evs[0].duration, 0.02);
    EXPECT_EQ(evs[0].cores, 1);
    EXPECT_EQ(evs[1].app, "gcc");
    EXPECT_EQ(evs[1].cores, 2);
    EXPECT_EQ(evs[2].app, "idle");
    EXPECT_DOUBLE_EQ(evs[3].arrival, 0.5);
    EXPECT_EQ(evs[3].cores, 8);
}

TEST(TraceFormat, HeaderIsOptional)
{
    EXPECT_EQ(load("0,milc,0.02,1\n0.1,gcc,0.01,1\n").size(), 2u);
}

TEST(TraceFormat, RejectsEmptyTraces)
{
    EXPECT_THROW(load(""), FatalError);
    EXPECT_THROW(load("# only a comment\n"), FatalError);
    EXPECT_THROW(load("arrival_s,app,duration_s,cores\n"),
                 FatalError);
}

TEST(TraceFormat, RejectsMalformedRows)
{
    // Wrong cell counts.
    EXPECT_THROW(load("0,milc,0.02\n"), FatalError);
    EXPECT_THROW(load("0,milc,0.02,1,extra\n"), FatalError);
    EXPECT_THROW(load("just some text\n"), FatalError);
    // A second header-like row is not tolerated.
    EXPECT_THROW(load("arrival_s,app,duration_s,cores\n"
                      "0,milc,0.02,1\n"
                      "arrival_s,app,duration_s,cores\n"),
                 FatalError);
    // A data row with one bad numeric cell is not a header.
    EXPECT_THROW(load("x,milc,0.02,1\n"), FatalError);
    EXPECT_THROW(load("0,milc,x,1\n"), FatalError);
    // Empty cells.
    EXPECT_THROW(load("0,,0.02,1\n"), FatalError);
    EXPECT_THROW(load("0,milc,0.02,\n"), FatalError);
}

TEST(TraceFormat, RejectsBadArrivalTimes)
{
    EXPECT_THROW(load("-0.1,milc,0.02,1\n"), FatalError);
    EXPECT_THROW(load("nan,milc,0.02,1\n"), FatalError);
    EXPECT_THROW(load("inf,milc,0.02,1\n"), FatalError);
    // Non-monotone arrivals: the replayer merges against a running
    // heap and silently reordering would corrupt placement.
    EXPECT_THROW(load("0.2,milc,0.02,1\n0.1,gcc,0.02,1\n"),
                 FatalError);
}

TEST(TraceFormat, RejectsUnknownApps)
{
    EXPECT_THROW(load("0,notanapp,0.02,1\n"), FatalError);
    EXPECT_THROW(load("0,MILC,0.02,1\n"), FatalError); // case matters
}

TEST(TraceFormat, RejectsBadDurations)
{
    EXPECT_THROW(load("0,milc,0,1\n"), FatalError);
    EXPECT_THROW(load("0,milc,-0.5,1\n"), FatalError);
    EXPECT_THROW(load("0,milc,nan,1\n"), FatalError);
    EXPECT_THROW(load("0,milc,inf,1\n"), FatalError);
}

TEST(TraceFormat, RejectsBadCoreDemands)
{
    EXPECT_THROW(load("0,milc,0.02,0\n"), FatalError);
    EXPECT_THROW(load("0,milc,0.02,-2\n"), FatalError);
    EXPECT_THROW(load("0,milc,0.02,1.5\n"), FatalError);
    EXPECT_THROW(load("0,milc,0.02,two\n"), FatalError);
    // Overflowing demands must not wrap onto a plausible count.
    EXPECT_THROW(load("0,milc,0.02,4294967297\n"), FatalError);
    EXPECT_THROW(load("0,milc,0.02,99999999999999999999\n"),
                 FatalError);
}

TEST(TraceFormat, ErrorsCarryFileAndLineContext)
{
    try {
        load("0,milc,0.02,1\n0.1,gcc,bad,1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("<test>:2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("duration"), std::string::npos) << msg;
    }
}

TEST(TraceFormat, FuzzNeverAcceptsCorruptedRows)
{
    // Mutate a valid row one byte at a time: the reader must either
    // produce a valid event or throw FatalError — never crash, hang
    // or hand back garbage (negative durations, wrapped cores).
    const std::string row = "0.125,milc,0.0625,4\n";
    const std::string junk = "x;#,-. \t9"; // mutation alphabet
    for (std::size_t pos = 0; pos < row.size() - 1; ++pos) {
        for (const char c : junk) {
            std::string mutated = row;
            mutated[pos] = c;
            try {
                for (const TraceEvent &ev :
                     load(mutated + "9.5,gcc,0.01,1\n")) {
                    EXPECT_GE(ev.arrival, 0.0);
                    EXPECT_GT(ev.duration, 0.0);
                    EXPECT_GE(ev.cores, 1);
                    EXPECT_NE(workloads::findProfile(ev.app),
                              nullptr);
                }
            } catch (const FatalError &) {
                // Rejection is the expected outcome for most edits.
            }
        }
    }
}

TEST(TraceFormat, MakeTraceSourceDispatches)
{
    // gen: specs resolve to generators with self-describing names.
    auto gen = makeTraceSource("gen:poisson,rate=50,horizon=0.1");
    EXPECT_EQ(gen->name().rfind("gen:poisson", 0), 0u);
    TraceEvent ev;
    EXPECT_TRUE(gen->next(ev));

    EXPECT_THROW(makeTraceSource(""), FatalError);
    EXPECT_THROW(makeTraceSource("/nonexistent/file.trace"),
                 FatalError);
    EXPECT_THROW(makeTraceSource("gen:bogus,rate=1"), FatalError);
}

} // namespace
} // namespace fastcap
